# Benchmark targets are defined from the top-level CMakeLists (not via
# add_subdirectory) so that ${CMAKE_BINARY_DIR}/bench contains ONLY the
# bench binaries — `for b in build/bench/*; do $b; done` runs the whole
# harness with no stray CMake files in the glob.

function(adlp_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR}/bench)
  target_link_libraries(${name} PRIVATE
    adlp_common adlp_crypto adlp_wire adlp_transport adlp_pubsub
    adlp_core adlp_audit adlp_faults adlp_sim
    benchmark::benchmark Threads::Threads)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

adlp_bench(bench_table1_crypto)
adlp_bench(bench_fig13_latency)
adlp_bench(bench_fig14_cpu)
adlp_bench(bench_table2_appcpu)
adlp_bench(bench_table3_sizes)
adlp_bench(bench_fig15_lograte)
adlp_bench(bench_table4_syslograte)
adlp_bench(bench_ablation_aggregated)
adlp_bench(bench_ablation_hash_vs_data)
adlp_bench(bench_ablation_ack_window)
adlp_bench(bench_ablation_lightweight_crypto)
adlp_bench(audit_bench)
adlp_bench(obs_bench)
adlp_bench(scale_bench)
adlp_bench(streaming_bench)
adlp_bench(replication_bench)
adlp_bench(repair_bench)
