// Figure 15 — log generation rate (bytes/s) for Steering (50 Hz) and Image
// (20 Hz), 1 publisher + 1 subscriber, under:
//   (a) Base (subscriber stores data as-is),
//   (b) ADLP with the subscriber storing h(D''_y),
//   (c) ADLP with the subscriber storing D''_y as-is.
//
// Rates are computed exactly: run a fixed number of transmissions through
// the real pipeline, take the trusted logger's byte counter, and scale by
// the type's publication rate. Shape: for Image, (b) collapses the
// subscriber's contribution by ~3 orders of magnitude; (c) ~doubles (a).
#include <atomic>

#include "bench_util.h"
#include "sim/workload.h"

namespace {

using namespace adlp;
using namespace adlp::bench;

struct RateResult {
  double bytes_per_publication = 0.0;
  double bytes_per_second = 0.0;
};

RateResult MeasureLogRate(const sim::DataTypeSpec& spec,
                          proto::LoggingScheme scheme,
                          bool subscriber_stores_hash, int messages) {
  pubsub::Master master;
  proto::LogServer server;
  Rng rng(5);

  proto::ComponentOptions opts = PaperOptions(scheme);
  opts.adlp.subscriber_stores_hash = subscriber_stores_hash;
  opts.base.subscriber_stores_data = true;

  proto::Component pub(spec.name + "_pub", master, server, rng, opts);
  proto::Component sub(spec.name + "_sub", master, server, rng, opts);

  std::atomic<int> got{0};
  sub.Subscribe(spec.name, [&](const pubsub::Message&) { got++; });
  auto& publisher = pub.Advertise(spec.name);
  publisher.WaitForSubscribers(1);

  Bytes payload = sim::MakePayload(rng, spec.size_bytes);
  for (int i = 0; i < messages; ++i) publisher.Publish(payload);
  while (got.load() < messages) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  pub.Shutdown();  // drains remaining ACKs and flushes logging threads
  sub.Shutdown();

  RateResult result;
  result.bytes_per_publication =
      static_cast<double>(server.TotalBytes()) / messages;
  result.bytes_per_second = result.bytes_per_publication * spec.rate_hz;
  return result;
}

void RunType(const std::string& type_name, int messages) {
  const auto& spec = adlp::sim::PaperDataType(type_name);
  const RateResult base = MeasureLogRate(
      spec, adlp::proto::LoggingScheme::kBase, true, messages);
  const RateResult adlp_hash = MeasureLogRate(
      spec, adlp::proto::LoggingScheme::kAdlp, true, messages);
  const RateResult adlp_data = MeasureLogRate(
      spec, adlp::proto::LoggingScheme::kAdlp, false, messages);

  std::printf("%-9s @ %4.0f Hz:\n", spec.name.c_str(), spec.rate_hz);
  std::printf("  %-22s %14.0f B/s  (%s/s)\n", "Base (stores data)",
              base.bytes_per_second,
              HumanBytes(base.bytes_per_second).c_str());
  std::printf("  %-22s %14.0f B/s  (%s/s)\n", "ADLP, h(D''_y)",
              adlp_hash.bytes_per_second,
              HumanBytes(adlp_hash.bytes_per_second).c_str());
  std::printf("  %-22s %14.0f B/s  (%s/s)\n", "ADLP, D''_y as-is",
              adlp_data.bytes_per_second,
              HumanBytes(adlp_data.bytes_per_second).c_str());
  std::printf("  ratios: adlp-hash/base = %.4f, adlp-data/base = %.4f\n\n",
              adlp_hash.bytes_per_second / base.bytes_per_second,
              adlp_data.bytes_per_second / base.bytes_per_second);
}

}  // namespace

int main(int argc, char** argv) {
  const int messages = argc > 1 ? std::atoi(argv[1]) : 60;

  PrintHeader("Figure 15: log generation rates (1 publisher, 1 subscriber)");
  RunType("Steering", messages * 4);  // small payloads: more samples
  RunType("Image", messages);
  PrintRule();
  std::printf(
      "shape checks: for Image, storing h(D) in the subscriber entry cuts "
      "the ADLP rate\n"
      "to ~half of Base (only the publisher stores the image), while "
      "storing data as-is\n"
      "exceeds Base; for Steering the hash variant costs slightly *more* "
      "than data as-is\n"
      "(a 20-B payload is smaller than a 32-B digest) — the paper's "
      "small-data remark.\n");
  return 0;
}
