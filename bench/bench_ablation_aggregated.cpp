// Ablation A (Section VI-E, "Aggregated Logging") — one publisher log entry
// per publication carrying every subscriber's (hash, signature), instead of
// one entry per subscriber.
//
// Measures publisher-side log bytes per publication as subscriber count
// grows, with and without aggregation. Expected: without aggregation the
// publisher's log bytes grow ~linearly in subscribers (each entry repeats
// the full data!); with aggregation the data is stored once and only the
// 160-B ack records accumulate — a large saving for Image-sized data.
#include <atomic>

#include "bench_util.h"
#include "sim/workload.h"

namespace {

using namespace adlp;
using namespace adlp::bench;

double PublisherBytesPerPublication(bool aggregate, int subscribers,
                                    int messages, std::size_t payload_size) {
  pubsub::Master master;
  proto::LogServer server;
  Rng rng(3);

  proto::ComponentOptions opts = PaperOptions(proto::LoggingScheme::kAdlp);
  opts.adlp.aggregate_publisher_log = aggregate;

  proto::Component pub("image_feeder", master, server, rng, opts);
  std::vector<std::unique_ptr<proto::Component>> subs;
  std::atomic<int> got{0};
  for (int i = 0; i < subscribers; ++i) {
    subs.push_back(std::make_unique<proto::Component>(
        "sub_" + std::to_string(i), master, server, rng, opts));
    subs.back()->Subscribe("image", [&](const pubsub::Message&) { got++; });
  }
  auto& publisher = pub.Advertise("image");
  publisher.WaitForSubscribers(subscribers);

  Bytes payload = sim::MakePayload(rng, payload_size);
  for (int i = 0; i < messages; ++i) publisher.Publish(payload);
  while (got.load() < messages * subscribers) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  pub.Shutdown();
  for (auto& s : subs) s->Shutdown();

  return static_cast<double>(server.BytesFor("image_feeder")) / messages;
}

}  // namespace

int main(int argc, char** argv) {
  const int messages = argc > 1 ? std::atoi(argv[1]) : 20;
  constexpr std::size_t kImage = 921'641;

  PrintHeader(
      "Ablation A: aggregated publisher logging (Image data, bytes per "
      "publication)");
  std::printf("%-6s | %-16s | %-16s | %s\n", "#subs", "Per-subscriber",
              "Aggregated", "saving");
  PrintRule(64);
  for (int subs : {1, 2, 4, 8}) {
    const double plain =
        PublisherBytesPerPublication(false, subs, messages, kImage);
    const double agg =
        PublisherBytesPerPublication(true, subs, messages, kImage);
    std::printf("%-6d | %13s    | %13s    | %.1fx\n", subs,
                HumanBytes(plain).c_str(), HumanBytes(agg).c_str(),
                plain / agg);
  }
  PrintRule(64);
  std::printf(
      "shape check: per-subscriber entries replicate the ~900 KB image "
      "once per subscriber;\n"
      "aggregation stores it once and adds only fixed-size ACK records — "
      "the saving factor\n"
      "approaches the subscriber count.\n");
  return 0;
}
