// Ablation D (Section VI-E, "lightweight crypto functions") — the paper's
// future-work proposal, realized: ADLP running on Ed25519 instead of
// RSA-1024 + PKCS#1 v1.5.
//
// Reports (1) raw sign/verify cost, (2) the protocol's per-message byte
// overhead (signature size drives it), and (3) end-to-end publish->deliver
// latency through the full stack under both algorithms.
#include <atomic>
#include <condition_variable>
#include <mutex>

#include <benchmark/benchmark.h>

#include "adlp/wire_msgs.h"
#include "bench_util.h"
#include "crypto/sig.h"
#include "sim/workload.h"

namespace {

using namespace adlp;
using namespace adlp::bench;

const crypto::SigKeyPair& Key(crypto::SigAlgorithm alg) {
  static std::map<crypto::SigAlgorithm, crypto::SigKeyPair> cache;
  auto it = cache.find(alg);
  if (it == cache.end()) {
    Rng rng(515 + static_cast<int>(alg));
    it = cache.emplace(alg, crypto::GenerateSigKeyPair(rng, alg, 1024)).first;
  }
  return it->second;
}

void RawCosts(crypto::SigAlgorithm alg) {
  const auto& kp = Key(alg);
  Rng rng(1);
  const Bytes payload = rng.RandomBytes(sim::PaperDataType("Scan").size_bytes);
  const crypto::Digest digest = crypto::Sha256Digest(payload);

  const SampleStats sign = ComputeStats(TimeSamplesMs(300, [&] {
    Bytes s = crypto::SignDigest(kp.priv, digest);
    benchmark::DoNotOptimize(s);
  }));
  const Bytes sig = crypto::SignDigest(kp.priv, digest);
  const SampleStats verify = ComputeStats(TimeSamplesMs(300, [&] {
    bool ok = crypto::VerifyDigest(kp.pub, digest, sig);
    benchmark::DoNotOptimize(ok);
  }));
  std::printf("%-18s | sign %8.4f ms | verify %8.4f ms | signature %3zu B\n",
              std::string(crypto::SigAlgorithmName(alg)).c_str(), sign.mean,
              verify.mean, kp.pub.SignatureSize());
}

double MeasureLatencyMs(crypto::SigAlgorithm alg, std::size_t payload_size,
                        int messages) {
  pubsub::Master master;
  proto::LogServer server;
  Rng rng(42);
  proto::ComponentOptions opts = PaperOptions(proto::LoggingScheme::kAdlp);
  opts.sig_algorithm = alg;
  proto::Component pub("p", master, server, rng, opts);
  proto::Component sub("s", master, server, rng, opts);

  std::mutex mu;
  std::condition_variable cv;
  std::vector<double> latencies;
  int delivered = 0;
  sub.Subscribe("t", [&](const pubsub::Message& m) {
    const Timestamp now = WallClock::Instance().Now();
    std::lock_guard lock(mu);
    latencies.push_back(static_cast<double>(now - m.header.stamp) / 1e6);
    ++delivered;
    cv.notify_one();
  });
  auto& publisher = pub.Advertise("t");
  publisher.WaitForSubscribers(1);
  const Bytes payload = rng.RandomBytes(payload_size);
  for (int i = 0; i < messages; ++i) {
    publisher.Publish(payload);
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return delivered == i + 1; });
  }
  pub.Shutdown();
  sub.Shutdown();
  if (latencies.size() > 1) latencies.erase(latencies.begin());
  return ComputeStats(std::move(latencies)).mean;
}

std::size_t MessageOverhead(crypto::SigAlgorithm alg) {
  const auto& kp = Key(alg);
  pubsub::Message msg;
  msg.header.topic = "t";
  msg.header.publisher = "p";
  msg.header.seq = 1;
  msg.header.stamp = 1;
  msg.payload = Bytes(100, 7);
  const Bytes sig(kp.pub.SignatureSize(), 1);
  return proto::SerializeDataMessage(msg, sig).size() -
         pubsub::SerializeMessage(msg).size();
}

}  // namespace

int main(int argc, char** argv) {
  const int messages = argc > 1 ? std::atoi(argv[1]) : 80;

  PrintHeader(
      "Ablation D: lightweight crypto (Sec. VI-E) — RSA-1024 PKCS#1 vs "
      "Ed25519");

  std::printf("\nraw cost (32-byte digest):\n");
  RawCosts(crypto::SigAlgorithm::kRsaPkcs1Sha256);
  RawCosts(crypto::SigAlgorithm::kEd25519);

  std::printf("\nper-message wire overhead (signature + framing):\n");
  std::printf("  rsa-pkcs1-sha256: +%zu B   ed25519: +%zu B\n",
              MessageOverhead(crypto::SigAlgorithm::kRsaPkcs1Sha256),
              MessageOverhead(crypto::SigAlgorithm::kEd25519));

  std::printf("\nend-to-end ADLP latency (publish -> deliver, avg):\n");
  std::printf("%-12s | %-12s | %-12s\n", "payload (B)", "RSA-1024",
              "Ed25519");
  PrintRule(48);
  for (std::size_t size : {20u, 8705u, 921641u}) {
    const double rsa = MeasureLatencyMs(
        crypto::SigAlgorithm::kRsaPkcs1Sha256, size, messages);
    const double ed =
        MeasureLatencyMs(crypto::SigAlgorithm::kEd25519, size, messages);
    std::printf("%-12zu | %9.4f ms | %9.4f ms\n", size, rsa, ed);
  }
  PrintRule(48);
  std::printf(
      "shape check: Ed25519 halves the fixed per-message byte overhead "
      "(64+framing vs\n"
      "128+framing) and removes the RSA private-op cost from the latency "
      "floor; at Image\n"
      "size both converge because SHA-256 hashing dominates. This is the "
      "scalability\n"
      "engineering the paper's Sec. VI-E anticipates, with the protocol and "
      "auditor\n"
      "unchanged (the signature layer is pluggable).\n");
  return 0;
}
