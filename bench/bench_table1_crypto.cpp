// Table I — hashing and signing time for the paper's representative data
// types (Steering 20 B, Scan 8,705 B, Image 921,641 B), RSA-1024 + SHA-256.
//
// Runs the measurements through google-benchmark for per-op timing, then
// prints a Table-I-shaped summary (avg, stdev over a fixed sample count)
// with the paper's values alongside. Absolute numbers are smaller than the
// paper's: the prototype used PyCrypto from Python; the paper itself notes
// (Sec. VI-E) that a C++ implementation would greatly reduce crypto cost.
// The *shape* to check: signing dominates for small data; hashing grows
// with size and catches up around the Image size.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "crypto/pkcs1.h"
#include "pubsub/message.h"
#include "sim/workload.h"

namespace {

using namespace adlp;
using namespace adlp::bench;

const crypto::RsaKeyPair& Key1024() {
  static const crypto::RsaKeyPair kp = [] {
    Rng rng(20190707);
    return crypto::GenerateRsaKeyPair(rng, 1024);
  }();
  return kp;
}

Bytes PayloadFor(const std::string& type) {
  Rng rng(1);
  return sim::MakePayload(rng, sim::PaperDataType(type).size_bytes);
}

void BM_HashOnly(benchmark::State& state, const std::string& type) {
  const Bytes payload = PayloadFor(type);
  for (auto _ : state) {
    auto digest = crypto::Sha256Digest(payload);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}

void BM_HashAndSign(benchmark::State& state, const std::string& type) {
  const Bytes payload = PayloadFor(type);
  const auto& key = Key1024();
  for (auto _ : state) {
    auto sig = crypto::Pkcs1Sign(key.priv, crypto::Sha256Digest(payload));
    benchmark::DoNotOptimize(sig);
  }
}

void BM_Verify(benchmark::State& state, const std::string& type) {
  const Bytes payload = PayloadFor(type);
  const auto& key = Key1024();
  const auto digest = crypto::Sha256Digest(payload);
  const Bytes sig = crypto::Pkcs1Sign(key.priv, digest);
  for (auto _ : state) {
    bool ok = crypto::Pkcs1Verify(key.pub, digest, sig);
    benchmark::DoNotOptimize(ok);
  }
}

void RegisterAll() {
  for (const auto& spec : sim::PaperDataTypes()) {
    benchmark::RegisterBenchmark(("HashOnly/" + spec.name).c_str(),
                                 [name = spec.name](benchmark::State& s) {
                                   BM_HashOnly(s, name);
                                 });
    benchmark::RegisterBenchmark(("HashAndSign/" + spec.name).c_str(),
                                 [name = spec.name](benchmark::State& s) {
                                   BM_HashAndSign(s, name);
                                 });
    benchmark::RegisterBenchmark(("Verify/" + spec.name).c_str(),
                                 [name = spec.name](benchmark::State& s) {
                                   BM_Verify(s, name);
                                 });
  }
}

struct PaperRow {
  const char* type;
  double hash_ms;
  double hash_sign_ms;
};

// Paper Table I (PyCrypto on an i5-7260U).
constexpr PaperRow kPaperRows[] = {
    {"Steering", 0.109, 3.042},
    {"Scan", 0.201, 3.129},
    {"Image", 2.638, 3.457},
};

void PrintSummaryTable() {
  constexpr std::size_t kSamples = 1000;  // paper used 3000
  PrintHeader("Table I: hashing and signing time for different data types");
  std::printf("%-10s %10s | %-24s | %-24s\n", "Type", "Size(B)",
              "Hashing only  avg (stdev)", "Hash+Sign  avg (stdev)");
  PrintRule(92);

  for (std::size_t i = 0; i < sim::PaperDataTypes().size(); ++i) {
    const auto& spec = sim::PaperDataTypes()[i];
    const Bytes payload = PayloadFor(spec.name);
    const auto& key = Key1024();

    const SampleStats hash = ComputeStats(TimeSamplesMs(kSamples, [&] {
      auto d = crypto::Sha256Digest(payload);
      benchmark::DoNotOptimize(d);
    }));
    const SampleStats sign = ComputeStats(TimeSamplesMs(kSamples, [&] {
      auto s = crypto::Pkcs1Sign(key.priv, crypto::Sha256Digest(payload));
      benchmark::DoNotOptimize(s);
    }));

    std::printf("%-10s %10zu | %9.4f ms (%.4f ms)   | %9.4f ms (%.4f ms)\n",
                spec.name.c_str(), spec.size_bytes, hash.mean, hash.stdev,
                sign.mean, sign.stdev);
    std::printf("%-10s %10s | paper: %6.3f ms          | paper: %6.3f ms\n",
                "", "", kPaperRows[i].hash_ms, kPaperRows[i].hash_sign_ms);
  }
  PrintRule(92);
  std::printf(
      "shape checks: (1) hash+sign ~flat vs size for small data (RSA "
      "dominates);\n"
      "              (2) hashing cost grows ~linearly with size and "
      "approaches signing cost at Image size.\n");
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintSummaryTable();
  return 0;
}
