// repair_bench — anti-entropy repair throughput and time-to-quorum-
// reconvergence of the replicated logger fleet.
//
// A 3-replica fleet is seeded so that `behind` replicas (1 or 2) hold
// nothing while the healthy remainder holds --entries sealed records. The
// behind replicas then repair over real localhost TCP through the sync
// protocol (signed roots -> consistency gate -> verified ranges -> sampled
// inclusion proofs -> verify-then-commit), all at once. Wall time from
// repair start until EVERY replica is byte-identical (size, root) is the
// time-to-quorum-reconvergence; records/s repaired is the aggregate
// verified-append rate across the behind replicas.
//
// Output: BENCH_repair.json (schema-checked and baseline-gated by
// tools/check_bench_json.py; the repair throughput rows are what regress —
// reconvergence absolutes include TCP and scheduling noise and are only
// reported).
//
//   repair_bench [--entries N] [--reps R] [--payload BYTES]
//                [--seal-every K] [--out FILE]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "adlp/log_server.h"
#include "adlp/remote_log.h"
#include "adlp/repair.h"
#include "audit/report_json.h"
#include "bench_util.h"
#include "common/clock.h"
#include "common/rng.h"

using namespace adlp;

namespace {

constexpr std::size_t kReplicas = 3;

struct RunResult {
  double wall_ms = 0.0;
  std::uint64_t records_repaired = 0;
  bool converged = false;
  bool clean = false;  // no repair findings against honest peers
};

/// One timed repetition: fresh fleet, `behind` empty replicas repairing
/// from the healthy remainder concurrently.
RunResult RunOnce(std::size_t behind, std::size_t entries,
                  std::size_t payload_bytes, std::uint64_t seal_every) {
  proto::LogServerOptions server_options;
  server_options.seal_every = seal_every;

  std::deque<proto::LogServer> servers;
  for (std::size_t i = 0; i < kReplicas; ++i) {
    servers.emplace_back(server_options);
  }

  // Seed the healthy replicas [behind, kReplicas) with identical tagged,
  // sealed histories — the state a live fleet has after the upload legs
  // delivered and the epochs sealed.
  Rng rng(0x9e9a ^ entries);
  for (std::uint64_t seq = 1; seq <= entries; ++seq) {
    proto::LogEntry entry;
    entry.component = "bench";
    entry.topic = "t";
    entry.seq = seq;
    entry.timestamp = static_cast<Timestamp>(1000 + seq);
    entry.data = rng.RandomBytes(payload_bytes);
    for (std::size_t i = behind; i < kReplicas; ++i) {
      servers[i].ApplyTaggedEntry("fleet-sink", seq, entry);
    }
  }
  for (std::size_t i = behind; i < kReplicas; ++i) servers[i].SealEpoch();

  std::vector<std::unique_ptr<proto::LogServerService>> services;
  std::vector<std::uint16_t> healthy_ports;
  for (std::size_t i = behind; i < kReplicas; ++i) {
    services.push_back(
        std::make_unique<proto::LogServerService>(servers[i], 0));
    healthy_ports.push_back(services.back()->Port());
  }

  std::vector<std::unique_ptr<proto::RepairAgent>> agents;
  for (std::size_t i = 0; i < behind; ++i) {
    proto::RepairAgentOptions options;
    options.seal_key = servers[i].SealKey();
    for (std::size_t p = 0; p < healthy_ports.size(); ++p) {
      options.peers.push_back(proto::TcpRepairPeer(
          "replica-" + std::to_string(behind + p), healthy_ports[p]));
    }
    agents.push_back(
        std::make_unique<proto::RepairAgent>(servers[i], options));
  }

  RunResult result;
  const Timestamp start = MonotonicNowNs();
  std::vector<std::thread> workers;
  for (std::size_t i = 0; i < behind; ++i) {
    workers.emplace_back([&, i] {
      while (servers[i].EntryCount() < entries) {
        if (agents[i]->RunOnce() == 0) break;  // converged or rejected
      }
    });
  }
  for (auto& worker : workers) worker.join();
  result.wall_ms = static_cast<double>(MonotonicNowNs() - start) / 1e6;

  result.converged = true;
  result.clean = true;
  const auto reference_roots = servers[kReplicas - 1].EpochRoots();
  for (std::size_t i = 0; i < kReplicas; ++i) {
    if (servers[i].EntryCount() != entries ||
        servers[i].MerkleRoot() != servers[kReplicas - 1].MerkleRoot()) {
      result.converged = false;
    }
    const auto roots = servers[i].EpochRoots();
    if (roots.size() != reference_roots.size()) {
      result.converged = false;
      continue;
    }
    for (std::size_t e = 0; e < roots.size(); ++e) {
      if (roots[e].tree_size != reference_roots[e].tree_size ||
          roots[e].root != reference_roots[e].root) {
        result.converged = false;
      }
    }
  }
  for (const auto& agent : agents) {
    result.records_repaired += agent->Stats().records_repaired;
    if (!agent->Findings().empty()) result.clean = false;
  }
  for (auto& service : services) service->Shutdown();
  return result;
}

int Usage() {
  std::fprintf(stderr,
               "usage: repair_bench [--entries N] [--reps R] "
               "[--payload BYTES] [--seal-every K] [--out FILE]\n");
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t entries = 4000;
  std::size_t reps = 3;
  std::size_t payload_bytes = 64;
  std::size_t seal_every = 64;
  std::string out_path = "BENCH_repair.json";

  for (int i = 1; i < argc; ++i) {
    auto next = [&](std::size_t& slot) {
      if (i + 1 >= argc) return false;
      slot = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      return true;
    };
    if (std::strcmp(argv[i], "--entries") == 0) {
      if (!next(entries) || entries == 0) return Usage();
    } else if (std::strcmp(argv[i], "--reps") == 0) {
      if (!next(reps) || reps == 0) return Usage();
    } else if (std::strcmp(argv[i], "--payload") == 0) {
      if (!next(payload_bytes)) return Usage();
    } else if (std::strcmp(argv[i], "--seal-every") == 0) {
      if (!next(seal_every) || seal_every == 0) return Usage();
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      return Usage();
    }
  }

  bench::PrintHeader(
      "anti-entropy repair: Merkle-verified peer fetch over TCP");
  std::printf("%zu entries x %zu reps, %zu-byte payloads, seal every %zu\n\n",
              entries, reps, payload_bytes, seal_every);
  std::printf("%7s %12s %16s %16s %15s\n", "behind", "wall ms",
              "records/sec", "best rec/s", "reconverge ms");
  bench::PrintRule();

  struct Row {
    std::size_t behind = 0;
    bench::SampleStats wall;
    std::uint64_t records_per_rep = 0;
    bool converged = true;
    bool clean = true;
  };
  std::vector<Row> rows;
  bool all_converged = true;
  bool all_clean = true;

  for (const std::size_t behind : {std::size_t{1}, std::size_t{2}}) {
    Row row;
    row.behind = behind;
    std::vector<double> wall_samples;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const RunResult run =
          RunOnce(behind, entries, payload_bytes, seal_every);
      wall_samples.push_back(run.wall_ms);
      row.records_per_rep = run.records_repaired;
      row.converged &= run.converged;
      row.clean &= run.clean;
    }
    row.wall = bench::ComputeStats(wall_samples);
    all_converged &= row.converged;
    all_clean &= row.clean;

    const double per_sec = static_cast<double>(row.records_per_rep) /
                           (row.wall.mean / 1e3);
    const double best = static_cast<double>(row.records_per_rep) /
                        (row.wall.min / 1e3);
    std::printf("%7zu %12.2f %16.0f %16.0f %15.2f%s\n", row.behind,
                row.wall.mean, per_sec, best, row.wall.mean,
                row.converged && row.clean ? "" : "  FAILED");
    rows.push_back(row);
  }

  const bool repair_ok = all_converged && all_clean;
  std::printf("\nall converged: %s   no findings: %s\n",
              all_converged ? "yes" : "NO", all_clean ? "yes" : "NO");

  audit::JsonEmitter e(/*pretty=*/true);
  char buf[64];
  e.OpenObject();
  e.OpenObject("config");
  e.NumberField("entries", entries);
  e.NumberField("reps", reps);
  e.NumberField("payload_bytes", payload_bytes);
  e.NumberField("seal_every", seal_every);
  e.NumberField("replicas", kReplicas);
  e.CloseObject();
  e.OpenArray("results");
  for (const Row& row : rows) {
    e.OpenObject();
    e.NumberField("behind", row.behind);
    e.NumberField("records_repaired", row.records_per_rep);
    std::snprintf(buf, sizeof(buf), "%.3f", row.wall.mean);
    e.Field("wall_ms", buf);
    std::snprintf(buf, sizeof(buf), "%.0f",
                  static_cast<double>(row.records_per_rep) /
                      (row.wall.mean / 1e3));
    e.Field("repair_records_per_sec", buf);
    std::snprintf(buf, sizeof(buf), "%.0f",
                  static_cast<double>(row.records_per_rep) /
                      (row.wall.min / 1e3));
    e.Field("repair_records_per_sec_best", buf);
    std::snprintf(buf, sizeof(buf), "%.3f", row.wall.mean);
    e.Field("reconverge_ms", buf);
    e.Field("converged", row.converged ? "true" : "false");
    e.Field("clean", row.clean ? "true" : "false");
    e.CloseObject();
  }
  e.CloseArray();
  e.OpenObject("gate");
  e.Field("all_converged", all_converged ? "true" : "false");
  e.Field("no_findings", all_clean ? "true" : "false");
  e.CloseObject();
  e.Field("repair_ok", repair_ok ? "true" : "false");
  e.CloseObject();

  std::ofstream out(out_path);
  out << std::move(e).Take() << "\n";
  out.close();
  std::printf("wrote %s\n", out_path.c_str());

  if (!repair_ok) {
    std::fprintf(stderr, "repair_bench: FAILURE — %s\n",
                 all_converged ? "a repair round produced findings"
                               : "a replica failed to converge");
    return 1;
  }
  return 0;
}
