// streaming_bench — online detection latency of the streaming auditor vs
// batch-at-end auditing, plus streaming consumption throughput.
//
// Builds a relay-chain fleet with a known set of misbehaving transmissions
// (receipt-hiding: the subscriber entry is dropped) spread uniformly across
// the run, then replays the upload stream through a StreamingAuditor that
// seals an epoch every --epoch transmissions. Each flagged pair's detection
// latency is the wall time from its first entry's arrival to its flagged
// seal; the batch-at-end latency for the same pair is the remainder of the
// stream plus one full batch audit (detection is only possible once
// everything has arrived and been audited). The run fails unless
//
//   * the streaming report is byte-identical to the batch report, and
//   * streaming p99 detection is at least --min-detect-speedup times
//     earlier than batch-at-end p99 (default 10x).
//
// Output: BENCH_streaming.json (schema-checked and baseline-gated by
// tools/check_bench_json.py; the throughput rows are what regress).
//
//   streaming_bench [--entries N] [--links L] [--flagged K] [--epoch E]
//                   [--rsa-bits B] [--reps R] [--min-detect-speedup X]
//                   [--out FILE]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "adlp/protocols.h"
#include "audit/auditor.h"
#include "audit/log_database.h"
#include "audit/report_json.h"
#include "audit/streaming_auditor.h"
#include "bench_util.h"
#include "common/clock.h"
#include "faults/fabricate.h"

using namespace adlp;

namespace {

struct Fleet {
  /// Entries grouped per transmission (1 entry for hidden receipts, 2
  /// otherwise) so epoch boundaries always land between transmissions.
  std::vector<std::vector<proto::LogEntry>> arrivals;
  std::size_t entries = 0;
  std::size_t flagged = 0;
  audit::Topology topology;
  crypto::KeyStore keys;

  std::vector<proto::LogEntry> Flat() const {
    std::vector<proto::LogEntry> flat;
    flat.reserve(entries);
    for (const auto& group : arrivals) {
      flat.insert(flat.end(), group.begin(), group.end());
    }
    return flat;
  }
};

Fleet BuildFleet(std::size_t target_entries, std::size_t links,
                 std::size_t flagged_target, std::size_t rsa_bits) {
  Fleet fleet;
  Rng rng(0x57bea);

  std::vector<proto::NodeIdentity> ids;
  ids.reserve(links + 1);
  for (std::size_t i = 0; i <= links; ++i) {
    ids.push_back(proto::MakeNodeIdentity("s" + std::to_string(i), rng,
                                          rsa_bits));
    fleet.keys.Register(ids.back().id, ids.back().keys.pub);
  }

  const std::size_t seqs_per_link =
      (target_entries + 2 * links - 1) / (2 * links);
  const std::size_t total_pairs = links * seqs_per_link;
  const std::size_t stride =
      flagged_target == 0 ? 0 : std::max<std::size_t>(1, total_pairs /
                                                             flagged_target);
  std::size_t pair_index = 0;
  for (std::size_t link = 0; link < links; ++link) {
    const std::string topic = "t" + std::to_string(link + 1);
    fleet.topology[topic] =
        pubsub::Master::TopicInfo{ids[link].id, {ids[link + 1].id}};
    for (std::size_t s = 1; s <= seqs_per_link; ++s, ++pair_index) {
      faults::FabricationSpec spec;
      spec.topic = topic;
      spec.seq = s;
      spec.timestamp = static_cast<Timestamp>(s * 1000 + link * 10);
      spec.message_stamp = spec.timestamp - 1;
      spec.data = rng.RandomBytes(48);
      spec.peer = ids[link + 1].id;
      const faults::ForgedPair pair = faults::ForgeColludingPair(
          ids[link], ids[link + 1], spec, /*subscriber_stores_hash=*/true);
      std::vector<proto::LogEntry> group{pair.publisher_entry};
      const bool hide =
          stride != 0 && pair_index % stride == 0 && fleet.flagged <
                                                         flagged_target;
      if (hide) {
        ++fleet.flagged;  // subscriber entry withheld: receipt-hiding
      } else {
        group.push_back(pair.subscriber_entry);
      }
      fleet.entries += group.size();
      fleet.arrivals.push_back(std::move(group));
    }
  }
  return fleet;
}

double PercentileMs(std::vector<double> ns_samples, double q) {
  if (ns_samples.empty()) return 0.0;
  std::sort(ns_samples.begin(), ns_samples.end());
  const std::size_t index = static_cast<std::size_t>(
      static_cast<double>(ns_samples.size() - 1) * q);
  return ns_samples[index] / 1e6;
}

int Usage() {
  std::fprintf(stderr,
               "usage: streaming_bench [--entries N] [--links L] "
               "[--flagged K] [--epoch E] [--rsa-bits B] [--reps R] "
               "[--min-detect-speedup X] [--out FILE]\n");
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t target_entries = 8192;
  std::size_t links = 8;
  std::size_t flagged = 32;
  std::size_t epoch_transmissions = 128;
  std::size_t rsa_bits = 512;
  std::size_t reps = 3;
  double min_detect_speedup = 10.0;
  std::string out_path = "BENCH_streaming.json";

  for (int i = 1; i < argc; ++i) {
    auto next = [&](std::size_t& slot) {
      if (i + 1 >= argc) return false;
      slot = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      return true;
    };
    if (std::strcmp(argv[i], "--entries") == 0) {
      if (!next(target_entries)) return Usage();
    } else if (std::strcmp(argv[i], "--links") == 0) {
      if (!next(links) || links == 0) return Usage();
    } else if (std::strcmp(argv[i], "--flagged") == 0) {
      if (!next(flagged) || flagged == 0) return Usage();
    } else if (std::strcmp(argv[i], "--epoch") == 0) {
      if (!next(epoch_transmissions) || epoch_transmissions == 0) {
        return Usage();
      }
    } else if (std::strcmp(argv[i], "--rsa-bits") == 0) {
      if (!next(rsa_bits)) return Usage();
    } else if (std::strcmp(argv[i], "--reps") == 0) {
      if (!next(reps) || reps == 0) return Usage();
    } else if (std::strcmp(argv[i], "--min-detect-speedup") == 0 &&
               i + 1 < argc) {
      min_detect_speedup = std::strtod(argv[++i], nullptr);
      if (min_detect_speedup <= 0.0) return Usage();
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      return Usage();
    }
  }

  bench::PrintHeader("streaming audit: online detection vs batch-at-end");
  std::printf(
      "generating fleet: ~%zu entries, %zu links, %zu hidden receipts, "
      "RSA-%zu ...\n",
      target_entries, links, flagged, rsa_bits);
  const Fleet fleet = BuildFleet(target_entries, links, flagged, rsa_bits);
  const std::vector<proto::LogEntry> flat = fleet.Flat();
  std::printf("fleet: %zu entries over %zu transmissions, %zu misbehaving, "
              "epoch every %zu transmissions\n",
              fleet.entries, fleet.arrivals.size(), fleet.flagged,
              epoch_transmissions);

  // Batch reference: wall time and the byte-identity oracle.
  const audit::Auditor batch(fleet.keys);
  std::string batch_json;
  const std::vector<double> batch_samples = bench::TimeSamplesMs(reps, [&] {
    const audit::LogDatabase db(flat, fleet.topology);
    batch_json = audit::RenderReportJson(batch.Audit(db));
  });
  const bench::SampleStats batch_stats = bench::ComputeStats(batch_samples);

  // Streaming runs: detection latencies from the last repetition, wall
  // times from all of them.
  std::string streaming_json;
  std::vector<double> detect_ns;           // streaming: arrival -> flag
  std::vector<double> arrival_ns;          // absolute arrival stamps
  Timestamp stream_end_ns = 0;
  std::size_t online_flags = 0;
  const std::vector<double> streaming_samples =
      bench::TimeSamplesMs(reps, [&] {
        detect_ns.clear();
        arrival_ns.clear();
        audit::StreamingOptions options;
        options.on_finding = [&](const audit::PairVerdict&, Timestamp ns) {
          detect_ns.push_back(static_cast<double>(ns));
          arrival_ns.push_back(
              static_cast<double>(MonotonicNowNs() - ns));
        };
        audit::StreamingAuditor streaming(fleet.keys, fleet.topology,
                                          options);
        std::size_t since_seal = 0;
        for (const auto& group : fleet.arrivals) {
          for (const auto& entry : group) streaming.OnEntry(entry);
          if (++since_seal == epoch_transmissions) {
            streaming.SealEpoch();
            since_seal = 0;
          }
        }
        streaming.SealEpoch();
        online_flags = detect_ns.size();
        stream_end_ns = MonotonicNowNs();
        streaming_json = audit::RenderReportJson(streaming.Finalize());
      });
  const bench::SampleStats streaming_stats =
      bench::ComputeStats(streaming_samples);

  // Batch-at-end detection latency for the same flagged pairs: the rest of
  // the stream has to arrive, then a full batch audit has to run.
  std::vector<double> batch_detect_ns;
  batch_detect_ns.reserve(arrival_ns.size());
  for (const double arrival : arrival_ns) {
    batch_detect_ns.push_back(static_cast<double>(stream_end_ns) - arrival +
                              batch_stats.mean * 1e6);
  }

  const double stream_p50 = PercentileMs(detect_ns, 0.50);
  const double stream_p99 = PercentileMs(detect_ns, 0.99);
  const double batch_p50 = PercentileMs(batch_detect_ns, 0.50);
  const double batch_p99 = PercentileMs(batch_detect_ns, 0.99);
  const double detect_speedup =
      stream_p99 > 0.0 ? batch_p99 / stream_p99 : 0.0;
  const bool identical = streaming_json == batch_json;
  const bool flags_complete = online_flags == fleet.flagged;
  const bool detect_ok = detect_speedup >= min_detect_speedup;
  const bool streaming_ok = identical && flags_complete && detect_ok;

  const double entries = static_cast<double>(fleet.entries);
  std::printf("\n%10s %12s %14s %14s %12s %12s\n", "mode", "wall ms",
              "entries/sec", "flags", "detect p50", "detect p99");
  bench::PrintRule();
  std::printf("%10s %12.2f %14.0f %14zu %10.2fms %10.2fms\n", "streaming",
              streaming_stats.mean, entries / (streaming_stats.mean / 1e3),
              online_flags, stream_p50, stream_p99);
  std::printf("%10s %12.2f %14.0f %14zu %10.2fms %10.2fms\n", "batch",
              batch_stats.mean, entries / (batch_stats.mean / 1e3),
              fleet.flagged, batch_p50, batch_p99);
  std::printf("\ndetection p99 speedup: %.1fx (gate: >= %.1fx)   "
              "report identical: %s   flags: %zu/%zu\n",
              detect_speedup, min_detect_speedup, identical ? "yes" : "NO",
              online_flags, fleet.flagged);

  audit::JsonEmitter e(/*pretty=*/true);
  e.OpenObject();
  e.OpenObject("config");
  e.NumberField("entries", fleet.entries);
  e.NumberField("transmissions", fleet.arrivals.size());
  e.NumberField("links", links);
  e.NumberField("flagged_pairs", fleet.flagged);
  e.NumberField("epoch_transmissions", epoch_transmissions);
  e.NumberField("rsa_bits", rsa_bits);
  e.NumberField("reps", reps);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", min_detect_speedup);
  e.Field("min_detect_speedup", buf);
  e.CloseObject();
  e.OpenArray("results");
  const struct {
    const char* mode;
    const bench::SampleStats* stats;
    std::size_t flags;
    double p50;
    double p99;
  } rows[] = {
      {"streaming", &streaming_stats, online_flags, stream_p50, stream_p99},
      {"batch", &batch_stats, fleet.flagged, batch_p50, batch_p99},
  };
  for (const auto& row : rows) {
    e.OpenObject();
    e.StringField("mode", row.mode);
    std::snprintf(buf, sizeof(buf), "%.3f", row.stats->mean);
    e.Field("wall_ms", buf);
    std::snprintf(buf, sizeof(buf), "%.0f",
                  entries / (row.stats->mean / 1e3));
    e.Field("entries_per_sec", buf);
    std::snprintf(buf, sizeof(buf), "%.0f", entries / (row.stats->min / 1e3));
    e.Field("entries_per_sec_best", buf);
    e.NumberField("flags", row.flags);
    std::snprintf(buf, sizeof(buf), "%.3f", row.p50);
    e.Field("detect_p50_ms", buf);
    std::snprintf(buf, sizeof(buf), "%.3f", row.p99);
    e.Field("detect_p99_ms", buf);
    e.CloseObject();
  }
  e.CloseArray();
  e.OpenObject("gate");
  std::snprintf(buf, sizeof(buf), "%.3f", detect_speedup);
  e.Field("detect_speedup_p99", buf);
  e.Field("identical", identical ? "true" : "false");
  e.Field("flags_complete", flags_complete ? "true" : "false");
  e.CloseObject();
  e.Field("streaming_ok", streaming_ok ? "true" : "false");
  e.CloseObject();

  std::ofstream out(out_path);
  out << std::move(e).Take() << "\n";
  out.close();
  std::printf("wrote %s\n", out_path.c_str());

  if (!identical) {
    std::fprintf(stderr,
                 "streaming_bench: FAILURE — streaming report diverged "
                 "from the batch reference\n");
    return 1;
  }
  if (!flags_complete) {
    std::fprintf(stderr,
                 "streaming_bench: FAILURE — %zu of %zu misbehaving pairs "
                 "flagged online\n",
                 online_flags, fleet.flagged);
    return 1;
  }
  if (!detect_ok) {
    std::fprintf(stderr,
                 "streaming_bench: FAILURE — detection p99 speedup %.1fx "
                 "below the %.1fx gate\n",
                 detect_speedup, min_detect_speedup);
    return 2;
  }
  return 0;
}
