// Ablation C — effect of the ACK-gating window on throughput over a link
// with propagation delay.
//
// The paper's protocol sends publication seq+1 to a subscriber only after
// the ACK for seq (window = 1), paying one round-trip per message. A wider
// window pipelines transmissions. With a simulated 2 ms one-way link delay,
// per-message time should approach (RTT / window) + processing.
#include <atomic>

#include "bench_util.h"

namespace {

using namespace adlp;
using namespace adlp::bench;

double MessagesPerSecond(std::size_t window, int messages) {
  pubsub::Master master;
  proto::LogServer server;
  Rng rng(17);

  proto::ComponentOptions opts = PaperOptions(proto::LoggingScheme::kAdlp);
  opts.ack_window = window;
  opts.link_model.latency_ns = 2'000'000;  // 2 ms one-way

  proto::Component pub("pub", master, server, rng, opts);
  proto::Component sub("sub", master, server, rng, opts);
  std::atomic<int> got{0};
  sub.Subscribe("t", [&](const pubsub::Message&) { got++; });
  auto& publisher = pub.Advertise("t");
  publisher.WaitForSubscribers(1);

  Bytes payload = rng.RandomBytes(1024);
  const Timestamp start = MonotonicNowNs();
  for (int i = 0; i < messages; ++i) publisher.Publish(payload);
  while (got.load() < messages) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const double elapsed_s =
      static_cast<double>(MonotonicNowNs() - start) / 1e9;
  pub.Shutdown();
  sub.Shutdown();
  return messages / elapsed_s;
}

}  // namespace

int main(int argc, char** argv) {
  const int messages = argc > 1 ? std::atoi(argv[1]) : 100;

  PrintHeader(
      "Ablation C: ACK-gating window vs throughput (1 KiB payload, 2 ms "
      "one-way link)");
  std::printf("%-8s | %-14s | %s\n", "window", "msgs/sec", "speedup vs w=1");
  PrintRule(48);
  double w1 = 0.0;
  for (std::size_t window : {1u, 2u, 4u, 8u}) {
    const double rate = MessagesPerSecond(window, messages);
    if (window == 1) w1 = rate;
    std::printf("%-8zu | %12.1f   | %.2fx\n", window, rate, rate / w1);
  }
  PrintRule(48);
  std::printf(
      "shape check: with a 4 ms RTT, window 1 caps throughput near 250 "
      "msg/s; doubling the\n"
      "window ~doubles throughput until processing costs dominate. The "
      "paper's window-1\n"
      "penalty is the price of its per-message accountability "
      "acknowledgement.\n");
  return 0;
}
