// Table IV — system-wide log generation rate of the full self-driving
// application, Base vs ADLP (subscribers store hashes in both).
//
// The application runs in fast (non-realtime) mode for a fixed number of
// camera frames; the logger's byte counter divided by the simulated
// duration gives the rate. Shape: ADLP adds ~1% over Base system-wide — the
// added hashes/signatures are small next to the images the Base scheme
// already stores.
#include "bench_util.h"
#include "sim/app.h"

namespace {

using namespace adlp;
using namespace adlp::bench;

double MeasureSystemLogRate(proto::LoggingScheme scheme, double sim_seconds,
                            bool aggregate = false) {
  pubsub::Master master;
  proto::LogServer server;
  sim::AppOptions options;
  options.component = PaperOptions(scheme);
  options.component.base.subscriber_stores_data = false;  // hash, like ADLP
  options.component.adlp.subscriber_stores_hash = true;
  options.component.adlp.aggregate_publisher_log = aggregate;
  options.realtime = false;
  sim::SelfDrivingApp app(master, server, options);
  app.Run(sim_seconds);
  app.Shutdown();
  return static_cast<double>(server.TotalBytes()) / sim_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const double sim_seconds = argc > 1 ? std::atof(argv[1]) : 3.0;

  PrintHeader("Table IV: system-wide log generation rate (self-driving app)");
  std::printf("(simulated duration per scheme: %.1f s)\n\n", sim_seconds);

  const double base =
      MeasureSystemLogRate(proto::LoggingScheme::kBase, sim_seconds);
  const double adlp_per_sub =
      MeasureSystemLogRate(proto::LoggingScheme::kAdlp, sim_seconds);
  const double adlp_agg = MeasureSystemLogRate(proto::LoggingScheme::kAdlp,
                                               sim_seconds, /*aggregate=*/true);

  std::printf("%-24s | %16s | %12s | %s\n", "Scheme", "Rate", "Mb/s",
              "vs Base");
  PrintRule(76);
  std::printf("%-24s | %13s/s | %9.3f | %s\n", "Base",
              HumanBytes(base).c_str(), base * 8 / 1e6, "1.000");
  std::printf("%-24s | %13s/s | %9.3f | %.3f\n", "ADLP (entry per sub)",
              HumanBytes(adlp_per_sub).c_str(), adlp_per_sub * 8 / 1e6,
              adlp_per_sub / base);
  std::printf("%-24s | %13s/s | %9.3f | %.3f\n", "ADLP (aggregated)",
              HumanBytes(adlp_agg).c_str(), adlp_agg * 8 / 1e6,
              adlp_agg / base);
  PrintRule(76);
  std::printf(
      "paper: Base 36.893 Mb/s, ADLP 37.297 Mb/s (ratio 1.011).\n"
      "shape check: with one publisher entry per *publication* (the "
      "aggregated accounting,\n"
      "which matches the paper's near-parity since its pipeline stores "
      "each image once),\n"
      "ADLP adds only ~1%% over Base. Per-subscriber entries replicate the "
      "image for each of\n"
      "the two image subscribers in our Fig. 11(b) graph — the cost the "
      "Sec. VI-E aggregated-\n"
      "logging extension removes.\n");
  return 0;
}
