// Ablation B (Section IV-A, "h(I_y) vs I_y") — subscriber log entries can
// store the received data or only its hash. Sweeps payload size and reports
// the subscriber entry size under both options, locating the crossover
// below which storing the data itself is cheaper than the 32-byte digest.
#include <atomic>

#include "bench_util.h"

namespace {

using namespace adlp;
using namespace adlp::bench;

std::size_t SubscriberEntryBytes(bool store_hash, std::size_t payload_size) {
  pubsub::Master master;
  proto::LogServer server;
  Rng rng(11);

  proto::ComponentOptions opts = PaperOptions(proto::LoggingScheme::kAdlp);
  opts.adlp.subscriber_stores_hash = store_hash;

  proto::Component pub("pub", master, server, rng, opts);
  proto::Component sub("sub", master, server, rng, opts);
  std::atomic<int> got{0};
  sub.Subscribe("t", [&](const pubsub::Message&) { got++; });
  auto& publisher = pub.Advertise("t");
  publisher.WaitForSubscribers(1);
  publisher.Publish(rng.RandomBytes(payload_size));
  while (got.load() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  pub.Shutdown();
  sub.Shutdown();
  return static_cast<std::size_t>(server.BytesFor("sub"));
}

}  // namespace

int main() {
  PrintHeader(
      "Ablation B: subscriber log entry size, storing h(I_y) vs I_y");
  std::printf("%-12s | %-14s | %-14s | %s\n", "Payload (B)", "store data",
              "store hash", "hash wins?");
  PrintRule(64);
  for (std::size_t size :
       {4u, 16u, 20u, 32u, 48u, 64u, 256u, 8705u, 921641u}) {
    const std::size_t with_data = SubscriberEntryBytes(false, size);
    const std::size_t with_hash = SubscriberEntryBytes(true, size);
    std::printf("%-12zu | %-14zu | %-14zu | %s\n", size, with_data, with_hash,
                with_hash < with_data ? "yes" : "no");
  }
  PrintRule(64);
  std::printf(
      "shape check: the hash option wins for any payload above the digest "
      "size (~32 B);\n"
      "below it (e.g. the 20-B Steering angle) storing data as-is is "
      "smaller — the paper's\n"
      "small-data exception.\n");
  return 0;
}
