// Figure 14 — publisher CPU utilization for an Image stream (921,641 B @
// 20 Hz) as the number of Image subscribers grows, comparing No-Logging,
// Base Logging, and ADLP.
//
// The publisher-attributable CPU (encode/sign + connection threads +
// logging thread) is measured with per-thread CPU clocks. Shapes to
// reproduce:
//   * Base - None grows ~linearly with subscriber count (per-link copies and
//     per-subscriber log entries);
//   * ADLP - Base stays roughly flat: the hash+signature is computed once
//     per publication regardless of subscriber count.
#include <thread>

#include "bench_util.h"
#include "sim/workload.h"

namespace {

using namespace adlp;
using namespace adlp::bench;

struct CpuResult {
  double utilization_pct = 0.0;  // publisher CPU / wall
  std::uint64_t published = 0;
};

CpuResult MeasurePublisherCpu(proto::LoggingScheme scheme, int subscribers,
                              double seconds) {
  pubsub::Master master;
  proto::LogServer server;
  Rng rng(7);

  proto::ComponentOptions opts = PaperOptions(scheme);
  proto::Component pub("image_feeder", master, server, rng, opts);
  std::vector<std::unique_ptr<proto::Component>> subs;
  for (int i = 0; i < subscribers; ++i) {
    subs.push_back(std::make_unique<proto::Component>(
        "image_sub_" + std::to_string(i), master, server, rng, opts));
    subs.back()->Subscribe("image", [](const pubsub::Message&) {});
  }

  auto& publisher = pub.Advertise("image");
  publisher.WaitForSubscribers(subscribers);

  const auto& spec = sim::PaperDataType("Image");
  Bytes payload = rng.RandomBytes(spec.size_bytes);

  const Timestamp wall_start = MonotonicNowNs();
  const std::int64_t cpu_start = pub.CpuTimeNs();

  const auto period = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(1.0 / spec.rate_hz));
  auto next = std::chrono::steady_clock::now();
  std::uint64_t published = 0;
  const auto deadline =
      next + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(seconds));
  while (std::chrono::steady_clock::now() < deadline) {
    publisher.Publish(payload);
    ++published;
    next += period;
    std::this_thread::sleep_until(next);
  }

  const double wall_ns =
      static_cast<double>(MonotonicNowNs() - wall_start);
  const double cpu_ns = static_cast<double>(pub.CpuTimeNs() - cpu_start);

  pub.Shutdown();
  for (auto& s : subs) s->Shutdown();

  return CpuResult{100.0 * cpu_ns / wall_ns, published};
}

}  // namespace

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 3.0;

  PrintHeader(
      "Figure 14: publisher CPU utilization, Image @ 20 Hz, vs #subscribers");
  std::printf("%-6s | %-12s | %-12s | %-12s | %-11s | %s\n", "#subs",
              "No Logging", "Base", "ADLP", "Base-None", "ADLP-Base");
  PrintRule(84);

  for (int subs = 1; subs <= 4; ++subs) {
    const CpuResult none = MeasurePublisherCpu(
        adlp::proto::LoggingScheme::kNone, subs, seconds);
    const CpuResult base = MeasurePublisherCpu(
        adlp::proto::LoggingScheme::kBase, subs, seconds);
    const CpuResult adlp = MeasurePublisherCpu(
        adlp::proto::LoggingScheme::kAdlp, subs, seconds);
    std::printf(
        "%-6d | %10.2f %% | %10.2f %% | %10.2f %% | %+9.2f %% | %+9.2f %%\n",
        subs, none.utilization_pct, base.utilization_pct,
        adlp.utilization_pct, base.utilization_pct - none.utilization_pct,
        adlp.utilization_pct - base.utilization_pct);
  }
  PrintRule(84);
  std::printf(
      "shape checks: Base-None grows with #subscribers (per-subscriber "
      "logging of full\n"
      "images); ADLP-Base stays ~flat (crypto runs once per publication). "
      "Paper: ~6.7%%\n"
      "ADLP overhead at 1 subscriber, ~8.5%% at 4.\n");
  return 0;
}
