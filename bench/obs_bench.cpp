// obs_bench — per-record overhead of the observability primitives.
//
// The metrics layer only earns its keep if leaving it on is free: the design
// budget (src/obs/metrics.h) is < 100 ns per record on the hot path. This
// bench measures Counter::Add, Histogram::Record, Gauge::Add, and
// TraceLog::Record — single-threaded (the per-site cost instrument code
// pays) and with all cores hammering the same counter (the sharding
// worst case) — and writes BENCH_obs.json. Exits nonzero if the lock-free
// record path (counter/histogram/gauge) exceeds the budget, so CI's
// bench-smoke job enforces the contract.
//
//   obs_bench [--iters N] [--threads T] [--max-ns B] [--out FILE]
//
// Defaults: 2M iterations per primitive, hardware_concurrency contended
// writers, 100 ns budget.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "audit/report_json.h"
#include "bench_util.h"
#include "common/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace adlp;

namespace {

struct Result {
  std::string name;
  double ns_per_record = 0.0;
  bool gated = false;  // counts against --max-ns
};

/// Mean ns per call of `fn` over `iters` calls, best of 3 batches (the best
/// batch is the least disturbed by scheduler noise; the record path itself
/// has no variance worth characterizing).
template <typename Fn>
double MeasureNsPerCall(std::size_t iters, Fn&& fn) {
  double best = 1e18;
  for (int batch = 0; batch < 3; ++batch) {
    const Timestamp start = MonotonicNowNs();
    for (std::size_t i = 0; i < iters; ++i) fn(i);
    const double ns =
        static_cast<double>(MonotonicNowNs() - start) / static_cast<double>(iters);
    if (ns < best) best = ns;
  }
  return best;
}

int Usage() {
  std::fprintf(stderr,
               "usage: obs_bench [--iters N] [--threads T] [--max-ns B] "
               "[--out FILE]\n");
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t iters = 2'000'000;
  std::size_t threads = std::max(2u, std::thread::hardware_concurrency());
  std::size_t max_ns = 100;
  std::string out_path = "BENCH_obs.json";

  for (int i = 1; i < argc; ++i) {
    auto next = [&](std::size_t& slot) {
      if (i + 1 >= argc) return false;
      slot = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      return true;
    };
    if (std::strcmp(argv[i], "--iters") == 0) {
      if (!next(iters) || iters == 0) return Usage();
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      if (!next(threads) || threads == 0) return Usage();
    } else if (std::strcmp(argv[i], "--max-ns") == 0) {
      if (!next(max_ns) || max_ns == 0) return Usage();
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      return Usage();
    }
  }

  bench::PrintHeader("observability: per-record overhead");
  std::printf("%zu iterations/primitive, %zu contended threads, budget %zu ns\n\n",
              iters, threads, max_ns);

  obs::Counter counter;
  obs::Gauge gauge;
  obs::Histogram histogram(obs::DefaultLatencyBucketsNs());
  obs::TraceLog trace(obs::TraceLog::kDefaultCapacity);

  std::vector<Result> results;

  results.push_back({"counter_add", MeasureNsPerCall(iters, [&](std::size_t) {
                       counter.Add(1);
                     }),
                     true});
  results.push_back({"gauge_add", MeasureNsPerCall(iters, [&](std::size_t i) {
                       gauge.Add(i & 1 ? 1 : -1);
                     }),
                     true});
  // Spread samples across the bucket range: Record's cost is the linear
  // scan, so hitting only bucket 0 would flatter it.
  const std::size_t n_bounds = histogram.Bounds().size();
  const std::uint64_t top = histogram.Bounds().back();
  results.push_back(
      {"histogram_record", MeasureNsPerCall(iters, [&](std::size_t i) {
         histogram.Record((i * 2654435761u) % (top + top / 2));
       }),
       true});
  // Trace records are mutex-protected by design (rare protocol events);
  // measured for the record, not gated against the lock-free budget.
  results.push_back({"trace_record", MeasureNsPerCall(iters, [&](std::size_t i) {
                       trace.Record(obs::TraceKind::kPublish, "bench", i);
                     }),
                     false});

  // Contended counter: all threads on one Counter. Sharding should keep
  // this within the same order of magnitude as the uncontended case.
  {
    obs::Counter contended;
    const std::size_t per_thread = iters / threads + 1;
    const Timestamp start = MonotonicNowNs();
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&contended, per_thread] {
        for (std::size_t i = 0; i < per_thread; ++i) contended.Add(1);
      });
    }
    for (auto& w : workers) w.join();
    const double total_records =
        static_cast<double>(per_thread) * static_cast<double>(threads);
    // Wall time per record across all writers: with perfect sharding this
    // beats the single-thread figure (parallel progress), so gate it too.
    results.push_back({"counter_add_contended",
                       static_cast<double>(MonotonicNowNs() - start) /
                           total_records,
                       true});
    if (contended.Value() !=
        static_cast<std::uint64_t>(per_thread) * threads) {
      std::fprintf(stderr, "obs_bench: FAILURE — contended counter lost updates\n");
      return 1;
    }
  }

  std::printf("%-24s %14s %8s\n", "primitive", "ns/record", "budget");
  bench::PrintRule(50);
  bool within_budget = true;
  for (const Result& r : results) {
    const bool ok = !r.gated || r.ns_per_record < static_cast<double>(max_ns);
    within_budget &= ok;
    std::printf("%-24s %14.1f %8s\n", r.name.c_str(), r.ns_per_record,
                r.gated ? (ok ? "ok" : "OVER") : "-");
  }
  std::printf("(histogram: %zu buckets, top bound %llu ns)\n", n_bounds,
              static_cast<unsigned long long>(top));

  audit::JsonEmitter e(/*pretty=*/true);
  e.OpenObject();
  e.OpenObject("config");
  e.NumberField("iters", iters);
  e.NumberField("threads", threads);
  e.NumberField("max_ns", max_ns);
  e.NumberField("histogram_buckets", n_bounds);
  e.CloseObject();
  e.OpenArray("results");
  char buf[64];
  for (const Result& r : results) {
    e.OpenObject();
    e.StringField("name", r.name);
    std::snprintf(buf, sizeof(buf), "%.2f", r.ns_per_record);
    e.Field("ns_per_record", buf);
    e.Field("gated", r.gated ? "true" : "false");
    e.CloseObject();
  }
  e.CloseArray();
  e.Field("within_budget", within_budget ? "true" : "false");
  e.CloseObject();

  std::ofstream out(out_path);
  out << std::move(e).Take() << "\n";
  out.close();
  std::printf("\nwrote %s\n", out_path.c_str());

  if (!within_budget) {
    std::fprintf(stderr,
                 "obs_bench: FAILURE — a gated primitive exceeded %zu ns "
                 "per record\n",
                 max_ns);
    return 1;
  }
  return 0;
}
