// Shared helpers for the benchmark harness: sample statistics, table
// printing, and pre-generated RSA-1024 identities (matching the paper's key
// size so signature/message byte counts line up with Tables I and III).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "adlp/component.h"
#include "adlp/log_server.h"
#include "common/clock.h"
#include "common/rng.h"
#include "pubsub/master.h"

namespace adlp::bench {

struct SampleStats {
  double mean = 0.0;
  double stdev = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

inline SampleStats ComputeStats(std::vector<double> samples) {
  SampleStats s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / samples.size();
  double var = 0.0;
  for (double v : samples) var += (v - s.mean) * (v - s.mean);
  s.stdev = samples.size() > 1 ? std::sqrt(var / (samples.size() - 1)) : 0.0;
  s.p50 = samples[samples.size() / 2];
  s.p99 = samples[static_cast<std::size_t>(
      static_cast<double>(samples.size() - 1) * 0.99)];
  s.min = samples.front();
  s.max = samples.back();
  return s;
}

/// Times `fn` `iterations` times; returns per-call durations in
/// milliseconds.
template <typename Fn>
std::vector<double> TimeSamplesMs(std::size_t iterations, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(iterations);
  for (std::size_t i = 0; i < iterations; ++i) {
    const Timestamp start = MonotonicNowNs();
    fn();
    samples.push_back(static_cast<double>(MonotonicNowNs() - start) / 1e6);
  }
  return samples;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Human-readable byte count.
inline std::string HumanBytes(double bytes) {
  char buf[64];
  if (bytes >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", bytes / 1e6);
  } else if (bytes >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", bytes / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

/// Component options preset for benches: 1024-bit keys as in the paper.
inline proto::ComponentOptions PaperOptions(
    proto::LoggingScheme scheme = proto::LoggingScheme::kAdlp) {
  proto::ComponentOptions opts;
  opts.scheme = scheme;
  opts.rsa_bits = 1024;
  return opts;
}

inline const char* SchemeLabel(proto::LoggingScheme scheme) {
  switch (scheme) {
    case proto::LoggingScheme::kNone: return "No Logging";
    case proto::LoggingScheme::kBase: return "Base Logging";
    case proto::LoggingScheme::kAdlp: return "ADLP";
  }
  return "?";
}

}  // namespace adlp::bench
