// audit_bench — throughput of the offline audit pipeline, serial vs
// sharded-parallel, with and without the signature-verification memo cache.
//
// Builds a synthetic fleet (a relay chain, every transmission faithfully
// logged on both sides), audits the resulting LogDatabase under a matrix of
// {threads} x {cache} configurations, checks that every configuration's
// report is byte-identical to the serial one, and writes the measurements
// to BENCH_audit.json.
//
//   audit_bench [--alg rsa|ed25519] [--entries N] [--links L]
//               [--rsa-bits B] [--reps R] [--max-threads T]
//               [--min-parallel-ratio X] [--out FILE]
//
// Defaults: 51200 entries over 8 links, 512-bit RSA (the protocol logic is
// key-size agnostic; --rsa-bits 1024 reproduces the paper's signature
// sizes at ~4x the verification cost), 3 repetitions per configuration,
// thread counts 1/2/4/8. --alg ed25519 signs the fleet with the
// lightweight scheme instead, whose verification runs through the
// combined-equation batch kernel.
//
// Every configuration's throughput is also checked against the serial row
// of the same cache setting: parallel audit must never be slower than
// serial beyond --min-parallel-ratio (noise tolerance). Two measures keep
// this gate meaningful rather than flaky on shared or small CI runners:
//   - The gate compares best-of-reps throughput (fastest repetition on
//     both sides) rather than the mean. Contention only ever adds time,
//     so the fastest sample is the low-noise estimate, and one unlucky
//     scheduling burst in a repetition cannot fail the job.
//   - Only thread counts the hardware can actually run in parallel
//     (threads <= hardware_concurrency) are gated. Oversubscribed rows —
//     e.g. threads=4 on a 2-core runner, where parallel physically cannot
//     beat serial and pool overhead makes it slower — are measured and
//     reported but exempt from the gate.
// A violation fails the run, making thread-scaling regressions (e.g. cold
// shard indexes built inside the timed region) CI-visible. The mean is
// still what gets reported and baseline-compared.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "adlp/protocols.h"
#include "audit/auditor.h"
#include "audit/log_database.h"
#include "audit/report_json.h"
#include "bench_util.h"
#include "common/thread_pool.h"
#include "faults/fabricate.h"

using namespace adlp;

namespace {

struct Config {
  std::size_t threads;
  bool cache;
};

struct Measurement {
  Config config;
  double ms_mean = 0.0;
  double entries_per_sec = 0.0;
  double eps_best = 0.0;  // throughput of the fastest repetition
  double speedup = 1.0;
  std::size_t cache_lookups = 0;
  std::size_t cache_hits = 0;
  bool identical = true;
  bool monotone = true;  // not slower than the serial row (same cache)
};

struct Fleet {
  std::vector<proto::LogEntry> entries;
  audit::Topology topology;
  crypto::KeyStore keys;
};

/// Relay chain c0 -> c1 -> ... -> c{links}: every link carries
/// seqs-per-link transmissions, each logged faithfully by both sides (two
/// entries per transmission, exactly two signatures per entry — the
/// worst-case verification load, since nothing short-circuits).
Fleet BuildFleet(std::size_t target_entries, std::size_t links,
                 std::size_t rsa_bits, crypto::SigAlgorithm alg) {
  Fleet fleet;
  Rng rng(0xa0d17);

  std::vector<proto::NodeIdentity> ids;
  ids.reserve(links + 1);
  for (std::size_t i = 0; i <= links; ++i) {
    ids.push_back(
        proto::MakeNodeIdentity("c" + std::to_string(i), rng, rsa_bits, alg));
    fleet.keys.Register(ids.back().id, ids.back().keys.pub);
  }

  const std::size_t seqs_per_link =
      (target_entries + 2 * links - 1) / (2 * links);
  for (std::size_t link = 0; link < links; ++link) {
    const std::string topic = "t" + std::to_string(link + 1);
    fleet.topology[topic] =
        pubsub::Master::TopicInfo{ids[link].id, {ids[link + 1].id}};
    for (std::size_t s = 1; s <= seqs_per_link; ++s) {
      faults::FabricationSpec spec;
      spec.topic = topic;
      spec.seq = s;
      spec.timestamp = static_cast<Timestamp>(s * 1000 + link * 10);
      spec.message_stamp = spec.timestamp - 1;
      spec.data = rng.RandomBytes(48);
      spec.peer = ids[link + 1].id;
      const faults::ForgedPair pair = faults::ForgeColludingPair(
          ids[link], ids[link + 1], spec, /*subscriber_stores_hash=*/true);
      fleet.entries.push_back(pair.publisher_entry);
      fleet.entries.push_back(pair.subscriber_entry);
    }
  }
  return fleet;
}

int Usage() {
  std::fprintf(stderr,
               "usage: audit_bench [--alg rsa|ed25519] [--entries N] "
               "[--links L] [--rsa-bits B] [--reps R] [--max-threads T] "
               "[--min-parallel-ratio X] [--out FILE]\n");
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t target_entries = 51200;
  std::size_t links = 8;
  std::size_t rsa_bits = 512;
  std::size_t reps = 3;
  std::size_t max_threads = 8;
  double min_parallel_ratio = 0.85;
  crypto::SigAlgorithm alg = crypto::SigAlgorithm::kRsaPkcs1Sha256;
  std::string out_path = "BENCH_audit.json";

  for (int i = 1; i < argc; ++i) {
    auto next = [&](std::size_t& slot) {
      if (i + 1 >= argc) return false;
      slot = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      return true;
    };
    if (std::strcmp(argv[i], "--entries") == 0) {
      if (!next(target_entries)) return Usage();
    } else if (std::strcmp(argv[i], "--links") == 0) {
      if (!next(links) || links == 0) return Usage();
    } else if (std::strcmp(argv[i], "--rsa-bits") == 0) {
      if (!next(rsa_bits)) return Usage();
    } else if (std::strcmp(argv[i], "--reps") == 0) {
      if (!next(reps) || reps == 0) return Usage();
    } else if (std::strcmp(argv[i], "--max-threads") == 0) {
      if (!next(max_threads) || max_threads == 0) return Usage();
    } else if (std::strcmp(argv[i], "--min-parallel-ratio") == 0 &&
               i + 1 < argc) {
      min_parallel_ratio = std::strtod(argv[++i], nullptr);
      if (min_parallel_ratio <= 0.0) return Usage();
    } else if (std::strcmp(argv[i], "--alg") == 0 && i + 1 < argc) {
      const std::string name = argv[++i];
      if (name == "rsa") {
        alg = crypto::SigAlgorithm::kRsaPkcs1Sha256;
      } else if (name == "ed25519") {
        alg = crypto::SigAlgorithm::kEd25519;
      } else {
        return Usage();
      }
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      return Usage();
    }
  }

  bench::PrintHeader("audit pipeline: serial vs sharded-parallel");
  if (alg == crypto::SigAlgorithm::kRsaPkcs1Sha256) {
    std::printf("generating fleet: ~%zu entries, %zu links, RSA-%zu ...\n",
                target_entries, links, rsa_bits);
  } else {
    std::printf("generating fleet: ~%zu entries, %zu links, Ed25519 ...\n",
                target_entries, links);
  }
  const Fleet fleet = BuildFleet(target_entries, links, rsa_bits, alg);
  const audit::LogDatabase db(fleet.entries, fleet.topology);
  // The Shards() call below doubles as a warm-up: the shard index is lazily
  // built on first use, and the parallel rows must not pay that one-time
  // indexing cost inside a timed repetition.
  std::printf("database: %zu entries, %zu pairs, %zu shards\n",
              fleet.entries.size(), db.Pairs().size(), db.Shards().size());

  const audit::Auditor auditor(fleet.keys);

  // Serial reference report: all other configurations must match it
  // byte-for-byte.
  const audit::AuditReport serial_report = auditor.Audit(db);
  const std::string serial_json = audit::RenderReportJson(serial_report);

  std::vector<Config> configs;
  for (std::size_t t = 1; t <= max_threads; t *= 2) {
    configs.push_back({t, false});
    configs.push_back({t, true});
  }

  const std::size_t hw_threads =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (hw_threads < max_threads) {
    std::printf(
        "note: %zu hardware thread(s) — scaling gate covers threads <= %zu; "
        "oversubscribed rows are reported but not gated\n",
        hw_threads, hw_threads);
  }

  std::vector<Measurement> results;
  double serial_ms = 0.0;
  double serial_eps[2] = {0.0, 0.0};  // entries/sec of threads=1, per cache
  std::printf("\n%8s %6s %12s %14s %10s %10s  %s\n", "threads", "cache",
              "mean ms", "entries/sec", "speedup", "hit-rate", "identical");
  bench::PrintRule();
  for (const Config& config : configs) {
    ThreadPool pool(config.threads);
    audit::AuditOptions exec;
    exec.threads = config.threads;
    exec.cache = config.cache;
    exec.pool = config.threads > 1 ? &pool : nullptr;

    Measurement m;
    m.config = config;
    std::string json;
    // A fresh cache per repetition reproduces the per-call `cache = true`
    // behavior (and its warm-up cost) rather than benchmarking a pre-warmed
    // memo table.
    const std::vector<double> samples =
        bench::TimeSamplesMs(reps, [&] {
          crypto::VerifyCache rep_cache;
          audit::AuditOptions timed = exec;
          timed.verify_cache = config.cache ? &rep_cache : nullptr;
          const audit::AuditReport report = auditor.Audit(db, timed);
          json = audit::RenderReportJson(report);
          m.cache_lookups = rep_cache.Lookups();
          m.cache_hits = rep_cache.Hits();
        });
    const bench::SampleStats stats = bench::ComputeStats(samples);
    m.ms_mean = stats.mean;
    m.entries_per_sec =
        static_cast<double>(fleet.entries.size()) / (stats.mean / 1e3);
    m.eps_best =
        static_cast<double>(fleet.entries.size()) / (stats.min / 1e3);
    m.identical = (json == serial_json);
    if (config.threads == 1 && !config.cache) serial_ms = stats.mean;
    m.speedup = serial_ms > 0.0 ? serial_ms / stats.mean : 1.0;
    // Thread-scaling assertion: a parallel configuration must reach at
    // least min_parallel_ratio of the serial throughput measured under the
    // same cache setting. Both sides use best-of-reps: scheduler noise on
    // a shared runner only inflates samples, so the fastest repetition is
    // the robust estimate, and a single preempted rep cannot fail the
    // gate. Rows oversubscribing the hardware (threads > cores) cannot be
    // expected to beat serial, so they are reported but not gated.
    double& serial_ref = serial_eps[config.cache ? 1 : 0];
    if (config.threads == 1) {
      serial_ref = m.eps_best;
    } else if (serial_ref > 0.0 && config.threads <= hw_threads) {
      m.monotone = m.eps_best >= min_parallel_ratio * serial_ref;
    }
    results.push_back(m);
    char hit_rate[16] = "-";
    if (m.cache_lookups > 0) {
      std::snprintf(hit_rate, sizeof(hit_rate), "%.1f%%",
                    100.0 * static_cast<double>(m.cache_hits) /
                        static_cast<double>(m.cache_lookups));
    }
    std::printf("%8zu %6s %12.2f %14.0f %9.2fx %10s  %s%s\n", config.threads,
                config.cache ? "on" : "off", m.ms_mean, m.entries_per_sec,
                m.speedup, hit_rate, m.identical ? "yes" : "NO (BUG)",
                m.monotone ? "" : "  [SLOWER THAN SERIAL]");
  }

  bool all_identical = true;
  bool scaling_monotone = true;
  for (const Measurement& m : results) {
    all_identical &= m.identical;
    scaling_monotone &= m.monotone;
  }

  audit::JsonEmitter e(/*pretty=*/true);
  e.OpenObject();
  e.OpenObject("config");
  e.NumberField("entries", fleet.entries.size());
  e.NumberField("pairs", db.Pairs().size());
  e.NumberField("shards", db.Shards().size());
  e.NumberField("links", links);
  e.StringField("alg", alg == crypto::SigAlgorithm::kEd25519 ? "ed25519"
                                                             : "rsa");
  e.NumberField("rsa_bits", rsa_bits);
  e.NumberField("reps", reps);
  e.NumberField("hardware_concurrency", hw_threads);
  e.CloseObject();
  e.OpenArray("results");
  char buf[64];
  for (const Measurement& m : results) {
    e.OpenObject();
    e.NumberField("threads", m.config.threads);
    e.Field("cache", m.config.cache ? "true" : "false");
    std::snprintf(buf, sizeof(buf), "%.3f", m.ms_mean);
    e.Field("ms_mean", buf);
    std::snprintf(buf, sizeof(buf), "%.0f", m.entries_per_sec);
    e.Field("entries_per_sec", buf);
    std::snprintf(buf, sizeof(buf), "%.0f", m.eps_best);
    e.Field("entries_per_sec_best", buf);
    std::snprintf(buf, sizeof(buf), "%.3f", m.speedup);
    e.Field("speedup_vs_serial", buf);
    e.NumberField("cache_lookups", m.cache_lookups);
    e.NumberField("cache_hits", m.cache_hits);
    e.Field("report_identical", m.identical ? "true" : "false");
    e.Field("monotone_ok", m.monotone ? "true" : "false");
    e.CloseObject();
  }
  e.CloseArray();
  e.Field("all_reports_identical", all_identical ? "true" : "false");
  e.Field("scaling_monotone", scaling_monotone ? "true" : "false");
  e.CloseObject();

  std::ofstream out(out_path);
  out << std::move(e).Take() << "\n";
  out.close();
  std::printf("\nwrote %s\n", out_path.c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "audit_bench: FAILURE — a parallel report diverged from "
                 "the serial reference\n");
    return 1;
  }
  if (!scaling_monotone) {
    std::fprintf(stderr,
                 "audit_bench: FAILURE — a parallel configuration ran "
                 "slower than serial (below --min-parallel-ratio %.2f)\n",
                 min_parallel_ratio);
    return 2;
  }
  return 0;
}
