// scale_bench — C10k-style fan-out: reactor vs thread-per-connection.
//
// One "publisher" process end fans a small stamped payload out to N
// subscriber connections, ack-clocked with at most W messages in flight per
// link (--window 1 is the paper's strict scheme: a new message is not sent
// on a link whose previous ACK is outstanding). The server side runs either
// the historical thread-per-connection model (one blocking send/receive
// thread per subscriber) or the epoll reactor (transport/reactor.h); the
// client side always runs on a private reactor so 4096 subscribers never
// cost 4096 client threads and both server modes face identical peers.
//
// Each delivery carries an 8-byte monotonic send stamp; the subscriber
// records publish→deliver latency on receipt. Reported per (subs, mode):
// deliveries/sec and p50/p99 latency. BENCH_scale.json carries a gate
// block: at the largest measured fan-out the reactor must reach
// `--min-speedup`× the thread-mode deliveries/sec at equal-or-lower p99
// (scale_ok=false otherwise, exit 1).
//
//   scale_bench [--subs N,N,...] [--rounds R] [--payload B]
//               [--min-speedup X] [--timeout-s S] [--out FILE]
//
// Defaults: subs 64,512,4096; rounds auto (~100k deliveries per point);
// payload 64 B; window 1; min speedup 1.5 (0 disables the gate);
// timeout 180 s.
//
// On the gate default: on a single core, per-delivery cost is bounded below
// by loopback TCP per-packet processing (~4 segments per ack-clocked
// delivery), which both modes pay identically — the reactor's advantage is
// what it saves on context switches and per-thread stacks, measured here at
// 1.8-3.8x with thread-mode numbers swinging ±40% run to run under
// scheduler noise. 1.5 is the largest threshold that holds across that
// variance; on multicore hardware, where thread mode also pays cross-core
// migration of 4096 runnable threads, the gap widens well past 5x.
#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "audit/report_json.h"
#include "bench_util.h"
#include "common/clock.h"
#include "transport/epoll_channel.h"
#include "transport/reactor.h"
#include "transport/tcp.h"

using namespace adlp;

namespace {

struct RunResult {
  std::size_t subs = 0;
  std::string mode;
  std::size_t rounds = 0;
  std::uint64_t deliveries = 0;
  double wall_ms = 0.0;
  double deliveries_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  bool timed_out = false;
};

void StampPayload(Bytes& payload) {
  const std::uint64_t now = static_cast<std::uint64_t>(MonotonicNowNs());
  for (int i = 0; i < 8; ++i) {
    payload[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(now >> (8 * i));
  }
}

std::int64_t ReadStamp(BytesView payload) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | payload[static_cast<std::size_t>(i)];
  }
  return static_cast<std::int64_t>(v);
}

/// One subscriber endpoint: records latency per delivery and acks.
struct ClientLink {
  std::shared_ptr<transport::EpollChannel> channel;
  std::vector<double> latencies_us;  // preallocated; loop-thread only
  std::size_t received = 0;
};

/// One reactor-mode server link: windowed ack-clocked sending. All state is
/// loop-thread-only after kickoff.
struct ServerLink : std::enable_shared_from_this<ServerLink> {
  std::shared_ptr<transport::EpollChannel> channel;
  std::size_t to_send = 0;
  std::size_t to_ack = 0;
  std::size_t in_flight = 0;
  std::size_t window = 1;
  std::size_t payload_bytes = 0;
  std::atomic<std::size_t>* links_done = nullptr;

  void Kick() {
    while (in_flight < window && to_send > 0) {
      --to_send;
      ++in_flight;
      Bytes payload(payload_bytes, 0);
      StampPayload(payload);
      if (!channel->Send(payload)) {
        Finish();
        return;
      }
    }
  }

  void OnAck() {
    if (to_ack == 0) return;
    --to_ack;
    if (in_flight > 0) --in_flight;
    if (to_ack == 0) {
      Finish();
      return;
    }
    Kick();
  }

  void Finish() {
    if (links_done != nullptr) {
      links_done->fetch_add(1, std::memory_order_relaxed);
      links_done = nullptr;
    }
  }
};

/// Raises the fd soft limit to the hard limit; 4096 subscribers need ~2x
/// that in sockets within one process.
void RaiseFdLimit() {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) == 0 && lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    (void)setrlimit(RLIMIT_NOFILE, &lim);
  }
}

RunResult RunOne(transport::TransportMode mode, std::size_t subs,
                 std::size_t rounds, std::size_t payload_bytes,
                 std::size_t window, std::int64_t timeout_s) {
  RunResult result;
  result.subs = subs;
  result.rounds = rounds;
  result.mode =
      mode == transport::TransportMode::kReactor ? "reactor" : "thread";

  // Private reactors per run: teardown between points is total, and the
  // server measurement never shares loops with client-side work.
  transport::ReactorOptions client_opts;
  client_opts.threads = 2;
  transport::Reactor client_reactor(client_opts);
  std::unique_ptr<transport::Reactor> server_reactor;
  if (mode == transport::TransportMode::kReactor) {
    transport::ReactorOptions server_opts;
    server_opts.threads = 2;
    server_reactor = std::make_unique<transport::Reactor>(server_opts);
  }

  transport::TcpListener listener(0);

  // --- server-side accept ---
  std::mutex accept_mu;
  std::condition_variable accept_cv;
  std::vector<transport::ChannelPtr> thread_channels;
  std::vector<std::shared_ptr<transport::EpollChannel>> reactor_channels;
  std::unique_ptr<transport::ReactorAcceptor> acceptor;
  std::thread accept_thread;
  if (mode == transport::TransportMode::kReactor) {
    acceptor = std::make_unique<transport::ReactorAcceptor>(
        *server_reactor, listener,
        [&](std::shared_ptr<transport::EpollChannel> channel) {
          std::lock_guard lock(accept_mu);
          reactor_channels.push_back(std::move(channel));
          accept_cv.notify_one();
        });
  } else {
    accept_thread = std::thread([&] {
      for (std::size_t i = 0; i < subs; ++i) {
        auto channel = listener.Accept();
        if (channel == nullptr) return;
        std::lock_guard lock(accept_mu);
        thread_channels.push_back(std::move(channel));
        accept_cv.notify_one();
      }
    });
  }

  // --- subscribers (always reactor-driven) ---
  std::atomic<std::uint64_t> delivered{0};
  const std::uint64_t expected =
      static_cast<std::uint64_t>(subs) * static_cast<std::uint64_t>(rounds);
  std::vector<std::shared_ptr<ClientLink>> clients;
  clients.reserve(subs);
  for (std::size_t i = 0; i < subs; ++i) {
    const int fd = transport::TryTcpConnectFd(listener.Port());
    if (fd < 0) {
      std::fprintf(stderr, "scale_bench: connect %zu/%zu failed\n", i, subs);
      break;
    }
    auto link = std::make_shared<ClientLink>();
    link->channel = transport::EpollChannel::Adopt(client_reactor, fd);
    link->latencies_us.reserve(rounds);
    link->channel->StartAsync(
        [link, &delivered](BytesView frame) {
          const std::int64_t now = MonotonicNowNs();
          if (frame.size() >= 8) {
            link->latencies_us.push_back(
                static_cast<double>(now - ReadStamp(frame)) / 1e3);
          }
          ++link->received;
          delivered.fetch_add(1, std::memory_order_relaxed);
          static const Bytes kAck(1, 0xA5);
          (void)link->channel->Send(kAck);
        },
        /*on_closed=*/nullptr);
    clients.push_back(std::move(link));
  }

  // Wait for the server side to hold every connection.
  {
    std::unique_lock lock(accept_mu);
    const bool all = accept_cv.wait_for(
        lock, std::chrono::seconds(30), [&] {
          return (mode == transport::TransportMode::kReactor
                      ? reactor_channels.size()
                      : thread_channels.size()) >= clients.size();
        });
    if (!all || clients.size() < subs) {
      std::fprintf(stderr, "scale_bench: only %zu/%zu links established\n",
                   clients.size(), subs);
    }
  }

  // --- measured window: link setup (thread spawn / StartAsync) excluded,
  // both modes start from fully-established idle connections ---
  std::atomic<std::size_t> links_done{0};
  std::vector<std::thread> server_threads;
  Timestamp start = 0;
  if (mode == transport::TransportMode::kReactor) {
    std::vector<std::shared_ptr<ServerLink>> server_links;
    server_links.reserve(reactor_channels.size());
    for (auto& channel : reactor_channels) {
      auto link = std::make_shared<ServerLink>();
      link->channel = channel;
      link->to_send = rounds;
      link->to_ack = rounds;
      link->window = window;
      link->payload_bytes = payload_bytes;
      link->links_done = &links_done;
      link->channel->StartAsync([link](BytesView) { link->OnAck(); },
                                [link] { link->Finish(); });
      server_links.push_back(std::move(link));
    }
    start = MonotonicNowNs();
    for (auto& link : server_links) link->Kick();
  } else {
    // Threads are spawned before the clock starts and released together by
    // a start gate, so the measured window compares steady-state fan-out,
    // not thread-creation cost.
    std::mutex gate_mu;
    std::condition_variable gate_cv;
    bool gate_open = false;
    server_threads.reserve(thread_channels.size());
    for (auto& channel : thread_channels) {
      server_threads.emplace_back([&, channel] {
        {
          std::unique_lock lock(gate_mu);
          gate_cv.wait(lock, [&] { return gate_open; });
        }
        Bytes payload(payload_bytes, 0);
        std::size_t sent = 0;
        std::size_t acked = 0;
        bool dead = false;
        while (acked < rounds && !dead) {
          while (sent < rounds && sent - acked < window) {
            StampPayload(payload);
            if (!channel->Send(payload)) {
              dead = true;
              break;
            }
            ++sent;
          }
          if (dead || !channel->Receive()) break;
          ++acked;
        }
        links_done.fetch_add(1, std::memory_order_relaxed);
      });
    }
    start = MonotonicNowNs();
    {
      std::lock_guard lock(gate_mu);
      gate_open = true;
    }
    gate_cv.notify_all();
  }

  const Timestamp deadline = start + timeout_s * 1'000'000'000;
  while (delivered.load(std::memory_order_relaxed) < expected &&
         MonotonicNowNs() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const Timestamp end = MonotonicNowNs();
  result.deliveries = delivered.load();
  result.timed_out = result.deliveries < expected;
  result.wall_ms = static_cast<double>(end - start) / 1e6;
  result.deliveries_per_sec =
      result.wall_ms > 0.0
          ? static_cast<double>(result.deliveries) / (result.wall_ms / 1e3)
          : 0.0;

  // --- teardown ---
  if (acceptor) acceptor->Close();
  listener.Close();
  if (accept_thread.joinable()) accept_thread.join();
  for (auto& channel : thread_channels) channel->Close();
  for (auto& channel : reactor_channels) channel->Close();
  for (auto& t : server_threads) t.join();
  for (auto& channel : reactor_channels) channel->WaitClosed(2000);
  for (auto& link : clients) link->channel->Close();
  for (auto& link : clients) link->channel->WaitClosed(2000);

  std::vector<double> all_latencies;
  all_latencies.reserve(result.deliveries);
  for (auto& link : clients) {
    all_latencies.insert(all_latencies.end(), link->latencies_us.begin(),
                         link->latencies_us.end());
  }
  const bench::SampleStats stats = bench::ComputeStats(std::move(all_latencies));
  result.p50_us = stats.p50;
  result.p99_us = stats.p99;
  return result;
}

int Usage() {
  std::fprintf(stderr,
               "usage: scale_bench [--subs N,N,...] [--rounds R] "
               "[--payload B] [--window W] [--min-speedup X] "
               "[--timeout-s S] [--out FILE]\n");
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> subs_list = {64, 512, 4096};
  std::size_t rounds_override = 0;  // 0 = auto (~100k deliveries per point)
  std::size_t payload_bytes = 64;
  // Messages in flight per link. The default W=1 is the paper's strict
  // ack discipline: publication seq+1 waits for the ACK of seq.
  std::size_t window = 1;
  double min_speedup = 1.5;
  std::int64_t timeout_s = 180;
  std::string out_path = "BENCH_scale.json";

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--subs") == 0 && i + 1 < argc) {
      subs_list.clear();
      for (const char* p = argv[++i]; *p != '\0';) {
        char* next = nullptr;
        const unsigned long long v = std::strtoull(p, &next, 10);
        if (next == p || v == 0) return Usage();
        subs_list.push_back(static_cast<std::size_t>(v));
        p = (*next == ',') ? next + 1 : next;
      }
      if (subs_list.empty()) return Usage();
    } else if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      rounds_override =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--payload") == 0 && i + 1 < argc) {
      payload_bytes =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      if (payload_bytes < 8) return Usage();  // stamp needs 8 bytes
    } else if (std::strcmp(argv[i], "--window") == 0 && i + 1 < argc) {
      window = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      if (window == 0) return Usage();
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--timeout-s") == 0 && i + 1 < argc) {
      timeout_s = std::strtoll(argv[++i], nullptr, 10);
      if (timeout_s <= 0) return Usage();
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      return Usage();
    }
  }

  RaiseFdLimit();

  bench::PrintHeader("fan-out scale: reactor vs thread-per-connection");
  std::printf("payload %zu B, W=%zu ack-clocked, p50/p99 = publish->deliver\n\n",
              payload_bytes, window);
  std::printf("%8s %8s %8s %12s %14s %10s %10s\n", "subs", "mode", "rounds",
              "deliveries", "deliv/s", "p50 us", "p99 us");
  bench::PrintRule(78);

  std::vector<RunResult> results;
  for (const std::size_t subs : subs_list) {
    const std::size_t rounds =
        rounds_override > 0
            ? rounds_override
            : std::max<std::size_t>(16, 100'000 / std::max<std::size_t>(subs, 1));
    for (const transport::TransportMode mode :
         {transport::TransportMode::kThreadPerConn,
          transport::TransportMode::kReactor}) {
      RunResult r = RunOne(mode, subs, rounds, payload_bytes, window,
                           timeout_s);
      std::printf("%8zu %8s %8zu %12llu %14.0f %10.1f %10.1f%s\n", r.subs,
                  r.mode.c_str(), r.rounds,
                  static_cast<unsigned long long>(r.deliveries),
                  r.deliveries_per_sec, r.p50_us, r.p99_us,
                  r.timed_out ? "  TIMEOUT" : "");
      std::fflush(stdout);
      results.push_back(std::move(r));
    }
  }

  // --- gate: reactor speedup at the largest measured fan-out ---
  const std::size_t gate_subs = *std::max_element(subs_list.begin(),
                                                  subs_list.end());
  const RunResult* gate_thread = nullptr;
  const RunResult* gate_reactor = nullptr;
  for (const RunResult& r : results) {
    if (r.subs != gate_subs) continue;
    (r.mode == "reactor" ? gate_reactor : gate_thread) = &r;
  }
  double speedup = 0.0;
  bool p99_ok = false;
  bool timed_out = false;
  if (gate_thread != nullptr && gate_reactor != nullptr) {
    timed_out = gate_thread->timed_out || gate_reactor->timed_out;
    if (gate_thread->deliveries_per_sec > 0.0) {
      speedup = gate_reactor->deliveries_per_sec /
                gate_thread->deliveries_per_sec;
    }
    p99_ok = gate_reactor->p99_us <= gate_thread->p99_us;
  }
  const bool gated = min_speedup > 0.0;
  const bool scale_ok =
      !gated || (!timed_out && speedup >= min_speedup && p99_ok);

  std::printf("\ngate @ %zu subs: speedup %.2fx (need %.2fx), reactor p99 %s "
              "thread p99 -> %s\n",
              gate_subs, speedup, min_speedup, p99_ok ? "<=" : ">",
              gated ? (scale_ok ? "ok" : "FAIL") : "not gated");

  char buf[64];
  auto double_field = [&buf](audit::JsonEmitter& e, std::string_view key,
                             double v) {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
    e.Field(key, buf);
  };

  audit::JsonEmitter e(/*pretty=*/true);
  e.OpenObject();
  e.OpenObject("config");
  e.NumberField("payload_bytes", payload_bytes);
  e.NumberField("window", window);
  double_field(e, "min_speedup", min_speedup);
  e.NumberField("timeout_s", static_cast<std::uint64_t>(timeout_s));
  e.CloseObject();
  e.OpenArray("results");
  for (const RunResult& r : results) {
    e.OpenObject();
    e.NumberField("subs", r.subs);
    e.StringField("mode", r.mode);
    e.NumberField("rounds", r.rounds);
    e.NumberField("deliveries", r.deliveries);
    double_field(e, "wall_ms", r.wall_ms);
    double_field(e, "deliveries_per_sec", r.deliveries_per_sec);
    double_field(e, "p50_us", r.p50_us);
    double_field(e, "p99_us", r.p99_us);
    e.Field("timed_out", r.timed_out ? "true" : "false");
    e.CloseObject();
  }
  e.CloseArray();
  e.OpenObject("gate");
  e.NumberField("subs", gate_subs);
  double_field(e, "min_speedup", min_speedup);
  double_field(e, "speedup", speedup);
  e.Field("p99_ok", p99_ok ? "true" : "false");
  e.Field("evaluated", gated ? "true" : "false");
  e.CloseObject();
  e.Field("scale_ok", scale_ok ? "true" : "false");
  e.CloseObject();

  std::ofstream out(out_path);
  out << std::move(e).Take() << "\n";
  out.close();
  std::printf("wrote %s\n", out_path.c_str());

  if (!scale_ok) {
    std::fprintf(stderr,
                 "scale_bench: FAILURE — reactor did not reach %.1fx "
                 "thread-mode deliveries/sec at equal-or-lower p99\n",
                 min_speedup);
    return 1;
  }
  return 0;
}
