// Figure 13 — average end-to-end message latency (publisher -> subscriber)
// vs. data size, ADLP against the baseline (no crypto, data-only messages).
//
// Shape to reproduce: the ADLP curve sits above the baseline by roughly
// twice the hash+sign time (the publisher signs once; the subscriber hashes
// + signs the ACK before delivering), and the gap is nearly constant until
// hashing starts to scale with payload size.
#include <atomic>
#include <condition_variable>
#include <mutex>

#include "bench_util.h"

namespace {

using namespace adlp;
using namespace adlp::bench;

struct LatencyResult {
  SampleStats stats;
};

/// One publisher, one subscriber; measures publish->deliver latency per
/// message using the message stamp.
LatencyResult MeasureLatency(proto::LoggingScheme scheme,
                             std::size_t payload_size, int messages) {
  pubsub::Master master;
  proto::LogServer server;
  Rng rng(42);

  proto::ComponentOptions opts = PaperOptions(scheme);
  proto::Component pub("bench_pub", master, server, rng, opts);
  proto::Component sub("bench_sub", master, server, rng, opts);

  std::mutex mu;
  std::condition_variable cv;
  std::vector<double> latencies_ms;
  int delivered = 0;

  sub.Subscribe("bench_topic", [&](const pubsub::Message& m) {
    const Timestamp now = WallClock::Instance().Now();
    std::lock_guard lock(mu);
    latencies_ms.push_back(static_cast<double>(now - m.header.stamp) / 1e6);
    ++delivered;
    cv.notify_one();
  });

  auto& publisher = pub.Advertise("bench_topic");
  publisher.WaitForSubscribers(1);

  Bytes payload = rng.RandomBytes(payload_size);
  for (int i = 0; i < messages; ++i) {
    publisher.Publish(payload);
    // Wait for delivery before the next publish so each sample is an
    // unqueued, cold-path latency (and ACK gating never queues).
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return delivered == i + 1; });
  }

  pub.Shutdown();
  sub.Shutdown();

  LatencyResult result;
  // Drop the first (connection warm-up) sample.
  if (latencies_ms.size() > 1) {
    latencies_ms.erase(latencies_ms.begin());
  }
  result.stats = ComputeStats(std::move(latencies_ms));
  return result;
}

}  // namespace

int main() {
  constexpr int kMessages = 120;
  const std::vector<std::size_t> kSizes = {
      16,       256,       4 * 1024,   16 * 1024,  64 * 1024,
      256 * 1024, 921641,  1 << 20};

  PrintHeader(
      "Figure 13: average message latency from publisher to subscriber");
  std::printf("%-12s | %-26s | %-26s | %s\n", "Size (B)",
              "Baseline avg (p99) [ms]", "ADLP avg (p99) [ms]",
              "ADLP - Base [ms]");
  PrintRule(92);

  for (std::size_t size : kSizes) {
    const LatencyResult base =
        MeasureLatency(adlp::proto::LoggingScheme::kNone, size, kMessages);
    const LatencyResult adlp =
        MeasureLatency(adlp::proto::LoggingScheme::kAdlp, size, kMessages);
    std::printf("%-12zu | %10.4f (%8.4f)     | %10.4f (%8.4f)     | %+.4f\n",
                size, base.stats.mean, base.stats.p99, adlp.stats.mean,
                adlp.stats.p99, adlp.stats.mean - base.stats.mean);
  }
  PrintRule(92);
  std::printf(
      "shape checks: ADLP-Base gap ~= 2x(hash+sign) (Table I), roughly "
      "constant for small\n"
      "payloads, growing with the hash term at large payloads. Paper "
      "(PyCrypto) reported a\n"
      "~6-8 ms gap; our C++ crypto makes both curves faster but preserves "
      "the ordering.\n");
  return 0;
}
