// Table II — system-wide CPU utilization of the self-driving application
// under Idle / No Logging / Base Logging / ADLP.
//
// The whole application runs in one process here (the paper ran ROS nodes
// as separate processes on a 4-core NUC), so "system-wide" is process CPU
// time divided by wall time, normalized by the hardware thread count to get
// a machine-utilization percentage comparable in spirit to the paper's.
// "Idle" measures the process with the application constructed but the
// sensor loop not running.
#include <thread>

#include "bench_util.h"
#include "sim/app.h"

namespace {

using namespace adlp;
using namespace adlp::bench;

double MeasureAppCpuPct(proto::LoggingScheme scheme, double seconds,
                        bool drive) {
  pubsub::Master master;
  proto::LogServer server;
  sim::AppOptions options;
  options.component = PaperOptions(scheme);
  options.realtime = true;
  sim::SelfDrivingApp app(master, server, options);

  const double cores = std::max(1u, std::thread::hardware_concurrency());
  const Timestamp wall_start = MonotonicNowNs();
  const Timestamp cpu_start = ProcessCpuNowNs();
  if (drive) {
    app.Run(seconds);
  } else {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
  const double wall = static_cast<double>(MonotonicNowNs() - wall_start);
  const double cpu = static_cast<double>(ProcessCpuNowNs() - cpu_start);
  app.Shutdown();
  return 100.0 * cpu / wall / cores;
}

}  // namespace

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 5.0;

  PrintHeader(
      "Table II: system-wide CPU utilization, self-driving application");
  std::printf("(measurement window: %.1f s; paper used 5 minutes)\n\n",
              seconds);

  const double idle =
      MeasureAppCpuPct(proto::LoggingScheme::kNone, seconds, /*drive=*/false);
  const double none =
      MeasureAppCpuPct(proto::LoggingScheme::kNone, seconds, /*drive=*/true);
  const double base =
      MeasureAppCpuPct(proto::LoggingScheme::kBase, seconds, /*drive=*/true);
  const double full =
      MeasureAppCpuPct(proto::LoggingScheme::kAdlp, seconds, /*drive=*/true);

  std::printf("%-14s | %-10s | %-12s | %-14s | %-8s\n", "", "Idle",
              "No Logging", "Base Logging", "ADLP");
  PrintRule(72);
  std::printf("%-14s | %8.2f %% | %10.2f %% | %12.2f %% | %6.2f %%\n",
              "measured", idle, none, base, full);
  std::printf("%-14s | %8.2f %% | %10.2f %% | %12.2f %% | %6.2f %%\n",
              "paper", 26.03, 77.21, 83.24, 88.69);
  PrintRule(72);
  std::printf("deltas: base-none = %+.2f %%  adlp-base = %+.2f %%\n",
              base - none, full - base);
  std::printf(
      "shape checks: Idle << app running; Base adds a visible increment "
      "over No Logging\n"
      "(paper ~6%%); ADLP adds a further, comparable-or-smaller increment "
      "(paper ~5.45%%).\n"
      "Note the paper's Idle includes OS background load on the NUC; ours "
      "is process-only.\n");
  return 0;
}
