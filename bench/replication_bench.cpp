// replication_bench — quorum-ack commit throughput and latency of the
// replicated logger fleet vs a single logger.
//
// For each fleet size (default 1, 3, 5 replicas; majority write quorum) the
// bench appends --entries log entries through a ReplicatedLogSink backed by
// real LogServerService replicas over localhost TCP, then waits for the
// quorum commit watermark to cover every frame. Wall time measures the
// pipelined commit throughput; a poller thread samples the advancing
// watermark to attribute a commit latency to each seq (append -> quorum
// ack, resolution = the polling interval). After the timed run every
// replica must converge to the full entry count — quorum acks the fast
// majority, but the slow minority still has to catch up.
//
// Output: BENCH_replication.json (schema-checked and baseline-gated by
// tools/check_bench_json.py; the throughput rows are what regress —
// latency absolutes are machine-dependent and only reported).
//
//   replication_bench [--entries N] [--reps R] [--payload BYTES]
//                     [--fleets "1,3,5"] [--out FILE]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "adlp/log_server.h"
#include "adlp/remote_log.h"
#include "adlp/replicated_log.h"
#include "audit/report_json.h"
#include "bench_util.h"
#include "common/clock.h"
#include "common/rng.h"
#include "transport/reconnect.h"
#include "transport/tcp.h"

using namespace adlp;

namespace {

struct RunResult {
  double wall_ms = 0.0;
  std::vector<double> latency_ns;  // one sample per committed seq
  bool committed = false;          // DrainCommitted within the timeout
  bool converged = false;          // every replica reached the full count
};

/// One timed repetition against an existing fleet. A fresh sink_id per rep
/// keeps the servers' per-sink dedup watermarks from swallowing the new
/// frames (each rep is a new logical uploader).
RunResult RunOnce(std::deque<proto::LogServer>& servers,
                  const std::vector<proto::ReplicatedLogSink::Connector>&
                      connectors,
                  const std::string& sink_id, std::size_t entries,
                  std::size_t payload_bytes, std::size_t expected_per_server) {
  proto::ReplicatedLogSinkOptions options;
  options.sink_id = sink_id;
  options.replica.backoff = transport::BackoffPolicy{2, 50, 2.0, 0.25};
  options.replica.connect = transport::TcpConnectOptions{1, 200, 10, 50};
  proto::ReplicatedLogSink sink(connectors, options);

  Rng rng(0xbe9c ^ entries);
  std::vector<proto::LogEntry> batch;
  batch.reserve(entries);
  for (std::size_t i = 0; i < entries; ++i) {
    proto::LogEntry entry;
    entry.component = "bench";
    entry.topic = "t";
    entry.seq = i;
    entry.timestamp = static_cast<Timestamp>(1000 + i);
    entry.data = rng.RandomBytes(payload_bytes);
    batch.push_back(std::move(entry));
  }

  RunResult result;
  std::vector<Timestamp> sent(entries + 2, 0);
  std::atomic<std::uint64_t> last_seq{0};
  std::atomic<bool> done{false};

  // Watermark poller: stamps each seq's commit as soon as the quorum
  // watermark passes it. 50 us polling bounds the attribution error.
  std::thread poller([&] {
    std::uint64_t seen = 0;
    std::vector<double> samples;
    while (!done.load(std::memory_order_acquire)) {
      const std::uint64_t committed = sink.CommittedSeq();
      const Timestamp now = MonotonicNowNs();
      for (std::uint64_t seq = seen + 1; seq <= committed; ++seq) {
        if (seq < sent.size() && sent[seq] != 0) {
          samples.push_back(static_cast<double>(now - sent[seq]));
        }
      }
      seen = committed;
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    result.latency_ns = std::move(samples);
  });

  const Timestamp start = MonotonicNowNs();
  for (const auto& entry : batch) {
    const Timestamp now = MonotonicNowNs();
    const std::uint64_t seq = sink.AppendSeq(entry);
    if (seq < sent.size()) sent[seq] = now;
    last_seq.store(seq, std::memory_order_release);
  }
  result.committed = sink.DrainCommitted(std::chrono::seconds(30));
  result.wall_ms = static_cast<double>(MonotonicNowNs() - start) / 1e6;
  done.store(true, std::memory_order_release);
  poller.join();

  // Quorum committed the fast majority; the stragglers still converge.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  result.converged = true;
  for (auto& server : servers) {
    while (server.EntryCount() < expected_per_server) {
      if (std::chrono::steady_clock::now() >= deadline) {
        result.converged = false;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  return result;
}

double PercentileUs(std::vector<double> ns_samples, double q) {
  if (ns_samples.empty()) return 0.0;
  std::sort(ns_samples.begin(), ns_samples.end());
  const std::size_t index = static_cast<std::size_t>(
      static_cast<double>(ns_samples.size() - 1) * q);
  return ns_samples[index] / 1e3;
}

int Usage() {
  std::fprintf(stderr,
               "usage: replication_bench [--entries N] [--reps R] "
               "[--payload BYTES] [--fleets \"1,3,5\"] [--out FILE]\n");
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t entries = 4000;
  std::size_t reps = 3;
  std::size_t payload_bytes = 64;
  std::vector<std::size_t> fleets = {1, 3, 5};
  std::string out_path = "BENCH_replication.json";

  for (int i = 1; i < argc; ++i) {
    auto next = [&](std::size_t& slot) {
      if (i + 1 >= argc) return false;
      slot = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      return true;
    };
    if (std::strcmp(argv[i], "--entries") == 0) {
      if (!next(entries) || entries == 0) return Usage();
    } else if (std::strcmp(argv[i], "--reps") == 0) {
      if (!next(reps) || reps == 0) return Usage();
    } else if (std::strcmp(argv[i], "--payload") == 0) {
      if (!next(payload_bytes)) return Usage();
    } else if (std::strcmp(argv[i], "--fleets") == 0 && i + 1 < argc) {
      fleets.clear();
      for (const char* p = argv[++i]; *p != '\0';) {
        char* end = nullptr;
        const std::size_t n =
            static_cast<std::size_t>(std::strtoull(p, &end, 10));
        if (end == p || n == 0) return Usage();
        fleets.push_back(n);
        p = *end == ',' ? end + 1 : end;
      }
      if (fleets.empty()) return Usage();
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      return Usage();
    }
  }

  bench::PrintHeader("replicated logger: quorum-ack commit vs single logger");
  std::printf("%zu entries x %zu reps, %zu-byte payloads\n\n", entries, reps,
              payload_bytes);
  std::printf("%9s %7s %12s %14s %14s %12s %12s\n", "replicas", "quorum",
              "wall ms", "entries/sec", "best e/s", "commit p50", "commit p99");
  bench::PrintRule();

  struct Row {
    std::size_t replicas = 0;
    std::size_t quorum = 0;
    bench::SampleStats wall;
    double p50_us = 0.0;
    double p99_us = 0.0;
    bool committed = true;
    bool converged = true;
  };
  std::vector<Row> rows;
  bool all_committed = true;
  bool all_converged = true;

  for (const std::size_t n : fleets) {
    std::deque<proto::LogServer> servers;
    std::vector<std::unique_ptr<proto::LogServerService>> services;
    std::vector<proto::ReplicatedLogSink::Connector> connectors;
    for (std::size_t i = 0; i < n; ++i) {
      servers.emplace_back();
      services.push_back(
          std::make_unique<proto::LogServerService>(servers[i], 0));
      const std::uint16_t port = services[i]->Port();
      connectors.push_back([port]() {
        return transport::TryTcpConnect(
            port, transport::TcpConnectOptions{1, 200, 10, 50});
      });
    }

    Row row;
    row.replicas = n;
    row.quorum = n / 2 + 1;
    std::vector<double> wall_samples;
    std::vector<double> latency_ns;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const RunResult run =
          RunOnce(servers, connectors, "bench-rep-" + std::to_string(rep),
                  entries, payload_bytes, entries * (rep + 1));
      wall_samples.push_back(run.wall_ms);
      latency_ns.insert(latency_ns.end(), run.latency_ns.begin(),
                        run.latency_ns.end());
      row.committed &= run.committed;
      row.converged &= run.converged;
    }
    row.wall = bench::ComputeStats(wall_samples);
    row.p50_us = PercentileUs(latency_ns, 0.50);
    row.p99_us = PercentileUs(latency_ns, 0.99);
    all_committed &= row.committed;
    all_converged &= row.converged;

    const double per_sec =
        static_cast<double>(entries) / (row.wall.mean / 1e3);
    const double best =
        static_cast<double>(entries) / (row.wall.min / 1e3);
    std::printf("%9zu %7zu %12.2f %14.0f %14.0f %10.0fus %10.0fus%s\n",
                row.replicas, row.quorum, row.wall.mean, per_sec, best,
                row.p50_us, row.p99_us,
                row.committed && row.converged ? "" : "  FAILED");
    rows.push_back(row);
    for (auto& service : services) service->Shutdown();
  }

  const bool replication_ok = all_committed && all_converged;
  std::printf("\nall committed: %s   all converged: %s\n",
              all_committed ? "yes" : "NO", all_converged ? "yes" : "NO");

  audit::JsonEmitter e(/*pretty=*/true);
  char buf[64];
  e.OpenObject();
  e.OpenObject("config");
  e.NumberField("entries", entries);
  e.NumberField("reps", reps);
  e.NumberField("payload_bytes", payload_bytes);
  e.CloseObject();
  e.OpenArray("results");
  for (const Row& row : rows) {
    e.OpenObject();
    e.NumberField("replicas", row.replicas);
    e.NumberField("quorum", row.quorum);
    std::snprintf(buf, sizeof(buf), "%.3f", row.wall.mean);
    e.Field("wall_ms", buf);
    std::snprintf(buf, sizeof(buf), "%.0f",
                  static_cast<double>(entries) / (row.wall.mean / 1e3));
    e.Field("entries_per_sec", buf);
    std::snprintf(buf, sizeof(buf), "%.0f",
                  static_cast<double>(entries) / (row.wall.min / 1e3));
    e.Field("entries_per_sec_best", buf);
    std::snprintf(buf, sizeof(buf), "%.1f", row.p50_us);
    e.Field("commit_p50_us", buf);
    std::snprintf(buf, sizeof(buf), "%.1f", row.p99_us);
    e.Field("commit_p99_us", buf);
    e.Field("committed", row.committed ? "true" : "false");
    e.Field("converged", row.converged ? "true" : "false");
    e.CloseObject();
  }
  e.CloseArray();
  e.OpenObject("gate");
  e.Field("all_committed", all_committed ? "true" : "false");
  e.Field("all_converged", all_converged ? "true" : "false");
  e.CloseObject();
  e.Field("replication_ok", replication_ok ? "true" : "false");
  e.CloseObject();

  std::ofstream out(out_path);
  out << std::move(e).Take() << "\n";
  out.close();
  std::printf("wrote %s\n", out_path.c_str());

  if (!replication_ok) {
    std::fprintf(stderr,
                 "replication_bench: FAILURE — %s\n",
                 all_committed ? "a replica failed to converge"
                               : "quorum commit timed out");
    return 1;
  }
  return 0;
}
