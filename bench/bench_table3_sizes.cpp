// Table III — message and log-entry sizes for Steering / Scan / Image under
// the Base scheme and ADLP.
//
// Pure accounting (no timing): serializes real protocol messages and log
// entries produced by the actual protocol factories and reports byte
// counts. Invariants to reproduce:
//   * ADLP message overhead over Base is exactly one signature plus framing,
//     independent of payload size (paper: |D| + 4 + 128);
//   * ADLP subscriber entries that store h(D) are ~350 B regardless of data
//     size (paper: 350 B for Scan/Image);
//   * publisher entries grow by ~2 signatures + 1 hash over Base.
#include <mutex>

#include "adlp/protocols.h"
#include "adlp/wire_msgs.h"
#include "bench_util.h"
#include "sim/workload.h"

namespace {

using namespace adlp;
using namespace adlp::bench;

/// Captures entries synchronously.
class CapturePipe final : public proto::LogPipe {
 public:
  void Enter(proto::LogEntry entry) override {
    entries.push_back(std::move(entry));
  }
  std::vector<proto::LogEntry> entries;
};

struct SizeRow {
  std::size_t base_message = 0;
  std::size_t adlp_message = 0;
  std::size_t base_pub_entry = 0;
  std::size_t base_sub_entry = 0;
  std::size_t adlp_pub_entry = 0;
  std::size_t adlp_sub_entry = 0;
};

SizeRow MeasureSizes(const sim::DataTypeSpec& spec) {
  Rng rng(99);
  SizeRow row;

  pubsub::Message msg;
  msg.header.topic = spec.name;
  msg.header.publisher = spec.name + "_publisher";
  msg.header.seq = 1000;
  msg.header.stamp = 1'700'000'000'000'000'000;
  msg.payload = sim::MakePayload(rng, spec.size_bytes);

  const SimClock clock(1'700'000'000'000'000'000);

  // Base scheme.
  {
    CapturePipe pub_pipe, sub_pipe;
    proto::BaseLoggingFactory pub_factory(msg.header.publisher, pub_pipe,
                                          clock);
    proto::BaseLoggingFactory sub_factory(spec.name + "_subscriber", sub_pipe,
                                          clock);
    auto enc = pub_factory.Encode(msg);
    row.base_message = enc->wire.size();
    auto link = sub_factory.MakeSubscriberLink(spec.name,
                                               msg.header.publisher);
    (void)link->OnMessage(enc->wire);
    row.base_pub_entry = proto::SerializeLogEntry(pub_pipe.entries.at(0)).size();
    row.base_sub_entry = proto::SerializeLogEntry(sub_pipe.entries.at(0)).size();
  }

  // ADLP (subscriber stores h(D)).
  {
    Rng keyrng(1);
    auto pub_identity = std::make_shared<proto::NodeIdentity>(
        proto::MakeNodeIdentity(msg.header.publisher, keyrng, 1024));
    auto sub_identity = std::make_shared<proto::NodeIdentity>(
        proto::MakeNodeIdentity(spec.name + "_subscriber", keyrng, 1024));
    CapturePipe pub_pipe, sub_pipe;
    proto::AdlpFactory pub_factory(pub_identity, pub_pipe, clock);
    proto::AdlpFactory sub_factory(sub_identity, sub_pipe, clock);

    auto enc = pub_factory.Encode(msg);
    row.adlp_message = enc->wire.size();
    auto sub_link = sub_factory.MakeSubscriberLink(spec.name,
                                                   msg.header.publisher);
    auto result = sub_link->OnMessage(enc->wire);
    auto pub_link = pub_factory.MakePublisherLink(
        spec.name, spec.name + "_subscriber");
    pub_link->OnAck(*enc, *result.reply);

    row.adlp_pub_entry = proto::SerializeLogEntry(pub_pipe.entries.at(0)).size();
    row.adlp_sub_entry = proto::SerializeLogEntry(sub_pipe.entries.at(0)).size();
  }
  return row;
}

}  // namespace

int main() {
  PrintHeader("Table III: message and log entry sizes (bytes)");
  std::printf("%-10s | %-10s | %-8s | %-12s | %-14s | %s\n", "Type",
              "Msg size", "Scheme", "Publisher's", "Subscriber's",
              "msg overhead vs payload");
  PrintRule(92);

  for (const auto& spec : sim::PaperDataTypes()) {
    const SizeRow row = MeasureSizes(spec);
    std::printf("%-10s | %-10zu | %-8s | %-12zu | %-14zu |\n",
                spec.name.c_str(), row.base_message, "Base", row.base_pub_entry,
                row.base_sub_entry);
    std::printf("%-10s | %-10zu | %-8s | %-12zu | %-14zu | +%zu B (%.4f %%)\n",
                "", row.adlp_message, "ADLP", row.adlp_pub_entry,
                row.adlp_sub_entry, row.adlp_message - row.base_message,
                100.0 *
                    static_cast<double>(row.adlp_message - row.base_message) /
                    static_cast<double>(spec.size_bytes));
  }
  PrintRule(92);
  std::printf(
      "paper reference rows -- Steering: msg 152, base 69/84, adlp 359/337;\n"
      "  Scan: msg 8837, base 8752/8767, adlp 9042/350; Image: msg 921773,\n"
      "  base 921687/921702, adlp 921977/350.\n"
      "shape checks: ADLP msg overhead is one 128-B signature + framing, "
      "independent of size;\n"
      "ADLP subscriber entries are ~constant (~350 B regime) because they "
      "store h(D).\n");
  return 0;
}
