file(REMOVE_RECURSE
  "CMakeFiles/audit_tests.dir/audit/auditor_faithful_test.cpp.o"
  "CMakeFiles/audit_tests.dir/audit/auditor_faithful_test.cpp.o.d"
  "CMakeFiles/audit_tests.dir/audit/auditor_hardening_test.cpp.o"
  "CMakeFiles/audit_tests.dir/audit/auditor_hardening_test.cpp.o.d"
  "CMakeFiles/audit_tests.dir/audit/base_scheme_test.cpp.o"
  "CMakeFiles/audit_tests.dir/audit/base_scheme_test.cpp.o.d"
  "CMakeFiles/audit_tests.dir/audit/causality_test.cpp.o"
  "CMakeFiles/audit_tests.dir/audit/causality_test.cpp.o.d"
  "CMakeFiles/audit_tests.dir/audit/lemma1_test.cpp.o"
  "CMakeFiles/audit_tests.dir/audit/lemma1_test.cpp.o.d"
  "CMakeFiles/audit_tests.dir/audit/lemma2_test.cpp.o"
  "CMakeFiles/audit_tests.dir/audit/lemma2_test.cpp.o.d"
  "CMakeFiles/audit_tests.dir/audit/lemma3_test.cpp.o"
  "CMakeFiles/audit_tests.dir/audit/lemma3_test.cpp.o.d"
  "CMakeFiles/audit_tests.dir/audit/manifest_test.cpp.o"
  "CMakeFiles/audit_tests.dir/audit/manifest_test.cpp.o.d"
  "CMakeFiles/audit_tests.dir/audit/provenance_test.cpp.o"
  "CMakeFiles/audit_tests.dir/audit/provenance_test.cpp.o.d"
  "CMakeFiles/audit_tests.dir/audit/replay_test.cpp.o"
  "CMakeFiles/audit_tests.dir/audit/replay_test.cpp.o.d"
  "CMakeFiles/audit_tests.dir/audit/report_json_test.cpp.o"
  "CMakeFiles/audit_tests.dir/audit/report_json_test.cpp.o.d"
  "CMakeFiles/audit_tests.dir/audit/theorem_test.cpp.o"
  "CMakeFiles/audit_tests.dir/audit/theorem_test.cpp.o.d"
  "audit_tests"
  "audit_tests.pdb"
  "audit_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
