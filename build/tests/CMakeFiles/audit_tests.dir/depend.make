# Empty dependencies file for audit_tests.
# This may be replaced when dependencies are built.
