# Empty compiler generated dependencies file for crypto_tests.
# This may be replaced when dependencies are built.
