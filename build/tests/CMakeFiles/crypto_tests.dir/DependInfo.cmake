
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crypto/bigint_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/bigint_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/bigint_test.cpp.o.d"
  "/root/repo/tests/crypto/ed25519_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/ed25519_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/ed25519_test.cpp.o.d"
  "/root/repo/tests/crypto/hashchain_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/hashchain_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/hashchain_test.cpp.o.d"
  "/root/repo/tests/crypto/keystore_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/keystore_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/keystore_test.cpp.o.d"
  "/root/repo/tests/crypto/montgomery_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/montgomery_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/montgomery_test.cpp.o.d"
  "/root/repo/tests/crypto/pkcs1_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/pkcs1_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/pkcs1_test.cpp.o.d"
  "/root/repo/tests/crypto/prime_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/prime_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/prime_test.cpp.o.d"
  "/root/repo/tests/crypto/rsa_param_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/rsa_param_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/rsa_param_test.cpp.o.d"
  "/root/repo/tests/crypto/rsa_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/rsa_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/rsa_test.cpp.o.d"
  "/root/repo/tests/crypto/sha256_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/sha256_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/sha256_test.cpp.o.d"
  "/root/repo/tests/crypto/sig_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/sig_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/sig_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adlp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/adlp_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/adlp_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/adlp_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/pubsub/CMakeFiles/adlp_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/adlp/CMakeFiles/adlp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/audit/CMakeFiles/adlp_audit.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/adlp_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adlp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
