file(REMOVE_RECURSE
  "CMakeFiles/crypto_tests.dir/crypto/bigint_test.cpp.o"
  "CMakeFiles/crypto_tests.dir/crypto/bigint_test.cpp.o.d"
  "CMakeFiles/crypto_tests.dir/crypto/ed25519_test.cpp.o"
  "CMakeFiles/crypto_tests.dir/crypto/ed25519_test.cpp.o.d"
  "CMakeFiles/crypto_tests.dir/crypto/hashchain_test.cpp.o"
  "CMakeFiles/crypto_tests.dir/crypto/hashchain_test.cpp.o.d"
  "CMakeFiles/crypto_tests.dir/crypto/keystore_test.cpp.o"
  "CMakeFiles/crypto_tests.dir/crypto/keystore_test.cpp.o.d"
  "CMakeFiles/crypto_tests.dir/crypto/montgomery_test.cpp.o"
  "CMakeFiles/crypto_tests.dir/crypto/montgomery_test.cpp.o.d"
  "CMakeFiles/crypto_tests.dir/crypto/pkcs1_test.cpp.o"
  "CMakeFiles/crypto_tests.dir/crypto/pkcs1_test.cpp.o.d"
  "CMakeFiles/crypto_tests.dir/crypto/prime_test.cpp.o"
  "CMakeFiles/crypto_tests.dir/crypto/prime_test.cpp.o.d"
  "CMakeFiles/crypto_tests.dir/crypto/rsa_param_test.cpp.o"
  "CMakeFiles/crypto_tests.dir/crypto/rsa_param_test.cpp.o.d"
  "CMakeFiles/crypto_tests.dir/crypto/rsa_test.cpp.o"
  "CMakeFiles/crypto_tests.dir/crypto/rsa_test.cpp.o.d"
  "CMakeFiles/crypto_tests.dir/crypto/sha256_test.cpp.o"
  "CMakeFiles/crypto_tests.dir/crypto/sha256_test.cpp.o.d"
  "CMakeFiles/crypto_tests.dir/crypto/sig_test.cpp.o"
  "CMakeFiles/crypto_tests.dir/crypto/sig_test.cpp.o.d"
  "crypto_tests"
  "crypto_tests.pdb"
  "crypto_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
