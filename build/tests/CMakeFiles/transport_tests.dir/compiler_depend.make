# Empty compiler generated dependencies file for transport_tests.
# This may be replaced when dependencies are built.
