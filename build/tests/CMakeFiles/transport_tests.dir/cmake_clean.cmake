file(REMOVE_RECURSE
  "CMakeFiles/transport_tests.dir/transport/transport_test.cpp.o"
  "CMakeFiles/transport_tests.dir/transport/transport_test.cpp.o.d"
  "transport_tests"
  "transport_tests.pdb"
  "transport_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transport_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
