# Empty compiler generated dependencies file for faults_tests.
# This may be replaced when dependencies are built.
