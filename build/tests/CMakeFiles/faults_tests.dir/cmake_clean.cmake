file(REMOVE_RECURSE
  "CMakeFiles/faults_tests.dir/faults/faults_test.cpp.o"
  "CMakeFiles/faults_tests.dir/faults/faults_test.cpp.o.d"
  "faults_tests"
  "faults_tests.pdb"
  "faults_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faults_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
