# Empty dependencies file for adlp_tests.
# This may be replaced when dependencies are built.
