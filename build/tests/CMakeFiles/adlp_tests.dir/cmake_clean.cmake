file(REMOVE_RECURSE
  "CMakeFiles/adlp_tests.dir/adlp/component_test.cpp.o"
  "CMakeFiles/adlp_tests.dir/adlp/component_test.cpp.o.d"
  "CMakeFiles/adlp_tests.dir/adlp/log_entry_test.cpp.o"
  "CMakeFiles/adlp_tests.dir/adlp/log_entry_test.cpp.o.d"
  "CMakeFiles/adlp_tests.dir/adlp/log_file_test.cpp.o"
  "CMakeFiles/adlp_tests.dir/adlp/log_file_test.cpp.o.d"
  "CMakeFiles/adlp_tests.dir/adlp/log_server_test.cpp.o"
  "CMakeFiles/adlp_tests.dir/adlp/log_server_test.cpp.o.d"
  "CMakeFiles/adlp_tests.dir/adlp/logging_thread_test.cpp.o"
  "CMakeFiles/adlp_tests.dir/adlp/logging_thread_test.cpp.o.d"
  "CMakeFiles/adlp_tests.dir/adlp/protocol_matrix_test.cpp.o"
  "CMakeFiles/adlp_tests.dir/adlp/protocol_matrix_test.cpp.o.d"
  "CMakeFiles/adlp_tests.dir/adlp/protocols_test.cpp.o"
  "CMakeFiles/adlp_tests.dir/adlp/protocols_test.cpp.o.d"
  "CMakeFiles/adlp_tests.dir/adlp/remote_log_test.cpp.o"
  "CMakeFiles/adlp_tests.dir/adlp/remote_log_test.cpp.o.d"
  "CMakeFiles/adlp_tests.dir/adlp/wire_msgs_test.cpp.o"
  "CMakeFiles/adlp_tests.dir/adlp/wire_msgs_test.cpp.o.d"
  "adlp_tests"
  "adlp_tests.pdb"
  "adlp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adlp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
