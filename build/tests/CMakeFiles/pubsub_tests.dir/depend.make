# Empty dependencies file for pubsub_tests.
# This may be replaced when dependencies are built.
