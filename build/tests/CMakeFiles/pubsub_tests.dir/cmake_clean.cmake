file(REMOVE_RECURSE
  "CMakeFiles/pubsub_tests.dir/pubsub/master_test.cpp.o"
  "CMakeFiles/pubsub_tests.dir/pubsub/master_test.cpp.o.d"
  "CMakeFiles/pubsub_tests.dir/pubsub/message_test.cpp.o"
  "CMakeFiles/pubsub_tests.dir/pubsub/message_test.cpp.o.d"
  "CMakeFiles/pubsub_tests.dir/pubsub/node_test.cpp.o"
  "CMakeFiles/pubsub_tests.dir/pubsub/node_test.cpp.o.d"
  "CMakeFiles/pubsub_tests.dir/pubsub/remote_master_test.cpp.o"
  "CMakeFiles/pubsub_tests.dir/pubsub/remote_master_test.cpp.o.d"
  "pubsub_tests"
  "pubsub_tests.pdb"
  "pubsub_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pubsub_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
