# Empty compiler generated dependencies file for wire_tests.
# This may be replaced when dependencies are built.
