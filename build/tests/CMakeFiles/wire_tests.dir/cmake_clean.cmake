file(REMOVE_RECURSE
  "CMakeFiles/wire_tests.dir/wire/wire_fuzz_test.cpp.o"
  "CMakeFiles/wire_tests.dir/wire/wire_fuzz_test.cpp.o.d"
  "CMakeFiles/wire_tests.dir/wire/wire_test.cpp.o"
  "CMakeFiles/wire_tests.dir/wire/wire_test.cpp.o.d"
  "wire_tests"
  "wire_tests.pdb"
  "wire_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
