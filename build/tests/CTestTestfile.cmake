# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/crypto_tests[1]_include.cmake")
include("/root/repo/build/tests/wire_tests[1]_include.cmake")
include("/root/repo/build/tests/transport_tests[1]_include.cmake")
include("/root/repo/build/tests/pubsub_tests[1]_include.cmake")
include("/root/repo/build/tests/adlp_tests[1]_include.cmake")
include("/root/repo/build/tests/audit_tests[1]_include.cmake")
include("/root/repo/build/tests/faults_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
