file(REMOVE_RECURSE
  "CMakeFiles/adlp_audit_tool.dir/adlp_audit.cpp.o"
  "CMakeFiles/adlp_audit_tool.dir/adlp_audit.cpp.o.d"
  "adlp_audit"
  "adlp_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adlp_audit_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
