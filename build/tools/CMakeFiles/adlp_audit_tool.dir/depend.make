# Empty dependencies file for adlp_audit_tool.
# This may be replaced when dependencies are built.
