file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ack_window.dir/bench/bench_ablation_ack_window.cpp.o"
  "CMakeFiles/bench_ablation_ack_window.dir/bench/bench_ablation_ack_window.cpp.o.d"
  "bench/bench_ablation_ack_window"
  "bench/bench_ablation_ack_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ack_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
