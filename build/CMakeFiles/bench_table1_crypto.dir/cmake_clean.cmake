file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_crypto.dir/bench/bench_table1_crypto.cpp.o"
  "CMakeFiles/bench_table1_crypto.dir/bench/bench_table1_crypto.cpp.o.d"
  "bench/bench_table1_crypto"
  "bench/bench_table1_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
