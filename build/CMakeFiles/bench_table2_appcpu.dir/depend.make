# Empty dependencies file for bench_table2_appcpu.
# This may be replaced when dependencies are built.
