file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_appcpu.dir/bench/bench_table2_appcpu.cpp.o"
  "CMakeFiles/bench_table2_appcpu.dir/bench/bench_table2_appcpu.cpp.o.d"
  "bench/bench_table2_appcpu"
  "bench/bench_table2_appcpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_appcpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
