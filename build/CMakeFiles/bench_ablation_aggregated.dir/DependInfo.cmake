
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_aggregated.cpp" "CMakeFiles/bench_ablation_aggregated.dir/bench/bench_ablation_aggregated.cpp.o" "gcc" "CMakeFiles/bench_ablation_aggregated.dir/bench/bench_ablation_aggregated.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adlp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/adlp_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/adlp_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/adlp_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/pubsub/CMakeFiles/adlp_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/adlp/CMakeFiles/adlp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/audit/CMakeFiles/adlp_audit.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/adlp_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adlp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
