file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_aggregated.dir/bench/bench_ablation_aggregated.cpp.o"
  "CMakeFiles/bench_ablation_aggregated.dir/bench/bench_ablation_aggregated.cpp.o.d"
  "bench/bench_ablation_aggregated"
  "bench/bench_ablation_aggregated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_aggregated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
