# Empty compiler generated dependencies file for bench_ablation_aggregated.
# This may be replaced when dependencies are built.
