file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_syslograte.dir/bench/bench_table4_syslograte.cpp.o"
  "CMakeFiles/bench_table4_syslograte.dir/bench/bench_table4_syslograte.cpp.o.d"
  "bench/bench_table4_syslograte"
  "bench/bench_table4_syslograte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_syslograte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
