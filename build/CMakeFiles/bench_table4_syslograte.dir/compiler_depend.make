# Empty compiler generated dependencies file for bench_table4_syslograte.
# This may be replaced when dependencies are built.
