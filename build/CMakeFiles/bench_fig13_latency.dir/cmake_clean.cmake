file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_latency.dir/bench/bench_fig13_latency.cpp.o"
  "CMakeFiles/bench_fig13_latency.dir/bench/bench_fig13_latency.cpp.o.d"
  "bench/bench_fig13_latency"
  "bench/bench_fig13_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
