# Empty dependencies file for bench_fig13_latency.
# This may be replaced when dependencies are built.
