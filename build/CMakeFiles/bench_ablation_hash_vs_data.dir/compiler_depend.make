# Empty compiler generated dependencies file for bench_ablation_hash_vs_data.
# This may be replaced when dependencies are built.
