file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hash_vs_data.dir/bench/bench_ablation_hash_vs_data.cpp.o"
  "CMakeFiles/bench_ablation_hash_vs_data.dir/bench/bench_ablation_hash_vs_data.cpp.o.d"
  "bench/bench_ablation_hash_vs_data"
  "bench/bench_ablation_hash_vs_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hash_vs_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
