file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_lograte.dir/bench/bench_fig15_lograte.cpp.o"
  "CMakeFiles/bench_fig15_lograte.dir/bench/bench_fig15_lograte.cpp.o.d"
  "bench/bench_fig15_lograte"
  "bench/bench_fig15_lograte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_lograte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
