# Empty dependencies file for bench_fig15_lograte.
# This may be replaced when dependencies are built.
