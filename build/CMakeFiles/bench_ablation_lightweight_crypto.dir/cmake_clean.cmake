file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lightweight_crypto.dir/bench/bench_ablation_lightweight_crypto.cpp.o"
  "CMakeFiles/bench_ablation_lightweight_crypto.dir/bench/bench_ablation_lightweight_crypto.cpp.o.d"
  "bench/bench_ablation_lightweight_crypto"
  "bench/bench_ablation_lightweight_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lightweight_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
