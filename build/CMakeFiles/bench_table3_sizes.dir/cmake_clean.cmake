file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_sizes.dir/bench/bench_table3_sizes.cpp.o"
  "CMakeFiles/bench_table3_sizes.dir/bench/bench_table3_sizes.cpp.o.d"
  "bench/bench_table3_sizes"
  "bench/bench_table3_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
