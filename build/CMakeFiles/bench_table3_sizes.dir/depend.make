# Empty dependencies file for bench_table3_sizes.
# This may be replaced when dependencies are built.
