# Empty compiler generated dependencies file for bench_fig14_cpu.
# This may be replaced when dependencies are built.
