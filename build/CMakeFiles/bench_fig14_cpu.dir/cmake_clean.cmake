file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_cpu.dir/bench/bench_fig14_cpu.cpp.o"
  "CMakeFiles/bench_fig14_cpu.dir/bench/bench_fig14_cpu.cpp.o.d"
  "bench/bench_fig14_cpu"
  "bench/bench_fig14_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
