# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(multiprocess_demo "/root/repo/build/examples/multiprocess_demo" "--messages" "5")
set_tests_properties(multiprocess_demo PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
