file(REMOVE_RECURSE
  "CMakeFiles/investigator.dir/investigator.cpp.o"
  "CMakeFiles/investigator.dir/investigator.cpp.o.d"
  "investigator"
  "investigator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/investigator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
