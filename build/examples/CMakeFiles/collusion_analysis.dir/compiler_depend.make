# Empty compiler generated dependencies file for collusion_analysis.
# This may be replaced when dependencies are built.
