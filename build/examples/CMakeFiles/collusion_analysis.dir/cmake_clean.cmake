file(REMOVE_RECURSE
  "CMakeFiles/collusion_analysis.dir/collusion_analysis.cpp.o"
  "CMakeFiles/collusion_analysis.dir/collusion_analysis.cpp.o.d"
  "collusion_analysis"
  "collusion_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collusion_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
