file(REMOVE_RECURSE
  "CMakeFiles/log_replay.dir/log_replay.cpp.o"
  "CMakeFiles/log_replay.dir/log_replay.cpp.o.d"
  "log_replay"
  "log_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
