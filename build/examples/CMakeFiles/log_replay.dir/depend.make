# Empty dependencies file for log_replay.
# This may be replaced when dependencies are built.
