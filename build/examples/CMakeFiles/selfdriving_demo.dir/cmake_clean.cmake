file(REMOVE_RECURSE
  "CMakeFiles/selfdriving_demo.dir/selfdriving_demo.cpp.o"
  "CMakeFiles/selfdriving_demo.dir/selfdriving_demo.cpp.o.d"
  "selfdriving_demo"
  "selfdriving_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selfdriving_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
