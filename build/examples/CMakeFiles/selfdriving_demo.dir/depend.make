# Empty dependencies file for selfdriving_demo.
# This may be replaced when dependencies are built.
