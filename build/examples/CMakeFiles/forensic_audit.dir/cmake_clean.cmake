file(REMOVE_RECURSE
  "CMakeFiles/forensic_audit.dir/forensic_audit.cpp.o"
  "CMakeFiles/forensic_audit.dir/forensic_audit.cpp.o.d"
  "forensic_audit"
  "forensic_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forensic_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
