# Empty dependencies file for forensic_audit.
# This may be replaced when dependencies are built.
