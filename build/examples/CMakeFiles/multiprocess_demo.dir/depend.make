# Empty dependencies file for multiprocess_demo.
# This may be replaced when dependencies are built.
