file(REMOVE_RECURSE
  "CMakeFiles/multiprocess_demo.dir/multiprocess_demo.cpp.o"
  "CMakeFiles/multiprocess_demo.dir/multiprocess_demo.cpp.o.d"
  "multiprocess_demo"
  "multiprocess_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiprocess_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
