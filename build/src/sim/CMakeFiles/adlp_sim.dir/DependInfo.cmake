
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/app.cpp" "src/sim/CMakeFiles/adlp_sim.dir/app.cpp.o" "gcc" "src/sim/CMakeFiles/adlp_sim.dir/app.cpp.o.d"
  "/root/repo/src/sim/msgs.cpp" "src/sim/CMakeFiles/adlp_sim.dir/msgs.cpp.o" "gcc" "src/sim/CMakeFiles/adlp_sim.dir/msgs.cpp.o.d"
  "/root/repo/src/sim/perception.cpp" "src/sim/CMakeFiles/adlp_sim.dir/perception.cpp.o" "gcc" "src/sim/CMakeFiles/adlp_sim.dir/perception.cpp.o.d"
  "/root/repo/src/sim/sensors.cpp" "src/sim/CMakeFiles/adlp_sim.dir/sensors.cpp.o" "gcc" "src/sim/CMakeFiles/adlp_sim.dir/sensors.cpp.o.d"
  "/root/repo/src/sim/vehicle.cpp" "src/sim/CMakeFiles/adlp_sim.dir/vehicle.cpp.o" "gcc" "src/sim/CMakeFiles/adlp_sim.dir/vehicle.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/sim/CMakeFiles/adlp_sim.dir/workload.cpp.o" "gcc" "src/sim/CMakeFiles/adlp_sim.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adlp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/adlp/CMakeFiles/adlp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pubsub/CMakeFiles/adlp_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/adlp_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/adlp_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/adlp_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
