# Empty compiler generated dependencies file for adlp_sim.
# This may be replaced when dependencies are built.
