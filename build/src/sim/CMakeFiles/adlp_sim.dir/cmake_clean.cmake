file(REMOVE_RECURSE
  "CMakeFiles/adlp_sim.dir/app.cpp.o"
  "CMakeFiles/adlp_sim.dir/app.cpp.o.d"
  "CMakeFiles/adlp_sim.dir/msgs.cpp.o"
  "CMakeFiles/adlp_sim.dir/msgs.cpp.o.d"
  "CMakeFiles/adlp_sim.dir/perception.cpp.o"
  "CMakeFiles/adlp_sim.dir/perception.cpp.o.d"
  "CMakeFiles/adlp_sim.dir/sensors.cpp.o"
  "CMakeFiles/adlp_sim.dir/sensors.cpp.o.d"
  "CMakeFiles/adlp_sim.dir/vehicle.cpp.o"
  "CMakeFiles/adlp_sim.dir/vehicle.cpp.o.d"
  "CMakeFiles/adlp_sim.dir/workload.cpp.o"
  "CMakeFiles/adlp_sim.dir/workload.cpp.o.d"
  "libadlp_sim.a"
  "libadlp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adlp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
