file(REMOVE_RECURSE
  "libadlp_sim.a"
)
