file(REMOVE_RECURSE
  "CMakeFiles/adlp_common.dir/bytes.cpp.o"
  "CMakeFiles/adlp_common.dir/bytes.cpp.o.d"
  "CMakeFiles/adlp_common.dir/clock.cpp.o"
  "CMakeFiles/adlp_common.dir/clock.cpp.o.d"
  "CMakeFiles/adlp_common.dir/rng.cpp.o"
  "CMakeFiles/adlp_common.dir/rng.cpp.o.d"
  "libadlp_common.a"
  "libadlp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adlp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
