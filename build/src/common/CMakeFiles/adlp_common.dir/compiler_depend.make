# Empty compiler generated dependencies file for adlp_common.
# This may be replaced when dependencies are built.
