file(REMOVE_RECURSE
  "libadlp_common.a"
)
