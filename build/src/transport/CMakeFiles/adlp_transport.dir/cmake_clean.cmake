file(REMOVE_RECURSE
  "CMakeFiles/adlp_transport.dir/inproc.cpp.o"
  "CMakeFiles/adlp_transport.dir/inproc.cpp.o.d"
  "CMakeFiles/adlp_transport.dir/tcp.cpp.o"
  "CMakeFiles/adlp_transport.dir/tcp.cpp.o.d"
  "libadlp_transport.a"
  "libadlp_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adlp_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
