file(REMOVE_RECURSE
  "libadlp_transport.a"
)
