# Empty dependencies file for adlp_transport.
# This may be replaced when dependencies are built.
