
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/inproc.cpp" "src/transport/CMakeFiles/adlp_transport.dir/inproc.cpp.o" "gcc" "src/transport/CMakeFiles/adlp_transport.dir/inproc.cpp.o.d"
  "/root/repo/src/transport/tcp.cpp" "src/transport/CMakeFiles/adlp_transport.dir/tcp.cpp.o" "gcc" "src/transport/CMakeFiles/adlp_transport.dir/tcp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adlp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/adlp_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
