
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/bigint.cpp" "src/crypto/CMakeFiles/adlp_crypto.dir/bigint.cpp.o" "gcc" "src/crypto/CMakeFiles/adlp_crypto.dir/bigint.cpp.o.d"
  "/root/repo/src/crypto/ed25519.cpp" "src/crypto/CMakeFiles/adlp_crypto.dir/ed25519.cpp.o" "gcc" "src/crypto/CMakeFiles/adlp_crypto.dir/ed25519.cpp.o.d"
  "/root/repo/src/crypto/hashchain.cpp" "src/crypto/CMakeFiles/adlp_crypto.dir/hashchain.cpp.o" "gcc" "src/crypto/CMakeFiles/adlp_crypto.dir/hashchain.cpp.o.d"
  "/root/repo/src/crypto/keystore.cpp" "src/crypto/CMakeFiles/adlp_crypto.dir/keystore.cpp.o" "gcc" "src/crypto/CMakeFiles/adlp_crypto.dir/keystore.cpp.o.d"
  "/root/repo/src/crypto/montgomery.cpp" "src/crypto/CMakeFiles/adlp_crypto.dir/montgomery.cpp.o" "gcc" "src/crypto/CMakeFiles/adlp_crypto.dir/montgomery.cpp.o.d"
  "/root/repo/src/crypto/pkcs1.cpp" "src/crypto/CMakeFiles/adlp_crypto.dir/pkcs1.cpp.o" "gcc" "src/crypto/CMakeFiles/adlp_crypto.dir/pkcs1.cpp.o.d"
  "/root/repo/src/crypto/prime.cpp" "src/crypto/CMakeFiles/adlp_crypto.dir/prime.cpp.o" "gcc" "src/crypto/CMakeFiles/adlp_crypto.dir/prime.cpp.o.d"
  "/root/repo/src/crypto/rsa.cpp" "src/crypto/CMakeFiles/adlp_crypto.dir/rsa.cpp.o" "gcc" "src/crypto/CMakeFiles/adlp_crypto.dir/rsa.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/adlp_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/adlp_crypto.dir/sha256.cpp.o.d"
  "/root/repo/src/crypto/sha512.cpp" "src/crypto/CMakeFiles/adlp_crypto.dir/sha512.cpp.o" "gcc" "src/crypto/CMakeFiles/adlp_crypto.dir/sha512.cpp.o.d"
  "/root/repo/src/crypto/sig.cpp" "src/crypto/CMakeFiles/adlp_crypto.dir/sig.cpp.o" "gcc" "src/crypto/CMakeFiles/adlp_crypto.dir/sig.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adlp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
