# Empty dependencies file for adlp_crypto.
# This may be replaced when dependencies are built.
