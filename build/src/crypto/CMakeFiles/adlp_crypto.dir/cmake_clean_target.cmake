file(REMOVE_RECURSE
  "libadlp_crypto.a"
)
