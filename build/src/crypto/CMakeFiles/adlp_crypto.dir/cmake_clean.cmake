file(REMOVE_RECURSE
  "CMakeFiles/adlp_crypto.dir/bigint.cpp.o"
  "CMakeFiles/adlp_crypto.dir/bigint.cpp.o.d"
  "CMakeFiles/adlp_crypto.dir/ed25519.cpp.o"
  "CMakeFiles/adlp_crypto.dir/ed25519.cpp.o.d"
  "CMakeFiles/adlp_crypto.dir/hashchain.cpp.o"
  "CMakeFiles/adlp_crypto.dir/hashchain.cpp.o.d"
  "CMakeFiles/adlp_crypto.dir/keystore.cpp.o"
  "CMakeFiles/adlp_crypto.dir/keystore.cpp.o.d"
  "CMakeFiles/adlp_crypto.dir/montgomery.cpp.o"
  "CMakeFiles/adlp_crypto.dir/montgomery.cpp.o.d"
  "CMakeFiles/adlp_crypto.dir/pkcs1.cpp.o"
  "CMakeFiles/adlp_crypto.dir/pkcs1.cpp.o.d"
  "CMakeFiles/adlp_crypto.dir/prime.cpp.o"
  "CMakeFiles/adlp_crypto.dir/prime.cpp.o.d"
  "CMakeFiles/adlp_crypto.dir/rsa.cpp.o"
  "CMakeFiles/adlp_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/adlp_crypto.dir/sha256.cpp.o"
  "CMakeFiles/adlp_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/adlp_crypto.dir/sha512.cpp.o"
  "CMakeFiles/adlp_crypto.dir/sha512.cpp.o.d"
  "CMakeFiles/adlp_crypto.dir/sig.cpp.o"
  "CMakeFiles/adlp_crypto.dir/sig.cpp.o.d"
  "libadlp_crypto.a"
  "libadlp_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adlp_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
