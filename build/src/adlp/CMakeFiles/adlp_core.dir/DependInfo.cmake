
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adlp/component.cpp" "src/adlp/CMakeFiles/adlp_core.dir/component.cpp.o" "gcc" "src/adlp/CMakeFiles/adlp_core.dir/component.cpp.o.d"
  "/root/repo/src/adlp/log_entry.cpp" "src/adlp/CMakeFiles/adlp_core.dir/log_entry.cpp.o" "gcc" "src/adlp/CMakeFiles/adlp_core.dir/log_entry.cpp.o.d"
  "/root/repo/src/adlp/log_file.cpp" "src/adlp/CMakeFiles/adlp_core.dir/log_file.cpp.o" "gcc" "src/adlp/CMakeFiles/adlp_core.dir/log_file.cpp.o.d"
  "/root/repo/src/adlp/log_server.cpp" "src/adlp/CMakeFiles/adlp_core.dir/log_server.cpp.o" "gcc" "src/adlp/CMakeFiles/adlp_core.dir/log_server.cpp.o.d"
  "/root/repo/src/adlp/logging_thread.cpp" "src/adlp/CMakeFiles/adlp_core.dir/logging_thread.cpp.o" "gcc" "src/adlp/CMakeFiles/adlp_core.dir/logging_thread.cpp.o.d"
  "/root/repo/src/adlp/protocols.cpp" "src/adlp/CMakeFiles/adlp_core.dir/protocols.cpp.o" "gcc" "src/adlp/CMakeFiles/adlp_core.dir/protocols.cpp.o.d"
  "/root/repo/src/adlp/remote_log.cpp" "src/adlp/CMakeFiles/adlp_core.dir/remote_log.cpp.o" "gcc" "src/adlp/CMakeFiles/adlp_core.dir/remote_log.cpp.o.d"
  "/root/repo/src/adlp/wire_msgs.cpp" "src/adlp/CMakeFiles/adlp_core.dir/wire_msgs.cpp.o" "gcc" "src/adlp/CMakeFiles/adlp_core.dir/wire_msgs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adlp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/adlp_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/adlp_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/pubsub/CMakeFiles/adlp_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/adlp_transport.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
