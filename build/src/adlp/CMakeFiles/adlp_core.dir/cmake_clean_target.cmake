file(REMOVE_RECURSE
  "libadlp_core.a"
)
