file(REMOVE_RECURSE
  "CMakeFiles/adlp_core.dir/component.cpp.o"
  "CMakeFiles/adlp_core.dir/component.cpp.o.d"
  "CMakeFiles/adlp_core.dir/log_entry.cpp.o"
  "CMakeFiles/adlp_core.dir/log_entry.cpp.o.d"
  "CMakeFiles/adlp_core.dir/log_file.cpp.o"
  "CMakeFiles/adlp_core.dir/log_file.cpp.o.d"
  "CMakeFiles/adlp_core.dir/log_server.cpp.o"
  "CMakeFiles/adlp_core.dir/log_server.cpp.o.d"
  "CMakeFiles/adlp_core.dir/logging_thread.cpp.o"
  "CMakeFiles/adlp_core.dir/logging_thread.cpp.o.d"
  "CMakeFiles/adlp_core.dir/protocols.cpp.o"
  "CMakeFiles/adlp_core.dir/protocols.cpp.o.d"
  "CMakeFiles/adlp_core.dir/remote_log.cpp.o"
  "CMakeFiles/adlp_core.dir/remote_log.cpp.o.d"
  "CMakeFiles/adlp_core.dir/wire_msgs.cpp.o"
  "CMakeFiles/adlp_core.dir/wire_msgs.cpp.o.d"
  "libadlp_core.a"
  "libadlp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adlp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
