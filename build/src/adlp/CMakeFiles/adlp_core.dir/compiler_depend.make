# Empty compiler generated dependencies file for adlp_core.
# This may be replaced when dependencies are built.
