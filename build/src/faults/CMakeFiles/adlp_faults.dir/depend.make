# Empty dependencies file for adlp_faults.
# This may be replaced when dependencies are built.
