file(REMOVE_RECURSE
  "libadlp_faults.a"
)
