file(REMOVE_RECURSE
  "CMakeFiles/adlp_faults.dir/behavior.cpp.o"
  "CMakeFiles/adlp_faults.dir/behavior.cpp.o.d"
  "CMakeFiles/adlp_faults.dir/fabricate.cpp.o"
  "CMakeFiles/adlp_faults.dir/fabricate.cpp.o.d"
  "libadlp_faults.a"
  "libadlp_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adlp_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
