
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/audit/auditor.cpp" "src/audit/CMakeFiles/adlp_audit.dir/auditor.cpp.o" "gcc" "src/audit/CMakeFiles/adlp_audit.dir/auditor.cpp.o.d"
  "/root/repo/src/audit/causality.cpp" "src/audit/CMakeFiles/adlp_audit.dir/causality.cpp.o" "gcc" "src/audit/CMakeFiles/adlp_audit.dir/causality.cpp.o.d"
  "/root/repo/src/audit/log_database.cpp" "src/audit/CMakeFiles/adlp_audit.dir/log_database.cpp.o" "gcc" "src/audit/CMakeFiles/adlp_audit.dir/log_database.cpp.o.d"
  "/root/repo/src/audit/manifest.cpp" "src/audit/CMakeFiles/adlp_audit.dir/manifest.cpp.o" "gcc" "src/audit/CMakeFiles/adlp_audit.dir/manifest.cpp.o.d"
  "/root/repo/src/audit/provenance.cpp" "src/audit/CMakeFiles/adlp_audit.dir/provenance.cpp.o" "gcc" "src/audit/CMakeFiles/adlp_audit.dir/provenance.cpp.o.d"
  "/root/repo/src/audit/replay.cpp" "src/audit/CMakeFiles/adlp_audit.dir/replay.cpp.o" "gcc" "src/audit/CMakeFiles/adlp_audit.dir/replay.cpp.o.d"
  "/root/repo/src/audit/report_json.cpp" "src/audit/CMakeFiles/adlp_audit.dir/report_json.cpp.o" "gcc" "src/audit/CMakeFiles/adlp_audit.dir/report_json.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adlp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/adlp_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/adlp/CMakeFiles/adlp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pubsub/CMakeFiles/adlp_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/adlp_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/adlp_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
