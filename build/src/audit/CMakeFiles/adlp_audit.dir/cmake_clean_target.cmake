file(REMOVE_RECURSE
  "libadlp_audit.a"
)
