file(REMOVE_RECURSE
  "CMakeFiles/adlp_audit.dir/auditor.cpp.o"
  "CMakeFiles/adlp_audit.dir/auditor.cpp.o.d"
  "CMakeFiles/adlp_audit.dir/causality.cpp.o"
  "CMakeFiles/adlp_audit.dir/causality.cpp.o.d"
  "CMakeFiles/adlp_audit.dir/log_database.cpp.o"
  "CMakeFiles/adlp_audit.dir/log_database.cpp.o.d"
  "CMakeFiles/adlp_audit.dir/manifest.cpp.o"
  "CMakeFiles/adlp_audit.dir/manifest.cpp.o.d"
  "CMakeFiles/adlp_audit.dir/provenance.cpp.o"
  "CMakeFiles/adlp_audit.dir/provenance.cpp.o.d"
  "CMakeFiles/adlp_audit.dir/replay.cpp.o"
  "CMakeFiles/adlp_audit.dir/replay.cpp.o.d"
  "CMakeFiles/adlp_audit.dir/report_json.cpp.o"
  "CMakeFiles/adlp_audit.dir/report_json.cpp.o.d"
  "libadlp_audit.a"
  "libadlp_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adlp_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
