# Empty dependencies file for adlp_audit.
# This may be replaced when dependencies are built.
