file(REMOVE_RECURSE
  "CMakeFiles/adlp_wire.dir/wire.cpp.o"
  "CMakeFiles/adlp_wire.dir/wire.cpp.o.d"
  "libadlp_wire.a"
  "libadlp_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adlp_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
