# Empty compiler generated dependencies file for adlp_wire.
# This may be replaced when dependencies are built.
