file(REMOVE_RECURSE
  "libadlp_wire.a"
)
