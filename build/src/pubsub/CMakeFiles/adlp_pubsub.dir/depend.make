# Empty dependencies file for adlp_pubsub.
# This may be replaced when dependencies are built.
