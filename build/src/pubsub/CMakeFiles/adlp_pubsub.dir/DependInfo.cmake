
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pubsub/handshake.cpp" "src/pubsub/CMakeFiles/adlp_pubsub.dir/handshake.cpp.o" "gcc" "src/pubsub/CMakeFiles/adlp_pubsub.dir/handshake.cpp.o.d"
  "/root/repo/src/pubsub/master.cpp" "src/pubsub/CMakeFiles/adlp_pubsub.dir/master.cpp.o" "gcc" "src/pubsub/CMakeFiles/adlp_pubsub.dir/master.cpp.o.d"
  "/root/repo/src/pubsub/message.cpp" "src/pubsub/CMakeFiles/adlp_pubsub.dir/message.cpp.o" "gcc" "src/pubsub/CMakeFiles/adlp_pubsub.dir/message.cpp.o.d"
  "/root/repo/src/pubsub/node.cpp" "src/pubsub/CMakeFiles/adlp_pubsub.dir/node.cpp.o" "gcc" "src/pubsub/CMakeFiles/adlp_pubsub.dir/node.cpp.o.d"
  "/root/repo/src/pubsub/remote_master.cpp" "src/pubsub/CMakeFiles/adlp_pubsub.dir/remote_master.cpp.o" "gcc" "src/pubsub/CMakeFiles/adlp_pubsub.dir/remote_master.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adlp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/adlp_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/adlp_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/adlp_transport.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
