file(REMOVE_RECURSE
  "CMakeFiles/adlp_pubsub.dir/handshake.cpp.o"
  "CMakeFiles/adlp_pubsub.dir/handshake.cpp.o.d"
  "CMakeFiles/adlp_pubsub.dir/master.cpp.o"
  "CMakeFiles/adlp_pubsub.dir/master.cpp.o.d"
  "CMakeFiles/adlp_pubsub.dir/message.cpp.o"
  "CMakeFiles/adlp_pubsub.dir/message.cpp.o.d"
  "CMakeFiles/adlp_pubsub.dir/node.cpp.o"
  "CMakeFiles/adlp_pubsub.dir/node.cpp.o.d"
  "CMakeFiles/adlp_pubsub.dir/remote_master.cpp.o"
  "CMakeFiles/adlp_pubsub.dir/remote_master.cpp.o.d"
  "libadlp_pubsub.a"
  "libadlp_pubsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adlp_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
