file(REMOVE_RECURSE
  "libadlp_pubsub.a"
)
