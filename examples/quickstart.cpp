// Quickstart: two components exchanging data under ADLP, then an offline
// audit of the trusted logger's records.
//
//   build/examples/quickstart
//
// Walks through the full lifecycle: key registration, transparent
// signed-hash messaging with acknowledgements, interdependent log entries,
// tamper-evident storage, and audit classification.
#include <atomic>
#include <cstdio>
#include <thread>

#include "adlp/component.h"
#include "adlp/log_server.h"
#include "audit/auditor.h"

using namespace adlp;

int main() {
  // The trusted logger: key registry + tamper-evident (hash-chained) store.
  proto::LogServer log_server;
  pubsub::Master master;
  Rng rng(2019);

  // Two components. Each generates an RSA-1024 key pair and registers the
  // public half with the logger; the protocol below is completely invisible
  // to the application code.
  proto::ComponentOptions options;
  options.scheme = proto::LoggingScheme::kAdlp;
  proto::Component camera("camera", master, log_server, rng, options);
  proto::Component detector("detector", master, log_server, rng, options);

  // Plain pub/sub from the application's point of view.
  std::atomic<int> received{0};
  detector.Subscribe("image", [&](const pubsub::Message& msg) {
    std::printf("[detector] got image seq=%llu (%zu bytes)\n",
                static_cast<unsigned long long>(msg.header.seq),
                msg.payload.size());
    received++;
  });

  auto& image_pub = camera.Advertise("image");
  for (int i = 0; i < 3; ++i) {
    image_pub.Publish(rng.RandomBytes(1024));
  }
  while (received.load() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  camera.Shutdown();   // drains pending ACKs, flushes the logging thread
  detector.Shutdown();

  // What the logger now holds.
  std::printf("\nlog server: %zu entries, %llu bytes, chain %s\n",
              log_server.EntryCount(),
              static_cast<unsigned long long>(log_server.TotalBytes()),
              log_server.VerifyChain() ? "verifies" : "BROKEN");
  for (const auto& entry : log_server.Entries()) {
    std::printf("  %-9s %-5s %-3s seq=%llu data=%zuB hash=%zuB "
                "self_sig=%zuB peer_sig=%zuB\n",
                entry.component.c_str(), entry.topic.c_str(),
                std::string(proto::DirectionName(entry.direction)).c_str(),
                static_cast<unsigned long long>(entry.seq), entry.data.size(),
                entry.data_hash.size(), entry.self_signature.size(),
                entry.peer_signature.size());
  }

  // Offline audit: classify every entry and resolve responsibilities.
  audit::Auditor auditor(log_server.Keys());
  const audit::AuditReport report =
      auditor.Audit(log_server.Entries(), master.Topology());
  std::printf("\n%s", report.Render().c_str());

  return report.unfaithful.empty() ? 0 : 1;
}
