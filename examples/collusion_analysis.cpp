// Collusion analysis: what ADLP can and cannot do against colluding
// components (Section II-A / Fig. 2), plus the temporal-causality analysis
// of Lemma 4.
//
//   build/examples/collusion_analysis
//
// Demonstrates three results on synthetic logs:
//   1. a colluding pair can forge a transmission that audits as valid —
//      the accepted limitation (L_{V,c} in Fig. 5);
//   2. the *edge* of a collusion group is still accountable: its
//      transmissions with outside components cannot be hidden or falsified;
//   3. timestamp lies that would reorder a causal chain are localized to a
//      minimal suspect set, and reversing end-to-end precedence implicates
//      the whole chain.
#include <cstdio>

#include "audit/auditor.h"
#include "audit/causality.h"
#include "faults/fabricate.h"

using namespace adlp;

int main() {
  Rng rng(77);
  // Components: A is honest; B and C collude (same shady vendor); D honest.
  auto a = proto::MakeNodeIdentity("A", rng, 1024);
  auto b = proto::MakeNodeIdentity("B", rng, 1024);
  auto c = proto::MakeNodeIdentity("C", rng, 1024);

  crypto::KeyStore keys;
  keys.Register("A", a.keys.pub);
  keys.Register("B", b.keys.pub);
  keys.Register("C", c.keys.pub);

  audit::Topology topology;
  topology["d_cb"] = {"C", {"B"}};  // inside the collusion group
  topology["d_ba"] = {"B", {"A"}};  // edge: B -> honest A

  std::vector<proto::LogEntry> log;

  // (1) B and C forge a transmission d_cb that never happened. Both hold
  // their own private keys, so every signature checks out.
  faults::FabricationSpec forged_spec;
  forged_spec.topic = "d_cb";
  forged_spec.seq = 1;
  forged_spec.timestamp = 1'000;
  forged_spec.message_stamp = 999;
  forged_spec.data = BytesOf("fabricated-sensor-reading");
  forged_spec.peer = "B";
  const auto forged = faults::ForgeColludingPair(c, b, forged_spec);
  log.push_back(forged.publisher_entry);
  log.push_back(forged.subscriber_entry);

  // (2) B really sends data to honest A but falsifies its own entry; A logs
  // faithfully. (Emulated with an honest pair + a re-signed fake claim.)
  faults::FabricationSpec real_spec;
  real_spec.topic = "d_ba";
  real_spec.seq = 1;
  real_spec.timestamp = 2'000;
  real_spec.message_stamp = 1'999;
  real_spec.data = BytesOf("the-true-data");
  real_spec.peer = "A";
  const auto honest = faults::ForgeColludingPair(b, a, real_spec);
  // B swaps in a falsified claim, self-signed so it looks authentic.
  faults::FabricationSpec lie = real_spec;
  lie.data = BytesOf("what-B-wishes-it-had-sent");
  proto::LogEntry falsified =
      faults::FabricatePublisherEntry(b, lie, rng);
  falsified.peer_data_hash = honest.publisher_entry.peer_data_hash;
  falsified.peer_signature = honest.publisher_entry.peer_signature;
  log.push_back(falsified);
  log.push_back(honest.subscriber_entry);

  const audit::AuditReport report =
      audit::Auditor(keys).Audit(log, topology);
  std::printf("%s\n", report.Render().c_str());

  bool forged_pair_accepted = false;
  bool edge_pinned = false;
  for (const auto& v : report.verdicts) {
    if (v.topic == "d_cb" && v.finding == audit::Finding::kOk) {
      forged_pair_accepted = true;
    }
    if (v.topic == "d_ba" &&
        v.finding == audit::Finding::kPublisherFalsified) {
      edge_pinned = true;
    }
  }
  std::printf("(1) colluding forgery d_cb audits as valid:   %s  "
              "(the paper's accepted limitation)\n",
              forged_pair_accepted ? "yes" : "NO");
  std::printf("(2) edge transmission d_ba pins B:            %s  "
              "(Theorem 1 at the group boundary)\n",
              edge_pinned && report.Blames("B") ? "yes" : "NO");

  // (3) Temporal causality: x -> y -> z chain where y back-dates its
  // output.
  auto x = proto::MakeNodeIdentity("x", rng, 1024);
  auto y = proto::MakeNodeIdentity("y", rng, 1024);
  auto z = proto::MakeNodeIdentity("z", rng, 1024);
  crypto::KeyStore chain_keys;
  chain_keys.Register("x", x.keys.pub);
  chain_keys.Register("y", y.keys.pub);
  chain_keys.Register("z", z.keys.pub);

  audit::Topology chain_topo;
  chain_topo["d_xy"] = {"x", {"y"}};
  chain_topo["d_yz"] = {"y", {"z"}};

  faults::FabricationSpec s1;
  s1.topic = "d_xy";
  s1.seq = 1;
  s1.timestamp = 100;
  s1.message_stamp = 100;
  s1.data = BytesOf("hop1");
  s1.peer = "y";
  auto hop1 = faults::ForgeColludingPair(x, y, s1);
  hop1.subscriber_entry.timestamp = 200;

  faults::FabricationSpec s2 = s1;
  s2.topic = "d_yz";
  s2.timestamp = 300;
  s2.message_stamp = 300;
  s2.data = BytesOf("hop2");
  s2.peer = "z";
  auto hop2 = faults::ForgeColludingPair(y, z, s2);
  hop2.subscriber_entry.timestamp = 400;

  // y lies: claims it published hop2 *before* it received hop1.
  hop2.publisher_entry.timestamp = 150;

  audit::LogDatabase db(
      {hop1.publisher_entry, hop1.subscriber_entry, hop2.publisher_entry,
       hop2.subscriber_entry},
      chain_topo);
  audit::FlowDependency dep{audit::PairKey{"d_xy", 1, "y"},
                            audit::PairKey{"d_yz", 1, "z"}};
  const auto violations = audit::CausalityChecker(db).Check({dep});
  std::printf("(3) y back-dates its output: %zu violation(s):\n",
              violations.size());
  for (const auto& v : violations) {
    std::printf("    constraint %-22s suspects:", v.constraint.c_str());
    for (const auto& s : v.suspects) std::printf(" %s", s.c_str());
    std::printf("\n");
  }

  const bool ok = forged_pair_accepted && edge_pinned &&
                  report.Blames("B") && !report.Blames("A") &&
                  !violations.empty();
  std::printf("\n==> %s\n", ok ? "all three collusion results reproduced."
                               : "UNEXPECTED outcome.");
  return ok ? 0 : 1;
}
