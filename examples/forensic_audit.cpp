// Forensic audit: the paper's motivating scenario (Fig. 3) end to end.
//
// The car misses a stop sign. Investigators pull the logs. The sign
// recognizer — afraid of liability — has been hiding the log entries for
// the camera images it consumed and falsifying the detections it published.
//
// The same incident is replayed twice:
//   1. under the naive Base logging scheme (Definition 2): the logs
//      conflict and the auditor cannot say who is lying;
//   2. under ADLP: the signed-hash interlocks pin the sign recognizer on
//      every transmission, and every other component is exonerated.
//
//   build/examples/forensic_audit
#include <cstdio>

#include "audit/auditor.h"
#include "faults/behavior.h"
#include "sim/app.h"

using namespace adlp;

namespace {

struct IncidentOutcome {
  audit::AuditReport report;
  std::size_t entries;
};

IncidentOutcome ReplayIncident(proto::LoggingScheme scheme) {
  pubsub::Master master;
  proto::LogServer log_server;

  sim::AppOptions options;
  options.component.scheme = scheme;
  options.component.rsa_bits = 1024;
  options.realtime = false;
  options.with_stop_sign = true;

  // The unfaithful component: hides its input log entries (the images that
  // would show the stop sign it missed) and falsifies its published
  // detections in the log.
  options.fault_wrappers["sign_recognizer"] =
      [](proto::LogPipe& inner, const proto::NodeIdentity& identity) {
        auto hide_inputs = std::make_shared<faults::HidingBehavior>(
            faults::FaultFilter{.topic = "image",
                                .direction = proto::Direction::kIn});
        auto falsify_outputs = std::make_shared<faults::FalsificationBehavior>(
            faults::FaultFilter{.topic = "sign",
                                .direction = proto::Direction::kOut},
            std::make_shared<proto::NodeIdentity>(identity));
        auto both = std::make_shared<faults::ComposedBehavior>(
            std::vector<std::shared_ptr<faults::UnfaithfulBehavior>>{
                hide_inputs, falsify_outputs});
        return std::make_unique<faults::UnfaithfulLogPipe>(inner, both);
      };

  sim::SelfDrivingApp app(master, log_server, options);
  app.Run(3.0);
  app.Shutdown();

  audit::Auditor auditor(log_server.Keys());
  return IncidentOutcome{
      auditor.Audit(log_server.Entries(), master.Topology()),
      log_server.EntryCount()};
}

void Narrate(const char* title, const IncidentOutcome& outcome) {
  std::printf("\n================ %s ================\n", title);
  std::printf("log entries collected: %zu\n", outcome.entries);

  std::size_t conflicts = 0, missing = 0, pinned = 0;
  for (const auto& v : outcome.report.verdicts) {
    switch (v.finding) {
      case audit::Finding::kUnprovableConflict:
      case audit::Finding::kConflictUnresolvable:
        ++conflicts;
        break;
      case audit::Finding::kUnprovableMissing:
        ++missing;
        break;
      case audit::Finding::kSubscriberHidEntry:
      case audit::Finding::kPublisherHidEntry:
      case audit::Finding::kPublisherFalsified:
      case audit::Finding::kSubscriberFalsified:
      case audit::Finding::kPublisherFabricated:
      case audit::Finding::kSubscriberFabricated:
        ++pinned;
        break;
      default:
        break;
    }
  }
  std::printf("verdicts: %zu instances, %zu provably pinned on a component, "
              "%zu unresolvable conflicts, %zu undecidable missing-entry "
              "cases\n",
              outcome.report.verdicts.size(), pinned, conflicts, missing);
  if (outcome.report.unfaithful.empty()) {
    std::printf(">> investigation outcome: NO component can be held "
                "responsible.\n");
  } else {
    std::printf(">> investigation outcome: responsibility assigned to:");
    for (const auto& id : outcome.report.unfaithful) {
      std::printf(" %s", id.c_str());
    }
    std::printf("\n");
  }
  std::printf("\n%s", outcome.report.Render().c_str());
}

}  // namespace

int main() {
  std::printf("Incident: the car ran a stop sign. The sign recognizer hid "
              "the logs of the\nimages it consumed and falsified its "
              "published detections.\n");

  const IncidentOutcome naive = ReplayIncident(proto::LoggingScheme::kBase);
  Narrate("Naive logging (Definition 2)", naive);

  const IncidentOutcome adlp = ReplayIncident(proto::LoggingScheme::kAdlp);
  Narrate("ADLP", adlp);

  const bool contrast_holds = naive.report.unfaithful.empty() &&
                              adlp.report.Blames("sign_recognizer") &&
                              adlp.report.unfaithful.size() == 1;
  std::printf("\n==> %s\n",
              contrast_holds
                  ? "ADLP turned an unresolvable dispute into an assigned "
                    "responsibility."
                  : "UNEXPECTED: the contrast did not hold.");
  return contrast_holds ? 0 : 1;
}
