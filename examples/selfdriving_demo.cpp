// Self-driving demo: the full Fig. 11(b) application — camera + LIDAR,
// perception, planning, actuation — driving a simulated 1/10-scale car
// around a circular track with a stop sign, with every data transmission
// logged accountably under ADLP.
//
//   build/examples/selfdriving_demo [sim_seconds] [--realtime]
//                                   [--alg rsa|ed25519]
//                                   [--metrics-out FILE]
//
// Default runs in fast (non-realtime) simulation with RSA-1024 signatures
// (paper parity); --alg ed25519 runs the whole fleet — signing and the
// closing audit — on the Ed25519 suite instead. At the end the demo
// prints pipeline statistics, the car's trajectory summary, the log
// volume, and a clean audit report.
#include <cstdio>
#include <cstring>

#include <string>

#include "audit/auditor.h"
#include "audit/causality.h"
#include "crypto/sig.h"
#include "obs/export.h"
#include "sim/app.h"

using namespace adlp;

int main(int argc, char** argv) {
  double sim_seconds = 20.0;
  bool realtime = false;
  std::string metrics_out;
  crypto::SigAlgorithm alg = crypto::SigAlgorithm::kRsaPkcs1Sha256;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--realtime") == 0) {
      realtime = true;
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--alg") == 0 && i + 1 < argc) {
      const char* value = argv[++i];
      if (std::strcmp(value, "rsa") == 0) {
        alg = crypto::SigAlgorithm::kRsaPkcs1Sha256;
      } else if (std::strcmp(value, "ed25519") == 0) {
        alg = crypto::SigAlgorithm::kEd25519;
      } else {
        std::fprintf(stderr, "unknown --alg '%s' (rsa|ed25519)\n", value);
        return 2;
      }
    } else {
      sim_seconds = std::atof(argv[i]);
    }
  }

  pubsub::Master master;
  proto::LogServer log_server;

  sim::AppOptions options;
  options.component.scheme = proto::LoggingScheme::kAdlp;
  options.component.sig_algorithm = alg;
  options.component.rsa_bits = 1024;
  options.realtime = realtime;
  options.with_stop_sign = true;

  std::printf("starting the self-driving application (%.0f s %s, %s)...\n",
              sim_seconds, realtime ? "realtime" : "fast-sim",
              alg == crypto::SigAlgorithm::kEd25519 ? "ed25519" : "rsa-1024");
  sim::SelfDrivingApp app(master, log_server, options);
  app.Run(sim_seconds);
  app.Shutdown();

  const auto stats = app.stats();
  std::printf("\n--- pipeline ---\n");
  std::printf("camera frames: %llu   lidar scans: %llu\n",
              static_cast<unsigned long long>(stats.frames),
              static_cast<unsigned long long>(stats.scans));
  std::printf("lane: %llu  sign: %llu  obstacle: %llu  plan: %llu  "
              "steering: %llu  actuations: %llu\n",
              static_cast<unsigned long long>(stats.lane_msgs),
              static_cast<unsigned long long>(stats.sign_msgs),
              static_cast<unsigned long long>(stats.obstacle_msgs),
              static_cast<unsigned long long>(stats.plan_msgs),
              static_cast<unsigned long long>(stats.steering_msgs),
              static_cast<unsigned long long>(stats.actuations));
  std::printf("final pose: (%.2f, %.2f) heading %.2f rad, speed %.2f m/s\n",
              stats.final_state.x, stats.final_state.y,
              stats.final_state.heading, stats.final_state.speed);
  std::printf("stop sign engaged: %s\n", stats.stop_engaged ? "yes" : "no");

  std::printf("\n--- trusted logger ---\n");
  std::printf("entries: %zu  bytes: %.2f MB  hash chain: %s\n",
              log_server.EntryCount(),
              static_cast<double>(log_server.TotalBytes()) / 1e6,
              log_server.VerifyChain() ? "verifies" : "BROKEN");

  std::printf("\n--- audit ---\n");
  audit::Auditor auditor(log_server.Keys());
  const audit::AuditReport report =
      auditor.Audit(log_server.Entries(), master.Topology());
  std::printf("%s", report.Render().c_str());

  // Causality spot-check along image -> lane -> plan for a few frames.
  audit::LogDatabase db(log_server.Entries(), master.Topology());
  std::vector<audit::FlowDependency> deps;
  for (std::uint64_t seq = 2; seq <= std::min<std::uint64_t>(10, stats.frames);
       ++seq) {
    deps.push_back({audit::PairKey{"image", seq, "lane_detector"},
                    audit::PairKey{"lane", seq, "planner"}});
  }
  const auto violations = audit::CausalityChecker(db).Check(deps);
  std::printf("causality check (image->lane->plan, %zu chains): %zu "
              "violations\n",
              deps.size(), violations.size());

  if (!metrics_out.empty()) {
    if (obs::WriteMetricsFile(metrics_out)) {
      std::printf("metrics written to %s\n", metrics_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write metrics to %s\n", metrics_out.c_str());
      return 1;
    }
  }

  return report.unfaithful.empty() && violations.empty() ? 0 : 1;
}
