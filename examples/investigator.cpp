// Third-party investigator workflow: the log file and system manifest are
// the ONLY artifacts crossing the boundary — the investigation never
// touches the live system, the manufacturer's tooling, or any in-memory
// state. (The paper's motivation: proprietary black-box formats keep
// examiners like the NTSB from auditing independently.)
//
//   build/examples/investigator [workdir]
//
// Phase 1 (the "vehicle"): runs the self-driving app with a misbehaving
// planner, exports <workdir>/incident.adlplog and <workdir>/system.manifest.
// Phase 2 (the "investigator"): loads the two files, verifies the hash
// chain, audits every transmission, assigns responsibility, and walks the
// provenance of the last steering command back to the sensors.
#include <cstdio>
#include <string>

#include "adlp/log_file.h"
#include "audit/auditor.h"
#include "audit/manifest.h"
#include "audit/provenance.h"
#include "audit/report_json.h"
#include "faults/behavior.h"
#include "sim/app.h"

using namespace adlp;

namespace {

void RunVehicleAndExport(const std::string& log_path,
                         const std::string& manifest_path) {
  pubsub::Master master;
  proto::LogServer log_server;

  sim::AppOptions options;
  options.component.scheme = proto::LoggingScheme::kAdlp;
  options.component.rsa_bits = 1024;
  options.realtime = false;

  // The planner falsifies the plans it logs (e.g. to claim it commanded a
  // stop it never commanded).
  options.fault_wrappers["planner"] =
      [](proto::LogPipe& inner, const proto::NodeIdentity& identity) {
        auto behavior = std::make_shared<faults::FalsificationBehavior>(
            faults::FaultFilter{.topic = "plan",
                                .direction = proto::Direction::kOut},
            std::make_shared<proto::NodeIdentity>(identity));
        return std::make_unique<faults::UnfaithfulLogPipe>(inner, behavior);
      };

  sim::SelfDrivingApp app(master, log_server, options);
  app.Run(2.0);
  app.Shutdown();

  proto::WriteLogFile(log_path, log_server);
  audit::WriteManifestFile(manifest_path, master.Topology(),
                           log_server.Keys());
  std::printf("[vehicle] exported %zu log entries to %s\n",
              log_server.EntryCount(), log_path.c_str());
  std::printf("[vehicle] exported manifest (%zu topics, %zu keys) to %s\n",
              master.Topology().size(), log_server.Keys().Size(),
              manifest_path.c_str());
}

int Investigate(const std::string& log_path,
                const std::string& manifest_path) {
  std::printf("\n[investigator] loading artifacts...\n");
  const proto::LoadedLog log = proto::ReadLogFile(log_path);
  const audit::LoadedManifest manifest =
      audit::ReadManifestFile(manifest_path);

  std::printf("[investigator] %zu entries, hash chain %s\n",
              log.entries.size(),
              log.chain_verified ? "VERIFIES (log is exactly as written)"
                                 : "BROKEN (log was tampered with!)");
  if (!log.chain_verified) return 1;

  audit::LogDatabase db(log.entries, manifest.topology);
  audit::Auditor auditor(manifest.keys);
  const audit::AuditReport report = auditor.Audit(db);
  std::printf("\n%s", report.Render().c_str());

  // Machine-readable exhibit for downstream tooling.
  {
    audit::JsonOptions json_options;
    json_options.include_verdicts = false;  // keep the exhibit small
    const std::string json = audit::RenderReportJson(report, json_options);
    std::FILE* f = std::fopen("/tmp/audit_report.json", "w");
    if (f != nullptr) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("\n[investigator] JSON report written to "
                  "/tmp/audit_report.json (%zu bytes)\n",
                  json.size());
    }
  }

  // Provenance: trace the final steering command back to its sensory
  // origin, purely from the log.
  std::uint64_t last_steering_seq = 0;
  for (const auto& entry : log.entries) {
    if (entry.topic == "steering" && entry.seq > last_steering_seq) {
      last_steering_seq = entry.seq;
    }
  }
  if (last_steering_seq > 0) {
    audit::ProvenanceGraph graph(db);
    const audit::PairKey last{"steering", last_steering_seq, "actuator"};
    std::printf("\n%s", graph.RenderAncestry(last).c_str());
  }

  if (report.unfaithful.empty()) {
    std::printf("\n[investigator] no responsibility assignable.\n");
    return 1;
  }
  std::printf("\n[investigator] responsibility assigned to:");
  for (const auto& id : report.unfaithful) std::printf(" %s", id.c_str());
  std::printf("\n");
  return report.Blames("planner") && report.unfaithful.size() == 1 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string workdir = argc > 1 ? argv[1] : "/tmp";
  const std::string log_path = workdir + "/incident.adlplog";
  const std::string manifest_path = workdir + "/system.manifest";

  RunVehicleAndExport(log_path, manifest_path);
  const int rc = Investigate(log_path, manifest_path);
  std::printf("\n==> %s\n", rc == 0
                                ? "offline investigation pinned the planner."
                                : "UNEXPECTED investigation outcome.");
  return rc;
}
