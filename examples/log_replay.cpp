// Evidence replay: re-drive perception with the recorded camera frames.
//
//   build/examples/log_replay
//
// Phase 1: the self-driving app runs with the publisher entries storing
// image data as-is; the log is exported. Phase 2: an investigator replays
// the recorded "image" topic from the log file into a FRESH sign
// recognizer and checks, frame by frame, what a correct component should
// have detected — the post-incident question "was the stop sign visible in
// the evidence?" answered mechanically.
#include <atomic>
#include <cstdio>

#include "adlp/log_file.h"
#include "audit/replay.h"
#include "sim/app.h"
#include "sim/perception.h"

using namespace adlp;

int main() {
  const std::string log_path = "/tmp/replay_incident.adlplog";

  // --- Phase 1: the incident run -----------------------------------------
  {
    pubsub::Master master;
    proto::LogServer log_server;
    sim::AppOptions options;
    options.component.scheme = proto::LoggingScheme::kAdlp;
    options.component.rsa_bits = 1024;
    options.realtime = false;
    options.with_stop_sign = true;
    sim::SelfDrivingApp app(master, log_server, options);
    app.Run(15.0);  // long enough to reach the stop sign
    app.Shutdown();
    proto::WriteLogFile(log_path, log_server);
    std::printf("[vehicle] exported %zu entries (%.1f MB) to %s\n",
                log_server.EntryCount(),
                static_cast<double>(log_server.TotalBytes()) / 1e6,
                log_path.c_str());
  }

  // --- Phase 2: investigator replays the evidence ------------------------
  const proto::LoadedLog log = proto::ReadLogFile(log_path);
  std::printf("[investigator] loaded %zu entries, chain %s\n",
              log.entries.size(),
              log.chain_verified ? "verifies" : "BROKEN");
  if (!log.chain_verified) return 1;

  pubsub::Master replay_master;
  proto::LogServer scratch;
  Rng rng(1);
  proto::ComponentOptions fresh_opts;
  fresh_opts.scheme = proto::LoggingScheme::kNone;
  proto::Component fresh_recognizer("fresh_sign_recognizer", replay_master,
                                    scratch, rng, fresh_opts);

  std::atomic<int> frames{0};
  std::atomic<int> stop_sign_frames{0};
  fresh_recognizer.Subscribe("image", [&](const pubsub::Message& m) {
    frames++;
    if (sim::RecognizeSign(m.payload).stop_sign) stop_sign_frames++;
  });

  audit::ReplayOptions replay_options;
  replay_options.topics = {"image"};
  const audit::ReplayStats stats =
      audit::ReplayLog(log.entries, replay_master, replay_options);

  // Give the last frames a moment to flow through.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (frames.load() < static_cast<int>(stats.replayed) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  fresh_recognizer.Shutdown();

  std::printf("[investigator] replayed %llu image frames (skipped %llu "
              "hash-only entries)\n",
              static_cast<unsigned long long>(stats.replayed),
              static_cast<unsigned long long>(stats.skipped_no_data));
  std::printf("[investigator] fresh recognizer processed %d frames; stop "
              "sign visible in %d of them\n",
              frames.load(), stop_sign_frames.load());

  const bool ok = stats.replayed > 0 &&
                  frames.load() == static_cast<int>(stats.replayed) &&
                  stop_sign_frames.load() > 0;
  std::printf("==> %s\n",
              ok ? "the recorded evidence reproduces the stop sign — a "
                   "recognizer that missed it cannot blame its inputs."
                 : "UNEXPECTED: replay did not reproduce the detection.");
  return ok ? 0 : 1;
}
