// True multi-process deployment — the paper's setting, where every ROS node
// is its own Linux process and the master/logger are services.
//
//   build/examples/multiprocess_demo [--messages N] [--metrics-out FILE]
//
// With --metrics-out, the orchestrator writes its metrics (audit timings)
// to FILE and each child process writes its own registry (publish/ack/log
// counters for its side of the link) to FILE.camera / FILE.detector —
// metrics are per-process state, so a multi-process run produces one dump
// per process.
//
// The orchestrator process hosts the name service (MasterService) and the
// trusted logger (LogServerService), then fork+execs itself twice:
//
//   [camera process]  --role camera   : ADLP publisher over real TCP
//   [detector process] --role detector: ADLP subscriber over real TCP
//
// Data flows point-to-point between the two child processes; the master
// only brokered the connection and the logger only received the entries.
// When both children exit, the orchestrator audits the collected log.
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "adlp/component.h"
#include "adlp/remote_log.h"
#include "adlp/resilient_log.h"
#include "audit/auditor.h"
#include "obs/export.h"
#include "pubsub/remote_master.h"

using namespace adlp;

namespace {

constexpr std::size_t kPayloadSize = 100'000;

/// Children dial services that the orchestrator races to bring up: retry
/// rather than die on the first refused connection.
transport::TcpConnectOptions ChildDialOptions() {
  transport::TcpConnectOptions dial;
  dial.attempts = 20;
  dial.connect_timeout_ms = 500;
  dial.retry_delay_ms = 50;
  dial.max_retry_delay_ms = 500;
  return dial;
}

proto::ComponentOptions NodeOptions() {
  proto::ComponentOptions opts;
  opts.scheme = proto::LoggingScheme::kAdlp;
  opts.rsa_bits = 1024;
  opts.transport = pubsub::TransportKind::kTcp;  // mandatory across processes
  return opts;
}

/// Writes this process's registry if a path was requested; warns on failure
/// (metrics must never fail a demo run that otherwise succeeded).
void MaybeWriteMetrics(const std::string& path) {
  if (path.empty()) return;
  if (obs::WriteMetricsFile(path)) {
    std::printf("[%d] metrics written to %s\n", getpid(), path.c_str());
  } else {
    std::fprintf(stderr, "[%d] cannot write metrics to %s\n", getpid(),
                 path.c_str());
  }
}

int RunCamera(std::uint16_t master_port, std::uint16_t log_port, int messages,
              const std::string& metrics_out) {
  pubsub::RemoteMaster master(master_port, ChildDialOptions());
  proto::ResilientLogSink log_sink(log_port);
  Rng rng(0xCA11);
  proto::Component camera("camera", master, log_sink, rng, NodeOptions());

  auto& publisher = camera.Advertise("image");
  if (!publisher.WaitForSubscribers(1, std::chrono::milliseconds(10000))) {
    std::fprintf(stderr, "[camera %d] no subscriber appeared\n", getpid());
    return 2;
  }
  const Bytes payload = rng.RandomBytes(kPayloadSize);
  for (int i = 0; i < messages; ++i) {
    publisher.Publish(payload);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));  // 20 Hz
  }
  camera.Shutdown();
  log_sink.Drain(std::chrono::seconds(5));
  std::printf("[camera %d] published %d messages\n", getpid(), messages);
  MaybeWriteMetrics(metrics_out);
  return 0;
}

int RunDetector(std::uint16_t master_port, std::uint16_t log_port,
                int messages, const std::string& metrics_out) {
  pubsub::RemoteMaster master(master_port, ChildDialOptions());
  proto::ResilientLogSink log_sink(log_port);
  Rng rng(0xDE7E);
  proto::Component detector("detector", master, log_sink, rng, NodeOptions());

  std::atomic<int> got{0};
  detector.Subscribe("image", [&](const pubsub::Message& m) {
    if (m.payload.size() == kPayloadSize) got++;
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (got.load() < messages &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  detector.Shutdown();
  log_sink.Drain(std::chrono::seconds(5));
  std::printf("[detector %d] received %d/%d messages\n", getpid(), got.load(),
              messages);
  MaybeWriteMetrics(metrics_out);
  return got.load() == messages ? 0 : 3;
}

pid_t SpawnChild(const char* self, const std::string& role,
                 std::uint16_t master_port, std::uint16_t log_port,
                 int messages, const std::string& metrics_out) {
  const std::string master_arg = std::to_string(master_port);
  const std::string log_arg = std::to_string(log_port);
  const std::string msg_arg = std::to_string(messages);
  const std::string metrics_arg =
      metrics_out.empty() ? "" : metrics_out + "." + role;
  const pid_t pid = fork();
  if (pid != 0) return pid;
  // Child: only exec between fork and here (the parent is threaded).
  if (metrics_arg.empty()) {
    execl(self, self, "--role", role.c_str(), "--master-port",
          master_arg.c_str(), "--log-port", log_arg.c_str(), "--messages",
          msg_arg.c_str(), static_cast<char*>(nullptr));
  } else {
    execl(self, self, "--role", role.c_str(), "--master-port",
          master_arg.c_str(), "--log-port", log_arg.c_str(), "--messages",
          msg_arg.c_str(), "--metrics-out", metrics_arg.c_str(),
          static_cast<char*>(nullptr));
  }
  _exit(127);
}

int RunOrchestrator(const char* self, int messages,
                    const std::string& metrics_out) {
  pubsub::MasterService master_service(0);
  proto::LogServer log_server;
  proto::LogServerService log_service(log_server, 0);
  std::printf("[orchestrator %d] master on :%u, logger on :%u\n", getpid(),
              master_service.Port(), log_service.Port());

  const pid_t detector =
      SpawnChild(self, "detector", master_service.Port(), log_service.Port(),
                 messages, metrics_out);
  const pid_t camera = SpawnChild(self, "camera", master_service.Port(),
                                  log_service.Port(), messages, metrics_out);

  int camera_status = -1, detector_status = -1;
  waitpid(camera, &camera_status, 0);
  waitpid(detector, &detector_status, 0);
  const int camera_rc =
      WIFEXITED(camera_status) ? WEXITSTATUS(camera_status) : -1;
  const int detector_rc =
      WIFEXITED(detector_status) ? WEXITSTATUS(detector_status) : -1;
  std::printf("[orchestrator] camera rc=%d detector rc=%d\n", camera_rc,
              detector_rc);
  if (camera_rc != 0 || detector_rc != 0) return 1;

  // Entries may still be in flight on the logger connections briefly.
  const std::size_t expected = static_cast<std::size_t>(2 * messages);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (log_server.EntryCount() < expected &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  std::printf("[orchestrator] %zu log entries, chain %s\n",
              log_server.EntryCount(),
              log_server.VerifyChain() ? "verifies" : "BROKEN");

  const audit::AuditReport report =
      audit::Auditor(log_server.Keys())
          .Audit(log_server.Entries(), master_service.Topology());
  std::printf("%s", report.Render().c_str());

  const bool ok = log_server.EntryCount() == expected &&
                  log_server.VerifyChain() && report.unfaithful.empty() &&
                  report.TotalValid() == expected;
  std::printf("==> multi-process ADLP run %s\n",
              ok ? "audited clean." : "FAILED the audit.");
  MaybeWriteMetrics(metrics_out);
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string role = "orchestrator";
  std::uint16_t master_port = 0, log_port = 0;
  int messages = 20;
  std::string metrics_out;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--role") == 0) role = argv[i + 1];
    if (std::strcmp(argv[i], "--master-port") == 0) {
      master_port = static_cast<std::uint16_t>(std::atoi(argv[i + 1]));
    }
    if (std::strcmp(argv[i], "--log-port") == 0) {
      log_port = static_cast<std::uint16_t>(std::atoi(argv[i + 1]));
    }
    if (std::strcmp(argv[i], "--messages") == 0) {
      messages = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--metrics-out") == 0) {
      metrics_out = argv[i + 1];
    }
  }

  if (role == "camera") {
    return RunCamera(master_port, log_port, messages, metrics_out);
  }
  if (role == "detector") {
    return RunDetector(master_port, log_port, messages, metrics_out);
  }
  return RunOrchestrator("/proc/self/exe", messages, metrics_out);
}
