#!/usr/bin/env python3
"""Project lint: invariants clang-tidy cannot express.

Run from anywhere: paths resolve relative to the repository root (this
file's parent directory). Exit status is the number of violation classes
that fired; 0 means clean. CI runs this in the static-analysis job.

Rules:
  banned-call      rand(), strcpy(), and naked system() are forbidden in
                   src/, tools/, and examples/. Use common/rng.h, bounded
                   copies, and posix_spawn/explicit exec wrappers.
  memcpy-guard     every memcpy/memmove whose length is not a sizeof/integer
                   literal must sit in a function that checks emptiness
                   (`empty(`) somewhere, or carry a `lint: memcpy-checked`
                   waiver comment. An empty std::span/BytesView may carry
                   data() == nullptr, and memcpy(_, nullptr, 0) is UB — the
                   exact bug class PR 4's UBSan leg caught in sha512.
  obs-includes     src/obs stays dependency-free: it may include only the
                   C++ standard library, other obs/ headers, and the two
                   annotation headers (common/thread_annotations.h,
                   common/mutex.h). Anything else couples observability to
                   the layers it observes.
  metric-names     every "adlp_*" string literal in src/ must appear in
                   tools/metric_names.txt, be registered at exactly one
                   source location, and the registry itself must be sorted
                   and free of duplicates and stale entries.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
REGISTRY = REPO / "tools" / "metric_names.txt"

CXX_SUFFIXES = {".h", ".cpp", ".cc", ".hpp"}

BANNED = [
    (re.compile(r"(?<![\w:])rand\s*\("), "rand() — use common/rng.h"),
    (re.compile(r"(?<![\w:])strcpy\s*\("), "strcpy() — use bounded copies"),
    (re.compile(r"(?<![\w:.>])system\s*\("), "naked system()"),
]

OBS_INCLUDE_ALLOWED = re.compile(
    r'#include\s+(<[^>]+>|"obs/[^"]+"'
    r'|"common/thread_annotations\.h"|"common/mutex\.h")'
)

MEMCPY_CALL = re.compile(r"(?<![\w:])(?:std::)?(memcpy|memmove)\s*\(")
MEMCPY_WAIVER = "lint: memcpy-checked"
# Length arguments that cannot be a "zero bytes from an empty view" case:
# sizeof(...) of a fixed type/array, or a plain integer literal.
SAFE_LENGTH = re.compile(r"^\s*(sizeof\s*\(.*\)|\d+[uUlL]*)\s*$")

METRIC_LITERAL = re.compile(r'"(adlp_[a-z0-9_]+)"')


def cxx_files(*roots: str) -> list[Path]:
    files: list[Path] = []
    for root in roots:
        base = REPO / root
        if base.is_dir():
            files.extend(
                p for p in sorted(base.rglob("*")) if p.suffix in CXX_SUFFIXES
            )
    return files


def strip_comments(line: str) -> str:
    return line.split("//", 1)[0]


def call_arguments(text: str, open_paren: int) -> list[str] | None:
    """Splits the argument list of the call whose '(' is at open_paren."""
    depth = 0
    args: list[str] = []
    start = open_paren + 1
    for i in range(open_paren, len(text)):
        c = text[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                args.append(text[start:i])
                return args
        elif c == "," and depth == 1:
            args.append(text[start:i])
            start = i + 1
    return None  # unbalanced within the window


def enclosing_function(lines: list[str], idx: int) -> str:
    """Approximates the enclosing function body: the region between the
    nearest column-0 '}' lines (namespace-scope definitions in this tree)."""
    lo = idx
    while lo > 0 and not lines[lo - 1].startswith("}"):
        lo -= 1
    hi = idx
    while hi < len(lines) - 1 and not lines[hi].startswith("}"):
        hi += 1
    return "\n".join(lines[lo : hi + 1])


def check_banned_calls(violations: list[str]) -> None:
    for path in cxx_files("src", "tools", "examples"):
        for n, raw in enumerate(path.read_text().splitlines(), 1):
            line = strip_comments(raw)
            for pattern, what in BANNED:
                if pattern.search(line):
                    violations.append(
                        f"banned-call: {path.relative_to(REPO)}:{n}: {what}"
                    )


def check_memcpy_guards(violations: list[str]) -> None:
    for path in cxx_files("src"):
        lines = path.read_text().splitlines()
        for n, raw in enumerate(lines, 1):
            line = strip_comments(raw)
            m = MEMCPY_CALL.search(line)
            if not m:
                continue
            if MEMCPY_WAIVER in raw or (n >= 2 and MEMCPY_WAIVER in lines[n - 2]):
                continue
            # The call may span lines; join a short window for parsing.
            window = " ".join(
                strip_comments(l) for l in lines[n - 1 : n + 4]
            )
            call = MEMCPY_CALL.search(window)
            args = call_arguments(window, call.end() - 1) if call else None
            if args and len(args) == 3 and SAFE_LENGTH.match(args[2]):
                continue
            if "empty(" in enclosing_function(lines, n - 1):
                continue
            violations.append(
                f"memcpy-guard: {path.relative_to(REPO)}:{n}: "
                f"{m.group(1)} with a runtime length needs an emptiness "
                f"guard in the enclosing function (empty views may carry "
                f"data() == nullptr) or a '{MEMCPY_WAIVER}' comment"
            )


def check_obs_includes(violations: list[str]) -> None:
    for path in cxx_files("src/obs"):
        for n, raw in enumerate(path.read_text().splitlines(), 1):
            line = strip_comments(raw)
            if not line.lstrip().startswith("#include"):
                continue
            if not OBS_INCLUDE_ALLOWED.match(line.strip()):
                violations.append(
                    f"obs-includes: {path.relative_to(REPO)}:{n}: "
                    f"{line.strip()} — src/obs may only include the standard "
                    f"library, obs/ headers, common/thread_annotations.h, "
                    f"and common/mutex.h"
                )


def check_metric_names(violations: list[str]) -> None:
    registry: list[str] = []
    for n, raw in enumerate(REGISTRY.read_text().splitlines(), 1):
        entry = raw.split("#", 1)[0].strip()
        if entry:
            registry.append(entry)
    if registry != sorted(registry):
        violations.append("metric-names: tools/metric_names.txt is not sorted")
    if len(registry) != len(set(registry)):
        violations.append(
            "metric-names: tools/metric_names.txt has duplicate entries"
        )

    seen: dict[str, str] = {}
    used: set[str] = set()
    for path in cxx_files("src"):
        for n, raw in enumerate(path.read_text().splitlines(), 1):
            for name in METRIC_LITERAL.findall(strip_comments(raw)):
                where = f"{path.relative_to(REPO)}:{n}"
                used.add(name)
                if name not in set(registry):
                    violations.append(
                        f"metric-names: {where}: \"{name}\" is not in "
                        f"tools/metric_names.txt"
                    )
                elif name in seen:
                    violations.append(
                        f"metric-names: {where}: \"{name}\" already "
                        f"registered at {seen[name]} — metric names must be "
                        f"registered at exactly one source location"
                    )
                else:
                    seen[name] = where
    for name in registry:
        if name not in used:
            violations.append(
                f"metric-names: \"{name}\" is in tools/metric_names.txt but "
                f"no longer used anywhere in src/ — remove the stale entry"
            )


def main() -> int:
    violations: list[str] = []
    checks = (
        check_banned_calls,
        check_memcpy_guards,
        check_obs_includes,
        check_metric_names,
    )
    failed_classes = 0
    for check in checks:
        before = len(violations)
        check(violations)
        if len(violations) > before:
            failed_classes += 1
    for v in violations:
        print(v)
    if not violations:
        print(f"lint: clean ({len(checks)} rule classes)")
    return failed_classes


if __name__ == "__main__":
    sys.exit(main())
