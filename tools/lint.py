#!/usr/bin/env python3
"""Project lint: invariants clang-tidy cannot express.

Run from anywhere: paths resolve relative to the repository root (this
file's parent directory; override with --root for probe fixtures). Exit
status is the number of violation classes that fired; 0 means clean. CI
runs this in the static-analysis job.

Rules:
  banned-call      rand(), strcpy(), and naked system() are forbidden in
                   src/, tools/, and examples/. Use common/rng.h, bounded
                   copies, and posix_spawn/explicit exec wrappers.
  memcpy-guard     every memcpy/memmove whose length is not a sizeof/integer
                   literal must sit in a function that checks emptiness
                   (`empty(`) somewhere, or carry a `lint: memcpy-checked`
                   waiver comment. An empty std::span/BytesView may carry
                   data() == nullptr, and memcpy(_, nullptr, 0) is UB — the
                   exact bug class PR 4's UBSan leg caught in sha512.
  obs-includes     src/obs stays dependency-free: it may include only the
                   C++ standard library, other obs/ headers, and the two
                   annotation headers (common/thread_annotations.h,
                   common/mutex.h). Anything else couples observability to
                   the layers it observes.
  metric-names     every "adlp_*" string literal in src/ must appear in
                   tools/metric_names.txt, be registered at exactly one
                   source location, and the registry itself must be sorted
                   and free of duplicates and stale entries.
  naked-mutex      std::mutex / std::lock_guard / std::unique_lock /
                   std::scoped_lock / std::condition_variable are forbidden
                   in src/, tools/, and examples/ outside common/mutex.h:
                   the annotated Mutex/MutexLock/CondVar wrappers are the
                   only lock primitives Clang's thread-safety analysis can
                   see, so a naked std:: primitive is an invisible lock —
                   exactly the regression PR 5's sweep removed.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

DEFAULT_REPO = Path(__file__).resolve().parent.parent

CXX_SUFFIXES = {".h", ".cpp", ".cc", ".hpp"}

BANNED = [
    (re.compile(r"(?<![\w:])rand\s*\("), "rand() — use common/rng.h"),
    (re.compile(r"(?<![\w:])strcpy\s*\("), "strcpy() — use bounded copies"),
    (re.compile(r"(?<![\w:.>])system\s*\("), "naked system()"),
]

OBS_INCLUDE_ALLOWED = re.compile(
    r'#include\s+(<[^>]+>|"obs/[^"]+"'
    r'|"common/thread_annotations\.h"|"common/mutex\.h")'
)

MEMCPY_CALL = re.compile(r"(?<![\w:])(?:std::)?(memcpy|memmove)\s*\(")
MEMCPY_WAIVER = "lint: memcpy-checked"
# Length arguments that cannot be a "zero bytes from an empty view" case:
# sizeof(...) of a fixed type/array, or a plain integer literal.
SAFE_LENGTH = re.compile(r"^\s*(sizeof\s*\(.*\)|\d+[uUlL]*)\s*$")

METRIC_LITERAL = re.compile(r'"(adlp_[a-z0-9_]+)"')

NAKED_MUTEX = re.compile(
    r"std::(mutex|recursive_mutex|timed_mutex|shared_mutex|lock_guard"
    r"|unique_lock|scoped_lock|condition_variable(?:_any)?)\b"
)
# The one place allowed to touch the std:: primitives: the annotated
# wrappers themselves.
NAKED_MUTEX_ALLOWED = ("src/common/mutex.h",)


def cxx_files(repo: Path, *roots: str) -> list[Path]:
    files: list[Path] = []
    for root in roots:
        base = repo / root
        if base.is_dir():
            files.extend(
                p for p in sorted(base.rglob("*")) if p.suffix in CXX_SUFFIXES
            )
    return files


def strip_comments(line: str) -> str:
    return line.split("//", 1)[0]


def call_arguments(text: str, open_paren: int) -> list[str] | None:
    """Splits the argument list of the call whose '(' is at open_paren."""
    depth = 0
    args: list[str] = []
    start = open_paren + 1
    for i in range(open_paren, len(text)):
        c = text[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                args.append(text[start:i])
                return args
        elif c == "," and depth == 1:
            args.append(text[start:i])
            start = i + 1
    return None  # unbalanced within the window


def enclosing_function(lines: list[str], idx: int) -> str:
    """Approximates the enclosing function body: the region between the
    nearest column-0 '}' lines (namespace-scope definitions in this tree)."""
    lo = idx
    while lo > 0 and not lines[lo - 1].startswith("}"):
        lo -= 1
    hi = idx
    while hi < len(lines) - 1 and not lines[hi].startswith("}"):
        hi += 1
    return "\n".join(lines[lo : hi + 1])


def check_banned_calls(repo: Path, violations: list[str]) -> None:
    for path in cxx_files(repo, "src", "tools", "examples"):
        for n, raw in enumerate(path.read_text().splitlines(), 1):
            line = strip_comments(raw)
            for pattern, what in BANNED:
                if pattern.search(line):
                    violations.append(
                        f"banned-call: {path.relative_to(repo)}:{n}: {what}"
                    )


def check_memcpy_guards(repo: Path, violations: list[str]) -> None:
    for path in cxx_files(repo, "src"):
        lines = path.read_text().splitlines()
        for n, raw in enumerate(lines, 1):
            line = strip_comments(raw)
            m = MEMCPY_CALL.search(line)
            if not m:
                continue
            if MEMCPY_WAIVER in raw or (n >= 2 and MEMCPY_WAIVER in lines[n - 2]):
                continue
            # The call may span lines; join a short window for parsing.
            window = " ".join(
                strip_comments(l) for l in lines[n - 1 : n + 4]
            )
            call = MEMCPY_CALL.search(window)
            args = call_arguments(window, call.end() - 1) if call else None
            if args and len(args) == 3 and SAFE_LENGTH.match(args[2]):
                continue
            if "empty(" in enclosing_function(lines, n - 1):
                continue
            violations.append(
                f"memcpy-guard: {path.relative_to(repo)}:{n}: "
                f"{m.group(1)} with a runtime length needs an emptiness "
                f"guard in the enclosing function (empty views may carry "
                f"data() == nullptr) or a '{MEMCPY_WAIVER}' comment"
            )


def check_obs_includes(repo: Path, violations: list[str]) -> None:
    for path in cxx_files(repo, "src/obs"):
        for n, raw in enumerate(path.read_text().splitlines(), 1):
            line = strip_comments(raw)
            if not line.lstrip().startswith("#include"):
                continue
            if not OBS_INCLUDE_ALLOWED.match(line.strip()):
                violations.append(
                    f"obs-includes: {path.relative_to(repo)}:{n}: "
                    f"{line.strip()} — src/obs may only include the standard "
                    f"library, obs/ headers, common/thread_annotations.h, "
                    f"and common/mutex.h"
                )


def check_metric_names(repo: Path, violations: list[str]) -> None:
    registry_path = repo / "tools" / "metric_names.txt"
    registry: list[str] = []
    if registry_path.is_file():
        for raw in registry_path.read_text().splitlines():
            entry = raw.split("#", 1)[0].strip()
            if entry:
                registry.append(entry)
    if registry != sorted(registry):
        violations.append("metric-names: tools/metric_names.txt is not sorted")
    if len(registry) != len(set(registry)):
        violations.append(
            "metric-names: tools/metric_names.txt has duplicate entries"
        )

    seen: dict[str, str] = {}
    used: set[str] = set()
    for path in cxx_files(repo, "src"):
        for n, raw in enumerate(path.read_text().splitlines(), 1):
            for name in METRIC_LITERAL.findall(strip_comments(raw)):
                where = f"{path.relative_to(repo)}:{n}"
                used.add(name)
                if name not in set(registry):
                    violations.append(
                        f"metric-names: {where}: \"{name}\" is not in "
                        f"tools/metric_names.txt"
                    )
                elif name in seen:
                    violations.append(
                        f"metric-names: {where}: \"{name}\" already "
                        f"registered at {seen[name]} — metric names must be "
                        f"registered at exactly one source location"
                    )
                else:
                    seen[name] = where
    for name in registry:
        if name not in used:
            violations.append(
                f"metric-names: \"{name}\" is in tools/metric_names.txt but "
                f"no longer used anywhere in src/ — remove the stale entry"
            )


def check_naked_mutex(repo: Path, violations: list[str]) -> None:
    for path in cxx_files(repo, "src", "tools", "examples"):
        rel = path.relative_to(repo).as_posix()
        if rel in NAKED_MUTEX_ALLOWED:
            continue
        for n, raw in enumerate(path.read_text().splitlines(), 1):
            m = NAKED_MUTEX.search(strip_comments(raw))
            if m:
                violations.append(
                    f"naked-mutex: {rel}:{n}: std::{m.group(1)} — use the "
                    f"annotated Mutex/MutexLock/CondVar wrappers from "
                    f"common/mutex.h (naked primitives are invisible to the "
                    f"thread-safety analysis)"
                )


CHECKS = (
    check_banned_calls,
    check_memcpy_guards,
    check_obs_includes,
    check_metric_names,
    check_naked_mutex,
)


def run(repo: Path) -> tuple[int, list[str]]:
    violations: list[str] = []
    failed_classes = 0
    for check in CHECKS:
        before = len(violations)
        check(repo, violations)
        if len(violations) > before:
            failed_classes += 1
    return failed_classes, violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=DEFAULT_REPO,
                        help="tree to lint (default: this repository; probe "
                             "tests point it at known-bad fixtures)")
    args = parser.parse_args(argv)
    failed_classes, violations = run(args.root.resolve())
    for v in violations:
        print(v)
    if not violations:
        print(f"lint: clean ({len(CHECKS)} rule classes)")
    return failed_classes


if __name__ == "__main__":
    sys.exit(main())
