#!/usr/bin/env python3
"""Schema check for the benchmark harness's JSON outputs.

    check_bench_json.py FILE [FILE ...]

Validates BENCH_audit.json (audit_bench) and BENCH_obs.json (obs_bench):
the file must parse, carry every expected field with the expected type, and
its self-reported pass flag (all_reports_identical / within_budget) must be
true. The schema is recognised from the document's contents, not the file
name, so renamed artifacts still validate.

Exit status: 0 = all files valid; 1 = a check failed; 2 = usage error.
"""

import json
import sys


class SchemaError(Exception):
    pass


def require(doc, key, kind, where):
    if key not in doc:
        raise SchemaError(f"{where}: missing field '{key}'")
    value = doc[key]
    if not isinstance(value, kind):
        expected = getattr(kind, "__name__", None) or "/".join(
            k.__name__ for k in kind
        )
        raise SchemaError(
            f"{where}: field '{key}' is {type(value).__name__}, "
            f"expected {expected}"
        )
    return value


def check_audit(doc, name):
    config = require(doc, "config", dict, name)
    for field in ("entries", "pairs", "shards", "links", "rsa_bits", "reps"):
        require(config, field, int, f"{name}.config")

    results = require(doc, "results", list, name)
    if not results:
        raise SchemaError(f"{name}: empty results array")
    for i, result in enumerate(results):
        where = f"{name}.results[{i}]"
        require(result, "threads", int, where)
        require(result, "cache", bool, where)
        for field in ("ms_mean", "entries_per_sec", "speedup_vs_serial"):
            value = require(result, field, (int, float), where)
            if value <= 0:
                raise SchemaError(f"{where}: '{field}' must be positive, got {value}")
        require(result, "cache_lookups", int, where)
        require(result, "cache_hits", int, where)
        if not require(result, "report_identical", bool, where):
            raise SchemaError(f"{where}: parallel report diverged from serial")

    if not require(doc, "all_reports_identical", bool, name):
        raise SchemaError(f"{name}: all_reports_identical is false")


def check_obs(doc, name):
    config = require(doc, "config", dict, name)
    for field in ("iters", "threads", "max_ns", "histogram_buckets"):
        require(config, field, int, f"{name}.config")

    results = require(doc, "results", list, name)
    expected = {
        "counter_add",
        "gauge_add",
        "histogram_record",
        "trace_record",
        "counter_add_contended",
    }
    seen = set()
    for i, result in enumerate(results):
        where = f"{name}.results[{i}]"
        primitive = require(result, "name", str, where)
        seen.add(primitive)
        ns = require(result, "ns_per_record", (int, float), where)
        gated = require(result, "gated", bool, where)
        if ns <= 0:
            raise SchemaError(f"{where}: ns_per_record must be positive, got {ns}")
        if gated and ns >= config["max_ns"]:
            raise SchemaError(
                f"{where}: gated primitive '{primitive}' at {ns} ns exceeds "
                f"the {config['max_ns']} ns budget"
            )
    missing = expected - seen
    if missing:
        raise SchemaError(f"{name}: missing primitives {sorted(missing)}")

    if not require(doc, "within_budget", bool, name):
        raise SchemaError(f"{name}: within_budget is false")


def check_file(path):
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict):
        raise SchemaError(f"{path}: top level is not an object")
    if "all_reports_identical" in doc:
        check_audit(doc, path)
        kind = "audit_bench"
    elif "within_budget" in doc:
        check_obs(doc, path)
        kind = "obs_bench"
    else:
        raise SchemaError(f"{path}: unrecognised bench output")
    print(f"{path}: ok ({kind}, {len(doc['results'])} results)")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        try:
            check_file(path)
        except (OSError, json.JSONDecodeError, SchemaError) as err:
            print(f"FAIL {err}", file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
