#!/usr/bin/env python3
"""Schema and regression check for the benchmark harness's JSON outputs.

    check_bench_json.py FILE [FILE ...]
    check_bench_json.py FILE --compare BASELINE [--max-regress 0.15]

Validates BENCH_audit.json (audit_bench), BENCH_obs.json (obs_bench),
BENCH_scale.json (scale_bench), BENCH_streaming.json (streaming_bench),
BENCH_replication.json (replication_bench), and BENCH_repair.json
(repair_bench): the file must parse, carry
every expected field with the expected type, and its self-reported pass
flag (all_reports_identical / within_budget / scale_ok / streaming_ok /
replication_ok / repair_ok) must be true. The schema
is recognised from the document's contents, not the file name, so renamed
artifacts still validate.

With --compare, exactly one FILE is checked against BASELINE (same schema):
every gated metric in the baseline must be matched in the current file and
must not regress by more than --max-regress (fraction, default 0.15).
Throughput-style metrics (entries_per_sec, deliveries_per_sec) regress
downward; cost-style metrics (ns_per_record) regress upward.

Exit status: 0 = all files valid; 1 = a check failed; 2 = usage error.
"""

import json
import sys


class SchemaError(Exception):
    pass


def require(doc, key, kind, where):
    if key not in doc:
        raise SchemaError(f"{where}: missing field '{key}'")
    value = doc[key]
    if not isinstance(value, kind):
        expected = getattr(kind, "__name__", None) or "/".join(
            k.__name__ for k in kind
        )
        raise SchemaError(
            f"{where}: field '{key}' is {type(value).__name__}, "
            f"expected {expected}"
        )
    return value


def check_audit(doc, name):
    config = require(doc, "config", dict, name)
    for field in ("entries", "pairs", "shards", "links", "rsa_bits", "reps"):
        require(config, field, int, f"{name}.config")
    alg = require(config, "alg", str, f"{name}.config")
    if alg not in ("rsa", "ed25519"):
        raise SchemaError(f"{name}.config: unknown alg '{alg}'")

    results = require(doc, "results", list, name)
    if not results:
        raise SchemaError(f"{name}: empty results array")
    for i, result in enumerate(results):
        where = f"{name}.results[{i}]"
        require(result, "threads", int, where)
        require(result, "cache", bool, where)
        for field in ("ms_mean", "entries_per_sec", "speedup_vs_serial"):
            value = require(result, field, (int, float), where)
            if value <= 0:
                raise SchemaError(f"{where}: '{field}' must be positive, got {value}")
        # Optional (added after the first committed baselines): the fastest
        # repetition's throughput. Validated when present.
        best = result.get("entries_per_sec_best")
        if best is not None and (
            not isinstance(best, (int, float)) or best <= 0
        ):
            raise SchemaError(
                f"{where}: 'entries_per_sec_best' must be positive, got {best}"
            )
        require(result, "cache_lookups", int, where)
        require(result, "cache_hits", int, where)
        if not require(result, "report_identical", bool, where):
            raise SchemaError(f"{where}: parallel report diverged from serial")
        if not require(result, "monotone_ok", bool, where):
            raise SchemaError(
                f"{where}: parallel configuration slower than serial"
            )

    if not require(doc, "all_reports_identical", bool, name):
        raise SchemaError(f"{name}: all_reports_identical is false")
    if not require(doc, "scaling_monotone", bool, name):
        raise SchemaError(f"{name}: scaling_monotone is false")


def check_obs(doc, name):
    config = require(doc, "config", dict, name)
    for field in ("iters", "threads", "max_ns", "histogram_buckets"):
        require(config, field, int, f"{name}.config")

    results = require(doc, "results", list, name)
    expected = {
        "counter_add",
        "gauge_add",
        "histogram_record",
        "trace_record",
        "counter_add_contended",
    }
    seen = set()
    for i, result in enumerate(results):
        where = f"{name}.results[{i}]"
        primitive = require(result, "name", str, where)
        seen.add(primitive)
        ns = require(result, "ns_per_record", (int, float), where)
        gated = require(result, "gated", bool, where)
        if ns <= 0:
            raise SchemaError(f"{where}: ns_per_record must be positive, got {ns}")
        if gated and ns >= config["max_ns"]:
            raise SchemaError(
                f"{where}: gated primitive '{primitive}' at {ns} ns exceeds "
                f"the {config['max_ns']} ns budget"
            )
    missing = expected - seen
    if missing:
        raise SchemaError(f"{name}: missing primitives {sorted(missing)}")

    if not require(doc, "within_budget", bool, name):
        raise SchemaError(f"{name}: within_budget is false")


def check_scale(doc, name):
    config = require(doc, "config", dict, name)
    require(config, "payload_bytes", int, f"{name}.config")
    require(config, "min_speedup", (int, float), f"{name}.config")
    require(config, "timeout_s", int, f"{name}.config")

    results = require(doc, "results", list, name)
    if not results:
        raise SchemaError(f"{name}: empty results array")
    for i, result in enumerate(results):
        where = f"{name}.results[{i}]"
        require(result, "subs", int, where)
        mode = require(result, "mode", str, where)
        if mode not in ("thread", "reactor"):
            raise SchemaError(f"{where}: unknown mode '{mode}'")
        require(result, "rounds", int, where)
        require(result, "deliveries", int, where)
        for field in ("wall_ms", "deliveries_per_sec", "p50_us", "p99_us"):
            value = require(result, field, (int, float), where)
            if value < 0:
                raise SchemaError(f"{where}: '{field}' is negative: {value}")
        if require(result, "timed_out", bool, where):
            raise SchemaError(f"{where}: run timed out before finishing")

    gate = require(doc, "gate", dict, name)
    require(gate, "subs", int, f"{name}.gate")
    require(gate, "speedup", (int, float), f"{name}.gate")
    require(gate, "p99_ok", bool, f"{name}.gate")
    require(gate, "evaluated", bool, f"{name}.gate")

    if not require(doc, "scale_ok", bool, name):
        raise SchemaError(f"{name}: scale_ok is false")


def check_streaming(doc, name):
    config = require(doc, "config", dict, name)
    for field in (
        "entries",
        "transmissions",
        "links",
        "flagged_pairs",
        "epoch_transmissions",
        "rsa_bits",
        "reps",
    ):
        require(config, field, int, f"{name}.config")
    require(config, "min_detect_speedup", (int, float), f"{name}.config")

    results = require(doc, "results", list, name)
    seen = set()
    for i, result in enumerate(results):
        where = f"{name}.results[{i}]"
        mode = require(result, "mode", str, where)
        if mode not in ("streaming", "batch"):
            raise SchemaError(f"{where}: unknown mode '{mode}'")
        seen.add(mode)
        require(result, "flags", int, where)
        for field in (
            "wall_ms",
            "entries_per_sec",
            "entries_per_sec_best",
            "detect_p50_ms",
            "detect_p99_ms",
        ):
            value = require(result, field, (int, float), where)
            if value <= 0:
                raise SchemaError(
                    f"{where}: '{field}' must be positive, got {value}"
                )
    missing = {"streaming", "batch"} - seen
    if missing:
        raise SchemaError(f"{name}: missing modes {sorted(missing)}")

    gate = require(doc, "gate", dict, name)
    speedup = require(gate, "detect_speedup_p99", (int, float), f"{name}.gate")
    if speedup < config["min_detect_speedup"]:
        raise SchemaError(
            f"{name}.gate: detection speedup {speedup} below the "
            f"{config['min_detect_speedup']}x gate"
        )
    if not require(gate, "identical", bool, f"{name}.gate"):
        raise SchemaError(
            f"{name}.gate: streaming report diverged from the batch reference"
        )
    if not require(gate, "flags_complete", bool, f"{name}.gate"):
        raise SchemaError(f"{name}.gate: not every misbehaving pair flagged")

    if not require(doc, "streaming_ok", bool, name):
        raise SchemaError(f"{name}: streaming_ok is false")


def check_replication(doc, name):
    config = require(doc, "config", dict, name)
    for field in ("entries", "reps", "payload_bytes"):
        require(config, field, int, f"{name}.config")

    results = require(doc, "results", list, name)
    if not results:
        raise SchemaError(f"{name}: empty results array")
    for i, result in enumerate(results):
        where = f"{name}.results[{i}]"
        replicas = require(result, "replicas", int, where)
        quorum = require(result, "quorum", int, where)
        if not 1 <= quorum <= replicas:
            raise SchemaError(
                f"{where}: quorum {quorum} outside [1, {replicas}]"
            )
        for field in (
            "wall_ms",
            "entries_per_sec",
            "entries_per_sec_best",
            "commit_p50_us",
            "commit_p99_us",
        ):
            value = require(result, field, (int, float), where)
            if value <= 0:
                raise SchemaError(
                    f"{where}: '{field}' must be positive, got {value}"
                )
        if not require(result, "committed", bool, where):
            raise SchemaError(f"{where}: quorum commit timed out")
        if not require(result, "converged", bool, where):
            raise SchemaError(f"{where}: a replica failed to converge")

    gate = require(doc, "gate", dict, name)
    if not require(gate, "all_committed", bool, f"{name}.gate"):
        raise SchemaError(f"{name}.gate: all_committed is false")
    if not require(gate, "all_converged", bool, f"{name}.gate"):
        raise SchemaError(f"{name}.gate: all_converged is false")

    if not require(doc, "replication_ok", bool, name):
        raise SchemaError(f"{name}: replication_ok is false")


def check_repair(doc, name):
    config = require(doc, "config", dict, name)
    for field in ("entries", "reps", "payload_bytes", "seal_every", "replicas"):
        require(config, field, int, f"{name}.config")

    results = require(doc, "results", list, name)
    if not results:
        raise SchemaError(f"{name}: empty results array")
    for i, result in enumerate(results):
        where = f"{name}.results[{i}]"
        behind = require(result, "behind", int, where)
        if not 1 <= behind < config["replicas"]:
            raise SchemaError(
                f"{where}: behind {behind} outside [1, {config['replicas']})"
            )
        require(result, "records_repaired", int, where)
        for field in (
            "wall_ms",
            "repair_records_per_sec",
            "repair_records_per_sec_best",
            "reconverge_ms",
        ):
            value = require(result, field, (int, float), where)
            if value <= 0:
                raise SchemaError(
                    f"{where}: '{field}' must be positive, got {value}"
                )
        if not require(result, "converged", bool, where):
            raise SchemaError(f"{where}: a replica failed to converge")
        if not require(result, "clean", bool, where):
            raise SchemaError(
                f"{where}: repair produced findings against honest peers"
            )

    gate = require(doc, "gate", dict, name)
    if not require(gate, "all_converged", bool, f"{name}.gate"):
        raise SchemaError(f"{name}.gate: all_converged is false")
    if not require(gate, "no_findings", bool, f"{name}.gate"):
        raise SchemaError(f"{name}.gate: no_findings is false")

    if not require(doc, "repair_ok", bool, name):
        raise SchemaError(f"{name}: repair_ok is false")


# Schema name -> (row key fields, gated metrics). Each metric is
# (field, direction): "up" = higher is better, "down" = lower is better.
COMPARE_SPECS = {
    "audit_bench": (("threads", "cache"), (("entries_per_sec", "up"),)),
    "obs_bench": (("name",), (("ns_per_record", "down"),)),
    "scale_bench": (("subs", "mode"), (("deliveries_per_sec", "up"),)),
    # Detection-latency absolutes are machine-dependent; the latency *ratio*
    # is gated in-run by the bench itself, so only throughput regresses here.
    "streaming_bench": (("mode",), (("entries_per_sec", "up"),)),
    # Commit-latency absolutes are machine-dependent (they include localhost
    # TCP and thread scheduling); only committed throughput regresses.
    "replication_bench": (("replicas",), (("entries_per_sec", "up"),)),
    # Reconvergence absolutes include localhost TCP round trips and thread
    # scheduling; only verified-repair throughput regresses.
    "repair_bench": (("behind",), (("repair_records_per_sec", "up"),)),
}

# When both rows carry the preferred variant of a metric, compare that
# instead: best-of-reps throughput is the low-noise estimate on shared
# runners (contention only ever inflates samples), while the mean of a few
# repetitions can swing past any reasonable tolerance on a preempted box.
# Baselines recorded before the field existed fall back to the mean.
PREFERRED_FIELDS = {
    "entries_per_sec": "entries_per_sec_best",
    "repair_records_per_sec": "repair_records_per_sec_best",
}


def compare(doc, baseline, kind, name, base_name, max_regress):
    key_fields, metrics = COMPARE_SPECS[kind]

    if kind == "audit_bench":
        cur_alg = doc.get("config", {}).get("alg")
        base_alg = baseline.get("config", {}).get("alg")
        if cur_alg != base_alg:
            raise SchemaError(
                f"{name} is alg={cur_alg} but {base_name} is "
                f"alg={base_alg}; compare like with like"
            )

    def rows_by_key(document, where):
        rows = {}
        for row in require(document, "results", list, where):
            rows[tuple(row.get(f) for f in key_fields)] = row
        return rows

    current = rows_by_key(doc, name)
    base = rows_by_key(baseline, base_name)
    failures = []
    for key, base_row in base.items():
        label = ",".join(f"{f}={v}" for f, v in zip(key_fields, key))
        if key not in current:
            failures.append(f"row ({label}) present in baseline but missing")
            continue
        for field, direction in metrics:
            preferred = PREFERRED_FIELDS.get(field)
            if (
                preferred is not None
                and isinstance(base_row.get(preferred), (int, float))
                and isinstance(current[key].get(preferred), (int, float))
            ):
                field = preferred
            base_value = base_row.get(field)
            cur_value = current[key].get(field)
            if not isinstance(base_value, (int, float)) or base_value <= 0:
                continue  # nothing meaningful to compare against
            if not isinstance(cur_value, (int, float)):
                failures.append(f"row ({label}): '{field}' missing")
                continue
            if direction == "up":
                regress = (base_value - cur_value) / base_value
            else:
                regress = (cur_value - base_value) / base_value
            if regress > max_regress:
                failures.append(
                    f"row ({label}): {field} regressed {regress:.1%} "
                    f"(baseline {base_value:g}, current {cur_value:g}, "
                    f"allowed {max_regress:.0%})"
                )
    if failures:
        raise SchemaError(
            f"{name} vs {base_name}: " + "; ".join(failures)
        )
    print(
        f"{name}: no regression vs {base_name} "
        f"({len(base)} rows, max {max_regress:.0%})"
    )


def load(path):
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict):
        raise SchemaError(f"{path}: top level is not an object")
    return doc


def check_doc(doc, path):
    """Validates `doc` and returns its recognised schema name."""
    if "all_reports_identical" in doc:
        check_audit(doc, path)
        kind = "audit_bench"
    elif "within_budget" in doc:
        check_obs(doc, path)
        kind = "obs_bench"
    elif "scale_ok" in doc:
        check_scale(doc, path)
        kind = "scale_bench"
    elif "streaming_ok" in doc:
        check_streaming(doc, path)
        kind = "streaming_bench"
    elif "replication_ok" in doc:
        check_replication(doc, path)
        kind = "replication_bench"
    elif "repair_ok" in doc:
        check_repair(doc, path)
        kind = "repair_bench"
    else:
        raise SchemaError(f"{path}: unrecognised bench output")
    print(f"{path}: ok ({kind}, {len(doc['results'])} results)")
    return kind


def usage():
    print(__doc__.strip(), file=sys.stderr)
    return 2


def main(argv):
    files = []
    baseline_path = None
    max_regress = 0.15
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--compare":
            if i + 1 >= len(argv):
                return usage()
            baseline_path = argv[i + 1]
            i += 2
        elif arg == "--max-regress":
            if i + 1 >= len(argv):
                return usage()
            try:
                max_regress = float(argv[i + 1])
            except ValueError:
                return usage()
            if max_regress < 0:
                return usage()
            i += 2
        elif arg.startswith("-"):
            return usage()
        else:
            files.append(arg)
            i += 1
    if not files:
        return usage()
    if baseline_path is not None and len(files) != 1:
        print("--compare requires exactly one FILE", file=sys.stderr)
        return 2

    failed = False
    for path in files:
        try:
            doc = load(path)
            kind = check_doc(doc, path)
            if baseline_path is not None:
                baseline = load(baseline_path)
                base_kind = check_doc(baseline, baseline_path)
                if base_kind != kind:
                    raise SchemaError(
                        f"{path} is {kind} but {baseline_path} is {base_kind}"
                    )
                compare(doc, baseline, kind, path, baseline_path, max_regress)
        except (OSError, json.JSONDecodeError, SchemaError) as err:
            print(f"FAIL {err}", file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
