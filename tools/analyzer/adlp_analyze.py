#!/usr/bin/env python3
"""ADLP protocol-conformance static analyzer.

Three project-specific passes over the C++ tree, each encoding an invariant
the protocol's security argument depends on but that no generic tool checks:

  parser-bounds        Every function in the wire-parsing TUs (src/wire,
                       src/adlp/{wire_msgs,sync_msgs,epoch,remote_log,
                       log_entry}) must bounds-check an untrusted byte span
                       (a size()/empty() comparison, or a length validated
                       by wire::Reader::Take) before any subscript, subspan,
                       front/back, memcpy, or std::copy on it.

  blocking-under-lock  No Send/Receive/Connect/Accept/sleep_for/
                       WaitCommitted-class call (configurable blocklist) may
                       appear lexically inside a MutexLock scope or a
                       REQUIRES-annotated function. MutexLock's relock
                       window (lock.Unlock() ... lock.Lock()) is modelled:
                       blocking calls inside the window are fine. CondVar
                       Wait/WaitUntil/WaitFor are deliberately not listed —
                       they release the lock while blocked.

  wire-kinds           Every kKind* wire constant must be registered in
                       tools/wire_kinds.txt (sorted, unique — staleness is
                       an error in both directions), carry a unique value,
                       and have all four of: a serializer, a parser, a
                       dispatch path (direct reference in a dispatch
                       function, or a serializer/parser that the dispatch
                       function calls), and fuzz coverage (the kind or one
                       of its serializer/parser functions referenced under
                       tests/fuzz/).

Frontends: the analysis itself is token-level; what a frontend provides is
the function inventory (name, extent, body tokens). `--frontend=clang` uses
Python clang.cindex (version-pinned in CI via --expect-clang-version) for
macro-aware, compiler-grade function discovery; `--frontend=lex` is a
dependency-free C++ scanner so the analyzer runs (and its tests run)
anywhere, including containers without libclang. `auto` prefers clang when
importable. Both frontends must agree on the probe fixtures — the ctest
suite runs the lex frontend always and the clang frontend when available.

Waivers: a finding is suppressed by a comment on the same or preceding
line:

    // analyzer: allow(<pass-name>): <justification>

The justification is mandatory; a waiver without one is itself reported.

Exit status: number of passes that produced findings (waiver-syntax
problems count against the pass being waived); 10 on usage/environment
errors, so a missing frontend can never be mistaken for a clean tree.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

PASS_NAMES = ("parser-bounds", "blocking-under-lock", "wire-kinds")

# Files whose functions must satisfy the parser-bounds invariant: every TU
# that decodes attacker-controlled bytes. Relative-path globs against the
# analysis root.
BOUNDS_GLOBS = [
    "src/wire/*",
    "src/adlp/wire_msgs*",
    "src/adlp/sync_msgs*",
    "src/adlp/epoch*",
    "src/adlp/remote_log*",
    "src/adlp/log_entry*",
]

# Span-producing types whose parameters/locals are treated as untrusted.
SPAN_TYPES = {"BytesView", "Bytes", "span"}

# Methods/calls that read raw bytes out of a span and therefore demand a
# prior bounds check on it.
RISKY_METHODS = {"subspan", "front", "back"}

# Calls that may not appear while a MutexLock is held. Deliberately absent:
# CondVar Wait/WaitUntil/WaitFor (they release the lock while blocked) and
# bounded in-process work like WriteAll (TcpChannel::Send holds send_mu_ by
# design for frame atomicity).
DEFAULT_BLOCKLIST = {
    "Send", "Receive", "Connect", "Accept", "TcpConnect", "TryTcpConnect",
    "RoundTrip", "sleep_for", "sleep_until", "WaitCommitted",
    "DrainCommitted", "WaitClosed", "join",
}

# Functions that route raw frames to per-kind handling. A kind has dispatch
# coverage if one of these references it directly or calls a
# serializer/parser that does.
DISPATCH_FUNCS = {"HandleSyncRequest", "IngestFrame", "AckReaderLoop"}

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "throw",
    "new", "delete", "operator", "static_assert", "alignas", "alignof",
    "decltype", "assert",
}

# Tokens allowed between a definition's `)` and its `{` (plus attribute
# macros, which carry their own parenthesized arguments).
SIGNATURE_QUALIFIERS = {"const", "noexcept", "override", "final", "try", "&",
                        "&&", "->"}
ATTRIBUTE_MACROS = {
    "REQUIRES", "EXCLUDES", "ACQUIRE", "RELEASE", "RETURN_CAPABILITY",
    "NO_THREAD_SAFETY_ANALYSIS", "GUARDED_BY", "noexcept",
}


@dataclass
class Token:
    line: int
    text: str


@dataclass
class Function:
    name: str           # unqualified
    qualified: str      # Class::Name when known
    file: str           # path relative to the analysis root
    line: int
    sig: list[Token]    # parameter-list tokens (between the outer parens)
    body: list[Token]   # tokens between the braces, exclusive


@dataclass
class Finding:
    file: str
    line: int
    pass_name: str
    message: str

    def render(self) -> str:
        return f"{self.file}:{self.line}: [{self.pass_name}] {self.message}"


# --------------------------------------------------------------------------
# Tokenizer (shared: the lex frontend runs it on whole files; both frontends
# produce Token streams the passes consume).

_TOKEN_RE = re.compile(
    r"""
      (?P<comment> //[^\n]* | /\*.*?\*/ )
    | (?P<string>  "(?:[^"\\\n]|\\.)*" | '(?:[^'\\\n]|\\.)*' )
    | (?P<id>      [A-Za-z_]\w* )
    | (?P<num>     \.?\d(?:[\w.]|[eEpP][+-])* )
    | (?P<punct>   :: | -> | && | \|\| | [{}()\[\];,<>=!+\-*/%&|^~.:?#] )
    """,
    re.VERBOSE | re.DOTALL,
)


def tokenize(text: str) -> list[Token]:
    """C++ lexer, comments and strings elided (line numbers preserved)."""
    tokens: list[Token] = []
    line = 1
    pos = 0
    for m in _TOKEN_RE.finditer(text):
        line += text.count("\n", pos, m.start())
        pos = m.start()
        if m.lastgroup in ("comment", "string"):
            continue
        tokens.append(Token(line, m.group()))
    return tokens


def match_forward(tokens: list[Token], i: int, open_: str, close: str) -> int:
    """Index of the token closing the bracket opened at i (or -1)."""
    depth = 0
    for j in range(i, len(tokens)):
        if tokens[j].text == open_:
            depth += 1
        elif tokens[j].text == close:
            depth -= 1
            if depth == 0:
                return j
    return -1


# --------------------------------------------------------------------------
# Lex frontend: function discovery by brace/paren structure.


def _skip_to_body(tokens: list[Token], close_paren: int) -> int:
    """From a definition's closing `)`, return the index of its body `{`.

    Skips cv/ref qualifiers, noexcept(...), trailing return types,
    thread-safety attribute macros, and constructor member-init lists.
    Returns -1 if this isn't a definition (declaration, expression, ...).
    """
    i = close_paren + 1
    n = len(tokens)
    while i < n:
        t = tokens[i].text
        if t == "{":
            return i
        if t in SIGNATURE_QUALIFIERS:
            i += 1
            continue
        if t in ATTRIBUTE_MACROS or (t.isidentifier() and t.isupper()):
            # Attribute macro, with or without arguments.
            if i + 1 < n and tokens[i + 1].text == "(":
                end = match_forward(tokens, i + 1, "(", ")")
                if end < 0:
                    return -1
                i = end + 1
            else:
                i += 1
            continue
        if t == ":":
            # Constructor member-init list: id ( ... ) or id { ... },
            # comma-separated, then the body brace.
            i += 1
            while i < n:
                if tokens[i].text == "{":
                    # Either an init `name{...}` (preceded by an id) or the
                    # body. The body brace follows `)`/`}` of an init or the
                    # `:` directly only via an id — disambiguate: a body
                    # brace is preceded by `)` `}` or an initializer comma
                    # walk. Simplest: if the previous token is an
                    # identifier, this brace belongs to `name{...}`.
                    if i > 0 and tokens[i - 1].text.isidentifier():
                        end = match_forward(tokens, i, "{", "}")
                        if end < 0:
                            return -1
                        i = end + 1
                        continue
                    return i
                if tokens[i].text == "(":
                    end = match_forward(tokens, i, "(", ")")
                    if end < 0:
                        return -1
                    i = end + 1
                    continue
                if tokens[i].text == "<":
                    end = match_forward(tokens, i, "<", ">")
                    if end < 0:
                        return -1
                    i = end + 1
                    continue
                i += 1
            return -1
        if t.isidentifier():
            # e.g. `-> Bytes` trailing return pieces.
            i += 1
            continue
        if t in ("<", "::", ">", ",", "*", "&"):
            i += 1
            continue
        return -1
    return -1


def lex_functions(tokens: list[Token], rel_path: str) -> list[Function]:
    functions: list[Function] = []
    i = 0
    n = len(tokens)
    while i < n:
        if tokens[i].text != "(":
            i += 1
            continue
        # Candidate parameter list: the token before must be an identifier
        # that is not a control keyword.
        if i == 0 or not tokens[i - 1].text.isidentifier():
            i += 1
            continue
        name = tokens[i - 1].text
        if name in CONTROL_KEYWORDS or name in ATTRIBUTE_MACROS or (
                name.isupper() and len(name) > 1):
            i += 1
            continue
        close = match_forward(tokens, i, "(", ")")
        if close < 0:
            i += 1
            continue
        body_open = _skip_to_body(tokens, close)
        if body_open < 0:
            i += 1
            continue
        body_close = match_forward(tokens, body_open, "{", "}")
        if body_close < 0:
            i += 1
            continue
        # Qualified name: walk back over `Class ::` pairs.
        qualified = name
        j = i - 2
        while j >= 1 and tokens[j].text == "::" and \
                tokens[j - 1].text.isidentifier():
            qualified = tokens[j - 1].text + "::" + qualified
            j -= 2
        functions.append(Function(
            name=name,
            qualified=qualified,
            file=rel_path,
            line=tokens[i - 1].line,
            sig=tokens[i + 1:close],
            body=tokens[body_open + 1:body_close],
        ))
        i = body_open + 1  # descend: lambdas/local structs are re-scanned
    return functions


# --------------------------------------------------------------------------
# Clang frontend: same Function inventory via clang.cindex.


def load_cindex(libclang: str | None):
    import clang.cindex as ci  # raises ImportError when unavailable
    if libclang:
        ci.Config.set_library_file(libclang)
    return ci


def clang_version(ci) -> str:
    try:
        raw = ci.conf.lib.clang_getClangVersion()
        return ci.conf.lib.clang_getCString(raw).decode() \
            if not isinstance(raw, str) else raw
    except Exception:  # noqa: BLE001 — version string is best-effort
        return "unknown"


def clang_functions(ci, path: Path, rel_path: str,
                    args: list[str]) -> list[Function]:
    index = ci.Index.create()
    tu = index.parse(str(path), args=args)
    fatal = [d for d in tu.diagnostics if d.severity >= d.Fatal]
    if fatal:
        raise RuntimeError(f"{path}: {fatal[0].spelling}")
    kinds = {
        ci.CursorKind.FUNCTION_DECL,
        ci.CursorKind.CXX_METHOD,
        ci.CursorKind.CONSTRUCTOR,
        ci.CursorKind.DESTRUCTOR,
        ci.CursorKind.FUNCTION_TEMPLATE,
    }
    functions: list[Function] = []
    for cur in tu.cursor.walk_preorder():
        if cur.kind not in kinds or not cur.is_definition():
            continue
        if cur.location.file is None or cur.location.file.name != str(path):
            continue
        toks = [Token(t.location.line, t.spelling)
                for t in tu.get_tokens(extent=cur.extent)
                if t.kind != ci.TokenKind.COMMENT]
        # Split into signature and body at the first top-level '{' that
        # follows the parameter list.
        opens = [k for k, t in enumerate(toks) if t.text == "("]
        if not opens:
            continue
        close = match_forward(toks, opens[0], "(", ")")
        if close < 0:
            continue
        body_open = _skip_to_body(toks, close)
        if body_open < 0:
            continue
        body_close = match_forward(toks, body_open, "{", "}")
        if body_close < 0:
            continue
        parent = cur.semantic_parent
        qualified = cur.spelling
        if parent is not None and parent.kind in (
                ci.CursorKind.CLASS_DECL, ci.CursorKind.STRUCT_DECL):
            qualified = f"{parent.spelling}::{cur.spelling}"
        functions.append(Function(
            name=cur.spelling,
            qualified=qualified,
            file=rel_path,
            line=cur.location.line,
            sig=toks[opens[0] + 1:close],
            body=toks[body_open + 1:body_close],
        ))
    return functions


# --------------------------------------------------------------------------
# Waivers.

_WAIVER_RE = re.compile(
    r"//\s*analyzer:\s*allow\(\s*([\w-]+)\s*\)\s*:?\s*(.*)")


@dataclass
class Waivers:
    # (pass_name, line) -> justification text ('' when missing)
    entries: dict[tuple[str, int], str] = field(default_factory=dict)

    def covers(self, pass_name: str, line: int) -> bool:
        # scan_waivers resolves each waiver to the code line it covers.
        return (pass_name, line) in self.entries


def scan_waivers(text: str, rel_path: str) -> tuple[Waivers, list[Finding]]:
    waivers = Waivers()
    findings: list[Finding] = []
    lines = text.splitlines()
    for lineno, line in enumerate(lines, start=1):
        m = _WAIVER_RE.search(line)
        if not m:
            continue
        pass_name, justification = m.group(1), m.group(2).strip()
        if pass_name not in PASS_NAMES:
            findings.append(Finding(
                rel_path, lineno, "waiver",
                f"waiver names unknown pass '{pass_name}' "
                f"(known: {', '.join(PASS_NAMES)})"))
            continue
        # A comment-only waiver line (possibly continued over further //
        # comment lines) covers the first code line after the comment
        # block; a trailing waiver covers its own line.
        target = lineno
        if line.lstrip().startswith("//"):
            target = lineno + 1
            while target <= len(lines) and \
                    lines[target - 1].lstrip().startswith("//"):
                target += 1
            # Continuation lines may carry the justification.
            probe = lineno + 1
            while not justification and probe < target:
                justification = lines[probe - 1].lstrip().lstrip("/").strip()
                probe += 1
        if not justification:
            findings.append(Finding(
                rel_path, lineno, pass_name,
                "waiver without justification — say why this is safe"))
            continue
        waivers.entries[(pass_name, target)] = justification
    return waivers, findings


# --------------------------------------------------------------------------
# Pass 1: parser-bounds.


def _sig_span_params(sig: list[Token]) -> set[str]:
    """Parameter names whose declared type is a byte span."""
    params: set[str] = set()
    for k, tok in enumerate(sig):
        if tok.text not in SPAN_TYPES:
            continue
        # Skip template args (`std::span<const uint8_t> name`), cv/ref.
        j = k + 1
        if j < len(sig) and sig[j].text == "<":
            end = match_forward(sig, j, "<", ">")
            if end < 0:
                continue
            j = end + 1
        while j < len(sig) and sig[j].text in ("const", "&", "&&", "*"):
            j += 1
        if j < len(sig) and sig[j].text.isidentifier():
            params.add(sig[j].text)
    return params


def _body_span_locals(body: list[Token]) -> tuple[set[str], set[str]]:
    """(span locals, validated locals) declared inside the body.

    A local is *validated* when its initializer runs through
    wire::Reader::Take — Take(n) throws unless n bytes remain, so the
    resulting view's length is known-good by construction.
    """
    spans: set[str] = set()
    validated: set[str] = set()
    for k, tok in enumerate(body):
        if tok.text not in SPAN_TYPES:
            continue
        j = k + 1
        if j < len(body) and body[j].text == "<":
            end = match_forward(body, j, "<", ">")
            if end < 0:
                continue
            j = end + 1
        while j < len(body) and body[j].text in ("const", "&", "&&", "*"):
            j += 1
        if j >= len(body) or not body[j].text.isidentifier():
            continue
        name = body[j].text
        if j + 1 >= len(body) or body[j + 1].text not in ("=", "(", "{"):
            continue
        spans.add(name)
        # Scan the initializer (to the statement's `;`) for Take(.
        stmt_end = j + 1
        while stmt_end < len(body) and body[stmt_end].text != ";":
            stmt_end += 1
        init = body[j + 1:stmt_end]
        if any(t.text == "Take" for t in init):
            validated.add(name)
    return spans, validated


def pass_parser_bounds(fn: Function) -> list[Finding]:
    tainted = _sig_span_params(fn.sig)
    locals_, validated = _body_span_locals(fn.body)
    tainted |= locals_
    tainted -= validated
    if not tainted:
        return []

    findings: list[Finding] = []
    checked: set[str] = set()
    body = fn.body
    n = len(body)

    def flag(line: int, var: str, what: str) -> None:
        findings.append(Finding(
            fn.file, line, "parser-bounds",
            f"{what} on untrusted span '{var}' in {fn.qualified}() without "
            f"a prior {var}.size()/{var}.empty() check"))

    for k, tok in enumerate(body):
        name = tok.text
        if name in tainted and k + 2 < n and body[k + 1].text == ".":
            method = body[k + 2].text
            if method in ("size", "empty"):
                checked.add(name)
                continue
            if method in RISKY_METHODS and name not in checked:
                flag(tok.line, name, f".{method}()")
                checked.add(name)  # one finding per variable per reason
                continue
        if name in tainted and k + 1 < n and body[k + 1].text == "[" \
                and name not in checked:
            flag(tok.line, name, "subscript")
            checked.add(name)
            continue
        if name in ("memcpy", "copy") and k + 1 < n \
                and body[k + 1].text == "(":
            end = match_forward(body, k + 1, "(", ")")
            if end < 0:
                continue
            args = body[k + 2:end]
            for a in args:
                if a.text in tainted and a.text not in checked:
                    flag(tok.line, a.text, f"{name}()")
                    checked.add(a.text)
    return findings


# --------------------------------------------------------------------------
# Pass 2: blocking-under-lock.


def collect_requires(files: dict[str, str]) -> set[str]:
    """Unqualified function names declared with REQUIRES(...).

    Scanned over raw text (headers included) because the annotation usually
    sits on the in-class declaration, not the out-of-line definition.
    """
    names: set[str] = set()
    decl_re = re.compile(
        r"(\w+)\s*\([^;{}()]*\)\s*(?:const\s*)?(?:noexcept\s*)?"
        r"REQUIRES\s*\(", re.DOTALL)
    for text in files.values():
        for m in decl_re.finditer(text):
            names.add(m.group(1))
    return names


@dataclass
class _LockState:
    var: str
    depth: int
    suspended: bool = False


def pass_blocking_under_lock(fn: Function, blocklist: set[str],
                             requires: set[str]) -> list[Finding]:
    findings: list[Finding] = []
    _scan_lock_region(fn, fn.body, fn.name in requires, blocklist, findings)
    return findings


def _scan_lock_region(fn: Function, body: list[Token], always_locked: bool,
                      blocklist: set[str],
                      findings: list[Finding]) -> None:
    n = len(body)
    locks: list[_LockState] = []
    depth = 0
    k = 0
    while k < n:
        t = body[k].text
        if t == "thread" and k + 1 < n and body[k + 1].text == "(":
            # std::thread's callable runs on the spawned thread, not under
            # any lock held here — analyze its argument region with fresh
            # lock state instead of inheriting ours. (Lambdas passed to
            # ordinary functions/algorithms run inline and keep the outer
            # state.)
            end = match_forward(body, k + 1, "(", ")")
            if end > 0:
                _scan_lock_region(fn, body[k + 2:end], False, blocklist,
                                  findings)
                k = end + 1
                continue
        if t == "{":
            depth += 1
        elif t == "}":
            depth -= 1
            locks = [s for s in locks if s.depth <= depth]
        elif t == "MutexLock" and k + 1 < n and \
                body[k + 1].text.isidentifier() and k + 2 < n and \
                body[k + 2].text == "(":
            locks.append(_LockState(var=body[k + 1].text, depth=depth))
            k += 3
            continue
        elif t.isidentifier() and k + 2 < n and body[k + 1].text == "." and \
                body[k + 2].text in ("Unlock", "Lock"):
            for s in locks:
                if s.var == t:
                    s.suspended = body[k + 2].text == "Unlock"
            k += 3
            continue
        elif t in blocklist and k + 1 < n and body[k + 1].text == "(":
            held = [s.var for s in locks if not s.suspended]
            if held:
                findings.append(Finding(
                    fn.file, body[k].line, "blocking-under-lock",
                    f"blocking call {t}() in {fn.qualified}() while "
                    f"MutexLock '{held[-1]}' is held"))
            elif always_locked:
                findings.append(Finding(
                    fn.file, body[k].line, "blocking-under-lock",
                    f"blocking call {t}() in {fn.qualified}(), which is "
                    f"REQUIRES-annotated (caller holds the lock)"))
        k += 1


# --------------------------------------------------------------------------
# Pass 3: wire-kinds four-way registry.

_KIND_DEF_RE = re.compile(r"\b(kKind\w+)\s*=\s*(\d+)")


def pass_wire_kinds(root: Path, functions: list[Function],
                    files: dict[str, str],
                    waiver_map: dict[str, Waivers]) -> list[Finding]:
    findings: list[Finding] = []

    # 1. Inventory: definitions (file, line, value) of every kKind constant.
    defs: dict[str, tuple[str, int, int]] = {}
    for rel, text in files.items():
        if not rel.startswith("src/"):
            continue
        for lineno, line in enumerate(text.splitlines(), start=1):
            for m in _KIND_DEF_RE.finditer(line):
                name, value = m.group(1), int(m.group(2))
                if name in defs:
                    findings.append(Finding(
                        rel, lineno, "wire-kinds",
                        f"{name} defined twice (also {defs[name][0]}:"
                        f"{defs[name][1]})"))
                else:
                    defs[name] = (rel, lineno, value)

    # 2. Registry staleness, both directions; sorted + unique.
    reg_path = root / "tools" / "wire_kinds.txt"
    if not reg_path.is_file():
        findings.append(Finding(
            "tools/wire_kinds.txt", 1, "wire-kinds",
            "registry file missing — list every kKind* constant, sorted"))
        return findings
    reg_lines = [ln.strip() for ln in reg_path.read_text().splitlines()
                 if ln.strip() and not ln.strip().startswith("#")]
    if reg_lines != sorted(reg_lines):
        findings.append(Finding(
            "tools/wire_kinds.txt", 1, "wire-kinds",
            "registry must be sorted (LC_ALL=C sort order)"))
    seen: set[str] = set()
    for idx, entry in enumerate(reg_lines, start=1):
        if entry in seen:
            findings.append(Finding(
                "tools/wire_kinds.txt", idx, "wire-kinds",
                f"duplicate registry entry {entry}"))
        seen.add(entry)
        if entry not in defs:
            findings.append(Finding(
                "tools/wire_kinds.txt", idx, "wire-kinds",
                f"stale registry entry {entry}: no such kKind constant in "
                f"src/"))
    for name, (rel, lineno, _value) in sorted(defs.items()):
        if name not in seen:
            findings.append(Finding(
                rel, lineno, "wire-kinds",
                f"{name} missing from tools/wire_kinds.txt — register it "
                f"(sorted)"))

    # 3. Unique wire values across the whole protocol.
    by_value: dict[int, str] = {}
    for name, (rel, lineno, value) in sorted(defs.items()):
        if value in by_value:
            findings.append(Finding(
                rel, lineno, "wire-kinds",
                f"{name} reuses wire value {value} (already "
                f"{by_value[value]}) — kinds share one tag namespace"))
        else:
            by_value[value] = name

    # 4. Four-way coverage, from the function inventory.
    refs: dict[str, set[str]] = {name: set() for name in defs}
    for fn in functions:
        body_ids = {t.text for t in fn.body}
        for name in defs:
            if name in body_ids:
                refs[name].add(fn.qualified)

    dispatch_bodies = [fn for fn in functions if fn.name in DISPATCH_FUNCS]
    dispatch_called: set[str] = set()
    for fn in dispatch_bodies:
        dispatch_called |= {t.text for t in fn.body}

    fuzz_text = "\n".join(text for rel, text in files.items()
                          if rel.startswith("tests/fuzz/"))

    def unqual(q: str) -> str:
        return q.rsplit("::", 1)[-1]

    for name, (rel, lineno, _value) in sorted(defs.items()):
        referers = refs[name]
        serializers = {q for q in referers
                       if unqual(q).startswith("Serialize")}
        parsers = {q for q in referers
                   if unqual(q).startswith(("Parse", "Deserialize"))}
        missing: list[str] = []
        if not serializers:
            missing.append("a Serialize* function referencing it")
        if not parsers:
            missing.append("a Parse*/Deserialize* function referencing it")
        direct_dispatch = any(unqual(q) in DISPATCH_FUNCS for q in referers)
        via_call = any(unqual(q) in dispatch_called
                       for q in serializers | parsers)
        if not (direct_dispatch or via_call):
            missing.append(
                f"a dispatch path ({'/'.join(sorted(DISPATCH_FUNCS))})")
        fuzz_hit = name in fuzz_text or any(
            unqual(q) in fuzz_text for q in serializers | parsers)
        if not fuzz_hit:
            missing.append("fuzz coverage under tests/fuzz/")
        if missing:
            waivers = waiver_map.get(rel)
            if waivers and waivers.covers("wire-kinds", lineno):
                continue
            findings.append(Finding(
                rel, lineno, "wire-kinds",
                f"{name} lacks " + "; ".join(missing)))
    return findings


# --------------------------------------------------------------------------
# Driver.


def discover_files(root: Path) -> dict[str, str]:
    """rel-path -> text for every C++ file the passes look at."""
    out: dict[str, str] = {}
    for pattern in ("src/**/*.cpp", "src/**/*.h", "tests/fuzz/*.cpp",
                    "tests/fuzz/*.h"):
        for path in sorted(root.glob(pattern)):
            rel = path.relative_to(root).as_posix()
            out[rel] = path.read_text(errors="replace")
    return out


def compile_args(root: Path, build_dir: Path | None) -> list[str]:
    """Clang frontend parse flags, from compile_commands.json when present."""
    args = ["-xc++", "-std=c++20", f"-I{root / 'src'}"]
    cc_path = None
    for candidate in ([build_dir] if build_dir else []) + [root / "build"]:
        if candidate and (candidate / "compile_commands.json").is_file():
            cc_path = candidate / "compile_commands.json"
            break
    if cc_path:
        try:
            entries = json.loads(cc_path.read_text())
            for entry in entries:
                cmd = entry.get("command", "")
                for piece in cmd.split():
                    if piece.startswith("-I") and piece not in args:
                        args.append(piece)
                if "-Isrc" in cmd:
                    break
        except (json.JSONDecodeError, OSError):
            pass
    return args


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="ADLP protocol-conformance analyzer")
    parser.add_argument("--root", type=Path, default=Path("."),
                        help="analysis root (a repo checkout or a probe "
                             "fixture mirroring its layout)")
    parser.add_argument("--build-dir", type=Path, default=None,
                        help="build dir holding compile_commands.json "
                             "(clang frontend flags)")
    parser.add_argument("--frontend", choices=("auto", "lex", "clang"),
                        default="auto")
    parser.add_argument("--require-clang", action="store_true",
                        help="hard-fail when clang.cindex is unavailable "
                             "instead of falling back to the lex frontend")
    parser.add_argument("--libclang", default=None,
                        help="explicit libclang shared-library path")
    parser.add_argument("--expect-clang-version", default=None,
                        help="substring the clang frontend's version string "
                             "must contain (CI pins this)")
    parser.add_argument("--passes", default=",".join(PASS_NAMES),
                        help="comma-separated subset of passes to run")
    parser.add_argument("--blocklist-extra", default="",
                        help="comma-separated extra blocking-call names")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable findings on stdout")
    args = parser.parse_args(argv)

    selected = [p.strip() for p in args.passes.split(",") if p.strip()]
    for p in selected:
        if p not in PASS_NAMES:
            print(f"unknown pass '{p}' (known: {', '.join(PASS_NAMES)})",
                  file=sys.stderr)
            return 10

    root = args.root.resolve()
    if not root.is_dir():
        print(f"--root {root} is not a directory", file=sys.stderr)
        return 10
    files = discover_files(root)
    if not files:
        print(f"no C++ sources under {root}", file=sys.stderr)
        return 10

    # Frontend resolution.
    ci = None
    if args.frontend in ("auto", "clang"):
        try:
            ci = load_cindex(args.libclang)
        except (ImportError, OSError) as exc:
            if args.frontend == "clang" or args.require_clang:
                print(f"clang frontend unavailable: {exc}", file=sys.stderr)
                return 10
            ci = None
    if args.require_clang and ci is None:
        print("clang frontend unavailable (--require-clang)",
              file=sys.stderr)
        return 10
    if ci is not None and args.expect_clang_version:
        version = clang_version(ci)
        if args.expect_clang_version not in version:
            print(f"libclang version mismatch: expected "
                  f"'{args.expect_clang_version}' in '{version}'",
                  file=sys.stderr)
            return 10

    # Function inventory.
    functions: list[Function] = []
    parse_args = compile_args(root, args.build_dir) if ci else []
    for rel, text in files.items():
        if ci is not None and rel.endswith(".cpp"):
            try:
                functions.extend(
                    clang_functions(ci, root / rel, rel, parse_args))
                continue
            except RuntimeError as exc:
                print(f"clang parse failed, lexing instead: {exc}",
                      file=sys.stderr)
        functions.extend(lex_functions(tokenize(text), rel))

    # Waivers (and their own findings).
    waiver_map: dict[str, Waivers] = {}
    waiver_findings: list[Finding] = []
    for rel, text in files.items():
        waivers, bad = scan_waivers(text, rel)
        waiver_map[rel] = waivers
        waiver_findings.extend(bad)

    findings: list[Finding] = []

    if "parser-bounds" in selected:
        for fn in functions:
            if not any(fnmatch.fnmatch(fn.file, g) for g in BOUNDS_GLOBS):
                continue
            for f in pass_parser_bounds(fn):
                if not waiver_map[f.file].covers("parser-bounds", f.line):
                    findings.append(f)

    if "blocking-under-lock" in selected:
        blocklist = set(DEFAULT_BLOCKLIST)
        blocklist |= {b.strip() for b in args.blocklist_extra.split(",")
                      if b.strip()}
        requires = collect_requires(files)
        for fn in functions:
            if not fn.file.startswith("src/"):
                continue
            for f in pass_blocking_under_lock(fn, blocklist, requires):
                if not waiver_map[f.file].covers("blocking-under-lock",
                                                f.line):
                    findings.append(f)

    if "wire-kinds" in selected:
        findings.extend(pass_wire_kinds(root, functions, files, waiver_map))

    relevant_waiver_findings = [
        f for f in waiver_findings
        if f.pass_name in selected or f.pass_name == "waiver"]
    findings.extend(relevant_waiver_findings)
    findings.sort(key=lambda f: (f.file, f.line, f.pass_name, f.message))

    if args.json:
        print(json.dumps([f.__dict__ for f in findings], indent=2))
    else:
        for f in findings:
            print(f.render())

    failed_passes = {f.pass_name for f in findings}
    if not findings:
        frontend = "clang" if ci is not None else "lex"
        print(f"adlp_analyze: clean ({frontend} frontend, "
              f"{len(functions)} functions, "
              f"passes: {', '.join(selected)})", file=sys.stderr)
    return len(failed_passes)


if __name__ == "__main__":
    sys.exit(main())
