// adlp_audit — command-line auditor for exported evidence.
//
//   adlp_audit <log-file> <manifest-file> [--json] [--verdicts]
//              [--threads N] [--cache] [--metrics-out FILE]
//              [--streaming] [--epoch N]
//              [--replica FILE]... [--replica-addr HOST:PORT]...
//              [--seal-key-seed N]
//              [--trace <topic> <seq> <subscriber>]
//
// Loads a tamper-evident log file and a system manifest (see
// examples/investigator for how a system exports them), verifies the hash
// chain, audits every transmission, and prints either the human-readable
// report or a JSON exhibit. With --trace, also prints the provenance
// ancestry of one transmission instance.
//
// With --streaming, the evidence is replayed through the online
// StreamingAuditor instead — entries feed in file order, an epoch is sealed
// every N entries (--epoch, default 256), and each misbehaving pair is
// announced at the epoch that flags it rather than at the end. The final
// report is byte-identical to the batch auditor's (that equivalence is the
// streaming auditor's contract), so exit codes and JSON output carry the
// same meaning in both modes.
//
// Each --replica adds another fleet member's log file. The sealed epoch
// roots of every file (including the primary) are then cross-audited: seal
// signatures under the fleet key (regenerated from --seal-key-seed, default
// 0x5ea1 — the LogServer default), per-replica chain linkage, sealed roots
// against roots recomputed from each file's records (spot-checked with
// sampled inclusion proofs), and cross-replica root agreement. Divergent
// roots for one epoch are logger equivocation: the logger identity joins
// the unfaithful set. An honest fleet adds nothing to the report, so its
// output is byte-identical to a single-logger audit's.
//
// Each --replica-addr HOST:PORT (or just PORT) audits a LIVE replica over
// the wire instead of an exported file: the auditor dials the replica's
// upload port, fetches its signed epoch roots through the read-side sync
// protocol (adlp/sync_msgs.h), and cross-audits them with the file
// evidence exactly as above. Store integrity is spot-checked by fetching
// sampled records plus their inclusion proofs over the same connection and
// verifying them against the signed roots — no log file ever leaves the
// replica. On an honest fleet the resulting report is byte-identical to
// the exported-file path. An unreachable replica is missing evidence
// (exit 2), not a silent skip.
//
// Exit status: 0 = chain verifies and no component implicated;
//              1 = unfaithful components identified;
//              2 = evidence tampered or unreadable (including replica
//                  store/seal findings short of equivocation);
//              3 = usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "adlp/log_file.h"
#include "adlp/sync_msgs.h"
#include "audit/auditor.h"
#include "audit/manifest.h"
#include "audit/provenance.h"
#include "audit/replica_check.h"
#include "audit/report_json.h"
#include "audit/streaming_auditor.h"
#include "obs/export.h"

using namespace adlp;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: adlp_audit <log-file> <manifest-file> [--json] "
               "[--verdicts] [--threads N] [--cache] [--metrics-out FILE] "
               "[--streaming] [--epoch N] "
               "[--replica FILE]... [--replica-addr HOST:PORT]... "
               "[--seal-key-seed N] "
               "[--trace <topic> <seq> <subscriber>]\n");
  return 3;
}

/// "HOST:PORT" or bare "PORT" (host defaults to 127.0.0.1). False on a
/// malformed port.
bool ParseReplicaAddr(const std::string& addr, std::string& host,
                      std::uint16_t& port) {
  host = "127.0.0.1";
  std::string port_str = addr;
  if (const std::size_t colon = addr.rfind(':'); colon != std::string::npos) {
    host = addr.substr(0, colon);
    port_str = addr.substr(colon + 1);
  }
  if (host.empty() || port_str.empty()) return false;
  char* end = nullptr;
  const unsigned long value = std::strtoul(port_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value == 0 || value > 65535) {
    return false;
  }
  port = static_cast<std::uint16_t>(value);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string log_path = argv[1];
  const std::string manifest_path = argv[2];
  bool json = false;
  bool verdicts = false;
  bool trace = false;
  bool streaming = false;
  std::size_t epoch_entries = 256;
  std::vector<std::string> replica_paths;
  std::vector<std::string> replica_addrs;
  std::uint64_t seal_key_seed = 0x5ea1;
  std::string metrics_out;
  audit::AuditOptions exec;
  audit::PairKey trace_key;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--verdicts") == 0) {
      verdicts = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      exec.threads = std::strtoull(argv[++i], nullptr, 10);
      if (exec.threads == 0) return Usage();
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      exec.cache = true;
    } else if (std::strcmp(argv[i], "--streaming") == 0) {
      streaming = true;
    } else if (std::strcmp(argv[i], "--epoch") == 0 && i + 1 < argc) {
      epoch_entries = std::strtoull(argv[++i], nullptr, 10);
      if (epoch_entries == 0) return Usage();
    } else if (std::strcmp(argv[i], "--replica") == 0 && i + 1 < argc) {
      replica_paths.push_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--replica-addr") == 0 && i + 1 < argc) {
      replica_addrs.push_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--seal-key-seed") == 0 && i + 1 < argc) {
      seal_key_seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 3 < argc) {
      trace = true;
      trace_key.topic = argv[i + 1];
      trace_key.seq = std::strtoull(argv[i + 2], nullptr, 10);
      trace_key.subscriber = argv[i + 3];
      i += 3;
    } else {
      return Usage();
    }
  }

  proto::LoadedLog log;
  audit::LoadedManifest manifest;
  try {
    log = proto::ReadLogFile(log_path);
    manifest = audit::ReadManifestFile(manifest_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "adlp_audit: %s\n", e.what());
    return 2;
  }

  if (!log.chain_verified) {
    std::fprintf(stderr,
                 "adlp_audit: HASH CHAIN BROKEN — the log file is not what "
                 "the trusted logger wrote (%zu records, %zu unparseable)\n",
                 log.records.size(), log.malformed_records);
    return 2;
  }

  // Fleet evidence: the primary file plus every --replica file. Entries are
  // audited from the primary; the epoch roots of all members cross-check.
  std::vector<audit::ReplicaEvidence> fleet;
  fleet.push_back({log_path, log.records, log.epoch_roots, false});
  for (const std::string& path : replica_paths) {
    try {
      proto::LoadedLog replica = proto::ReadLogFile(path);
      if (!replica.chain_verified) {
        std::fprintf(stderr, "adlp_audit: HASH CHAIN BROKEN in replica %s\n",
                     path.c_str());
        return 2;
      }
      fleet.push_back({path, std::move(replica.records),
                       std::move(replica.epoch_roots), false});
    } catch (const std::exception& e) {
      std::fprintf(stderr, "adlp_audit: %s\n", e.what());
      return 2;
    }
  }
  // Live replicas join the same fleet as roots-only members; their store
  // spot checks run over the wire after the cross-audit. Clients stay open
  // so the proof fetches reuse the root-fetch connection.
  std::vector<std::pair<std::size_t, std::unique_ptr<proto::SyncClient>>>
      wire_replicas;
  for (const std::string& addr : replica_addrs) {
    std::string host;
    std::uint16_t port = 0;
    if (!ParseReplicaAddr(addr, host, port)) return Usage();
    transport::TcpConnectOptions connect;
    connect.host = host;
    connect.attempts = 3;
    connect.connect_timeout_ms = 1000;
    auto client = proto::SyncClient::Dial(port, connect);
    auto evidence =
        client ? audit::FetchReplicaEvidence(*client, addr) : std::nullopt;
    if (!evidence) {
      std::fprintf(stderr, "adlp_audit: replica %s unreachable\n",
                   addr.c_str());
      return 2;
    }
    fleet.push_back(std::move(*evidence));
    wire_replicas.emplace_back(fleet.size() - 1, std::move(client));
  }
  bool any_roots = false;
  for (const auto& member : fleet) any_roots |= !member.roots.empty();

  audit::LogDatabase db(log.entries, manifest.topology);
  audit::AuditReport report;
  if (streaming) {
    // Online replay: findings are announced at the epoch that seals them,
    // then the finalized report takes the batch report's place verbatim.
    audit::StreamingOptions options;
    std::size_t epoch = 0;
    if (!json) {
      options.on_finding = [&epoch](const audit::PairVerdict& v,
                                    Timestamp /*detect_ns*/) {
        std::printf("epoch %zu: [%s] %s#%llu -> %s\n", epoch,
                    std::string(audit::FindingName(v.finding)).c_str(),
                    v.topic.c_str(), static_cast<unsigned long long>(v.seq),
                    v.subscriber.c_str());
      };
    }
    audit::StreamingAuditor online(manifest.keys, manifest.topology, options);
    std::size_t since_seal = 0;
    for (const auto& entry : log.entries) {
      online.OnEntry(entry);
      if (++since_seal == epoch_entries) {
        online.SealEpoch();
        since_seal = 0;
        ++epoch;
      }
    }
    online.SealEpoch();
    report = online.Finalize();
    if (!json) {
      const audit::StreamingStats stats = online.Stats();
      std::printf("streaming: %zu entries, %zu epochs, %zu pairs flagged "
                  "online, %zu late entries\n",
                  stats.entries, stats.epochs, stats.flagged,
                  stats.late_entries);
    }
  } else {
    const audit::Auditor auditor(manifest.keys);
    report = auditor.Audit(db, exec);
  }

  if (any_roots) {
    audit::ReplicaCheckOptions check;
    check.seal_key = proto::EpochSealKeys(seal_key_seed).pub;
    audit::ReplicaCheckResult fleet_result =
        audit::CheckReplicas(fleet, check);
    for (auto& [index, client] : wire_replicas) {
      audit::CheckReplicaWireProofs(*client, fleet[index], check,
                                    fleet_result);
    }
    if (!json) {
      std::printf("fleet: %zu member(s), %zu epoch-root finding(s), "
                  "%zu inclusion proof(s) verified\n",
                  fleet.size(), fleet_result.verdicts.size(),
                  fleet_result.proofs_checked);
      for (const auto& [name, epochs] : fleet_result.behind) {
        std::printf("fleet: %s is %llu epoch(s) behind (crash or "
                    "partition, not a finding)\n",
                    name.c_str(), static_cast<unsigned long long>(epochs));
      }
    }
    audit::ApplyReplicaFindings(report, std::move(fleet_result));
  }

  if (json) {
    audit::JsonOptions options;
    options.include_verdicts = verdicts;
    std::printf("%s\n", audit::RenderReportJson(report, options).c_str());
  } else {
    std::printf("evidence: %zu entries, hash chain verifies\n",
                log.entries.size());
    std::printf("%s", report.Render().c_str());
    if (verdicts) {
      for (const auto& v : report.verdicts) {
        if (v.finding == audit::Finding::kOk) continue;
        std::printf("  [%s] %s#%llu -> %s: %s\n",
                    std::string(audit::FindingName(v.finding)).c_str(),
                    v.topic.c_str(), static_cast<unsigned long long>(v.seq),
                    v.subscriber.c_str(), v.detail.c_str());
      }
    }
  }

  if (trace) {
    audit::ProvenanceGraph graph(db);
    std::printf("\n%s", graph.RenderAncestry(trace_key).c_str());
  }

  // Dump whatever the audit recorded (shard timings, verify-cache hit
  // rate, signature latencies). A `.prom` suffix selects Prometheus text;
  // anything else gets JSON with the event trace appended.
  if (!metrics_out.empty() && !obs::WriteMetricsFile(metrics_out)) {
    std::fprintf(stderr, "adlp_audit: cannot write metrics to %s\n",
                 metrics_out.c_str());
    return 2;
  }

  if (!report.unfaithful.empty()) return 1;
  // Replica findings short of equivocation (store rewritten after sealing,
  // forged seals) are evidence tampering.
  return report.replica_verdicts.empty() ? 0 : 2;
}
