// Robustness sweeps: decoders over hostile bytes must either succeed or
// throw WireError — never crash, hang, or allocate absurdly. Every parser
// that touches network- or log-derived bytes is exercised with random
// garbage and with mutated valid inputs.
#include <gtest/gtest.h>

#include <algorithm>

#include "adlp/epoch.h"
#include "adlp/log_entry.h"
#include "adlp/remote_log.h"
#include "adlp/sync_msgs.h"
#include "adlp/wire_msgs.h"
#include "audit/manifest.h"
#include "common/rng.h"
#include "crypto/sig.h"
#include "pubsub/message.h"
#include "test_util/hostile_mutations.h"
#include "wire/wire.h"

namespace adlp {
namespace {

using test::BitFlipped;
using test::ByteSmashed;
using test::ForEveryTruncation;
using test::LengthBombed;
using test::WithOversizedTail;

class WireFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

template <typename Fn>
void ExpectNoCrash(Fn&& parse, BytesView input) {
  try {
    parse(input);
  } catch (const wire::WireError&) {
    // acceptable outcome
  }
}

TEST_P(WireFuzzTest, RandomBytesNeverCrashParsers) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const Bytes junk = rng.RandomBytes(rng.UniformBelow(300));
    ExpectNoCrash([](BytesView b) { pubsub::DeserializeMessage(b); }, junk);
    ExpectNoCrash([](BytesView b) { proto::DeserializeLogEntry(b); }, junk);
    ExpectNoCrash([](BytesView b) { proto::ParseDataMessage(b); }, junk);
    ExpectNoCrash([](BytesView b) { proto::ParseAckMessage(b); }, junk);
    ExpectNoCrash([](BytesView b) { audit::ParseManifest(b); }, junk);
    ExpectNoCrash(
        [](BytesView b) {
          proto::LogServer sink;
          proto::ApplyLogUpload(b, sink);
        },
        junk);
  }
}

TEST_P(WireFuzzTest, MutatedValidMessagesNeverCrash) {
  Rng rng(GetParam() ^ 0xfeed);
  pubsub::Message msg;
  msg.header.topic = "image";
  msg.header.publisher = "camera";
  msg.header.seq = 42;
  msg.header.stamp = 1234;
  msg.payload = rng.RandomBytes(100);
  const Bytes valid = proto::SerializeDataMessage(msg, rng.RandomBytes(128));

  for (int i = 0; i < 100; ++i) {
    Bytes mutated =
        ByteSmashed(rng, valid, 1 + static_cast<int>(rng.UniformBelow(4)));
    if (rng.Chance(0.3) && mutated.size() > 4) {
      mutated = test::TruncatedAtRandom(rng, mutated);
    }
    ExpectNoCrash([](BytesView b) { proto::ParseDataMessage(b); }, mutated);
    ExpectNoCrash([](BytesView b) { pubsub::DeserializeMessage(b); }, mutated);
  }
}

TEST_P(WireFuzzTest, RoundTripUnderRandomContent) {
  // Serialization is total: any field content round-trips bit-exactly.
  Rng rng(GetParam() ^ 0xbeef);
  proto::LogEntry entry;
  entry.scheme = rng.Chance(0.5) ? proto::LogScheme::kAdlp
                                 : proto::LogScheme::kBase;
  entry.component = StringOf(rng.RandomBytes(rng.UniformBelow(40)));
  entry.topic = StringOf(rng.RandomBytes(rng.UniformBelow(40)));
  entry.direction = rng.Chance(0.5) ? proto::Direction::kIn
                                    : proto::Direction::kOut;
  entry.seq = rng.NextU64();
  entry.timestamp = static_cast<Timestamp>(rng.NextU64());
  entry.message_stamp = static_cast<Timestamp>(rng.NextU64());
  entry.data = rng.RandomBytes(rng.UniformBelow(500));
  entry.data_hash = rng.RandomBytes(rng.Chance(0.5) ? 32 : 0);
  entry.self_signature = rng.RandomBytes(rng.UniformBelow(200));
  entry.peer_signature = rng.RandomBytes(rng.UniformBelow(200));
  entry.peer_data_hash = rng.RandomBytes(rng.Chance(0.5) ? 32 : 0);
  entry.peer = StringOf(rng.RandomBytes(rng.UniformBelow(20)));
  for (std::uint64_t i = 0; i < rng.UniformBelow(4); ++i) {
    entry.acks.push_back({StringOf(rng.RandomBytes(8)), rng.RandomBytes(32),
                          rng.RandomBytes(128)});
  }
  EXPECT_EQ(proto::DeserializeLogEntry(proto::SerializeLogEntry(entry)),
            entry);
}

namespace {

/// A structurally valid ADLP log entry with seed-derived content; signatures
/// are random bytes (the decoders under test never verify them).
proto::LogEntry FuzzEntry(Rng& rng) {
  proto::LogEntry entry;
  entry.scheme = proto::LogScheme::kAdlp;
  entry.component = "c" + std::to_string(rng.UniformBelow(8));
  entry.topic = "t" + std::to_string(rng.UniformBelow(8));
  entry.direction =
      rng.Chance(0.5) ? proto::Direction::kIn : proto::Direction::kOut;
  entry.seq = rng.UniformBelow(1000);
  entry.timestamp = static_cast<Timestamp>(rng.NextU64() >> 1);
  entry.message_stamp = entry.timestamp - 1;
  entry.data = rng.RandomBytes(64);
  entry.self_signature = rng.RandomBytes(64);
  entry.peer_signature = rng.RandomBytes(64);
  entry.peer = "p" + std::to_string(rng.UniformBelow(8));
  entry.peer_data_hash = rng.RandomBytes(32);
  return entry;
}

/// A parseable public key without key generation: RSA fields are arbitrary
/// big integers (the wire layer does not validate key material).
crypto::PublicKey FuzzRsaKey(Rng& rng) {
  crypto::PublicKey key;
  key.alg = crypto::SigAlgorithm::kRsaPkcs1Sha256;
  key.rsa.n = crypto::BigInt::FromBytesBE(rng.RandomBytes(64));
  key.rsa.e = crypto::BigInt::FromBytesBE(Bytes{0x01, 0x00, 0x01});
  return key;
}

/// A structurally valid epoch seal with seed-derived content; the signature
/// is random bytes (the parser never verifies it).
proto::EpochRoot FuzzEpochRoot(Rng& rng) {
  proto::EpochRoot root;
  root.epoch = rng.UniformBelow(100);
  root.tree_size = 1 + rng.UniformBelow(1000);
  const Bytes r = rng.RandomBytes(root.root.size());
  std::copy(r.begin(), r.end(), root.root.begin());
  const Bytes p = rng.RandomBytes(root.prev_root_hash.size());
  std::copy(p.begin(), p.end(), root.prev_root_hash.begin());
  root.sealed_at = static_cast<Timestamp>(rng.NextU64() >> 1);
  root.logger = "logger-" + std::to_string(rng.UniformBelow(8));
  root.signature = rng.RandomBytes(64);
  return root;
}

}  // namespace

TEST_P(WireFuzzTest, LogEntryFrameTruncationsAtEveryBoundary) {
  Rng rng(GetParam() ^ 0x720);
  const Bytes valid = proto::SerializeLogEntry(FuzzEntry(rng));
  // Every prefix of a valid frame: decoders must reject cleanly no matter
  // where the cut lands (mid-tag, mid-length, mid-payload).
  ForEveryTruncation(valid, [](BytesView prefix) {
    ExpectNoCrash([](BytesView b) { proto::DeserializeLogEntry(b); }, prefix);
  });
}

TEST_P(WireFuzzTest, LogEntryFramesBitFlippedAndOversized) {
  Rng rng(GetParam() ^ 0xb17f);
  const Bytes valid = proto::SerializeLogEntry(FuzzEntry(rng));

  for (int i = 0; i < 100; ++i) {
    const Bytes mutated =
        BitFlipped(rng, valid, 1 + static_cast<int>(rng.UniformBelow(8)));
    ExpectNoCrash([](BytesView b) { proto::DeserializeLogEntry(b); }, mutated);
  }

  // Oversized corpora: a valid frame with kilobytes of trailing garbage, and
  // length-prefix bombs (0xff runs decode as enormous claimed lengths that
  // must be rejected before any allocation of that size).
  ExpectNoCrash([](BytesView b) { proto::DeserializeLogEntry(b); },
                WithOversizedTail(rng, valid, 4096));

  for (std::size_t run = 1; run <= 16; ++run) {
    ExpectNoCrash([](BytesView b) { proto::DeserializeLogEntry(b); },
                  LengthBombed(rng, valid, run));
  }
}

TEST_P(WireFuzzTest, LogUploadFramesHostile) {
  Rng rng(GetParam() ^ 0x10ad);
  const Bytes entry_frame = proto::SerializeLogUpload(FuzzEntry(rng));
  const Bytes key_frame =
      proto::SerializeLogUpload("component-x", FuzzRsaKey(rng));

  for (const Bytes& valid : {entry_frame, key_frame}) {
    // Truncations at every boundary.
    ForEveryTruncation(valid, [](BytesView prefix) {
      ExpectNoCrash(
          [](BytesView b) {
            proto::LogServer sink;
            proto::ApplyLogUpload(b, sink);
          },
          prefix);
    });
    // Random corruption.
    for (int i = 0; i < 60; ++i) {
      Bytes mutated =
          ByteSmashed(rng, valid, 1 + static_cast<int>(rng.UniformBelow(6)));
      if (rng.Chance(0.25)) mutated = WithOversizedTail(rng, mutated, 1024);
      ExpectNoCrash(
          [](BytesView b) {
            proto::LogServer sink;
            proto::ApplyLogUpload(b, sink);
          },
          mutated);
    }
  }
}

TEST_P(WireFuzzTest, PublicKeyParserHostileBytes) {
  Rng rng(GetParam() ^ 0x4b3);
  const Bytes valid = crypto::SerializePublicKey(FuzzRsaKey(rng));
  ForEveryTruncation(valid, [](BytesView prefix) {
    ExpectNoCrash([](BytesView b) { crypto::ParsePublicKey(b); }, prefix);
  });
  for (int i = 0; i < 60; ++i) {
    const Bytes mutated = ByteSmashed(rng, valid, 1);
    ExpectNoCrash([](BytesView b) { crypto::ParsePublicKey(b); }, mutated);
    ExpectNoCrash([](BytesView b) { crypto::ParsePublicKey(b); },
                  rng.RandomBytes(rng.UniformBelow(200)));
  }
  // Frames whose algorithm tag is outside the enum: the parser must throw
  // WireError (caught by ExpectNoCrash) for every hostile value rather than
  // casting it into a SigAlgorithm.
  for (int i = 0; i < 30; ++i) {
    wire::Writer w;
    w.PutU64(1, 2 + rng.UniformBelow(1000));  // alg tag: always unknown
    if (rng.UniformBelow(2) == 0) {
      w.PutBytes(4, rng.RandomBytes(rng.UniformBelow(64)));
    } else {
      w.PutBytes(2, rng.RandomBytes(rng.UniformBelow(64)));
      w.PutBytes(3, rng.RandomBytes(rng.UniformBelow(8)));
    }
    const Bytes frame = std::move(w).Take();
    ExpectNoCrash([](BytesView b) { crypto::ParsePublicKey(b); }, frame);
    EXPECT_THROW(crypto::ParsePublicKey(frame), wire::WireError);
  }
}

TEST_P(WireFuzzTest, EpochRootFramesHostile) {
  Rng rng(GetParam() ^ 0xe70c);
  const Bytes valid = proto::SerializeEpochRoot(FuzzEpochRoot(rng));
  // A serialized seal round-trips; the fuzzed corpora below all derive from
  // a frame the parser provably accepts.
  EXPECT_NO_THROW(proto::ParseEpochRoot(valid));

  // Truncation at every boundary: mid-tag, mid-varint, mid-digest.
  ForEveryTruncation(valid, [](BytesView prefix) {
    ExpectNoCrash([](BytesView b) { proto::ParseEpochRoot(b); }, prefix);
  });

  // Bit flips and random junk.
  for (int i = 0; i < 100; ++i) {
    const Bytes mutated =
        BitFlipped(rng, valid, 1 + static_cast<int>(rng.UniformBelow(8)));
    ExpectNoCrash([](BytesView b) { proto::ParseEpochRoot(b); }, mutated);
    ExpectNoCrash([](BytesView b) { proto::ParseEpochRoot(b); },
                  rng.RandomBytes(rng.UniformBelow(300)));
  }

  // Oversized frame and 0xff length-prefix bombs.
  ExpectNoCrash([](BytesView b) { proto::ParseEpochRoot(b); },
                WithOversizedTail(rng, valid, 4096));
  for (std::size_t run = 1; run <= 16; ++run) {
    ExpectNoCrash([](BytesView b) { proto::ParseEpochRoot(b); },
                  LengthBombed(rng, valid, run));
  }

  // Digests of hostile length: both hash fields must be exactly 32 bytes,
  // so hand-built frames with short/long/empty digests must throw rather
  // than smear into the fixed-size arrays.
  for (int i = 0; i < 30; ++i) {
    std::size_t bad = rng.UniformBelow(80);
    if (bad == 32) bad = 33;
    wire::Writer w;
    w.PutU64(1, rng.UniformBelow(100));            // epoch
    w.PutU64(2, 1 + rng.UniformBelow(1000));       // tree_size
    if (rng.Chance(0.5)) {
      w.PutBytes(3, rng.RandomBytes(bad));         // root: wrong length
      w.PutBytes(4, rng.RandomBytes(32));
    } else {
      w.PutBytes(3, rng.RandomBytes(32));
      w.PutBytes(4, rng.RandomBytes(bad));         // prev hash: wrong length
    }
    w.PutI64(5, static_cast<std::int64_t>(rng.NextU64() >> 1));  // sealed_at
    w.PutString(6, "logger");
    w.PutBytes(7, rng.RandomBytes(64));            // signature
    const Bytes frame = std::move(w).Take();
    EXPECT_THROW(proto::ParseEpochRoot(frame), wire::WireError);
  }
}

TEST_P(WireFuzzTest, QuorumAckFramesHostile) {
  Rng rng(GetParam() ^ 0xacc);
  const Bytes valid = proto::SerializeLogAck(rng.NextU64() >> 1);
  EXPECT_NO_THROW(proto::ParseLogAck(valid));

  ForEveryTruncation(valid, [](BytesView prefix) {
    ExpectNoCrash([](BytesView b) { proto::ParseLogAck(b); }, prefix);
  });
  for (int i = 0; i < 100; ++i) {
    const Bytes mutated =
        BitFlipped(rng, valid, 1 + static_cast<int>(rng.UniformBelow(6)));
    ExpectNoCrash([](BytesView b) { proto::ParseLogAck(b); }, mutated);
    ExpectNoCrash([](BytesView b) { proto::ParseLogAck(b); },
                  rng.RandomBytes(rng.UniformBelow(100)));
  }
  // An upload frame is never an ack: ParseLogAck must reject the other
  // frame kinds cleanly instead of misreading a sequence number out of them.
  EXPECT_THROW(proto::ParseLogAck(proto::SerializeLogUpload(FuzzEntry(rng))),
               wire::WireError);
}

TEST_P(WireFuzzTest, TaggedUploadFramesHostile) {
  Rng rng(GetParam() ^ 0x7a99);
  // The quorum path tags every upload with (sink_id, seq); both the entry
  // and key-registration overloads must survive hostile mutation.
  const Bytes entry_frame = proto::SerializeLogUpload(
      FuzzEntry(rng), "sink-" + std::to_string(rng.UniformBelow(8)),
      rng.UniformBelow(1000));
  const Bytes key_frame = proto::SerializeLogUpload(
      "component-x", FuzzRsaKey(rng), "sink-y", rng.UniformBelow(1000));
  EXPECT_NO_THROW(proto::ParseLogUpload(entry_frame));
  EXPECT_NO_THROW(proto::ParseLogUpload(key_frame));

  for (const Bytes& valid : {entry_frame, key_frame}) {
    ForEveryTruncation(valid, [](BytesView prefix) {
      ExpectNoCrash([](BytesView b) { proto::ParseLogUpload(b); }, prefix);
      ExpectNoCrash(
          [](BytesView b) {
            proto::LogServer sink;
            proto::ApplyLogUpload(b, sink);
          },
          prefix);
    });
    for (int i = 0; i < 60; ++i) {
      Bytes mutated =
          ByteSmashed(rng, valid, 1 + static_cast<int>(rng.UniformBelow(6)));
      if (rng.Chance(0.25)) mutated = WithOversizedTail(rng, mutated, 1024);
      ExpectNoCrash(
          [](BytesView b) {
            proto::LogServer sink;
            proto::ApplyLogUpload(b, sink);
          },
          mutated);
    }
  }
}

TEST_P(WireFuzzTest, SyncProtocolFramesHostile) {
  Rng rng(GetParam() ^ 0x5fc);
  // One valid frame of every sync message kind; corpora derive from frames
  // the parsers provably accept.
  proto::SyncRoots roots;
  roots.roots.push_back(FuzzEpochRoot(rng));
  roots.roots.push_back(FuzzEpochRoot(rng));
  proto::SyncRecords records;
  records.first = rng.UniformBelow(100);
  for (int i = 0; i < 3; ++i) records.records.push_back(rng.RandomBytes(40));
  proto::SyncProof proof;
  for (int i = 0; i < 4; ++i) {
    crypto::Digest d;
    const Bytes b = rng.RandomBytes(d.size());
    std::copy(b.begin(), b.end(), d.begin());
    proof.proof.push_back(d);
  }
  proto::SyncSealInfo info;
  info.epoch = rng.UniformBelow(10);
  info.watermarks["sink-a"] = rng.UniformBelow(1000);
  info.keys.emplace_back("component-x",
                         crypto::SerializePublicKey(FuzzRsaKey(rng)));

  const std::vector<Bytes> corpus = {
      proto::SerializeSyncGetRoots({rng.UniformBelow(100)}),
      proto::SerializeSyncRoots(roots),
      proto::SerializeSyncGetRecords(
          {rng.UniformBelow(100), rng.UniformBelow(100)}),
      proto::SerializeSyncRecords(records),
      proto::SerializeSyncGetProof(
          {rng.UniformBelow(100), 1 + rng.UniformBelow(100)}),
      proto::SerializeSyncInclusionProof(proof),
      proto::SerializeSyncGetConsistency(
          {rng.UniformBelow(50), 50 + rng.UniformBelow(50)}),
      proto::SerializeSyncConsistencyProof(proof),
      proto::SerializeSyncGetSealInfo({rng.UniformBelow(10)}),
      proto::SerializeSyncSealInfo(info),
  };
  const auto parsers = {
      +[](BytesView b) { proto::ParseSyncGetRoots(b); },
      +[](BytesView b) { proto::ParseSyncRoots(b); },
      +[](BytesView b) { proto::ParseSyncGetRecords(b); },
      +[](BytesView b) { proto::ParseSyncRecords(b); },
      +[](BytesView b) { proto::ParseSyncGetProof(b); },
      +[](BytesView b) { proto::ParseSyncInclusionProof(b); },
      +[](BytesView b) { proto::ParseSyncGetConsistency(b); },
      +[](BytesView b) { proto::ParseSyncConsistencyProof(b); },
      +[](BytesView b) { proto::ParseSyncGetSealInfo(b); },
      +[](BytesView b) { proto::ParseSyncSealInfo(b); },
  };

  for (const Bytes& valid : corpus) {
    // Truncations at every boundary, against EVERY parser (a frame of one
    // kind fed to another parser must throw, not crash) and against the
    // server dispatch (which parses whatever claims to be a request).
    ForEveryTruncation(valid, [&parsers](BytesView prefix) {
      for (const auto& parse : parsers) ExpectNoCrash(parse, prefix);
      ExpectNoCrash(
          [](BytesView b) {
            proto::LogServer server;
            proto::HandleSyncRequest(b, server);
          },
          prefix);
    });
    // Bit flips, random junk, oversized tails.
    for (int i = 0; i < 30; ++i) {
      Bytes mutated =
          BitFlipped(rng, valid, 1 + static_cast<int>(rng.UniformBelow(6)));
      if (rng.Chance(0.25)) mutated = WithOversizedTail(rng, mutated, 512);
      for (const auto& parse : parsers) ExpectNoCrash(parse, mutated);
      ExpectNoCrash(
          [](BytesView b) {
            proto::LogServer server;
            proto::HandleSyncRequest(b, server);
          },
          mutated);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace adlp
