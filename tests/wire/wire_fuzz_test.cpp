// Robustness sweeps: decoders over hostile bytes must either succeed or
// throw WireError — never crash, hang, or allocate absurdly. Every parser
// that touches network- or log-derived bytes is exercised with random
// garbage and with mutated valid inputs.
#include <gtest/gtest.h>

#include "adlp/log_entry.h"
#include "adlp/remote_log.h"
#include "adlp/wire_msgs.h"
#include "audit/manifest.h"
#include "common/rng.h"
#include "pubsub/message.h"
#include "wire/wire.h"

namespace adlp {
namespace {

class WireFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

template <typename Fn>
void ExpectNoCrash(Fn&& parse, BytesView input) {
  try {
    parse(input);
  } catch (const wire::WireError&) {
    // acceptable outcome
  }
}

TEST_P(WireFuzzTest, RandomBytesNeverCrashParsers) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const Bytes junk = rng.RandomBytes(rng.UniformBelow(300));
    ExpectNoCrash([](BytesView b) { pubsub::DeserializeMessage(b); }, junk);
    ExpectNoCrash([](BytesView b) { proto::DeserializeLogEntry(b); }, junk);
    ExpectNoCrash([](BytesView b) { proto::ParseDataMessage(b); }, junk);
    ExpectNoCrash([](BytesView b) { proto::ParseAckMessage(b); }, junk);
    ExpectNoCrash([](BytesView b) { audit::ParseManifest(b); }, junk);
    ExpectNoCrash(
        [](BytesView b) {
          proto::LogServer sink;
          proto::ApplyLogUpload(b, sink);
        },
        junk);
  }
}

TEST_P(WireFuzzTest, MutatedValidMessagesNeverCrash) {
  Rng rng(GetParam() ^ 0xfeed);
  pubsub::Message msg;
  msg.header.topic = "image";
  msg.header.publisher = "camera";
  msg.header.seq = 42;
  msg.header.stamp = 1234;
  msg.payload = rng.RandomBytes(100);
  const Bytes valid = proto::SerializeDataMessage(msg, rng.RandomBytes(128));

  for (int i = 0; i < 100; ++i) {
    Bytes mutated = valid;
    const int mutations = 1 + static_cast<int>(rng.UniformBelow(4));
    for (int m = 0; m < mutations; ++m) {
      const std::size_t pos = rng.UniformBelow(mutated.size());
      mutated[pos] = static_cast<std::uint8_t>(rng.NextU64());
    }
    if (rng.Chance(0.3) && mutated.size() > 4) {
      mutated.resize(rng.UniformBelow(mutated.size()));  // truncate
    }
    ExpectNoCrash([](BytesView b) { proto::ParseDataMessage(b); }, mutated);
    ExpectNoCrash([](BytesView b) { pubsub::DeserializeMessage(b); }, mutated);
  }
}

TEST_P(WireFuzzTest, RoundTripUnderRandomContent) {
  // Serialization is total: any field content round-trips bit-exactly.
  Rng rng(GetParam() ^ 0xbeef);
  proto::LogEntry entry;
  entry.scheme = rng.Chance(0.5) ? proto::LogScheme::kAdlp
                                 : proto::LogScheme::kBase;
  entry.component = StringOf(rng.RandomBytes(rng.UniformBelow(40)));
  entry.topic = StringOf(rng.RandomBytes(rng.UniformBelow(40)));
  entry.direction = rng.Chance(0.5) ? proto::Direction::kIn
                                    : proto::Direction::kOut;
  entry.seq = rng.NextU64();
  entry.timestamp = static_cast<Timestamp>(rng.NextU64());
  entry.message_stamp = static_cast<Timestamp>(rng.NextU64());
  entry.data = rng.RandomBytes(rng.UniformBelow(500));
  entry.data_hash = rng.RandomBytes(rng.Chance(0.5) ? 32 : 0);
  entry.self_signature = rng.RandomBytes(rng.UniformBelow(200));
  entry.peer_signature = rng.RandomBytes(rng.UniformBelow(200));
  entry.peer_data_hash = rng.RandomBytes(rng.Chance(0.5) ? 32 : 0);
  entry.peer = StringOf(rng.RandomBytes(rng.UniformBelow(20)));
  for (std::uint64_t i = 0; i < rng.UniformBelow(4); ++i) {
    entry.acks.push_back({StringOf(rng.RandomBytes(8)), rng.RandomBytes(32),
                          rng.RandomBytes(128)});
  }
  EXPECT_EQ(proto::DeserializeLogEntry(proto::SerializeLogEntry(entry)),
            entry);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace adlp
