#include "wire/wire.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace adlp::wire {
namespace {

TEST(ZigZagTest, RoundTrip) {
  for (std::int64_t v :
       std::initializer_list<std::int64_t>{0, 1, -1, 2, -2, 123456789,
                                           -123456789, INT64_MAX, INT64_MIN}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v) << v;
  }
}

TEST(ZigZagTest, SmallMagnitudeStaysSmall) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
}

TEST(VarintTest, RoundTripBoundaries) {
  for (std::uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull, (1ull << 32) - 1,
        1ull << 32, ~0ull}) {
    Writer w;
    w.PutVarint(v);
    Reader r(w.Data());
    EXPECT_EQ(r.GetVarint(), v);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(VarintTest, EncodedSizes) {
  auto size_of = [](std::uint64_t v) {
    Writer w;
    w.PutVarint(v);
    return w.Size();
  };
  EXPECT_EQ(size_of(0), 1u);
  EXPECT_EQ(size_of(127), 1u);
  EXPECT_EQ(size_of(128), 2u);
  EXPECT_EQ(size_of(~0ull), 10u);
}

TEST(VarintTest, TruncatedThrows) {
  Writer w;
  w.PutVarint(1ull << 40);
  Bytes data = w.Data();
  data.pop_back();
  Reader r(data);
  EXPECT_THROW(r.GetVarint(), WireError);
}

TEST(VarintTest, OverlongThrows) {
  // 11 continuation bytes can't encode a u64.
  const Bytes data(11, 0x80);
  Reader r(data);
  EXPECT_THROW(r.GetVarint(), WireError);
}

TEST(FieldTest, MixedRecordRoundTrip) {
  Writer w;
  w.PutU64(1, 42);
  w.PutI64(2, -7);
  w.PutFixed64(3, 0xdeadbeefcafebabeull);
  w.PutBytes(4, Bytes{1, 2, 3});
  w.PutString(5, "hello");

  Reader r(w.Data());
  std::uint32_t field;
  WireType type;

  ASSERT_TRUE(r.NextField(field, type));
  EXPECT_EQ(field, 1u);
  EXPECT_EQ(type, WireType::kVarint);
  EXPECT_EQ(r.GetU64Value(), 42u);

  ASSERT_TRUE(r.NextField(field, type));
  EXPECT_EQ(r.GetI64Value(), -7);

  ASSERT_TRUE(r.NextField(field, type));
  EXPECT_EQ(type, WireType::kFixed64);
  EXPECT_EQ(r.GetFixed64Value(), 0xdeadbeefcafebabeull);

  ASSERT_TRUE(r.NextField(field, type));
  EXPECT_EQ(r.GetBytesValue(), (Bytes{1, 2, 3}));

  ASSERT_TRUE(r.NextField(field, type));
  EXPECT_EQ(r.GetStringValue(), "hello");

  EXPECT_FALSE(r.NextField(field, type));
}

TEST(FieldTest, UnknownFieldsSkippable) {
  Writer w;
  w.PutU64(1, 1);
  w.PutBytes(99, Bytes(100, 7));  // unknown length-delimited
  w.PutFixed64(98, 5);            // unknown fixed
  w.PutU64(2, 2);

  Reader r(w.Data());
  std::uint32_t field;
  WireType type;
  std::uint64_t sum = 0;
  while (r.NextField(field, type)) {
    if (field == 1 || field == 2) {
      sum += r.GetU64Value();
    } else {
      r.SkipValue(type);
    }
  }
  EXPECT_EQ(sum, 3u);
}

TEST(FieldTest, NestedMessages) {
  Writer inner;
  inner.PutString(1, "nested");
  inner.PutU64(2, 9);

  Writer outer;
  outer.PutU64(1, 1);
  outer.PutMessage(2, inner);
  outer.PutU64(3, 3);

  Reader r(outer.Data());
  std::uint32_t field;
  WireType type;
  ASSERT_TRUE(r.NextField(field, type));
  EXPECT_EQ(r.GetU64Value(), 1u);
  ASSERT_TRUE(r.NextField(field, type));
  Reader sub = r.GetMessageValue();
  ASSERT_TRUE(sub.NextField(field, type));
  EXPECT_EQ(sub.GetStringValue(), "nested");
  ASSERT_TRUE(sub.NextField(field, type));
  EXPECT_EQ(sub.GetU64Value(), 9u);
  EXPECT_TRUE(sub.AtEnd());
  ASSERT_TRUE(r.NextField(field, type));
  EXPECT_EQ(r.GetU64Value(), 3u);
}

TEST(FieldTest, FieldZeroRejected) {
  const Bytes data = {0x00};  // tag with field number 0
  Reader r(data);
  std::uint32_t field;
  WireType type;
  EXPECT_THROW(r.NextField(field, type), WireError);
}

TEST(FieldTest, BadWireTypeRejected) {
  const Bytes data = {0x0f};  // field 1, wire type 7
  Reader r(data);
  std::uint32_t field;
  WireType type;
  EXPECT_THROW(r.NextField(field, type), WireError);
}

TEST(FieldTest, LengthOverrunRejected) {
  Writer w;
  w.PutBytes(1, Bytes(10, 1));
  Bytes data = w.Data();
  data.resize(data.size() - 5);  // truncate payload
  Reader r(data);
  std::uint32_t field;
  WireType type;
  ASSERT_TRUE(r.NextField(field, type));
  EXPECT_THROW(r.GetBytesValue(), WireError);
}

TEST(FrameTest, RoundTrip) {
  Rng rng(5);
  const Bytes payload = rng.RandomBytes(1000);
  const Bytes frame = FramePayload(payload);
  ASSERT_EQ(frame.size(), payload.size() + kFramePreambleSize);
  EXPECT_EQ(ParseFrameLength(frame), payload.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                         frame.begin() + kFramePreambleSize));
}

TEST(FrameTest, EmptyPayload) {
  const Bytes frame = FramePayload({});
  EXPECT_EQ(frame.size(), kFramePreambleSize);
  EXPECT_EQ(ParseFrameLength(frame), 0u);
}

TEST(FrameTest, ShortPreambleThrows) {
  EXPECT_THROW(ParseFrameLength(Bytes{1, 2}), WireError);
}

TEST(WriterTest, TakeMovesBuffer) {
  Writer w;
  w.PutU64(1, 5);
  const std::size_t size = w.Size();
  Bytes data = std::move(w).Take();
  EXPECT_EQ(data.size(), size);
}

}  // namespace
}  // namespace adlp::wire
