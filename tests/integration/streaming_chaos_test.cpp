// Streaming audit over the live upload path, under transport chaos: a real
// fleet logs to a LogServerService over TCP while FaultInjectingChannel
// duplicates and delays upload frames; the server's tap feeds a
// StreamingAuditor on its own thread, sealing epochs as the fleet runs.
// The finalized streaming report must be byte-identical to the batch audit
// of whatever the server stored — and any misbehavior the chaos manufactures
// (duplicated uploads audit as replayed entries) must be flagged online,
// before finalization.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "adlp/component.h"
#include "adlp/log_tap.h"
#include "adlp/remote_log.h"
#include "adlp/resilient_log.h"
#include "audit/auditor.h"
#include "audit/report_json.h"
#include "audit/streaming_auditor.h"
#include "test_util.h"
#include "transport/fault_inject.h"

namespace adlp {
namespace {

using test::WaitFor;

constexpr int kMessages = 10;

std::string Render(const audit::AuditReport& report) {
  audit::JsonOptions json;
  json.pretty = false;
  return audit::RenderReportJson(report, json);
}

class StreamingChaosTest
    : public ::testing::TestWithParam<transport::TransportMode> {};

INSTANTIATE_TEST_SUITE_P(
    BothModes, StreamingChaosTest,
    ::testing::Values(transport::TransportMode::kThreadPerConn,
                      transport::TransportMode::kReactor),
    [](const ::testing::TestParamInfo<transport::TransportMode>& info) {
      return info.param == transport::TransportMode::kReactor
                 ? "Reactor"
                 : "ThreadPerConn";
    });

TEST_P(StreamingChaosTest, OnlineReportMatchesBatchUnderUploadFaults) {
  const transport::TransportMode mode = GetParam();
  proto::LogServer server;
  proto::LogServerService service(server, 0, mode);
  const std::uint16_t port = service.Port();

  // Every upload connection gets duplication + delay faults: duplicated
  // frames reach the logger as replayed entries (a real misbehavior class),
  // delays shear the two components' arrival orders against each other.
  auto make_connector = [&](std::uint64_t fault_seed) {
    return [fault_seed, port]() -> transport::ChannelPtr {
      auto inner = transport::TryTcpConnect(
          port, transport::TcpConnectOptions{1, 200, 10, 50});
      if (!inner) return nullptr;
      transport::FaultPlan plan;
      plan.duplicate_prob = 0.2;
      plan.delay_ns_max = 1'000'000;  // up to 1 ms per frame
      return transport::WrapWithFaults(std::move(inner), plan,
                                       Rng(fault_seed));
    };
  };
  proto::ResilientLogSink::Options sink_options;
  sink_options.mode = mode;
  proto::ResilientLogSink pub_sink(make_connector(0x57A1), sink_options);
  proto::ResilientLogSink sub_sink(make_connector(0x57A2), sink_options);

  pubsub::Master master;
  Rng rng(20260808);
  proto::Component camera("camera", master, pub_sink, rng,
                          test::FastOptions());
  proto::Component detector("detector", master, sub_sink, rng,
                            test::FastOptions());
  std::atomic<int> got{0};
  detector.Subscribe("image", [&](const pubsub::Message&) { got++; });
  auto& publisher = camera.Advertise("image");

  // Online consumer: tap -> auditor, epoch seal every few events. Attached
  // after subscriptions so the manifest is complete; key uploads already
  // ingested are irrelevant to the tap (the auditor shares server.Keys()).
  proto::LogTapQueue tap(64, proto::TapOverflowPolicy::kBlock);
  server.AttachTap(&tap);
  audit::StreamingOptions streaming_options;
  std::atomic<std::size_t> online_flags{0};
  streaming_options.on_finding =
      [&](const audit::PairVerdict&, Timestamp) { ++online_flags; };
  audit::StreamingAuditor streaming(server.Keys(), master.Topology(),
                                    streaming_options);
  std::thread consumer([&] {
    std::size_t events = 0;
    while (auto event = tap.Pop(std::chrono::milliseconds(5000))) {
      if (event->kind == proto::TapEvent::Kind::kEntry) {
        streaming.OnEntry(event->entry);
      }
      if (++events % 6 == 0) streaming.SealEpoch();
    }
    streaming.SealEpoch();  // final online epoch: everything seen is sealed
  });

  for (int i = 0; i < kMessages; ++i) {
    publisher.Publish(Bytes{static_cast<std::uint8_t>(i)});
  }
  EXPECT_TRUE(WaitFor([&] { return got.load() == kMessages; }));
  camera.Shutdown();
  detector.Shutdown();
  EXPECT_TRUE(pub_sink.Drain(std::chrono::seconds(10)));
  EXPECT_TRUE(sub_sink.Drain(std::chrono::seconds(10)));
  service.Shutdown();  // joins ingestion: no Append can arrive after this
  tap.Close();
  consumer.join();
  server.AttachTap(nullptr);

  // At least every honest entry arrived (duplicates add more).
  const std::size_t stored = server.EntryCount();
  ASSERT_GE(stored, 2u * kMessages);
  EXPECT_EQ(streaming.Stats().entries, stored);

  const std::size_t flags_before_finalize = online_flags.load();
  const std::string streaming_json = Render(streaming.Finalize());
  const audit::Auditor batch(server.Keys());
  const audit::AuditReport batch_report =
      batch.Audit(server.Entries(), master.Topology());
  EXPECT_EQ(streaming_json, Render(batch_report));

  // If the chaos actually duplicated an upload, the resulting replay
  // verdicts were flagged online — before finalization, while the "fleet"
  // (here: the drained run) was still current.
  if (stored > 2u * kMessages) {
    EXPECT_GE(flags_before_finalize, 1u);
    EXPECT_FALSE(batch_report.unfaithful.empty());
  }
}

}  // namespace
}  // namespace adlp
