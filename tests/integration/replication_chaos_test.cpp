// Chaos test for the replicated logger fleet: a camera -> detector fleet
// logs through a quorum-acked ReplicatedLogSink to three LogServer
// replicas while one replica is killed mid-run (and optionally restarted).
// The acceptance bar is byte-identity: the audit report over the surviving
// fleet — fleet cross-check included — must render byte-for-byte the same
// as an uninterrupted single-logger baseline. A replica that equivocates
// (inserts a record the fleet never uploaded) must instead be flagged with
// the distinct logger-equivocation verdict class, blaming the logger.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "adlp/component.h"
#include "adlp/remote_log.h"
#include "adlp/replicated_log.h"
#include "audit/auditor.h"
#include "audit/replica_check.h"
#include "audit/report_json.h"
#include "test_util.h"

namespace adlp {
namespace {

using test::WaitFor;

constexpr int kMessagesBeforeKill = 4;
constexpr int kMessagesAfterKill = 3;
constexpr int kTotalMessages = kMessagesBeforeKill + kMessagesAfterKill;
constexpr std::size_t kExpectedEntries = 2u * kTotalMessages;
constexpr std::uint64_t kSealEvery = 4;
constexpr std::size_t kReplicas = 3;

proto::LogServerOptions FleetServerOptions() {
  proto::LogServerOptions options;
  options.seal_every = kSealEvery;
  return options;
}

proto::ResilientLogSinkOptions FastLegOptions() {
  proto::ResilientLogSinkOptions options;
  options.backoff = transport::BackoffPolicy{2, 50, 2.0, 0.25};
  options.connect = transport::TcpConnectOptions{1, 200, 10, 50};
  return options;
}

audit::ReplicaCheckOptions FleetKey() {
  audit::ReplicaCheckOptions options;
  options.seal_key =
      proto::EpochSealKeys(proto::LogServerOptions{}.seal_key_seed).pub;
  return options;
}

struct RunOutcome {
  audit::AuditReport report;
  std::string rendered;
  std::string json;
  std::size_t proofs_checked = 0;
};

/// The uninterrupted single-logger reference: same fleet, same messages,
/// one logger, plain resilient delivery shared by both components.
RunOutcome RunSingleLoggerBaseline() {
  proto::LogServer server(FleetServerOptions());
  proto::LogServerService service(server, 0);
  proto::ResilientLogSink sink(service.Port(), FastLegOptions());

  pubsub::Master master;
  Rng rng(20260806);
  proto::Component camera("camera", master, sink, rng, test::FastOptions());
  proto::Component detector("detector", master, sink, rng,
                            test::FastOptions());
  std::atomic<int> got{0};
  detector.Subscribe("image", [&](const pubsub::Message&) { got++; });
  auto& publisher = camera.Advertise("image");
  for (int i = 0; i < kTotalMessages; ++i) {
    publisher.Publish(Bytes{static_cast<std::uint8_t>(i)});
  }
  EXPECT_TRUE(WaitFor([&] { return got.load() == kTotalMessages; }));
  camera.Shutdown();
  detector.Shutdown();
  EXPECT_TRUE(sink.Drain(std::chrono::seconds(10)));
  EXPECT_TRUE(WaitFor([&] { return server.EntryCount() == kExpectedEntries; }));
  server.SealEpoch();

  RunOutcome outcome;
  outcome.report = audit::Auditor(server.Keys())
                       .Audit(server.Entries(), master.Topology());
  // The honest single logger passes its own store/seal self-check without
  // contributing anything to the report.
  audit::ReplicaEvidence self;
  self.name = "replica-0";
  self.records = server.SerializedRecords();
  self.roots = server.EpochRoots();
  audit::ReplicaCheckResult check = audit::CheckReplicas({self}, FleetKey());
  EXPECT_TRUE(check.Clean());
  audit::ApplyReplicaFindings(outcome.report, std::move(check));
  outcome.rendered = outcome.report.Render();
  outcome.json = audit::RenderReportJson(outcome.report);
  service.Shutdown();
  return outcome;
}

enum class Scenario {
  kKillOneReplica,            // replica 2 dies mid-run and stays down
  kKillAndRestartReplica,     // replica 2 dies mid-run, comes back, catches up
  kEquivocatingReplica,       // replica 2 inserts a record nobody uploaded
};

RunOutcome RunReplicatedFleet(Scenario scenario) {
  std::deque<proto::LogServer> servers;
  std::vector<std::unique_ptr<proto::LogServerService>> services;
  std::vector<proto::ReplicatedLogSink::Connector> connectors;
  for (std::size_t i = 0; i < kReplicas; ++i) {
    servers.emplace_back(FleetServerOptions());
    services.push_back(
        std::make_unique<proto::LogServerService>(servers[i], 0));
    const std::uint16_t port = services[i]->Port();
    connectors.push_back([port]() {
      return transport::TryTcpConnect(
          port, transport::TcpConnectOptions{1, 200, 10, 50});
    });
  }
  const std::uint16_t killed_port = services[2]->Port();

  // ONE sink shared by both components: the fan-out lock gives every
  // replica the identical frame order, which is what makes cross-replica
  // root comparison meaningful.
  proto::ReplicatedLogSinkOptions options;
  options.sink_id = "fleet-sink";
  options.replica = FastLegOptions();
  proto::ReplicatedLogSink sink(std::move(connectors), options);

  pubsub::Master master;
  Rng rng(20260806);
  proto::Component camera("camera", master, sink, rng, test::FastOptions());
  proto::Component detector("detector", master, sink, rng,
                            test::FastOptions());
  std::atomic<int> got{0};
  detector.Subscribe("image", [&](const pubsub::Message&) { got++; });
  auto& publisher = camera.Advertise("image");

  for (int i = 0; i < kMessagesBeforeKill; ++i) {
    publisher.Publish(Bytes{static_cast<std::uint8_t>(i)});
  }
  EXPECT_TRUE(WaitFor([&] { return got.load() == kMessagesBeforeKill; }));
  // Every replica ingested the pre-kill prefix.
  for (auto& server : servers) {
    EXPECT_TRUE(WaitFor(
        [&] { return server.EntryCount() == 2u * kMessagesBeforeKill; }));
  }

  if (scenario != Scenario::kEquivocatingReplica) {
    services[2]->Shutdown();
    services[2].reset();
  } else {
    // The malicious replica slips in a record the fleet never uploaded.
    proto::LogEntry forged;
    forged.component = "ghost";
    forged.topic = "image";
    forged.seq = 999;
    forged.data = BytesOf("forged");
    servers[2].Append(forged);
  }

  for (int i = kMessagesBeforeKill; i < kTotalMessages; ++i) {
    publisher.Publish(Bytes{static_cast<std::uint8_t>(i)});
  }
  EXPECT_TRUE(WaitFor([&] { return got.load() == kTotalMessages; }));

  if (scenario == Scenario::kKillAndRestartReplica) {
    // Same port, same server state: only the ingestion front-end crashed.
    // The leg reconnects and retransmits every unacked frame; the server's
    // per-sink watermark collapses the overlap to exactly-once.
    services[2] =
        std::make_unique<proto::LogServerService>(servers[2], killed_port);
  }

  camera.Shutdown();
  detector.Shutdown();
  // Quorum commit: the two healthy replicas acknowledge everything even
  // while replica 2 is down.
  EXPECT_TRUE(sink.DrainCommitted(std::chrono::seconds(10)));
  for (std::size_t i = 0; i < kReplicas; ++i) {
    if (i == 2 && scenario == Scenario::kKillOneReplica) continue;
    EXPECT_TRUE(WaitFor(
        [&] { return servers[i].EntryCount() >= kExpectedEntries; }));
  }
  for (auto& server : servers) server.SealEpoch();

  RunOutcome outcome;
  outcome.report = audit::Auditor(servers[0].Keys())
                       .Audit(servers[0].Entries(), master.Topology());
  std::vector<audit::ReplicaEvidence> fleet;
  for (std::size_t i = 0; i < kReplicas; ++i) {
    audit::ReplicaEvidence evidence;
    evidence.name = "replica-" + std::to_string(i);
    evidence.records = servers[i].SerializedRecords();
    evidence.roots = servers[i].EpochRoots();
    fleet.push_back(std::move(evidence));
  }
  audit::ReplicaCheckResult check = audit::CheckReplicas(fleet, FleetKey());
  outcome.proofs_checked = check.proofs_checked;
  audit::ApplyReplicaFindings(outcome.report, std::move(check));
  outcome.rendered = outcome.report.Render();
  outcome.json = audit::RenderReportJson(outcome.report);
  for (auto& service : services) {
    if (service) service->Shutdown();
  }
  return outcome;
}

TEST(ReplicationChaosTest, KilledReplicaKeepsReportByteIdentical) {
  const RunOutcome baseline = RunSingleLoggerBaseline();
  ASSERT_TRUE(baseline.report.unfaithful.empty());
  ASSERT_EQ(baseline.report.TotalValid(), kExpectedEntries);

  const RunOutcome chaos = RunReplicatedFleet(Scenario::kKillOneReplica);
  // A dead replica is merely behind — the fleet cross-check adds nothing,
  // so the report is byte-for-byte the single-logger report.
  EXPECT_TRUE(chaos.report.replica_verdicts.empty());
  EXPECT_EQ(chaos.rendered, baseline.rendered);
  EXPECT_EQ(chaos.json, baseline.json);
  EXPECT_GT(chaos.proofs_checked, 0u);
}

TEST(ReplicationChaosTest, RestartedReplicaConvergesAndReportIsIdentical) {
  const RunOutcome baseline = RunSingleLoggerBaseline();
  const RunOutcome chaos =
      RunReplicatedFleet(Scenario::kKillAndRestartReplica);
  // The restarted replica replayed the spool, deduplicated retransmissions,
  // and sealed the same roots: nothing to report, nothing behind.
  EXPECT_TRUE(chaos.report.replica_verdicts.empty());
  EXPECT_EQ(chaos.rendered, baseline.rendered);
  EXPECT_EQ(chaos.json, baseline.json);
}

TEST(ReplicationChaosTest, EquivocatingReplicaFlaggedWithDistinctVerdict) {
  const RunOutcome baseline = RunSingleLoggerBaseline();
  const RunOutcome chaos = RunReplicatedFleet(Scenario::kEquivocatingReplica);

  // The component-level verdicts are untouched (replica 0's history is the
  // audited one), but the fleet cross-check flags the divergent replica
  // with the logger-equivocation class and blames the logger identity.
  ASSERT_FALSE(chaos.report.replica_verdicts.empty());
  for (const auto& v : chaos.report.replica_verdicts) {
    EXPECT_EQ(v.finding, audit::ReplicaFinding::kEquivocation);
    EXPECT_NE(std::find(v.implicated.begin(), v.implicated.end(),
                        "replica-2"),
              v.implicated.end());
  }
  EXPECT_TRUE(chaos.report.Blames("logger"));
  EXPECT_FALSE(baseline.report.Blames("logger"));
  EXPECT_EQ(chaos.report.verdicts.size(), baseline.report.verdicts.size());
  EXPECT_NE(chaos.rendered, baseline.rendered);
  EXPECT_NE(chaos.rendered.find("logger-equivocation"), std::string::npos);
}

}  // namespace
}  // namespace adlp
