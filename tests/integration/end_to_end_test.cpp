// Full-stack integration: the self-driving application with injected
// unfaithful components, audited end to end — the complete story the paper
// tells, on one test.
#include <gtest/gtest.h>

#include "audit/auditor.h"
#include "audit/causality.h"
#include "faults/behavior.h"
#include "sim/app.h"
#include "test_util.h"
#include "transport/channel.h"

namespace adlp {
namespace {

sim::AppOptions FastAdlpApp() {
  sim::AppOptions options;
  options.component = test::FastOptions(proto::LoggingScheme::kAdlp);
  options.realtime = false;
  return options;
}

TEST(EndToEndTest, UnfaithfulSignRecognizerPinnedAmongEightComponents) {
  // The sign recognizer hides every log entry about the images it consumed
  // (the Fig. 3 scenario: dodge liability for a missed stop sign). All seven
  // other components are faithful. The audit must blame exactly it.
  pubsub::Master master;
  proto::LogServer server;
  sim::AppOptions options = FastAdlpApp();
  options.fault_wrappers["sign_recognizer"] = faults::MakePipeWrapper(
      std::make_shared<faults::HidingBehavior>(
          faults::FaultFilter{.direction = proto::Direction::kIn}));

  sim::SelfDrivingApp app(master, server, options);
  app.Run(1.0);
  app.Shutdown();

  const audit::AuditReport report =
      audit::Auditor(server.Keys()).Audit(server.Entries(), master.Topology());

  EXPECT_TRUE(report.Blames("sign_recognizer")) << report.Render();
  for (const auto& name : sim::SelfDrivingApp::ComponentNames()) {
    if (name != "sign_recognizer") {
      EXPECT_FALSE(report.Blames(name)) << name << "\n" << report.Render();
    }
  }
  // Its receipt of images was exposed by the ACKs it had to return.
  bool found_hiding = false;
  for (const auto& v : report.verdicts) {
    if (v.finding == audit::Finding::kSubscriberHidEntry &&
        v.subscriber == "sign_recognizer") {
      found_hiding = true;
      EXPECT_EQ(v.topic, "image");
    }
  }
  EXPECT_TRUE(found_hiding);
}

TEST(EndToEndTest, FalsifyingPlannerPinned) {
  // The planner logs falsified versions of the plans it publishes.
  pubsub::Master master;
  proto::LogServer server;
  sim::AppOptions options = FastAdlpApp();
  options.fault_wrappers["planner"] =
      [](proto::LogPipe& inner, const proto::NodeIdentity& identity) {
        auto behavior = std::make_shared<faults::FalsificationBehavior>(
            faults::FaultFilter{.direction = proto::Direction::kOut},
            std::make_shared<proto::NodeIdentity>(identity));
        return std::make_unique<faults::UnfaithfulLogPipe>(inner, behavior);
      };

  sim::SelfDrivingApp app(master, server, options);
  app.Run(1.0);
  app.Shutdown();

  const audit::AuditReport report =
      audit::Auditor(server.Keys()).Audit(server.Entries(), master.Topology());
  EXPECT_TRUE(report.Blames("planner")) << report.Render();
  EXPECT_FALSE(report.Blames("steering_controller"));
  EXPECT_FALSE(report.Blames("lane_detector"));
}

TEST(EndToEndTest, TwoIndependentUnfaithfulComponentsBothPinned) {
  pubsub::Master master;
  proto::LogServer server;
  sim::AppOptions options = FastAdlpApp();
  options.fault_wrappers["lidar_driver"] = faults::MakePipeWrapper(
      std::make_shared<faults::HidingBehavior>(faults::FaultFilter{}));
  options.fault_wrappers["steering_controller"] =
      [](proto::LogPipe& inner, const proto::NodeIdentity& identity) {
        auto behavior = std::make_shared<faults::FalsificationBehavior>(
            faults::FaultFilter{.direction = proto::Direction::kOut},
            std::make_shared<proto::NodeIdentity>(identity));
        return std::make_unique<faults::UnfaithfulLogPipe>(inner, behavior);
      };

  sim::SelfDrivingApp app(master, server, options);
  app.Run(1.0);
  app.Shutdown();

  const audit::AuditReport report =
      audit::Auditor(server.Keys()).Audit(server.Entries(), master.Topology());
  EXPECT_TRUE(report.Blames("lidar_driver")) << report.Render();
  EXPECT_TRUE(report.Blames("steering_controller")) << report.Render();
  EXPECT_FALSE(report.Blames("planner"));
  EXPECT_FALSE(report.Blames("obstacle_detector"));
}

TEST(EndToEndTest, CausalityHoldsThroughTheRealPipeline) {
  // image -> lane -> plan: pick a frame, follow the chain, check Lemma 4's
  // timestamp constraints on the real log.
  pubsub::Master master;
  proto::LogServer server;
  sim::SelfDrivingApp app(master, server, FastAdlpApp());
  app.Run(1.0);
  app.Shutdown();

  audit::LogDatabase db(server.Entries(), master.Topology());
  // Build dependencies: image seq S received by lane_detector precedes the
  // lane message it triggered. The pipeline is 1:1, so lane seq == image
  // seq processed.
  std::vector<audit::FlowDependency> deps;
  for (std::uint64_t seq = 2; seq <= 10; ++seq) {
    audit::FlowDependency dep;
    dep.first = audit::PairKey{"image", seq, "lane_detector"};
    dep.second = audit::PairKey{"lane", seq, "planner"};
    deps.push_back(dep);
  }
  const auto violations = audit::CausalityChecker(db).Check(deps);
  EXPECT_TRUE(violations.empty());
}

TEST(EndToEndTest, TamperedLogStoreIsEvident) {
  pubsub::Master master;
  proto::LogServer server;
  sim::SelfDrivingApp app(master, server, FastAdlpApp());
  app.Run(0.5);
  app.Shutdown();

  ASSERT_TRUE(server.VerifyChain());
  ASSERT_GT(server.EntryCount(), 10u);
  server.CorruptRecordForTest(server.EntryCount() / 2);
  EXPECT_FALSE(server.VerifyChain());
}

/// One ADLP fleet over real TCP in the given transport mode; returns the
/// audit report of the run.
audit::AuditReport RunTcpFleet(transport::TransportMode mode) {
  test::MiniSystem sys;
  proto::ComponentOptions opts = test::FastOptions();
  opts.transport = pubsub::TransportKind::kTcp;
  opts.mode = mode;
  auto& pub = sys.Add("camera", opts);
  auto& sub = sys.Add("detector", opts);
  std::atomic<int> got{0};
  sub.Subscribe("image", [&](const pubsub::Message&) { got++; });
  auto& p = pub.Advertise("image");
  EXPECT_TRUE(p.WaitForSubscribers(1));
  for (int i = 0; i < 10; ++i) p.Publish(Bytes{static_cast<std::uint8_t>(i)});
  EXPECT_TRUE(test::WaitFor([&] { return got.load() == 10; }));
  pub.Shutdown();
  sub.Shutdown();
  return audit::Auditor(sys.server.Keys())
      .Audit(sys.server.Entries(), sys.master.Topology());
}

/// The mode-invariant content of a report: every verdict field that does
/// not embed a wall-clock timestamp, in audit order.
std::string CanonicalReport(const audit::AuditReport& report) {
  std::string out;
  for (const auto& v : report.verdicts) {
    out += v.topic + "#" + std::to_string(v.seq) + " " + v.publisher + "->" +
           v.subscriber + " " + std::string(audit::FindingName(v.finding));
    for (const auto& b : v.blamed) out += " blames:" + b;
    out += "\n";
  }
  for (const auto& u : report.unfaithful) out += "unfaithful:" + u + "\n";
  return out;
}

class TcpTransportFullStackTest
    : public ::testing::TestWithParam<transport::TransportMode> {};

INSTANTIATE_TEST_SUITE_P(
    BothModes, TcpTransportFullStackTest,
    ::testing::Values(transport::TransportMode::kThreadPerConn,
                      transport::TransportMode::kReactor),
    [](const ::testing::TestParamInfo<transport::TransportMode>& info) {
      return info.param == transport::TransportMode::kReactor
                 ? "Reactor"
                 : "ThreadPerConn";
    });

TEST_P(TcpTransportFullStackTest, AuditedClean) {
  // Two-component ADLP over real TCP sockets, audited clean.
  const audit::AuditReport report = RunTcpFleet(GetParam());
  EXPECT_EQ(report.verdicts.size(), 10u);
  EXPECT_TRUE(report.unfaithful.empty()) << report.Render();
}

TEST(EndToEndTest, TransportModesProduceIdenticalAuditReports) {
  // The reactor is a transport substitution, invisible to the protocol: the
  // same fleet run in both modes must audit to byte-identical reports
  // (modulo wall-clock timestamps, which differ between any two runs).
  const audit::AuditReport thread_report =
      RunTcpFleet(transport::TransportMode::kThreadPerConn);
  const audit::AuditReport reactor_report =
      RunTcpFleet(transport::TransportMode::kReactor);
  EXPECT_EQ(CanonicalReport(thread_report), CanonicalReport(reactor_report));
  EXPECT_EQ(thread_report.TotalValid(), reactor_report.TotalValid());
}

TEST(EndToEndTest, StrictModeBlocksWireTampering) {
  // With inline verification on, even a man-in-the-middle style corruption
  // of the wire (simulated via a lossy behaviour at the subscriber's pipe
  // is NOT possible — so here we just assert the strict path stays clean
  // under normal operation at system scale).
  test::MiniSystem sys;
  proto::ComponentOptions opts = test::FastOptions();
  opts.adlp.peer_keys = &sys.server.Keys();
  auto& pub = sys.Add("camera", opts);
  auto& sub = sys.Add("detector", opts);
  std::atomic<int> got{0};
  sub.Subscribe("image", [&](const pubsub::Message&) { got++; });
  auto& p = pub.Advertise("image");
  for (int i = 0; i < 5; ++i) p.Publish(Bytes{1});
  ASSERT_TRUE(test::WaitFor([&] { return got.load() == 5; }));
  pub.Shutdown();
  sub.Shutdown();
  EXPECT_EQ(pub.adlp_factory()->RejectedCount(), 0u);
  EXPECT_EQ(sub.adlp_factory()->RejectedCount(), 0u);
  EXPECT_EQ(sys.server.EntryCount(), 10u);
}

TEST(EndToEndTest, TimingDisruptionCaughtByCausalityCheck) {
  // The lane detector back-dates its receive timestamps by a full second
  // (timing disruption, Sec. III-B) while logging content faithfully. The
  // pairwise audit stays clean — content is genuine — but the causality
  // constraints of Lemma 4 flag the lie and localize the suspects.
  pubsub::Master master;
  proto::LogServer server;
  sim::AppOptions options = FastAdlpApp();
  options.fault_wrappers["lane_detector"] = faults::MakePipeWrapper(
      std::make_shared<faults::TimingDisruptionBehavior>(
          faults::FaultFilter{.direction = proto::Direction::kIn},
          -1'000'000'000));

  sim::SelfDrivingApp app(master, server, options);
  app.Run(1.0);
  app.Shutdown();

  // Content-wise everything verifies (nothing was falsified).
  const audit::AuditReport report =
      audit::Auditor(server.Keys()).Audit(server.Entries(), master.Topology());
  EXPECT_TRUE(report.unfaithful.empty()) << report.Render();

  // But the image -> lane chains are now temporally impossible.
  audit::LogDatabase db(server.Entries(), master.Topology());
  std::vector<audit::FlowDependency> deps;
  for (std::uint64_t seq = 2; seq <= 10; ++seq) {
    deps.push_back({audit::PairKey{"image", seq, "lane_detector"},
                    audit::PairKey{"lane", seq, "planner"}});
  }
  const auto violations = audit::CausalityChecker(db).Check(deps);
  ASSERT_FALSE(violations.empty());
  for (const auto& v : violations) {
    // Every violated constraint implicates the lane detector (alone or as
    // part of a pair).
    EXPECT_TRUE(std::find(v.suspects.begin(), v.suspects.end(),
                          "lane_detector") != v.suspects.end())
        << v.constraint;
  }
}

}  // namespace
}  // namespace adlp
