// Chaos test for the log-delivery pipeline: the trusted logger service is
// killed and restarted mid-fleet while FaultInjectingChannel cuts the
// sinks' connections. The accountability verdicts must be indistinguishable
// from an uninterrupted run — ADLP's Theorems 1-2 only hold if entries
// actually reach the logger, so resilience is a correctness property here,
// not an ops nicety.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "adlp/component.h"
#include "adlp/remote_log.h"
#include "adlp/resilient_log.h"
#include "audit/auditor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "test_util.h"
#include "transport/fault_inject.h"

namespace adlp {
namespace {

using test::WaitFor;

constexpr int kMessagesBeforeOutage = 4;
constexpr int kMessagesDuringOutage = 3;
constexpr int kTotalMessages = kMessagesBeforeOutage + kMessagesDuringOutage;
// Every transmission yields two log entries (publisher + subscriber).
constexpr std::size_t kExpectedEntries = 2u * kTotalMessages;

struct RunOutcome {
  audit::AuditReport report;
  std::size_t entries = 0;
  bool chain_ok = false;
  proto::SinkStats pub_stats;
  proto::SinkStats sub_stats;
};

proto::ResilientLogSink::Options ChaosSinkOptions(
    std::uint64_t seed, transport::TransportMode mode) {
  proto::ResilientLogSink::Options options;
  options.backoff = transport::BackoffPolicy{2, 50, 2.0, 0.25};
  options.backoff_seed = seed;
  options.mode = mode;
  return options;
}

/// One fleet run: camera -> detector over an in-proc data plane, both
/// logging to a LogServerService over real TCP. With `chaos` set, each
/// sink's first connection is cut by a FaultInjectingChannel after exactly
/// 1 key + kMessagesBeforeOutage entries, the service is killed, more
/// messages flow during the outage, and the service is restarted on the
/// same port with the SAME LogServer state (the paper's logger persists its
/// store; only the ingestion front-end crashes).
RunOutcome RunFleet(bool chaos, transport::TransportMode mode) {
  proto::LogServer server;
  auto service = std::make_unique<proto::LogServerService>(server, 0, mode);
  const std::uint16_t port = service->Port();

  // Deterministic chaos: connection #1 of each sink drops after
  // (1 key + kMessagesBeforeOutage entries) frames; reconnections are clean.
  auto make_connector = [&](std::atomic<int>& connection_count,
                            std::uint64_t fault_seed) {
    return [&connection_count, fault_seed, port,
            chaos]() -> transport::ChannelPtr {
      auto inner = transport::TryTcpConnect(
          port, transport::TcpConnectOptions{1, 200, 10, 50});
      if (!inner) return nullptr;
      transport::FaultPlan plan;
      if (chaos && connection_count.fetch_add(1) == 0) {
        plan.disconnect_after_frames = 1 + kMessagesBeforeOutage;
      }
      return transport::WrapWithFaults(std::move(inner), plan, Rng(fault_seed));
    };
  };
  std::atomic<int> pub_connections{0}, sub_connections{0};
  proto::ResilientLogSink pub_sink(make_connector(pub_connections, 0xFA01),
                                   ChaosSinkOptions(0xBAC0FF01, mode));
  proto::ResilientLogSink sub_sink(make_connector(sub_connections, 0xFA02),
                                   ChaosSinkOptions(0xBAC0FF02, mode));

  pubsub::Master master;
  Rng rng(20260806);
  proto::Component camera("camera", master, pub_sink, rng,
                          test::FastOptions());
  proto::Component detector("detector", master, sub_sink, rng,
                            test::FastOptions());

  std::atomic<int> got{0};
  detector.Subscribe("image", [&](const pubsub::Message&) { got++; });
  auto& publisher = camera.Advertise("image");

  for (int i = 0; i < kMessagesBeforeOutage; ++i) {
    publisher.Publish(Bytes{static_cast<std::uint8_t>(i)});
  }
  EXPECT_TRUE(WaitFor([&] { return got.load() == kMessagesBeforeOutage; }));
  // All pre-outage entries ingested: nothing is in flight when we pull the
  // plug, so the only entries at risk are the ones the resilience layer
  // must spool.
  EXPECT_TRUE(WaitFor(
      [&] { return server.EntryCount() == 2u * kMessagesBeforeOutage; }));

  if (chaos) {
    service->Shutdown();
    service.reset();
  }

  for (int i = kMessagesBeforeOutage; i < kTotalMessages; ++i) {
    publisher.Publish(Bytes{static_cast<std::uint8_t>(i)});
  }
  EXPECT_TRUE(WaitFor([&] { return got.load() == kTotalMessages; }));

  if (chaos) {
    // The post-outage entries trip the injected disconnect (a clean send
    // failure) and spool; both sinks are now down and retrying.
    EXPECT_TRUE(WaitFor(
        [&] { return !pub_sink.Connected() && !sub_sink.Connected(); }));
    // Logger comes back on the same port with its persisted store.
    service = std::make_unique<proto::LogServerService>(server, port, mode);
  }

  camera.Shutdown();
  detector.Shutdown();
  EXPECT_TRUE(pub_sink.Drain(std::chrono::seconds(10)));
  EXPECT_TRUE(sub_sink.Drain(std::chrono::seconds(10)));
  EXPECT_TRUE(WaitFor([&] { return server.EntryCount() == kExpectedEntries; }));

  RunOutcome outcome;
  outcome.entries = server.EntryCount();
  outcome.chain_ok = server.VerifyChain();
  outcome.pub_stats = pub_sink.Stats();
  outcome.sub_stats = sub_sink.Stats();
  outcome.report = audit::Auditor(server.Keys())
                       .Audit(server.Entries(), master.Topology());
  service->Shutdown();
  return outcome;
}

/// Sum of a counter family across all label sets in a registry snapshot.
std::uint64_t CounterTotal(const obs::MetricsSnapshot& snap,
                           std::string_view name) {
  std::uint64_t total = 0;
  for (const auto& c : snap.counters) {
    if (c.name == name) total += c.value;
  }
  return total;
}

/// Total sample count of a histogram family across all label sets.
std::uint64_t HistogramSamples(const obs::MetricsSnapshot& snap,
                               std::string_view name) {
  std::uint64_t total = 0;
  for (const auto& h : snap.histograms) {
    if (h.name == name) total += h.data.count;
  }
  return total;
}

/// The whole scenario runs once per transport mode: the reactor-driven log
/// service and reactor-timed sink backoff must be behaviourally
/// indistinguishable from the thread-per-connection originals, chaos
/// included.
class ChaosLogDeliveryTest
    : public ::testing::TestWithParam<transport::TransportMode> {};

INSTANTIATE_TEST_SUITE_P(
    BothModes, ChaosLogDeliveryTest,
    ::testing::Values(transport::TransportMode::kThreadPerConn,
                      transport::TransportMode::kReactor),
    [](const ::testing::TestParamInfo<transport::TransportMode>& info) {
      return info.param == transport::TransportMode::kReactor
                 ? "Reactor"
                 : "ThreadPerConn";
    });

TEST_P(ChaosLogDeliveryTest, VerdictsMatchUninterruptedBaseline) {
  // Isolate this test's metrics so the observability assertions below see
  // only what these two fleets recorded.
  obs::MetricsRegistry::Global().Reset();
  obs::TraceLog::Global().Reset();

  const RunOutcome baseline = RunFleet(/*chaos=*/false, GetParam());
  const RunOutcome chaos = RunFleet(/*chaos=*/true, GetParam());

  // The baseline is itself clean.
  ASSERT_EQ(baseline.entries, kExpectedEntries);
  EXPECT_TRUE(baseline.chain_ok);
  EXPECT_TRUE(baseline.report.unfaithful.empty());
  EXPECT_EQ(baseline.report.TotalValid(), kExpectedEntries);

  // The chaos run reaches the same verdicts: same entry count, same number
  // of audited transmissions, every verdict kOk, nobody blamed.
  EXPECT_EQ(chaos.entries, baseline.entries);
  EXPECT_TRUE(chaos.chain_ok);
  EXPECT_EQ(chaos.report.TotalValid(), baseline.report.TotalValid());
  EXPECT_EQ(chaos.report.TotalInvalid(), baseline.report.TotalInvalid());
  EXPECT_EQ(chaos.report.TotalHidden(), baseline.report.TotalHidden());
  EXPECT_EQ(chaos.report.unfaithful, baseline.report.unfaithful);
  ASSERT_EQ(chaos.report.verdicts.size(), baseline.report.verdicts.size());
  for (std::size_t i = 0; i < chaos.report.verdicts.size(); ++i) {
    EXPECT_EQ(chaos.report.verdicts[i].finding,
              baseline.report.verdicts[i].finding);
  }

  // The resilience layer did real work and lost nothing.
  EXPECT_GE(chaos.pub_stats.reconnects, 1u);
  EXPECT_GE(chaos.sub_stats.reconnects, 1u);
  EXPECT_EQ(chaos.pub_stats.entries_dropped, 0u);
  EXPECT_EQ(chaos.sub_stats.entries_dropped, 0u);
  // Baseline never reconnects.
  EXPECT_EQ(baseline.pub_stats.reconnects, 0u);
  EXPECT_EQ(baseline.sub_stats.reconnects, 0u);

  // The observability layer watched all of it: the process-wide registry
  // holds nonzero publish, sign, ack, reconnect, and spool activity for the
  // two fleets above (2 runs x kTotalMessages publications).
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(CounterTotal(snap, "adlp_publish_total"), 2u * kTotalMessages);
  EXPECT_GE(HistogramSamples(snap, "adlp_sign_ns"), 2u * kTotalMessages);
  EXPECT_EQ(CounterTotal(snap, "adlp_ack_sent_total"), 2u * kTotalMessages);
  EXPECT_EQ(CounterTotal(snap, "adlp_ack_received_total"),
            2u * kTotalMessages);
  EXPECT_GE(CounterTotal(snap, "adlp_sink_reconnect_total"), 2u);
  EXPECT_GT(CounterTotal(snap, "adlp_sink_spooled_total"), 0u);
  EXPECT_GT(CounterTotal(snap, "adlp_sink_sent_total"), 0u);
  EXPECT_GE(CounterTotal(snap, "adlp_fault_injected_total"), 2u);
  // Everything that entered a spool was eventually flushed or accounted:
  // the depth gauges must read zero after both fleets shut down.
  for (const auto& g : snap.gauges) {
    if (g.name == "adlp_sink_spool_depth" || g.name == "adlp_pending_acks" ||
        g.name == "adlp_log_queue_depth") {
      EXPECT_EQ(g.value, 0) << g.name;
    }
  }
  // And the trace ring saw the protocol sequence unfold.
  EXPECT_GT(obs::TraceLog::Global().RecordedCount(), 0u);
}

}  // namespace
}  // namespace adlp
