// Randomized full-pipeline adversary sweep: real components, real
// middleware, random adversary placement — the live-system counterpart of
// the synthetic Theorem 1/2 property tests. For every seed:
//   * no faithful component is ever blamed (Theorem 1);
//   * every adversary with at least one faithful neighbour is blamed —
//     exactly the guarantee of Theorems 1/2. Two *adjacent* all-out
//     adversaries can mutually mask their shared link (both sides of the
//     transmission vanish from the log), which is the collusion-equivalent
//     case the paper concedes; detection there is possible but not
//     guaranteed;
//   * nobody outside the adversary set is blamed;
//   * the log store's hash chain still verifies.
#include <gtest/gtest.h>

#include <set>

#include "audit/auditor.h"
#include "faults/behavior.h"
#include "test_util.h"

namespace adlp {
namespace {

enum class Role { kFaithful, kHider, kFalsifier };

struct FleetResult {
  std::set<crypto::ComponentId> adversaries;
  std::set<crypto::ComponentId> guaranteed_blamed;  // >=1 faithful neighbour
  std::set<crypto::ComponentId> faithful;
  audit::AuditReport report;
  bool chain_ok = false;
};

/// A relay chain c0 -> c1 -> ... -> c{n-1} over topics t1..t{n-1}; each
/// middle component re-publishes a transformation of what it receives.
FleetResult RunFleet(std::uint64_t seed, int components, int messages) {
  Rng meta(seed);
  test::MiniSystem sys;

  std::vector<Role> roles(static_cast<std::size_t>(components));
  for (auto& role : roles) {
    const double dice = meta.NextDouble();
    role = dice < 0.4 ? Role::kFaithful
                      : (dice < 0.7 ? Role::kHider : Role::kFalsifier);
  }

  FleetResult result;
  std::vector<proto::Component*> nodes;
  for (int i = 0; i < components; ++i) {
    const std::string name = "node" + std::to_string(i);
    proto::ComponentOptions opts = test::FastOptions();
    switch (roles[static_cast<std::size_t>(i)]) {
      case Role::kFaithful:
        result.faithful.insert(name);
        break;
      case Role::kHider:
        opts.pipe_wrapper = faults::MakePipeWrapper(
            std::make_shared<faults::HidingBehavior>(faults::FaultFilter{}));
        result.adversaries.insert(name);
        break;
      case Role::kFalsifier:
        opts.pipe_wrapper = [](proto::LogPipe& inner,
                               const proto::NodeIdentity& identity) {
          auto behavior = std::make_shared<faults::FalsificationBehavior>(
              faults::FaultFilter{},
              std::make_shared<proto::NodeIdentity>(identity));
          return std::make_unique<faults::UnfaithfulLogPipe>(inner, behavior);
        };
        result.adversaries.insert(name);
        break;
    }
    nodes.push_back(&sys.Add(name, opts));
  }
  // Detection is guaranteed for any adversary sharing a link with a
  // faithful component (chain neighbours).
  for (int i = 0; i < components; ++i) {
    if (roles[static_cast<std::size_t>(i)] == Role::kFaithful) continue;
    const bool faithful_left =
        i > 0 && roles[static_cast<std::size_t>(i - 1)] == Role::kFaithful;
    const bool faithful_right =
        i < components - 1 &&
        roles[static_cast<std::size_t>(i + 1)] == Role::kFaithful;
    if (faithful_left || faithful_right) {
      result.guaranteed_blamed.insert("node" + std::to_string(i));
    }
  }

  // Wire the chain: node i consumes t{i} and publishes t{i+1}.
  std::vector<pubsub::Publisher*> publishers(nodes.size(), nullptr);
  std::atomic<int> sink_count{0};
  for (int i = 0; i < components - 1; ++i) {
    publishers[static_cast<std::size_t>(i)] =
        &nodes[static_cast<std::size_t>(i)]->Advertise(
            "t" + std::to_string(i + 1));
  }
  for (int i = 1; i < components; ++i) {
    const bool is_sink = (i == components - 1);
    pubsub::Publisher* next =
        is_sink ? nullptr : publishers[static_cast<std::size_t>(i)];
    nodes[static_cast<std::size_t>(i)]->Subscribe(
        "t" + std::to_string(i),
        [next, &sink_count](const pubsub::Message& m) {
          if (next == nullptr) {
            sink_count++;
            return;
          }
          Bytes transformed = m.payload;
          for (auto& b : transformed) b = static_cast<std::uint8_t>(b + 1);
          next->Publish(transformed);
        });
  }

  Rng payload_rng(seed ^ 0xf1ee7);
  for (int m = 0; m < messages; ++m) {
    publishers[0]->Publish(payload_rng.RandomBytes(64));
  }
  EXPECT_TRUE(test::WaitFor([&] { return sink_count.load() == messages; }));
  sys.ShutdownAll();

  result.chain_ok = sys.server.VerifyChain();
  result.report = audit::Auditor(sys.server.Keys())
                      .Audit(sys.server.Entries(), sys.master.Topology());
  return result;
}

class RandomFleetTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomFleetTest, BlameMatchesAdversaryPlacementExactly) {
  const FleetResult result = RunFleet(GetParam(), 6, 4);
  EXPECT_TRUE(result.chain_ok);

  // Theorem 1: faithful components are never blamed.
  for (const auto& name : result.faithful) {
    EXPECT_FALSE(result.report.Blames(name))
        << name << " is faithful but was blamed\n"
        << result.report.Render();
  }
  // Guaranteed detection across faithful-adjacent links.
  for (const auto& name : result.guaranteed_blamed) {
    EXPECT_TRUE(result.report.Blames(name))
        << name << " has a faithful neighbour but was not blamed\n"
        << result.report.Render();
  }
  // Soundness: blame never lands outside the adversary set.
  for (const auto& name : result.report.unfaithful) {
    EXPECT_TRUE(result.adversaries.contains(name))
        << name << " was blamed but never misbehaved\n"
        << result.report.Render();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFleetTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace adlp
