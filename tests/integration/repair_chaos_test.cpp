// Repair-chaos test: a replica is killed and stays down long enough that
// the fleet sink's per-leg spool overflows — frames the dead replica never
// acknowledged are evicted, so NO retransmission can ever make it whole.
// On restart, the anti-entropy RepairAgent pulls the missing sealed ranges
// from live peers over TCP, Merkle-verifies them against the signed epoch
// roots, and converges the replica to byte-identical (size, root) per
// epoch; the live leg then dedups its replay and the fleet reconverges to
// full-ack. The acceptance bar is the audit report: byte-for-byte the same
// as an uninterrupted single-logger baseline. A wire peer serving a forged
// history must instead be rejected with a distinct repair verdict and leave
// the local store untouched.
#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "adlp/component.h"
#include "adlp/remote_log.h"
#include "adlp/repair.h"
#include "adlp/replicated_log.h"
#include "audit/auditor.h"
#include "audit/replica_check.h"
#include "audit/report_json.h"
#include "test_util.h"

namespace adlp {
namespace {

using test::WaitFor;

constexpr int kMessagesBeforeKill = 4;
constexpr int kMessagesAfterKill = 8;
constexpr int kTotalMessages = kMessagesBeforeKill + kMessagesAfterKill;
constexpr std::size_t kExpectedEntries = 2u * kTotalMessages;
constexpr std::uint64_t kSealEvery = 4;
constexpr std::size_t kReplicas = 3;
// Small enough that the post-kill traffic (2 * kMessagesAfterKill frames)
// blows past it: the dead replica's gap becomes unrecoverable by replay.
// Publishing is paced against the HEALTHY replicas' ingestion below, so
// only the dead leg ever accumulates a spool this deep.
constexpr std::size_t kTinySpool = 6;

proto::LogServerOptions FleetServerOptions() {
  proto::LogServerOptions options;
  options.seal_every = kSealEvery;
  return options;
}

proto::ResilientLogSinkOptions FastLegOptions() {
  proto::ResilientLogSinkOptions options;
  options.backoff = transport::BackoffPolicy{2, 50, 2.0, 0.25};
  options.connect = transport::TcpConnectOptions{1, 200, 10, 50};
  return options;
}

audit::ReplicaCheckOptions FleetKey() {
  audit::ReplicaCheckOptions options;
  options.seal_key =
      proto::EpochSealKeys(proto::LogServerOptions{}.seal_key_seed).pub;
  return options;
}

struct RunOutcome {
  audit::AuditReport report;
  std::string rendered;
  std::string json;
};

/// The uninterrupted single-logger reference run.
RunOutcome RunSingleLoggerBaseline() {
  proto::LogServer server(FleetServerOptions());
  proto::LogServerService service(server, 0);
  proto::ResilientLogSink sink(service.Port(), FastLegOptions());

  pubsub::Master master;
  Rng rng(20260807);
  proto::Component camera("camera", master, sink, rng, test::FastOptions());
  proto::Component detector("detector", master, sink, rng,
                            test::FastOptions());
  std::atomic<int> got{0};
  detector.Subscribe("image", [&](const pubsub::Message&) { got++; });
  auto& publisher = camera.Advertise("image");
  for (int i = 0; i < kTotalMessages; ++i) {
    publisher.Publish(Bytes{static_cast<std::uint8_t>(i)});
  }
  EXPECT_TRUE(WaitFor([&] { return got.load() == kTotalMessages; }));
  camera.Shutdown();
  detector.Shutdown();
  EXPECT_TRUE(sink.Drain(std::chrono::seconds(10)));
  EXPECT_TRUE(WaitFor([&] { return server.EntryCount() == kExpectedEntries; }));
  server.SealEpoch();

  RunOutcome outcome;
  outcome.report = audit::Auditor(server.Keys())
                       .Audit(server.Entries(), master.Topology());
  audit::ReplicaEvidence self;
  self.name = "replica-0";
  self.records = server.SerializedRecords();
  self.roots = server.EpochRoots();
  audit::ReplicaCheckResult check = audit::CheckReplicas({self}, FleetKey());
  EXPECT_TRUE(check.Clean());
  audit::ApplyReplicaFindings(outcome.report, std::move(check));
  outcome.rendered = outcome.report.Render();
  outcome.json = audit::RenderReportJson(outcome.report);
  service.Shutdown();
  return outcome;
}

TEST(RepairChaosTest, RestartPastSpoolHorizonConvergesViaPeerRepair) {
  const RunOutcome baseline = RunSingleLoggerBaseline();
  ASSERT_TRUE(baseline.report.unfaithful.empty());

  std::deque<proto::LogServer> servers;
  std::vector<std::unique_ptr<proto::LogServerService>> services;
  std::vector<proto::ReplicatedLogSink::Connector> connectors;
  for (std::size_t i = 0; i < kReplicas; ++i) {
    servers.emplace_back(FleetServerOptions());
    services.push_back(
        std::make_unique<proto::LogServerService>(servers[i], 0));
    const std::uint16_t port = services[i]->Port();
    connectors.push_back([port]() {
      return transport::TryTcpConnect(
          port, transport::TcpConnectOptions{1, 200, 10, 50});
    });
  }
  const std::uint16_t killed_port = services[2]->Port();
  const std::uint16_t peer_ports[2] = {services[0]->Port(),
                                       services[1]->Port()};

  proto::ReplicatedLogSinkOptions options;
  options.sink_id = "fleet-sink";
  options.replica = FastLegOptions();
  options.replica.spool_capacity = kTinySpool;
  proto::ReplicatedLogSink sink(std::move(connectors), options);

  pubsub::Master master;
  Rng rng(20260807);
  proto::Component camera("camera", master, sink, rng, test::FastOptions());
  proto::Component detector("detector", master, sink, rng,
                            test::FastOptions());
  std::atomic<int> got{0};
  detector.Subscribe("image", [&](const pubsub::Message&) { got++; });
  auto& publisher = camera.Advertise("image");

  // Paced publishing: wait for the live replicas to ingest each message
  // before sending the next, so a healthy leg's spool never overflows —
  // spool pressure builds only behind the replica we kill.
  for (int i = 0; i < kMessagesBeforeKill; ++i) {
    publisher.Publish(Bytes{static_cast<std::uint8_t>(i)});
    const std::size_t want = 2u * (i + 1);
    for (auto& server : servers) {
      EXPECT_TRUE(WaitFor([&] { return server.EntryCount() == want; }));
    }
  }
  EXPECT_TRUE(WaitFor([&] { return got.load() == kMessagesBeforeKill; }));

  // Kill replica 2's front-end, then log far past its leg's spool horizon.
  services[2]->Shutdown();
  services[2].reset();
  for (int i = kMessagesBeforeKill; i < kTotalMessages; ++i) {
    publisher.Publish(Bytes{static_cast<std::uint8_t>(i)});
    const std::size_t want = 2u * (i + 1);
    for (std::size_t r = 0; r < 2; ++r) {
      EXPECT_TRUE(WaitFor([&] { return servers[r].EntryCount() == want; }));
    }
  }
  EXPECT_TRUE(WaitFor([&] { return got.load() == kTotalMessages; }));
  camera.Shutdown();
  detector.Shutdown();

  // The dead leg evicted frames it never got acknowledged: replay alone can
  // no longer make replica 2 whole. This is the gap repair exists for.
  EXPECT_TRUE(WaitFor(
      [&] { return sink.ReplicaStats(2).entries_evicted_unacked > 0; }));

  // The healthy quorum commits everything and seals its full history.
  EXPECT_TRUE(sink.DrainCommitted(std::chrono::seconds(10)));
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(WaitFor(
        [&] { return servers[i].EntryCount() == kExpectedEntries; }));
    servers[i].SealEpoch();
  }

  // Restart replica 2 and let the repair agent pull from both live peers.
  services[2] =
      std::make_unique<proto::LogServerService>(servers[2], killed_port);
  proto::RepairAgentOptions repair;
  repair.seal_key = servers[2].SealKey();
  repair.poll_interval_ms = 5;
  repair.peers.push_back(proto::TcpRepairPeer("replica-0", peer_ports[0]));
  repair.peers.push_back(proto::TcpRepairPeer("replica-1", peer_ports[1]));
  proto::RepairAgent agent(servers[2], repair);
  agent.Start();

  // Convergence bar: byte-identical (size, root) — overall and per epoch.
  ASSERT_TRUE(WaitFor(
      [&] {
        return servers[2].EntryCount() == kExpectedEntries &&
               servers[2].MerkleRoot() == servers[0].MerkleRoot();
      },
      std::chrono::seconds(20)));
  const auto reference = servers[0].EpochRoots();
  for (std::size_t i = 1; i < kReplicas; ++i) {
    const auto roots = servers[i].EpochRoots();
    ASSERT_EQ(roots.size(), reference.size()) << "replica " << i;
    for (std::size_t e = 0; e < roots.size(); ++e) {
      EXPECT_EQ(roots[e].epoch, reference[e].epoch);
      EXPECT_EQ(roots[e].tree_size, reference[e].tree_size);
      EXPECT_EQ(roots[e].root, reference[e].root);
    }
  }
  EXPECT_TRUE(servers[2].VerifyChain());
  EXPECT_TRUE(agent.Findings().empty()) << "live peers are honest";
  EXPECT_GT(agent.Stats().records_repaired, 0u);

  // Live-path reconvergence: the repaired watermark dedups the leg's
  // replayed spool remnant and the leg acks up to the global frontier.
  const std::uint64_t last_seq = sink.Stats().last_seq;
  EXPECT_TRUE(WaitFor(
      [&] { return sink.Stats().replica_acked[2] == last_seq; },
      std::chrono::seconds(20)));
  agent.Stop();

  // The audit — fleet cross-check included — is byte-identical to the
  // uninterrupted baseline: repair left no residue.
  RunOutcome outcome;
  outcome.report = audit::Auditor(servers[0].Keys())
                       .Audit(servers[0].Entries(), master.Topology());
  std::vector<audit::ReplicaEvidence> fleet;
  for (std::size_t i = 0; i < kReplicas; ++i) {
    audit::ReplicaEvidence evidence;
    evidence.name = "replica-" + std::to_string(i);
    evidence.records = servers[i].SerializedRecords();
    evidence.roots = servers[i].EpochRoots();
    fleet.push_back(std::move(evidence));
  }
  audit::ReplicaCheckResult check = audit::CheckReplicas(fleet, FleetKey());
  EXPECT_TRUE(check.Clean());
  EXPECT_TRUE(check.behind.empty()) << "repaired replica is not behind";
  audit::ApplyReplicaFindings(outcome.report, std::move(check));
  EXPECT_EQ(outcome.report.Render(), baseline.rendered);
  EXPECT_EQ(audit::RenderReportJson(outcome.report), baseline.json);

  for (auto& service : services) {
    if (service) service->Shutdown();
  }
}

TEST(RepairChaosTest, ForgedHistoryPeerOverWireRejectedWithDistinctVerdict) {
  // A wire peer with validly SIGNED seals over a different history (it
  // holds the fleet seal key — the strongest forgery available) must fail
  // the consistency gate: it cannot prove the local tree is a prefix of
  // its claimed root. Distinct fork verdict; local store untouched.
  proto::LogServer local(FleetServerOptions());
  proto::LogServer forger(FleetServerOptions());
  for (std::uint64_t seq = 0; seq < 4; ++seq) {
    proto::LogEntry e;
    e.component = "camera";
    e.topic = "image";
    e.seq = seq;
    e.data = BytesOf("honest-" + std::to_string(seq));
    local.Append(e);
  }
  for (std::uint64_t seq = 0; seq < 12; ++seq) {
    proto::LogEntry e;
    e.component = "ghost";
    e.topic = "image";
    e.seq = seq;
    e.data = BytesOf("forged-" + std::to_string(seq));
    forger.Append(e);
  }
  forger.SealEpoch();
  const std::size_t local_entries = local.EntryCount();
  const crypto::Digest local_root = local.MerkleRoot();

  proto::LogServerService service(forger, 0);
  proto::RepairAgentOptions repair;
  repair.seal_key = local.SealKey();
  repair.peers.push_back(proto::TcpRepairPeer("forger", service.Port()));
  proto::RepairAgent agent(local, repair);

  EXPECT_EQ(agent.RunOnce(), 0u);
  const auto findings = agent.Findings();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].finding, proto::RepairFinding::kForkDetected);
  EXPECT_EQ(findings[0].peer, "forger");
  EXPECT_EQ(local.EntryCount(), local_entries);
  EXPECT_EQ(local.MerkleRoot(), local_root);
  service.Shutdown();
}

}  // namespace
}  // namespace adlp
