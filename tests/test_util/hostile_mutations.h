// Shared hostile-mutation helpers for parser-robustness tests and fuzz
// seed generation. Every decoder that touches network- or log-derived bytes
// is exercised with the same adversarial corpus shapes: truncation at every
// byte boundary (mid-tag, mid-varint, mid-payload), single-bit flips, whole
// byte smashes, 0xff length bombs (varint length prefixes that decode as
// enormous claimed lengths and must be rejected before any allocation of
// that size), and valid frames with kilobytes of trailing garbage.
//
// These started as private helpers duplicated between
// tests/wire/wire_fuzz_test.cpp and tests/audit/streaming_fuzz_test.cpp;
// tests/fuzz/ reuses them to derive the committed libFuzzer seed corpora,
// so the gtest sweeps and the coverage-guided fuzzers start from the same
// hostile shapes.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/bytes.h"
#include "common/rng.h"

namespace adlp::test {

/// Calls `probe` with every strict prefix of `valid`, including the empty
/// one: a decoder must reject cleanly no matter where the cut lands.
template <typename Fn>
void ForEveryTruncation(BytesView valid, Fn&& probe) {
  for (std::size_t len = 0; len < valid.size(); ++len) {
    probe(BytesView(valid.data(), len));
  }
}

/// `frame` with `flips` random single-bit flips. Empty frames pass through.
inline Bytes BitFlipped(Rng& rng, BytesView frame, int flips) {
  Bytes mutated(frame.begin(), frame.end());
  if (mutated.empty()) return mutated;
  for (int f = 0; f < flips; ++f) {
    mutated[rng.UniformBelow(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.UniformBelow(8));
  }
  return mutated;
}

/// `frame` with `count` random bytes replaced wholesale (not just one bit).
inline Bytes ByteSmashed(Rng& rng, BytesView frame, int count) {
  Bytes mutated(frame.begin(), frame.end());
  if (mutated.empty()) return mutated;
  for (int c = 0; c < count; ++c) {
    mutated[rng.UniformBelow(mutated.size())] =
        static_cast<std::uint8_t>(rng.NextU64());
  }
  return mutated;
}

/// `frame` with a run of up to `run` 0xff bytes starting at a random
/// offset: wherever the run lands on a varint length prefix it decodes as
/// an absurd claimed length, which the decoder must reject before
/// allocating or subviewing that much.
inline Bytes LengthBombed(Rng& rng, BytesView frame, std::size_t run) {
  Bytes bomb(frame.begin(), frame.end());
  if (bomb.empty()) return bomb;
  const std::size_t at = rng.UniformBelow(bomb.size());
  for (std::size_t j = 0; j < run && at + j < bomb.size(); ++j) {
    bomb[at + j] = 0xff;
  }
  return bomb;
}

/// A valid frame followed by `tail_len` bytes of random garbage: decoders
/// that track their own length must not read into the tail, and decoders
/// that consume to end-of-input must reject the trailing junk cleanly.
inline Bytes WithOversizedTail(Rng& rng, BytesView frame,
                               std::size_t tail_len) {
  Bytes oversized(frame.begin(), frame.end());
  const Bytes tail = rng.RandomBytes(tail_len);
  oversized.insert(oversized.end(), tail.begin(), tail.end());
  return oversized;
}

/// A random strict prefix of `frame` (empty frames pass through).
inline Bytes TruncatedAtRandom(Rng& rng, BytesView frame) {
  Bytes cut(frame.begin(), frame.end());
  if (!cut.empty()) cut.resize(rng.UniformBelow(cut.size()));
  return cut;
}

}  // namespace adlp::test
