#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/instrument.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace adlp::obs {
namespace {

// --- Counter ---------------------------------------------------------------

TEST(CounterTest, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, ConcurrentAddsConvergeToExactCount) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// --- Gauge -----------------------------------------------------------------

TEST(GaugeTest, SetAddSubMax) {
  Gauge g;
  g.Set(10);
  g.Add(5);
  g.Sub(3);
  EXPECT_EQ(g.Value(), 12);
  g.SetMax(7);  // below current: no-op
  EXPECT_EQ(g.Value(), 12);
  g.SetMax(99);
  EXPECT_EQ(g.Value(), 99);
  g.Sub(100);
  EXPECT_EQ(g.Value(), -1);  // gauges may go negative transiently
}

// --- Histogram -------------------------------------------------------------

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({10, 100, 1000});
  h.Record(0);     // <= 10
  h.Record(10);    // <= 10 (boundary value lands in its own bucket)
  h.Record(11);    // <= 100
  h.Record(100);   // <= 100
  h.Record(101);   // <= 1000
  h.Record(1000);  // <= 1000

  const Histogram::Snapshot snap = h.Snap();
  ASSERT_EQ(snap.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 2u);
  EXPECT_EQ(snap.counts[3], 0u);
  EXPECT_EQ(snap.count, 6u);
  EXPECT_EQ(snap.sum, 0u + 10 + 11 + 100 + 101 + 1000);
}

TEST(HistogramTest, OverflowBucketCatchesEverythingAboveLastBound) {
  Histogram h({10, 100});
  h.Record(101);
  h.Record(1u << 30);
  const Histogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.counts[0], 0u);
  EXPECT_EQ(snap.counts[1], 0u);
  EXPECT_EQ(snap.counts[2], 2u);
  EXPECT_EQ(snap.count, 2u);
}

TEST(HistogramTest, RejectsEmptyAndUnsortedBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({10, 5}), std::invalid_argument);
  EXPECT_THROW(Histogram({10, 10}), std::invalid_argument);
}

TEST(HistogramTest, ConcurrentRecordingConvergesToExactCount) {
  Histogram h({100, 10000});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      // Each thread hits a different bucket mix.
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<std::uint64_t>((i + t) % 3) * 1000);
      }
    });
  }
  for (auto& t : threads) t.join();
  const Histogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(HistogramTest, DefaultLatencyBucketsAreAscending) {
  const auto& bounds = DefaultLatencyBucketsNs();
  ASSERT_FALSE(bounds.empty());
  EXPECT_EQ(bounds.front(), 100u);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

// --- MetricsRegistry -------------------------------------------------------

TEST(MetricsRegistryTest, SameNameAndLabelsYieldSameHandle) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("requests_total", {{"code", "200"}});
  Counter& b = reg.GetCounter("requests_total", {{"code", "200"}});
  Counter& other = reg.GetCounter("requests_total", {{"code", "500"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
  a.Add(3);
  EXPECT_EQ(b.Value(), 3u);
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndComplete) {
  MetricsRegistry reg;
  reg.GetCounter("zeta_total").Add(1);
  reg.GetCounter("alpha_total").Add(2);
  reg.GetGauge("depth").Set(7);
  reg.GetHistogram("lat_ns", {}, {10, 100}).Record(50);

  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha_total");
  EXPECT_EQ(snap.counters[0].value, 2u);
  EXPECT_EQ(snap.counters[1].name, "zeta_total");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 7);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].data.count, 1u);
}

TEST(MetricsRegistryTest, ResetZeroesInPlaceKeepingHandles) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("n_total");
  Histogram& h = reg.GetHistogram("lat_ns", {}, {10});
  c.Add(5);
  h.Record(3);
  reg.Reset();
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(h.Snap().count, 0u);
  c.Add(1);  // handle still live
  EXPECT_EQ(reg.Snapshot().counters[0].value, 1u);
}

// --- Exporters -------------------------------------------------------------

TEST(PrometheusExportTest, EscapesLabelValues) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(EscapeLabelValue("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(EscapeLabelValue("mix\\\"\n"), "mix\\\\\\\"\\n");
}

TEST(PrometheusExportTest, EscapedValuesSurviveRendering) {
  MetricsRegistry reg;
  reg.GetCounter("odd_total", {{"topic", "a\"b\\c\nd"}}).Add(1);
  const std::string text = ToPrometheusText(reg.Snapshot());
  EXPECT_NE(text.find("odd_total{topic=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos)
      << text;
  // The rendered line must stay a single line: raw newlines would corrupt
  // the exposition format.
  EXPECT_EQ(text.find("a\"b"), std::string::npos);
}

TEST(PrometheusExportTest, RendersFamiliesAndHistogramSeries) {
  MetricsRegistry reg;
  reg.GetCounter("reqs_total", {}, "Total requests").Add(4);
  Histogram& h = reg.GetHistogram("lat_ns", {{"op", "sign"}}, {10, 100},
                                  "Latency");
  h.Record(5);
  h.Record(50);
  h.Record(5000);

  const std::string text = ToPrometheusText(reg.Snapshot());
  EXPECT_NE(text.find("# HELP reqs_total Total requests"), std::string::npos);
  EXPECT_NE(text.find("# TYPE reqs_total counter"), std::string::npos);
  EXPECT_NE(text.find("reqs_total 4"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_ns histogram"), std::string::npos);
  // Cumulative buckets: 1 at le=10, 2 at le=100, 3 at +Inf.
  EXPECT_NE(text.find("lat_ns_bucket{op=\"sign\",le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{op=\"sign\",le=\"100\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{op=\"sign\",le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("lat_ns_sum{op=\"sign\"} 5055"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_count{op=\"sign\"} 3"), std::string::npos);
}

TEST(JsonExportTest, RendersAllMetricKindsAndEscapes) {
  MetricsRegistry reg;
  reg.GetCounter("c_total", {{"k", "v\"w"}}).Add(2);
  reg.GetGauge("g").Set(-3);
  reg.GetHistogram("h_ns", {}, {10}).Record(4);

  const std::string json = ToJson(reg.Snapshot());
  EXPECT_NE(json.find("\"name\": \"c_total\""), std::string::npos);
  EXPECT_NE(json.find("\"k\": \"v\\\"w\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": -3"), std::string::npos);
  EXPECT_NE(json.find("\"counts\": [1, 0]"), std::string::npos);
}

// --- TraceLog --------------------------------------------------------------

TEST(TraceLogTest, RecordsInOrderAndTruncatesDetail) {
  TraceLog log(8);
  log.Record(TraceKind::kPublish, "topic-a", 1);
  log.Record(TraceKind::kAckReceived,
             "a-very-long-detail-string-that-exceeds-capacity", 2);
  const auto events = log.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, TraceKind::kPublish);
  EXPECT_EQ(events[0].Detail(), "topic-a");
  EXPECT_EQ(events[0].value, 1u);
  EXPECT_EQ(events[1].Detail().size(), TraceEvent::kDetailCapacity);
  EXPECT_LE(events[0].t_ns, events[1].t_ns);
}

TEST(TraceLogTest, RingOverwritesOldestFirst) {
  TraceLog log(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    log.Record(TraceKind::kFlush, "", i);
  }
  EXPECT_EQ(log.RecordedCount(), 10u);
  const auto events = log.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].value, 6u + i);  // the last 4, oldest first
  }
}

TEST(TraceLogTest, ConcurrentRecordingKeepsTotalExact) {
  TraceLog log(64);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Record(TraceKind::kSpool, "x", i);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(log.RecordedCount(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(log.Snapshot().size(), 64u);
}

}  // namespace
}  // namespace adlp::obs
