#include "adlp/wire_msgs.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "pubsub/message.h"

namespace adlp::proto {
namespace {

pubsub::Message SampleMessage(std::size_t payload_size = 100) {
  Rng rng(3);
  pubsub::Message msg;
  msg.header.topic = "image";
  msg.header.publisher = "camera";
  msg.header.seq = 5;
  msg.header.stamp = 999;
  msg.payload = rng.RandomBytes(payload_size);
  return msg;
}

TEST(DataMessageTest, RoundTrip) {
  const pubsub::Message msg = SampleMessage();
  const Bytes sig(128, 0x5a);
  const DataMessage parsed = ParseDataMessage(SerializeDataMessage(msg, sig));
  EXPECT_EQ(parsed.message, msg);
  EXPECT_EQ(parsed.signature, sig);
}

TEST(DataMessageTest, ParsesAsPlainMessageIgnoringSignature) {
  // A non-ADLP parser sees the same message fields and skips field 6.
  const pubsub::Message msg = SampleMessage();
  const Bytes wire = SerializeDataMessage(msg, Bytes(128, 1));
  EXPECT_EQ(pubsub::DeserializeMessage(wire), msg);
}

TEST(DataMessageTest, OverheadIsSignaturePlusFraming) {
  // Table III: ADLP message overhead over the payload is the 128-byte
  // signature plus small framing, independent of payload size.
  for (std::size_t size : {20u, 8705u, 921641u}) {
    const pubsub::Message msg = SampleMessage(size);
    const std::size_t plain = pubsub::SerializeMessage(msg).size();
    const std::size_t adlp = SerializeDataMessage(msg, Bytes(128, 1)).size();
    EXPECT_EQ(adlp - plain, 131u) << size;  // 128 sig + 3 framing bytes
  }
}

TEST(AckMessageTest, HashVariantRoundTrip) {
  AckMessage ack;
  ack.seq = 17;
  ack.subscriber = "detector";
  ack.data_hash = Bytes(32, 0xcd);
  ack.signature = Bytes(128, 0xef);
  const AckMessage parsed = ParseAckMessage(SerializeAckMessage(ack));
  EXPECT_EQ(parsed.seq, 17u);
  EXPECT_EQ(parsed.subscriber, "detector");
  EXPECT_EQ(parsed.data_hash, ack.data_hash);
  EXPECT_TRUE(parsed.data.empty());
  EXPECT_EQ(parsed.signature, ack.signature);
}

TEST(AckMessageTest, DataVariantRoundTrip) {
  AckMessage ack;
  ack.seq = 18;
  ack.subscriber = "detector";
  ack.data = {1, 2, 3, 4};
  ack.signature = Bytes(128, 0xef);
  const AckMessage parsed = ParseAckMessage(SerializeAckMessage(ack));
  EXPECT_EQ(parsed.data, ack.data);
  EXPECT_TRUE(parsed.data_hash.empty());
}

TEST(AckMessageTest, SizeNearPaperValue) {
  // The paper's ACK payload is 160 bytes (32-byte hash + 128-byte sig); our
  // encoding adds only field framing.
  AckMessage ack;
  ack.seq = 1000;
  ack.subscriber = "image_subscriber";
  ack.data_hash = Bytes(32, 1);
  ack.signature = Bytes(128, 2);
  const std::size_t size = SerializeAckMessage(ack).size();
  EXPECT_GE(size, 160u);
  EXPECT_LT(size, 200u);
}

}  // namespace
}  // namespace adlp::proto
