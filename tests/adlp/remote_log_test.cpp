#include "adlp/remote_log.h"

#include <gtest/gtest.h>

#include "audit/auditor.h"
#include "test_util.h"
#include "wire/wire.h"

namespace adlp::proto {
namespace {

using test::WaitFor;

TEST(LogUploadCodecTest, KeyRegistrationRoundTrip) {
  Rng rng(1);
  const auto kp = crypto::GenerateSigKeyPair(rng, crypto::SigAlgorithm::kRsaPkcs1Sha256, 256);
  LogServer server;
  ApplyLogUpload(SerializeLogUpload("camera", kp.pub), server);
  EXPECT_EQ(server.Keys().Find("camera"), kp.pub);
}

TEST(LogUploadCodecTest, EntryRoundTrip) {
  LogEntry entry;
  entry.scheme = LogScheme::kAdlp;
  entry.component = "camera";
  entry.topic = "image";
  entry.seq = 7;
  entry.data = {1, 2, 3};
  LogServer server;
  ApplyLogUpload(SerializeLogUpload(entry), server);
  ASSERT_EQ(server.EntryCount(), 1u);
  EXPECT_EQ(server.Entries()[0], entry);
}

TEST(LogUploadCodecTest, GarbageRejected) {
  LogServer server;
  EXPECT_THROW(ApplyLogUpload(Bytes(9, 0xff), server), wire::WireError);
}

TEST(RemoteLogTest, EntriesFlowOverTcp) {
  LogServer server;
  LogServerService service(server, 0);
  RemoteLogSink sink(service.Port());

  Rng rng(2);
  const auto kp = crypto::GenerateSigKeyPair(rng, crypto::SigAlgorithm::kRsaPkcs1Sha256, 256);
  sink.RegisterKey("node", kp.pub);
  for (int i = 0; i < 10; ++i) {
    LogEntry e;
    e.component = "node";
    e.topic = "t";
    e.seq = static_cast<std::uint64_t>(i);
    sink.Append(e);
  }
  EXPECT_TRUE(WaitFor([&] { return server.EntryCount() == 10; }));
  EXPECT_TRUE(server.Keys().Contains("node"));
  EXPECT_TRUE(server.VerifyChain());
  service.Shutdown();
}

TEST(RemoteLogTest, ServerDeathDoesNotDisturbTheComponent) {
  LogServer server;
  auto service = std::make_unique<LogServerService>(server, 0);
  RemoteLogSink sink(service->Port());

  LogEntry e;
  e.component = "node";
  e.topic = "t";
  sink.Append(e);
  EXPECT_TRUE(WaitFor([&] { return server.EntryCount() == 1; }));

  // Kill the logger; the component keeps "logging" without errors — the
  // paper's no-single-point-of-failure property.
  service.reset();
  for (int i = 0; i < 5; ++i) sink.Append(e);  // must not throw or block
  SUCCEED();
}

TEST(RemoteLogTest, FullComponentStackOverRemoteLogger) {
  // Components wired to the logger via TCP; the audit works as usual.
  LogServer server;
  LogServerService service(server, 0);
  RemoteLogSink pub_sink(service.Port());
  RemoteLogSink sub_sink(service.Port());

  pubsub::Master master;
  Rng rng(3);
  proto::Component pub("camera", master, pub_sink, rng, test::FastOptions());
  proto::Component sub("detector", master, sub_sink, rng,
                       test::FastOptions());

  std::atomic<int> got{0};
  sub.Subscribe("image", [&](const pubsub::Message&) { got++; });
  auto& p = pub.Advertise("image");
  for (int i = 0; i < 5; ++i) p.Publish(Bytes{1});
  ASSERT_TRUE(WaitFor([&] { return got.load() == 5; }));
  pub.Shutdown();
  sub.Shutdown();

  EXPECT_TRUE(WaitFor([&] { return server.EntryCount() == 10; }));
  EXPECT_EQ(server.Keys().Size(), 2u);
  service.Shutdown();

  audit::Auditor auditor(server.Keys());
  const auto report = auditor.Audit(server.Entries(), master.Topology());
  EXPECT_EQ(report.TotalValid(), 10u);
  EXPECT_TRUE(report.unfaithful.empty());
}

TEST(RemoteLogTest, MalformedUploadIgnoredConnectionSurvives) {
  LogServer server;
  LogServerService service(server, 0);
  auto channel = transport::TcpConnect(service.Port());
  ASSERT_TRUE(channel->Send(Bytes(7, 0xee)));  // garbage frame

  LogEntry e;
  e.component = "node";
  e.topic = "t";
  ASSERT_TRUE(channel->Send(SerializeLogUpload(e)));
  EXPECT_TRUE(WaitFor([&] { return server.EntryCount() == 1; }));
  channel->Close();
  service.Shutdown();
}

TEST(RemoteLogTest, MalformedTaggedUploadDoesNotAdvanceWatermark) {
  // Regression: a tagged frame whose outer envelope parses but whose nested
  // payload is garbage must not burn its (sink_id, seq). If it advanced the
  // watermark, every honest retransmission of that seq would be deduped and
  // never acked — wedging the sink — and a hostile uploader could spoof
  // (sink_id, huge seq) to suppress all future honest frames for that sink.
  LogServer server;
  LogServerService service(server, 0);
  auto channel = transport::TcpConnect(service.Port());

  // Field tags mirror remote_log.cpp's wire layout: 1=kind (2=entry),
  // 5=nested entry bytes, 6=sink_id, 7=seq.
  wire::Writer w;
  w.PutU64(1, 2);
  w.PutBytes(5, Bytes(16, 0xff));  // nested entry: garbage
  w.PutString(6, "sink-a");
  w.PutU64(7, 1);
  ASSERT_TRUE(channel->Send(std::move(w).Take()));

  // The same seq carrying a well-formed entry must still be applied.
  LogEntry e;
  e.component = "node";
  e.topic = "t";
  ASSERT_TRUE(channel->Send(SerializeLogUpload(e, "sink-a", 1)));
  EXPECT_TRUE(WaitFor([&] { return server.EntryCount() == 1; }));
  EXPECT_EQ(server.UploadWatermark("sink-a"), 1u);
  channel->Close();
  service.Shutdown();
}

}  // namespace
}  // namespace adlp::proto
