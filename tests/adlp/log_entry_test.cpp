#include "adlp/log_entry.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "wire/wire.h"

namespace adlp::proto {
namespace {

LogEntry SampleAdlpEntry() {
  LogEntry e;
  e.scheme = LogScheme::kAdlp;
  e.component = "camera";
  e.topic = "image";
  e.direction = Direction::kOut;
  e.seq = 7;
  e.timestamp = 111;
  e.message_stamp = 110;
  e.data = {9, 8, 7};
  e.self_signature = Bytes(64, 0xaa);
  e.peer_signature = Bytes(64, 0xbb);
  e.peer_data_hash = Bytes(32, 0xcc);
  e.peer = "detector";
  return e;
}

TEST(LogEntryTest, AdlpRoundTrip) {
  const LogEntry e = SampleAdlpEntry();
  EXPECT_EQ(DeserializeLogEntry(SerializeLogEntry(e)), e);
}

TEST(LogEntryTest, BaseRoundTrip) {
  LogEntry e;
  e.scheme = LogScheme::kBase;
  e.component = "camera";
  e.topic = "image";
  e.direction = Direction::kIn;
  e.seq = 3;
  e.timestamp = 5;
  e.message_stamp = 4;
  e.data = {1, 2};
  EXPECT_EQ(DeserializeLogEntry(SerializeLogEntry(e)), e);
}

TEST(LogEntryTest, HashOnlyEntryRoundTrip) {
  LogEntry e = SampleAdlpEntry();
  e.data.clear();
  e.data_hash = Bytes(32, 0x11);
  EXPECT_EQ(DeserializeLogEntry(SerializeLogEntry(e)), e);
}

TEST(LogEntryTest, AggregatedAcksRoundTrip) {
  LogEntry e = SampleAdlpEntry();
  e.peer.clear();
  e.peer_signature.clear();
  e.peer_data_hash.clear();
  for (int i = 0; i < 3; ++i) {
    e.acks.push_back(LogEntry::AckRecord{
        "sub" + std::to_string(i), Bytes(32, static_cast<std::uint8_t>(i)),
        Bytes(64, static_cast<std::uint8_t>(0x80 + i))});
  }
  const LogEntry round = DeserializeLogEntry(SerializeLogEntry(e));
  EXPECT_EQ(round, e);
  ASSERT_EQ(round.acks.size(), 3u);
  EXPECT_EQ(round.acks[2].subscriber, "sub2");
}

TEST(LogEntryTest, NegativeTimestampsSurvive) {
  LogEntry e = SampleAdlpEntry();
  e.timestamp = -42;
  e.message_stamp = -43;
  EXPECT_EQ(DeserializeLogEntry(SerializeLogEntry(e)), e);
}

TEST(LogEntryTest, EmptyOptionalFieldsOmittedFromWire) {
  LogEntry small;
  small.component = "a";
  small.topic = "t";
  const std::size_t small_size = SerializeLogEntry(small).size();
  LogEntry big = small;
  big.self_signature = Bytes(128, 1);
  EXPECT_GE(SerializeLogEntry(big).size(), small_size + 128);
}

TEST(LogEntryTest, AdlpSubscriberEntryNearPaperSize) {
  // Table III: the ADLP subscriber log entry (hash stored) is ~350 bytes
  // with RSA-1024 signatures. Our encoding should land in the same regime.
  LogEntry e;
  e.scheme = LogScheme::kAdlp;
  e.component = "image_subscriber_1";
  e.topic = "image";
  e.direction = Direction::kIn;
  e.seq = 1000;
  e.timestamp = 1'700'000'000'000'000'000;
  e.message_stamp = 1'700'000'000'000'000'000;
  e.data_hash = Bytes(32, 1);
  e.self_signature = Bytes(128, 2);   // RSA-1024
  e.peer_signature = Bytes(128, 3);
  e.peer = "image_feeder";
  const std::size_t size = SerializeLogEntry(e).size();
  EXPECT_GT(size, 300u);
  EXPECT_LT(size, 420u);
}

TEST(LogEntryTest, DeserializeRejectsGarbage) {
  Rng rng(1);
  // Deliberately malformed varint stream.
  const Bytes junk(11, 0xff);
  EXPECT_THROW(DeserializeLogEntry(junk), wire::WireError);
}

TEST(LogEntryTest, Names) {
  EXPECT_EQ(DirectionName(Direction::kOut), "out");
  EXPECT_EQ(DirectionName(Direction::kIn), "in");
  EXPECT_EQ(SchemeName(LogScheme::kBase), "base");
  EXPECT_EQ(SchemeName(LogScheme::kAdlp), "adlp");
}

}  // namespace
}  // namespace adlp::proto
