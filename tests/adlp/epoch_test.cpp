// Epoch sealing: wire round-trip, signature binding, chain verification,
// LogServer auto-seal triggers, and log-file persistence of sealed roots.
#include "adlp/epoch.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "adlp/log_file.h"
#include "adlp/log_server.h"
#include "common/rng.h"
#include "wire/wire.h"

namespace adlp::proto {
namespace {

LogEntry MakeEntry(const crypto::ComponentId& component, std::uint64_t seq) {
  LogEntry e;
  e.component = component;
  e.topic = "topic";
  e.seq = seq;
  e.timestamp = static_cast<Timestamp>(1000 + seq);
  e.data = BytesOf("payload-" + std::to_string(seq));
  return e;
}

EpochRoot MakeRoot(const crypto::SigKeyPair& keys, std::uint64_t epoch,
                   std::uint64_t tree_size, const crypto::Digest& prev) {
  EpochRoot r;
  r.epoch = epoch;
  r.tree_size = tree_size;
  r.root = crypto::Sha256Digest(BytesOf("root-" + std::to_string(epoch)));
  r.prev_root_hash = prev;
  r.sealed_at = static_cast<Timestamp>(42 + epoch);
  r.logger = "logger-a";
  r.signature = crypto::SignDigest(keys.priv, EpochRootDigest(r));
  return r;
}

crypto::SigKeyPair TestKeys() {
  Rng rng(0xEB0C);
  return crypto::GenerateSigKeyPair(rng, crypto::SigAlgorithm::kEd25519);
}

TEST(EpochRootTest, SerializeParseRoundTrip) {
  const auto keys = TestKeys();
  const EpochRoot root = MakeRoot(keys, 3, 17, EpochGenesis());
  const EpochRoot back = ParseEpochRoot(SerializeEpochRoot(root));
  EXPECT_EQ(back, root);
}

TEST(EpochRootTest, ParseRejectsHostileDigestLengths) {
  const auto keys = TestKeys();
  const EpochRoot root = MakeRoot(keys, 0, 5, EpochGenesis());
  // Re-encode with a truncated root digest: field 3 carrying 31 bytes.
  wire::Writer w;
  w.PutU64(1, root.epoch);
  w.PutU64(2, root.tree_size);
  w.PutBytes(3, BytesView(root.root.data(), root.root.size() - 1));
  w.PutBytes(4, BytesView(root.prev_root_hash.data(),
                          root.prev_root_hash.size()));
  w.PutI64(5, root.sealed_at);
  w.PutString(6, root.logger);
  w.PutBytes(7, root.signature);
  EXPECT_THROW(ParseEpochRoot(w.Data()), wire::WireError);
}

TEST(EpochRootTest, ParseRejectsMissingFields) {
  wire::Writer w;
  w.PutU64(1, 0);
  EXPECT_THROW(ParseEpochRoot(w.Data()), wire::WireError);
}

TEST(EpochRootTest, SignatureBindsEveryField) {
  const auto keys = TestKeys();
  EpochRoot root = MakeRoot(keys, 2, 9, EpochGenesis());
  ASSERT_TRUE(VerifyEpochRootSignature(root, keys.pub));

  auto mutate = [&](auto fn) {
    EpochRoot m = root;
    fn(m);
    EXPECT_FALSE(VerifyEpochRootSignature(m, keys.pub));
  };
  mutate([](EpochRoot& m) { m.epoch += 1; });
  mutate([](EpochRoot& m) { m.tree_size += 1; });
  mutate([](EpochRoot& m) { m.root[0] ^= 1; });
  mutate([](EpochRoot& m) { m.prev_root_hash[0] ^= 1; });
  mutate([](EpochRoot& m) { m.sealed_at += 1; });
  mutate([](EpochRoot& m) { m.logger = "logger-b"; });
  mutate([](EpochRoot& m) { m.signature[0] ^= 1; });

  Rng other_rng(0xBAD);
  const auto other =
      crypto::GenerateSigKeyPair(other_rng, crypto::SigAlgorithm::kEd25519);
  EXPECT_FALSE(VerifyEpochRootSignature(root, other.pub));
}

TEST(EpochRootTest, ChainVerifiesAndLocalizesFirstBreak) {
  const auto keys = TestKeys();
  std::vector<EpochRoot> roots;
  crypto::Digest prev = EpochGenesis();
  for (std::uint64_t i = 0; i < 5; ++i) {
    roots.push_back(MakeRoot(keys, i, 3 * (i + 1), prev));
    prev = EpochRootDigest(roots.back());
  }
  EXPECT_EQ(VerifyEpochChain(roots, keys.pub), roots.size());

  auto broken = roots;
  broken[2].prev_root_hash[0] ^= 1;  // break the link into epoch 2
  broken[2].signature =
      crypto::SignDigest(keys.priv, EpochRootDigest(broken[2]));
  EXPECT_EQ(VerifyEpochChain(broken, keys.pub), 2u);

  auto unsigned_tail = roots;
  unsigned_tail[4].tree_size += 1;  // signature no longer matches
  EXPECT_EQ(VerifyEpochChain(unsigned_tail, keys.pub), 4u);

  auto shrunk = roots;
  shrunk[3].tree_size = shrunk[2].tree_size;  // not strictly increasing
  shrunk[3].signature =
      crypto::SignDigest(keys.priv, EpochRootDigest(shrunk[3]));
  EXPECT_EQ(VerifyEpochChain(shrunk, keys.pub), 3u);
}

TEST(LogServerSealTest, SealsEveryKAppends) {
  LogServerOptions options;
  options.seal_every = 4;
  options.logger_id = "replica-0";
  SimClock clock;
  options.clock = &clock;
  LogServer server(options);
  for (std::uint64_t i = 0; i < 10; ++i) server.Append(MakeEntry("pub", i));

  const auto roots = server.EpochRoots();
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_EQ(roots[0].epoch, 0u);
  EXPECT_EQ(roots[0].tree_size, 4u);
  EXPECT_EQ(roots[0].prev_root_hash, EpochGenesis());
  EXPECT_EQ(roots[1].epoch, 1u);
  EXPECT_EQ(roots[1].tree_size, 8u);
  EXPECT_EQ(roots[1].prev_root_hash, EpochRootDigest(roots[0]));
  EXPECT_EQ(roots[0].logger, "replica-0");
  EXPECT_EQ(VerifyEpochChain(roots, server.SealKey()), roots.size());
}

TEST(LogServerSealTest, TimeTriggeredSealOnNextAppend) {
  LogServerOptions options;
  options.seal_interval_ms = 10;
  SimClock clock(0, 0);  // only Advance() moves time
  options.clock = &clock;
  LogServer server(options);

  server.Append(MakeEntry("pub", 0));
  EXPECT_TRUE(server.EpochRoots().empty());
  clock.Advance(11 * 1'000'000);
  server.Append(MakeEntry("pub", 1));
  const auto roots = server.EpochRoots();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0].tree_size, 2u);
}

TEST(LogServerSealTest, IntervalMeasuredFromConstructionNotClockEpoch) {
  // Regression: with only seal_interval_ms configured and a clock that does
  // not start at zero (i.e. any wall clock), the first append must not seal
  // a 1-record epoch immediately — the interval runs from construction.
  LogServerOptions options;
  options.seal_interval_ms = 10;
  SimClock clock(5'000'000'000, 0);  // only Advance() moves time
  options.clock = &clock;
  LogServer server(options);

  server.Append(MakeEntry("pub", 0));
  EXPECT_TRUE(server.EpochRoots().empty())
      << "first append sealed immediately despite a fresh interval";
  clock.Advance(11 * 1'000'000);
  server.Append(MakeEntry("pub", 1));
  ASSERT_EQ(server.EpochRoots().size(), 1u);
  EXPECT_EQ(server.EpochRoots()[0].tree_size, 2u);
}

TEST(LogServerSealTest, ManualSealAndEmptyEpochSuppression) {
  LogServer server;  // sealing disabled by default
  EXPECT_FALSE(server.SealEpoch().has_value());  // nothing appended
  server.Append(MakeEntry("pub", 0));
  EXPECT_TRUE(server.EpochRoots().empty());  // no auto-seal
  const auto sealed = server.SealEpoch();
  ASSERT_TRUE(sealed.has_value());
  EXPECT_EQ(sealed->tree_size, 1u);
  // Nothing new: a second seal would repeat the tree size; refused.
  EXPECT_FALSE(server.SealEpoch().has_value());
  EXPECT_EQ(server.EpochRoots().size(), 1u);
}

TEST(LogServerSealTest, SealedRootMatchesMerkleTreeAndProofsVerify) {
  LogServer server;
  for (std::uint64_t i = 0; i < 7; ++i) server.Append(MakeEntry("pub", i));
  const auto sealed = server.SealEpoch();
  ASSERT_TRUE(sealed.has_value());

  const auto records = server.SerializedRecords();
  crypto::MerkleTree reference;
  for (const auto& r : records) reference.Append(r);
  EXPECT_EQ(sealed->root, reference.Root());

  for (std::uint64_t i = 0; i < records.size(); ++i) {
    const auto proof = server.InclusionProof(i, sealed->tree_size);
    EXPECT_TRUE(crypto::MerkleTree::VerifyInclusion(
        records[i], i, sealed->tree_size, proof, sealed->root));
  }
}

TEST(LogServerSealTest, UploadWatermarkDedupsRetransmissions) {
  LogServer server;
  EXPECT_EQ(server.UploadWatermark("sink-a"), 0u);
  EXPECT_TRUE(server.NoteUploadSeq("sink-a", 1));
  EXPECT_TRUE(server.NoteUploadSeq("sink-a", 2));
  EXPECT_FALSE(server.NoteUploadSeq("sink-a", 2));  // retransmission
  EXPECT_FALSE(server.NoteUploadSeq("sink-a", 1));
  EXPECT_TRUE(server.NoteUploadSeq("sink-b", 1));  // independent per sink
  EXPECT_EQ(server.UploadWatermark("sink-a"), 2u);
}

TEST(LogFileEpochTest, EpochRootsRoundTripThroughLogFile) {
  LogServerOptions options;
  options.seal_every = 3;
  LogServer server(options);
  for (std::uint64_t i = 0; i < 9; ++i) server.Append(MakeEntry("pub", i));
  ASSERT_EQ(server.EpochRoots().size(), 3u);

  const std::string path = ::testing::TempDir() + "epoch_roundtrip.log";
  WriteLogFile(path, server);
  const LoadedLog loaded = ReadLogFile(path);
  EXPECT_TRUE(loaded.chain_verified);
  EXPECT_EQ(loaded.entries.size(), 9u);
  EXPECT_EQ(loaded.epoch_roots, server.EpochRoots());
  std::remove(path.c_str());
}

TEST(LogFileEpochTest, FilesWithoutEpochFramesStillLoad) {
  LogServer server;
  for (std::uint64_t i = 0; i < 4; ++i) server.Append(MakeEntry("pub", i));
  const std::string path = ::testing::TempDir() + "epoch_none.log";
  WriteLogRecords(path, server.SerializedRecords(), server.ChainHead());
  const LoadedLog loaded = ReadLogFile(path);
  EXPECT_TRUE(loaded.chain_verified);
  EXPECT_TRUE(loaded.epoch_roots.empty());
  std::remove(path.c_str());
}

TEST(LogFileEpochTest, TapPublishesSealEventsInline) {
  LogTapQueue tap(64, TapOverflowPolicy::kBlock);
  LogServerOptions options;
  options.seal_every = 2;
  LogServer server(options);
  server.AttachTap(&tap);
  for (std::uint64_t i = 0; i < 4; ++i) server.Append(MakeEntry("pub", i));
  tap.Close();

  std::vector<TapEvent::Kind> kinds;
  while (auto event = tap.Pop(std::chrono::milliseconds(0))) {
    kinds.push_back(event->kind);
    if (event->kind == TapEvent::Kind::kEpochRoot) {
      ASSERT_TRUE(event->epoch_root.has_value());
    }
  }
  const std::vector<TapEvent::Kind> want = {
      TapEvent::Kind::kEntry, TapEvent::Kind::kEntry,
      TapEvent::Kind::kEpochRoot, TapEvent::Kind::kEntry,
      TapEvent::Kind::kEntry, TapEvent::Kind::kEpochRoot};
  EXPECT_EQ(kinds, want);
}

}  // namespace
}  // namespace adlp::proto
