#include "adlp/log_file.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "common/rng.h"

namespace adlp::proto {
namespace {

class LogFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("adlp_log_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void FillServer(LogServer& server, int entries) {
    Rng rng(1);
    for (int i = 0; i < entries; ++i) {
      LogEntry e;
      e.scheme = LogScheme::kAdlp;
      e.component = "comp" + std::to_string(i % 3);
      e.topic = "topic";
      e.seq = static_cast<std::uint64_t>(i);
      e.data = rng.RandomBytes(100);
      e.self_signature = rng.RandomBytes(128);
      server.Append(e);
    }
  }

  std::string path_;
};

TEST_F(LogFileTest, RoundTripPreservesEntriesAndChain) {
  LogServer server;
  FillServer(server, 10);
  WriteLogFile(path_, server);
  const LoadedLog loaded = ReadLogFile(path_);
  EXPECT_TRUE(loaded.chain_verified);
  EXPECT_EQ(loaded.entries.size(), 10u);
  EXPECT_EQ(loaded.chain_head, server.ChainHead());
  EXPECT_EQ(loaded.entries, server.Entries());
}

TEST_F(LogFileTest, EmptyLogRoundTrips) {
  LogServer server;
  WriteLogFile(path_, server);
  const LoadedLog loaded = ReadLogFile(path_);
  EXPECT_TRUE(loaded.chain_verified);
  EXPECT_TRUE(loaded.entries.empty());
}

TEST_F(LogFileTest, ContentTamperBreaksChainButLoads) {
  LogServer server;
  FillServer(server, 5);
  auto records = server.SerializedRecords();
  records[2][10] ^= 0x01;  // flip one byte of one record
  WriteLogRecords(path_, records, server.ChainHead());
  const LoadedLog loaded = ReadLogFile(path_);
  EXPECT_FALSE(loaded.chain_verified);
  EXPECT_EQ(loaded.records.size(), 5u);
  // The flipped byte may or may not keep the record parseable; either way
  // every record is preserved as evidence.
  EXPECT_EQ(loaded.entries.size() + loaded.malformed_records, 5u);
}

TEST_F(LogFileTest, DeletedRecordBreaksChain) {
  LogServer server;
  FillServer(server, 5);
  auto records = server.SerializedRecords();
  records.erase(records.begin() + 1);
  WriteLogRecords(path_, records, server.ChainHead());
  EXPECT_FALSE(ReadLogFile(path_).chain_verified);
}

TEST_F(LogFileTest, ReorderedRecordsBreakChain) {
  LogServer server;
  FillServer(server, 5);
  auto records = server.SerializedRecords();
  std::swap(records[0], records[1]);
  WriteLogRecords(path_, records, server.ChainHead());
  EXPECT_FALSE(ReadLogFile(path_).chain_verified);
}

TEST_F(LogFileTest, TruncatedFileRejected) {
  LogServer server;
  FillServer(server, 5);
  WriteLogFile(path_, server);
  // Chop off the trailer.
  const auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size - 10);
  EXPECT_THROW(ReadLogFile(path_), std::runtime_error);
}

TEST_F(LogFileTest, GarbageFileRejected) {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a log file at all", f);
  std::fclose(f);
  EXPECT_THROW(ReadLogFile(path_), std::runtime_error);
}

TEST_F(LogFileTest, MissingFileThrows) {
  EXPECT_THROW(ReadLogFile("/nonexistent/nowhere.adlplog"),
               std::system_error);
}

}  // namespace
}  // namespace adlp::proto
