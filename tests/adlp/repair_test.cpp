// Anti-entropy repair: the sync-protocol codec, the RepairAgent's happy
// paths (a behind replica converges to byte-identical (size, root) per
// epoch), the server's gap-hold rule for post-eviction uploads, and the
// adversary matrix — every class of hostile repair material is rejected
// with its own distinct finding and never poisons the local store.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "adlp/log_entry.h"
#include "adlp/log_server.h"
#include "adlp/remote_log.h"
#include "adlp/repair.h"
#include "adlp/resilient_log.h"
#include "adlp/sync_msgs.h"
#include "crypto/merkle.h"
#include "test_util.h"
#include "transport/tcp.h"
#include "wire/wire.h"

namespace adlp {
namespace {

using test::WaitFor;

proto::LogEntry MakeEntry(std::uint64_t seq) {
  proto::LogEntry entry;
  entry.component = "camera";
  entry.topic = "image";
  entry.seq = seq;
  entry.data = Bytes{static_cast<std::uint8_t>(seq), 0x42};
  return entry;
}

/// Appends `count` tagged entries (seqs continuing from the server's
/// watermark for `sink`) so the server grows upload watermarks the way live
/// replicated ingestion would.
void FeedTagged(proto::LogServer& server, const std::string& sink,
                std::uint64_t count) {
  std::uint64_t seq = server.UploadWatermark(sink);
  for (std::uint64_t i = 0; i < count; ++i) {
    ++seq;
    ASSERT_EQ(server.ApplyTaggedEntry(sink, seq, MakeEntry(seq)),
              proto::LogServer::UploadSeqOutcome::kFresh);
  }
}

/// In-process peer that routes every fetch through the real wire codec and
/// server dispatch (serialize request -> HandleSyncRequest -> parse
/// response) — the full protocol stack minus the socket.
class LoopbackPeer : public proto::PeerSync {
 public:
  explicit LoopbackPeer(const proto::LogServer& server) : server_(server) {}

  std::optional<std::vector<proto::EpochRoot>> FetchRootsSince(
      std::uint64_t since) override {
    auto resp =
        proto::HandleSyncRequest(proto::SerializeSyncGetRoots({since}),
                                 server_);
    if (!resp) return std::nullopt;
    return proto::ParseSyncRoots(*resp).roots;
  }

  std::optional<proto::SyncRecords> FetchRecords(std::uint64_t first,
                                                 std::uint64_t count) override {
    auto resp = proto::HandleSyncRequest(
        proto::SerializeSyncGetRecords({first, count}), server_);
    if (!resp) return std::nullopt;
    return proto::ParseSyncRecords(*resp);
  }

  std::optional<std::vector<crypto::Digest>> FetchInclusionProof(
      std::uint64_t index, std::uint64_t tree_size) override {
    auto resp = proto::HandleSyncRequest(
        proto::SerializeSyncGetProof({index, tree_size}), server_);
    if (!resp) return std::nullopt;
    return proto::ParseSyncInclusionProof(*resp).proof;
  }

  std::optional<std::vector<crypto::Digest>> FetchConsistencyProof(
      std::uint64_t old_size, std::uint64_t new_size) override {
    auto resp = proto::HandleSyncRequest(
        proto::SerializeSyncGetConsistency({old_size, new_size}), server_);
    if (!resp) return std::nullopt;
    return proto::ParseSyncConsistencyProof(*resp).proof;
  }

  std::optional<proto::SyncSealInfo> FetchSealInfo(
      std::uint64_t epoch) override {
    auto resp = proto::HandleSyncRequest(
        proto::SerializeSyncGetSealInfo({epoch}), server_);
    if (!resp) return std::nullopt;
    return proto::ParseSyncSealInfo(*resp);
  }

 private:
  const proto::LogServer& server_;
};

proto::RepairAgentOptions AgentOptions(const proto::LogServer& source) {
  proto::RepairAgentOptions options;
  options.seal_key = source.SealKey();
  return options;
}

proto::RepairPeer LoopbackRepairPeer(const proto::LogServer& source) {
  proto::RepairPeer peer;
  peer.name = "loopback";
  peer.connect = [&source]() -> std::unique_ptr<proto::PeerSync> {
    return std::make_unique<LoopbackPeer>(source);
  };
  return peer;
}

/// Source replica with `records` tagged entries and a seal every
/// `seal_every` of them.
void SeedSource(proto::LogServer& source, std::uint64_t records,
                std::uint64_t seal_every) {
  for (std::uint64_t done = 0; done < records;) {
    const std::uint64_t step = std::min(seal_every, records - done);
    FeedTagged(source, "fleet-sink", step);
    done += step;
    ASSERT_TRUE(source.SealEpoch().has_value());
  }
}

void ExpectConverged(const proto::LogServer& local,
                     const proto::LogServer& source) {
  EXPECT_EQ(local.EntryCount(), source.EntryCount());
  EXPECT_EQ(local.MerkleRoot(), source.MerkleRoot());
  const auto local_roots = local.EpochRoots();
  const auto source_roots = source.EpochRoots();
  ASSERT_EQ(local_roots.size(), source_roots.size());
  for (std::size_t i = 0; i < local_roots.size(); ++i) {
    EXPECT_EQ(local_roots[i].epoch, source_roots[i].epoch);
    EXPECT_EQ(local_roots[i].tree_size, source_roots[i].tree_size);
    EXPECT_EQ(local_roots[i].root, source_roots[i].root);
  }
  EXPECT_TRUE(local.VerifyChain());
}

// --- Sync codec --------------------------------------------------------------

TEST(RepairSyncMsgsTest, RequestsRoundTrip) {
  const proto::SyncGetRoots roots{7};
  EXPECT_EQ(proto::ParseSyncGetRoots(proto::SerializeSyncGetRoots(roots)).since,
            7u);

  const proto::SyncGetRecords records{40, 16};
  const auto records_back =
      proto::ParseSyncGetRecords(proto::SerializeSyncGetRecords(records));
  EXPECT_EQ(records_back.first, 40u);
  EXPECT_EQ(records_back.count, 16u);

  const proto::SyncGetProof proof{3, 11};
  const auto proof_back =
      proto::ParseSyncGetProof(proto::SerializeSyncGetProof(proof));
  EXPECT_EQ(proof_back.index, 3u);
  EXPECT_EQ(proof_back.tree_size, 11u);

  const proto::SyncGetConsistency consistency{4, 9};
  const auto consistency_back = proto::ParseSyncGetConsistency(
      proto::SerializeSyncGetConsistency(consistency));
  EXPECT_EQ(consistency_back.old_size, 4u);
  EXPECT_EQ(consistency_back.new_size, 9u);

  const proto::SyncGetSealInfo seal{5};
  EXPECT_EQ(
      proto::ParseSyncGetSealInfo(proto::SerializeSyncGetSealInfo(seal)).epoch,
      5u);
}

TEST(RepairSyncMsgsTest, RootsRoundTripPreservesSeals) {
  proto::LogServer server;
  FeedTagged(server, "s", 3);
  ASSERT_TRUE(server.SealEpoch().has_value());
  proto::SyncRoots msg{server.EpochRoots()};
  const auto back = proto::ParseSyncRoots(proto::SerializeSyncRoots(msg));
  ASSERT_EQ(back.roots.size(), 1u);
  EXPECT_EQ(back.roots[0], msg.roots[0]);
}

TEST(RepairSyncMsgsTest, RecordsRoundTrip) {
  proto::SyncRecords msg;
  msg.first = 12;
  msg.records = {Bytes{1, 2, 3}, Bytes{}, Bytes{0xff}};
  const auto back = proto::ParseSyncRecords(proto::SerializeSyncRecords(msg));
  EXPECT_EQ(back.first, 12u);
  EXPECT_EQ(back.records, msg.records);
}

TEST(RepairSyncMsgsTest, ProofsRoundTrip) {
  proto::SyncProof msg;
  msg.proof.push_back(crypto::Sha256Digest(BytesOf("a")));
  msg.proof.push_back(crypto::Sha256Digest(BytesOf("b")));
  EXPECT_EQ(
      proto::ParseSyncInclusionProof(proto::SerializeSyncInclusionProof(msg))
          .proof,
      msg.proof);
  EXPECT_EQ(proto::ParseSyncConsistencyProof(
                proto::SerializeSyncConsistencyProof(msg))
                .proof,
            msg.proof);
}

TEST(RepairSyncMsgsTest, SealInfoRoundTrip) {
  proto::SyncSealInfo msg;
  msg.epoch = 2;
  msg.watermarks = {{"sink-a", 17}, {"sink-b", 4}};
  msg.keys.emplace_back("camera", Bytes{9, 9, 9});
  const auto back = proto::ParseSyncSealInfo(proto::SerializeSyncSealInfo(msg));
  EXPECT_EQ(back.epoch, 2u);
  EXPECT_EQ(back.watermarks, msg.watermarks);
  EXPECT_EQ(back.keys, msg.keys);
}

TEST(RepairSyncMsgsTest, WrongKindIsRejected) {
  const Bytes frame = proto::SerializeSyncGetRoots({0});
  EXPECT_THROW(proto::ParseSyncRoots(frame), wire::WireError);
  EXPECT_THROW(proto::ParseSyncGetRecords(frame), wire::WireError);
  EXPECT_THROW(proto::ParseSyncInclusionProof(frame), wire::WireError);
  EXPECT_THROW(proto::ParseSyncSealInfo(frame), wire::WireError);
}

TEST(RepairSyncMsgsTest, HostileDigestLengthIsRejected) {
  // An inclusion-proof frame whose "digest" is 3 bytes, not 32.
  wire::Writer w;
  w.PutU64(1, 9);  // kind = inclusion proof
  w.PutBytes(10, Bytes{1, 2, 3});
  const Bytes frame = std::move(w).Take();
  EXPECT_THROW(proto::ParseSyncInclusionProof(frame), wire::WireError);
}

TEST(RepairSyncMsgsTest, OversizedProofIsRejected) {
  proto::SyncProof msg;
  msg.proof.assign(257, crypto::Digest{});
  const Bytes frame = proto::SerializeSyncInclusionProof(msg);
  EXPECT_THROW(proto::ParseSyncInclusionProof(frame), wire::WireError);
}

TEST(RepairSyncMsgsTest, OversizedRecordBatchIsRejected) {
  proto::SyncRecords msg;
  msg.records.assign(proto::kMaxSyncRecordsPerBatch + 1, Bytes{1});
  const Bytes frame = proto::SerializeSyncRecords(msg);
  EXPECT_THROW(proto::ParseSyncRecords(frame), wire::WireError);
}

TEST(RepairSyncMsgsTest, HandleSyncRequestServesRootsRecordsAndProofs) {
  proto::LogServer server;
  FeedTagged(server, "s", 6);
  ASSERT_TRUE(server.SealEpoch().has_value());

  const auto roots_resp =
      proto::HandleSyncRequest(proto::SerializeSyncGetRoots({0}), server);
  ASSERT_TRUE(roots_resp.has_value());
  EXPECT_EQ(proto::ParseSyncRoots(*roots_resp).roots, server.EpochRoots());

  const auto records_resp = proto::HandleSyncRequest(
      proto::SerializeSyncGetRecords({2, 100}), server);
  ASSERT_TRUE(records_resp.has_value());
  const auto records = proto::ParseSyncRecords(*records_resp);
  EXPECT_EQ(records.first, 2u);
  EXPECT_EQ(records.records.size(), 4u);
  EXPECT_EQ(records.records, server.RecordRange(2, 100));

  const auto proof_resp =
      proto::HandleSyncRequest(proto::SerializeSyncGetProof({1, 6}), server);
  ASSERT_TRUE(proof_resp.has_value());
  EXPECT_EQ(proto::ParseSyncInclusionProof(*proof_resp).proof,
            server.InclusionProof(1, 6));

  const auto info_resp = proto::HandleSyncRequest(
      proto::SerializeSyncGetSealInfo({0}), server);
  ASSERT_TRUE(info_resp.has_value());
  const auto info = proto::ParseSyncSealInfo(*info_resp);
  EXPECT_EQ(info.watermarks, server.UploadWatermarksAtSeal(0));
}

TEST(RepairSyncMsgsTest, HandleSyncRequestIgnoresUploadFrames) {
  proto::LogServer server;
  EXPECT_FALSE(
      proto::HandleSyncRequest(proto::SerializeLogUpload(MakeEntry(1)), server)
          .has_value());
  EXPECT_FALSE(proto::HandleSyncRequest(proto::SerializeLogAck(3), server)
                   .has_value());
}

// --- Gap hold ----------------------------------------------------------------

TEST(RepairGapHoldTest, SeqSkipIsHeldNotApplied) {
  proto::LogServer server;
  EXPECT_EQ(server.NoteUploadSeqGapChecked("s", 1),
            proto::LogServer::UploadSeqOutcome::kFresh);
  EXPECT_EQ(server.NoteUploadSeqGapChecked("s", 1),
            proto::LogServer::UploadSeqOutcome::kDuplicate);
  // seq 3 skips seq 2: refused, watermark untouched.
  EXPECT_EQ(server.NoteUploadSeqGapChecked("s", 3),
            proto::LogServer::UploadSeqOutcome::kGap);
  EXPECT_EQ(server.UploadWatermark("s"), 1u);
  EXPECT_EQ(server.NoteUploadSeqGapChecked("s", 2),
            proto::LogServer::UploadSeqOutcome::kFresh);

  EXPECT_EQ(server.ApplyTaggedEntry("s", 9, MakeEntry(9)),
            proto::LogServer::UploadSeqOutcome::kGap);
  EXPECT_EQ(server.EntryCount(), 0u);  // the gapped entry was not appended
  EXPECT_EQ(server.ApplyTaggedEntry("s", 3, MakeEntry(3)),
            proto::LogServer::UploadSeqOutcome::kFresh);
  EXPECT_EQ(server.EntryCount(), 1u);
}

TEST(RepairGapHoldTest, ServerClosesConnectionOnGappedUpload) {
  proto::LogServer server;
  proto::LogServerService service(server, 0);
  auto channel = transport::TcpConnect(service.Port());

  ASSERT_TRUE(channel->Send(proto::SerializeLogUpload(MakeEntry(1), "s", 1)));
  auto ack = channel->Receive();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(proto::ParseLogAck(*ack), 1u);

  // seq 3 skips 2 (the uploader's spool evicted it): the server must hold
  // the frame, send NO ack, and close so the leg re-enters backoff instead
  // of forking this replica off the fleet's record order.
  ASSERT_TRUE(channel->Send(proto::SerializeLogUpload(MakeEntry(3), "s", 3)));
  EXPECT_FALSE(channel->Receive().has_value());
  EXPECT_EQ(server.EntryCount(), 1u);
  EXPECT_EQ(server.UploadWatermark("s"), 1u);
  service.Shutdown();
}

TEST(RepairGapHoldTest, GapHeldLegKeepsRetryingAndDeliversOnceGapIsFilled) {
  // Regression: the gap-hold close must not wedge the uploader. The sink's
  // flusher writes every spooled frame into the socket before the server's
  // close is observed; only the ack reader sees the EOF. It must retire the
  // channel and rewind the send cursor, or the leg parks forever waiting
  // for acks that can never come — and the replica silently never recovers
  // even after repair fills the gap.
  proto::LogServer server;
  proto::LogServerService service(server, 0);
  const std::uint16_t port = service.Port();
  std::atomic<bool> reachable{false};
  auto connector = [&]() -> transport::ChannelPtr {
    if (!reachable.load()) return nullptr;
    return transport::TryTcpConnect(
        port, transport::TcpConnectOptions{1, 200, 10, 50});
  };
  proto::ResilientLogSink::Options options;
  options.backoff = transport::BackoffPolicy{2, 50, 2.0, 0.25};
  options.connect = transport::TcpConnectOptions{1, 200, 10, 50};
  options.spool_capacity = 2;
  options.sink_id = "sink-a";
  proto::ResilientLogSink sink(connector, options);

  // Offline, the spool evicts seqs 1-4 unacked; only 5 and 6 survive.
  for (std::uint64_t i = 1; i <= 6; ++i) sink.AppendAcked(MakeEntry(i));
  EXPECT_EQ(sink.Stats().entries_evicted_unacked, 4u);

  // Online, the replay leads with seq 5 — a gap. The server holds it and
  // closes; the leg must cycle through reconnects, not park.
  reachable.store(true);
  EXPECT_TRUE(WaitFor([&] { return sink.Stats().reconnects >= 2; }));
  EXPECT_EQ(server.EntryCount(), 0u);

  // Repair fills the gap (as RepairAgent would, from a peer's sealed
  // range); the very next replay cycle applies 5 and 6 and gets acked.
  for (std::uint64_t i = 1; i <= 4; ++i) {
    EXPECT_EQ(server.ApplyTaggedEntry("sink-a", i, MakeEntry(i)),
              proto::LogServer::UploadSeqOutcome::kFresh);
  }
  EXPECT_TRUE(WaitFor([&] { return server.EntryCount() == 6; }));
  EXPECT_TRUE(sink.Drain(std::chrono::seconds(5)));
  EXPECT_EQ(sink.Stats().acked_seq, 6u);
  EXPECT_EQ(server.UploadWatermark("sink-a"), 6u);
  service.Shutdown();
}

// --- RepairAgent happy paths -------------------------------------------------

TEST(RepairAgentTest, EmptyReplicaConvergesToPeer) {
  proto::LogServer source;
  SeedSource(source, 8, 4);  // 2 epochs of 4
  source.RegisterKey("camera", proto::EpochSealKeys(1234).pub);

  proto::LogServer local;
  proto::RepairAgentOptions options = AgentOptions(source);
  options.peers.push_back(LoopbackRepairPeer(source));
  proto::RepairAgent agent(local, options);

  EXPECT_EQ(agent.RunOnce(), 8u);
  ExpectConverged(local, source);

  // The per-sink watermark resumed at the peer's sealed frontier, and the
  // per-seal snapshots match the peer's exactly.
  EXPECT_EQ(local.UploadWatermark("fleet-sink"), 8u);
  EXPECT_EQ(local.UploadWatermarksAtSeal(0), source.UploadWatermarksAtSeal(0));
  EXPECT_EQ(local.UploadWatermarksAtSeal(1), source.UploadWatermarksAtSeal(1));
  // The key registry rode along with the seal info.
  EXPECT_TRUE(local.Keys().Contains("camera"));

  const proto::RepairStats stats = agent.Stats();
  EXPECT_EQ(stats.epochs_repaired, 2u);
  EXPECT_EQ(stats.records_repaired, 8u);
  EXPECT_EQ(stats.rejects, 0u);
  EXPECT_GT(stats.bytes_repaired, 0u);
  EXPECT_TRUE(agent.Findings().empty());

  // A second round is a no-op: the peer is not ahead anymore.
  EXPECT_EQ(agent.RunOnce(), 0u);
  EXPECT_EQ(agent.Stats().epochs_repaired, 2u);
}

TEST(RepairAgentTest, PartialPrefixPassesConsistencyGate) {
  proto::LogServer source;
  SeedSource(source, 4, 4);

  // The local replica ingested the first epoch live, then died while the
  // source sealed two more.
  proto::LogServer local;
  FeedTagged(local, "fleet-sink", 4);
  ASSERT_TRUE(local.SealEpoch().has_value());
  SeedSource(source, 8, 4);  // extend source to 12 records, 3 epochs

  proto::RepairAgentOptions options = AgentOptions(source);
  options.peers.push_back(LoopbackRepairPeer(source));
  options.batch_records = 3;  // force multiple range fetches per epoch
  proto::RepairAgent agent(local, options);

  EXPECT_EQ(agent.RunOnce(), 8u);
  ExpectConverged(local, source);
  EXPECT_EQ(agent.Stats().epochs_repaired, 2u);
}

TEST(RepairAgentTest, AdoptsSealsForRecordsAlreadyHeld) {
  proto::LogServer source;
  SeedSource(source, 6, 3);

  // Same records (the replicated sink delivered them), but this replica
  // crashed before sealing: repair adopts the peer's seals without
  // fetching a single record.
  proto::LogServer local;
  FeedTagged(local, "fleet-sink", 6);

  proto::RepairAgentOptions options = AgentOptions(source);
  options.peers.push_back(LoopbackRepairPeer(source));
  proto::RepairAgent agent(local, options);

  EXPECT_EQ(agent.RunOnce(), 0u);  // no records moved...
  ExpectConverged(local, source);  // ...but the seal chains now match
  const proto::RepairStats stats = agent.Stats();
  EXPECT_EQ(stats.seals_adopted, 2u);
  EXPECT_EQ(stats.records_repaired, 0u);
}

TEST(RepairAgentTest, RepairsOverRealTcp) {
  proto::LogServer source;
  SeedSource(source, 8, 4);
  proto::LogServerService service(source, 0);

  proto::LogServer local;
  proto::RepairAgentOptions options = AgentOptions(source);
  options.peers.push_back(proto::TcpRepairPeer("peer-0", service.Port()));
  proto::RepairAgent agent(local, options);

  EXPECT_EQ(agent.RunOnce(), 8u);
  ExpectConverged(local, source);
  service.Shutdown();
}

TEST(RepairAgentTest, BackgroundThreadConvergesAndStops) {
  proto::LogServer source;
  SeedSource(source, 8, 4);

  proto::LogServer local;
  proto::RepairAgentOptions options = AgentOptions(source);
  options.peers.push_back(LoopbackRepairPeer(source));
  options.poll_interval_ms = 1;
  proto::RepairAgent agent(local, options);
  agent.Start();
  agent.Start();  // idempotent
  EXPECT_TRUE(WaitFor([&] { return local.EntryCount() == 8u; }));
  agent.Stop();
  ExpectConverged(local, source);
}

TEST(RepairAgentTest, UnreachablePeerIsCountedNotFatal) {
  proto::LogServer source;
  SeedSource(source, 4, 4);

  proto::LogServer local;
  proto::RepairAgentOptions options = AgentOptions(source);
  proto::RepairPeer dead;
  dead.name = "dead";
  dead.connect = []() -> std::unique_ptr<proto::PeerSync> { return nullptr; };
  options.peers.push_back(dead);
  options.peers.push_back(LoopbackRepairPeer(source));
  proto::RepairAgent agent(local, options);

  EXPECT_EQ(agent.RunOnce(), 4u);
  ExpectConverged(local, source);
  EXPECT_EQ(agent.Stats().peer_failures, 1u);
}

// --- Adversary matrix --------------------------------------------------------
//
// Every hostile peer wraps an honest source and corrupts exactly one step
// of the protocol. The agent must (a) reject with the DISTINCT finding for
// that corruption and (b) leave the local store byte-identical.

struct StoreSnapshot {
  std::size_t entries;
  crypto::Digest merkle;
  std::size_t seals;

  explicit StoreSnapshot(const proto::LogServer& s)
      : entries(s.EntryCount()),
        merkle(s.MerkleRoot()),
        seals(s.EpochRoots().size()) {}

  void ExpectUnchanged(const proto::LogServer& s) const {
    EXPECT_EQ(s.EntryCount(), entries);
    EXPECT_EQ(s.MerkleRoot(), merkle);
    EXPECT_EQ(s.EpochRoots().size(), seals);
  }
};

void ExpectSingleFinding(proto::RepairAgent& agent,
                         proto::RepairFinding finding) {
  const auto findings = agent.Findings();
  ASSERT_EQ(findings.size(), 1u)
      << "expected exactly one " << proto::RepairFindingName(finding)
      << " finding";
  EXPECT_EQ(findings[0].finding, finding)
      << "got " << proto::RepairFindingName(findings[0].finding) << " ("
      << findings[0].detail << ")";
  EXPECT_EQ(agent.Stats().rejects, 1u);
}

/// Serves only the first `horizon` records regardless of the sealed claim.
class TruncatingPeer final : public LoopbackPeer {
 public:
  TruncatingPeer(const proto::LogServer& server, std::uint64_t horizon)
      : LoopbackPeer(server), horizon_(horizon) {}
  std::optional<proto::SyncRecords> FetchRecords(std::uint64_t first,
                                                 std::uint64_t count) override {
    auto got = LoopbackPeer::FetchRecords(first, count);
    if (got && first + got->records.size() > horizon_) {
      got->records.resize(first < horizon_ ? horizon_ - first : 0);
    }
    return got;
  }

 private:
  const std::uint64_t horizon_;
};

/// Rewrites one record in flight (decodes, perturbs the payload,
/// re-encodes — still a valid LogEntry, wrong Merkle leaf).
class BitFlippingPeer final : public LoopbackPeer {
 public:
  BitFlippingPeer(const proto::LogServer& server, std::uint64_t victim)
      : LoopbackPeer(server), victim_(victim) {}
  std::optional<proto::SyncRecords> FetchRecords(std::uint64_t first,
                                                 std::uint64_t count) override {
    auto got = LoopbackPeer::FetchRecords(first, count);
    if (got && victim_ >= first && victim_ < first + got->records.size()) {
      proto::LogEntry entry =
          proto::DeserializeLogEntry(got->records[victim_ - first]);
      entry.data.push_back(0x5a);
      got->records[victim_ - first] = proto::SerializeLogEntry(entry);
    }
    return got;
  }

 private:
  const std::uint64_t victim_;
};

/// Replaces one record with bytes that do not decode at all.
class GarblingPeer final : public LoopbackPeer {
 public:
  GarblingPeer(const proto::LogServer& server, std::uint64_t victim)
      : LoopbackPeer(server), victim_(victim) {}
  std::optional<proto::SyncRecords> FetchRecords(std::uint64_t first,
                                                 std::uint64_t count) override {
    auto got = LoopbackPeer::FetchRecords(first, count);
    if (got && victim_ >= first && victim_ < first + got->records.size()) {
      got->records[victim_ - first] = Bytes{0xde, 0xad};
    }
    return got;
  }

 private:
  const std::uint64_t victim_;
};

/// Honest records, lying proof service: inclusion proofs are corrupted so
/// they verify against nothing.
class BadProofPeer final : public LoopbackPeer {
 public:
  explicit BadProofPeer(const proto::LogServer& server)
      : LoopbackPeer(server) {}
  std::optional<std::vector<crypto::Digest>> FetchInclusionProof(
      std::uint64_t index, std::uint64_t tree_size) override {
    auto proof = LoopbackPeer::FetchInclusionProof(index, tree_size);
    if (proof) {
      if (proof->empty()) {
        proof->push_back(crypto::Digest{});
      } else {
        (*proof)[0][0] ^= 0xff;
      }
    }
    return proof;
  }
};

/// Replays the full seal chain from epoch 0 no matter what frontier the
/// repairing replica asked to extend.
class StaleFrontierPeer final : public LoopbackPeer {
 public:
  explicit StaleFrontierPeer(const proto::LogServer& server)
      : LoopbackPeer(server) {}
  std::optional<std::vector<proto::EpochRoot>> FetchRootsSince(
      std::uint64_t /*since*/) override {
    return LoopbackPeer::FetchRootsSince(0);
  }
};

/// Breaks the internal hash link of the advertised chain (the second
/// fetched seal no longer links to the first — a spliced advertisement).
class ChainBreakingPeer final : public LoopbackPeer {
 public:
  explicit ChainBreakingPeer(const proto::LogServer& server)
      : LoopbackPeer(server) {}
  std::optional<std::vector<proto::EpochRoot>> FetchRootsSince(
      std::uint64_t since) override {
    auto roots = LoopbackPeer::FetchRootsSince(since);
    if (roots && roots->size() > 1) (*roots)[1].prev_root_hash[0] ^= 0xff;
    return roots;
  }
};

/// Corrupts the seal signature (the chain still links).
class ForgedSealPeer final : public LoopbackPeer {
 public:
  explicit ForgedSealPeer(const proto::LogServer& server)
      : LoopbackPeer(server) {}
  std::optional<std::vector<proto::EpochRoot>> FetchRootsSince(
      std::uint64_t since) override {
    auto roots = LoopbackPeer::FetchRootsSince(since);
    if (roots && !roots->empty() && !(*roots)[0].signature.empty()) {
      (*roots)[0].signature[0] ^= 0xff;
    }
    return roots;
  }
};

template <typename Peer, typename... Args>
proto::RepairPeer HostilePeer(std::string name, const proto::LogServer& source,
                              Args... args) {
  proto::RepairPeer peer;
  peer.name = std::move(name);
  peer.connect = [&source, args...]() -> std::unique_ptr<proto::PeerSync> {
    return std::make_unique<Peer>(source, args...);
  };
  return peer;
}

TEST(RepairAdversaryTest, TruncatedRangeRejected) {
  proto::LogServer source;
  SeedSource(source, 8, 8);
  proto::LogServer local;
  proto::RepairAgentOptions options = AgentOptions(source);
  options.peers.push_back(
      HostilePeer<TruncatingPeer>("truncator", source, std::uint64_t{5}));
  proto::RepairAgent agent(local, options);

  const StoreSnapshot before(local);
  EXPECT_EQ(agent.RunOnce(), 0u);
  ExpectSingleFinding(agent, proto::RepairFinding::kRangeTruncated);
  before.ExpectUnchanged(local);
}

TEST(RepairAdversaryTest, BitFlippedRecordRejected) {
  proto::LogServer source;
  SeedSource(source, 8, 8);
  proto::LogServer local;
  proto::RepairAgentOptions options = AgentOptions(source);
  options.peers.push_back(
      HostilePeer<BitFlippingPeer>("flipper", source, std::uint64_t{2}));
  proto::RepairAgent agent(local, options);

  const StoreSnapshot before(local);
  EXPECT_EQ(agent.RunOnce(), 0u);
  ExpectSingleFinding(agent, proto::RepairFinding::kRangeMismatch);
  before.ExpectUnchanged(local);
}

TEST(RepairAdversaryTest, UndecodableRecordRejected) {
  proto::LogServer source;
  SeedSource(source, 8, 8);
  proto::LogServer local;
  proto::RepairAgentOptions options = AgentOptions(source);
  options.peers.push_back(
      HostilePeer<GarblingPeer>("garbler", source, std::uint64_t{2}));
  proto::RepairAgent agent(local, options);

  const StoreSnapshot before(local);
  EXPECT_EQ(agent.RunOnce(), 0u);
  ExpectSingleFinding(agent, proto::RepairFinding::kRecordUndecodable);
  before.ExpectUnchanged(local);
}

TEST(RepairAdversaryTest, LyingProofServiceRejected) {
  proto::LogServer source;
  SeedSource(source, 8, 8);
  proto::LogServer local;
  proto::RepairAgentOptions options = AgentOptions(source);
  options.peers.push_back(HostilePeer<BadProofPeer>("proof-liar", source));
  proto::RepairAgent agent(local, options);

  const StoreSnapshot before(local);
  EXPECT_EQ(agent.RunOnce(), 0u);
  ExpectSingleFinding(agent, proto::RepairFinding::kProofInvalid);
  before.ExpectUnchanged(local);
}

TEST(RepairAdversaryTest, StaleFrontierRejected) {
  proto::LogServer source;
  SeedSource(source, 8, 4);

  // Local is already level with the source; the stale peer replays the
  // whole chain from epoch 0 as if it were news.
  proto::LogServer local;
  {
    proto::RepairAgentOptions honest = AgentOptions(source);
    honest.peers.push_back(LoopbackRepairPeer(source));
    proto::RepairAgent bootstrap(local, honest);
    ASSERT_EQ(bootstrap.RunOnce(), 8u);
  }

  proto::RepairAgentOptions options = AgentOptions(source);
  options.peers.push_back(HostilePeer<StaleFrontierPeer>("stale", source));
  proto::RepairAgent agent(local, options);

  const StoreSnapshot before(local);
  EXPECT_EQ(agent.RunOnce(), 0u);
  ExpectSingleFinding(agent, proto::RepairFinding::kStaleFrontier);
  before.ExpectUnchanged(local);
}

TEST(RepairAdversaryTest, BrokenChainLinkRejected) {
  proto::LogServer source;
  SeedSource(source, 8, 4);  // two epochs, so there is an internal link
  proto::LogServer local;
  proto::RepairAgentOptions options = AgentOptions(source);
  options.peers.push_back(HostilePeer<ChainBreakingPeer>("splicer", source));
  proto::RepairAgent agent(local, options);

  const StoreSnapshot before(local);
  EXPECT_EQ(agent.RunOnce(), 0u);
  ExpectSingleFinding(agent, proto::RepairFinding::kChainMismatch);
  before.ExpectUnchanged(local);
}

TEST(RepairAdversaryTest, ForgedSealSignatureRejected) {
  proto::LogServer source;
  SeedSource(source, 4, 4);
  proto::LogServer local;
  proto::RepairAgentOptions options = AgentOptions(source);
  options.peers.push_back(HostilePeer<ForgedSealPeer>("forger", source));
  proto::RepairAgent agent(local, options);

  const StoreSnapshot before(local);
  EXPECT_EQ(agent.RunOnce(), 0u);
  ExpectSingleFinding(agent, proto::RepairFinding::kBadSeal);
  before.ExpectUnchanged(local);
}

TEST(RepairAdversaryTest, ForkedHistoryRejectedByConsistencyGate) {
  // A fork: shares the first two records with the true history, then
  // diverges, seals, and tries to get a replica holding FOUR true records
  // to append its tail. The consistency gate must refuse before a single
  // record is fetched.
  proto::LogServer fork;
  FeedTagged(fork, "fleet-sink", 2);
  for (std::uint64_t seq = 3; seq <= 6; ++seq) {
    proto::LogEntry entry = MakeEntry(seq);
    entry.data = BytesOf("forked");
    ASSERT_EQ(fork.ApplyTaggedEntry("fleet-sink", seq, entry),
              proto::LogServer::UploadSeqOutcome::kFresh);
  }
  ASSERT_TRUE(fork.SealEpoch().has_value());

  proto::LogServer local;
  FeedTagged(local, "fleet-sink", 4);  // true history, no seals yet

  proto::RepairAgentOptions options = AgentOptions(fork);
  options.peers.push_back(LoopbackRepairPeer(fork));
  proto::RepairAgent agent(local, options);

  const StoreSnapshot before(local);
  EXPECT_EQ(agent.RunOnce(), 0u);
  ExpectSingleFinding(agent, proto::RepairFinding::kForkDetected);
  before.ExpectUnchanged(local);
}

TEST(RepairAdversaryTest, DivergentSealOverHeldRecordsRejected) {
  // The peer's seal covers exactly as many records as the local log holds,
  // but over DIFFERENT records: the adopt path must verify the root
  // against the local tree and refuse.
  proto::LogServer fork;
  for (std::uint64_t seq = 1; seq <= 4; ++seq) {
    proto::LogEntry entry = MakeEntry(seq);
    entry.data = BytesOf("forked");
    ASSERT_EQ(fork.ApplyTaggedEntry("fleet-sink", seq, entry),
              proto::LogServer::UploadSeqOutcome::kFresh);
  }
  ASSERT_TRUE(fork.SealEpoch().has_value());

  proto::LogServer local;
  FeedTagged(local, "fleet-sink", 4);

  proto::RepairAgentOptions options = AgentOptions(fork);
  options.peers.push_back(LoopbackRepairPeer(fork));
  proto::RepairAgent agent(local, options);

  const StoreSnapshot before(local);
  EXPECT_EQ(agent.RunOnce(), 0u);
  ExpectSingleFinding(agent, proto::RepairFinding::kForkDetected);
  before.ExpectUnchanged(local);
}

}  // namespace
}  // namespace adlp
