// LogTapQueue semantics and the backpressure regression: the log server's
// upload tap is the bounded handoff between ingestion and an online
// consumer, and a slow (or outright wedged) consumer must never be able to
// stall the data plane — publisher acknowledgements complete regardless of
// tap policy, because logging is out-of-band by design.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "adlp/log_server.h"
#include "adlp/log_tap.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace adlp {
namespace {

using test::MiniSystem;
using test::TestIdentity;
using test::WaitFor;

proto::TapEvent EntryEvent(std::uint64_t seq) {
  proto::TapEvent event;
  event.kind = proto::TapEvent::Kind::kEntry;
  event.entry.seq = seq;
  return event;
}

TEST(LogTapQueueTest, FifoOrderAndStats) {
  proto::LogTapQueue tap(8, proto::TapOverflowPolicy::kDropNewest);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(tap.Push(EntryEvent(i)));
  }
  EXPECT_EQ(tap.Depth(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    const auto event = tap.Pop(std::chrono::milliseconds(100));
    ASSERT_TRUE(event.has_value());
    EXPECT_EQ(event->entry.seq, i);
  }
  const proto::TapStats stats = tap.Stats();
  EXPECT_EQ(stats.pushed, 3u);
  EXPECT_EQ(stats.popped, 3u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.high_water, 3u);
  EXPECT_FALSE(tap.Pop(std::chrono::milliseconds(1)).has_value());
}

TEST(LogTapQueueTest, DropNewestOverflow) {
  proto::LogTapQueue tap(2, proto::TapOverflowPolicy::kDropNewest);
  EXPECT_TRUE(tap.Push(EntryEvent(0)));
  EXPECT_TRUE(tap.Push(EntryEvent(1)));
  EXPECT_FALSE(tap.Push(EntryEvent(2)));  // full: dropped, not blocked
  EXPECT_EQ(tap.Stats().dropped, 1u);
  EXPECT_EQ(tap.Pop(std::chrono::milliseconds(100))->entry.seq, 0u);
  EXPECT_EQ(tap.Pop(std::chrono::milliseconds(100))->entry.seq, 1u);
}

TEST(LogTapQueueTest, BlockPolicyWaitsForSpace) {
  proto::LogTapQueue tap(1, proto::TapOverflowPolicy::kBlock);
  EXPECT_TRUE(tap.Push(EntryEvent(0)));
  std::atomic<bool> second_pushed{false};
  std::thread pusher([&] {
    EXPECT_TRUE(tap.Push(EntryEvent(1)));
    second_pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());  // still blocked on the full queue
  EXPECT_EQ(tap.Pop(std::chrono::milliseconds(100))->entry.seq, 0u);
  EXPECT_TRUE(WaitFor([&] { return second_pushed.load(); }));
  pusher.join();
  EXPECT_EQ(tap.Pop(std::chrono::milliseconds(100))->entry.seq, 1u);
  EXPECT_EQ(tap.Stats().dropped, 0u);
}

TEST(LogTapQueueTest, CloseWakesBlockedPusherAndDrains) {
  proto::LogTapQueue tap(1, proto::TapOverflowPolicy::kBlock);
  EXPECT_TRUE(tap.Push(EntryEvent(0)));
  std::atomic<bool> push_returned{false};
  std::atomic<bool> push_result{true};
  std::thread pusher([&] {
    push_result = tap.Push(EntryEvent(1));
    push_returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  tap.Close();
  EXPECT_TRUE(WaitFor([&] { return push_returned.load(); }));
  pusher.join();
  EXPECT_FALSE(push_result.load());  // refused, not enqueued
  // Already-queued events survive the close; then the queue reports empty.
  EXPECT_EQ(tap.Pop(std::chrono::milliseconds(100))->entry.seq, 0u);
  EXPECT_FALSE(tap.Pop(std::chrono::milliseconds(100)).has_value());
}

TEST(LogTapQueueTest, ServerTapObservesUploadsInArrivalOrder) {
  proto::LogServer server;
  proto::LogTapQueue tap(64, proto::TapOverflowPolicy::kBlock);
  server.AttachTap(&tap);

  const proto::NodeIdentity& id = TestIdentity("tap-observe");
  server.RegisterKey(id.id, id.keys.pub);
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    proto::LogEntry entry;
    entry.component = id.id;
    entry.topic = "t";
    entry.seq = seq;
    server.Append(entry);
  }

  const auto key_event = tap.Pop(std::chrono::milliseconds(100));
  ASSERT_TRUE(key_event.has_value());
  EXPECT_EQ(key_event->kind, proto::TapEvent::Kind::kKey);
  EXPECT_EQ(key_event->component, id.id);
  ASSERT_TRUE(key_event->key.has_value());

  const std::vector<proto::LogEntry> stored = server.Entries();
  for (std::uint64_t i = 0; i < 3; ++i) {
    const auto event = tap.Pop(std::chrono::milliseconds(100));
    ASSERT_TRUE(event.has_value());
    EXPECT_EQ(event->kind, proto::TapEvent::Kind::kEntry);
    EXPECT_EQ(event->index, i);
    EXPECT_EQ(event->entry, stored[i]);  // tap order == Entries() order
  }
  server.AttachTap(nullptr);
  server.Append(proto::LogEntry{});
  EXPECT_EQ(tap.Depth(), 0u);  // detached: no further events
}

std::uint64_t CounterTotal(const obs::MetricsSnapshot& snap,
                           std::string_view name) {
  std::uint64_t total = 0;
  for (const auto& c : snap.counters) {
    if (c.name == name) total += c.value;
  }
  return total;
}

/// The regression the tap was built around: a consumer that never drains a
/// drop-policy tap costs dropped events, NOT data-plane progress. Every
/// publication is acknowledged and every entry reaches the logger while the
/// tap sits full the whole run.
TEST(LogTapBackpressureTest, WedgedDropPolicyConsumerCannotStallAcks) {
  obs::MetricsRegistry::Global().Reset();
  constexpr int kMessages = 6;

  proto::LogTapQueue tap(1, proto::TapOverflowPolicy::kDropNewest);
  MiniSystem sys;
  auto& camera = sys.Add("tap-camera");
  auto& detector = sys.Add("tap-detector");
  sys.server.AttachTap(&tap);

  std::atomic<int> got{0};
  detector.Subscribe("image", [&](const pubsub::Message&) { got++; });
  auto& publisher = camera.Advertise("image");
  for (int i = 0; i < kMessages; ++i) {
    publisher.Publish(Bytes{static_cast<std::uint8_t>(i)});
  }
  EXPECT_TRUE(WaitFor([&] { return got.load() == kMessages; }));
  EXPECT_TRUE(WaitFor(
      [&] { return sys.server.EntryCount() == 2u * kMessages; }));
  sys.ShutdownAll();

  // Acks all arrived, the logger stored everything, and the overflowing tap
  // was the only casualty.
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(CounterTotal(snap, "adlp_ack_received_total"),
            static_cast<std::uint64_t>(kMessages));
  EXPECT_GT(tap.Stats().dropped, 0u);
  sys.server.AttachTap(nullptr);
}

/// Same regression at the other policy extreme: a kBlock tap with a wedged
/// consumer freezes log *ingestion* (that is its contract), yet publisher
/// acknowledgements still complete — logging is asynchronous and spooled,
/// so the data plane never waits on the logger. Closing the tap releases
/// the ingestion path and every entry lands.
TEST(LogTapBackpressureTest, BlockedTapStallsIngestionButNeverAcks) {
  obs::MetricsRegistry::Global().Reset();
  constexpr int kMessages = 5;

  proto::LogTapQueue tap(1, proto::TapOverflowPolicy::kBlock);
  MiniSystem sys;
  auto& camera = sys.Add("bp-camera");
  auto& detector = sys.Add("bp-detector");
  // Attach after construction: key registrations happen at component
  // creation, and a capacity-1 blocking tap would wedge the second one.
  sys.server.AttachTap(&tap);

  std::atomic<int> got{0};
  detector.Subscribe("image", [&](const pubsub::Message&) { got++; });
  auto& publisher = camera.Advertise("image");
  for (int i = 0; i < kMessages; ++i) {
    publisher.Publish(Bytes{static_cast<std::uint8_t>(i)});
  }

  // Data plane completes while ingestion is blocked on the full tap.
  EXPECT_TRUE(WaitFor([&] { return got.load() == kMessages; }));
  EXPECT_TRUE(WaitFor([&] {
    return CounterTotal(obs::MetricsRegistry::Global().Snapshot(),
                        "adlp_ack_received_total") ==
           static_cast<std::uint64_t>(kMessages);
  }));

  // Release the tap; the ingestion backlog drains and nothing was lost.
  tap.Close();
  EXPECT_TRUE(WaitFor(
      [&] { return sys.server.EntryCount() == 2u * kMessages; }));
  sys.ShutdownAll();
  sys.server.AttachTap(nullptr);
}

}  // namespace
}  // namespace adlp
