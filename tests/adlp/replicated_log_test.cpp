// Quorum-commit semantics of ReplicatedLogSink over an in-process replica
// fleet: majority defaults, commit stalls below quorum, retransmission
// after a replica drop with exactly-once application, and per-replica
// watermark accounting.
#include "adlp/replicated_log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

#include "adlp/remote_log.h"
#include "test_util.h"
#include "transport/fault_inject.h"

namespace adlp::proto {
namespace {

using test::WaitFor;

LogEntry EntryWithSeq(std::uint64_t seq) {
  LogEntry e;
  e.component = "node";
  e.topic = "t";
  e.seq = seq;
  return e;
}

/// Per-leg options tuned for tests: tiny backoff so reconnects happen in ms.
ResilientLogSinkOptions FastLegOptions() {
  ResilientLogSinkOptions options;
  options.backoff = transport::BackoffPolicy{2, 50, 2.0, 0.25};
  options.connect = transport::TcpConnectOptions{1, 200, 10, 50};
  return options;
}

/// An in-process replica fleet: N independent LogServers, each behind its
/// own TCP service.
struct Fleet {
  explicit Fleet(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      servers.push_back(std::make_unique<LogServer>());
      services.push_back(std::make_unique<LogServerService>(*servers[i], 0));
    }
  }
  ~Fleet() {
    for (auto& s : services) {
      if (s) s->Shutdown();
    }
  }

  std::vector<ReplicatedLogSink::Connector> Connectors() const {
    std::vector<ReplicatedLogSink::Connector> out;
    for (const auto& s : services) {
      const std::uint16_t port = s->Port();
      out.push_back([port]() {
        return transport::TryTcpConnect(
            port, transport::TcpConnectOptions{1, 200, 10, 50});
      });
    }
    return out;
  }

  std::vector<std::unique_ptr<LogServer>> servers;
  std::vector<std::unique_ptr<LogServerService>> services;
};

TEST(ReplicatedLogSinkTest, EmptyFleetIsRejected) {
  // A zero-replica sink would "commit" every append while logging nothing;
  // the misconfiguration must be loud instead of silently evidence-free.
  EXPECT_THROW(ReplicatedLogSink({}, {}), std::invalid_argument);
}

TEST(ReplicatedLogSinkTest, QuorumDefaultsToMajorityAndClamps) {
  // Connectors that never connect: quorum math needs no live fleet.
  auto down = []() -> transport::ChannelPtr { return nullptr; };
  {
    ReplicatedLogSink sink({down, down, down},
                           {.replica = FastLegOptions()});
    EXPECT_EQ(sink.ReplicaCount(), 3u);
    EXPECT_EQ(sink.Quorum(), 2u);
  }
  {
    ReplicatedLogSink sink({down, down, down, down, down},
                           {.replica = FastLegOptions()});
    EXPECT_EQ(sink.Quorum(), 3u);
  }
  {
    ReplicatedLogSink sink({down, down, down},
                           {.quorum = 7, .replica = FastLegOptions()});
    EXPECT_EQ(sink.Quorum(), 3u) << "quorum larger than fleet clamps to N";
  }
}

TEST(ReplicatedLogSinkTest, CommitsOnFullFleetAndDeliversEverywhere) {
  Fleet fleet(3);
  ReplicatedLogSink sink(fleet.Connectors(), {.replica = FastLegOptions()});

  Rng rng(21);
  const auto kp = crypto::GenerateSigKeyPair(
      rng, crypto::SigAlgorithm::kRsaPkcs1Sha256, 256);
  sink.RegisterKey("node", kp.pub);
  for (std::uint64_t i = 0; i < 5; ++i) sink.Append(EntryWithSeq(i));

  ASSERT_TRUE(sink.DrainCommitted(std::chrono::seconds(5)));
  EXPECT_EQ(sink.LastSeq(), 6u);  // 1 key + 5 entries
  EXPECT_GE(sink.CommittedSeq(), 6u);

  // Quorum is 2 of 3, but with a healthy fleet every replica converges.
  for (auto& server : fleet.servers) {
    EXPECT_TRUE(WaitFor([&] { return server->EntryCount() == 5; }));
    EXPECT_TRUE(server->Keys().Contains("node"));
    EXPECT_TRUE(server->VerifyChain());
  }

  const ReplicatedSinkStats stats = sink.Stats();
  ASSERT_EQ(stats.replica_acked.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(WaitFor([&] { return sink.Stats().replica_acked[i] == 6; }))
        << "replica " << i << " must ack the full stream";
  }
}

TEST(ReplicatedLogSinkTest, CommitStallsBelowQuorumThenRecovers) {
  Fleet fleet(3);
  // Replicas 1 and 2 are unreachable until flipped up.
  std::atomic<bool> up1{false};
  std::atomic<bool> up2{false};
  auto base = fleet.Connectors();
  std::vector<ReplicatedLogSink::Connector> connectors;
  connectors.push_back(base[0]);
  connectors.push_back([&, c = base[1]]() -> transport::ChannelPtr {
    return up1.load() ? c() : nullptr;
  });
  connectors.push_back([&, c = base[2]]() -> transport::ChannelPtr {
    return up2.load() ? c() : nullptr;
  });
  ReplicatedLogSink sink(std::move(connectors),
                         {.replica = FastLegOptions()});

  for (std::uint64_t i = 0; i < 3; ++i) sink.Append(EntryWithSeq(i));

  // One ack of three is below the write quorum of two: nothing commits,
  // even though replica 0 has durably ingested everything.
  ASSERT_TRUE(
      WaitFor([&] { return fleet.servers[0]->EntryCount() == 3; }));
  EXPECT_FALSE(sink.WaitCommitted(3, std::chrono::milliseconds(200)));
  EXPECT_EQ(sink.CommittedSeq(), 0u);

  // A second replica coming up completes the quorum.
  up1.store(true);
  EXPECT_TRUE(sink.DrainCommitted(std::chrono::seconds(5)));
  EXPECT_EQ(sink.CommittedSeq(), 3u);
  EXPECT_TRUE(WaitFor([&] { return fleet.servers[1]->EntryCount() == 3; }));
  EXPECT_EQ(fleet.servers[2]->EntryCount(), 0u);
}

TEST(ReplicatedLogSinkTest, ReplicaDropRetransmitsExactlyOnce) {
  Fleet fleet(3);
  // Replica 2's first connection dies after 3 frames; the leg reconnects
  // and retransmits every unacked frame. The server-side per-sink seq
  // watermark must collapse the overlap to exactly-once application.
  auto base = fleet.Connectors();
  std::atomic<int> connections{0};
  std::vector<ReplicatedLogSink::Connector> connectors;
  connectors.push_back(base[0]);
  connectors.push_back(base[1]);
  connectors.push_back([&, c = base[2]]() -> transport::ChannelPtr {
    auto inner = c();
    if (!inner) return nullptr;
    transport::FaultPlan plan;
    if (connections.fetch_add(1) == 0) plan.disconnect_after_frames = 3;
    return transport::WrapWithFaults(std::move(inner), plan, Rng(7));
  });
  // Quorum of 3: DrainCommitted below proves even the faulty replica
  // acknowledged the entire stream.
  ReplicatedLogSink sink(std::move(connectors),
                         {.quorum = 3, .replica = FastLegOptions()});

  Rng rng(22);
  const auto kp = crypto::GenerateSigKeyPair(
      rng, crypto::SigAlgorithm::kRsaPkcs1Sha256, 256);
  sink.RegisterKey("node", kp.pub);
  for (std::uint64_t i = 0; i < 10; ++i) sink.Append(EntryWithSeq(i));

  ASSERT_TRUE(sink.DrainCommitted(std::chrono::seconds(5)));
  for (std::size_t r = 0; r < 3; ++r) {
    ASSERT_EQ(fleet.servers[r]->EntryCount(), 10u)
        << "replica " << r << ": retransmission must not duplicate entries";
    const auto entries = fleet.servers[r]->Entries();
    for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(entries[i].seq, i);
    EXPECT_TRUE(fleet.servers[r]->VerifyChain());
    EXPECT_TRUE(fleet.servers[r]->Keys().Contains("node"));
  }
  EXPECT_GE(sink.ReplicaStats(2).reconnects, 1u);
  EXPECT_EQ(sink.ReplicaStats(2).acked_seq, 11u);
}

TEST(ReplicatedLogSinkTest, ReconnectMustNotReplayUnackedKeyAheadOfEntries) {
  // Regression: a key registered AFTER unacked entries gets a higher seq.
  // If a reconnect re-sent that key frame ahead of the spool replay, the
  // server's per-sink watermark would jump past the unacked entries and the
  // cumulative ack would release them from the spool unapplied — silent
  // log-entry loss that later reads as replica divergence.
  Fleet fleet(1);
  LogServer& server = *fleet.servers[0];
  const std::uint16_t port = fleet.services[0]->Port();
  std::atomic<int> connections{0};
  ResilientLogSink::Connector connector = [&]() -> transport::ChannelPtr {
    auto inner = transport::TryTcpConnect(
        port, transport::TcpConnectOptions{1, 200, 10, 50});
    if (!inner) return nullptr;
    if (connections.fetch_add(1) == 0) {
      // Connection 1 dies after forwarding one frame: entry seq 1 reaches
      // the server; entry seq 2 and the key (seq 3) stay spooled unacked.
      transport::FaultPlan plan;
      plan.disconnect_after_frames = 1;
      return transport::WrapWithFaults(std::move(inner), plan, Rng(7));
    }
    return inner;
  };
  ResilientLogSinkOptions options = FastLegOptions();
  options.sink_id = "sink-a";
  ResilientLogSink sink(connector, options);

  EXPECT_EQ(sink.AppendAcked(EntryWithSeq(0)), 1u);
  EXPECT_EQ(sink.AppendAcked(EntryWithSeq(1)), 2u);
  Rng rng(23);
  const auto kp = crypto::GenerateSigKeyPair(
      rng, crypto::SigAlgorithm::kRsaPkcs1Sha256, 256);
  EXPECT_EQ(sink.RegisterKeyAcked("node", kp.pub), 3u);

  // Acked-mode Drain == everything acknowledged by the server.
  ASSERT_TRUE(sink.Drain(std::chrono::seconds(5)));
  ASSERT_EQ(server.EntryCount(), 2u)
      << "reconnect replay lost an unacked entry below the key's seq";
  const auto entries = server.Entries();
  EXPECT_EQ(entries[0].seq, 0u);
  EXPECT_EQ(entries[1].seq, 1u);
  EXPECT_TRUE(server.Keys().Contains("node"));
  EXPECT_TRUE(server.VerifyChain());
  EXPECT_EQ(sink.Stats().acked_seq, 3u);
  EXPECT_GE(sink.Stats().reconnects, 1u);
}

TEST(ReplicatedLogSinkTest, SingleReplicaDegeneratesToAckedSink) {
  Fleet fleet(1);
  ReplicatedLogSink sink(fleet.Connectors(), {.replica = FastLegOptions()});
  EXPECT_EQ(sink.Quorum(), 1u);
  for (std::uint64_t i = 0; i < 4; ++i) sink.Append(EntryWithSeq(i));
  EXPECT_TRUE(sink.DrainCommitted(std::chrono::seconds(5)));
  EXPECT_EQ(fleet.servers[0]->EntryCount(), 4u);
  EXPECT_EQ(sink.CommittedSeq(), 4u);
}

}  // namespace
}  // namespace adlp::proto
