#include "adlp/logging_thread.h"

#include <gtest/gtest.h>

#include <thread>

#include "adlp/log_server.h"

namespace adlp::proto {
namespace {

LogEntry MakeEntry(std::uint64_t seq) {
  LogEntry e;
  e.component = "node";
  e.topic = "t";
  e.seq = seq;
  return e;
}

TEST(LoggingThreadTest, EntriesReachSink) {
  LogServer server;
  LoggingThread thread("node", server);
  for (int i = 0; i < 10; ++i) thread.Enter(MakeEntry(i));
  thread.Flush();
  EXPECT_EQ(server.EntryCount(), 10u);
  EXPECT_EQ(thread.EnteredCount(), 10u);
}

TEST(LoggingThreadTest, FlushOnEmptyQueueReturns) {
  LogServer server;
  LoggingThread thread("node", server);
  thread.Flush();  // no entries: must not hang
  EXPECT_EQ(server.EntryCount(), 0u);
}

TEST(LoggingThreadTest, OrderPreserved) {
  LogServer server;
  LoggingThread thread("node", server);
  for (int i = 0; i < 100; ++i) thread.Enter(MakeEntry(i));
  thread.Flush();
  const auto entries = server.Entries();
  ASSERT_EQ(entries.size(), 100u);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].seq, i);
  }
}

TEST(LoggingThreadTest, StopDrainsPendingEntries) {
  LogServer server;
  {
    LoggingThread thread("node", server);
    for (int i = 0; i < 50; ++i) thread.Enter(MakeEntry(i));
    // Destructor stops after draining.
  }
  EXPECT_EQ(server.EntryCount(), 50u);
}

TEST(LoggingThreadTest, EnterAfterStopIsNoOp) {
  LogServer server;
  LoggingThread thread("node", server);
  thread.Stop();
  thread.Enter(MakeEntry(1));
  thread.Flush();
  EXPECT_EQ(server.EntryCount(), 0u);
}

TEST(LoggingThreadTest, ConcurrentProducers) {
  LogServer server;
  LoggingThread thread("node", server);
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&thread] {
      for (int i = 0; i < 250; ++i) thread.Enter(MakeEntry(i));
    });
  }
  for (auto& p : producers) p.join();
  thread.Flush();
  EXPECT_EQ(server.EntryCount(), 1000u);
}

}  // namespace
}  // namespace adlp::proto
