#include "adlp/log_server.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/rng.h"

namespace adlp::proto {
namespace {

LogEntry MakeEntry(const std::string& component, std::uint64_t seq) {
  LogEntry e;
  e.scheme = LogScheme::kAdlp;
  e.component = component;
  e.topic = "t";
  e.seq = seq;
  e.data = {1, 2, 3};
  return e;
}

TEST(LogServerTest, AppendAndQuery) {
  LogServer server;
  server.Append(MakeEntry("a", 1));
  server.Append(MakeEntry("b", 2));
  server.Append(MakeEntry("a", 3));

  EXPECT_EQ(server.EntryCount(), 3u);
  EXPECT_EQ(server.Entries().size(), 3u);
  EXPECT_EQ(server.EntriesFor("a").size(), 2u);
  EXPECT_EQ(server.EntriesFor("b").size(), 1u);
  EXPECT_TRUE(server.EntriesFor("c").empty());
}

TEST(LogServerTest, ByteAccounting) {
  LogServer server;
  const LogEntry e = MakeEntry("a", 1);
  const std::size_t record_size = SerializeLogEntry(e).size();
  server.Append(e);
  server.Append(e);
  EXPECT_EQ(server.TotalBytes(), 2 * record_size);
  EXPECT_EQ(server.BytesFor("a"), 2 * record_size);
  EXPECT_EQ(server.BytesFor("b"), 0u);
}

TEST(LogServerTest, ChainVerifiesWhenUntampered) {
  LogServer server;
  for (int i = 0; i < 10; ++i) server.Append(MakeEntry("a", i));
  EXPECT_TRUE(server.VerifyChain());
}

TEST(LogServerTest, TamperDetected) {
  LogServer server;
  for (int i = 0; i < 10; ++i) server.Append(MakeEntry("a", i));
  ASSERT_TRUE(server.CorruptRecordForTest(4));
  EXPECT_FALSE(server.VerifyChain());
}

TEST(LogServerTest, CorruptOutOfRangeFails) {
  LogServer server;
  EXPECT_FALSE(server.CorruptRecordForTest(0));
}

TEST(LogServerTest, ChainHeadAdvances) {
  LogServer server;
  const auto h0 = server.ChainHead();
  server.Append(MakeEntry("a", 1));
  const auto h1 = server.ChainHead();
  EXPECT_NE(h0, h1);
  server.Append(MakeEntry("a", 2));
  EXPECT_NE(server.ChainHead(), h1);
}

TEST(LogServerTest, KeyRegistration) {
  LogServer server;
  Rng rng(1);
  const auto kp = crypto::GenerateSigKeyPair(rng, crypto::SigAlgorithm::kRsaPkcs1Sha256, 256);
  server.RegisterKey("camera", kp.pub);
  EXPECT_TRUE(server.Keys().Contains("camera"));
  EXPECT_EQ(server.Keys().Find("camera"), kp.pub);
}

TEST(LogServerTest, SerializedRecordsMatchEntries) {
  LogServer server;
  const LogEntry e = MakeEntry("a", 1);
  server.Append(e);
  const auto records = server.SerializedRecords();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(DeserializeLogEntry(records[0]), e);
}

TEST(LogServerTest, ConcurrentAppendsAllStored) {
  LogServer server;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&server, t] {
      for (int i = 0; i < 100; ++i) {
        server.Append(MakeEntry("c" + std::to_string(t), i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(server.EntryCount(), 800u);
  EXPECT_TRUE(server.VerifyChain());
}

}  // namespace
}  // namespace adlp::proto
