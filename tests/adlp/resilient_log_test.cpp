// Failure-mode coverage for ResilientLogSink, driven deterministically
// through FaultInjectingChannel: logger dead at startup, logger dying
// mid-stream, spool overflow accounting, and reconnect-then-replay ordering.
#include "adlp/resilient_log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "adlp/remote_log.h"
#include "test_util.h"
#include "transport/fault_inject.h"

namespace adlp::proto {
namespace {

using test::WaitFor;

LogEntry EntryWithSeq(std::uint64_t seq) {
  LogEntry e;
  e.component = "node";
  e.topic = "t";
  e.seq = seq;
  return e;
}

/// Options tuned for tests: tiny backoff so reconnects happen in ms.
ResilientLogSink::Options FastSinkOptions() {
  ResilientLogSink::Options options;
  options.backoff = transport::BackoffPolicy{2, 50, 2.0, 0.25};
  options.connect = transport::TcpConnectOptions{1, 200, 10, 50};
  return options;
}

/// A port that was just free (listener bound then closed). Racy in theory,
/// fine for loopback tests.
std::uint16_t FreePort() {
  transport::TcpListener probe(0);
  return probe.Port();
}

TEST(ResilientLogSinkTest, LoggerDeadAtStartupSpoolsThenDelivers) {
  const std::uint16_t port = FreePort();
  ResilientLogSink sink(port, FastSinkOptions());  // nothing listening yet

  Rng rng(11);
  const auto kp = crypto::GenerateSigKeyPair(
      rng, crypto::SigAlgorithm::kRsaPkcs1Sha256, 256);
  sink.RegisterKey("node", kp.pub);
  for (std::uint64_t i = 0; i < 3; ++i) sink.Append(EntryWithSeq(i));

  // Never blocks, never throws; frames wait in the spool.
  EXPECT_TRUE(WaitFor([&] { return sink.Stats().connect_failures >= 1; }));
  EXPECT_FALSE(sink.Connected());
  EXPECT_EQ(sink.Stats().entries_sent, 0u);

  // Logger comes up late: everything is delivered.
  LogServer server;
  LogServerService service(server, port);
  EXPECT_TRUE(WaitFor([&] { return server.EntryCount() == 3; }));
  EXPECT_TRUE(server.Keys().Contains("node"));
  EXPECT_TRUE(sink.Drain(std::chrono::seconds(5)));
  EXPECT_EQ(sink.Stats().entries_dropped, 0u);
  service.Shutdown();
}

TEST(ResilientLogSinkTest, LoggerDyingMidStreamReplaysInOrder) {
  LogServer server;
  auto service = std::make_unique<LogServerService>(server, 0);
  const std::uint16_t port = service->Port();

  // First connection hard-disconnects after 5 frames; later connections are
  // clean. This makes "the logger died under us" deterministic: the 6th
  // frame fails cleanly instead of racing TCP buffers.
  std::atomic<int> connections{0};
  auto connector = [&]() -> transport::ChannelPtr {
    auto inner = transport::TryTcpConnect(
        port, transport::TcpConnectOptions{1, 200, 10, 50});
    if (!inner) return nullptr;
    transport::FaultPlan plan;
    if (connections.fetch_add(1) == 0) plan.disconnect_after_frames = 5;
    return transport::WrapWithFaults(std::move(inner), plan, Rng(99));
  };
  ResilientLogSink sink(connector, FastSinkOptions());

  for (std::uint64_t i = 0; i < 5; ++i) sink.Append(EntryWithSeq(i));
  ASSERT_TRUE(WaitFor([&] { return server.EntryCount() == 5; }));

  // Kill the logger, then log while it is down.
  service->Shutdown();
  service.reset();
  for (std::uint64_t i = 5; i < 10; ++i) sink.Append(EntryWithSeq(i));
  EXPECT_TRUE(WaitFor([&] { return !sink.Connected(); }));

  // Restart on the same port: the sink reconnects and replays the spool.
  service = std::make_unique<LogServerService>(server, port);
  EXPECT_TRUE(WaitFor([&] { return server.EntryCount() == 10; }));

  const auto entries = server.Entries();
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(entries[i].seq, i) << "replay must preserve order";
  }
  const SinkStats stats = sink.Stats();
  EXPECT_GE(stats.reconnects, 1u);
  EXPECT_EQ(stats.entries_dropped, 0u);
  EXPECT_TRUE(server.VerifyChain());
  service->Shutdown();
}

TEST(ResilientLogSinkTest, SpoolOverflowDropsOldestAndCounts) {
  // Connector fails until the flag flips: everything spools meanwhile.
  LogServer server;
  auto service = std::make_unique<LogServerService>(server, 0);
  const std::uint16_t port = service->Port();
  std::atomic<bool> reachable{false};
  auto connector = [&]() -> transport::ChannelPtr {
    if (!reachable.load()) return nullptr;
    return transport::TryTcpConnect(
        port, transport::TcpConnectOptions{1, 200, 10, 50});
  };
  ResilientLogSink::Options options = FastSinkOptions();
  options.spool_capacity = 4;
  ResilientLogSink sink(connector, options);

  for (std::uint64_t i = 0; i < 10; ++i) sink.Append(EntryWithSeq(i));
  EXPECT_TRUE(WaitFor([&] { return sink.Stats().entries_dropped == 6; }));
  EXPECT_EQ(sink.Stats().entries_spooled, 4u);
  EXPECT_EQ(sink.Stats().spool_high_water, 4u);

  // Once the logger is reachable, the *newest* 4 entries survive — the
  // oldest-drop policy favours recency.
  reachable.store(true);
  EXPECT_TRUE(WaitFor([&] { return server.EntryCount() == 4; }));
  const auto entries = server.Entries();
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(entries[i].seq, i + 6);

  // Legacy (unacked) mode: an evicted frame was never going to be
  // retransmitted anyway, so the unacked-eviction counter stays zero.
  EXPECT_EQ(sink.Stats().entries_evicted_unacked, 0u);
  service->Shutdown();
}

TEST(ResilientLogSinkTest, AckedModeSurfacesEvictedUnackedFrames) {
  // Regression: an acked-mode spool overflow silently discarded frames the
  // server had NOT acknowledged — past the spool horizon no retransmission
  // can ever deliver them, which is exactly the condition anti-entropy
  // repair exists for, yet SinkStats gave operators no way to see it.
  auto connector = []() -> transport::ChannelPtr { return nullptr; };
  ResilientLogSink::Options options = FastSinkOptions();
  options.spool_capacity = 4;
  options.sink_id = "sink-a";
  ResilientLogSink sink(connector, options);

  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_GT(sink.AppendAcked(EntryWithSeq(i)), 0u);
  }
  const SinkStats stats = sink.Stats();
  EXPECT_EQ(stats.entries_dropped, 6u);
  // Nothing was ever acked, so every eviction lost an unacked frame.
  EXPECT_EQ(stats.entries_evicted_unacked, 6u);
  EXPECT_EQ(stats.acked_seq, 0u);
}

TEST(ResilientLogSinkTest, KeysReRegisteredOnFreshLoggerState) {
  // The restarted logger has EMPTY state (new LogServer): only the sink's
  // key re-registration makes the replayed entries auditable.
  auto first_server = std::make_unique<LogServer>();
  auto service = std::make_unique<LogServerService>(*first_server, 0);
  const std::uint16_t port = service->Port();

  std::atomic<int> connections{0};
  auto connector = [&]() -> transport::ChannelPtr {
    auto inner = transport::TryTcpConnect(
        port, transport::TcpConnectOptions{1, 200, 10, 50});
    if (!inner) return nullptr;
    transport::FaultPlan plan;
    if (connections.fetch_add(1) == 0) plan.disconnect_after_frames = 3;
    return transport::WrapWithFaults(std::move(inner), plan, Rng(5));
  };
  ResilientLogSink sink(connector, FastSinkOptions());

  Rng rng(12);
  const auto kp = crypto::GenerateSigKeyPair(
      rng, crypto::SigAlgorithm::kRsaPkcs1Sha256, 256);
  sink.RegisterKey("node", kp.pub);
  sink.Append(EntryWithSeq(0));
  sink.Append(EntryWithSeq(1));
  ASSERT_TRUE(WaitFor([&] { return first_server->EntryCount() == 2; }));

  service->Shutdown();
  service.reset();
  sink.Append(EntryWithSeq(2));  // trips the fault disconnect, then spools
  EXPECT_TRUE(WaitFor([&] { return !sink.Connected(); }));

  LogServer fresh_server;
  service = std::make_unique<LogServerService>(fresh_server, port);
  EXPECT_TRUE(WaitFor([&] { return fresh_server.EntryCount() == 1; }));
  EXPECT_TRUE(fresh_server.Keys().Contains("node"))
      << "keys must be re-registered on every reconnect";
  EXPECT_EQ(fresh_server.Keys().Find("node"), kp.pub);
  service->Shutdown();
}

TEST(ResilientLogSinkTest, StatsCountSends) {
  LogServer server;
  LogServerService service(server, 0);
  ResilientLogSink sink(service.Port(), FastSinkOptions());
  Rng rng(13);
  const auto kp = crypto::GenerateSigKeyPair(
      rng, crypto::SigAlgorithm::kRsaPkcs1Sha256, 256);
  sink.RegisterKey("node", kp.pub);
  for (std::uint64_t i = 0; i < 8; ++i) sink.Append(EntryWithSeq(i));
  ASSERT_TRUE(sink.Drain(std::chrono::seconds(5)));
  const SinkStats stats = sink.Stats();
  EXPECT_EQ(stats.entries_sent, 9u);  // 1 key + 8 entries
  EXPECT_EQ(stats.entries_spooled, 0u);
  EXPECT_EQ(stats.entries_dropped, 0u);
  EXPECT_EQ(stats.reconnects, 0u);
  EXPECT_TRUE(WaitFor([&] { return server.EntryCount() == 8; }));
  service.Shutdown();
}

TEST(LogServerServiceTest, ReapsFinishedConnections) {
  LogServer server;
  LogServerService service(server, 0);
  // Churn: connect, upload one frame, disconnect.
  for (int i = 0; i < 8; ++i) {
    auto channel = transport::TcpConnect(service.Port());
    ASSERT_TRUE(channel->Send(SerializeLogUpload(EntryWithSeq(i))));
    channel->Close();
  }
  EXPECT_TRUE(WaitFor([&] { return server.EntryCount() == 8; }));
  // Dead connections are pruned; the tracked set does not grow with
  // lifetime accept count.
  EXPECT_TRUE(WaitFor([&] { return service.ActiveConnections() == 0; }));
  service.Shutdown();
}

}  // namespace
}  // namespace adlp::proto
