#include "adlp/protocols.h"

#include <gtest/gtest.h>

#include "adlp/wire_msgs.h"
#include "crypto/pkcs1.h"
#include "test_util.h"

namespace adlp::proto {
namespace {

using test::TestIdentity;

/// LogPipe capturing entries synchronously.
class CapturePipe final : public LogPipe {
 public:
  void Enter(LogEntry entry) override {
    std::lock_guard lock(mu_);
    entries_.push_back(std::move(entry));
  }

  std::vector<LogEntry> entries() const {
    std::lock_guard lock(mu_);
    return entries_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<LogEntry> entries_;
};

pubsub::Message SampleMessage(std::uint64_t seq = 1) {
  pubsub::Message msg;
  msg.header.topic = "image";
  msg.header.publisher = "pub";
  msg.header.seq = seq;
  msg.header.stamp = 100;
  msg.payload = {1, 2, 3, 4};
  return msg;
}

// --- NoLogging ---------------------------------------------------------------

TEST(NoLoggingFactoryTest, EncodesPlainMessageAndNoAck) {
  NoLoggingFactory factory;
  auto enc = factory.Encode(SampleMessage());
  EXPECT_TRUE(enc->signature.empty());
  EXPECT_EQ(pubsub::DeserializeMessage(enc->wire), enc->message);

  auto pub_link = factory.MakePublisherLink("image", "sub");
  EXPECT_FALSE(pub_link->ExpectsAck());

  auto sub_link = factory.MakeSubscriberLink("image", "pub");
  auto result = sub_link->OnMessage(enc->wire);
  ASSERT_TRUE(result.deliver.has_value());
  EXPECT_FALSE(result.reply.has_value());
  EXPECT_EQ(*result.deliver, enc->message);
}

// --- BaseLogging ---------------------------------------------------------------

TEST(BaseLoggingFactoryTest, PublisherLogsAtEncodeTime) {
  CapturePipe pipe;
  SimClock clock(1000);
  BaseLoggingFactory factory("pub", pipe, clock);
  auto enc = factory.Encode(SampleMessage());
  (void)enc;

  const auto entries = pipe.entries();
  ASSERT_EQ(entries.size(), 1u);
  const LogEntry& e = entries[0];
  EXPECT_EQ(e.scheme, LogScheme::kBase);
  EXPECT_EQ(e.component, "pub");
  EXPECT_EQ(e.direction, Direction::kOut);
  EXPECT_EQ(e.seq, 1u);
  EXPECT_EQ(e.data, (Bytes{1, 2, 3, 4}));
  EXPECT_TRUE(e.self_signature.empty());  // naive scheme: no crypto
}

TEST(BaseLoggingFactoryTest, SubscriberLogsOnReceive) {
  CapturePipe pub_pipe, sub_pipe;
  SimClock clock(1000);
  BaseLoggingFactory pub_factory("pub", pub_pipe, clock);
  BaseLoggingFactory sub_factory("sub", sub_pipe, clock);

  auto enc = pub_factory.Encode(SampleMessage());
  auto link = sub_factory.MakeSubscriberLink("image", "pub");
  auto result = link->OnMessage(enc->wire);
  ASSERT_TRUE(result.deliver.has_value());
  EXPECT_FALSE(result.reply.has_value());  // no ACK in the naive scheme

  const auto entries = sub_pipe.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].direction, Direction::kIn);
  EXPECT_EQ(entries[0].data, (Bytes{1, 2, 3, 4}));
  EXPECT_EQ(entries[0].peer, "pub");
}

TEST(BaseLoggingFactoryTest, SubscriberHashOptionStoresDigest) {
  CapturePipe pipe;
  SimClock clock;
  BaseLoggingOptions options;
  options.subscriber_stores_data = false;
  BaseLoggingFactory factory("sub", pipe, clock, options);
  NoLoggingFactory plain;
  auto enc = plain.Encode(SampleMessage());
  factory.MakeSubscriberLink("image", "pub")->OnMessage(enc->wire);
  const auto entries = pipe.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_TRUE(entries[0].data.empty());
  EXPECT_EQ(entries[0].data_hash.size(), crypto::kSha256DigestSize);
}

// --- ADLP -------------------------------------------------------------------

struct AdlpHarness {
  std::shared_ptr<const NodeIdentity> pub_identity =
      std::make_shared<NodeIdentity>(TestIdentity("pub"));
  std::shared_ptr<const NodeIdentity> sub_identity =
      std::make_shared<NodeIdentity>(TestIdentity("sub"));
  CapturePipe pub_pipe, sub_pipe;
  SimClock clock{1000};
  AdlpFactory pub_factory;
  AdlpFactory sub_factory;

  explicit AdlpHarness(AdlpOptions options = {})
      : pub_factory(pub_identity, pub_pipe, clock, options),
        sub_factory(sub_identity, sub_pipe, clock, options) {}

  /// Runs one full exchange; returns (publisher entries, subscriber entries).
  void Exchange(const pubsub::Message& msg) {
    auto enc = pub_factory.Encode(msg);
    auto sub_link = sub_factory.MakeSubscriberLink(msg.header.topic, "pub");
    auto result = sub_link->OnMessage(enc->wire);
    ASSERT_TRUE(result.reply.has_value());
    auto pub_link = pub_factory.MakePublisherLink(msg.header.topic, "sub");
    EXPECT_TRUE(pub_link->ExpectsAck());
    pub_link->OnAck(*enc, *result.reply);
  }
};

TEST(AdlpFactoryTest, EncodeAttachesValidSignature) {
  AdlpHarness h;
  const pubsub::Message msg = SampleMessage();
  auto enc = h.pub_factory.Encode(msg);
  ASSERT_FALSE(enc->signature.empty());
  const auto digest = pubsub::MessageDigest(msg.header, msg.payload);
  EXPECT_TRUE(crypto::VerifyDigest(h.pub_identity->keys.pub, digest,
                                  enc->signature));
  // Wire carries the same signature.
  EXPECT_EQ(ParseDataMessage(enc->wire).signature, enc->signature);
}

TEST(AdlpFactoryTest, FullExchangeProducesInterlockedEntries) {
  AdlpHarness h;
  const pubsub::Message msg = SampleMessage();
  h.Exchange(msg);

  const auto pub_entries = h.pub_pipe.entries();
  const auto sub_entries = h.sub_pipe.entries();
  ASSERT_EQ(pub_entries.size(), 1u);
  ASSERT_EQ(sub_entries.size(), 1u);

  const LogEntry& lx = pub_entries[0];
  const LogEntry& ly = sub_entries[0];
  const auto digest = pubsub::MessageDigest(msg.header, msg.payload);
  const auto payload_hash = pubsub::PayloadHash(msg.payload);

  // L_x: (id_x, type, out, seq, t, D, s_x, h(D_y), s_y)
  EXPECT_EQ(lx.component, "pub");
  EXPECT_EQ(lx.direction, Direction::kOut);
  EXPECT_EQ(lx.data, msg.payload);
  EXPECT_TRUE(crypto::VerifyDigest(h.pub_identity->keys.pub, digest,
                                  lx.self_signature));
  EXPECT_EQ(lx.peer_data_hash, crypto::DigestBytes(payload_hash));
  EXPECT_TRUE(crypto::VerifyDigest(h.sub_identity->keys.pub, digest,
                                  lx.peer_signature));
  EXPECT_EQ(lx.peer, "sub");

  // L_y: (id_y, type, in, seq, t, h(D), s_x, s_y)
  EXPECT_EQ(ly.component, "sub");
  EXPECT_EQ(ly.direction, Direction::kIn);
  EXPECT_TRUE(ly.data.empty());  // default: subscriber stores the hash
  EXPECT_EQ(ly.data_hash, crypto::DigestBytes(payload_hash));
  EXPECT_TRUE(crypto::VerifyDigest(h.sub_identity->keys.pub, digest,
                                  ly.self_signature));
  EXPECT_TRUE(crypto::VerifyDigest(h.pub_identity->keys.pub, digest,
                                  ly.peer_signature));
  EXPECT_EQ(ly.peer, "pub");
}

TEST(AdlpFactoryTest, SubscriberStoresDataOption) {
  AdlpOptions options;
  options.subscriber_stores_hash = false;
  AdlpHarness h(options);
  h.Exchange(SampleMessage());
  const auto entries = h.sub_pipe.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].data, (Bytes{1, 2, 3, 4}));
  EXPECT_TRUE(entries[0].data_hash.empty());
}

TEST(AdlpFactoryTest, AckCarriesDataOption) {
  AdlpOptions options;
  options.ack_carries_data = true;
  AdlpHarness h(options);
  const pubsub::Message msg = SampleMessage();
  auto enc = h.pub_factory.Encode(msg);
  auto sub_link = h.sub_factory.MakeSubscriberLink("image", "pub");
  auto result = sub_link->OnMessage(enc->wire);
  ASSERT_TRUE(result.reply.has_value());
  const AckMessage ack = ParseAckMessage(*result.reply);
  EXPECT_EQ(ack.data, msg.payload);
  EXPECT_TRUE(ack.data_hash.empty());

  // The publisher reconstructs the hash from the returned data.
  auto pub_link = h.pub_factory.MakePublisherLink("image", "sub");
  pub_link->OnAck(*enc, *result.reply);
  const auto entries = h.pub_pipe.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].peer_data_hash,
            crypto::DigestBytes(pubsub::PayloadHash(msg.payload)));
}

TEST(AdlpFactoryTest, MalformedAckIsRejectedNotLogged) {
  AdlpHarness h;
  auto enc = h.pub_factory.Encode(SampleMessage());
  auto pub_link = h.pub_factory.MakePublisherLink("image", "sub");
  pub_link->OnAck(*enc, Bytes(11, 0xff));  // garbage
  EXPECT_TRUE(h.pub_pipe.entries().empty());
  EXPECT_EQ(h.pub_factory.RejectedCount(), 1u);
}

TEST(AdlpFactoryTest, StrictModeRejectsTamperedMessage) {
  crypto::KeyStore keys;
  keys.Register("pub", TestIdentity("pub").keys.pub);
  keys.Register("sub", TestIdentity("sub").keys.pub);
  AdlpOptions options;
  options.peer_keys = &keys;
  AdlpHarness h(options);

  auto enc = h.pub_factory.Encode(SampleMessage());
  // Tamper with the payload in flight.
  DataMessage dm = ParseDataMessage(enc->wire);
  dm.message.payload[0] ^= 1;
  const Bytes tampered = SerializeDataMessage(dm.message, dm.signature);

  auto sub_link = h.sub_factory.MakeSubscriberLink("image", "pub");
  auto result = sub_link->OnMessage(tampered);
  EXPECT_FALSE(result.deliver.has_value());
  EXPECT_FALSE(result.reply.has_value());
  EXPECT_EQ(h.sub_factory.RejectedCount(), 1u);
  EXPECT_TRUE(h.sub_pipe.entries().empty());
}

TEST(AdlpFactoryTest, StrictModePassesGenuineMessage) {
  crypto::KeyStore keys;
  keys.Register("pub", TestIdentity("pub").keys.pub);
  keys.Register("sub", TestIdentity("sub").keys.pub);
  AdlpOptions options;
  options.peer_keys = &keys;
  AdlpHarness h(options);
  h.Exchange(SampleMessage());
  EXPECT_EQ(h.pub_factory.RejectedCount(), 0u);
  EXPECT_EQ(h.sub_factory.RejectedCount(), 0u);
  EXPECT_EQ(h.pub_pipe.entries().size(), 1u);
  EXPECT_EQ(h.sub_pipe.entries().size(), 1u);
}

TEST(AdlpFactoryTest, AggregatedLoggingOneEntryPerPublication) {
  AdlpOptions options;
  options.aggregate_publisher_log = true;
  AdlpHarness h(options);

  // Two publications acked by three subscribers each.
  for (std::uint64_t seq = 1; seq <= 2; ++seq) {
    const pubsub::Message msg = SampleMessage(seq);
    auto enc = h.pub_factory.Encode(msg);
    for (int s = 0; s < 3; ++s) {
      const std::string sub_id = "sub" + std::to_string(s);
      auto sub_link = h.sub_factory.MakeSubscriberLink("image", "pub");
      auto result = sub_link->OnMessage(enc->wire);
      ASSERT_TRUE(result.reply.has_value());
      // Rewrite the subscriber id in the ACK (one factory stands in for 3
      // subscribers here; only the id matters for aggregation).
      AckMessage ack = ParseAckMessage(*result.reply);
      ack.subscriber = sub_id;
      auto pub_link = h.pub_factory.MakePublisherLink("image", sub_id);
      pub_link->OnAck(*enc, SerializeAckMessage(ack));
    }
  }
  h.pub_factory.FlushAggregated();

  const auto entries = h.pub_pipe.entries();
  ASSERT_EQ(entries.size(), 2u);  // one per publication, not per subscriber
  for (const auto& e : entries) {
    EXPECT_EQ(e.acks.size(), 3u);
    EXPECT_TRUE(e.peer.empty());
  }
}

TEST(AdlpFactoryTest, SignatureBoundToSequence) {
  // A signature for seq=1 must not verify for seq=2 (freshness).
  AdlpHarness h;
  auto enc1 = h.pub_factory.Encode(SampleMessage(1));
  pubsub::Message msg2 = SampleMessage(2);
  const auto digest2 = pubsub::MessageDigest(msg2.header, msg2.payload);
  EXPECT_FALSE(crypto::VerifyDigest(h.pub_identity->keys.pub, digest2,
                                   enc1->signature));
}

}  // namespace
}  // namespace adlp::proto
