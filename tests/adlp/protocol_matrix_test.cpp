// Parameterized end-to-end sweep: every protocol option combination must
// deliver application data unchanged AND produce logs the auditor
// classifies fully valid.
#include <gtest/gtest.h>

#include "audit/auditor.h"
#include "test_util.h"

namespace adlp::proto {
namespace {

struct MatrixParam {
  LoggingScheme scheme;
  pubsub::TransportKind transport;
  bool subscriber_stores_hash;
  bool ack_carries_data;
  bool aggregate;
  std::size_t ack_window;
  std::size_t payload_size;
  crypto::SigAlgorithm sig = crypto::SigAlgorithm::kRsaPkcs1Sha256;

  std::string Name() const {
    std::string n;
    n += scheme == LoggingScheme::kAdlp
             ? "adlp"
             : (scheme == LoggingScheme::kBase ? "base" : "none");
    n += transport == pubsub::TransportKind::kTcp ? "_tcp" : "_inproc";
    n += subscriber_stores_hash ? "_hash" : "_data";
    n += ack_carries_data ? "_ackdata" : "_ackhash";
    n += aggregate ? "_agg" : "_plain";
    n += "_w" + std::to_string(ack_window);
    n += "_p" + std::to_string(payload_size);
    if (sig == crypto::SigAlgorithm::kEd25519) n += "_ed25519";
    return n;
  }
};

class ProtocolMatrixTest : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(ProtocolMatrixTest, DeliversAndAuditsClean) {
  const MatrixParam& param = GetParam();
  test::MiniSystem sys;

  ComponentOptions opts = test::FastOptions(param.scheme);
  opts.transport = param.transport;
  opts.adlp.subscriber_stores_hash = param.subscriber_stores_hash;
  opts.adlp.ack_carries_data = param.ack_carries_data;
  opts.adlp.aggregate_publisher_log = param.aggregate;
  opts.ack_window = param.ack_window;
  opts.sig_algorithm = param.sig;

  auto& pub = sys.Add("pub", opts);
  auto& sub1 = sys.Add("sub1", opts);
  auto& sub2 = sys.Add("sub2", opts);

  constexpr int kMessages = 5;
  Rng rng(1);
  std::vector<Bytes> payloads;
  for (int i = 0; i < kMessages; ++i) {
    payloads.push_back(rng.RandomBytes(param.payload_size));
  }

  std::atomic<int> delivered{0};
  std::atomic<int> mismatches{0};
  auto callback = [&](const pubsub::Message& m) {
    if (m.header.seq < 1 || m.header.seq > kMessages ||
        m.payload != payloads[m.header.seq - 1]) {
      mismatches++;
    }
    delivered++;
  };
  sub1.Subscribe("t", callback);
  sub2.Subscribe("t", callback);

  auto& publisher = pub.Advertise("t");
  ASSERT_TRUE(publisher.WaitForSubscribers(2));
  for (const auto& payload : payloads) publisher.Publish(payload);
  ASSERT_TRUE(
      test::WaitFor([&] { return delivered.load() == 2 * kMessages; }));
  EXPECT_EQ(mismatches.load(), 0);

  sys.ShutdownAll();

  if (param.scheme == LoggingScheme::kNone) {
    EXPECT_EQ(sys.server.EntryCount(), 0u);
    return;
  }

  EXPECT_TRUE(sys.server.VerifyChain());
  const audit::AuditReport report =
      audit::Auditor(sys.server.Keys())
          .Audit(sys.server.Entries(), sys.master.Topology());
  EXPECT_TRUE(report.unfaithful.empty()) << report.Render();
  EXPECT_EQ(report.TotalInvalid(), 0u) << report.Render();
  if (param.scheme == LoggingScheme::kAdlp) {
    EXPECT_EQ(report.TotalHidden(), 0u) << report.Render();
    // 2 subscribers x kMessages instances, all OK.
    EXPECT_EQ(report.verdicts.size(), 2u * kMessages);
    for (const auto& v : report.verdicts) {
      EXPECT_EQ(v.finding, audit::Finding::kOk)
          << audit::FindingName(v.finding);
    }
  }
}

std::vector<MatrixParam> AllCombinations() {
  std::vector<MatrixParam> params;
  // ADLP: the full option matrix over in-proc, plus a TCP spot-check.
  for (bool hash : {true, false}) {
    for (bool ackdata : {true, false}) {
      for (bool agg : {true, false}) {
        for (std::size_t window : {1u, 3u}) {
          params.push_back({LoggingScheme::kAdlp,
                            pubsub::TransportKind::kInProc, hash, ackdata,
                            agg, window, 200});
        }
      }
    }
  }
  params.push_back({LoggingScheme::kAdlp, pubsub::TransportKind::kTcp, true,
                    false, false, 1, 200});
  params.push_back({LoggingScheme::kAdlp, pubsub::TransportKind::kTcp, true,
                    false, true, 2, 5000});
  // Base and None over both transports.
  for (auto transport :
       {pubsub::TransportKind::kInProc, pubsub::TransportKind::kTcp}) {
    params.push_back(
        {LoggingScheme::kBase, transport, true, false, false, 1, 200});
    params.push_back(
        {LoggingScheme::kNone, transport, true, false, false, 1, 200});
  }
  // Payload-size spread under the default ADLP configuration.
  for (std::size_t size : {0u, 1u, 20u, 8705u, 100'000u}) {
    params.push_back({LoggingScheme::kAdlp, pubsub::TransportKind::kInProc,
                      true, false, false, 1, size});
  }
  // The lightweight-crypto variant (Sec. VI-E): Ed25519 identities through
  // the full stack, including TCP and aggregation.
  params.push_back({LoggingScheme::kAdlp, pubsub::TransportKind::kInProc,
                    true, false, false, 1, 200,
                    crypto::SigAlgorithm::kEd25519});
  params.push_back({LoggingScheme::kAdlp, pubsub::TransportKind::kInProc,
                    false, true, true, 2, 5000,
                    crypto::SigAlgorithm::kEd25519});
  params.push_back({LoggingScheme::kAdlp, pubsub::TransportKind::kTcp, true,
                    false, false, 1, 200, crypto::SigAlgorithm::kEd25519});
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    AllOptions, ProtocolMatrixTest, ::testing::ValuesIn(AllCombinations()),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      return info.param.Name();
    });

}  // namespace
}  // namespace adlp::proto
