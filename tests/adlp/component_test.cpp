#include "adlp/component.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace adlp::proto {
namespace {

using test::FastOptions;
using test::MiniSystem;
using test::WaitFor;

TEST(ComponentTest, AdlpEndToEnd) {
  MiniSystem sys;
  auto& pub = sys.Add("camera");
  auto& sub = sys.Add("detector");

  std::atomic<int> got{0};
  sub.Subscribe("image", [&](const pubsub::Message&) { got++; });
  auto& p = pub.Advertise("image");
  for (int i = 0; i < 5; ++i) p.Publish(Bytes{1, 2, 3});
  ASSERT_TRUE(WaitFor([&] { return got.load() == 5; }));

  // 5 out + 5 in; the final out-entry awaits its ACK, so wait.
  EXPECT_TRUE(WaitFor([&] { return sys.server.EntryCount() == 10u; }));
  EXPECT_TRUE(sys.server.VerifyChain());
  EXPECT_TRUE(sys.server.Keys().Contains("camera"));
  EXPECT_TRUE(sys.server.Keys().Contains("detector"));
}

TEST(ComponentTest, NoLoggingSchemeLogsNothing) {
  MiniSystem sys;
  auto& pub = sys.Add("camera", FastOptions(LoggingScheme::kNone));
  auto& sub = sys.Add("detector", FastOptions(LoggingScheme::kNone));
  std::atomic<int> got{0};
  sub.Subscribe("image", [&](const pubsub::Message&) { got++; });
  pub.Advertise("image").Publish(Bytes{1});
  ASSERT_TRUE(WaitFor([&] { return got.load() == 1; }));
  EXPECT_EQ(sys.server.EntryCount(), 0u);
  EXPECT_EQ(sys.server.Keys().Size(), 0u);  // no key registration either
}

TEST(ComponentTest, BaseSchemeLogsWithoutCrypto) {
  MiniSystem sys;
  auto& pub = sys.Add("camera", FastOptions(LoggingScheme::kBase));
  auto& sub = sys.Add("detector", FastOptions(LoggingScheme::kBase));
  std::atomic<int> got{0};
  sub.Subscribe("image", [&](const pubsub::Message&) { got++; });
  pub.Advertise("image").Publish(Bytes{9});
  ASSERT_TRUE(WaitFor([&] { return got.load() == 1; }));
  pub.FlushLogs();
  sub.FlushLogs();
  ASSERT_EQ(sys.server.EntryCount(), 2u);
  for (const auto& e : sys.server.Entries()) {
    EXPECT_EQ(e.scheme, LogScheme::kBase);
    EXPECT_TRUE(e.self_signature.empty());
    EXPECT_EQ(e.data, (Bytes{9}));
  }
}

TEST(ComponentTest, SchemesInteroperateOnTheWire) {
  // An ADLP publisher's message is parseable by a no-logging subscriber:
  // the transport format is backward-compatible (signature field skipped).
  MiniSystem sys;
  auto& pub = sys.Add("camera");  // ADLP
  auto& sub = sys.Add("viewer", FastOptions(LoggingScheme::kNone));
  std::atomic<int> got{0};
  sub.Subscribe("image", [&](const pubsub::Message& m) {
    EXPECT_EQ(m.payload, (Bytes{5, 5}));
    got++;
  });
  pub.Advertise("image").Publish(Bytes{5, 5});
  // NB: the no-logging subscriber never ACKs, so the ADLP publisher's link
  // stalls after this message — exactly the penalty the protocol specifies.
  ASSERT_TRUE(WaitFor([&] { return got.load() == 1; }));
  pub.FlushLogs();
  // Publisher has no ACK, hence no publisher log entry for the transmission.
  EXPECT_EQ(sys.server.EntryCount(), 0u);
}

TEST(ComponentTest, AdlpEntriesCountsWithMultipleSubscribers) {
  MiniSystem sys;
  auto& pub = sys.Add("camera");
  auto& s1 = sys.Add("sub1");
  auto& s2 = sys.Add("sub2");
  std::atomic<int> got{0};
  s1.Subscribe("image", [&](const pubsub::Message&) { got++; });
  s2.Subscribe("image", [&](const pubsub::Message&) { got++; });
  auto& p = pub.Advertise("image");
  for (int i = 0; i < 3; ++i) p.Publish(Bytes{1});
  ASSERT_TRUE(WaitFor([&] { return got.load() == 6; }));
  for (auto& [name, c] : sys.components) c->FlushLogs();
  // Per transmission: one L_x per subscriber + one L_y each = 4 per publish.
  EXPECT_TRUE(WaitFor([&] { return sys.server.EntryCount() == 12u; }));
}

TEST(ComponentTest, AggregatedLoggingReducesPublisherEntries) {
  proto::ComponentOptions opts = FastOptions();
  opts.adlp.aggregate_publisher_log = true;
  MiniSystem sys;
  auto& pub = sys.Add("camera", opts);
  auto& s1 = sys.Add("sub1", opts);
  auto& s2 = sys.Add("sub2", opts);
  std::atomic<int> got{0};
  s1.Subscribe("image", [&](const pubsub::Message&) { got++; });
  s2.Subscribe("image", [&](const pubsub::Message&) { got++; });
  auto& p = pub.Advertise("image");
  for (int i = 0; i < 3; ++i) p.Publish(Bytes{1});
  ASSERT_TRUE(WaitFor([&] { return got.load() == 6; }));
  pub.Shutdown();  // flushes aggregates
  s1.Shutdown();
  s2.Shutdown();
  // Publisher: 3 aggregated entries (one per publication), each with 2 acks;
  // subscribers: 6 entries.
  std::size_t pub_entries = 0;
  for (const auto& e : sys.server.Entries()) {
    if (e.direction == Direction::kOut) {
      ++pub_entries;
      EXPECT_EQ(e.acks.size(), 2u);
    }
  }
  EXPECT_EQ(pub_entries, 3u);
  EXPECT_EQ(sys.server.EntryCount(), 9u);
}

TEST(ComponentTest, FaultWrapperInterposes) {
  proto::ComponentOptions opts = FastOptions();
  std::atomic<int> intercepted{0};
  class CountingPipe final : public LogPipe {
   public:
    CountingPipe(LogPipe& inner, std::atomic<int>& counter)
        : inner_(inner), counter_(counter) {}
    void Enter(LogEntry entry) override {
      counter_++;
      inner_.Enter(std::move(entry));
    }

   private:
    LogPipe& inner_;
    std::atomic<int>& counter_;
  };
  opts.pipe_wrapper = [&intercepted](LogPipe& inner, const NodeIdentity&) {
    return std::make_unique<CountingPipe>(inner, intercepted);
  };

  MiniSystem sys;
  auto& pub = sys.Add("camera", opts);
  auto& sub = sys.Add("detector");
  std::atomic<int> got{0};
  sub.Subscribe("image", [&](const pubsub::Message&) { got++; });
  pub.Advertise("image").Publish(Bytes{1});
  ASSERT_TRUE(WaitFor([&] { return got.load() == 1; }));
  // The publisher's entry is created when the ACK returns, which may lag
  // the delivery; wait rather than flush.
  EXPECT_TRUE(WaitFor([&] { return intercepted.load() == 1; }));
}

TEST(ComponentTest, RestartReRegistersANewKey) {
  // The paper's model allows component restarts; the logger keeps the
  // latest key. A restarted component gets a fresh key pair (fresh rng
  // draw) and its new entries verify under the re-registered key.
  MiniSystem sys;
  crypto::PublicKey first_key;
  {
    auto c = std::make_unique<proto::Component>("camera", sys.master,
                                                sys.server, sys.rng,
                                                FastOptions());
    first_key = *sys.server.Keys().Find("camera");
    c->Shutdown();
  }
  proto::Component restarted("camera", sys.master, sys.server, sys.rng,
                             FastOptions());
  const auto second_key = sys.server.Keys().Find("camera");
  ASSERT_TRUE(second_key.has_value());
  EXPECT_FALSE(*second_key == first_key);
  EXPECT_EQ(restarted.Identity().keys.pub, *second_key);
}

TEST(ComponentTest, ShutdownIsIdempotent) {
  MiniSystem sys;
  auto& c = sys.Add("solo");
  c.Shutdown();
  c.Shutdown();
  SUCCEED();
}

}  // namespace
}  // namespace adlp::proto
