#include "crypto/hashchain.h"

#include <gtest/gtest.h>

namespace adlp::crypto {
namespace {

TEST(HashChainTest, EmptyChainVerifies) {
  HashChain chain;
  EXPECT_EQ(chain.Size(), 0u);
  EXPECT_EQ(chain.Head(), HashChain::Genesis());
  EXPECT_TRUE(HashChain::Verify({}, chain.Head()));
}

TEST(HashChainTest, AppendChangesHead) {
  HashChain chain;
  const Digest genesis = chain.Head();
  chain.Append(BytesOf("record-1"));
  EXPECT_NE(chain.Head(), genesis);
  EXPECT_EQ(chain.Size(), 1u);
}

TEST(HashChainTest, VerifyAcceptsExactSequence) {
  HashChain chain;
  std::vector<Bytes> records = {BytesOf("a"), BytesOf("b"), BytesOf("c")};
  for (const auto& r : records) chain.Append(r);
  EXPECT_TRUE(HashChain::Verify(records, chain.Head()));
}

TEST(HashChainTest, DetectsModification) {
  HashChain chain;
  std::vector<Bytes> records = {BytesOf("a"), BytesOf("b"), BytesOf("c")};
  for (const auto& r : records) chain.Append(r);
  records[1] = BytesOf("B");
  EXPECT_FALSE(HashChain::Verify(records, chain.Head()));
}

TEST(HashChainTest, DetectsDeletion) {
  HashChain chain;
  std::vector<Bytes> records = {BytesOf("a"), BytesOf("b"), BytesOf("c")};
  for (const auto& r : records) chain.Append(r);
  records.erase(records.begin() + 1);
  EXPECT_FALSE(HashChain::Verify(records, chain.Head()));
}

TEST(HashChainTest, DetectsInsertion) {
  HashChain chain;
  std::vector<Bytes> records = {BytesOf("a"), BytesOf("c")};
  for (const auto& r : records) chain.Append(r);
  records.insert(records.begin() + 1, BytesOf("b"));
  EXPECT_FALSE(HashChain::Verify(records, chain.Head()));
}

TEST(HashChainTest, DetectsReordering) {
  HashChain chain;
  std::vector<Bytes> records = {BytesOf("a"), BytesOf("b")};
  for (const auto& r : records) chain.Append(r);
  std::swap(records[0], records[1]);
  EXPECT_FALSE(HashChain::Verify(records, chain.Head()));
}

TEST(HashChainTest, OrderSensitiveHeads) {
  HashChain ab, ba;
  ab.Append(BytesOf("a"));
  ab.Append(BytesOf("b"));
  ba.Append(BytesOf("b"));
  ba.Append(BytesOf("a"));
  EXPECT_NE(ab.Head(), ba.Head());
}

TEST(HashChainTest, BoundaryAmbiguityResisted) {
  // ("ab","c") vs ("a","bc") must produce different heads.
  HashChain x, y;
  x.Append(BytesOf("ab"));
  x.Append(BytesOf("c"));
  y.Append(BytesOf("a"));
  y.Append(BytesOf("bc"));
  EXPECT_NE(x.Head(), y.Head());
}

}  // namespace
}  // namespace adlp::crypto
