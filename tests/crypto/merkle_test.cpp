// Merkle tree: RFC 6962 vectors, exhaustive proof sweeps at small sizes,
// and adversarial rejection (tampered leaves, wrong indices, truncated or
// padded proofs, cross-size confusion).
#include "crypto/merkle.h"

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"

namespace adlp::crypto {
namespace {

Bytes Leaf(std::uint64_t i) {
  Bytes b;
  b.push_back(static_cast<std::uint8_t>(i));
  b.push_back(static_cast<std::uint8_t>(i >> 8));
  return b;
}

std::string Hex(const Digest& d) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  for (std::uint8_t byte : d) {
    out += kHex[byte >> 4];
    out += kHex[byte & 0xf];
  }
  return out;
}

// RFC 6962 §2.1.1's worked example uses a 7-leaf tree; its hashes depend on
// leaf content, so instead pin the RFC's structural definitions with the
// published empty-tree vector and a hand-computed 2-leaf tree.
TEST(MerkleTreeTest, EmptyTreeRootIsSha256OfEmptyString) {
  MerkleTree tree;
  EXPECT_EQ(Hex(tree.Root()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(MerkleTreeTest, TwoLeafRootMatchesManualConstruction) {
  MerkleTree tree;
  tree.Append(Leaf(0));
  tree.Append(Leaf(1));
  const Digest manual = MerkleTree::HashInterior(
      MerkleTree::HashLeaf(Leaf(0)), MerkleTree::HashLeaf(Leaf(1)));
  EXPECT_EQ(tree.Root(), manual);
}

TEST(MerkleTreeTest, IncrementalRootMatchesRecomputedRootAtEverySize) {
  MerkleTree tree;
  for (std::uint64_t i = 0; i < 130; ++i) {
    tree.Append(Leaf(i));
    EXPECT_EQ(tree.Root(), tree.RootAt(tree.Size())) << "size " << tree.Size();
  }
}

TEST(MerkleTreeTest, LeafAndInteriorDomainsAreSeparated) {
  // A record equal to (0x01 || l || r) must not hash like an interior node.
  const Digest l = MerkleTree::HashLeaf(Leaf(1));
  const Digest r = MerkleTree::HashLeaf(Leaf(2));
  Bytes fake;
  fake.push_back(0x01);
  fake.insert(fake.end(), l.begin(), l.end());
  fake.insert(fake.end(), r.begin(), r.end());
  EXPECT_NE(MerkleTree::HashLeaf(fake), MerkleTree::HashInterior(l, r));
}

TEST(MerkleTreeTest, InclusionProofsVerifyExhaustively) {
  MerkleTree tree;
  constexpr std::uint64_t kMax = 66;
  for (std::uint64_t i = 0; i < kMax; ++i) tree.Append(Leaf(i));
  for (std::uint64_t size = 1; size <= kMax; ++size) {
    const Digest root = tree.RootAt(size);
    for (std::uint64_t index = 0; index < size; ++index) {
      const auto proof = tree.InclusionProof(index, size);
      EXPECT_TRUE(
          MerkleTree::VerifyInclusion(Leaf(index), index, size, proof, root))
          << "index " << index << " size " << size;
    }
  }
}

TEST(MerkleTreeTest, TamperedLeafIsRejected) {
  MerkleTree tree;
  for (std::uint64_t i = 0; i < 37; ++i) tree.Append(Leaf(i));
  const Digest root = tree.Root();
  for (std::uint64_t index = 0; index < 37; ++index) {
    const auto proof = tree.InclusionProof(index, 37);
    Bytes tampered = Leaf(index);
    tampered[0] ^= 0x01;
    EXPECT_FALSE(
        MerkleTree::VerifyInclusion(tampered, index, 37, proof, root));
  }
}

TEST(MerkleTreeTest, WrongIndexSizeOrMutatedProofIsRejected) {
  MerkleTree tree;
  for (std::uint64_t i = 0; i < 21; ++i) tree.Append(Leaf(i));
  const Digest root = tree.Root();
  const auto proof = tree.InclusionProof(5, 21);

  EXPECT_FALSE(MerkleTree::VerifyInclusion(Leaf(5), 6, 21, proof, root));
  // A proof for size 21 cannot verify against the size-20 tree's actual
  // root. (The verifier does NOT promise to reject a mismatched size
  // paired with the size-21 root — binding size to root is the signed
  // epoch seal's job.)
  EXPECT_FALSE(
      MerkleTree::VerifyInclusion(Leaf(5), 5, 20, proof, tree.RootAt(20)));
  EXPECT_FALSE(MerkleTree::VerifyInclusion(Leaf(5), 21, 21, proof, root));

  auto truncated = proof;
  truncated.pop_back();
  EXPECT_FALSE(MerkleTree::VerifyInclusion(Leaf(5), 5, 21, truncated, root));

  auto padded = proof;
  padded.push_back(proof.front());
  EXPECT_FALSE(MerkleTree::VerifyInclusion(Leaf(5), 5, 21, padded, root));

  auto flipped = proof;
  flipped[1][0] ^= 0x80;
  EXPECT_FALSE(MerkleTree::VerifyInclusion(Leaf(5), 5, 21, flipped, root));
}

TEST(MerkleTreeTest, ConsistencyProofsVerifyExhaustively) {
  MerkleTree tree;
  constexpr std::uint64_t kMax = 40;
  for (std::uint64_t i = 0; i < kMax; ++i) tree.Append(Leaf(i));
  for (std::uint64_t old_size = 1; old_size <= kMax; ++old_size) {
    const Digest old_root = tree.RootAt(old_size);
    for (std::uint64_t new_size = old_size; new_size <= kMax; ++new_size) {
      const auto proof = tree.ConsistencyProof(old_size, new_size);
      EXPECT_TRUE(MerkleTree::VerifyConsistency(
          old_size, new_size, old_root, tree.RootAt(new_size), proof))
          << old_size << " -> " << new_size;
    }
  }
}

TEST(MerkleTreeTest, ConsistencyBindsProofToItsOwnExtension) {
  // Two replicas share a sealed 13-record prefix, then diverge. BOTH
  // suffixes are legitimate append-only extensions of the seal (that is
  // equivocation, caught by comparing the replicas' later epoch roots, not
  // by consistency proofs) — but each proof links the seal only to the new
  // root of the history that produced it.
  MerkleTree honest;
  MerkleTree forked;
  for (std::uint64_t i = 0; i < 13; ++i) {
    honest.Append(Leaf(i));
    forked.Append(Leaf(i));
  }
  const Digest old_root = honest.RootAt(13);
  for (std::uint64_t i = 13; i < 29; ++i) {
    honest.Append(Leaf(i));
    forked.Append(Leaf(i + 1000));  // different content from here on
  }
  ASSERT_NE(honest.RootAt(29), forked.RootAt(29));
  const auto forked_proof = forked.ConsistencyProof(13, 29);
  const auto honest_proof = honest.ConsistencyProof(13, 29);
  EXPECT_TRUE(MerkleTree::VerifyConsistency(13, 29, old_root,
                                            forked.RootAt(29), forked_proof));
  EXPECT_TRUE(MerkleTree::VerifyConsistency(13, 29, old_root,
                                            honest.RootAt(29), honest_proof));
  // Cross-wiring proof and root fails both ways.
  EXPECT_FALSE(MerkleTree::VerifyConsistency(13, 29, old_root,
                                             honest.RootAt(29), forked_proof));
  EXPECT_FALSE(MerkleTree::VerifyConsistency(13, 29, old_root,
                                             forked.RootAt(29), honest_proof));
}

TEST(MerkleTreeTest, ConsistencyRejectsRewrittenPrefix) {
  // A replica that rewrites record 3 after sealing cannot produce ANY proof
  // linking the sealed root to its new root: fuzz a few forged proofs.
  MerkleTree before;
  for (std::uint64_t i = 0; i < 8; ++i) before.Append(Leaf(i));
  const Digest sealed = before.RootAt(8);

  MerkleTree rewritten;
  for (std::uint64_t i = 0; i < 8; ++i) {
    rewritten.Append(i == 3 ? Leaf(999) : Leaf(i));
  }
  for (std::uint64_t i = 8; i < 20; ++i) rewritten.Append(Leaf(i));

  const auto real_proof = rewritten.ConsistencyProof(8, 20);
  EXPECT_FALSE(MerkleTree::VerifyConsistency(8, 20, sealed,
                                             rewritten.RootAt(20), real_proof));
  Rng rng(0x5eed);
  for (int attempt = 0; attempt < 50; ++attempt) {
    auto forged = real_proof;
    if (!forged.empty()) {
      const std::size_t node = rng.UniformBelow(forged.size());
      forged[node][rng.UniformBelow(32)] ^=
          static_cast<std::uint8_t>(1 + rng.UniformBelow(255));
    }
    EXPECT_FALSE(MerkleTree::VerifyConsistency(
        8, 20, sealed, rewritten.RootAt(20), forged));
  }
}

TEST(MerkleTreeTest, ProofsAgainstPastSizesStillVerifyAfterGrowth) {
  // Epoch workflow: a proof generated against epoch k's sealed size must
  // verify long after the tree has grown past it.
  MerkleTree tree;
  for (std::uint64_t i = 0; i < 10; ++i) tree.Append(Leaf(i));
  const Digest epoch_root = tree.RootAt(10);
  const auto proof = tree.InclusionProof(7, 10);
  for (std::uint64_t i = 10; i < 50; ++i) tree.Append(Leaf(i));
  EXPECT_TRUE(MerkleTree::VerifyInclusion(Leaf(7), 7, 10, proof, epoch_root));
  // And the grown tree proves append-only continuity from that epoch.
  EXPECT_TRUE(MerkleTree::VerifyConsistency(10, 50, epoch_root, tree.Root(),
                                            tree.ConsistencyProof(10, 50)));
}

}  // namespace
}  // namespace adlp::crypto
