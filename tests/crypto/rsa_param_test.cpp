#include <map>
// Parameterized RSA properties across modulus sizes: the protocol is
// key-size agnostic; every invariant must hold at every size.
#include <gtest/gtest.h>

#include "crypto/pkcs1.h"
#include "crypto/prime.h"

namespace adlp::crypto {
namespace {

class RsaParamTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  static const RsaKeyPair& Key(std::size_t bits) {
    static std::map<std::size_t, RsaKeyPair> cache;
    auto it = cache.find(bits);
    if (it == cache.end()) {
      Rng rng(9000 + bits);
      it = cache.emplace(bits, GenerateRsaKeyPair(rng, bits)).first;
    }
    return it->second;
  }
};

TEST_P(RsaParamTest, ModulusWidth) {
  const auto& kp = Key(GetParam());
  EXPECT_EQ(kp.pub.n.BitLength(), GetParam());
  EXPECT_EQ(kp.pub.ModulusBytes(), GetParam() / 8);
}

TEST_P(RsaParamTest, SignVerifyRoundTrip) {
  const auto& kp = Key(GetParam());
  Rng rng(1);
  for (int i = 0; i < 5; ++i) {
    const Bytes msg = rng.RandomBytes(64 + i * 100);
    const Bytes sig = Pkcs1SignData(kp.priv, msg);
    EXPECT_EQ(sig.size(), kp.pub.ModulusBytes());
    EXPECT_TRUE(Pkcs1VerifyData(kp.pub, msg, sig));
  }
}

TEST_P(RsaParamTest, TamperDetected) {
  const auto& kp = Key(GetParam());
  Rng rng(2);
  Bytes msg = rng.RandomBytes(128);
  Bytes sig = Pkcs1SignData(kp.priv, msg);
  msg[17] ^= 1;
  EXPECT_FALSE(Pkcs1VerifyData(kp.pub, msg, sig));
}

TEST_P(RsaParamTest, CrtConsistency) {
  const auto& kp = Key(GetParam());
  Rng rng(3);
  const BigInt c = BigInt::RandomBelow(rng, kp.pub.n);
  EXPECT_EQ(RsaPrivateOp(kp.priv, c), BigInt::ModExp(c, kp.priv.d, kp.pub.n));
}

TEST_P(RsaParamTest, PrimesArePrime) {
  const auto& kp = Key(GetParam());
  Rng rng(4);
  EXPECT_TRUE(IsProbablePrime(kp.priv.p, rng));
  EXPECT_TRUE(IsProbablePrime(kp.priv.q, rng));
  EXPECT_NE(kp.priv.p, kp.priv.q);
}

TEST_P(RsaParamTest, CrossSizeSignaturesRejected) {
  // A signature from a different key (here 1536-bit vs the param size, or
  // 512-bit when the param is 1536) never verifies.
  const auto& kp = Key(GetParam());
  const std::size_t other_bits = GetParam() == 1536 ? 512 : 1536;
  const auto& other = Key(other_bits);
  const Bytes msg = BytesOf("cross");
  const Bytes sig = Pkcs1SignData(other.priv, msg);
  EXPECT_FALSE(Pkcs1VerifyData(kp.pub, msg, sig));
}

TEST_P(RsaParamTest, TooSmallModulusCannotHoldTheEncoding) {
  // EMSA-PKCS1-v1_5 with SHA-256 needs at least 62 bytes; a 256-bit (32-
  // byte) modulus must be rejected at signing time, not truncated.
  Rng rng(6);
  const RsaKeyPair tiny = GenerateRsaKeyPair(rng, 256);
  EXPECT_THROW(Pkcs1SignData(tiny.priv, BytesOf("x")), std::length_error);
}

INSTANTIATE_TEST_SUITE_P(KeySizes, RsaParamTest,
                         ::testing::Values(512, 768, 1024, 1536),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           return "rsa" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace adlp::crypto
