#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include "common/bytes.h"

namespace adlp::crypto {
namespace {

std::string HexDigest(const Digest& d) {
  return ToHex(BytesView(d.data(), d.size()));
}

TEST(Sha256Test, EmptyInput) {
  EXPECT_EQ(HexDigest(Sha256Digest({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HexDigest(Sha256Digest(BytesOf("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(HexDigest(Sha256Digest(BytesOf(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Bytes input(1'000'000, 'a');
  EXPECT_EQ(HexDigest(Sha256Digest(input)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, ExactBlockBoundary) {
  // 64-byte input exercises the padding path that appends a full new block.
  Bytes input(64, 'x');
  const Digest one_shot = Sha256Digest(input);
  Sha256 h;
  h.Update(BytesView(input.data(), 32));
  h.Update(BytesView(input.data() + 32, 32));
  EXPECT_EQ(one_shot, h.Finish());
}

TEST(Sha256Test, IncrementalMatchesOneShotAcrossSplits) {
  Bytes input;
  for (int i = 0; i < 1000; ++i) input.push_back(static_cast<std::uint8_t>(i));
  const Digest expected = Sha256Digest(input);
  for (std::size_t split : {1u, 7u, 63u, 64u, 65u, 128u, 999u}) {
    Sha256 h;
    std::size_t pos = 0;
    while (pos < input.size()) {
      const std::size_t take = std::min(split, input.size() - pos);
      h.Update(BytesView(input.data() + pos, take));
      pos += take;
    }
    EXPECT_EQ(h.Finish(), expected) << "split=" << split;
  }
}

TEST(Sha256Test, ResetAllowsReuse) {
  Sha256 h;
  h.Update(BytesOf("first"));
  (void)h.Finish();
  h.Reset();
  h.Update(BytesOf("abc"));
  EXPECT_EQ(HexDigest(h.Finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, Digest2MatchesConcatenation) {
  const Bytes a = BytesOf("hello ");
  const Bytes b = BytesOf("world");
  EXPECT_EQ(Sha256Digest2(a, b), Sha256Digest(Concat(a, b)));
}

TEST(Sha256Test, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha256Digest(BytesOf("a")), Sha256Digest(BytesOf("b")));
  Bytes x(100, 0);
  Bytes y(100, 0);
  y[99] = 1;
  EXPECT_NE(Sha256Digest(x), Sha256Digest(y));
}

TEST(Sha256Test, DigestBytesCopiesAll32) {
  const Digest d = Sha256Digest(BytesOf("abc"));
  const Bytes b = DigestBytes(d);
  ASSERT_EQ(b.size(), kSha256DigestSize);
  EXPECT_TRUE(std::equal(b.begin(), b.end(), d.begin()));
}

// RFC 4231 test vectors.
TEST(HmacSha256Test, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Digest mac = HmacSha256(key, BytesOf("Hi There"));
  EXPECT_EQ(HexDigest(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256Test, Rfc4231Case2) {
  const Digest mac =
      HmacSha256(BytesOf("Jefe"), BytesOf("what do ya want for nothing?"));
  EXPECT_EQ(HexDigest(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256Test, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(HexDigest(HmacSha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256Test, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key.
  const Bytes key(131, 0xaa);
  const Digest mac = HmacSha256(
      key, BytesOf("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(HexDigest(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256Test, KeySensitivity) {
  const Bytes data = BytesOf("payload");
  EXPECT_NE(HmacSha256(BytesOf("k1"), data), HmacSha256(BytesOf("k2"), data));
}

}  // namespace
}  // namespace adlp::crypto
