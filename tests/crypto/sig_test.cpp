// The pluggable signature layer: both algorithms satisfy the same contract,
// keys round-trip the wire encoding, and cross-algorithm confusion is
// rejected.
#include "crypto/sig.h"

#include <gtest/gtest.h>
#include <map>

#include "wire/wire.h"

namespace adlp::crypto {
namespace {

class SigTest : public ::testing::TestWithParam<SigAlgorithm> {
 protected:
  static const SigKeyPair& Key(SigAlgorithm alg) {
    static std::map<SigAlgorithm, SigKeyPair> cache;
    auto it = cache.find(alg);
    if (it == cache.end()) {
      Rng rng(777 + static_cast<int>(alg));
      it = cache.emplace(alg, GenerateSigKeyPair(rng, alg, 512)).first;
    }
    return it->second;
  }
};

TEST_P(SigTest, SignVerifyRoundTrip) {
  const auto& kp = Key(GetParam());
  const Digest digest = Sha256Digest(BytesOf("adlp"));
  const Bytes sig = SignDigest(kp.priv, digest);
  EXPECT_EQ(sig.size(), kp.pub.SignatureSize());
  EXPECT_TRUE(VerifyDigest(kp.pub, digest, sig));
}

TEST_P(SigTest, DifferentDigestRejected) {
  const auto& kp = Key(GetParam());
  const Bytes sig = SignDigest(kp.priv, Sha256Digest(BytesOf("one")));
  EXPECT_FALSE(VerifyDigest(kp.pub, Sha256Digest(BytesOf("two")), sig));
}

TEST_P(SigTest, PublicKeyWireRoundTrip) {
  const auto& kp = Key(GetParam());
  const PublicKey parsed = ParsePublicKey(SerializePublicKey(kp.pub));
  EXPECT_EQ(parsed, kp.pub);
  // The parsed key still verifies real signatures.
  const Digest digest = Sha256Digest(BytesOf("roundtrip"));
  EXPECT_TRUE(VerifyDigest(parsed, digest, SignDigest(kp.priv, digest)));
}

TEST_P(SigTest, EmptySignatureRejected) {
  const auto& kp = Key(GetParam());
  EXPECT_FALSE(VerifyDigest(kp.pub, Sha256Digest(BytesOf("x")), Bytes{}));
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, SigTest,
    ::testing::Values(SigAlgorithm::kRsaPkcs1Sha256, SigAlgorithm::kEd25519),
    [](const ::testing::TestParamInfo<SigAlgorithm>& info) {
      return info.param == SigAlgorithm::kEd25519 ? "ed25519" : "rsa";
    });

TEST(SigCrossTest, AlgorithmsDoNotVerifyEachOther) {
  Rng rng(1);
  const SigKeyPair rsa = GenerateSigKeyPair(rng, SigAlgorithm::kRsaPkcs1Sha256, 512);
  const SigKeyPair ed = GenerateSigKeyPair(rng, SigAlgorithm::kEd25519);
  const Digest digest = Sha256Digest(BytesOf("cross"));
  EXPECT_FALSE(VerifyDigest(rsa.pub, digest, SignDigest(ed.priv, digest)));
  EXPECT_FALSE(VerifyDigest(ed.pub, digest, SignDigest(rsa.priv, digest)));
}

TEST(SigCrossTest, SignatureSizes) {
  Rng rng(2);
  EXPECT_EQ(GenerateSigKeyPair(rng, SigAlgorithm::kRsaPkcs1Sha256, 1024)
                .pub.SignatureSize(),
            128u);  // the paper's RSA-1024
  EXPECT_EQ(GenerateSigKeyPair(rng, SigAlgorithm::kEd25519).pub.SignatureSize(),
            64u);  // the lightweight alternative
}

TEST(SigCrossTest, ParseRejectsBadEd25519Length) {
  wire::Writer w;
  w.PutU64(1, static_cast<std::uint64_t>(SigAlgorithm::kEd25519));
  w.PutBytes(4, Bytes(31, 1));  // one byte short
  EXPECT_THROW(ParsePublicKey(w.Data()), wire::WireError);
}

TEST(SigCrossTest, AlgorithmNames) {
  EXPECT_EQ(SigAlgorithmName(SigAlgorithm::kRsaPkcs1Sha256),
            "rsa-pkcs1-sha256");
  EXPECT_EQ(SigAlgorithmName(SigAlgorithm::kEd25519), "ed25519");
}

}  // namespace
}  // namespace adlp::crypto
