// The pluggable signature layer: both algorithms satisfy the same contract,
// keys round-trip the wire encoding, and cross-algorithm confusion is
// rejected.
#include "crypto/sig.h"

#include <gtest/gtest.h>
#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "wire/wire.h"

namespace adlp::crypto {
namespace {

class SigTest : public ::testing::TestWithParam<SigAlgorithm> {
 protected:
  static const SigKeyPair& Key(SigAlgorithm alg) {
    static std::map<SigAlgorithm, SigKeyPair> cache;
    auto it = cache.find(alg);
    if (it == cache.end()) {
      Rng rng(777 + static_cast<int>(alg));
      it = cache.emplace(alg, GenerateSigKeyPair(rng, alg, 512)).first;
    }
    return it->second;
  }
};

TEST_P(SigTest, SignVerifyRoundTrip) {
  const auto& kp = Key(GetParam());
  const Digest digest = Sha256Digest(BytesOf("adlp"));
  const Bytes sig = SignDigest(kp.priv, digest);
  EXPECT_EQ(sig.size(), kp.pub.SignatureSize());
  EXPECT_TRUE(VerifyDigest(kp.pub, digest, sig));
}

TEST_P(SigTest, DifferentDigestRejected) {
  const auto& kp = Key(GetParam());
  const Bytes sig = SignDigest(kp.priv, Sha256Digest(BytesOf("one")));
  EXPECT_FALSE(VerifyDigest(kp.pub, Sha256Digest(BytesOf("two")), sig));
}

TEST_P(SigTest, PublicKeyWireRoundTrip) {
  const auto& kp = Key(GetParam());
  const PublicKey parsed = ParsePublicKey(SerializePublicKey(kp.pub));
  EXPECT_EQ(parsed, kp.pub);
  // The parsed key still verifies real signatures.
  const Digest digest = Sha256Digest(BytesOf("roundtrip"));
  EXPECT_TRUE(VerifyDigest(parsed, digest, SignDigest(kp.priv, digest)));
}

TEST_P(SigTest, EmptySignatureRejected) {
  const auto& kp = Key(GetParam());
  EXPECT_FALSE(VerifyDigest(kp.pub, Sha256Digest(BytesOf("x")), Bytes{}));
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, SigTest,
    ::testing::Values(SigAlgorithm::kRsaPkcs1Sha256, SigAlgorithm::kEd25519),
    [](const ::testing::TestParamInfo<SigAlgorithm>& info) {
      return info.param == SigAlgorithm::kEd25519 ? "ed25519" : "rsa";
    });

TEST(SigCrossTest, AlgorithmsDoNotVerifyEachOther) {
  Rng rng(1);
  const SigKeyPair rsa = GenerateSigKeyPair(rng, SigAlgorithm::kRsaPkcs1Sha256, 512);
  const SigKeyPair ed = GenerateSigKeyPair(rng, SigAlgorithm::kEd25519);
  const Digest digest = Sha256Digest(BytesOf("cross"));
  EXPECT_FALSE(VerifyDigest(rsa.pub, digest, SignDigest(ed.priv, digest)));
  EXPECT_FALSE(VerifyDigest(ed.pub, digest, SignDigest(rsa.priv, digest)));
}

TEST(SigCrossTest, SignatureSizes) {
  Rng rng(2);
  EXPECT_EQ(GenerateSigKeyPair(rng, SigAlgorithm::kRsaPkcs1Sha256, 1024)
                .pub.SignatureSize(),
            128u);  // the paper's RSA-1024
  EXPECT_EQ(GenerateSigKeyPair(rng, SigAlgorithm::kEd25519).pub.SignatureSize(),
            64u);  // the lightweight alternative
}

TEST(SigCrossTest, ParseRejectsBadEd25519Length) {
  wire::Writer w;
  w.PutU64(1, static_cast<std::uint64_t>(SigAlgorithm::kEd25519));
  w.PutBytes(4, Bytes(31, 1));  // one byte short
  EXPECT_THROW(ParsePublicKey(w.Data()), wire::WireError);
}

TEST(SigCrossTest, ParseRejectsUnknownAlgorithm) {
  // The alg field is attacker-controlled wire input; any value outside the
  // enum must throw instead of being cast into a SigAlgorithm nothing
  // handles.
  for (const std::uint64_t bad :
       {std::uint64_t{2}, std::uint64_t{255}, ~std::uint64_t{0}}) {
    wire::Writer w;
    w.PutU64(1, bad);
    w.PutBytes(4, Bytes(32, 1));
    EXPECT_THROW(ParsePublicKey(w.Data()), wire::WireError) << bad;
  }
  // The known values still parse.
  for (const SigAlgorithm good :
       {SigAlgorithm::kRsaPkcs1Sha256, SigAlgorithm::kEd25519}) {
    wire::Writer w;
    w.PutU64(1, static_cast<std::uint64_t>(good));
    EXPECT_EQ(ParsePublicKey(w.Data()).alg, good);
  }
}

TEST(SigCrossTest, AlgorithmNames) {
  EXPECT_EQ(SigAlgorithmName(SigAlgorithm::kRsaPkcs1Sha256),
            "rsa-pkcs1-sha256");
  EXPECT_EQ(SigAlgorithmName(SigAlgorithm::kEd25519), "ed25519");
}

TEST(VerifyCacheTest, AgreesWithDirectVerification) {
  Rng rng(3);
  const SigKeyPair kp =
      GenerateSigKeyPair(rng, SigAlgorithm::kRsaPkcs1Sha256, 512);
  const Digest digest = Sha256Digest(BytesOf("memo"));
  const Bytes good = SignDigest(kp.priv, digest);
  Bytes bad = good;
  bad[0] ^= 0x01;

  VerifyCache cache;
  EXPECT_TRUE(cache.Verify(kp.pub, digest, good));
  EXPECT_FALSE(cache.Verify(kp.pub, digest, bad));
  // Memoized answers are stable, including the negative one: a cached
  // "forged" stays forged.
  EXPECT_TRUE(cache.Verify(kp.pub, digest, good));
  EXPECT_FALSE(cache.Verify(kp.pub, digest, bad));
  EXPECT_EQ(cache.Size(), 2u);
  EXPECT_EQ(cache.Lookups(), 4u);
  EXPECT_EQ(cache.Hits(), 2u);
}

TEST(VerifyCacheTest, DistinguishesKeyDigestAndSignature) {
  Rng rng(4);
  const SigKeyPair a =
      GenerateSigKeyPair(rng, SigAlgorithm::kRsaPkcs1Sha256, 512);
  const SigKeyPair b =
      GenerateSigKeyPair(rng, SigAlgorithm::kRsaPkcs1Sha256, 512);
  const Digest d1 = Sha256Digest(BytesOf("d1"));
  const Digest d2 = Sha256Digest(BytesOf("d2"));
  const Bytes sig_a1 = SignDigest(a.priv, d1);

  VerifyCache cache;
  EXPECT_TRUE(cache.Verify(a.pub, d1, sig_a1));
  // Same signature under a different key or digest is a distinct triple and
  // must re-verify to false, not hit the cached true.
  EXPECT_FALSE(cache.Verify(b.pub, d1, sig_a1));
  EXPECT_FALSE(cache.Verify(a.pub, d2, sig_a1));
  EXPECT_EQ(cache.Size(), 3u);
  EXPECT_EQ(cache.Hits(), 0u);
}

TEST(VerifyCacheTest, MemoKeyDomainSeparatesAlgorithm) {
  // Regression guard: the memo key hashes the wire-encoded public key,
  // whose first field is the algorithm tag. Two keys identical in every
  // byte of key material but differing in `alg` must occupy distinct memo
  // slots — a cached Ed25519 "valid" may never answer for the same bytes
  // reinterpreted under another algorithm.
  Rng rng(9);
  const SigKeyPair ed = GenerateSigKeyPair(rng, SigAlgorithm::kEd25519);
  const Digest digest = Sha256Digest(BytesOf("alg-domain"));
  const Bytes sig = SignDigest(ed.priv, digest);

  PublicKey cross = ed.pub;
  cross.alg = SigAlgorithm::kRsaPkcs1Sha256;  // same struct bytes, other alg

  VerifyCache cache;
  EXPECT_TRUE(cache.Verify(ed.pub, digest, sig));
  EXPECT_FALSE(cache.Verify(cross, digest, sig));
  EXPECT_EQ(cache.Size(), 2u) << "triples collided across algorithms";
  EXPECT_EQ(cache.Hits(), 0u);
}

TEST(VerifyCacheTest, ConcurrentLookupsConverge) {
  Rng rng(5);
  const SigKeyPair kp =
      GenerateSigKeyPair(rng, SigAlgorithm::kRsaPkcs1Sha256, 512);
  constexpr std::size_t kTriples = 8;
  std::vector<Digest> digests;
  std::vector<Bytes> sigs;
  for (std::size_t i = 0; i < kTriples; ++i) {
    digests.push_back(Sha256Digest(BytesOf("t" + std::to_string(i))));
    sigs.push_back(SignDigest(kp.priv, digests.back()));
  }

  VerifyCache cache;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 8; ++round) {
        for (std::size_t i = 0; i < kTriples; ++i) {
          if (!cache.Verify(kp.pub, digests[i], sigs[i])) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(cache.Size(), kTriples);
}

TEST(VerifyBatchTest, MatchesIndividualVerification) {
  Rng rng(6);
  const SigKeyPair kp =
      GenerateSigKeyPair(rng, SigAlgorithm::kRsaPkcs1Sha256, 512);
  const Digest d1 = Sha256Digest(BytesOf("b1"));
  const Digest d2 = Sha256Digest(BytesOf("b2"));
  const Bytes s1 = SignDigest(kp.priv, d1);
  Bytes forged = s1;
  forged.back() ^= 0x80;

  std::vector<VerifyRequest> requests;
  requests.push_back({&kp.pub, d1, s1});                    // valid
  requests.push_back({&kp.pub, d2, s1});                    // wrong digest
  requests.push_back({&kp.pub, d1, forged});                // forged
  requests.push_back({&kp.pub, d1, s1});                    // duplicate of [0]
  requests.push_back({nullptr, d1, s1});                    // no key
  requests.push_back({&kp.pub, d1, BytesView{}});           // empty signature

  const std::vector<std::uint8_t> results = VerifyDigestBatch(requests);
  ASSERT_EQ(results.size(), requests.size());
  EXPECT_EQ(results[0], 1);
  EXPECT_EQ(results[1], 0);
  EXPECT_EQ(results[2], 0);
  EXPECT_EQ(results[3], 1);
  EXPECT_EQ(results[4], 0);
  EXPECT_EQ(results[5], 0);
}

TEST(VerifyBatchTest, MixedAlgorithmBatchGroupsCorrectly) {
  // RSA and Ed25519 requests in one batch: the Ed25519 group runs through
  // the combined-equation kernel, RSA stays per-signature, and every
  // verdict matches VerifyDigest.
  Rng rng(8);
  const SigKeyPair rsa =
      GenerateSigKeyPair(rng, SigAlgorithm::kRsaPkcs1Sha256, 512);
  const SigKeyPair ed = GenerateSigKeyPair(rng, SigAlgorithm::kEd25519);
  const Digest d1 = Sha256Digest(BytesOf("m1"));
  const Digest d2 = Sha256Digest(BytesOf("m2"));
  const Bytes rsa_sig = SignDigest(rsa.priv, d1);
  const Bytes ed_sig1 = SignDigest(ed.priv, d1);
  const Bytes ed_sig2 = SignDigest(ed.priv, d2);
  Bytes ed_forged = ed_sig2;
  ed_forged[10] ^= 0x04;

  std::vector<VerifyRequest> requests;
  requests.push_back({&rsa.pub, d1, rsa_sig});    // valid RSA
  requests.push_back({&ed.pub, d1, ed_sig1});     // valid Ed25519
  requests.push_back({&rsa.pub, d2, rsa_sig});    // RSA wrong digest
  requests.push_back({&ed.pub, d2, ed_forged});   // forged Ed25519
  requests.push_back({&ed.pub, d2, ed_sig2});     // valid Ed25519
  requests.push_back({&ed.pub, d1, ed_sig1});     // duplicate of [1]

  const std::vector<std::uint8_t> results = VerifyDigestBatch(requests);
  const std::vector<std::uint8_t> expected{1, 1, 0, 0, 1, 1};
  EXPECT_EQ(results, expected);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(results[i] != 0,
              VerifyDigest(*requests[i].key, requests[i].digest,
                           requests[i].signature))
        << i;
  }
}

TEST(VerifyBatchTest, SharesAnExternalCache) {
  Rng rng(7);
  const SigKeyPair kp =
      GenerateSigKeyPair(rng, SigAlgorithm::kRsaPkcs1Sha256, 512);
  const Digest digest = Sha256Digest(BytesOf("shared"));
  const Bytes sig = SignDigest(kp.priv, digest);

  VerifyCache cache;
  std::vector<VerifyRequest> requests(3, VerifyRequest{&kp.pub, digest, sig});
  const std::vector<std::uint8_t> first = VerifyDigestBatch(requests, &cache);
  EXPECT_EQ(first, (std::vector<std::uint8_t>{1, 1, 1}));
  // In-batch dedup means only the first occurrence consulted the cache.
  EXPECT_EQ(cache.Lookups(), 1u);
  EXPECT_EQ(cache.Size(), 1u);

  // A second batch hits the shared cache instead of re-verifying.
  const std::vector<std::uint8_t> second = VerifyDigestBatch(requests, &cache);
  EXPECT_EQ(second, first);
  EXPECT_EQ(cache.Hits(), 1u);
}

}  // namespace
}  // namespace adlp::crypto
