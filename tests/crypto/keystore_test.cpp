#include "crypto/keystore.h"

#include <gtest/gtest.h>

#include <thread>

namespace adlp::crypto {
namespace {

PublicKey MakeKey(std::uint64_t seed) {
  Rng rng(seed);
  // Alternate algorithms so the store is exercised with both.
  const SigAlgorithm alg = (seed % 2 == 0) ? SigAlgorithm::kEd25519
                                           : SigAlgorithm::kRsaPkcs1Sha256;
  return GenerateSigKeyPair(rng, alg, 256).pub;
}

TEST(KeyStoreTest, RegisterAndFind) {
  KeyStore store;
  const PublicKey key = MakeKey(1);
  store.Register("camera", key);
  ASSERT_TRUE(store.Contains("camera"));
  EXPECT_EQ(store.Find("camera"), key);
  EXPECT_EQ(store.Size(), 1u);
}

TEST(KeyStoreTest, MissingIdReturnsNullopt) {
  KeyStore store;
  EXPECT_FALSE(store.Find("ghost").has_value());
  EXPECT_FALSE(store.Contains("ghost"));
}

TEST(KeyStoreTest, ReRegistrationReplaces) {
  KeyStore store;
  store.Register("node", MakeKey(1));
  const PublicKey newer = MakeKey(2);
  store.Register("node", newer);
  EXPECT_EQ(store.Find("node"), newer);
  EXPECT_EQ(store.Size(), 1u);
}

TEST(KeyStoreTest, RegisteredIdsSorted) {
  KeyStore store;
  store.Register("b", MakeKey(1));
  store.Register("a", MakeKey(2));
  store.Register("c", MakeKey(3));
  EXPECT_EQ(store.RegisteredIds(),
            (std::vector<ComponentId>{"a", "b", "c"}));
}

TEST(KeyStoreTest, ConcurrentRegistrationIsSafe) {
  KeyStore store;
  const PublicKey key = MakeKey(1);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&store, &key, t] {
      for (int i = 0; i < 100; ++i) {
        store.Register("node-" + std::to_string(t) + "-" + std::to_string(i),
                       key);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.Size(), 800u);
}

}  // namespace
}  // namespace adlp::crypto
