#include "crypto/bigint.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace adlp::crypto {
namespace {

TEST(BigIntTest, DefaultIsZero) {
  BigInt z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_FALSE(z.IsNegative());
  EXPECT_EQ(z.BitLength(), 0u);
  EXPECT_EQ(z.ToHex(), "0");
  EXPECT_EQ(z.ToDecimal(), "0");
}

TEST(BigIntTest, FromUint64AndBack) {
  BigInt v(std::uint64_t{0xdeadbeefcafebabe});
  EXPECT_EQ(v.ToHex(), "deadbeefcafebabe");
  EXPECT_EQ(v.LowU64(), 0xdeadbeefcafebabeull);
}

TEST(BigIntTest, NegativeIntConstruction) {
  BigInt v(-42);
  EXPECT_TRUE(v.IsNegative());
  EXPECT_EQ(v.ToDecimal(), "-42");
  EXPECT_EQ((-v).ToDecimal(), "42");
}

TEST(BigIntTest, HexRoundTripMultiLimb) {
  const std::string hex =
      "123456789abcdef0fedcba9876543210aaaabbbbccccdddd";
  EXPECT_EQ(BigInt::FromHex(hex).ToHex(), hex);
}

TEST(BigIntTest, DecimalRoundTrip) {
  const std::string dec = "123456789012345678901234567890123456789";
  EXPECT_EQ(BigInt::FromDecimal(dec).ToDecimal(), dec);
}

TEST(BigIntTest, FromHexRejectsGarbage) {
  EXPECT_THROW(BigInt::FromHex("xyz"), std::invalid_argument);
  EXPECT_THROW(BigInt::FromHex(""), std::invalid_argument);
  EXPECT_THROW(BigInt::FromDecimal("12a"), std::invalid_argument);
}

TEST(BigIntTest, BytesBigEndianRoundTrip) {
  const Bytes raw = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09};
  const BigInt v = BigInt::FromBytesBE(raw);
  EXPECT_EQ(v.ToBytesBE(), raw);
}

TEST(BigIntTest, BytesLeadingZerosStripped) {
  const Bytes raw = {0x00, 0x00, 0x01, 0x02};
  EXPECT_EQ(BigInt::FromBytesBE(raw).ToBytesBE(), (Bytes{0x01, 0x02}));
}

TEST(BigIntTest, PaddedBytesWidth) {
  const BigInt v(std::uint64_t{0x0102});
  const Bytes padded = v.ToBytesBEPadded(8);
  EXPECT_EQ(padded, (Bytes{0, 0, 0, 0, 0, 0, 0x01, 0x02}));
  EXPECT_THROW(v.ToBytesBEPadded(1), std::length_error);
}

TEST(BigIntTest, AdditionWithCarryChain) {
  const BigInt a = BigInt::FromHex("ffffffffffffffffffffffffffffffff");
  const BigInt one(1);
  EXPECT_EQ((a + one).ToHex(), "100000000000000000000000000000000");
}

TEST(BigIntTest, SubtractionBorrow) {
  const BigInt a = BigInt::FromHex("100000000000000000000000000000000");
  EXPECT_EQ((a - BigInt(1)).ToHex(), "ffffffffffffffffffffffffffffffff");
}

TEST(BigIntTest, SignedArithmetic) {
  const BigInt a(10), b(25);
  EXPECT_EQ((a - b).ToDecimal(), "-15");
  EXPECT_EQ((a - b + b).ToDecimal(), "10");
  EXPECT_EQ(((-a) * b).ToDecimal(), "-250");
  EXPECT_EQ(((-a) * (-b)).ToDecimal(), "250");
  EXPECT_EQ((a + (-a)).ToDecimal(), "0");
}

TEST(BigIntTest, MultiplicationKnownProduct) {
  const BigInt a = BigInt::FromDecimal("123456789123456789");
  const BigInt b = BigInt::FromDecimal("987654321987654321");
  EXPECT_EQ((a * b).ToDecimal(), "121932631356500531347203169112635269");
}

TEST(BigIntTest, DivisionBasic) {
  const BigInt a = BigInt::FromDecimal("1000000000000000000000");
  const BigInt b = BigInt::FromDecimal("7");
  BigInt q, r;
  BigInt::DivMod(a, b, q, r);
  EXPECT_EQ(q.ToDecimal(), "142857142857142857142");
  EXPECT_EQ(r.ToDecimal(), "6");
}

TEST(BigIntTest, DivisionByZeroThrows) {
  EXPECT_THROW(BigInt(1) / BigInt{}, std::domain_error);
  EXPECT_THROW(BigInt(1) % BigInt{}, std::domain_error);
}

TEST(BigIntTest, TruncatedDivisionSigns) {
  // C-style truncation: -7 / 2 == -3 rem -1.
  BigInt q, r;
  BigInt::DivMod(BigInt(-7), BigInt(2), q, r);
  EXPECT_EQ(q.ToDecimal(), "-3");
  EXPECT_EQ(r.ToDecimal(), "-1");
  BigInt::DivMod(BigInt(7), BigInt(-2), q, r);
  EXPECT_EQ(q.ToDecimal(), "-3");
  EXPECT_EQ(r.ToDecimal(), "1");
}

TEST(BigIntTest, ModFloorAlwaysNonNegative) {
  EXPECT_EQ(BigInt(-7).ModFloor(BigInt(5)).ToDecimal(), "3");
  EXPECT_EQ(BigInt(7).ModFloor(BigInt(5)).ToDecimal(), "2");
  EXPECT_EQ(BigInt(-10).ModFloor(BigInt(5)).ToDecimal(), "0");
}

TEST(BigIntTest, DivModPropertyRandomized) {
  Rng rng(123);
  for (int i = 0; i < 200; ++i) {
    const std::size_t abits = 1 + rng.UniformBelow(512);
    const std::size_t bbits = 1 + rng.UniformBelow(256);
    const BigInt a = BigInt::RandomBits(rng, abits);
    const BigInt b = BigInt::RandomBits(rng, bbits);
    BigInt q, r;
    BigInt::DivMod(a, b, q, r);
    EXPECT_EQ(q * b + r, a) << "iteration " << i;
    EXPECT_LT(r, b);
    EXPECT_FALSE(r.IsNegative());
  }
}

TEST(BigIntTest, ShiftRoundTrip) {
  Rng rng(7);
  const BigInt v = BigInt::RandomBits(rng, 200);
  for (std::size_t s : {1u, 13u, 64u, 65u, 127u, 200u}) {
    EXPECT_EQ((v << s) >> s, v) << "shift " << s;
  }
}

TEST(BigIntTest, ShiftEquivalentToMulDiv) {
  const BigInt v = BigInt::FromDecimal("987654321987654321");
  EXPECT_EQ(v << 10, v * BigInt(std::uint64_t{1024}));
  EXPECT_EQ(v >> 3, v / BigInt(8));
}

TEST(BigIntTest, ShiftBeyondWidthIsZero) {
  EXPECT_TRUE((BigInt(5) >> 100).IsZero());
}

TEST(BigIntTest, ComparisonOrdering) {
  EXPECT_LT(BigInt(-5), BigInt(3));
  EXPECT_LT(BigInt(-5), BigInt(-3));
  EXPECT_GT(BigInt::FromHex("10000000000000000"), BigInt(std::uint64_t{~0ull}));
  EXPECT_EQ(BigInt(7), BigInt(7));
}

TEST(BigIntTest, BitAccess) {
  const BigInt v = BigInt::FromHex("8000000000000001");
  EXPECT_TRUE(v.Bit(0));
  EXPECT_TRUE(v.Bit(63));
  EXPECT_FALSE(v.Bit(1));
  EXPECT_FALSE(v.Bit(64));
  EXPECT_EQ(v.BitLength(), 64u);
}

TEST(BigIntTest, GcdKnownValues) {
  EXPECT_EQ(BigInt::Gcd(BigInt(48), BigInt(36)).ToDecimal(), "12");
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(5)).ToDecimal(), "1");
  EXPECT_EQ(BigInt::Gcd(BigInt{}, BigInt(9)).ToDecimal(), "9");
}

TEST(BigIntTest, ModInverseRoundTrip) {
  Rng rng(99);
  const BigInt m = BigInt::FromDecimal("1000000007");  // prime
  for (int i = 0; i < 50; ++i) {
    const BigInt a = BigInt::RandomBelow(rng, m - BigInt(1)) + BigInt(1);
    const BigInt inv = BigInt::ModInverse(a, m);
    EXPECT_EQ((a * inv) % m, BigInt(1));
  }
}

TEST(BigIntTest, ModInverseNonCoprimeThrows) {
  EXPECT_THROW(BigInt::ModInverse(BigInt(6), BigInt(9)), std::domain_error);
}

TEST(BigIntTest, ModExpSmallKnown) {
  EXPECT_EQ(BigInt::ModExp(BigInt(4), BigInt(13), BigInt(497)).ToDecimal(),
            "445");
  EXPECT_EQ(BigInt::ModExp(BigInt(2), BigInt(10), BigInt(1025)).ToDecimal(),
            "1024");
  EXPECT_EQ(BigInt::ModExp(BigInt(5), BigInt{}, BigInt(7)).ToDecimal(), "1");
}

TEST(BigIntTest, ModExpFermat) {
  // a^(p-1) = 1 mod p for prime p.
  const BigInt p = BigInt::FromDecimal("1000000007");
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const BigInt a = BigInt::RandomBelow(rng, p - BigInt(2)) + BigInt(1);
    EXPECT_EQ(BigInt::ModExp(a, p - BigInt(1), p), BigInt(1));
  }
}

TEST(BigIntTest, ModExpEvenModulus) {
  // Exercises the non-Montgomery path.
  EXPECT_EQ(BigInt::ModExp(BigInt(3), BigInt(5), BigInt(100)).ToDecimal(),
            "43");
}

TEST(BigIntTest, ModExpModulusOne) {
  EXPECT_TRUE(BigInt::ModExp(BigInt(3), BigInt(5), BigInt(1)).IsZero());
}

TEST(BigIntTest, RandomBitsExactLength) {
  Rng rng(3);
  for (std::size_t bits : {1u, 8u, 63u, 64u, 65u, 512u, 1024u}) {
    EXPECT_EQ(BigInt::RandomBits(rng, bits).BitLength(), bits);
  }
}

TEST(BigIntTest, RandomBelowInRange) {
  Rng rng(11);
  const BigInt bound = BigInt::FromDecimal("1000");
  for (int i = 0; i < 100; ++i) {
    const BigInt v = BigInt::RandomBelow(rng, bound);
    EXPECT_LT(v, bound);
    EXPECT_FALSE(v.IsNegative());
  }
}

TEST(BigIntTest, KnuthAddBackPath) {
  // Crafted divisor/dividend pairs that stress the qhat correction.
  const BigInt num = BigInt::FromHex(
      "7fffffffffffffff8000000000000000000000000000000000000000");
  const BigInt den = BigInt::FromHex("80000000000000000000000000000001");
  BigInt q, r;
  BigInt::DivMod(num, den, q, r);
  EXPECT_EQ(q * den + r, num);
  EXPECT_LT(r, den);
}

}  // namespace
}  // namespace adlp::crypto
