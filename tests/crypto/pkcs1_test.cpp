#include "crypto/pkcs1.h"

#include <gtest/gtest.h>

namespace adlp::crypto {
namespace {

const RsaKeyPair& KeyA() {
  static const RsaKeyPair kp = [] {
    Rng rng(11);
    return GenerateRsaKeyPair(rng, 512);
  }();
  return kp;
}

const RsaKeyPair& KeyB() {
  static const RsaKeyPair kp = [] {
    Rng rng(22);
    return GenerateRsaKeyPair(rng, 512);
  }();
  return kp;
}

TEST(EmsaPkcs1Test, EncodingStructure) {
  const Digest d = Sha256Digest(BytesOf("data"));
  const Bytes em = EmsaPkcs1V15Encode(d, 64);
  ASSERT_EQ(em.size(), 64u);
  EXPECT_EQ(em[0], 0x00);
  EXPECT_EQ(em[1], 0x01);
  // Padding of 0xff until the 0x00 separator.
  const std::size_t t_len = 19 + 32;  // DigestInfo + digest
  for (std::size_t i = 2; i < 64 - t_len - 1; ++i) EXPECT_EQ(em[i], 0xff);
  EXPECT_EQ(em[64 - t_len - 1], 0x00);
  // Digest occupies the last 32 bytes.
  EXPECT_TRUE(std::equal(d.begin(), d.end(), em.end() - 32));
}

TEST(EmsaPkcs1Test, TooShortThrows) {
  const Digest d = Sha256Digest(BytesOf("data"));
  EXPECT_THROW(EmsaPkcs1V15Encode(d, 32), std::length_error);
  EXPECT_NO_THROW(EmsaPkcs1V15Encode(d, 62));  // minimum: tLen + 11
}

TEST(Pkcs1Test, SignVerifyRoundTrip) {
  const Bytes msg = BytesOf("the quick brown fox");
  const Bytes sig = Pkcs1SignData(KeyA().priv, msg);
  EXPECT_EQ(sig.size(), KeyA().pub.ModulusBytes());
  EXPECT_TRUE(Pkcs1VerifyData(KeyA().pub, msg, sig));
}

TEST(Pkcs1Test, SignatureIsDeterministic) {
  const Bytes msg = BytesOf("deterministic");
  EXPECT_EQ(Pkcs1SignData(KeyA().priv, msg), Pkcs1SignData(KeyA().priv, msg));
}

TEST(Pkcs1Test, TamperedMessageRejected) {
  Bytes msg = BytesOf("important payload");
  const Bytes sig = Pkcs1SignData(KeyA().priv, msg);
  msg[0] ^= 1;
  EXPECT_FALSE(Pkcs1VerifyData(KeyA().pub, msg, sig));
}

TEST(Pkcs1Test, TamperedSignatureRejected) {
  const Bytes msg = BytesOf("payload");
  Bytes sig = Pkcs1SignData(KeyA().priv, msg);
  for (std::size_t pos : {0u, 31u, 63u}) {
    Bytes bad = sig;
    bad[pos] ^= 0x80;
    EXPECT_FALSE(Pkcs1VerifyData(KeyA().pub, msg, bad)) << "pos " << pos;
  }
}

TEST(Pkcs1Test, WrongKeyRejected) {
  const Bytes msg = BytesOf("payload");
  const Bytes sig = Pkcs1SignData(KeyA().priv, msg);
  EXPECT_FALSE(Pkcs1VerifyData(KeyB().pub, msg, sig));
}

TEST(Pkcs1Test, WrongLengthSignatureRejected) {
  const Bytes msg = BytesOf("payload");
  Bytes sig = Pkcs1SignData(KeyA().priv, msg);
  sig.pop_back();
  EXPECT_FALSE(Pkcs1VerifyData(KeyA().pub, msg, sig));
  sig.push_back(0);
  sig.push_back(0);
  EXPECT_FALSE(Pkcs1VerifyData(KeyA().pub, msg, sig));
  EXPECT_FALSE(Pkcs1VerifyData(KeyA().pub, msg, Bytes{}));
}

TEST(Pkcs1Test, SignatureRepresentativeAboveModulusRejected) {
  const Bytes msg = BytesOf("payload");
  // All-0xff signature encodes a value >= n.
  const Bytes huge(KeyA().pub.ModulusBytes(), 0xff);
  EXPECT_FALSE(Pkcs1VerifyData(KeyA().pub, msg, huge));
}

TEST(Pkcs1Test, RandomSignatureRejected) {
  Rng rng(9);
  const Bytes msg = BytesOf("payload");
  for (int i = 0; i < 10; ++i) {
    Bytes random_sig = rng.RandomBytes(KeyA().pub.ModulusBytes());
    random_sig[0] = 0;  // keep the representative below n
    EXPECT_FALSE(Pkcs1VerifyData(KeyA().pub, msg, random_sig));
  }
}

TEST(Pkcs1Test, DigestApiMatchesDataApi) {
  const Bytes msg = BytesOf("either api");
  const Digest d = Sha256Digest(msg);
  const Bytes sig = Pkcs1Sign(KeyA().priv, d);
  EXPECT_EQ(sig, Pkcs1SignData(KeyA().priv, msg));
  EXPECT_TRUE(Pkcs1Verify(KeyA().pub, d, sig));
}

TEST(Pkcs1Test, EmptyMessageSignable) {
  const Bytes sig = Pkcs1SignData(KeyA().priv, {});
  EXPECT_TRUE(Pkcs1VerifyData(KeyA().pub, {}, sig));
}

TEST(Pkcs1Test, LargeMessageSignable) {
  Rng rng(10);
  const Bytes msg = rng.RandomBytes(1 << 20);  // 1 MiB (Image-scale)
  const Bytes sig = Pkcs1SignData(KeyA().priv, msg);
  EXPECT_TRUE(Pkcs1VerifyData(KeyA().pub, msg, sig));
}

}  // namespace
}  // namespace adlp::crypto
