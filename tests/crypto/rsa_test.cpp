#include "crypto/rsa.h"

#include <gtest/gtest.h>

#include "crypto/prime.h"

namespace adlp::crypto {
namespace {

class RsaTest : public ::testing::Test {
 protected:
  static const RsaKeyPair& Key512() {
    static const RsaKeyPair kp = [] {
      Rng rng(1001);
      return GenerateRsaKeyPair(rng, 512);
    }();
    return kp;
  }
};

TEST_F(RsaTest, ModulusHasExactBits) {
  EXPECT_EQ(Key512().pub.n.BitLength(), 512u);
  EXPECT_EQ(Key512().pub.ModulusBytes(), 64u);
}

TEST_F(RsaTest, KeyInternalConsistency) {
  const RsaPrivateKey& k = Key512().priv;
  EXPECT_EQ(k.p * k.q, k.n);
  const BigInt phi = (k.p - BigInt(1)) * (k.q - BigInt(1));
  EXPECT_EQ((k.e * k.d) % phi, BigInt(1));
  EXPECT_EQ(k.dp, k.d % (k.p - BigInt(1)));
  EXPECT_EQ(k.dq, k.d % (k.q - BigInt(1)));
  EXPECT_EQ((k.q * k.q_inv) % k.p, BigInt(1));
  Rng rng(5);
  EXPECT_TRUE(IsProbablePrime(k.p, rng));
  EXPECT_TRUE(IsProbablePrime(k.q, rng));
}

TEST_F(RsaTest, PublicExponentIsF4) {
  EXPECT_EQ(Key512().pub.e, BigInt(std::uint64_t{65537}));
}

TEST_F(RsaTest, PrivateThenPublicIsIdentity) {
  Rng rng(77);
  for (int i = 0; i < 10; ++i) {
    const BigInt m = BigInt::RandomBelow(rng, Key512().pub.n);
    const BigInt s = RsaPrivateOp(Key512().priv, m);
    EXPECT_EQ(RsaPublicOp(Key512().pub, s), m);
  }
}

TEST_F(RsaTest, PublicThenPrivateIsIdentity) {
  Rng rng(78);
  const BigInt m = BigInt::RandomBelow(rng, Key512().pub.n);
  EXPECT_EQ(RsaPrivateOp(Key512().priv, RsaPublicOp(Key512().pub, m)), m);
}

TEST_F(RsaTest, CrtMatchesPlainExponentiation) {
  Rng rng(79);
  const auto& k = Key512().priv;
  for (int i = 0; i < 5; ++i) {
    const BigInt c = BigInt::RandomBelow(rng, k.n);
    EXPECT_EQ(RsaPrivateOp(k, c), BigInt::ModExp(c, k.d, k.n));
  }
}

TEST_F(RsaTest, OutOfRangeOperandsThrow) {
  EXPECT_THROW(RsaPublicOp(Key512().pub, Key512().pub.n), std::domain_error);
  EXPECT_THROW(RsaPrivateOp(Key512().priv, Key512().pub.n), std::domain_error);
  EXPECT_THROW(RsaPublicOp(Key512().pub, BigInt(-1)), std::domain_error);
}

TEST_F(RsaTest, GenerationRejectsBadParams) {
  Rng rng(2);
  EXPECT_THROW(GenerateRsaKeyPair(rng, 100), std::invalid_argument);
  EXPECT_THROW(GenerateRsaKeyPair(rng, 513), std::invalid_argument);
}

TEST_F(RsaTest, DistinctSeedsDistinctKeys) {
  Rng a(1), b(2);
  EXPECT_NE(GenerateRsaKeyPair(a, 256).pub.n, GenerateRsaKeyPair(b, 256).pub.n);
}

TEST_F(RsaTest, DeterministicGivenSeed) {
  Rng a(33), b(33);
  EXPECT_EQ(GenerateRsaKeyPair(a, 256).pub.n, GenerateRsaKeyPair(b, 256).pub.n);
}

TEST_F(RsaTest, Paper1024BitKey) {
  Rng rng(4242);
  const RsaKeyPair kp = GenerateRsaKeyPair(rng, 1024);
  EXPECT_EQ(kp.pub.ModulusBytes(), 128u);  // the paper's 128-byte signatures
  const BigInt m = BigInt::RandomBelow(rng, kp.pub.n);
  EXPECT_EQ(RsaPublicOp(kp.pub, RsaPrivateOp(kp.priv, m)), m);
}

}  // namespace
}  // namespace adlp::crypto
