#include "crypto/ed25519.h"

#include <gtest/gtest.h>

#include "crypto/sha512.h"

namespace adlp::crypto {
namespace {

std::array<std::uint8_t, 32> Seed(const std::string& hex) {
  const Bytes raw = FromHex(hex);
  std::array<std::uint8_t, 32> out;
  std::copy(raw.begin(), raw.end(), out.begin());
  return out;
}

std::string PubHex(const Ed25519PublicKey& k) {
  return ToHex(BytesView(k.bytes.data(), k.bytes.size()));
}

// --- SHA-512 (FIPS 180-4 / NIST vectors) -----------------------------------

TEST(Sha512Test, Abc) {
  const Digest512 d = Sha512Digest(BytesOf("abc"));
  EXPECT_EQ(ToHex(BytesView(d.data(), d.size())),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512Test, EmptyInput) {
  const Digest512 d = Sha512Digest({});
  EXPECT_EQ(ToHex(BytesView(d.data(), d.size())),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha512Test, TwoBlockMessage) {
  const Digest512 d = Sha512Digest(BytesOf(
      "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
      "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"));
  EXPECT_EQ(ToHex(BytesView(d.data(), d.size())),
            "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018"
            "501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909");
}

TEST(Sha512Test, IncrementalMatchesOneShot) {
  Bytes input(1000);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::uint8_t>(i);
  }
  const Digest512 expected = Sha512Digest(input);
  for (std::size_t split : {1u, 127u, 128u, 129u, 500u}) {
    Sha512 h;
    std::size_t pos = 0;
    while (pos < input.size()) {
      const std::size_t take = std::min(split, input.size() - pos);
      h.Update(BytesView(input.data() + pos, take));
      pos += take;
    }
    EXPECT_EQ(h.Finish(), expected) << split;
  }
}

// --- Ed25519 (RFC 8032 section 7.1 vectors) ---------------------------------

TEST(Ed25519Test, Rfc8032Test1EmptyMessage) {
  const auto kp = Ed25519KeyPairFromSeed(Seed(
      "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60"));
  EXPECT_EQ(PubHex(kp.pub),
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a");
  const Bytes sig = Ed25519Sign(kp.priv, {});
  EXPECT_EQ(ToHex(sig),
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
            "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b");
  EXPECT_TRUE(Ed25519Verify(kp.pub, {}, sig));
}

TEST(Ed25519Test, Rfc8032Test2OneByte) {
  const auto kp = Ed25519KeyPairFromSeed(Seed(
      "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb"));
  EXPECT_EQ(PubHex(kp.pub),
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c");
  const Bytes msg = FromHex("72");
  const Bytes sig = Ed25519Sign(kp.priv, msg);
  EXPECT_EQ(ToHex(sig),
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
            "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00");
  EXPECT_TRUE(Ed25519Verify(kp.pub, msg, sig));
}

TEST(Ed25519Test, Rfc8032Test3TwoBytes) {
  const auto kp = Ed25519KeyPairFromSeed(Seed(
      "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7"));
  EXPECT_EQ(PubHex(kp.pub),
            "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025");
  const Bytes msg = FromHex("af82");
  const Bytes sig = Ed25519Sign(kp.priv, msg);
  EXPECT_EQ(ToHex(sig),
            "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
            "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a");
  EXPECT_TRUE(Ed25519Verify(kp.pub, msg, sig));
}

TEST(Ed25519Test, TamperedMessageRejected) {
  Rng rng(1);
  const auto kp = GenerateEd25519KeyPair(rng);
  Bytes msg = rng.RandomBytes(64);
  const Bytes sig = Ed25519Sign(kp.priv, msg);
  msg[0] ^= 1;
  EXPECT_FALSE(Ed25519Verify(kp.pub, msg, sig));
}

TEST(Ed25519Test, TamperedSignatureRejected) {
  Rng rng(2);
  const auto kp = GenerateEd25519KeyPair(rng);
  const Bytes msg = rng.RandomBytes(64);
  for (std::size_t pos : {0u, 31u, 32u, 63u}) {
    Bytes sig = Ed25519Sign(kp.priv, msg);
    sig[pos] ^= 0x40;
    EXPECT_FALSE(Ed25519Verify(kp.pub, msg, sig)) << pos;
  }
}

TEST(Ed25519Test, WrongKeyRejected) {
  Rng rng(3);
  const auto a = GenerateEd25519KeyPair(rng);
  const auto b = GenerateEd25519KeyPair(rng);
  const Bytes msg = rng.RandomBytes(32);
  EXPECT_FALSE(Ed25519Verify(b.pub, msg, Ed25519Sign(a.priv, msg)));
}

TEST(Ed25519Test, WrongLengthSignatureRejected) {
  Rng rng(4);
  const auto kp = GenerateEd25519KeyPair(rng);
  const Bytes msg = rng.RandomBytes(32);
  Bytes sig = Ed25519Sign(kp.priv, msg);
  sig.pop_back();
  EXPECT_FALSE(Ed25519Verify(kp.pub, msg, sig));
  EXPECT_FALSE(Ed25519Verify(kp.pub, msg, Bytes{}));
}

TEST(Ed25519Test, ScalarAboveGroupOrderRejected) {
  // Malleability check: bump S by L; the signature must be rejected even
  // though the group equation still holds.
  Rng rng(5);
  const auto kp = GenerateEd25519KeyPair(rng);
  const Bytes msg = rng.RandomBytes(32);
  Bytes sig = Ed25519Sign(kp.priv, msg);
  // S is little-endian in sig[32..64); adding L is involved, so instead set
  // the top byte high enough to exceed L (L < 2^253).
  sig[63] |= 0xe0;
  EXPECT_FALSE(Ed25519Verify(kp.pub, msg, sig));
}

TEST(Ed25519Test, DeterministicSignatures) {
  Rng rng(6);
  const auto kp = GenerateEd25519KeyPair(rng);
  const Bytes msg = rng.RandomBytes(100);
  EXPECT_EQ(Ed25519Sign(kp.priv, msg), Ed25519Sign(kp.priv, msg));
}

TEST(Ed25519Test, ManyRandomRoundTrips) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    const auto kp = GenerateEd25519KeyPair(rng);
    const Bytes msg = rng.RandomBytes(1 + rng.UniformBelow(200));
    const Bytes sig = Ed25519Sign(kp.priv, msg);
    ASSERT_EQ(sig.size(), kEd25519SignatureSize);
    EXPECT_TRUE(Ed25519Verify(kp.pub, msg, sig));
  }
}

TEST(Ed25519Test, GarbagePublicKeyRejected) {
  // A key that does not decompress to a curve point.
  Ed25519PublicKey bad;
  bad.bytes.fill(0xff);
  Rng rng(8);
  const auto kp = GenerateEd25519KeyPair(rng);
  const Bytes msg = rng.RandomBytes(32);
  const Bytes sig = Ed25519Sign(kp.priv, msg);
  EXPECT_FALSE(Ed25519Verify(bad, msg, sig));
}

}  // namespace
}  // namespace adlp::crypto
