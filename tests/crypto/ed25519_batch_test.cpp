// Adversarial suite for Ed25519VerifyBatch: the batch path must agree with
// Ed25519Verify on every input — RFC 8032 vectors, forgeries hidden inside
// large batches, non-canonical scalars, malformed keys and signatures —
// because the auditor's verdicts may not depend on whether a signature was
// checked alone or inside a combined-equation batch.
#include "crypto/ed25519.h"

#include <gtest/gtest.h>

#include <vector>

namespace adlp::crypto {
namespace {

std::array<std::uint8_t, 32> Seed(const std::string& hex) {
  const Bytes raw = FromHex(hex);
  std::array<std::uint8_t, 32> out;
  std::copy(raw.begin(), raw.end(), out.begin());
  return out;
}

/// A batch whose backing stores stay alive for the duration of the check.
struct Batch {
  std::vector<Ed25519PublicKey> keys;
  std::vector<Bytes> messages;
  std::vector<Bytes> signatures;

  void Add(const Ed25519PublicKey& key, Bytes message, Bytes signature) {
    keys.push_back(key);
    messages.push_back(std::move(message));
    signatures.push_back(std::move(signature));
  }

  std::vector<std::uint8_t> Verify() const {
    std::vector<Ed25519BatchItem> items;
    items.reserve(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      items.push_back({&keys[i], messages[i], signatures[i]});
    }
    return Ed25519VerifyBatch(items);
  }
};

TEST(Ed25519BatchTest, EmptyBatch) {
  EXPECT_TRUE(Ed25519VerifyBatch({}).empty());
}

TEST(Ed25519BatchTest, Rfc8032VectorsThroughBatchPath) {
  // All three section 7.1 vectors in one batch: every verdict must be 1.
  Batch batch;
  {
    const auto kp = Ed25519KeyPairFromSeed(Seed(
        "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60"));
    batch.Add(kp.pub, {}, FromHex(
        "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
        "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"));
  }
  {
    const auto kp = Ed25519KeyPairFromSeed(Seed(
        "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb"));
    batch.Add(kp.pub, FromHex("72"), FromHex(
        "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
        "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"));
  }
  {
    const auto kp = Ed25519KeyPairFromSeed(Seed(
        "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7"));
    batch.Add(kp.pub, FromHex("af82"), FromHex(
        "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
        "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"));
  }
  const auto verdicts = batch.Verify();
  ASSERT_EQ(verdicts.size(), 3u);
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    EXPECT_EQ(verdicts[i], 1) << i;
  }
}

TEST(Ed25519BatchTest, SizeOneBatchMatchesSingleVerify) {
  Rng rng(21);
  const auto kp = GenerateEd25519KeyPair(rng);
  const Bytes msg = rng.RandomBytes(32);
  Bytes sig = Ed25519Sign(kp.priv, msg);

  Batch good;
  good.Add(kp.pub, msg, sig);
  EXPECT_EQ(good.Verify(), (std::vector<std::uint8_t>{1}));

  sig[7] ^= 0x10;
  Batch bad;
  bad.Add(kp.pub, msg, sig);
  EXPECT_EQ(bad.Verify(), (std::vector<std::uint8_t>{0}));
}

TEST(Ed25519BatchTest, SingleForgeryInBatchOf256Pinpointed) {
  // One tampered signature hidden in a large batch: the combined equation
  // rejects, and the per-signature fallback must blame exactly index 100.
  Rng rng(22);
  std::vector<Ed25519KeyPair> kps;
  for (int i = 0; i < 8; ++i) kps.push_back(GenerateEd25519KeyPair(rng));

  Batch batch;
  constexpr std::size_t kN = 256;
  constexpr std::size_t kForged = 100;
  for (std::size_t i = 0; i < kN; ++i) {
    const auto& kp = kps[i % kps.size()];
    const Bytes msg = rng.RandomBytes(32);
    Bytes sig = Ed25519Sign(kp.priv, msg);
    if (i == kForged) sig[3] ^= 1;
    batch.Add(kp.pub, msg, std::move(sig));
  }
  const auto verdicts = batch.Verify();
  ASSERT_EQ(verdicts.size(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(verdicts[i], i == kForged ? 0 : 1) << i;
  }
}

TEST(Ed25519BatchTest, NonCanonicalScalarRejectedInBatch) {
  // s >= L must be rejected by the pre-screening (malleability), exactly as
  // the single-signature path does — even when every other item is valid.
  Rng rng(23);
  const auto kp = GenerateEd25519KeyPair(rng);
  Batch batch;
  for (int i = 0; i < 4; ++i) {
    const Bytes msg = rng.RandomBytes(32);
    Bytes sig = Ed25519Sign(kp.priv, msg);
    if (i == 2) sig[63] |= 0xe0;  // push S above L (L < 2^253)
    batch.Add(kp.pub, msg, std::move(sig));
  }
  EXPECT_EQ(batch.Verify(), (std::vector<std::uint8_t>{1, 1, 0, 1}));
}

TEST(Ed25519BatchTest, MalformedItemsScreenedWithoutPoisoningBatch) {
  Rng rng(24);
  const auto kp = GenerateEd25519KeyPair(rng);
  const Bytes msg = rng.RandomBytes(32);
  const Bytes sig = Ed25519Sign(kp.priv, msg);

  Batch batch;
  batch.Add(kp.pub, msg, sig);  // valid
  Bytes truncated = sig;
  truncated.pop_back();
  batch.Add(kp.pub, msg, truncated);  // wrong length
  Ed25519PublicKey garbage;
  garbage.bytes.fill(0xff);  // not a curve point
  batch.Add(garbage, msg, sig);
  batch.Add(kp.pub, msg, {});  // empty signature
  Bytes bad_r = sig;
  bad_r[0] ^= 0x01;  // R no longer the signed nonce point
  batch.Add(kp.pub, msg, bad_r);

  // Null key: bypass Batch to hand the kernel a nullptr.
  std::vector<Ed25519BatchItem> items;
  for (std::size_t i = 0; i < batch.keys.size(); ++i) {
    items.push_back({&batch.keys[i], batch.messages[i], batch.signatures[i]});
  }
  items.push_back({nullptr, msg, sig});

  const auto verdicts = Ed25519VerifyBatch(items);
  EXPECT_EQ(verdicts, (std::vector<std::uint8_t>{1, 0, 0, 0, 0, 0}));
}

TEST(Ed25519BatchTest, TorsionDefectsCannotSplitBatchAndSingleVerdicts) {
  // Regression for the cofactorless-batch soundness hole: a signature whose
  // defect S*B - R - k*A is a small-order point is invisible to a combined
  // equation whenever the torsion contributions cancel — two order-2
  // defects cancel under ANY pair of odd z_i — so an uncofactored batch
  // accepted what uncofactored single verification rejected, and audit
  // verdicts depended on chunk composition. Both paths now use the
  // cofactored RFC 8032 equation, which annihilates torsion up front.
  //
  // Key and R below are the order-2 point (x = 0, y = p - 1) and S = 0, so
  // the defect is (k + 1)*T with k = H(R || A || M): the order-2 point T
  // when k is even, identity when k is odd. Random messages hit both
  // parities; batch and single must agree on every item either way, and
  // under cofactored semantics both accept.
  const Bytes order2 = FromHex(
      "ecffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f");
  Ed25519PublicKey torsion_key;
  std::copy(order2.begin(), order2.end(), torsion_key.bytes.begin());
  Bytes torsion_sig = order2;                    // R = the order-2 point
  torsion_sig.resize(kEd25519SignatureSize, 0);  // S = 0 (canonical)

  Rng rng(26);
  const auto honest = GenerateEd25519KeyPair(rng);
  for (int round = 0; round < 16; ++round) {
    Batch batch;
    batch.Add(torsion_key, rng.RandomBytes(32), torsion_sig);
    batch.Add(torsion_key, rng.RandomBytes(32), torsion_sig);
    const Bytes msg = rng.RandomBytes(32);
    batch.Add(honest.pub, msg, Ed25519Sign(honest.priv, msg));
    const auto verdicts = batch.Verify();
    ASSERT_EQ(verdicts.size(), 3u);
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
      EXPECT_EQ(verdicts[i] != 0,
                Ed25519Verify(batch.keys[i], batch.messages[i],
                              batch.signatures[i]))
          << "round " << round << " item " << i;
      EXPECT_EQ(verdicts[i], 1) << "round " << round << " item " << i;
    }
  }
}

TEST(Ed25519BatchTest, RandomizedBatchAgreesWithSingleVerify) {
  // Fuzz agreement: mixed batches of valid, tampered, wrong-key, and
  // malformed signatures must reproduce Ed25519Verify item by item.
  Rng rng(25);
  std::vector<Ed25519KeyPair> kps;
  for (int i = 0; i < 4; ++i) kps.push_back(GenerateEd25519KeyPair(rng));

  for (int round = 0; round < 8; ++round) {
    Batch batch;
    const std::size_t n = 1 + rng.UniformBelow(48);
    for (std::size_t i = 0; i < n; ++i) {
      const auto& kp = kps[rng.UniformBelow(kps.size())];
      const Bytes msg = rng.RandomBytes(1 + rng.UniformBelow(64));
      Bytes sig = Ed25519Sign(kp.priv, msg);
      switch (rng.UniformBelow(5)) {
        case 0:  // valid
          break;
        case 1:  // bit flip somewhere in the signature
          sig[rng.UniformBelow(sig.size())] ^= 1 << rng.UniformBelow(8);
          break;
        case 2:  // signed by a different key
          sig = Ed25519Sign(kps[rng.UniformBelow(kps.size())].priv, msg);
          break;
        case 3:  // truncated
          sig.resize(rng.UniformBelow(sig.size()));
          break;
        case 4:  // non-canonical scalar
          sig[63] |= 0xe0;
          break;
      }
      batch.Add(kp.pub, msg, std::move(sig));
    }
    const auto verdicts = batch.Verify();
    ASSERT_EQ(verdicts.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(verdicts[i] != 0,
                Ed25519Verify(batch.keys[i], batch.messages[i],
                              batch.signatures[i]))
          << "round " << round << " item " << i;
    }
  }
}

}  // namespace
}  // namespace adlp::crypto
