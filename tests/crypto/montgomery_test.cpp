#include "crypto/montgomery.h"

#include <gtest/gtest.h>

namespace adlp::crypto {
namespace {

TEST(MontgomeryTest, RejectsEvenModulus) {
  EXPECT_THROW(MontgomeryCtx(BigInt(10)), std::invalid_argument);
  EXPECT_THROW(MontgomeryCtx(BigInt(1)), std::invalid_argument);
}

TEST(MontgomeryTest, ToFromMontRoundTrip) {
  Rng rng(1);
  BigInt modulus = BigInt::RandomBits(rng, 256);
  if (!modulus.IsOdd()) modulus = modulus + BigInt(1);
  MontgomeryCtx ctx(modulus);
  for (int i = 0; i < 50; ++i) {
    const BigInt a = BigInt::RandomBelow(rng, modulus);
    EXPECT_EQ(ctx.FromMont(ctx.ToMont(a)), a);
  }
}

TEST(MontgomeryTest, MulMatchesSchoolbook) {
  Rng rng(2);
  BigInt modulus = BigInt::RandomBits(rng, 512);
  if (!modulus.IsOdd()) modulus = modulus + BigInt(1);
  MontgomeryCtx ctx(modulus);
  for (int i = 0; i < 100; ++i) {
    const BigInt a = BigInt::RandomBelow(rng, modulus);
    const BigInt b = BigInt::RandomBelow(rng, modulus);
    std::vector<std::uint64_t> out;
    ctx.Mul(ctx.ToMont(a), ctx.ToMont(b), out);
    EXPECT_EQ(ctx.FromMont(out), (a * b) % modulus) << "iteration " << i;
  }
}

TEST(MontgomeryTest, ExpMatchesGenericModExp) {
  Rng rng(3);
  BigInt modulus = BigInt::RandomBits(rng, 384);
  if (!modulus.IsOdd()) modulus = modulus + BigInt(1);
  MontgomeryCtx ctx(modulus);
  for (int i = 0; i < 20; ++i) {
    const BigInt base = BigInt::RandomBelow(rng, modulus);
    const BigInt exp = BigInt::RandomBits(rng, 64);
    // Reference: slow square-and-multiply with plain reduction.
    BigInt ref(1);
    BigInt b = base % modulus;
    for (std::size_t j = exp.BitLength(); j-- > 0;) {
      ref = (ref * ref) % modulus;
      if (exp.Bit(j)) ref = (ref * b) % modulus;
    }
    EXPECT_EQ(ctx.Exp(base, exp), ref) << "iteration " << i;
  }
}

TEST(MontgomeryTest, ExpEdgeCases) {
  MontgomeryCtx ctx(BigInt(97));
  EXPECT_EQ(ctx.Exp(BigInt(5), BigInt{}), BigInt(1));       // e = 0
  EXPECT_EQ(ctx.Exp(BigInt(5), BigInt(1)), BigInt(5));      // e = 1
  EXPECT_EQ(ctx.Exp(BigInt{}, BigInt(5)), BigInt{});        // base 0
  EXPECT_EQ(ctx.Exp(BigInt(96), BigInt(2)), BigInt(1));     // (-1)^2
  EXPECT_EQ(ctx.Exp(BigInt(5), BigInt(96)), BigInt(1));     // Fermat
  EXPECT_THROW(ctx.Exp(BigInt(2), BigInt(-1)), std::invalid_argument);
}

TEST(MontgomeryTest, BaseLargerThanModulusIsReduced) {
  MontgomeryCtx ctx(BigInt(97));
  EXPECT_EQ(ctx.Exp(BigInt(100), BigInt(2)), BigInt(9));  // 100 mod 97 = 3
}

}  // namespace
}  // namespace adlp::crypto
