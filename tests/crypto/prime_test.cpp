#include "crypto/prime.h"

#include <gtest/gtest.h>

namespace adlp::crypto {
namespace {

TEST(PrimeTest, SmallPrimesRecognized) {
  Rng rng(1);
  for (std::uint64_t p : {2u, 3u, 5u, 7u, 97u, 541u, 7919u, 104729u}) {
    EXPECT_TRUE(IsProbablePrime(BigInt(p), rng)) << p;
  }
}

TEST(PrimeTest, SmallCompositesRejected) {
  Rng rng(2);
  for (std::uint64_t c : {1u, 4u, 9u, 15u, 91u, 561u, 1001u, 104730u}) {
    EXPECT_FALSE(IsProbablePrime(BigInt(c), rng)) << c;
  }
}

TEST(PrimeTest, ZeroOneNegativeRejected) {
  Rng rng(3);
  EXPECT_FALSE(IsProbablePrime(BigInt{}, rng));
  EXPECT_FALSE(IsProbablePrime(BigInt(1), rng));
  EXPECT_FALSE(IsProbablePrime(BigInt(-7), rng));
}

TEST(PrimeTest, CarmichaelNumbersRejected) {
  // Fermat pseudoprimes to many bases; Miller-Rabin must reject them.
  Rng rng(4);
  for (std::uint64_t c : {561u, 1105u, 1729u, 2465u, 2821u, 6601u, 8911u,
                          10585u, 15841u, 29341u}) {
    EXPECT_FALSE(IsProbablePrime(BigInt(c), rng)) << c;
  }
}

TEST(PrimeTest, KnownLargePrime) {
  Rng rng(5);
  // 2^127 - 1 (Mersenne prime).
  const BigInt m127 = (BigInt(1) << 127) - BigInt(1);
  EXPECT_TRUE(IsProbablePrime(m127, rng));
  // 2^128 - 1 is composite.
  EXPECT_FALSE(IsProbablePrime((BigInt(1) << 128) - BigInt(1), rng));
}

TEST(PrimeTest, ProductOfTwoPrimesRejected) {
  Rng rng(6);
  const BigInt p = GeneratePrime(rng, 96, false);
  const BigInt q = GeneratePrime(rng, 96, false);
  EXPECT_FALSE(IsProbablePrime(p * q, rng));
}

TEST(PrimeTest, GeneratedPrimeHasExactBitLength) {
  Rng rng(7);
  for (std::size_t bits : {64u, 128u, 256u}) {
    const BigInt p = GeneratePrime(rng, bits, false);
    EXPECT_EQ(p.BitLength(), bits);
    EXPECT_TRUE(p.IsOdd());
    EXPECT_TRUE(IsProbablePrime(p, rng));
  }
}

TEST(PrimeTest, TopTwoBitsForced) {
  Rng rng(8);
  for (int i = 0; i < 5; ++i) {
    const BigInt p = GeneratePrime(rng, 128, true);
    EXPECT_TRUE(p.Bit(127));
    EXPECT_TRUE(p.Bit(126));
  }
}

TEST(PrimeTest, TooFewBitsThrows) {
  Rng rng(9);
  EXPECT_THROW(GeneratePrime(rng, 4, false), std::invalid_argument);
}

TEST(PrimeTest, DeterministicGivenSeed) {
  Rng a(42), b(42);
  EXPECT_EQ(GeneratePrime(a, 128, true), GeneratePrime(b, 128, true));
}

}  // namespace
}  // namespace adlp::crypto
