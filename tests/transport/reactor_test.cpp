// Reactor and EpollChannel unit tests: timer-wheel ordering (including laps
// and large clock jumps), eventfd wakeup under concurrent enqueue, frame
// reassembly across partial reads and short writes, fd-limit degradation,
// and thread-vs-reactor round-trip interop.
#include <arpa/inet.h>
#include <fcntl.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "obs/instrument.h"
#include "transport/epoll_channel.h"
#include "transport/reactor.h"
#include "transport/tcp.h"
#include "wire/wire.h"

namespace adlp::transport {
namespace {

// --- TimerWheel (pure data structure; caller-supplied clock) ----------------

TEST(TimerWheelTest, FiresInDeadlineOrder) {
  TimerWheel wheel;
  std::vector<int> fired;
  wheel.Schedule(30, [&] { fired.push_back(3); });
  wheel.Schedule(10, [&] { fired.push_back(1); });
  wheel.Schedule(20, [&] { fired.push_back(2); });

  for (auto& cb : wheel.Advance(9)) cb();
  EXPECT_TRUE(fired.empty());

  // One Advance past every deadline returns the callbacks deadline-sorted.
  for (auto& cb : wheel.Advance(35)) cb();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(wheel.Pending(), 0u);
}

TEST(TimerWheelTest, TiesFireInInsertionOrder) {
  TimerWheel wheel;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    wheel.Schedule(10, [&fired, i] { fired.push_back(i); });
  }
  for (auto& cb : wheel.Advance(10)) cb();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TimerWheelTest, LapDelaysWaitFullLaps) {
  // Delay beyond slots * tick must take extra laps, not fire on the first
  // pass over its slot.
  TimerWheel wheel(/*tick_ms=*/1, /*slots=*/16);
  bool fired = false;
  wheel.Schedule(40, [&] { fired = true; });  // 2.5 laps
  for (auto& cb : wheel.Advance(16)) cb();
  EXPECT_FALSE(fired);
  for (auto& cb : wheel.Advance(39)) cb();
  EXPECT_FALSE(fired);
  for (auto& cb : wheel.Advance(40)) cb();
  EXPECT_TRUE(fired);
}

TEST(TimerWheelTest, LargeJumpFiresEverything) {
  // A clock jump far beyond the wheel span (loop slept with no timers due)
  // must still fire every pending timer exactly once.
  TimerWheel wheel(/*tick_ms=*/1, /*slots=*/16);
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    wheel.Schedule(i * 7, [&] { ++fired; });
  }
  for (auto& cb : wheel.Advance(1'000'000)) cb();
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(wheel.Pending(), 0u);
}

TEST(TimerWheelTest, CancelPreventsFiring) {
  TimerWheel wheel;
  bool fired = false;
  const std::uint64_t id = wheel.Schedule(10, [&] { fired = true; });
  EXPECT_TRUE(wheel.Cancel(id));
  EXPECT_FALSE(wheel.Cancel(id));  // already removed
  for (auto& cb : wheel.Advance(20)) cb();
  EXPECT_FALSE(fired);
}

TEST(TimerWheelTest, ScheduleAtPastDeadlineFiresNext) {
  TimerWheel wheel;
  for (auto& cb : wheel.Advance(100)) cb();
  bool fired = false;
  wheel.ScheduleAt(50, [&] { fired = true; });  // already past: clamps to now
  ASSERT_TRUE(wheel.NextDeadlineMs().has_value());
  // Ticks are the firing granularity: a past-deadline timer lands on the
  // next tick boundary, never silently in an already-swept slot.
  for (auto& cb : wheel.Advance(100)) cb();
  EXPECT_FALSE(fired);
  for (auto& cb : wheel.Advance(101)) cb();
  EXPECT_TRUE(fired);
}

TEST(TimerWheelTest, NextDeadlineTracksEarliest) {
  TimerWheel wheel;
  EXPECT_FALSE(wheel.NextDeadlineMs().has_value());
  wheel.Schedule(100, [] {});
  const std::uint64_t early = wheel.Schedule(25, [] {});
  ASSERT_TRUE(wheel.NextDeadlineMs().has_value());
  EXPECT_EQ(*wheel.NextDeadlineMs(), 25);
  EXPECT_TRUE(wheel.Cancel(early));
  EXPECT_EQ(*wheel.NextDeadlineMs(), 100);
}

// --- Reactor: tasks, wakeups, timers ----------------------------------------

TEST(ReactorTest, ConcurrentPostsAllRunExactlyOnce) {
  // The eventfd wakeup must not lose tasks when many threads enqueue against
  // a loop that is busy sleeping/waking concurrently.
  Reactor reactor;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::atomic<int> ran{0};
  std::vector<std::thread> posters;
  for (int t = 0; t < kThreads; ++t) {
    posters.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        reactor.Post(0, [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& p : posters) p.join();
  const Timestamp deadline = MonotonicNowNs() + 5'000'000'000;
  while (ran.load() < kThreads * kPerThread && MonotonicNowNs() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(ran.load(), kThreads * kPerThread);
}

TEST(ReactorTest, PostPreservesOrderPerLoop) {
  Reactor reactor;
  std::vector<int> order;
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  for (int i = 0; i < 100; ++i) {
    reactor.Post(0, [&, i] {
      std::lock_guard lock(mu);
      order.push_back(i);
      if (i == 99) {
        done = true;
        cv.notify_one();
      }
    });
  }
  std::unique_lock lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return done; }));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ReactorTest, RunAfterFiresOnLoopThread) {
  Reactor reactor;
  std::atomic<bool> fired{false};
  std::atomic<bool> on_loop{false};
  const Timestamp start = MonotonicNowNs();
  reactor.RunAfter(0, 20, [&] {
    on_loop.store(reactor.OnLoopThread(0));
    fired.store(true);
  });
  const Timestamp deadline = start + 5'000'000'000;
  while (!fired.load() && MonotonicNowNs() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(fired.load());
  EXPECT_TRUE(on_loop.load());
  EXPECT_GE(MonotonicNowNs() - start, 19'000'000);
}

TEST(ReactorTest, CancelTimerStopsPendingTimer) {
  Reactor reactor;
  std::atomic<bool> fired{false};
  const Reactor::TimerId id =
      reactor.RunAfter(0, 100, [&] { fired.store(true); });
  EXPECT_TRUE(reactor.CancelTimer(id));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_FALSE(fired.load());
  EXPECT_FALSE(reactor.CancelTimer(Reactor::TimerId{}));  // invalid id
}

// --- EpollChannel: framing, reassembly, teardown ----------------------------

/// Connected (client_fd, server EpollChannel) pair on `reactor`.
struct RawPair {
  int client_fd = -1;
  std::shared_ptr<EpollChannel> server;

  ~RawPair() {
    if (client_fd >= 0) ::close(client_fd);
  }
};

RawPair MakeRawPair(Reactor& reactor, TcpListener& listener) {
  RawPair pair;
  pair.client_fd = TryTcpConnectFd(listener.Port());
  EXPECT_GE(pair.client_fd, 0);
  // Blocking Accept is fine here: the connection is already queued.
  std::thread accept_thread([&] {
    const int fd = ::accept(listener.NativeHandle(), nullptr, nullptr);
    if (fd >= 0) pair.server = EpollChannel::Adopt(reactor, fd);
  });
  accept_thread.join();
  EXPECT_NE(pair.server, nullptr);
  return pair;
}

TEST(EpollChannelTest, ReassemblesFrameFromPartialReads) {
  Reactor reactor;
  TcpListener listener(0);
  RawPair pair = MakeRawPair(reactor, listener);

  Bytes payload;
  for (int i = 0; i < 300; ++i) payload.push_back(static_cast<std::uint8_t>(i));
  const Bytes framed = wire::FramePayload(payload);

  std::mutex mu;
  std::condition_variable cv;
  std::vector<Bytes> got;
  pair.server->StartAsync(
      [&](BytesView frame) {
        std::lock_guard lock(mu);
        got.emplace_back(frame.begin(), frame.end());
        cv.notify_one();
      },
      nullptr);

  // Dribble the framed bytes one at a time: every preamble/payload boundary
  // lands mid-read at least once.
  for (std::size_t i = 0; i < framed.size(); ++i) {
    ASSERT_EQ(::send(pair.client_fd, framed.data() + i, 1, 0), 1);
    if (i % 64 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                            [&] { return !got.empty(); }));
    EXPECT_EQ(got[0], payload);
  }

  // Coalesced writes: several frames in one send() all come out separately.
  Bytes burst;
  for (int f = 0; f < 3; ++f) {
    const Bytes one = wire::FramePayload(Bytes{static_cast<std::uint8_t>(f)});
    burst.insert(burst.end(), one.begin(), one.end());
  }
  ASSERT_EQ(::send(pair.client_fd, burst.data(), burst.size(), 0),
            static_cast<ssize_t>(burst.size()));
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                            [&] { return got.size() == 4; }));
    for (int f = 0; f < 3; ++f) {
      EXPECT_EQ(got[static_cast<std::size_t>(f) + 1],
                Bytes{static_cast<std::uint8_t>(f)});
    }
  }
}

TEST(EpollChannelTest, ShortWritesFlushViaEpollout) {
  // A frame far larger than the socket buffer forces partial sends; the
  // EPOLLOUT path must deliver the residue while the reader drains slowly.
  Reactor reactor;
  TcpListener listener(0);
  RawPair pair = MakeRawPair(reactor, listener);

  Bytes big(4 * 1024 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 2654435761u);
  }
  ASSERT_TRUE(pair.server->Send(big));

  Bytes received;
  received.reserve(big.size() + 16);
  std::uint8_t buf[65536];
  const Timestamp deadline = MonotonicNowNs() + 10'000'000'000;
  while (received.size() < big.size() + wire::kFramePreambleSize &&
         MonotonicNowNs() < deadline) {
    const ssize_t n = ::recv(pair.client_fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    received.insert(received.end(), buf, buf + n);
    // Stay slower than the writer so EPOLLOUT stays armed a while.
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_EQ(received.size(), big.size() + wire::kFramePreambleSize);
  EXPECT_TRUE(std::equal(big.begin(), big.end(),
                         received.begin() + wire::kFramePreambleSize));
}

TEST(EpollChannelTest, OversizedPreambleClosesConnection) {
  Reactor reactor;
  TcpListener listener(0);
  RawPair pair = MakeRawPair(reactor, listener);

  std::atomic<bool> closed{false};
  pair.server->StartAsync([](BytesView) { FAIL() << "frame from garbage"; },
                          [&] { closed.store(true); });

  // Preamble declaring 2x the cap: must tear down, not allocate.
  const std::uint32_t huge = 128u * 1024 * 1024;
  std::uint8_t preamble[4];
  for (int i = 0; i < 4; ++i) {
    preamble[i] = static_cast<std::uint8_t>(huge >> (8 * i));
  }
  ASSERT_EQ(::send(pair.client_fd, preamble, 4, 0), 4);

  const Timestamp deadline = MonotonicNowNs() + 5'000'000'000;
  while (!closed.load() && MonotonicNowNs() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(closed.load());
  EXPECT_TRUE(pair.server->WaitClosed(1000));
  EXPECT_FALSE(pair.server->IsOpen());
}

TEST(EpollChannelTest, CloseUnblocksReceiveAndTearsDown) {
  Reactor reactor;
  TcpListener listener(0);
  RawPair pair = MakeRawPair(reactor, listener);

  std::thread receiver([&] {
    EXPECT_FALSE(pair.server->Receive().has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  pair.server->Close();
  receiver.join();
  EXPECT_TRUE(pair.server->WaitClosed(2000));
  EXPECT_FALSE(pair.server->Send(Bytes{1}));
}

TEST(EpollChannelTest, QueuedFramesDrainToLateHandler) {
  // Frames arriving before StartAsync must reach the handler, in order.
  Reactor reactor;
  TcpListener listener(0);
  RawPair pair = MakeRawPair(reactor, listener);

  for (std::uint8_t i = 0; i < 5; ++i) {
    const Bytes framed = wire::FramePayload(Bytes{i});
    ASSERT_EQ(::send(pair.client_fd, framed.data(), framed.size(), 0),
              static_cast<ssize_t>(framed.size()));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::mutex mu;
  std::condition_variable cv;
  std::vector<Bytes> got;
  pair.server->StartAsync(
      [&](BytesView frame) {
        std::lock_guard lock(mu);
        got.emplace_back(frame.begin(), frame.end());
        cv.notify_one();
      },
      nullptr);
  std::unique_lock lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                          [&] { return got.size() == 5; }));
  for (std::uint8_t i = 0; i < 5; ++i) {
    EXPECT_EQ(got[i], Bytes{i});
  }
}

// --- Thread-vs-reactor round-trip interop -----------------------------------

class TransportModeRoundTrip
    : public ::testing::TestWithParam<TransportMode> {};

TEST_P(TransportModeRoundTrip, EchoAcrossModes) {
  // Server side driven per the mode under test; client side always a plain
  // blocking TcpChannel. The framing must be byte-identical, so each mode
  // interoperates with the historical endpoint.
  Reactor reactor;
  TcpListener listener(0);

  ChannelPtr server;
  std::unique_ptr<ReactorAcceptor> acceptor;
  std::mutex mu;
  std::condition_variable cv;
  if (GetParam() == TransportMode::kReactor) {
    acceptor = std::make_unique<ReactorAcceptor>(
        reactor, listener, [&](std::shared_ptr<EpollChannel> channel) {
          std::lock_guard lock(mu);
          server = std::move(channel);
          cv.notify_one();
        });
  }
  std::thread accept_thread;
  if (GetParam() == TransportMode::kThreadPerConn) {
    accept_thread = std::thread([&] {
      auto channel = listener.Accept();
      std::lock_guard lock(mu);
      server = std::move(channel);
      cv.notify_one();
    });
  }

  ChannelPtr client = TcpConnect(listener.Port());
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                            [&] { return server != nullptr; }));
  }
  if (accept_thread.joinable()) accept_thread.join();

  Bytes msg1{1, 2, 3};
  Bytes msg2(100'000);
  for (std::size_t i = 0; i < msg2.size(); ++i) {
    msg2[i] = static_cast<std::uint8_t>(i);
  }
  ASSERT_TRUE(client->Send(msg1));
  ASSERT_TRUE(client->Send(msg2));
  auto r1 = server->Receive();
  auto r2 = server->Receive();
  ASSERT_TRUE(r1 && r2);
  EXPECT_EQ(*r1, msg1);
  EXPECT_EQ(*r2, msg2);

  ASSERT_TRUE(server->Send(msg2));
  auto r3 = client->Receive();
  ASSERT_TRUE(r3);
  EXPECT_EQ(*r3, msg2);

  if (acceptor) acceptor->Close();
  client->Close();
  server->Close();
}

INSTANTIATE_TEST_SUITE_P(BothModes, TransportModeRoundTrip,
                         ::testing::Values(TransportMode::kThreadPerConn,
                                           TransportMode::kReactor),
                         [](const auto& info) {
                           return info.param == TransportMode::kReactor
                                      ? "Reactor"
                                      : "ThreadPerConn";
                         });

// --- fd-limit degradation ---------------------------------------------------

TEST(ReactorAcceptorTest, FdExhaustionDefersAcceptsInsteadOfSpinning) {
  // Drop the fd soft limit, exhaust the table, and connect: accept4 hits
  // EMFILE. The acceptor must unregister the listener (no hot loop), count
  // the deferral, and accept the parked connection once fds free up.
  rlimit saved{};
  ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &saved), 0);

  Reactor reactor;  // epoll/eventfd created before the squeeze
  TcpListener listener(0);

  std::mutex mu;
  std::condition_variable cv;
  std::shared_ptr<EpollChannel> accepted;
  ReactorAcceptor acceptor(reactor, listener,
                           [&](std::shared_ptr<EpollChannel> channel) {
                             std::lock_guard lock(mu);
                             accepted = std::move(channel);
                             cv.notify_one();
                           });

  // The client socket exists before the squeeze; connect() itself needs no
  // new fd, so the connection parks in the kernel backlog.
  const int client_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(client_fd, 0);

  const std::uint64_t deferred_before =
      obs::metric::ReactorAcceptDeferredTotal().Value();

  std::vector<int> hoard;
  rlimit tight = saved;
  tight.rlim_cur = 64;
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &tight), 0);
  for (;;) {
    const int fd = ::open("/dev/null", O_RDONLY);
    if (fd < 0) break;
    hoard.push_back(fd);
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(listener.Port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(client_fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  // The accept attempt must fail gracefully: deferral counted, no callback.
  const Timestamp deadline = MonotonicNowNs() + 5'000'000'000;
  while (obs::metric::ReactorAcceptDeferredTotal().Value() == deferred_before &&
         MonotonicNowNs() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(obs::metric::ReactorAcceptDeferredTotal().Value(),
            deferred_before);
  {
    std::lock_guard lock(mu);
    EXPECT_EQ(accepted, nullptr);
  }

  // Free the table: the re-arm timer must pick the parked connection up.
  for (const int fd : hoard) ::close(fd);
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &saved), 0);
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                            [&] { return accepted != nullptr; }));
  }

  // The recovered connection is fully functional.
  const Bytes framed = wire::FramePayload(Bytes{42});
  ASSERT_EQ(::send(client_fd, framed.data(), framed.size(), 0),
            static_cast<ssize_t>(framed.size()));
  auto frame = accepted->Receive();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, Bytes{42});

  acceptor.Close();
  ::close(client_fd);
}

}  // namespace
}  // namespace adlp::transport
