#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/rng.h"
#include "transport/inproc.h"
#include "transport/tcp.h"

namespace adlp::transport {
namespace {

void ExerciseEcho(const ChannelPtr& a, const ChannelPtr& b) {
  Rng rng(1);
  const Bytes msg1 = rng.RandomBytes(100);
  const Bytes msg2 = rng.RandomBytes(100000);

  ASSERT_TRUE(a->Send(msg1));
  ASSERT_TRUE(a->Send(msg2));
  auto r1 = b->Receive();
  auto r2 = b->Receive();
  ASSERT_TRUE(r1 && r2);
  EXPECT_EQ(*r1, msg1);  // FIFO order preserved
  EXPECT_EQ(*r2, msg2);

  // Duplex: the other direction works too.
  ASSERT_TRUE(b->Send(msg1));
  auto r3 = a->Receive();
  ASSERT_TRUE(r3);
  EXPECT_EQ(*r3, msg1);
}

TEST(InProcChannelTest, EchoBothDirections) {
  auto pair = MakeInProcChannelPair();
  ExerciseEcho(pair.a, pair.b);
}

TEST(InProcChannelTest, EmptyMessage) {
  auto pair = MakeInProcChannelPair();
  ASSERT_TRUE(pair.a->Send({}));
  auto r = pair.b->Receive();
  ASSERT_TRUE(r);
  EXPECT_TRUE(r->empty());
}

TEST(InProcChannelTest, CloseUnblocksReceiver) {
  auto pair = MakeInProcChannelPair();
  std::thread receiver([&] {
    auto r = pair.b->Receive();
    EXPECT_FALSE(r.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  pair.a->Close();
  receiver.join();
}

TEST(InProcChannelTest, SendAfterCloseFails) {
  auto pair = MakeInProcChannelPair();
  pair.b->Close();
  EXPECT_FALSE(pair.a->Send(Bytes{1}));
  EXPECT_FALSE(pair.a->IsOpen());
}

TEST(InProcChannelTest, DrainAfterClose) {
  auto pair = MakeInProcChannelPair();
  ASSERT_TRUE(pair.a->Send(Bytes{1}));
  ASSERT_TRUE(pair.a->Send(Bytes{2}));
  pair.a->Close();
  // Queued messages are still deliverable after close.
  EXPECT_TRUE(pair.b->Receive().has_value());
  EXPECT_TRUE(pair.b->Receive().has_value());
  EXPECT_FALSE(pair.b->Receive().has_value());
}

TEST(InProcChannelTest, LatencyModelDelaysDelivery) {
  LinkModel model;
  model.latency_ns = 20'000'000;  // 20 ms
  auto pair = MakeInProcChannelPair(model);
  const Timestamp start = MonotonicNowNs();
  ASSERT_TRUE(pair.a->Send(Bytes{1}));
  auto r = pair.b->Receive();
  const Timestamp elapsed = MonotonicNowNs() - start;
  ASSERT_TRUE(r);
  EXPECT_GE(elapsed, 18'000'000);  // allow scheduler slop
}

TEST(InProcChannelTest, BandwidthModelScalesWithSize) {
  LinkModel model;
  model.bandwidth_bytes_per_sec = 1'000'000;  // 1 MB/s
  EXPECT_EQ(model.TransferDelayNs(1000), 1'000'000);     // 1 ms
  EXPECT_EQ(model.TransferDelayNs(500'000), 500'000'000);  // 0.5 s
}

TEST(InProcChannelTest, ConcurrentSendersAllDelivered) {
  auto pair = MakeInProcChannelPair();
  constexpr int kSenders = 4;
  constexpr int kPerSender = 250;
  std::vector<std::thread> senders;
  for (int t = 0; t < kSenders; ++t) {
    senders.emplace_back([&pair] {
      for (int i = 0; i < kPerSender; ++i) {
        ASSERT_TRUE(pair.a->Send(Bytes{42}));
      }
    });
  }
  int received = 0;
  for (int i = 0; i < kSenders * kPerSender; ++i) {
    ASSERT_TRUE(pair.b->Receive().has_value());
    ++received;
  }
  for (auto& t : senders) t.join();
  EXPECT_EQ(received, kSenders * kPerSender);
}

TEST(TcpChannelTest, EchoBothDirections) {
  TcpListener listener(0);
  ASSERT_GT(listener.Port(), 0);
  ChannelPtr client;
  std::thread connector([&] { client = TcpConnect(listener.Port()); });
  ChannelPtr server = listener.Accept();
  connector.join();
  ASSERT_TRUE(server != nullptr);
  ASSERT_TRUE(client != nullptr);
  ExerciseEcho(client, server);
}

TEST(TcpChannelTest, LargeMessageIntegrity) {
  TcpListener listener(0);
  ChannelPtr client;
  std::thread connector([&] { client = TcpConnect(listener.Port()); });
  ChannelPtr server = listener.Accept();
  connector.join();

  Rng rng(3);
  const Bytes big = rng.RandomBytes(2'000'000);  // 2 MB > Image size
  ASSERT_TRUE(client->Send(big));
  auto r = server->Receive();
  ASSERT_TRUE(r);
  EXPECT_EQ(*r, big);
}

TEST(TcpChannelTest, PeerCloseEndsReceive) {
  TcpListener listener(0);
  ChannelPtr client;
  std::thread connector([&] { client = TcpConnect(listener.Port()); });
  ChannelPtr server = listener.Accept();
  connector.join();

  client->Close();
  EXPECT_FALSE(server->Receive().has_value());
}

TEST(TcpChannelTest, ConnectToClosedPortThrows) {
  TcpListener listener(0);
  const std::uint16_t port = listener.Port();
  listener.Close();
  EXPECT_THROW(TcpConnect(port), std::system_error);
}

TEST(TcpListenerTest, AcceptAfterCloseReturnsNull) {
  TcpListener listener(0);
  listener.Close();
  EXPECT_EQ(listener.Accept(), nullptr);
}

TEST(TcpListenerTest, MultipleConnections) {
  TcpListener listener(0);
  std::vector<ChannelPtr> clients(3);
  std::thread connector([&] {
    for (auto& c : clients) c = TcpConnect(listener.Port());
  });
  std::vector<ChannelPtr> servers;
  for (int i = 0; i < 3; ++i) servers.push_back(listener.Accept());
  connector.join();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(servers[i] != nullptr);
    ASSERT_TRUE(clients[i]->Send(Bytes{static_cast<std::uint8_t>(i)}));
  }
  // Each server connection gets exactly its client's byte.
  std::set<std::uint8_t> seen;
  for (auto& s : servers) {
    auto r = s->Receive();
    ASSERT_TRUE(r);
    seen.insert((*r)[0]);
  }
  EXPECT_EQ(seen.size(), 3u);
}

}  // namespace
}  // namespace adlp::transport
