#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/rng.h"
#include "transport/inproc.h"
#include "transport/tcp.h"

namespace adlp::transport {
namespace {

void ExerciseEcho(const ChannelPtr& a, const ChannelPtr& b) {
  Rng rng(1);
  const Bytes msg1 = rng.RandomBytes(100);
  const Bytes msg2 = rng.RandomBytes(100000);

  ASSERT_TRUE(a->Send(msg1));
  ASSERT_TRUE(a->Send(msg2));
  auto r1 = b->Receive();
  auto r2 = b->Receive();
  ASSERT_TRUE(r1 && r2);
  EXPECT_EQ(*r1, msg1);  // FIFO order preserved
  EXPECT_EQ(*r2, msg2);

  // Duplex: the other direction works too.
  ASSERT_TRUE(b->Send(msg1));
  auto r3 = a->Receive();
  ASSERT_TRUE(r3);
  EXPECT_EQ(*r3, msg1);
}

TEST(InProcChannelTest, EchoBothDirections) {
  auto pair = MakeInProcChannelPair();
  ExerciseEcho(pair.a, pair.b);
}

TEST(InProcChannelTest, EmptyMessage) {
  auto pair = MakeInProcChannelPair();
  ASSERT_TRUE(pair.a->Send({}));
  auto r = pair.b->Receive();
  ASSERT_TRUE(r);
  EXPECT_TRUE(r->empty());
}

TEST(InProcChannelTest, CloseUnblocksReceiver) {
  auto pair = MakeInProcChannelPair();
  std::thread receiver([&] {
    auto r = pair.b->Receive();
    EXPECT_FALSE(r.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  pair.a->Close();
  receiver.join();
}

TEST(InProcChannelTest, SendAfterCloseFails) {
  auto pair = MakeInProcChannelPair();
  pair.b->Close();
  EXPECT_FALSE(pair.a->Send(Bytes{1}));
  EXPECT_FALSE(pair.a->IsOpen());
}

TEST(InProcChannelTest, DrainAfterClose) {
  auto pair = MakeInProcChannelPair();
  ASSERT_TRUE(pair.a->Send(Bytes{1}));
  ASSERT_TRUE(pair.a->Send(Bytes{2}));
  pair.a->Close();
  // Queued messages are still deliverable after close.
  EXPECT_TRUE(pair.b->Receive().has_value());
  EXPECT_TRUE(pair.b->Receive().has_value());
  EXPECT_FALSE(pair.b->Receive().has_value());
}

TEST(InProcChannelTest, LatencyModelDelaysDelivery) {
  LinkModel model;
  model.latency_ns = 20'000'000;  // 20 ms
  auto pair = MakeInProcChannelPair(model);
  const Timestamp start = MonotonicNowNs();
  ASSERT_TRUE(pair.a->Send(Bytes{1}));
  auto r = pair.b->Receive();
  const Timestamp elapsed = MonotonicNowNs() - start;
  ASSERT_TRUE(r);
  EXPECT_GE(elapsed, 18'000'000);  // allow scheduler slop
}

TEST(InProcChannelTest, BandwidthModelScalesWithSize) {
  LinkModel model;
  model.bandwidth_bytes_per_sec = 1'000'000;  // 1 MB/s
  EXPECT_EQ(model.TransferDelayNs(1000), 1'000'000);     // 1 ms
  EXPECT_EQ(model.TransferDelayNs(500'000), 500'000'000);  // 0.5 s
}

TEST(InProcChannelTest, ConcurrentSendersAllDelivered) {
  auto pair = MakeInProcChannelPair();
  constexpr int kSenders = 4;
  constexpr int kPerSender = 250;
  std::vector<std::thread> senders;
  for (int t = 0; t < kSenders; ++t) {
    senders.emplace_back([&pair] {
      for (int i = 0; i < kPerSender; ++i) {
        ASSERT_TRUE(pair.a->Send(Bytes{42}));
      }
    });
  }
  int received = 0;
  for (int i = 0; i < kSenders * kPerSender; ++i) {
    ASSERT_TRUE(pair.b->Receive().has_value());
    ++received;
  }
  for (auto& t : senders) t.join();
  EXPECT_EQ(received, kSenders * kPerSender);
}

TEST(TcpChannelTest, EchoBothDirections) {
  TcpListener listener(0);
  ASSERT_GT(listener.Port(), 0);
  ChannelPtr client;
  std::thread connector([&] { client = TcpConnect(listener.Port()); });
  ChannelPtr server = listener.Accept();
  connector.join();
  ASSERT_TRUE(server != nullptr);
  ASSERT_TRUE(client != nullptr);
  ExerciseEcho(client, server);
}

TEST(TcpChannelTest, LargeMessageIntegrity) {
  TcpListener listener(0);
  ChannelPtr client;
  std::thread connector([&] { client = TcpConnect(listener.Port()); });
  ChannelPtr server = listener.Accept();
  connector.join();

  Rng rng(3);
  const Bytes big = rng.RandomBytes(2'000'000);  // 2 MB > Image size
  ASSERT_TRUE(client->Send(big));
  auto r = server->Receive();
  ASSERT_TRUE(r);
  EXPECT_EQ(*r, big);
}

TEST(TcpChannelTest, PeerCloseEndsReceive) {
  TcpListener listener(0);
  ChannelPtr client;
  std::thread connector([&] { client = TcpConnect(listener.Port()); });
  ChannelPtr server = listener.Accept();
  connector.join();

  client->Close();
  EXPECT_FALSE(server->Receive().has_value());
}

TEST(TcpChannelTest, ConnectToClosedPortThrows) {
  TcpListener listener(0);
  const std::uint16_t port = listener.Port();
  listener.Close();
  EXPECT_THROW(TcpConnect(port), std::system_error);
}

TEST(TcpChannelTest, OversizedFramePreambleRejectedWithoutAllocation) {
  TcpListener listener(0);
  ChannelPtr server;
  // Raw client socket so we can forge a preamble the framing layer would
  // never produce.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(listener.Port());
  std::thread connector([&] {
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
  });
  server = listener.Accept();
  connector.join();
  ASSERT_TRUE(server != nullptr);

  // A ~4 GiB length claim. The channel must reject it by inspecting the
  // preamble alone — no multi-GB allocation, no waiting for 4 GiB of body.
  const std::uint8_t forged[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::send(fd, forged, sizeof(forged), 0), 4);
  EXPECT_FALSE(server->Receive().has_value());
  EXPECT_FALSE(server->IsOpen());  // connection dropped: offset unrecoverable
  ::close(fd);
}

TEST(TcpChannelTest, FrameAtLimitStillAccepted) {
  TcpListener listener(0);
  ChannelPtr client;
  std::thread connector([&] { client = TcpConnect(listener.Port()); });
  ChannelPtr server = listener.Accept();
  connector.join();
  // Well under kMaxFrameBytes but above any small-buffer path. Sent from
  // its own thread: a frame this size overflows the loopback socket buffer,
  // so the send only completes while the receiver drains.
  const Bytes big(5'000'000, 0x5a);
  std::thread sender([&] { ASSERT_TRUE(client->Send(big)); });
  auto r = server->Receive();
  sender.join();
  ASSERT_TRUE(r);
  EXPECT_EQ(r->size(), big.size());
}

TEST(TcpChannelTest, CloseFromAnotherThreadUnblocksReceive) {
  TcpListener listener(0);
  ChannelPtr client;
  std::thread connector([&] { client = TcpConnect(listener.Port()); });
  ChannelPtr server = listener.Accept();
  connector.join();

  std::thread receiver([&] { EXPECT_FALSE(server->Receive().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // Closing the fd a reader is blocked on must not recycle it under the
  // reader (the close-vs-receive race): Close() shuts down, the destructor
  // releases the fd only once every user is gone.
  server->Close();
  receiver.join();
  EXPECT_FALSE(server->IsOpen());
}

TEST(TcpConnectTest, TimedConnectToDeadPortFailsNotHangs) {
  TcpListener listener(0);
  const std::uint16_t port = listener.Port();
  listener.Close();

  TcpConnectOptions options;
  options.attempts = 2;
  options.connect_timeout_ms = 200;
  options.retry_delay_ms = 10;
  const Timestamp start = MonotonicNowNs();
  EXPECT_EQ(TryTcpConnect(port, options), nullptr);
  EXPECT_THROW(TcpConnect(port, options), std::system_error);
  // Refused connections fail fast; the bound is generous for CI jitter.
  EXPECT_LT(MonotonicNowNs() - start, 5'000'000'000);
}

TEST(TcpConnectTest, RetryBridgesLateListener) {
  // Grab a free port, release it, and bring the listener up only after the
  // client has started dialling — the fleet-boot race the retry option is
  // for.
  std::uint16_t port = 0;
  {
    TcpListener probe(0);
    port = probe.Port();
  }
  std::unique_ptr<TcpListener> listener;
  std::thread late([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    listener = std::make_unique<TcpListener>(port);
  });
  TcpConnectOptions options;
  options.attempts = 50;
  options.connect_timeout_ms = 200;
  options.retry_delay_ms = 20;
  options.max_retry_delay_ms = 50;
  ChannelPtr client = TryTcpConnect(port, options);
  late.join();
  ASSERT_TRUE(client != nullptr);
  ChannelPtr server = listener->Accept();
  ASSERT_TRUE(server != nullptr);
  ASSERT_TRUE(client->Send(Bytes{7}));
  auto r = server->Receive();
  ASSERT_TRUE(r);
  EXPECT_EQ((*r)[0], 7);
}

TEST(InProcChannelTest, OversizedSendRejected) {
  auto pair = MakeInProcChannelPair();
  // The inproc transport mirrors the TCP frame cap so fault-model tests see
  // identical limits on both substrates. Rejected before any copy is made.
  const Bytes oversized(kMaxFrameBytes + 1);
  EXPECT_FALSE(pair.a->Send(oversized));
  EXPECT_TRUE(pair.a->IsOpen());
}

TEST(TcpListenerTest, AcceptAfterCloseReturnsNull) {
  TcpListener listener(0);
  listener.Close();
  EXPECT_EQ(listener.Accept(), nullptr);
}

TEST(TcpListenerTest, MultipleConnections) {
  TcpListener listener(0);
  std::vector<ChannelPtr> clients(3);
  std::thread connector([&] {
    for (auto& c : clients) c = TcpConnect(listener.Port());
  });
  std::vector<ChannelPtr> servers;
  for (int i = 0; i < 3; ++i) servers.push_back(listener.Accept());
  connector.join();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(servers[i] != nullptr);
    ASSERT_TRUE(clients[i]->Send(Bytes{static_cast<std::uint8_t>(i)}));
  }
  // Each server connection gets exactly its client's byte.
  std::set<std::uint8_t> seen;
  for (auto& s : servers) {
    auto r = s->Receive();
    ASSERT_TRUE(r);
    seen.insert((*r)[0]);
  }
  EXPECT_EQ(seen.size(), 3u);
}

// ---------------------------------------------------------------------------
// TcpConnect deadline: the caller's overall budget must hold no matter how
// the attempts fail — blackholed routes (connect() hangs in EINPROGRESS
// until the kernel gives up, minutes later) and refused ports alike.

TEST(TcpConnectDeadlineTest, DeadlineBoundsBlackholedConnect) {
  // A listener whose accept queue is saturated black-holes further connects:
  // the kernel drops the SYN, the client retransmits, and connect() sits in
  // EINPROGRESS — the same shape as an unroutable host, but deterministic on
  // loopback (container networks often NAT "unroutable" test addresses).
  // Without the deadline, attempts=3 with no per-attempt timeout would block
  // on the kernel's own connect timeout (minutes).
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(
      ::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(
      ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);

  // Never accepted: a handful of connects saturates backlog=1, and every
  // later SYN is dropped.
  std::vector<int> fillers;
  for (int i = 0; i < 8; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    ASSERT_GE(fd, 0);
    ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    fillers.push_back(fd);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  TcpConnectOptions options;
  options.attempts = 3;
  options.connect_timeout_ms = 0;  // deliberately unbounded per attempt
  options.retry_delay_ms = 20;
  options.deadline_ms = 200;

  const Timestamp start = MonotonicNowNs();
  const ChannelPtr channel = TryTcpConnect(port, options);
  const std::int64_t elapsed_ms = (MonotonicNowNs() - start) / 1'000'000;

  EXPECT_EQ(channel, nullptr);
  // The attempt ran until the deadline (not an instant local failure)...
  EXPECT_GE(elapsed_ms, 150);
  // ...and the deadline cut it off (generous bound for loaded CI, still
  // orders of magnitude under the kernel's connect timeout).
  EXPECT_LT(elapsed_ms, 5000);

  for (const int fd : fillers) ::close(fd);
  ::close(listen_fd);
}

TEST(TcpConnectDeadlineTest, DeadlineCutsRetrySchedule) {
  // A refused port fails instantly, so the retry sleeps dominate: 50
  // attempts x 40 ms would take ~2 s. The deadline must cut the schedule
  // short even though no single attempt ever blocks.
  std::uint16_t dead_port = 0;
  {
    TcpListener listener(0);
    dead_port = listener.Port();
  }  // closed: connections are now refused

  TcpConnectOptions options;
  options.attempts = 50;
  options.connect_timeout_ms = 100;
  options.retry_delay_ms = 40;
  options.max_retry_delay_ms = 40;
  options.deadline_ms = 150;

  const Timestamp start = MonotonicNowNs();
  const ChannelPtr channel = TryTcpConnect(dead_port, options);
  const std::int64_t elapsed_ms = (MonotonicNowNs() - start) / 1'000'000;

  EXPECT_EQ(channel, nullptr);
  EXPECT_GE(elapsed_ms, 100);  // it did retry up to the deadline
  EXPECT_LT(elapsed_ms, 1500);  // and stopped ~150 ms in, not ~2 s
}

}  // namespace
}  // namespace adlp::transport
