#include "transport/fault_inject.h"

#include <gtest/gtest.h>

#include "transport/inproc.h"
#include "transport/reconnect.h"

namespace adlp::transport {
namespace {

ChannelPair FaultyPair(FaultPlan plan, std::uint64_t seed) {
  auto pair = MakeInProcChannelPair();
  pair.a = WrapWithFaults(pair.a, plan, Rng(seed));
  return pair;
}

std::size_t CountDelivered(const ChannelPtr& sender, const ChannelPtr& receiver,
                           int frames) {
  for (int i = 0; i < frames; ++i) {
    (void)sender->Send(Bytes{static_cast<std::uint8_t>(i)});
  }
  sender->Close();
  std::size_t delivered = 0;
  while (receiver->Receive()) ++delivered;
  return delivered;
}

TEST(FaultInjectTest, NoFaultsIsTransparent) {
  auto pair = FaultyPair(FaultPlan{}, 1);
  ASSERT_TRUE(pair.a->Send(Bytes{1, 2, 3}));
  auto r = pair.b->Receive();
  ASSERT_TRUE(r);
  EXPECT_EQ(*r, (Bytes{1, 2, 3}));
}

TEST(FaultInjectTest, DropsFramesButReportsSuccess) {
  FaultPlan plan;
  plan.drop_prob = 0.5;
  auto pair = FaultyPair(plan, 42);
  for (int i = 0; i < 100; ++i) {
    // Loss is silent: the one-way sender cannot tell.
    ASSERT_TRUE(pair.a->Send(Bytes{static_cast<std::uint8_t>(i)}));
  }
  auto* faulty = static_cast<FaultInjectingChannel*>(pair.a.get());
  const FaultStats stats = faulty->Stats();
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_GT(stats.forwarded, 0u);
  EXPECT_EQ(stats.dropped + stats.forwarded, 100u);
  pair.a->Close();
  std::size_t delivered = 0;
  while (pair.b->Receive()) ++delivered;
  EXPECT_EQ(delivered, stats.forwarded);
}

TEST(FaultInjectTest, DeterministicAcrossRunsWithSameSeed) {
  FaultPlan plan;
  plan.drop_prob = 0.3;
  auto first = FaultyPair(plan, 7);
  auto second = FaultyPair(plan, 7);
  const std::size_t d1 = CountDelivered(first.a, first.b, 200);
  const std::size_t d2 = CountDelivered(second.a, second.b, 200);
  EXPECT_EQ(d1, d2);
  EXPECT_LT(d1, 200u);
}

TEST(FaultInjectTest, DuplicatesFrames) {
  FaultPlan plan;
  plan.duplicate_prob = 1.0;
  auto pair = FaultyPair(plan, 3);
  ASSERT_TRUE(pair.a->Send(Bytes{9}));
  auto r1 = pair.b->Receive();
  auto r2 = pair.b->Receive();
  ASSERT_TRUE(r1 && r2);
  EXPECT_EQ(*r1, *r2);
}

TEST(FaultInjectTest, CorruptsExactlyOneByte) {
  FaultPlan plan;
  plan.corrupt_prob = 1.0;
  auto pair = FaultyPair(plan, 4);
  const Bytes original(64, 0xAB);
  ASSERT_TRUE(pair.a->Send(original));
  auto r = pair.b->Receive();
  ASSERT_TRUE(r);
  ASSERT_EQ(r->size(), original.size());
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    if ((*r)[i] != original[i]) ++diffs;
  }
  EXPECT_EQ(diffs, 1u);
}

TEST(FaultInjectTest, HardDisconnectAfterNFrames) {
  FaultPlan plan;
  plan.disconnect_after_frames = 3;
  auto pair = FaultyPair(plan, 5);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(pair.a->Send(Bytes{static_cast<std::uint8_t>(i)}));
  }
  // The triggering frame is NOT sent: a clean failure, like a cut cable.
  EXPECT_FALSE(pair.a->Send(Bytes{99}));
  EXPECT_FALSE(pair.a->IsOpen());
  EXPECT_FALSE(pair.a->Send(Bytes{100}));
  std::size_t delivered = 0;
  while (pair.b->Receive()) ++delivered;
  EXPECT_EQ(delivered, 3u);
}

TEST(FaultInjectTest, DelayStillDeliversIntact) {
  FaultPlan plan;
  plan.delay_ns_max = 2'000'000;  // up to 2 ms
  auto pair = FaultyPair(plan, 6);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(pair.a->Send(Bytes{static_cast<std::uint8_t>(i)}));
  }
  for (int i = 0; i < 5; ++i) {
    auto r = pair.b->Receive();
    ASSERT_TRUE(r);
    EXPECT_EQ((*r)[0], static_cast<std::uint8_t>(i));
  }
}

TEST(BackoffPolicyTest, GrowsExponentiallyAndCaps) {
  BackoffPolicy policy{10, 1000, 2.0, 0.0};
  Rng rng(1);
  EXPECT_EQ(policy.DelayMs(0, rng), 10);
  EXPECT_EQ(policy.DelayMs(1, rng), 20);
  EXPECT_EQ(policy.DelayMs(2, rng), 40);
  EXPECT_EQ(policy.DelayMs(10, rng), 1000);  // capped
  EXPECT_EQ(policy.DelayMs(63, rng), 1000);
}

TEST(BackoffPolicyTest, JitterStaysWithinBandAndIsDeterministic) {
  BackoffPolicy policy{100, 10000, 2.0, 0.25};
  Rng a(9), b(9);
  for (unsigned f = 0; f < 6; ++f) {
    const auto d1 = policy.DelayMs(f, a);
    const auto d2 = policy.DelayMs(f, b);
    EXPECT_EQ(d1, d2);  // same seed, same schedule
    const double base = std::min(100.0 * (1 << f), 10000.0);
    EXPECT_GE(d1, static_cast<std::int64_t>(base * 0.74));
    EXPECT_LE(d1, static_cast<std::int64_t>(base * 1.26));
  }
}

}  // namespace
}  // namespace adlp::transport
