// ThreadPool: the reusable worker pool under the sharded audit pipeline.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace adlp {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  pool.Wait();
}

TEST(ThreadPoolTest, ReusableAcrossWaitCycles) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 20; ++i) pool.Submit([&count] { count.fetch_add(1); });
    pool.Wait();
    EXPECT_EQ(count.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.ThreadCount(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&hits](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [](std::size_t, std::size_t) {
    FAIL() << "called on empty range";
  });
}

TEST(ThreadPoolTest, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.ParallelFor(3, [&count](std::size_t begin, std::size_t end) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        count.fetch_add(1);
      });
    }
    // No Wait(): the destructor must still run every queued task before
    // joining (a dropped task would deadlock a Wait()-free caller).
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ManyWorkersContendOnSharedCounter) {
  ThreadPool pool(8);
  std::atomic<std::uint64_t> sum{0};
  constexpr std::size_t kTasks = 500;
  for (std::size_t i = 0; i < kTasks; ++i) {
    pool.Submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), kTasks * (kTasks - 1) / 2);
}

}  // namespace
}  // namespace adlp
