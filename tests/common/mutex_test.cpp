// Tests for the annotated Mutex/MutexLock/CondVar wrappers. The whole tree's
// lock discipline sits on these, so they are covered directly: mutual
// exclusion under contention, timed waits, scoped release/reacquire, and the
// notify paths.
#include "common/mutex.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace adlp {
namespace {

using namespace std::chrono_literals;

TEST(MutexTest, ContendedIncrementsDoNotRace) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(MutexTest, TryLockFailsWhileHeldAndSucceedsAfter) {
  Mutex mu;
  mu.Lock();

  bool acquired = true;
  std::thread other([&] { acquired = mu.TryLock(); });
  other.join();
  EXPECT_FALSE(acquired);

  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexLockTest, ScopedReleaseAndReacquire) {
  Mutex mu;
  MutexLock lock(mu);

  // While Unlock()ed, another thread can take the mutex.
  lock.Unlock();
  {
    bool acquired = false;
    std::thread other([&] {
      acquired = mu.TryLock();
      if (acquired) mu.Unlock();
    });
    other.join();
    EXPECT_TRUE(acquired);
  }

  // After Lock(), it is held again and the destructor releases it exactly
  // once (no double-unlock — this test failing would abort under libstdc++).
  lock.Lock();
  bool acquired = true;
  std::thread other([&] { acquired = mu.TryLock(); });
  other.join();
  EXPECT_FALSE(acquired);
}

TEST(MutexLockTest, DestructorSkipsReleaseWhenUnlocked) {
  Mutex mu;
  {
    MutexLock lock(mu);
    lock.Unlock();
  }  // destructor must not unlock an unheld mutex
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(CondVarTest, WaitWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;

  std::thread waker([&] {
    std::this_thread::sleep_for(10ms);
    {
      MutexLock lock(mu);
      ready = true;
    }
    cv.NotifyOne();
  });

  {
    MutexLock lock(mu);
    while (!ready) cv.Wait(lock);
    EXPECT_TRUE(ready);
  }
  waker.join();
}

TEST(CondVarTest, WaitForTimesOutWithoutNotify) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_EQ(cv.WaitFor(lock, 5ms), std::cv_status::timeout);
}

TEST(CondVarTest, WaitUntilDeadlineLoopSeesPredicate) {
  Mutex mu;
  CondVar cv;
  bool ready = false;

  std::thread waker([&] {
    std::this_thread::sleep_for(10ms);
    {
      MutexLock lock(mu);
      ready = true;
    }
    cv.NotifyAll();
  });

  // The deadline-loop idiom used across the tree for timed predicate waits.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  bool observed;
  {
    MutexLock lock(mu);
    while (!ready) {
      if (cv.WaitUntil(lock, deadline) == std::cv_status::timeout) break;
    }
    observed = ready;
  }
  EXPECT_TRUE(observed);
  waker.join();
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int awake = 0;

  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.Wait(lock);
      ++awake;
    });
  }

  std::this_thread::sleep_for(10ms);
  {
    MutexLock lock(mu);
    go = true;
  }
  cv.NotifyAll();
  for (auto& th : waiters) th.join();
  EXPECT_EQ(awake, kWaiters);
}

}  // namespace
}  // namespace adlp
