#include "sim/vehicle.h"

#include <gtest/gtest.h>

#include <numbers>

namespace adlp::sim {
namespace {

TEST(VehicleTest, StationaryWithoutSpeed) {
  Vehicle v;
  const VehicleState before = v.state();
  v.Step(0.0, 0.0, 0.1);
  EXPECT_DOUBLE_EQ(v.state().x, before.x);
  EXPECT_DOUBLE_EQ(v.state().y, before.y);
}

TEST(VehicleTest, StraightLineMotion) {
  Vehicle v;
  VehicleState s;
  s.speed = 1.0;
  v.set_state(s);
  for (int i = 0; i < 10; ++i) v.Step(0.0, 1.0, 0.1);
  EXPECT_NEAR(v.state().x, 1.0, 0.05);
  EXPECT_NEAR(v.state().y, 0.0, 1e-9);
  EXPECT_NEAR(v.state().heading, 0.0, 1e-9);
}

TEST(VehicleTest, SpeedConvergesToTarget) {
  Vehicle v;
  for (int i = 0; i < 100; ++i) v.Step(0.0, 2.0, 0.05);
  EXPECT_NEAR(v.state().speed, 2.0, 0.05);
}

TEST(VehicleTest, SteeringTurnsLeft) {
  Vehicle v;
  VehicleState s;
  s.speed = 1.0;
  v.set_state(s);
  for (int i = 0; i < 20; ++i) v.Step(0.2, 1.0, 0.05);
  EXPECT_GT(v.state().heading, 0.0);
  EXPECT_GT(v.state().y, 0.0);
}

TEST(VehicleTest, HeadingStaysWrapped) {
  Vehicle v;
  VehicleState s;
  s.speed = 2.0;
  v.set_state(s);
  for (int i = 0; i < 1000; ++i) v.Step(0.4, 2.0, 0.05);
  EXPECT_LE(v.state().heading, std::numbers::pi);
  EXPECT_GE(v.state().heading, -std::numbers::pi);
}

TEST(TrackTest, LateralOffsetSignConvention) {
  Track track(3.0);
  VehicleState on_line;
  on_line.x = 3.0;
  EXPECT_NEAR(track.LateralOffset(on_line), 0.0, 1e-9);
  VehicleState outside;
  outside.x = 3.5;
  EXPECT_NEAR(track.LateralOffset(outside), 0.5, 1e-9);
  VehicleState inside;
  inside.x = 2.5;
  EXPECT_NEAR(track.LateralOffset(inside), -0.5, 1e-9);
}

TEST(TrackTest, HeadingErrorZeroOnTangent) {
  Track track(3.0);
  VehicleState s;
  s.x = 3.0;
  s.y = 0.0;
  s.heading = std::numbers::pi / 2;  // tangent for CCW travel at (R, 0)
  EXPECT_NEAR(track.HeadingError(s), 0.0, 1e-9);
}

TEST(TrackTest, ProgressIncreasesAlongTrack) {
  Track track(3.0);
  VehicleState a, b;
  a.x = 3.0;
  a.y = 0.0;
  b.x = 0.0;
  b.y = 3.0;  // quarter lap
  EXPECT_NEAR(track.Progress(a), 0.0, 1e-9);
  EXPECT_NEAR(track.Progress(b), std::numbers::pi / 2 * 3.0, 1e-9);
}

TEST(WorldTest, StopSignVisibilityWindow) {
  World world;
  world.track = Track(3.0);
  world.has_stop_sign = true;
  world.stop_sign_progress = std::numbers::pi * 3.0;  // half lap
  world.stop_sign_range = 1.0;

  VehicleState far;
  far.x = 3.0;
  far.y = 0.0;  // progress 0, half a lap away
  EXPECT_FALSE(world.StopSignVisible(far));

  VehicleState close;
  const double theta = std::numbers::pi - 0.2;  // slightly before half lap
  close.x = 3.0 * std::cos(theta);
  close.y = 3.0 * std::sin(theta);
  EXPECT_TRUE(world.StopSignVisible(close));

  World no_sign = world;
  no_sign.has_stop_sign = false;
  EXPECT_FALSE(no_sign.StopSignVisible(close));
}

TEST(VehicleTest, ClosedLoopTracksCircle) {
  // Proportional control on offset+heading keeps the car near the line —
  // the physics is sane enough for the self-driving demo.
  Vehicle v;
  Track track(3.0);
  VehicleState s;
  s.x = 3.1;  // start slightly outside
  s.y = 0.0;
  s.heading = std::numbers::pi / 2;
  s.speed = 1.0;
  v.set_state(s);
  double worst = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double offset = track.LateralOffset(v.state());
    const double herr = track.HeadingError(v.state());
    const double steer = std::clamp(0.8 * offset - 1.2 * herr, -0.45, 0.45);
    v.Step(steer, 1.0, 0.05);
    if (i > 200) worst = std::max(worst, std::abs(offset));
  }
  EXPECT_LT(worst, 0.3);
}

}  // namespace
}  // namespace adlp::sim
