#include "sim/app.h"

#include <gtest/gtest.h>

#include "audit/auditor.h"
#include "test_util.h"

namespace adlp::sim {
namespace {

AppOptions FastAppOptions(proto::LoggingScheme scheme) {
  AppOptions options;
  options.component = test::FastOptions(scheme);
  options.realtime = false;  // step as fast as possible
  return options;
}

TEST(SelfDrivingAppTest, PipelineFlowsEndToEnd) {
  pubsub::Master master;
  proto::LogServer server;
  AppOptions options = FastAppOptions(proto::LoggingScheme::kNone);
  options.with_stop_sign = false;
  SelfDrivingApp app(master, server, options);
  app.Run(2.0);  // 40 frames
  app.Shutdown();

  const auto stats = app.stats();
  EXPECT_EQ(stats.frames, 40u);
  EXPECT_EQ(stats.scans, 20u);
  // Perception messages flow (some frames may still be in flight at stop).
  EXPECT_GT(stats.lane_msgs, 30u);
  EXPECT_GT(stats.sign_msgs, 30u);
  EXPECT_GT(stats.plan_msgs, 25u);
  EXPECT_GT(stats.steering_msgs, 25u);
  EXPECT_GT(stats.actuations, 25u);
}

TEST(SelfDrivingAppTest, CarDrivesAndStaysNearTrack) {
  pubsub::Master master;
  proto::LogServer server;
  AppOptions options = FastAppOptions(proto::LoggingScheme::kNone);
  options.with_stop_sign = false;
  SelfDrivingApp app(master, server, options);
  app.Run(10.0);
  app.Shutdown();

  const auto state = app.stats().final_state;
  EXPECT_GT(state.speed, 0.3);  // actually moving
  const double radius = std::sqrt(state.x * state.x + state.y * state.y);
  EXPECT_NEAR(radius, 3.0, 0.6);  // roughly on the circle
}

TEST(SelfDrivingAppTest, StopSignStopsTheCar) {
  pubsub::Master master;
  proto::LogServer server;
  AppOptions options = FastAppOptions(proto::LoggingScheme::kNone);
  options.with_stop_sign = true;
  SelfDrivingApp app(master, server, options);
  app.Run(30.0);
  app.Shutdown();

  const auto stats = app.stats();
  EXPECT_TRUE(stats.stop_engaged);
  EXPECT_LT(stats.final_state.speed, 0.1);  // braked to rest
}

TEST(SelfDrivingAppTest, ObstacleSlowsTheCar) {
  // Same track, but with an obstacle parked on it and no stop sign: the
  // LIDAR -> obstacle_detector -> planner path must brake the car before
  // contact.
  pubsub::Master master;
  proto::LogServer server;
  AppOptions options = FastAppOptions(proto::LoggingScheme::kNone);
  options.with_stop_sign = false;
  options.with_obstacle = true;
  SelfDrivingApp app(master, server, options);
  app.Run(25.0);  // enough to reach the 3/4-lap obstacle
  app.Shutdown();

  const auto stats = app.stats();
  EXPECT_GT(stats.obstacle_msgs, 0u);
  // The car must have slowed well below cruise speed near the obstacle and
  // must not have driven through it (obstacle sits at (0, -R)).
  const auto& s = stats.final_state;
  const double dist_to_obstacle =
      std::hypot(s.x - 0.0, s.y - (-3.0));
  EXPECT_GT(dist_to_obstacle, 0.15);  // never collided
  EXPECT_LT(s.speed, 0.6);            // braked from 1.0 m/s cruise
}

TEST(SelfDrivingAppTest, TopologyMatchesFigure11) {
  pubsub::Master master;
  proto::LogServer server;
  SelfDrivingApp app(master, server,
                     FastAppOptions(proto::LoggingScheme::kNone));
  const auto topo = master.Topology();
  ASSERT_EQ(topo.size(), SelfDrivingApp::TopicNames().size());
  EXPECT_EQ(topo.at("image").publisher, "image_feeder");
  EXPECT_EQ(topo.at("image").subscribers.size(), 2u);  // lane + sign
  EXPECT_EQ(topo.at("scan").publisher, "lidar_driver");
  EXPECT_EQ(topo.at("plan").publisher, "planner");
  EXPECT_EQ(topo.at("steering").subscribers,
            (std::vector<crypto::ComponentId>{"actuator"}));
  app.Shutdown();
}

TEST(SelfDrivingAppTest, AdlpLogsAuditClean) {
  pubsub::Master master;
  proto::LogServer server;
  AppOptions options = FastAppOptions(proto::LoggingScheme::kAdlp);
  SelfDrivingApp app(master, server, options);
  app.Run(1.0);  // 20 frames through the full graph
  app.Shutdown();

  EXPECT_GT(server.EntryCount(), 100u);
  EXPECT_TRUE(server.VerifyChain());

  const audit::AuditReport report =
      audit::Auditor(server.Keys()).Audit(server.Entries(), master.Topology());
  EXPECT_TRUE(report.unfaithful.empty()) << report.Render();
  EXPECT_EQ(report.TotalInvalid(), 0u) << report.Render();
  // Hidden entries can only be in-flight stragglers; with clean shutdown
  // and ACK gating, publishers only log acked transmissions.
  EXPECT_EQ(report.TotalHidden(), 0u) << report.Render();
}

TEST(SelfDrivingAppTest, BaseSchemeLogsAreUnprovable) {
  pubsub::Master master;
  proto::LogServer server;
  SelfDrivingApp app(master, server,
                     FastAppOptions(proto::LoggingScheme::kBase));
  app.Run(0.5);
  app.Shutdown();
  EXPECT_GT(server.EntryCount(), 20u);

  const audit::AuditReport report =
      audit::Auditor(server.Keys()).Audit(server.Entries(), master.Topology());
  for (const auto& v : report.verdicts) {
    EXPECT_TRUE(v.finding == audit::Finding::kUnprovableConsistent ||
                v.finding == audit::Finding::kUnprovableMissing)
        << FindingName(v.finding);
  }
}

}  // namespace
}  // namespace adlp::sim
