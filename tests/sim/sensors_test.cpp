#include "sim/sensors.h"

#include <gtest/gtest.h>

#include <numbers>

#include "sim/perception.h"

namespace adlp::sim {
namespace {

World MakeWorld(bool with_sign = false) {
  World world;
  world.track = Track(3.0);
  world.has_stop_sign = with_sign;
  world.stop_sign_progress = 0.5;
  world.stop_sign_range = 1.0;
  return world;
}

VehicleState OnTrack(double offset = 0.0, double heading_err = 0.0) {
  VehicleState s;
  s.x = 3.0 + offset;
  s.y = 0.0;
  s.heading = std::numbers::pi / 2 + heading_err;
  return s;
}

TEST(CameraTest, ImageHasPaperSize) {
  CameraModel camera;
  const Bytes image = camera.Render(OnTrack(), MakeWorld(), 0);
  EXPECT_EQ(image.size(), 921'641u);  // Table I / III Image size
  EXPECT_EQ(image.size(), kImageSize);
}

TEST(CameraTest, HeaderCarriesFrameNumber) {
  CameraModel camera;
  const Bytes image = camera.Render(OnTrack(), MakeWorld(), 0xAABBCCDD);
  EXPECT_EQ(image[0], 'A');
  const std::uint32_t frame = image[8] | (image[9] << 8) | (image[10] << 16) |
                              (static_cast<std::uint32_t>(image[11]) << 24);
  EXPECT_EQ(frame, 0xAABBCCDDu);
}

TEST(LidarTest, ScanHasPaperSize) {
  LidarModel lidar;
  const Bytes scan = lidar.Scan(OnTrack(), MakeWorld(), 0);
  EXPECT_EQ(scan.size(), 8'705u);  // Table I / III Scan size
}

TEST(LaneDetectionTest, RecoversZeroOffset) {
  CameraModel camera;
  const Bytes image = camera.Render(OnTrack(0.0, 0.0), MakeWorld(), 0);
  const LaneEstimate lane = DetectLane(image);
  ASSERT_TRUE(lane.valid);
  EXPECT_NEAR(lane.lateral_offset, 0.0, 0.02);
  EXPECT_NEAR(lane.heading_error, 0.0, 0.02);
}

TEST(LaneDetectionTest, RecoversLateralOffsetSweep) {
  CameraModel camera;
  const World world = MakeWorld();
  for (double offset : {-0.3, -0.1, 0.1, 0.3}) {
    const Bytes image = camera.Render(OnTrack(offset), world, 0);
    const LaneEstimate lane = DetectLane(image);
    ASSERT_TRUE(lane.valid) << offset;
    EXPECT_NEAR(lane.lateral_offset, offset, 0.05) << offset;
  }
}

TEST(LaneDetectionTest, RecoversHeadingError) {
  CameraModel camera;
  for (double herr : {-0.15, 0.15}) {
    const Bytes image = camera.Render(OnTrack(0.0, herr), MakeWorld(), 0);
    const LaneEstimate lane = DetectLane(image);
    ASSERT_TRUE(lane.valid) << herr;
    EXPECT_NEAR(lane.heading_error, herr, 0.05) << herr;
  }
}

TEST(LaneDetectionTest, InvalidOnWrongSize) {
  EXPECT_FALSE(DetectLane(Bytes(100, 0)).valid);
}

TEST(SignRecognitionTest, DetectsRenderedStopSign) {
  CameraModel camera;
  World world = MakeWorld(true);
  // Put the car right before the sign's progress point.
  VehicleState s = OnTrack();
  world.stop_sign_progress = world.track.Progress(s) + 0.5;
  const Bytes image = camera.Render(s, world, 0);
  const SignDetection sign = RecognizeSign(image);
  EXPECT_TRUE(sign.stop_sign);
  EXPECT_GT(sign.confidence, 0.9);
}

TEST(SignRecognitionTest, NoFalsePositiveWithoutSign) {
  CameraModel camera;
  const Bytes image = camera.Render(OnTrack(), MakeWorld(false), 0);
  const SignDetection sign = RecognizeSign(image);
  EXPECT_FALSE(sign.stop_sign);
  EXPECT_LT(sign.confidence, 0.1);
}

TEST(LidarTest, CleanWorldAllMaxRange) {
  LidarModel lidar(12.0);
  const Bytes scan = lidar.Scan(OnTrack(), MakeWorld(), 0);
  const ObstacleReport report = DetectObstacle(scan, 12.0);
  EXPECT_FALSE(report.detected);
  EXPECT_NEAR(report.min_distance, 12.0, 1e-3);
}

TEST(LidarTest, ObstacleAheadDetectedAtRightDistance) {
  LidarModel lidar(12.0);
  World world = MakeWorld();
  VehicleState s = OnTrack();  // at (3, 0) heading +y
  world.obstacles.push_back(Obstacle{3.0, 2.0, 0.2});  // 2 m ahead
  const Bytes scan = lidar.Scan(s, world, 0);
  const ObstacleReport report = DetectObstacle(scan, 12.0);
  ASSERT_TRUE(report.detected);
  EXPECT_NEAR(report.min_distance, 1.8, 0.05);  // 2 m minus radius
  EXPECT_NEAR(report.bearing, 0.0, 0.05);
}

TEST(LidarTest, ObstacleBehindIgnoredByForwardSector) {
  LidarModel lidar(12.0);
  World world = MakeWorld();
  world.obstacles.push_back(Obstacle{3.0, -2.0, 0.2});  // behind
  const Bytes scan = lidar.Scan(OnTrack(), world, 0);
  EXPECT_FALSE(DetectObstacle(scan, 12.0).detected);
}

TEST(LidarTest, ObstacleDetectionRejectsWrongSize) {
  EXPECT_FALSE(DetectObstacle(Bytes(64, 0)).detected);
}

TEST(MsgsTest, AllCodecsRoundTrip) {
  LaneEstimate lane{0.25, -0.1, true};
  const auto lane2 = DecodeLane(EncodeLane(lane));
  ASSERT_TRUE(lane2);
  EXPECT_DOUBLE_EQ(lane2->lateral_offset, 0.25);
  EXPECT_DOUBLE_EQ(lane2->heading_error, -0.1);
  EXPECT_TRUE(lane2->valid);

  SignDetection sign{true, 0.9};
  const auto sign2 = DecodeSign(EncodeSign(sign));
  ASSERT_TRUE(sign2);
  EXPECT_TRUE(sign2->stop_sign);

  ObstacleReport obs{1.5, 0.2, true};
  const auto obs2 = DecodeObstacle(EncodeObstacle(obs));
  ASSERT_TRUE(obs2);
  EXPECT_DOUBLE_EQ(obs2->min_distance, 1.5);

  PlanCommand plan{1.0, -0.3, 1};
  const auto plan2 = DecodePlan(EncodePlan(plan));
  ASSERT_TRUE(plan2);
  EXPECT_EQ(plan2->flags, 1u);

  SteeringCommand steer{0.4, 2.0, 0};
  const auto steer2 = DecodeSteering(EncodeSteering(steer));
  ASSERT_TRUE(steer2);
  EXPECT_DOUBLE_EQ(steer2->angle, 0.4);
}

TEST(MsgsTest, PayloadSizesMatchSpec) {
  EXPECT_EQ(EncodeLane({}).size(), kLaneSize);
  EXPECT_EQ(EncodeSign({}).size(), kSignSize);
  EXPECT_EQ(EncodeObstacle({}).size(), kObstacleSize);
  EXPECT_EQ(EncodePlan({}).size(), kPlanSize);
  EXPECT_EQ(EncodeSteering({}).size(), kSteeringSize);
  EXPECT_EQ(kSteeringSize, 20u);  // the paper's Steering size
}

TEST(MsgsTest, DecodersRejectWrongSizes) {
  EXPECT_FALSE(DecodeLane(Bytes(10, 0)).has_value());
  EXPECT_FALSE(DecodeSign(Bytes(10, 0)).has_value());
  EXPECT_FALSE(DecodeObstacle(Bytes(10, 0)).has_value());
  EXPECT_FALSE(DecodePlan(Bytes(10, 0)).has_value());
  EXPECT_FALSE(DecodeSteering(Bytes(10, 0)).has_value());
}

TEST(PerceptionTest, PlannerStopsForStopSign) {
  const PlanCommand cmd =
      Plan({0, 0, true}, {true, 0.95}, {12.0, 0, false}, 1.0);
  EXPECT_DOUBLE_EQ(cmd.target_speed, 0.0);
  EXPECT_EQ(cmd.flags & 1, 1u);
}

TEST(PerceptionTest, PlannerSlowsForObstacle) {
  const PlanCommand cmd = Plan({0, 0, true}, {false, 0}, {0.8, 0, true}, 1.0);
  EXPECT_LT(cmd.target_speed, 0.5);
}

TEST(PerceptionTest, PlannerSteersTowardLane) {
  // Positive offset = outside the circle; steering left (+) points the car
  // inward for CCW travel.
  const PlanCommand outside = Plan({0.3, 0, true}, {false, 0}, {12, 0, false});
  EXPECT_GT(outside.steering, 0.0);
  const PlanCommand inside = Plan({-0.3, 0, true}, {false, 0}, {12, 0, false});
  EXPECT_LT(inside.steering, 0.0);
  // Pointing inward already (positive heading error): countersteer.
  const PlanCommand aligned = Plan({0.0, 0.2, true}, {false, 0}, {12, 0, false});
  EXPECT_LT(aligned.steering, 0.0);
}

TEST(PerceptionTest, ControllerSaturates) {
  const SteeringCommand cmd = Control({99.0, 9.0, 0});
  EXPECT_LE(cmd.angle, 0.45);
  EXPECT_LE(cmd.speed, 3.0);
}

}  // namespace
}  // namespace adlp::sim
