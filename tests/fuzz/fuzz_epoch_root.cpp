// Fuzz target: the epoch-seal decoder. Digest fields are fixed 32-byte
// arrays — hostile lengths must throw before smearing into them.
#include <cstddef>
#include <cstdint>

#include "adlp/epoch.h"
#include "wire/wire.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const adlp::BytesView input(data, size);
  try {
    adlp::proto::ParseEpochRoot(input);
  } catch (const adlp::wire::WireError&) {
  }
  return 0;
}
