// Fuzz target: the log-upload ingestion path (kKindKey + kKindEntry, both
// plain and quorum-tagged). Exercises both the pure parser and the full
// server-side apply, which is what a hostile publisher actually reaches.
#include <cstddef>
#include <cstdint>

#include "adlp/log_server.h"
#include "adlp/remote_log.h"
#include "wire/wire.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const adlp::BytesView input(data, size);
  try {
    adlp::proto::ParseLogUpload(input);
  } catch (const adlp::wire::WireError&) {
  }
  try {
    adlp::proto::LogServer sink;
    adlp::proto::ApplyLogUpload(input, sink);
  } catch (const adlp::wire::WireError&) {
  }
  return 0;
}
