// Fuzz target: the replica-sync protocol (kKindGetRoots … kKindSealInfo).
// Every message parser sees every input — a frame of one kind fed to
// another kind's parser must throw, not crash — and the server dispatch
// sees it too, which is the path a hostile peer actually reaches.
#include <cstddef>
#include <cstdint>

#include "adlp/log_server.h"
#include "adlp/sync_msgs.h"
#include "wire/wire.h"

namespace {

template <typename Fn>
void Probe(Fn&& parse, adlp::BytesView input) {
  try {
    parse(input);
  } catch (const adlp::wire::WireError&) {
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  namespace proto = adlp::proto;
  const adlp::BytesView input(data, size);
  Probe([](adlp::BytesView b) { proto::ParseSyncGetRoots(b); }, input);
  Probe([](adlp::BytesView b) { proto::ParseSyncRoots(b); }, input);
  Probe([](adlp::BytesView b) { proto::ParseSyncGetRecords(b); }, input);
  Probe([](adlp::BytesView b) { proto::ParseSyncRecords(b); }, input);
  Probe([](adlp::BytesView b) { proto::ParseSyncGetProof(b); }, input);
  Probe([](adlp::BytesView b) { proto::ParseSyncInclusionProof(b); }, input);
  Probe([](adlp::BytesView b) { proto::ParseSyncGetConsistency(b); }, input);
  Probe([](adlp::BytesView b) { proto::ParseSyncConsistencyProof(b); }, input);
  Probe([](adlp::BytesView b) { proto::ParseSyncGetSealInfo(b); }, input);
  Probe([](adlp::BytesView b) { proto::ParseSyncSealInfo(b); }, input);
  Probe(
      [](adlp::BytesView b) {
        proto::LogServer server;
        proto::HandleSyncRequest(b, server);
      },
      input);
  return 0;
}
