// Seed-corpus generator for the fuzz harnesses. Emits, per parser family,
// a handful of structurally valid frames built with the real serializers
// plus hostile derivatives made with the shared mutation helpers
// (tests/test_util/hostile_mutations.h) — the same shapes the gtest fuzz
// sweeps use. Deterministic: a fixed Rng seed means regenerating into a
// clean directory reproduces the committed corpus byte-for-byte.
//
//   fuzz_seed_gen <output-root>
//
// writes <output-root>/<family>/<name>.bin for families: wire_frames,
// sync_msgs, epoch_root, log_entry, log_upload, log_ack. The committed
// corpora live in tests/fuzz/seeds/ and double as the ctest replay inputs
// for the standalone harness builds.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "adlp/epoch.h"
#include "adlp/log_entry.h"
#include "adlp/remote_log.h"
#include "adlp/sync_msgs.h"
#include "adlp/wire_msgs.h"
#include "audit/manifest.h"
#include "common/rng.h"
#include "crypto/keystore.h"
#include "crypto/sig.h"
#include "pubsub/message.h"
#include "test_util/hostile_mutations.h"

namespace adlp {
namespace {

using test::BitFlipped;
using test::LengthBombed;
using test::TruncatedAtRandom;
using test::WithOversizedTail;

class SeedWriter {
 public:
  SeedWriter(std::filesystem::path root, std::string family)
      : dir_(root / family) {
    std::filesystem::create_directories(dir_);
  }

  void Put(const std::string& name, BytesView frame) {
    std::ofstream out(dir_ / (name + ".bin"), std::ios::binary);
    out.write(reinterpret_cast<const char*>(frame.data()),
              static_cast<std::streamsize>(frame.size()));
  }

  /// The standard hostile spread derived from one valid frame.
  void PutWithMutations(const std::string& name, const Bytes& valid,
                        Rng& rng) {
    Put(name, valid);
    Put(name + "-flip", BitFlipped(rng, valid, 3));
    Put(name + "-bomb", LengthBombed(rng, valid, 8));
    Put(name + "-cut", TruncatedAtRandom(rng, valid));
    Put(name + "-tail", WithOversizedTail(rng, valid, 256));
  }

 private:
  std::filesystem::path dir_;
};

proto::LogEntry SeedEntry(Rng& rng) {
  proto::LogEntry entry;
  entry.scheme = proto::LogScheme::kAdlp;
  entry.component = "camera";
  entry.topic = "image";
  entry.direction = proto::Direction::kOut;
  entry.seq = rng.UniformBelow(1000);
  entry.timestamp = static_cast<Timestamp>(rng.NextU64() >> 1);
  entry.message_stamp = entry.timestamp - 1;
  entry.data = rng.RandomBytes(64);
  entry.self_signature = rng.RandomBytes(64);
  entry.peer_signature = rng.RandomBytes(64);
  entry.peer = "planner";
  entry.peer_data_hash = rng.RandomBytes(32);
  entry.acks.push_back({"planner", rng.RandomBytes(32), rng.RandomBytes(64)});
  return entry;
}

crypto::PublicKey SeedRsaKey(Rng& rng) {
  crypto::PublicKey key;
  key.alg = crypto::SigAlgorithm::kRsaPkcs1Sha256;
  key.rsa.n = crypto::BigInt::FromBytesBE(rng.RandomBytes(64));
  key.rsa.e = crypto::BigInt::FromBytesBE(Bytes{0x01, 0x00, 0x01});
  return key;
}

proto::EpochRoot SeedEpochRoot(Rng& rng) {
  proto::EpochRoot root;
  root.epoch = rng.UniformBelow(100);
  root.tree_size = 1 + rng.UniformBelow(1000);
  const Bytes r = rng.RandomBytes(root.root.size());
  std::copy(r.begin(), r.end(), root.root.begin());
  const Bytes p = rng.RandomBytes(root.prev_root_hash.size());
  std::copy(p.begin(), p.end(), root.prev_root_hash.begin());
  root.sealed_at = static_cast<Timestamp>(rng.NextU64() >> 1);
  root.logger = "logger-0";
  root.signature = rng.RandomBytes(64);
  return root;
}

void EmitLogEntry(const std::filesystem::path& root, Rng& rng) {
  SeedWriter w(root, "log_entry");
  w.PutWithMutations("entry", proto::SerializeLogEntry(SeedEntry(rng)), rng);
  proto::LogEntry base = SeedEntry(rng);
  base.scheme = proto::LogScheme::kBase;
  base.acks.clear();
  w.PutWithMutations("entry-base", proto::SerializeLogEntry(base), rng);
  w.Put("junk", rng.RandomBytes(96));
}

void EmitLogUpload(const std::filesystem::path& root, Rng& rng) {
  SeedWriter w(root, "log_upload");
  w.PutWithMutations("upload-entry",
                     proto::SerializeLogUpload(SeedEntry(rng)), rng);
  w.PutWithMutations(
      "upload-key", proto::SerializeLogUpload("camera", SeedRsaKey(rng)),
      rng);
  w.PutWithMutations(
      "upload-entry-tagged",
      proto::SerializeLogUpload(SeedEntry(rng), "sink-0",
                                rng.UniformBelow(1000)),
      rng);
  w.PutWithMutations(
      "upload-key-tagged",
      proto::SerializeLogUpload("camera", SeedRsaKey(rng), "sink-0",
                                rng.UniformBelow(1000)),
      rng);
  w.Put("junk", rng.RandomBytes(96));
}

void EmitLogAck(const std::filesystem::path& root, Rng& rng) {
  SeedWriter w(root, "log_ack");
  w.PutWithMutations("ack", proto::SerializeLogAck(rng.NextU64() >> 1), rng);
  w.PutWithMutations("ack-zero", proto::SerializeLogAck(0), rng);
  // Cross-kind confusion: an upload frame is never an ack.
  w.Put("not-an-ack", proto::SerializeLogUpload(SeedEntry(rng)));
  w.Put("junk", rng.RandomBytes(48));
}

void EmitEpochRoot(const std::filesystem::path& root, Rng& rng) {
  SeedWriter w(root, "epoch_root");
  w.PutWithMutations("seal", proto::SerializeEpochRoot(SeedEpochRoot(rng)),
                     rng);
  proto::EpochRoot genesis = SeedEpochRoot(rng);
  genesis.epoch = 0;
  genesis.prev_root_hash.fill(0);
  w.PutWithMutations("seal-genesis", proto::SerializeEpochRoot(genesis), rng);
  w.Put("junk", rng.RandomBytes(96));
}

void EmitSyncMsgs(const std::filesystem::path& root, Rng& rng) {
  SeedWriter w(root, "sync_msgs");
  proto::SyncRoots roots;
  roots.roots.push_back(SeedEpochRoot(rng));
  roots.roots.push_back(SeedEpochRoot(rng));
  proto::SyncRecords records;
  records.first = rng.UniformBelow(100);
  for (int i = 0; i < 3; ++i) records.records.push_back(rng.RandomBytes(40));
  proto::SyncProof proof;
  for (int i = 0; i < 4; ++i) {
    crypto::Digest d;
    const Bytes b = rng.RandomBytes(d.size());
    std::copy(b.begin(), b.end(), d.begin());
    proof.proof.push_back(d);
  }
  proto::SyncSealInfo info;
  info.epoch = rng.UniformBelow(10);
  info.watermarks["sink-0"] = rng.UniformBelow(1000);
  info.keys.emplace_back("camera",
                         crypto::SerializePublicKey(SeedRsaKey(rng)));

  w.PutWithMutations("get-roots",
                     proto::SerializeSyncGetRoots({rng.UniformBelow(100)}),
                     rng);
  w.PutWithMutations("roots", proto::SerializeSyncRoots(roots), rng);
  w.PutWithMutations(
      "get-records",
      proto::SerializeSyncGetRecords(
          {rng.UniformBelow(100), rng.UniformBelow(100)}),
      rng);
  w.PutWithMutations("records", proto::SerializeSyncRecords(records), rng);
  w.PutWithMutations(
      "get-proof",
      proto::SerializeSyncGetProof(
          {rng.UniformBelow(100), 1 + rng.UniformBelow(100)}),
      rng);
  w.PutWithMutations("inclusion-proof",
                     proto::SerializeSyncInclusionProof(proof), rng);
  w.PutWithMutations(
      "get-consistency",
      proto::SerializeSyncGetConsistency(
          {rng.UniformBelow(50), 50 + rng.UniformBelow(50)}),
      rng);
  w.PutWithMutations("consistency-proof",
                     proto::SerializeSyncConsistencyProof(proof), rng);
  w.PutWithMutations("get-seal-info",
                     proto::SerializeSyncGetSealInfo({rng.UniformBelow(10)}),
                     rng);
  w.PutWithMutations("seal-info", proto::SerializeSyncSealInfo(info), rng);
  w.Put("junk", rng.RandomBytes(96));
}

void EmitWireFrames(const std::filesystem::path& root, Rng& rng) {
  SeedWriter w(root, "wire_frames");
  pubsub::Message msg;
  msg.header.topic = "image";
  msg.header.publisher = "camera";
  msg.header.seq = 42;
  msg.header.stamp = 1234;
  msg.payload = rng.RandomBytes(100);
  w.PutWithMutations("pubsub-msg", pubsub::SerializeMessage(msg), rng);
  w.PutWithMutations("data-msg",
                     proto::SerializeDataMessage(msg, rng.RandomBytes(128)),
                     rng);
  proto::AckMessage ack;
  ack.seq = 42;
  ack.subscriber = "planner";
  ack.data_hash = rng.RandomBytes(32);
  ack.signature = rng.RandomBytes(64);
  w.PutWithMutations("ack-msg", proto::SerializeAckMessage(ack), rng);
  crypto::KeyStore keys;
  keys.Register("camera", SeedRsaKey(rng));
  w.PutWithMutations("manifest",
                     audit::SerializeManifest(audit::Topology{}, keys), rng);
  w.PutWithMutations("public-key",
                     crypto::SerializePublicKey(SeedRsaKey(rng)), rng);
  w.Put("junk", rng.RandomBytes(128));
}

}  // namespace
}  // namespace adlp

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-root>\n", argv[0]);
    return 2;
  }
  const std::filesystem::path root(argv[1]);
  // Fixed seed: the committed corpus is reproducible byte-for-byte.
  adlp::Rng rng(0x5eed'c0de);
  adlp::EmitLogEntry(root, rng);
  adlp::EmitLogUpload(root, rng);
  adlp::EmitLogAck(root, rng);
  adlp::EmitEpochRoot(root, rng);
  adlp::EmitSyncMsgs(root, rng);
  adlp::EmitWireFrames(root, rng);
  std::printf("seed corpora written under %s\n", root.c_str());
  return 0;
}
