// Replay driver for fuzz targets built without -fsanitize=fuzzer (the
// default GCC build). Each harness defines only LLVMFuzzerTestOneInput;
// under ADLP_FUZZERS libFuzzer supplies main() and drives coverage-guided
// mutation, while this driver makes the same harness a plain executable
// that replays every file (or directory of files) named on the command
// line. ctest runs each harness over its committed seed corpus this way,
// so the fuzz entry points are exercised on every local test run, not just
// in the Clang fuzz CI job.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

bool ReplayFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return false;
  }
  const std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "usage: %s <seed-file-or-dir>...\n", argv[0]);
    return 2;
  }
  std::size_t ran = 0;
  for (const auto& path : inputs) {
    if (!ReplayFile(path)) return 2;
    ++ran;
  }
  std::printf("replayed %zu inputs\n", ran);
  return 0;
}
