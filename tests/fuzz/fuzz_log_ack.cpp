// Fuzz target: the quorum-ack frame parser (kKindAck). A frame of any other
// kind, or garbage, must throw WireError rather than yield a bogus ack seq.
#include <cstddef>
#include <cstdint>

#include "adlp/remote_log.h"
#include "wire/wire.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const adlp::BytesView input(data, size);
  try {
    adlp::proto::ParseLogAck(input);
  } catch (const adlp::wire::WireError&) {
  }
  return 0;
}
