# Regenerates the fuzz seed corpus into SCRATCH with SEED_GEN and diffs it
# against the COMMITTED tree. fuzz_seed_gen is deterministic (fixed Rng
# seed), so any difference means either a serializer changed without the
# corpus being regenerated, or a seed file was edited by hand. Fix by
# running:  fuzz_seed_gen tests/fuzz/seeds  and committing the result.
file(REMOVE_RECURSE "${SCRATCH}")
execute_process(COMMAND "${SEED_GEN}" "${SCRATCH}" RESULT_VARIABLE gen_rc)
if(NOT gen_rc EQUAL 0)
  message(FATAL_ERROR "fuzz_seed_gen failed (rc=${gen_rc})")
endif()

file(GLOB_RECURSE committed_files RELATIVE "${COMMITTED}" "${COMMITTED}/*.bin")
file(GLOB_RECURSE regen_files RELATIVE "${SCRATCH}" "${SCRATCH}/*.bin")
list(SORT committed_files)
list(SORT regen_files)
if(NOT committed_files STREQUAL regen_files)
  message(FATAL_ERROR
    "seed corpus file sets differ: committed [${committed_files}] vs "
    "regenerated [${regen_files}] — run fuzz_seed_gen tests/fuzz/seeds "
    "and commit the result")
endif()

foreach(rel ${committed_files})
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
    "${COMMITTED}/${rel}" "${SCRATCH}/${rel}" RESULT_VARIABLE diff_rc)
  if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
      "seed ${rel} differs from regenerated output — run "
      "fuzz_seed_gen tests/fuzz/seeds and commit the result")
  endif()
endforeach()
message(STATUS "seed corpus matches fuzz_seed_gen output (${committed_files})")
