// Fuzz target: the base wire-frame decoders — pubsub messages, ADLP
// data/ack protocol messages, audit manifests, and serialized public keys.
// One harness for the family: they share the wire::Reader substrate, so a
// coverage-guided corpus cross-pollinates between them.
#include <cstddef>
#include <cstdint>

#include "adlp/wire_msgs.h"
#include "audit/manifest.h"
#include "crypto/sig.h"
#include "pubsub/message.h"
#include "wire/wire.h"

namespace {

template <typename Fn>
void Probe(Fn&& parse, adlp::BytesView input) {
  try {
    parse(input);
  } catch (const adlp::wire::WireError&) {
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const adlp::BytesView input(data, size);
  Probe([](adlp::BytesView b) { adlp::pubsub::DeserializeMessage(b); }, input);
  Probe([](adlp::BytesView b) { adlp::proto::ParseDataMessage(b); }, input);
  Probe([](adlp::BytesView b) { adlp::proto::ParseAckMessage(b); }, input);
  Probe([](adlp::BytesView b) { adlp::audit::ParseManifest(b); }, input);
  Probe([](adlp::BytesView b) { adlp::crypto::ParsePublicKey(b); }, input);
  return 0;
}
