// Fuzz target: the ADLP log-entry decoder. Hostile bytes must either parse
// or throw WireError — any other exception, crash, or hang is a finding.
#include <cstddef>
#include <cstdint>

#include "adlp/log_entry.h"
#include "wire/wire.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const adlp::BytesView input(data, size);
  try {
    adlp::proto::DeserializeLogEntry(input);
  } catch (const adlp::wire::WireError&) {
    // the only acceptable rejection path
  }
  return 0;
}
