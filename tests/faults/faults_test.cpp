#include <gtest/gtest.h>

#include "crypto/pkcs1.h"
#include "faults/behavior.h"
#include "faults/fabricate.h"
#include "pubsub/message.h"
#include "test_util.h"

namespace adlp::faults {
namespace {

using test::TestIdentity;

proto::LogEntry SampleEntry(proto::Direction dir = proto::Direction::kOut,
                            std::uint64_t seq = 1) {
  proto::LogEntry e;
  e.scheme = proto::LogScheme::kAdlp;
  e.component = "pub";
  e.topic = "image";
  e.direction = dir;
  e.seq = seq;
  e.timestamp = 100;
  e.message_stamp = 99;
  e.data = {1, 2, 3};
  e.peer = dir == proto::Direction::kOut ? "sub" : "pub";
  return e;
}

TEST(FaultFilterTest, TopicFilter) {
  Rng rng(1);
  FaultFilter f{.topic = "image"};
  EXPECT_TRUE(f.Matches(SampleEntry(), rng));
  proto::LogEntry other = SampleEntry();
  other.topic = "scan";
  EXPECT_FALSE(f.Matches(other, rng));
}

TEST(FaultFilterTest, DirectionFilter) {
  Rng rng(1);
  FaultFilter f{.direction = proto::Direction::kIn};
  EXPECT_FALSE(f.Matches(SampleEntry(proto::Direction::kOut), rng));
  EXPECT_TRUE(f.Matches(SampleEntry(proto::Direction::kIn), rng));
}

TEST(FaultFilterTest, PeerFilterModelsSelectiveUnfaithfulness) {
  // An unfaithful component may lie only toward specific counterparts.
  Rng rng(1);
  FaultFilter f{.peer = "sub"};
  EXPECT_TRUE(f.Matches(SampleEntry(), rng));
  proto::LogEntry other = SampleEntry();
  other.peer = "other";
  EXPECT_FALSE(f.Matches(other, rng));
}

TEST(FaultFilterTest, SeqRange) {
  Rng rng(1);
  FaultFilter f;
  f.seq_min = 5;
  f.seq_max = 10;
  EXPECT_FALSE(f.Matches(SampleEntry(proto::Direction::kOut, 4), rng));
  EXPECT_TRUE(f.Matches(SampleEntry(proto::Direction::kOut, 5), rng));
  EXPECT_TRUE(f.Matches(SampleEntry(proto::Direction::kOut, 10), rng));
  EXPECT_FALSE(f.Matches(SampleEntry(proto::Direction::kOut, 11), rng));
}

TEST(FaultFilterTest, ProbabilityRoughlyRespected) {
  Rng rng(42);
  FaultFilter f{.probability = 0.3};
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (f.Matches(SampleEntry(), rng)) ++hits;
  }
  EXPECT_GT(hits, 2500);
  EXPECT_LT(hits, 3500);
}

TEST(HidingBehaviorTest, DropsMatchingOnly) {
  HidingBehavior hide(FaultFilter{.direction = proto::Direction::kOut});
  EXPECT_FALSE(hide.OnEntry(SampleEntry(proto::Direction::kOut)).has_value());
  EXPECT_TRUE(hide.OnEntry(SampleEntry(proto::Direction::kIn)).has_value());
  EXPECT_EQ(hide.HiddenCount(), 1u);
}

TEST(FalsificationBehaviorTest, RewritesDataAndResigns) {
  const auto& identity = TestIdentity("pub");
  FalsificationBehavior falsify(
      FaultFilter{}, std::make_shared<proto::NodeIdentity>(identity));
  const proto::LogEntry original = SampleEntry();
  const auto result = falsify.OnEntry(original);
  ASSERT_TRUE(result.has_value());
  EXPECT_NE(result->data, original.data);
  EXPECT_EQ(falsify.FalsifiedCount(), 1u);

  // The falsified entry is self-consistent: its signature verifies for the
  // fake data under the falsifier's own key.
  pubsub::MessageHeader header;
  header.topic = result->topic;
  header.publisher = result->component;
  header.seq = result->seq;
  header.stamp = result->message_stamp;
  const auto digest = pubsub::MessageDigest(header, result->data);
  EXPECT_TRUE(crypto::VerifyDigest(identity.keys.pub, digest,
                                  result->self_signature));
}

TEST(FalsificationBehaviorTest, CustomMutator) {
  const auto& identity = TestIdentity("pub");
  FalsificationBehavior falsify(
      FaultFilter{}, std::make_shared<proto::NodeIdentity>(identity),
      [](const Bytes&) { return BytesOf("evil"); });
  const auto result = falsify.OnEntry(SampleEntry());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->data, BytesOf("evil"));
}

TEST(FalsificationBehaviorTest, HashOnlyEntryGetsNewDigest) {
  const auto& identity = TestIdentity("sub");
  proto::LogEntry entry = SampleEntry(proto::Direction::kIn);
  entry.component = "sub";
  entry.peer = "pub";
  entry.data.clear();
  entry.data_hash = Bytes(32, 0x01);
  FalsificationBehavior falsify(
      FaultFilter{}, std::make_shared<proto::NodeIdentity>(identity));
  const auto result = falsify.OnEntry(entry);
  ASSERT_TRUE(result.has_value());
  EXPECT_NE(result->data_hash, entry.data_hash);
  EXPECT_EQ(result->data_hash.size(), crypto::kSha256DigestSize);
}

TEST(ImpersonationBehaviorTest, RewritesAuthor) {
  ImpersonationBehavior impersonate(FaultFilter{}, "victim");
  const auto result = impersonate.OnEntry(SampleEntry());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->component, "victim");
}

TEST(TimingDisruptionBehaviorTest, ShiftsTimestampOnly) {
  TimingDisruptionBehavior skew(FaultFilter{}, -50);
  const proto::LogEntry original = SampleEntry();
  const auto result = skew.OnEntry(original);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->timestamp, original.timestamp - 50);
  EXPECT_EQ(result->message_stamp, original.message_stamp);  // signed content
  EXPECT_EQ(result->data, original.data);
}

TEST(ComposedBehaviorTest, AppliesInOrderAndShortCircuits) {
  auto skew = std::make_shared<TimingDisruptionBehavior>(FaultFilter{}, 10);
  auto hide = std::make_shared<HidingBehavior>(
      FaultFilter{.direction = proto::Direction::kOut});
  ComposedBehavior composed({skew, hide});
  EXPECT_FALSE(composed.OnEntry(SampleEntry(proto::Direction::kOut)));
  const auto kept = composed.OnEntry(SampleEntry(proto::Direction::kIn));
  ASSERT_TRUE(kept.has_value());
  EXPECT_EQ(kept->timestamp, 110);
}

TEST(FabricateTest, PublisherEntrySelfConsistentButAckForged) {
  Rng rng(1);
  FabricationSpec spec;
  spec.topic = "image";
  spec.seq = 3;
  spec.data = {5};
  spec.peer = "sub";
  const auto& forger = TestIdentity("pub");
  const proto::LogEntry e = FabricatePublisherEntry(forger, spec, rng);
  EXPECT_EQ(e.direction, proto::Direction::kOut);
  EXPECT_EQ(e.peer, "sub");
  // Self-signature verifies...
  pubsub::MessageHeader header{
      e.topic, e.component, e.seq, e.message_stamp};
  const auto digest = pubsub::MessageDigest(header, e.data);
  EXPECT_TRUE(crypto::VerifyDigest(forger.keys.pub, digest, e.self_signature));
  // ...but the forged ACK signature does not verify under the peer's key.
  EXPECT_FALSE(crypto::VerifyDigest(TestIdentity("sub").keys.pub, digest,
                                   e.peer_signature));
}

TEST(FabricateTest, ColludingPairFullyVerifies) {
  const auto& pub = TestIdentity("pub");
  const auto& sub = TestIdentity("sub");
  FabricationSpec spec;
  spec.topic = "image";
  spec.seq = 9;
  spec.data = {1, 2};
  spec.peer = "sub";
  const ForgedPair pair = ForgeColludingPair(pub, sub, spec);
  pubsub::MessageHeader header{
      spec.topic, pub.id, spec.seq, spec.message_stamp};
  const auto digest = pubsub::MessageDigest(header, spec.data);
  EXPECT_TRUE(crypto::VerifyDigest(pub.keys.pub, digest,
                                  pair.publisher_entry.self_signature));
  EXPECT_TRUE(crypto::VerifyDigest(sub.keys.pub, digest,
                                  pair.publisher_entry.peer_signature));
  EXPECT_TRUE(crypto::VerifyDigest(sub.keys.pub, digest,
                                  pair.subscriber_entry.self_signature));
  EXPECT_TRUE(crypto::VerifyDigest(pub.keys.pub, digest,
                                  pair.subscriber_entry.peer_signature));
}

TEST(MakePipeWrapperTest, InstallsBehavior) {
  class SinkPipe final : public proto::LogPipe {
   public:
    int count = 0;
    void Enter(proto::LogEntry) override { ++count; }
  };
  SinkPipe sink;
  auto wrapper = MakePipeWrapper(std::make_shared<HidingBehavior>(
      FaultFilter{.direction = proto::Direction::kOut}));
  auto pipe = wrapper(sink, TestIdentity("pub"));
  pipe->Enter(SampleEntry(proto::Direction::kOut));
  pipe->Enter(SampleEntry(proto::Direction::kIn));
  EXPECT_EQ(sink.count, 1);
}

}  // namespace
}  // namespace adlp::faults
