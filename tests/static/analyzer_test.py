#!/usr/bin/env python3
"""Unit tests for tools/analyzer/adlp_analyze.py.

Covers the pieces whose failure would silently neuter the analyzer: waiver
parsing (justification mandatory, unknown passes rejected, comment-block
anchoring), wire-kind registry staleness in both directions, and one
golden-output test per pass over the committed probe fixtures — if a pass
stops firing on its known-bad fixture, the golden diff fails here and the
ctest harness fails independently.

Run from the repo root (ctest does):  python3 tests/static/analyzer_test.py
Pass --frontend=clang via ADLP_ANALYZER_FRONTEND to exercise the clang
frontend where python3-clang is installed (the CI analyzer job does).
"""

import io
import os
import sys
import unittest
from contextlib import redirect_stderr, redirect_stdout
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO / "tools" / "analyzer"))

import adlp_analyze  # noqa: E402

PROBES = REPO / "tests" / "static" / "analyzer_probes"
FRONTEND = os.environ.get("ADLP_ANALYZER_FRONTEND", "lex")


def run_analyzer(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    err = io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        rc = adlp_analyze.main(list(argv) + [f"--frontend={FRONTEND}"])
    return rc, out.getvalue()


class WaiverParsingTest(unittest.TestCase):
    def test_trailing_waiver_covers_its_own_line(self):
        text = "int x = frame[0];  // analyzer: allow(parser-bounds): ok\n"
        waivers, findings = adlp_analyze.scan_waivers(text, "f.cpp")
        self.assertEqual(findings, [])
        self.assertTrue(waivers.covers("parser-bounds", 1))
        self.assertFalse(waivers.covers("parser-bounds", 2))

    def test_comment_block_waiver_covers_next_code_line(self):
        text = ("// analyzer: allow(blocking-under-lock): thread already\n"
                "// exited, join is an instant reap\n"
                "t.join();\n")
        waivers, findings = adlp_analyze.scan_waivers(text, "f.cpp")
        self.assertEqual(findings, [])
        self.assertTrue(waivers.covers("blocking-under-lock", 3))
        self.assertFalse(waivers.covers("blocking-under-lock", 1))

    def test_waiver_without_justification_is_a_finding(self):
        text = "frame[0];  // analyzer: allow(parser-bounds):\n"
        waivers, findings = adlp_analyze.scan_waivers(text, "f.cpp")
        self.assertEqual(waivers.entries, {})
        self.assertEqual(len(findings), 1)
        self.assertIn("without justification", findings[0].message)
        self.assertEqual(findings[0].pass_name, "parser-bounds")

    def test_justification_may_continue_on_next_comment_line(self):
        text = ("// analyzer: allow(wire-kinds):\n"
                "// retired kind kept for log replay compatibility\n"
                "constexpr int kKindOld = 9;\n")
        waivers, findings = adlp_analyze.scan_waivers(text, "f.cpp")
        self.assertEqual(findings, [])
        self.assertTrue(waivers.covers("wire-kinds", 3))

    def test_unknown_pass_name_is_a_finding(self):
        text = "// analyzer: allow(made-up-pass): because\n"
        _waivers, findings = adlp_analyze.scan_waivers(text, "f.cpp")
        self.assertEqual(len(findings), 1)
        self.assertIn("unknown pass", findings[0].message)

    def test_waiver_does_not_cover_other_pass(self):
        text = "x.Send(b);  // analyzer: allow(parser-bounds): wrong pass\n"
        waivers, _ = adlp_analyze.scan_waivers(text, "f.cpp")
        self.assertFalse(waivers.covers("blocking-under-lock", 1))


class RegistryStalenessTest(unittest.TestCase):
    """Both staleness directions, on the committed wire_kinds_bad fixture."""

    def run_pass(self) -> str:
        rc, out = run_analyzer(
            "--root", str(PROBES / "wire_kinds_bad"), "--passes",
            "wire-kinds")
        self.assertEqual(rc, 1, out)
        return out

    def test_kind_without_registry_entry_is_flagged(self):
        self.assertIn("kKindUnregistered missing from tools/wire_kinds.txt",
                      self.run_pass())

    def test_registry_entry_without_kind_is_flagged(self):
        self.assertIn("stale registry entry kKindStale", self.run_pass())

    def test_duplicate_wire_value_is_flagged(self):
        self.assertIn("reuses wire value 2", self.run_pass())


class GoldenOutputTest(unittest.TestCase):
    """One golden-output comparison per pass over its bad fixture."""

    maxDiff = None

    def check_golden(self, fixture: str, pass_name: str):
        rc, out = run_analyzer(
            "--root", str(PROBES / fixture), "--passes", pass_name)
        self.assertEqual(rc, 1, out)
        golden = (PROBES.parent / "analyzer_probes" /
                  f"{fixture}.golden").read_text()
        self.assertEqual(out, golden,
                         f"{fixture}: output diverged from committed golden "
                         f"— if the change is intentional, regenerate with "
                         f"adlp_analyze.py --root tests/static/"
                         f"analyzer_probes/{fixture} --passes {pass_name} "
                         f"> .../{fixture}.golden")

    def test_parser_bounds_golden(self):
        self.check_golden("parser_bounds_bad", "parser-bounds")

    def test_blocking_under_lock_golden(self):
        self.check_golden("blocking_bad", "blocking-under-lock")

    def test_wire_kinds_golden(self):
        self.check_golden("wire_kinds_bad", "wire-kinds")


class OkFixtureTest(unittest.TestCase):
    def test_ok_fixture_is_clean_under_all_passes(self):
        rc, out = run_analyzer("--root", str(PROBES / "ok"))
        self.assertEqual(rc, 0, out)
        self.assertEqual(out, "")


class RealTreeTest(unittest.TestCase):
    def test_repo_tree_is_clean(self):
        rc, out = run_analyzer("--root", str(REPO))
        self.assertEqual(rc, 0, out)


class LexFrontendTest(unittest.TestCase):
    """Function discovery on the constructs the passes depend on."""

    def functions(self, code: str):
        return adlp_analyze.lex_functions(adlp_analyze.tokenize(code),
                                          "t.cpp")

    def test_method_with_initializer_list(self):
        fns = self.functions(
            "Foo::Foo(int x) : a_(x), b_{x} { Use(a_); }")
        self.assertEqual([f.qualified for f in fns], ["Foo::Foo"])

    def test_requires_annotated_definition(self):
        fns = self.functions(
            "void Foo::Bar() REQUIRES(mu_) { DoThing(); }")
        self.assertEqual([f.qualified for f in fns], ["Foo::Bar"])

    def test_control_flow_is_not_a_function(self):
        fns = self.functions(
            "void F() { if (x) { } while (y) { } switch (z) { } }")
        self.assertEqual([f.name for f in fns], ["F"])

    def test_take_initialized_local_is_validated(self):
        spans, validated = adlp_analyze._body_span_locals(
            adlp_analyze.tokenize("BytesView raw = r.Take(8); use(raw[7]);"))
        self.assertEqual(spans, {"raw"})
        self.assertEqual(validated, {"raw"})


if __name__ == "__main__":
    unittest.main()
