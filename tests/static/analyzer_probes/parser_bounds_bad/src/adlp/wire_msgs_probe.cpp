// Probe fixture: known-bad parser code the parser-bounds pass MUST flag.
// Never compiled — analyzed only (analyzer-of-the-analyzer, mirroring the
// thread-safety negative-compile harness). Paths mirror the real tree so
// the pass's file scoping applies unchanged.
#include <cstring>

namespace adlp::proto {

// VIOLATION: subscript on an untrusted span with no size()/empty() check.
int ParseUncheckedSubscript(BytesView frame) {
  return frame[0];
}

// VIOLATION: subspan before any bounds check.
BytesView ParseUncheckedSubspan(BytesView frame) {
  return frame.subspan(4);
}

// VIOLATION: memcpy out of an unchecked span.
void ParseUncheckedMemcpy(BytesView frame) {
  char buf[8];
  std::memcpy(buf, frame.data(), 8);
  (void)frame;
}

// OK: the subscript is guarded by a size() comparison first.
int ParseCheckedSubscript(BytesView frame) {
  if (frame.size() < 1) throw wire::WireError("short");
  return frame[0];
}

// OK: Take() validates the requested length by construction.
int ParseTakeValidated(wire::Reader& r) {
  BytesView raw = r.Take(8);
  return raw[7];
}

// VIOLATION (waiver rejected): the waiver below has no justification, so
// it must be reported instead of suppressing the finding.
// analyzer: allow(parser-bounds):
int ParseBadWaiver(BytesView frame) {
  return frame[1];
}

}  // namespace adlp::proto
