// Probe fixture: known-bad wire-kind hygiene the wire-kinds pass MUST
// flag. Never compiled — analyzed only.
namespace adlp::proto {

enum : int {
  kKindOrphan = 1,        // VIOLATION: no serializer/parser/dispatch/fuzz
  kKindUnregistered = 2,  // VIOLATION: absent from tools/wire_kinds.txt
  kKindClash = 2,         // VIOLATION: reuses wire value 2
};

}  // namespace adlp::proto
