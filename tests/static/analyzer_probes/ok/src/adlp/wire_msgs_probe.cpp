// Probe fixture: a tree all three passes must accept — the positive half
// of the analyzer-of-the-analyzer harness (a checker that flags everything
// is as useless as one that flags nothing). Never compiled — analyzed only.
#include <cstring>

namespace adlp::proto {

constexpr int kKindProbe = 1;

// Bounds-checked parser: the size() guard precedes every raw access, and
// the kind tag is verified — covers the parser leg of kKindProbe.
int ParseProbe(BytesView frame) {
  if (frame.size() < 2) throw wire::WireError("short probe frame");
  if (frame[0] != kKindProbe) throw wire::WireError("wrong kind");
  return frame[1];
}

// Serializer leg of kKindProbe.
Bytes SerializeProbe(int value) {
  Bytes out;
  out.push_back(kKindProbe);
  out.push_back(value);
  return out;
}

// Dispatch leg: a function named like the real dispatchers that routes a
// frame to the kind's parser.
int HandleSyncRequest(BytesView frame) {
  return ParseProbe(frame);
}

// A justified waiver must suppress its finding (and only its finding).
// Waivers anchor to the flagged statement: on its line, or in the comment
// block immediately above it.
int ParseWaived(BytesView frame) {
  // analyzer: allow(parser-bounds): offset 0 of a probe frame is readable
  // by protocol contract; this fixture proves justified waivers suppress.
  return frame[0];
}

// Blocking call with no lock held: fine.
void SendUnlocked(FakeChannel& channel, const Bytes& payload) {
  channel.Send(payload);
}

}  // namespace adlp::proto
