// Fuzz leg of kKindProbe for the ok fixture: referencing the kind's parser
// here satisfies the wire-kinds fuzz-coverage requirement.
extern "C" int LLVMFuzzerTestOneInput(const unsigned char* data,
                                      unsigned long size) {
  adlp::proto::ParseProbe(adlp::BytesView(data, size));
  return 0;
}
