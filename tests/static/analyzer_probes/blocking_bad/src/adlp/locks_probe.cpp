// Probe fixture: known-bad lock discipline the blocking-under-lock pass
// MUST flag, plus the legitimate patterns it must NOT flag. Never
// compiled — analyzed only.
#include "common/mutex.h"

namespace adlp {

class Prober {
 public:
  void BlockingSendUnderLock() {
    MutexLock lock(mu_);
    channel_.Send(payload_);  // VIOLATION: Send while mu_ is held
  }

  void SleepInRequiresFunction() REQUIRES(mu_) {
    std::this_thread::sleep_for(delay_);  // VIOLATION: caller holds mu_
  }

  void RelockWindowIsFine() {
    MutexLock lock(mu_);
    lock.Unlock();
    channel_.Send(payload_);  // OK: inside the Unlock()...Lock() window
    lock.Lock();
  }

  void SpawnedThreadIsFine() {
    MutexLock lock(mu_);
    worker_ = std::thread([this] {
      channel_.Receive();  // OK: runs on the spawned thread, not under mu_
    });
  }

  void CondVarWaitIsFine() {
    MutexLock lock(mu_);
    cv_.Wait(lock);  // OK: Wait releases the lock while blocked
  }

 private:
  Mutex mu_;
  CondVar cv_;
  FakeChannel channel_;
  Bytes payload_;
  std::thread worker_;
  Duration delay_;
};

}  // namespace adlp
