// Positive control for the negative-compile fixture: the same guarded write
// as thread_safety_violation.cpp but done correctly under a MutexLock. Must
// compile cleanly with -Wthread-safety -Werror, proving a fixture failure
// means the analysis found the violation — not that the fixture's includes
// or flags are broken.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) EXCLUDES(mu_) {
    adlp::MutexLock lock(mu_);
    balance_ += amount;
  }

 private:
  adlp::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return 0;
}
