# Analyzer-of-the-analyzer harness for tools/analyzer/adlp_analyze.py. Run
# as a ctest entry via `cmake -P` with:
#   -DPYTHON=<python3>  -DREPO_ROOT=<repo>  -DFRONTEND=<lex|clang>
#
# Assertions, in order (mirroring check_thread_safety.cmake):
#  1. the ok fixture is clean under every pass       (flags/model are sane)
#  2. each pass FAILS loudly on its bad fixture with the expected findings
#     (golden-compared, so the pass can neither stop firing nor drift)
#  3. the real tree is clean under every pass        (the enforced gate)
# Any other outcome is a hard failure of this script (and so of the test).

set(analyzer "${REPO_ROOT}/tools/analyzer/adlp_analyze.py")
set(probes "${REPO_ROOT}/tests/static/analyzer_probes")

function(run_analyzer out_rc out_log)
  execute_process(
    COMMAND "${PYTHON}" "${analyzer}" --frontend=${FRONTEND} ${ARGN}
    RESULT_VARIABLE result
    OUTPUT_VARIABLE output
    ERROR_VARIABLE errout)
  set(${out_rc} "${result}" PARENT_SCOPE)
  set(${out_log} "${output}" PARENT_SCOPE)
endfunction()

# 1. Positive control: the ok fixture is clean.
run_analyzer(rc log --root "${probes}/ok")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "positive control failed: the ok fixture was flagged (rc=${rc}):\n${log}")
endif()

# 2. Each pass fires on its bad fixture, with golden-identical output.
foreach(case
    "parser_bounds_bad;parser-bounds"
    "blocking_bad;blocking-under-lock"
    "wire_kinds_bad;wire-kinds")
  list(GET case 0 fixture)
  list(GET case 1 pass)
  run_analyzer(rc log --root "${probes}/${fixture}" --passes "${pass}")
  if(rc EQUAL 0)
    message(FATAL_ERROR
      "pass ${pass} did not fire on its known-bad fixture ${fixture} — the "
      "analyzer is no longer protecting anything")
  endif()
  file(READ "${probes}/${fixture}.golden" golden)
  if(NOT log STREQUAL golden)
    message(FATAL_ERROR
      "pass ${pass} output diverged from ${fixture}.golden — if intentional, "
      "regenerate the golden file.\n--- got ---\n${log}\n--- want ---\n"
      "${golden}")
  endif()
endforeach()

# 3. The gate itself: the real tree must be clean.
run_analyzer(rc log --root "${REPO_ROOT}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "adlp_analyze found violations in the tree (rc=${rc}):\n${log}")
endif()

message(STATUS "analyzer checks passed (${FRONTEND} frontend)")
