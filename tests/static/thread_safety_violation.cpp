// Negative-compile fixture: intentionally writes a GUARDED_BY field without
// holding its mutex. Under -Wthread-safety -Werror this translation unit
// MUST fail to compile; the harness (check_thread_safety.cmake) asserts
// that, proving the CI gate actually fires. Without the warning flag it
// compiles fine — the bug is invisible to the plain compiler, which is the
// whole point of the gate.
//
// Not part of any build target; compiled only by the fixture's ctest entry.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    balance_ += amount;  // BUG: mu_ not held
  }

 private:
  adlp::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return 0;
}
