# Negative-compile harness for the -Wthread-safety gate. Run as a ctest
# entry via `cmake -P` with:
#   -DCOMPILER=<clang++>   -DSRC_DIR=<tests/static>   -DINCLUDE_DIR=<src>
#
# Three assertions, in order:
#  1. the correct fixture compiles WITH the gate        (flags are sane)
#  2. the violating fixture compiles WITHOUT the gate   (it is legal C++)
#  3. the violating fixture FAILS to compile WITH it    (the gate fires)
# Any other outcome is a hard failure of this script (and so of the test).

set(common_flags -std=c++20 -fsyntax-only "-I${INCLUDE_DIR}")
set(gate_flags -Wthread-safety -Werror)

function(compile src extra_flags out_ok out_log)
  execute_process(
    COMMAND "${COMPILER}" ${common_flags} ${${extra_flags}} "${SRC_DIR}/${src}"
    RESULT_VARIABLE result
    OUTPUT_VARIABLE output
    ERROR_VARIABLE output)
  if(result EQUAL 0)
    set(${out_ok} TRUE PARENT_SCOPE)
  else()
    set(${out_ok} FALSE PARENT_SCOPE)
  endif()
  set(${out_log} "${output}" PARENT_SCOPE)
endfunction()

set(no_flags "")

compile(thread_safety_ok.cpp gate_flags ok log)
if(NOT ok)
  message(FATAL_ERROR
    "positive control failed: thread_safety_ok.cpp did not compile with "
    "-Wthread-safety -Werror — the fixture flags or includes are broken:\n"
    "${log}")
endif()

compile(thread_safety_violation.cpp no_flags ok log)
if(NOT ok)
  message(FATAL_ERROR
    "fixture invalid: thread_safety_violation.cpp must be legal C++ without "
    "the gate so its rejection is attributable to -Wthread-safety:\n${log}")
endif()

compile(thread_safety_violation.cpp gate_flags ok log)
if(ok)
  message(FATAL_ERROR
    "gate did not fire: thread_safety_violation.cpp compiled despite the "
    "unguarded write to a GUARDED_BY field under -Wthread-safety -Werror")
endif()
if(NOT log MATCHES "thread-safety|guarded_by|requires holding")
  message(FATAL_ERROR
    "violation fixture failed for the wrong reason (expected a thread-safety "
    "diagnostic):\n${log}")
endif()

message(STATUS "thread-safety negative-compile check passed")
