#!/usr/bin/env python3
"""Probe tests for tools/lint.py — every rule class must fire on a
known-bad fixture and stay quiet on a clean one.

Each test builds a throwaway tree under a tempdir, points lint.run() at it
with --root semantics, and asserts the expected violation class (and only
that class) fires. The final test is the enforced gate: the real tree is
clean. If a rule stops firing on its probe, the lint is no longer
protecting anything and this test fails before CI ever would.
"""

import sys
import tempfile
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO / "tools"))

import lint  # noqa: E402


class ProbeTree:
    """A throwaway fixture tree: write(relpath, text), then lint it."""

    def __init__(self, tmp: Path):
        self.root = tmp

    def write(self, rel: str, text: str) -> None:
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)

    def lint(self):
        return lint.run(self.root)


class LintProbeTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.tree = ProbeTree(Path(self._tmp.name))
        self.addCleanup(self._tmp.cleanup)

    def assert_fires(self, rule: str, *needles: str):
        failed, violations = self.tree.lint()
        matching = [v for v in violations if v.startswith(f"{rule}:")]
        self.assertTrue(matching,
                        f"{rule} did not fire; got: {violations}")
        for needle in needles:
            self.assertTrue(any(needle in v for v in matching),
                            f"no {rule} violation mentions {needle!r}: "
                            f"{matching}")
        other = [v for v in violations if not v.startswith(f"{rule}:")]
        self.assertEqual(other, [], "unrelated rule classes fired")
        self.assertEqual(failed, 1)

    def assert_clean(self):
        failed, violations = self.tree.lint()
        self.assertEqual(violations, [])
        self.assertEqual(failed, 0)

    # --- banned-call ---

    def test_banned_call_fires_on_rand(self):
        self.tree.write("src/a.cpp", "int x = rand();\n")
        self.assert_fires("banned-call", "rand()")

    def test_banned_call_ignores_comments_and_qualified_names(self):
        self.tree.write("src/a.cpp",
                        "// rand() is banned\n"
                        "int y = my::rand(3);\n")
        self.assert_clean()

    # --- memcpy-guard ---

    def test_memcpy_guard_fires_on_unguarded_runtime_length(self):
        self.tree.write("src/a.cpp",
                        "void F(BytesView v, char* d) {\n"
                        "  memcpy(d, v.data(), v.size());\n"
                        "}\n")
        self.assert_fires("memcpy-guard", "memcpy")

    def test_memcpy_guard_accepts_empty_check_and_sizeof(self):
        self.tree.write("src/a.cpp",
                        "void F(BytesView v, char* d) {\n"
                        "  if (v.empty()) return;\n"
                        "  memcpy(d, v.data(), v.size());\n"
                        "}\n"
                        "void G(char* d, const Hdr& h) {\n"
                        "  memcpy(d, &h, sizeof(Hdr));\n"
                        "}\n")
        self.assert_clean()

    # --- obs-includes ---

    def test_obs_includes_fires_on_layer_violation(self):
        self.tree.write("src/obs/metrics.h",
                        '#include "wire/frame.h"\n')
        self.assert_fires("obs-includes", "wire/frame.h")

    def test_obs_includes_accepts_allowed_set(self):
        self.tree.write("src/obs/metrics.h",
                        "#include <string>\n"
                        '#include "obs/counter.h"\n'
                        '#include "common/mutex.h"\n'
                        '#include "common/thread_annotations.h"\n')
        self.assert_clean()

    # --- metric-names ---

    def test_metric_names_fires_on_unregistered_literal(self):
        self.tree.write("tools/metric_names.txt", "adlp_known\n")
        self.tree.write("src/a.cpp",
                        'Reg("adlp_known");\n'
                        'Reg("adlp_rogue");\n')
        self.assert_fires("metric-names", "adlp_rogue")

    def test_metric_names_fires_on_stale_registry_entry(self):
        self.tree.write("tools/metric_names.txt", "adlp_gone\nadlp_used\n")
        self.tree.write("src/a.cpp", 'Reg("adlp_used");\n')
        self.assert_fires("metric-names", "adlp_gone", "stale")

    def test_metric_names_fires_on_unsorted_registry(self):
        self.tree.write("tools/metric_names.txt", "adlp_b\nadlp_a\n")
        self.tree.write("src/a.cpp", 'Reg("adlp_a");\nReg("adlp_b");\n')
        self.assert_fires("metric-names", "not sorted")

    # --- naked-mutex ---

    def test_naked_mutex_fires_on_std_mutex_member(self):
        self.tree.write("src/core/server.h",
                        "class S { std::mutex mu_; };\n")
        self.assert_fires("naked-mutex", "std::mutex", "common/mutex.h")

    def test_naked_mutex_fires_on_lock_guard_and_condvar(self):
        self.tree.write("src/core/server.cpp",
                        "void S::F() { std::lock_guard<std::mutex> l(mu_); }\n")
        self.tree.write("src/core/queue.h",
                        "std::condition_variable cv_;\n")
        self.assert_fires("naked-mutex", "std::lock_guard",
                          "std::condition_variable")

    def test_naked_mutex_exempts_the_wrapper_header_and_comments(self):
        self.tree.write("src/common/mutex.h",
                        "class Mutex { std::mutex mu_; };\n")
        self.tree.write("src/crypto/keystore.h",
                        "// deadlock-avoidance std::scoped_lock mention\n"
                        "Mutex mu_;\n")
        self.assert_clean()

    def test_naked_mutex_covers_tools_and_examples(self):
        self.tree.write("examples/demo.cpp",
                        "std::unique_lock<std::mutex> l(m);\n")
        self.assert_fires("naked-mutex", "std::unique_lock")


class RealTreeTest(unittest.TestCase):
    def test_repo_tree_is_clean(self):
        failed, violations = lint.run(REPO)
        self.assertEqual(violations, [], "\n".join(violations))
        self.assertEqual(failed, 0)


if __name__ == "__main__":
    unittest.main()
