// Serial/parallel equivalence: the sharded audit pipeline must be an
// implementation detail. For clean and fault-injected fleets alike, every
// {threads} x {cache} configuration must produce an AuditReport whose full
// JSON rendering (verdicts included) is byte-identical to the serial
// auditor's, because per-pair evaluation is pure and verdicts are merged in
// the database's deterministic pair order regardless of which worker
// evaluated them.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "adlp/protocols.h"
#include "audit/auditor.h"
#include "audit/report_json.h"
#include "common/thread_pool.h"
#include "fleet_gen.h"

namespace adlp {
namespace {

using test::ApplyBehavior;
using test::ChainFleet;
using test::MakeChainFleet;
using test::TestIdentity;

std::string FullJson(const audit::AuditReport& report) {
  audit::JsonOptions options;
  options.include_verdicts = true;
  return audit::RenderReportJson(report, options);
}

/// One fleet per scenario: clean plus one of each fault class.
std::vector<std::pair<std::string, ChainFleet>> Scenarios() {
  std::vector<std::pair<std::string, ChainFleet>> scenarios;

  scenarios.emplace_back("clean", MakeChainFleet(3, 4));

  {
    ChainFleet fleet = MakeChainFleet(3, 4);
    faults::FaultFilter filter;
    filter.topic = fleet.Topic(1);
    filter.direction = proto::Direction::kIn;
    faults::HidingBehavior hide(filter);
    ApplyBehavior(fleet.entries, fleet.Node(2).id, hide);
    scenarios.emplace_back("hiding", std::move(fleet));
  }
  {
    ChainFleet fleet = MakeChainFleet(3, 4);
    faults::FaultFilter filter;
    filter.topic = fleet.Topic(0);
    filter.direction = proto::Direction::kOut;
    faults::FalsificationBehavior falsify(
        filter, std::make_shared<proto::NodeIdentity>(fleet.Node(0)));
    ApplyBehavior(fleet.entries, fleet.Node(0).id, falsify);
    scenarios.emplace_back("falsification", std::move(fleet));
  }
  {
    ChainFleet fleet = MakeChainFleet(3, 4);
    Rng rng(77);
    faults::FabricationSpec spec;
    spec.topic = fleet.Topic(1);
    spec.seq = 99;
    spec.timestamp = 99'000;
    spec.message_stamp = 98'999;
    spec.data = rng.RandomBytes(16);
    spec.peer = fleet.Node(2).id;
    fleet.entries.push_back(
        faults::FabricatePublisherEntry(fleet.Node(1), spec, rng));
    scenarios.emplace_back("fabrication", std::move(fleet));
  }
  {
    ChainFleet fleet = MakeChainFleet(3, 4);
    const proto::NodeIdentity& shadow = TestIdentity("eq-shadow");
    fleet.keys.Register(shadow.id, shadow.keys.pub);
    faults::FaultFilter filter;
    filter.topic = fleet.Topic(2);
    filter.direction = proto::Direction::kIn;
    faults::ImpersonationBehavior impersonate(filter, shadow.id);
    ApplyBehavior(fleet.entries, fleet.Node(3).id, impersonate);
    scenarios.emplace_back("impersonation", std::move(fleet));
  }
  {
    ChainFleet fleet = MakeChainFleet(3, 4);
    faults::FaultFilter filter;
    faults::TimingDisruptionBehavior skew(filter, 500'000'000);
    ApplyBehavior(fleet.entries, fleet.Node(1).id, skew);
    scenarios.emplace_back("timing", std::move(fleet));
  }
  return scenarios;
}

TEST(AuditParallelTest, EveryConfigurationMatchesSerialByteForByte) {
  for (const auto& [name, fleet] : Scenarios()) {
    const audit::LogDatabase db(fleet.entries, fleet.topology);
    const audit::Auditor auditor(fleet.keys);
    const audit::AuditReport serial = auditor.Audit(db);
    const std::string serial_json = FullJson(serial);

    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
      for (const bool cache : {false, true}) {
        audit::AuditOptions exec;
        exec.threads = threads;
        exec.cache = cache;
        const audit::AuditReport report = auditor.Audit(db, exec);
        EXPECT_EQ(FullJson(report), serial_json)
            << name << " diverged at threads=" << threads
            << " cache=" << cache;
        EXPECT_EQ(report.unfaithful, serial.unfaithful) << name;
      }
    }
  }
}

TEST(AuditParallelTest, Ed25519FleetMatchesSerialByteForByte) {
  // Lightweight-crypto fleet: every verification runs through the Ed25519
  // combined-equation batch kernel, including one tampered signature that
  // exercises the per-signature fallback. Serial and parallel reports must
  // still be byte-identical under every configuration.
  Rng rng(0xed255);
  std::vector<proto::NodeIdentity> ids;
  crypto::KeyStore keys;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(proto::MakeNodeIdentity("ed-c" + std::to_string(i), rng, 512,
                                          crypto::SigAlgorithm::kEd25519));
    keys.Register(ids.back().id, ids.back().keys.pub);
  }
  std::vector<proto::LogEntry> entries;
  audit::Topology topology;
  for (std::size_t link = 0; link + 1 < ids.size(); ++link) {
    const std::string topic = "ed-t" + std::to_string(link);
    topology[topic] =
        pubsub::Master::TopicInfo{ids[link].id, {ids[link + 1].id}};
    for (std::uint64_t s = 1; s <= 6; ++s) {
      const faults::ForgedPair pair = test::MakeFaithfulPair(
          ids[link], ids[link + 1], topic, s, rng.RandomBytes(24),
          static_cast<Timestamp>(s * 1000 + link * 10));
      entries.push_back(pair.publisher_entry);
      entries.push_back(pair.subscriber_entry);
    }
  }
  ASSERT_FALSE(entries[5].self_signature.empty());
  entries[5].self_signature[8] ^= 0x20;  // one forged item in the batch

  const audit::LogDatabase db(entries, topology);
  const audit::Auditor auditor(keys);
  const audit::AuditReport serial = auditor.Audit(db);
  const std::string serial_json = FullJson(serial);
  EXPECT_FALSE(serial.unfaithful.empty())
      << "the tampered entry went unnoticed";

  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    for (const bool cache : {false, true}) {
      audit::AuditOptions exec;
      exec.threads = threads;
      exec.cache = cache;
      EXPECT_EQ(FullJson(auditor.Audit(db, exec)), serial_json)
          << "ed25519 diverged at threads=" << threads << " cache=" << cache;
    }
  }
}

TEST(AuditParallelTest, ExternalPoolReusedAcrossAudits) {
  ThreadPool pool(4);
  for (const auto& [name, fleet] : Scenarios()) {
    const audit::LogDatabase db(fleet.entries, fleet.topology);
    const audit::Auditor auditor(fleet.keys);
    const std::string serial_json = FullJson(auditor.Audit(db));

    audit::AuditOptions exec;
    exec.threads = 4;
    exec.pool = &pool;
    EXPECT_EQ(FullJson(auditor.Audit(db, exec)), serial_json) << name;
  }
}

TEST(AuditParallelTest, ExternalCacheReusedAcrossAudits) {
  const ChainFleet fleet = MakeChainFleet(3, 4);
  const audit::LogDatabase db(fleet.entries, fleet.topology);
  const audit::Auditor auditor(fleet.keys);
  const std::string serial_json = FullJson(auditor.Audit(db));

  crypto::VerifyCache cache;
  audit::AuditOptions exec;
  exec.threads = 2;
  exec.verify_cache = &cache;

  EXPECT_EQ(FullJson(auditor.Audit(db, exec)), serial_json);
  const std::size_t lookups_first = cache.Lookups();
  const std::size_t hits_first = cache.Hits();
  const std::size_t distinct = cache.Size();
  EXPECT_GT(lookups_first, 0u);
  EXPECT_GT(distinct, 0u);

  // A re-audit of the same database hits the memo table for every lookup
  // and creates no new entries — and still reproduces the same report.
  EXPECT_EQ(FullJson(auditor.Audit(db, exec)), serial_json);
  EXPECT_EQ(cache.Size(), distinct);
  EXPECT_EQ(cache.Lookups(), 2 * lookups_first);
  EXPECT_EQ(cache.Hits(), hits_first + lookups_first);
}

TEST(AuditParallelTest, ShardsPartitionAllPairs) {
  const ChainFleet fleet = MakeChainFleet(4, 3);
  const audit::LogDatabase db(fleet.entries, fleet.topology);
  std::vector<bool> covered(db.Pairs().size(), false);
  for (const auto& shard : db.Shards()) {
    for (const std::size_t index : shard.pair_indices) {
      ASSERT_LT(index, covered.size());
      EXPECT_FALSE(covered[index]) << "pair in two shards";
      covered[index] = true;
    }
  }
  for (const bool c : covered) EXPECT_TRUE(c);
  // One shard per (publisher, subscriber, topic) link in the chain.
  EXPECT_EQ(db.Shards().size(), fleet.links);
}

}  // namespace
}  // namespace adlp
