#include "audit/manifest.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "crypto/pkcs1.h"
#include "test_util.h"
#include "wire/wire.h"

namespace adlp::audit {
namespace {

TEST(ManifestTest, RoundTripTopologyAndKeys) {
  Topology topo;
  topo["image"] = {"camera", {"lane", "sign"}};
  topo["scan"] = {"lidar", {"obstacle"}};

  crypto::KeyStore keys;
  keys.Register("camera", test::TestIdentity("camera").keys.pub);
  keys.Register("lane", test::TestIdentity("lane").keys.pub);

  const LoadedManifest loaded =
      ParseManifest(SerializeManifest(topo, keys));
  EXPECT_EQ(loaded.topology, topo);
  EXPECT_EQ(loaded.keys.Size(), 2u);
  EXPECT_EQ(loaded.keys.Find("camera"),
            test::TestIdentity("camera").keys.pub);
  EXPECT_EQ(loaded.keys.Find("lane"), test::TestIdentity("lane").keys.pub);
}

TEST(ManifestTest, EmptyManifestRoundTrips) {
  const LoadedManifest loaded = ParseManifest(SerializeManifest({}, {}));
  EXPECT_TRUE(loaded.topology.empty());
  EXPECT_EQ(loaded.keys.Size(), 0u);
}

TEST(ManifestTest, GarbageRejected) {
  EXPECT_THROW(ParseManifest(Bytes(9, 0xff)), wire::WireError);
}

TEST(ManifestTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("adlp_manifest_test_" + std::to_string(::getpid())))
          .string();
  Topology topo;
  topo["t"] = {"pub", {"sub"}};
  crypto::KeyStore keys;
  keys.Register("pub", test::TestIdentity("pub").keys.pub);
  WriteManifestFile(path, topo, keys);

  const LoadedManifest loaded = ReadManifestFile(path);
  EXPECT_EQ(loaded.topology, topo);
  EXPECT_TRUE(loaded.keys.Contains("pub"));
  std::remove(path.c_str());
}

TEST(ManifestTest, MissingFileThrows) {
  EXPECT_THROW(ReadManifestFile("/nonexistent/nowhere.manifest"),
               std::system_error);
}

TEST(ManifestTest, LoadedKeysVerifyRealSignatures) {
  // Keys surviving the manifest round trip still verify signatures — the
  // investigator's audit depends on this.
  const auto& identity = test::TestIdentity("signer");
  crypto::KeyStore keys;
  keys.Register("signer", identity.keys.pub);
  const LoadedManifest loaded = ParseManifest(SerializeManifest({}, keys));

  const crypto::Digest digest = crypto::Sha256Digest(BytesOf("evidence"));
  const Bytes sig = crypto::SignDigest(identity.keys.priv, digest);
  EXPECT_TRUE(
      crypto::VerifyDigest(*loaded.keys.Find("signer"), digest, sig));
}

}  // namespace
}  // namespace adlp::audit
