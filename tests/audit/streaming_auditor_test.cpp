// Epoch-finalization edge cases of the streaming auditor: empty epochs,
// single-entry epochs, entries arriving after their epoch sealed (must be
// counted and re-audited, never silently merged), eviction at the memory
// bound, publisher re-resolution for off-manifest topics, and base-scheme
// inclusion parity. Every case's end state is checked against the batch
// auditor — the edge cases may not cost a byte of fidelity.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "audit/auditor.h"
#include "audit/report_json.h"
#include "audit/streaming_auditor.h"
#include "fleet_gen.h"
#include "test_util.h"

namespace adlp {
namespace {

using test::MakeFaithfulPair;
using test::OneTopicTopology;
using test::TestIdentity;

std::string Render(const audit::AuditReport& report) {
  audit::JsonOptions json;
  json.pretty = false;
  return audit::RenderReportJson(report, json);
}

std::string BatchJson(const crypto::KeyStore& keys,
                      const std::vector<proto::LogEntry>& entries,
                      audit::Topology topology,
                      bool include_base = true) {
  const audit::Auditor auditor(keys, audit::AuditorOptions{include_base});
  return Render(auditor.Audit(entries, std::move(topology)));
}

struct OnePairFleet {
  crypto::KeyStore keys;
  audit::Topology topology;
  proto::LogEntry pub_entry;
  proto::LogEntry sub_entry;
};

OnePairFleet MakeOnePair(const std::string& label) {
  const proto::NodeIdentity& pub = TestIdentity(label + "-pub");
  const proto::NodeIdentity& sub = TestIdentity(label + "-sub");
  OnePairFleet fleet;
  fleet.keys.Register(pub.id, pub.keys.pub);
  fleet.keys.Register(sub.id, sub.keys.pub);
  fleet.topology = OneTopicTopology("tp", pub.id, {sub.id});
  Rng rng(0x5eed);
  const faults::ForgedPair pair =
      MakeFaithfulPair(pub, sub, "tp", 1, rng.RandomBytes(16));
  fleet.pub_entry = pair.publisher_entry;
  fleet.sub_entry = pair.subscriber_entry;
  return fleet;
}

TEST(StreamingAuditorTest, EmptyEpochsAreSafe) {
  const OnePairFleet fleet = MakeOnePair("se-empty");
  audit::StreamingAuditor streaming(fleet.keys, fleet.topology);
  streaming.SealEpoch();
  streaming.SealEpoch();
  const audit::StreamingStats stats = streaming.Stats();
  EXPECT_EQ(stats.epochs, 2u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.flagged, 0u);
  EXPECT_EQ(Render(streaming.Finalize()),
            BatchJson(fleet.keys, {}, fleet.topology));
}

TEST(StreamingAuditorTest, SingleEntryEpochFlagsHiddenCounterpart) {
  const OnePairFleet fleet = MakeOnePair("se-single");
  std::optional<audit::PairVerdict> flagged;
  Timestamp detect_ns = -1;
  audit::StreamingOptions options;
  options.on_finding = [&](const audit::PairVerdict& v, Timestamp ns) {
    flagged = v;
    detect_ns = ns;
  };
  audit::StreamingAuditor streaming(fleet.keys, fleet.topology, options);
  streaming.OnEntry(fleet.pub_entry);
  streaming.SealEpoch();

  // The publisher entry carries the subscriber's valid ACK, so an epoch
  // with no subscriber entry is a provable receipt-hiding — flagged online.
  ASSERT_TRUE(flagged.has_value());
  EXPECT_EQ(flagged->finding, audit::Finding::kSubscriberHidEntry);
  EXPECT_GE(detect_ns, 0);
  EXPECT_EQ(streaming.Stats().flagged, 1u);
  EXPECT_EQ(Render(streaming.Finalize()),
            BatchJson(fleet.keys, {fleet.pub_entry}, fleet.topology));
}

TEST(StreamingAuditorTest, LateEntryReopensSealedPairNotSilentlyMerged) {
  const OnePairFleet fleet = MakeOnePair("se-late");
  std::size_t flags = 0;
  audit::StreamingOptions options;
  options.on_finding = [&](const audit::PairVerdict&, Timestamp) { ++flags; };
  audit::StreamingAuditor streaming(fleet.keys, fleet.topology, options);

  streaming.OnEntry(fleet.pub_entry);
  streaming.SealEpoch();
  EXPECT_EQ(flags, 1u);  // provisionally hidden, as above

  // The counterpart arrives after its epoch sealed: it must be accounted as
  // late and the pair re-opened and re-audited — the provisional verdict is
  // withdrawn, not merged into.
  streaming.OnEntry(fleet.sub_entry);
  const audit::StreamingStats stats = streaming.Stats();
  EXPECT_EQ(stats.late_entries, 1u);
  EXPECT_EQ(stats.open_pairs, 1u);

  const audit::AuditReport report = streaming.Finalize();
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].finding, audit::Finding::kOk);
  EXPECT_EQ(Render(report),
            BatchJson(fleet.keys, {fleet.pub_entry, fleet.sub_entry},
                      fleet.topology));
  EXPECT_EQ(flags, 1u) << "converged pair must not re-fire on_finding";
}

TEST(StreamingAuditorTest, EvictionHonorsBoundAndKeepsFidelity) {
  const test::ChainFleet fleet = test::MakeChainFleet(3, 6, "se-evict");
  audit::StreamingOptions options;
  options.max_open_pairs = 4;
  audit::StreamingAuditor streaming(fleet.keys, fleet.topology, options);
  std::size_t peak_open = 0;
  for (const auto& entry : fleet.entries) {
    streaming.OnEntry(entry);
    peak_open = std::max(peak_open, streaming.Stats().open_pairs);
  }
  EXPECT_LE(peak_open, options.max_open_pairs);
  const audit::StreamingStats stats = streaming.Stats();
  EXPECT_GT(stats.evicted_pairs, 0u);
  EXPECT_EQ(stats.pairs, fleet.links * fleet.seqs);
  const audit::LogDatabase db(fleet.entries, fleet.topology);
  EXPECT_EQ(Render(streaming.Finalize()),
            Render(audit::Auditor(fleet.keys).Audit(db)));
}

TEST(StreamingAuditorTest, OffManifestPublisherReResolution) {
  // No manifest entry for the topic: a subscriber entry arriving first
  // resolves the publisher provisionally from its recorded peer; the
  // publisher's own entry later confirms (or changes) the resolution and
  // the retained subscriber signatures are re-checked under the re-derived
  // digest. Both arrival orders must match the batch answer byte for byte.
  const OnePairFleet fleet = MakeOnePair("se-offman");
  const audit::Topology empty_topology;
  for (const bool sub_first : {true, false}) {
    SCOPED_TRACE(sub_first ? "sub-first" : "pub-first");
    const std::vector<proto::LogEntry> order =
        sub_first ? std::vector<proto::LogEntry>{fleet.sub_entry,
                                                 fleet.pub_entry}
                  : std::vector<proto::LogEntry>{fleet.pub_entry,
                                                 fleet.sub_entry};
    audit::StreamingAuditor streaming(fleet.keys, empty_topology);
    streaming.OnEntry(order[0]);
    streaming.SealEpoch();
    streaming.OnEntry(order[1]);
    EXPECT_EQ(Render(streaming.Finalize()),
              BatchJson(fleet.keys, order, empty_topology));
  }
}

TEST(StreamingAuditorTest, BaseSchemeInclusionParity) {
  OnePairFleet fleet = MakeOnePair("se-base");
  fleet.pub_entry.scheme = proto::LogScheme::kBase;
  fleet.sub_entry.scheme = proto::LogScheme::kBase;
  const std::vector<proto::LogEntry> entries{fleet.pub_entry,
                                             fleet.sub_entry};
  for (const bool include_base : {true, false}) {
    SCOPED_TRACE(include_base ? "included" : "excluded");
    audit::StreamingOptions options;
    options.include_base_scheme = include_base;
    audit::StreamingAuditor streaming(fleet.keys, fleet.topology, options);
    for (const auto& entry : entries) streaming.OnEntry(entry);
    const audit::AuditReport report = streaming.Finalize();
    EXPECT_EQ(Render(report),
              BatchJson(fleet.keys, entries, fleet.topology, include_base));
    EXPECT_EQ(report.verdicts.size(), include_base ? 1u : 0u);
  }
}

TEST(StreamingAuditorTest, ChunkBoundaryFlushesMatchBatch) {
  // chunk_checks = 1 forces a VerifyDigestBatch flush on nearly every
  // entry — the opposite extreme from one big final batch. Identity must
  // survive both.
  const test::ChainFleet fleet = test::MakeChainFleet(2, 4, "se-chunk");
  audit::StreamingOptions options;
  options.chunk_checks = 1;
  audit::StreamingAuditor streaming(fleet.keys, fleet.topology, options);
  for (const auto& entry : fleet.entries) streaming.OnEntry(entry);
  const audit::LogDatabase db(fleet.entries, fleet.topology);
  EXPECT_EQ(Render(streaming.Finalize()),
            Render(audit::Auditor(fleet.keys).Audit(db)));
}

}  // namespace
}  // namespace adlp
