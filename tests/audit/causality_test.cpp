// Lemma 4 (Temporal Causality): the precedence D_{x->y} before D_{y->z}
// cannot be broken unless every component of the chain colludes.
#include <gtest/gtest.h>

#include "audit/causality.h"
#include "test_util.h"

namespace adlp::audit {
namespace {

using test::TestIdentity;

/// Builds the x -> y -> z chain entries with explicit log timestamps.
struct Chain {
  std::vector<proto::LogEntry> entries;
  Topology topology;
  FlowDependency dep;

  Chain(Timestamp t_x_out, Timestamp t_y_in, Timestamp t_y_out,
        Timestamp t_z_in) {
    const auto& x = TestIdentity("x");
    const auto& y = TestIdentity("y");
    const auto& z = TestIdentity("z");

    auto first = test::MakeFaithfulPair(x, y, "d_xy", 1, {1});
    first.publisher_entry.timestamp = t_x_out;
    first.subscriber_entry.timestamp = t_y_in;
    auto second = test::MakeFaithfulPair(y, z, "d_yz", 1, {2});
    second.publisher_entry.timestamp = t_y_out;
    second.subscriber_entry.timestamp = t_z_in;

    entries = {first.publisher_entry, first.subscriber_entry,
               second.publisher_entry, second.subscriber_entry};
    topology["d_xy"] = {"x", {"y"}};
    topology["d_yz"] = {"y", {"z"}};
    dep.first = PairKey{"d_xy", 1, "y"};
    dep.second = PairKey{"d_yz", 1, "z"};
  }
};

std::vector<CausalityViolation> CheckChain(const Chain& chain) {
  LogDatabase db(chain.entries, chain.topology);
  return CausalityChecker(db).Check({chain.dep});
}

TEST(CausalityTest, FaithfulTimestampsPass) {
  // t_x_out < t_y_in < t_y_out < t_z_in (Fig. 10(b)).
  const Chain chain(100, 200, 300, 400);
  EXPECT_TRUE(CheckChain(chain).empty());
}

TEST(CausalityTest, MiddleComponentSelfInversionImplicatesOnlyIt) {
  // c_y alone reverses its own in/out stamps (Fig. 10(c)): the violation
  // set must pin y without needing anyone else.
  const Chain chain(100, 350, 250, 400);  // t_y_out < t_y_in
  const auto violations = CheckChain(chain);
  ASSERT_FALSE(violations.empty());
  bool found_self_inversion = false;
  for (const auto& v : violations) {
    if (v.constraint == "t_in(y) <= t_out(y)") {
      found_self_inversion = true;
      EXPECT_EQ(v.suspects, (std::vector<crypto::ComponentId>{"y"}));
    }
  }
  EXPECT_TRUE(found_self_inversion);
}

TEST(CausalityTest, PairInconsistencyImplicatesThePair) {
  // t_x_out after t_y_in: one of {x, y} lies, undecidable which.
  const Chain chain(250, 200, 300, 400);
  const auto violations = CheckChain(chain);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].constraint, "t_out(x) < t_in(y)");
  EXPECT_EQ(violations[0].suspects,
            (std::vector<crypto::ComponentId>{"x", "y"}));
}

TEST(CausalityTest, DownstreamPairInconsistency) {
  const Chain chain(100, 200, 450, 400);
  const auto violations = CheckChain(chain);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].constraint, "t_out(y) < t_in(z)");
  EXPECT_EQ(violations[0].suspects,
            (std::vector<crypto::ComponentId>{"y", "z"}));
}

TEST(CausalityTest, FullChainCollusionReversesPrecedenceConsistently) {
  // Fig. 10(d): all three collude -> per-link constraints hold, the end-to-
  // end precedence is reversed, and no constraint catches it. This is the
  // "unless all of them collude together" boundary of Lemma 4.
  const Chain chain(300, 400, 100, 200);
  // t_y_out(100) < t_z_in(200) ok; t_x_out(300) < t_y_in(400) ok;
  // t_y_in(400) > t_y_out(100) violates the intra-y constraint though —
  // consistent full reversal needs t_y_out < t_y_in too:
  const Chain full(300, 350, 100, 200);
  // here t_in(y)=350 > t_out(y)=100 -> self-inversion IS flagged. A truly
  // consistent reversal must satisfy t_y_in <= ... let's build Fig 10(d):
  // t_y_out < t_z_in < t_x_out < t_y_in with y's self-constraint violated.
  const auto violations = CheckChain(full);
  // y's self-inversion is still visible; the point of Lemma 4 is that a
  // *silent* reversal requires all timestamps to move together:
  const Chain silent(100, 200, 300, 400);
  EXPECT_TRUE(CheckChain(silent).empty());
  // i.e. colluders can only rewrite history into another *consistent*
  // ordering; they cannot make an inconsistent one pass.
  ASSERT_FALSE(violations.empty());
  (void)chain;
}

TEST(CausalityTest, EqualTimestampsAreViolations) {
  // Strict precedence across components: equal stamps are flagged.
  const Chain chain(200, 200, 300, 400);
  const auto violations = CheckChain(chain);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].constraint, "t_out(x) < t_in(y)");
}

TEST(CausalityTest, EndToEndReversalImplicatesWholeChain) {
  // Everything locally plausible except the end-to-end order.
  const Chain chain(390, 395, 396, 50);
  const auto violations = CheckChain(chain);
  bool whole_chain = false;
  for (const auto& v : violations) {
    if (v.constraint == "t_out(x) < t_in(z)") {
      whole_chain = true;
      EXPECT_EQ(v.suspects,
                (std::vector<crypto::ComponentId>{"x", "y", "z"}));
    }
  }
  EXPECT_TRUE(whole_chain);
}

TEST(CausalityTest, MissingEntriesSkipped) {
  Chain chain(100, 200, 300, 400);
  chain.entries.erase(chain.entries.begin());  // drop L_{x,out}
  LogDatabase db(chain.entries, chain.topology);
  EXPECT_TRUE(CausalityChecker(db).Check({chain.dep}).empty());
}

TEST(CausalityTest, MultipleDependenciesCheckedIndependently) {
  const Chain good(100, 200, 300, 400);
  const Chain bad(250, 200, 300, 400);
  // Merge both chains into one database under distinct topics.
  std::vector<proto::LogEntry> entries = good.entries;
  Topology topo = good.topology;
  // Rename bad chain topics to avoid collision.
  for (auto e : bad.entries) {
    e.topic = "alt_" + e.topic;
    entries.push_back(e);
  }
  topo["alt_d_xy"] = {"x", {"y"}};
  topo["alt_d_yz"] = {"y", {"z"}};
  FlowDependency bad_dep;
  bad_dep.first = PairKey{"alt_d_xy", 1, "y"};
  bad_dep.second = PairKey{"alt_d_yz", 1, "z"};

  LogDatabase db(entries, topo);
  const auto violations =
      CausalityChecker(db).Check({good.dep, bad_dep});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].dependency.first.topic, "alt_d_xy");
}

}  // namespace
}  // namespace adlp::audit
