// Seeded adversarial fuzz on the upload stream feeding the streaming
// auditor: serialized upload frames (key registrations + entries) are
// reordered, duplicated, truncated, and interleaved before being applied to
// the log server, whose tap drains into a bounded StreamingAuditor on a
// separate thread. Properties, per seed:
//   * nothing crashes — malformed frames are rejected at the wire layer and
//     everything that survives is audited;
//   * the bounded-memory cap on open pairs is never exceeded;
//   * the finalized streaming report is byte-identical to the batch audit
//     of whatever the server actually stored (no wrong epoch verdicts —
//     provisional flags converge to the batch answer).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "adlp/log_server.h"
#include "adlp/log_tap.h"
#include "adlp/remote_log.h"
#include "audit/auditor.h"
#include "audit/report_json.h"
#include "audit/streaming_auditor.h"
#include "fleet_gen.h"
#include "test_util/hostile_mutations.h"
#include "wire/wire.h"

namespace adlp {
namespace {

using test::kAllMisbehaviorClasses;
using test::MakeMisbehavedFleet;
using test::MisbehavedFleet;
using test::MisbehaviorClassName;

std::string Render(const audit::AuditReport& report) {
  audit::JsonOptions json;
  json.pretty = false;
  return audit::RenderReportJson(report, json);
}

class StreamingFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamingFuzzTest, AdversarialUploadStream) {
  const std::uint64_t seed = GetParam();
  const MisbehavedFleet mf = MakeMisbehavedFleet(
      kAllMisbehaviorClasses[seed % 7], seed * 31 + 7, "fz");
  Rng rng(seed * 0x51ed'270b + 0xf022ee);

  // The honest upload stream: every identity's key, then every entry.
  // Key frames are duplicated and reordered but never mutated — a
  // *different* key re-registered mid-stream is the one case where
  // final-keystore batch semantics legitimately diverge from checks
  // resolved earlier (documented in streaming_auditor.h), so it is not an
  // equivalence counterexample. Entry frames get the full treatment.
  std::vector<Bytes> stream;
  for (const auto& name : mf.fleet.node_names) {
    const proto::NodeIdentity& id = test::TestIdentity(name);
    stream.push_back(proto::SerializeLogUpload(id.id, id.keys.pub));
    if (rng.Chance(0.2)) stream.push_back(stream.back());  // idempotent dup
  }
  for (const auto& entry : mf.fleet.entries) {
    Bytes frame = proto::SerializeLogUpload(entry);
    stream.push_back(frame);
    if (rng.Chance(0.12)) stream.push_back(frame);  // duplicate
    if (rng.Chance(0.10)) {
      stream.back() = test::TruncatedAtRandom(rng, stream.back());
    } else if (rng.Chance(0.08)) {
      stream.back() = test::BitFlipped(rng, stream.back(), 1);
    }
  }
  // Bounded-window reorder across the whole stream: interleaves key and
  // entry frames, delays keys past entries that need them (exercising the
  // pending-check retry path), and scrambles pair arrival order.
  for (std::size_t i = 0; i + 1 < stream.size(); ++i) {
    const std::size_t j = i + rng.UniformBelow(5);
    if (j < stream.size() && j != i) std::swap(stream[i], stream[j]);
  }

  // Live-shaped consumption: server tap -> consumer thread -> auditor with
  // a tight memory bound and periodic epoch seals.
  proto::LogServer server;
  proto::LogTapQueue tap(/*capacity=*/16, proto::TapOverflowPolicy::kBlock);
  server.AttachTap(&tap);

  constexpr std::size_t kMaxOpenPairs = 6;
  audit::StreamingOptions options;
  options.max_open_pairs = kMaxOpenPairs;
  options.chunk_checks = 8;
  audit::StreamingAuditor streaming(server.Keys(), mf.fleet.topology,
                                    options);
  std::atomic<bool> cap_violated{false};
  std::thread consumer([&] {
    std::size_t events = 0;
    while (auto event = tap.Pop(std::chrono::milliseconds(2000))) {
      if (event->kind == proto::TapEvent::Kind::kEntry) {
        streaming.OnEntry(event->entry);
        if (streaming.Stats().open_pairs > kMaxOpenPairs) {
          cap_violated = true;
        }
      }
      if (++events % 10 == 0) streaming.SealEpoch();
    }
  });

  std::size_t rejected = 0;
  for (const auto& frame : stream) {
    try {
      proto::ApplyLogUpload(frame, server);
    } catch (const wire::WireError&) {
      ++rejected;  // exactly what the live ingestion loop does
    }
  }
  tap.Close();
  consumer.join();

  EXPECT_FALSE(cap_violated) << "open-pair bound exceeded";
  const audit::StreamingStats stats = streaming.Stats();
  EXPECT_EQ(stats.entries, server.EntryCount());
  EXPECT_EQ(tap.Stats().dropped, 0u);  // kBlock never drops

  // The oracle: byte-identity against the batch audit of what the server
  // stored, malformed frames and all.
  const audit::Auditor batch(server.Keys());
  EXPECT_EQ(Render(streaming.Finalize()),
            Render(batch.Audit(server.Entries(), mf.fleet.topology)))
      << "class=" << MisbehaviorClassName(mf.cls) << " rejected=" << rejected;
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingFuzzTest,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace adlp
