// Wire-native replica auditing: `adlp_audit --replica-addr` audits LIVE
// replicas over the repair sync protocol. Honest replicas serve evidence
// whose audit report is byte-identical to the exported-file path; a replica
// whose store diverges from its own signed seals earns kInclusionInvalid
// over the wire. Suite is named Repair* so the repair-chaos CI wall
// (`ctest -R Repair`) exercises it under repeat-until-fail.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "adlp/log_server.h"
#include "adlp/remote_log.h"
#include "adlp/sync_msgs.h"
#include "audit/replica_check.h"

namespace adlp::audit {
namespace {

proto::LogEntry MakeEntry(std::uint64_t seq) {
  proto::LogEntry e;
  e.component = "node";
  e.topic = "topic";
  e.seq = seq;
  e.timestamp = static_cast<Timestamp>(1000 + seq);
  e.data = BytesOf("payload-" + std::to_string(seq));
  return e;
}

proto::LogServerOptions SealEvery(std::uint64_t k) {
  proto::LogServerOptions options;
  options.seal_every = k;
  return options;
}

ReplicaCheckOptions FleetKey() {
  ReplicaCheckOptions options;
  options.seal_key =
      proto::EpochSealKeys(proto::LogServerOptions{}.seal_key_seed).pub;
  return options;
}

ReplicaEvidence ExportedEvidence(const std::string& name,
                                 const proto::LogServer& server) {
  ReplicaEvidence evidence;
  evidence.name = name;
  evidence.records = server.SerializedRecords();
  evidence.roots = server.EpochRoots();
  return evidence;
}

TEST(RepairWireAuditTest, FetchedEvidenceMatchesExportedRoots) {
  proto::LogServer server(SealEvery(4));
  for (std::uint64_t seq = 0; seq < 10; ++seq) server.Append(MakeEntry(seq));
  server.SealEpoch();
  ASSERT_GE(server.EpochRoots().size(), 3u);

  proto::LogServerService service(server, 0);
  auto client = proto::SyncClient::Dial(service.Port());
  ASSERT_NE(client, nullptr);

  const auto evidence = FetchReplicaEvidence(*client, "replica-0");
  ASSERT_TRUE(evidence.has_value());
  EXPECT_EQ(evidence->name, "replica-0");
  EXPECT_TRUE(evidence->roots_only);
  EXPECT_TRUE(evidence->records.empty());
  EXPECT_EQ(evidence->roots, server.EpochRoots());
  service.Shutdown();
}

TEST(RepairWireAuditTest, HonestReplicaIsCleanAndReportUntouched) {
  proto::LogServer server(SealEvery(4));
  for (std::uint64_t seq = 0; seq < 13; ++seq) server.Append(MakeEntry(seq));
  server.SealEpoch();

  proto::LogServerService service(server, 0);
  auto client = proto::SyncClient::Dial(service.Port());
  ASSERT_NE(client, nullptr);
  const auto evidence = FetchReplicaEvidence(*client, "replica-0");
  ASSERT_TRUE(evidence.has_value());

  const ReplicaCheckOptions options = FleetKey();
  ReplicaCheckResult result = CheckReplicas({*evidence}, options);
  EXPECT_TRUE(result.Clean());
  CheckReplicaWireProofs(*client, *evidence, options, result);
  EXPECT_TRUE(result.Clean());
  // One sampled spot check per sealed epoch at minimum: the wire path
  // actually verified store evidence, it did not just trust the seals.
  EXPECT_GE(result.proofs_checked, server.EpochRoots().size());

  AuditReport report;
  const std::string before = report.Render();
  ApplyReplicaFindings(report, std::move(result));
  EXPECT_EQ(report.Render(), before);
  service.Shutdown();
}

TEST(RepairWireAuditTest, WireReportByteIdenticalToExportedFilePath) {
  // The same honest replica audited two ways — exported full evidence vs
  // live wire fetch + wire-served proofs — must render byte-identical
  // reports (both clean, so both identical to the untouched report).
  proto::LogServer server(SealEvery(4));
  for (std::uint64_t seq = 0; seq < 12; ++seq) server.Append(MakeEntry(seq));

  const ReplicaCheckOptions options = FleetKey();
  AuditReport file_report;
  ApplyReplicaFindings(
      file_report, CheckReplicas({ExportedEvidence("replica-0", server)},
                                 options));

  proto::LogServerService service(server, 0);
  auto client = proto::SyncClient::Dial(service.Port());
  ASSERT_NE(client, nullptr);
  const auto evidence = FetchReplicaEvidence(*client, "replica-0");
  ASSERT_TRUE(evidence.has_value());
  ReplicaCheckResult wire_result = CheckReplicas({*evidence}, options);
  CheckReplicaWireProofs(*client, *evidence, options, wire_result);
  AuditReport wire_report;
  ApplyReplicaFindings(wire_report, std::move(wire_result));

  EXPECT_EQ(wire_report.Render(), file_report.Render());
  service.Shutdown();
}

TEST(RepairWireAuditTest, CorruptStoreEarnsInclusionInvalidOverWire) {
  // The replica's seals are honest, but its record store was rewritten
  // after sealing. Roots-only evidence alone cannot see that; the
  // wire-served sampled inclusion checks must.
  proto::LogServer server(SealEvery(2));
  server.Append(MakeEntry(0));
  server.Append(MakeEntry(1));
  ASSERT_EQ(server.EpochRoots().size(), 1u);
  // Corrupt every record so the sampled indices are guaranteed to hit one.
  ASSERT_TRUE(server.CorruptRecordForTest(0));
  ASSERT_TRUE(server.CorruptRecordForTest(1));

  proto::LogServerService service(server, 0);
  auto client = proto::SyncClient::Dial(service.Port());
  ASSERT_NE(client, nullptr);
  const auto evidence = FetchReplicaEvidence(*client, "replica-0");
  ASSERT_TRUE(evidence.has_value());

  const ReplicaCheckOptions options = FleetKey();
  ReplicaCheckResult result = CheckReplicas({*evidence}, options);
  ASSERT_TRUE(result.Clean()) << "seal chain itself is still honest";
  CheckReplicaWireProofs(*client, *evidence, options, result);
  ASSERT_FALSE(result.verdicts.empty());
  for (const ReplicaVerdict& v : result.verdicts) {
    EXPECT_EQ(v.finding, ReplicaFinding::kInclusionInvalid);
    EXPECT_EQ(v.replica, "replica-0");
  }
  service.Shutdown();
}

TEST(RepairWireAuditTest, DeadReplicaYieldsNoEvidence) {
  proto::LogServer server(SealEvery(4));
  for (std::uint64_t seq = 0; seq < 4; ++seq) server.Append(MakeEntry(seq));
  auto service = std::make_unique<proto::LogServerService>(server, 0);
  auto client = proto::SyncClient::Dial(service->Port());
  ASSERT_NE(client, nullptr);
  service->Shutdown();
  service.reset();
  EXPECT_FALSE(FetchReplicaEvidence(*client, "replica-0").has_value());
}

}  // namespace
}  // namespace adlp::audit
