#include "audit/report_json.h"

#include <gtest/gtest.h>

#include "audit/auditor.h"
#include "faults/behavior.h"
#include "test_util.h"

namespace adlp::audit {
namespace {

TEST(JsonQuoteTest, EscapesSpecials) {
  EXPECT_EQ(JsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(JsonQuote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonQuote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(JsonQuote("a\nb\t"), "\"a\\nb\\t\"");
  EXPECT_EQ(JsonQuote(std::string("\x01", 1)), "\"\\u0001\"");
  EXPECT_EQ(JsonQuote(""), "\"\"");
}

AuditReport MakeReportWithBlame() {
  const auto& pub = test::TestIdentity("pub");
  const auto& sub = test::TestIdentity("sub");
  const auto pair = test::MakeFaithfulPair(pub, sub, "image", 1, {1, 2});
  crypto::KeyStore keys;
  keys.Register("pub", pub.keys.pub);
  keys.Register("sub", sub.keys.pub);
  // Subscriber entry only: publisher provably hid.
  return Auditor(keys).Audit({pair.subscriber_entry},
                             test::OneTopicTopology("image", "pub", {"sub"}));
}

TEST(ReportJsonTest, ContainsAllSections) {
  const std::string json = RenderReportJson(MakeReportWithBlame());
  EXPECT_NE(json.find("\"summary\""), std::string::npos);
  EXPECT_NE(json.find("\"findings\""), std::string::npos);
  EXPECT_NE(json.find("\"components\""), std::string::npos);
  EXPECT_NE(json.find("\"unfaithful\""), std::string::npos);
  EXPECT_NE(json.find("\"verdicts\""), std::string::npos);
  EXPECT_NE(json.find("\"publisher-hid-entry\""), std::string::npos);
  EXPECT_NE(json.find("\"pub\""), std::string::npos);
}

TEST(ReportJsonTest, VerdictsCanBeOmitted) {
  JsonOptions options;
  options.include_verdicts = false;
  const std::string json = RenderReportJson(MakeReportWithBlame(), options);
  EXPECT_EQ(json.find("\"verdicts\""), std::string::npos);
  EXPECT_NE(json.find("\"summary\""), std::string::npos);
}

TEST(ReportJsonTest, CompactModeIsSingleLine) {
  JsonOptions options;
  options.pretty = false;
  const std::string json = RenderReportJson(MakeReportWithBlame(), options);
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(ReportJsonTest, BalancedBracesAndQuotes) {
  for (bool pretty : {true, false}) {
    JsonOptions options;
    options.pretty = pretty;
    const std::string json = RenderReportJson(MakeReportWithBlame(), options);
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    for (char c : json) {
      if (escaped) {
        escaped = false;
        continue;
      }
      if (in_string) {
        if (c == '\\') escaped = true;
        if (c == '"') in_string = false;
        continue;
      }
      if (c == '"') in_string = true;
      if (c == '{' || c == '[') ++depth;
      if (c == '}' || c == ']') --depth;
      ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0) << json;
    EXPECT_FALSE(in_string);
  }
}

TEST(ReportJsonTest, EmptyReport) {
  const std::string json = RenderReportJson(AuditReport{});
  EXPECT_NE(json.find("\"instances\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"unfaithful\""), std::string::npos);
}

TEST(ReportJsonTest, HostileNamesEscaped) {
  // Component names straight from log entries could contain anything.
  AuditReport report;
  report.stats["evil\"name\n"] = ComponentStats{1, 0, 0, 0};
  report.unfaithful.insert("evil\"name\n");
  const std::string json = RenderReportJson(report);
  EXPECT_NE(json.find("evil\\\"name\\n"), std::string::npos);
  EXPECT_EQ(json.find("evil\"name\n"), std::string::npos);
}

}  // namespace
}  // namespace adlp::audit
