// Lemma 3 (Correctness): neither side can log data different from what was
// actually transmitted while the counterpart is faithful.
#include <gtest/gtest.h>

#include "audit/auditor.h"
#include "crypto/pkcs1.h"
#include "faults/behavior.h"
#include "pubsub/message.h"
#include "test_util.h"

namespace adlp::audit {
namespace {

using test::MakeFaithfulPair;
using test::OneTopicTopology;
using test::TestIdentity;

crypto::KeyStore Keys() {
  crypto::KeyStore keys;
  for (const char* name : {"pub", "sub"}) {
    keys.Register(name, TestIdentity(name).keys.pub);
  }
  return keys;
}

/// Re-signs an entry's falsified claim with the owner's key so that
/// self-authenticity holds (the smart adversary).
proto::LogEntry FalsifyData(proto::LogEntry entry,
                            const proto::NodeIdentity& owner,
                            const crypto::ComponentId& topic_publisher,
                            Bytes fake_data) {
  pubsub::MessageHeader header;
  header.topic = entry.topic;
  header.publisher = topic_publisher;
  header.seq = entry.seq;
  header.stamp = entry.message_stamp;
  const auto payload_hash = pubsub::PayloadHash(fake_data);
  const auto digest =
      pubsub::MessageDigestFromPayloadHash(header, payload_hash);
  if (!entry.data.empty() || entry.data_hash.empty()) {
    entry.data = std::move(fake_data);
  } else {
    entry.data_hash = crypto::DigestBytes(payload_hash);
  }
  entry.self_signature = crypto::SignDigest(owner.keys.priv, digest);
  return entry;
}

TEST(Lemma3Test, PublisherFalsificationDetected) {
  // c_x actually sent {1,2,3} (the faithful subscriber proves it) but logs
  // {9,9,9} with a fresh self-signature.
  const auto& pub = TestIdentity("pub");
  const auto& sub = TestIdentity("sub");
  const auto pair = MakeFaithfulPair(pub, sub, "image", 1, {1, 2, 3});
  const proto::LogEntry falsified =
      FalsifyData(pair.publisher_entry, pub, "pub", {9, 9, 9});

  const auto keys = Keys();
  const AuditReport report = Auditor(keys).Audit(
      {falsified, pair.subscriber_entry},
      OneTopicTopology("image", "pub", {"sub"}));

  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].finding, Finding::kPublisherFalsified);
  EXPECT_TRUE(report.Blames("pub"));
  EXPECT_FALSE(report.Blames("sub"));
  // The faithful subscriber's entry stays valid (Theorem 1).
  EXPECT_EQ(report.stats.at("sub").valid, 1u);
  EXPECT_EQ(report.stats.at("pub").invalid, 1u);
}

TEST(Lemma3Test, SubscriberFalsificationDetected) {
  // c_y received {1,2,3} and acknowledged it, then logs {7,7,7}.
  const auto& pub = TestIdentity("pub");
  const auto& sub = TestIdentity("sub");
  const auto pair = MakeFaithfulPair(pub, sub, "image", 1, {1, 2, 3});
  const proto::LogEntry falsified =
      FalsifyData(pair.subscriber_entry, sub, "pub", {7, 7, 7});

  const auto keys = Keys();
  const AuditReport report = Auditor(keys).Audit(
      {pair.publisher_entry, falsified},
      OneTopicTopology("image", "pub", {"sub"}));

  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].finding, Finding::kSubscriberFalsified);
  EXPECT_TRUE(report.Blames("sub"));
  EXPECT_FALSE(report.Blames("pub"));
  EXPECT_EQ(report.stats.at("pub").valid, 1u);
}

TEST(Lemma3Test, SubscriberFalsificationWithRawDataStorage) {
  const auto& pub = TestIdentity("pub");
  const auto& sub = TestIdentity("sub");
  const auto pair = MakeFaithfulPair(pub, sub, "image", 1, {1, 2, 3}, 1000,
                                     /*subscriber_stores_hash=*/false);
  const proto::LogEntry falsified =
      FalsifyData(pair.subscriber_entry, sub, "pub", {7, 7, 7});
  const auto keys = Keys();
  const AuditReport report = Auditor(keys).Audit(
      {pair.publisher_entry, falsified},
      OneTopicTopology("image", "pub", {"sub"}));
  EXPECT_EQ(report.verdicts[0].finding, Finding::kSubscriberFalsified);
  EXPECT_TRUE(report.Blames("sub"));
}

TEST(Lemma3Test, SloppyFalsifierFailsSelfAuth) {
  // A falsifier that rewrites the data but keeps the old signature is
  // caught by the "obvious detection" check.
  const auto& pub = TestIdentity("pub");
  const auto& sub = TestIdentity("sub");
  const auto pair = MakeFaithfulPair(pub, sub, "image", 1, {1, 2, 3});
  proto::LogEntry sloppy = pair.publisher_entry;
  sloppy.data = {9, 9, 9};  // signature left stale

  const auto keys = Keys();
  const AuditReport report = Auditor(keys).Audit(
      {sloppy, pair.subscriber_entry},
      OneTopicTopology("image", "pub", {"sub"}));
  EXPECT_EQ(report.verdicts[0].finding, Finding::kPublisherSelfAuthFailed);
  EXPECT_TRUE(report.Blames("pub"));
  EXPECT_FALSE(report.Blames("sub"));
}

TEST(Lemma3Test, ImpersonationRejected) {
  // An entry claiming another component as author cannot verify under the
  // victim's key.
  const auto& pub = TestIdentity("pub");
  const auto& sub = TestIdentity("sub");
  const auto pair = MakeFaithfulPair(pub, sub, "image", 1, {1});
  proto::LogEntry impersonated = pair.publisher_entry;
  impersonated.component = "victim";  // some other component

  crypto::KeyStore keys = Keys();
  keys.Register("victim", TestIdentity("victim").keys.pub);
  const AuditReport report = Auditor(keys).Audit(
      {impersonated, pair.subscriber_entry},
      OneTopicTopology("image", "pub", {"sub"}));
  // The out-entry author does not match the topic's unique publisher.
  ASSERT_FALSE(report.verdicts.empty());
  bool impersonation_flagged = false;
  for (const auto& v : report.verdicts) {
    if (v.finding == Finding::kPublisherSelfAuthFailed) {
      impersonation_flagged = true;
      EXPECT_TRUE(std::find(v.blamed.begin(), v.blamed.end(), "victim") !=
                  v.blamed.end());
    }
  }
  EXPECT_TRUE(impersonation_flagged);
}

TEST(Lemma3Test, EndToEndFalsificationThroughRealPipeline) {
  // The publisher's log pipe falsifies every out-entry (re-signed with its
  // own key); the live subscriber is faithful. Audit must blame the
  // publisher on every transmission.
  test::MiniSystem sys;

  proto::ComponentOptions pub_opts = test::FastOptions();
  pub_opts.pipe_wrapper = [](proto::LogPipe& inner,
                             const proto::NodeIdentity& identity) {
    auto behavior = std::make_shared<faults::FalsificationBehavior>(
        faults::FaultFilter{.direction = proto::Direction::kOut},
        std::make_shared<proto::NodeIdentity>(identity));
    return std::make_unique<faults::UnfaithfulLogPipe>(inner, behavior);
  };

  auto& pub = sys.Add("camera", pub_opts);
  auto& sub = sys.Add("detector");
  std::atomic<int> got{0};
  sub.Subscribe("image", [&](const pubsub::Message&) { got++; });
  auto& p = pub.Advertise("image");
  for (int i = 0; i < 4; ++i) p.Publish(Bytes{1, 2, 3});
  ASSERT_TRUE(test::WaitFor([&] { return got.load() == 4; }));
  ASSERT_TRUE(
      test::WaitFor([&] { return sys.server.EntryCount() == 8; }));

  const AuditReport report = Auditor(sys.server.Keys())
                                 .Audit(sys.server.Entries(),
                                        sys.master.Topology());
  ASSERT_EQ(report.verdicts.size(), 4u);
  for (const auto& v : report.verdicts) {
    EXPECT_EQ(v.finding, Finding::kPublisherFalsified);
  }
  EXPECT_TRUE(report.Blames("camera"));
  EXPECT_FALSE(report.Blames("detector"));
}

TEST(Lemma3Test, EndToEndSubscriberFalsification) {
  test::MiniSystem sys;

  proto::ComponentOptions sub_opts = test::FastOptions();
  sub_opts.pipe_wrapper = [](proto::LogPipe& inner,
                             const proto::NodeIdentity& identity) {
    auto behavior = std::make_shared<faults::FalsificationBehavior>(
        faults::FaultFilter{.direction = proto::Direction::kIn},
        std::make_shared<proto::NodeIdentity>(identity));
    return std::make_unique<faults::UnfaithfulLogPipe>(inner, behavior);
  };

  auto& pub = sys.Add("camera");
  auto& sub = sys.Add("detector", sub_opts);
  std::atomic<int> got{0};
  sub.Subscribe("image", [&](const pubsub::Message&) { got++; });
  auto& p = pub.Advertise("image");
  for (int i = 0; i < 4; ++i) p.Publish(Bytes{1, 2, 3});
  ASSERT_TRUE(test::WaitFor([&] { return got.load() == 4; }));
  ASSERT_TRUE(
      test::WaitFor([&] { return sys.server.EntryCount() == 8; }));

  const AuditReport report = Auditor(sys.server.Keys())
                                 .Audit(sys.server.Entries(),
                                        sys.master.Topology());
  ASSERT_EQ(report.verdicts.size(), 4u);
  for (const auto& v : report.verdicts) {
    EXPECT_EQ(v.finding, Finding::kSubscriberFalsified);
  }
  EXPECT_TRUE(report.Blames("detector"));
  EXPECT_FALSE(report.Blames("camera"));
}

}  // namespace
}  // namespace adlp::audit
