// All-faithful systems: every entry must be classified valid and nobody
// blamed — the baseline for Theorem 1.
#include <gtest/gtest.h>

#include "audit/auditor.h"
#include "test_util.h"

namespace adlp::audit {
namespace {

using test::MakeFaithfulPair;
using test::OneTopicTopology;
using test::TestIdentity;

crypto::KeyStore RegisteredKeys(const std::vector<std::string>& names) {
  crypto::KeyStore keys;
  for (const auto& name : names) {
    keys.Register(name, TestIdentity(name).keys.pub);
  }
  return keys;
}

TEST(AuditorFaithfulTest, SingleCleanTransmission) {
  const auto& pub = TestIdentity("pub");
  const auto& sub = TestIdentity("sub");
  const auto pair = MakeFaithfulPair(pub, sub, "image", 1, {1, 2, 3});

  const auto keys = RegisteredKeys({"pub", "sub"});
  Auditor auditor(keys);
  const AuditReport report =
      auditor.Audit({pair.publisher_entry, pair.subscriber_entry},
                    OneTopicTopology("image", "pub", {"sub"}));

  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].finding, Finding::kOk);
  EXPECT_EQ(report.TotalValid(), 2u);
  EXPECT_EQ(report.TotalInvalid(), 0u);
  EXPECT_EQ(report.TotalHidden(), 0u);
  EXPECT_TRUE(report.unfaithful.empty());
}

TEST(AuditorFaithfulTest, ManySequencesAllValid) {
  const auto& pub = TestIdentity("pub");
  const auto& sub = TestIdentity("sub");
  std::vector<proto::LogEntry> entries;
  Rng rng(1);
  for (std::uint64_t seq = 1; seq <= 20; ++seq) {
    const auto pair = MakeFaithfulPair(pub, sub, "image", seq,
                                       rng.RandomBytes(100), 1000 * seq);
    entries.push_back(pair.publisher_entry);
    entries.push_back(pair.subscriber_entry);
  }
  const auto keys = RegisteredKeys({"pub", "sub"});
  const AuditReport report = Auditor(keys).Audit(
      std::move(entries), OneTopicTopology("image", "pub", {"sub"}));
  EXPECT_EQ(report.verdicts.size(), 20u);
  EXPECT_EQ(report.TotalValid(), 40u);
  EXPECT_TRUE(report.unfaithful.empty());
}

TEST(AuditorFaithfulTest, SubscriberStoringRawDataAlsoValid) {
  const auto& pub = TestIdentity("pub");
  const auto& sub = TestIdentity("sub");
  const auto pair = MakeFaithfulPair(pub, sub, "t", 1, {5, 6}, 1000,
                                     /*subscriber_stores_hash=*/false);
  const auto keys = RegisteredKeys({"pub", "sub"});
  const AuditReport report =
      Auditor(keys).Audit({pair.publisher_entry, pair.subscriber_entry},
                          OneTopicTopology("t", "pub", {"sub"}));
  EXPECT_EQ(report.verdicts[0].finding, Finding::kOk);
  EXPECT_TRUE(report.unfaithful.empty());
}

TEST(AuditorFaithfulTest, MultipleSubscribersPerTopic) {
  const auto& pub = TestIdentity("pub");
  std::vector<proto::LogEntry> entries;
  std::vector<crypto::ComponentId> sub_names;
  for (int s = 0; s < 3; ++s) {
    const std::string name = "sub" + std::to_string(s);
    sub_names.push_back(name);
    const auto pair =
        MakeFaithfulPair(pub, TestIdentity(name), "image", 1, {7});
    entries.push_back(pair.publisher_entry);
    entries.push_back(pair.subscriber_entry);
  }
  auto keys = RegisteredKeys({"pub", "sub0", "sub1", "sub2"});
  const AuditReport report = Auditor(keys).Audit(
      std::move(entries), OneTopicTopology("image", "pub", sub_names));
  EXPECT_EQ(report.verdicts.size(), 3u);  // one instance per subscriber
  EXPECT_EQ(report.TotalValid(), 6u);
  EXPECT_TRUE(report.unfaithful.empty());
}

TEST(AuditorFaithfulTest, AggregatedPublisherEntryValid) {
  // One publisher entry carrying both subscribers' acks expands into two
  // valid instances.
  const auto& pub = TestIdentity("pub");
  const auto& sub_a = TestIdentity("sub_a");
  const auto& sub_b = TestIdentity("sub_b");
  const auto pair_a = MakeFaithfulPair(pub, sub_a, "image", 1, {1});
  const auto pair_b = MakeFaithfulPair(pub, sub_b, "image", 1, {1});

  proto::LogEntry aggregated = pair_a.publisher_entry;
  aggregated.acks.push_back({sub_a.id, aggregated.peer_data_hash,
                             aggregated.peer_signature});
  aggregated.acks.push_back({sub_b.id, pair_b.publisher_entry.peer_data_hash,
                             pair_b.publisher_entry.peer_signature});
  aggregated.peer.clear();
  aggregated.peer_data_hash.clear();
  aggregated.peer_signature.clear();

  auto keys = RegisteredKeys({"pub", "sub_a", "sub_b"});
  const AuditReport report = Auditor(keys).Audit(
      {aggregated, pair_a.subscriber_entry, pair_b.subscriber_entry},
      OneTopicTopology("image", "pub", {"sub_a", "sub_b"}));
  EXPECT_EQ(report.verdicts.size(), 2u);
  for (const auto& v : report.verdicts) {
    EXPECT_EQ(v.finding, Finding::kOk) << v.subscriber;
  }
  EXPECT_TRUE(report.unfaithful.empty());
}

TEST(AuditorFaithfulTest, EmptyLogYieldsEmptyReport) {
  crypto::KeyStore keys;
  const AuditReport report = Auditor(keys).Audit({}, {});
  EXPECT_TRUE(report.verdicts.empty());
  EXPECT_TRUE(report.unfaithful.empty());
  EXPECT_FALSE(report.Render().empty());
}

TEST(AuditorFaithfulTest, RealPipelineEntriesAuditClean) {
  // Entries produced by the actual protocol stack (not synthetic) audit
  // clean end to end.
  test::MiniSystem sys;
  auto& pub = sys.Add("camera");
  auto& sub = sys.Add("detector");
  std::atomic<int> got{0};
  sub.Subscribe("image", [&](const pubsub::Message&) { got++; });
  auto& p = pub.Advertise("image");
  for (int i = 0; i < 5; ++i) p.Publish(Bytes{static_cast<std::uint8_t>(i)});
  ASSERT_TRUE(test::WaitFor([&] { return got.load() == 5; }));
  ASSERT_TRUE(
      test::WaitFor([&] { return sys.server.EntryCount() == 10; }));

  Auditor auditor(sys.server.Keys());
  const AuditReport report =
      auditor.Audit(sys.server.Entries(), sys.master.Topology());
  EXPECT_EQ(report.verdicts.size(), 5u);
  EXPECT_EQ(report.TotalValid(), 10u);
  EXPECT_EQ(report.TotalInvalid(), 0u);
  EXPECT_TRUE(report.unfaithful.empty());
}

}  // namespace
}  // namespace adlp::audit
