// Cross-replica epoch-root audit: honest fleets are clean (and leave the
// report byte-identical), lagging replicas are informational, and every
// tamper class — divergent roots, rewritten stores, forged seals, dropped
// seals — maps to its distinct ReplicaFinding.
#include "audit/replica_check.h"

#include <gtest/gtest.h>

#include <deque>
#include <string>
#include <vector>

#include "adlp/log_server.h"
#include "audit/streaming_auditor.h"

namespace adlp::audit {
namespace {

proto::LogEntry MakeEntry(std::uint64_t seq, const std::string& payload) {
  proto::LogEntry e;
  e.component = "node";
  e.topic = "topic";
  e.seq = seq;
  e.timestamp = static_cast<Timestamp>(1000 + seq);
  e.data = BytesOf(payload);
  return e;
}

proto::LogServerOptions SealEvery(std::uint64_t k) {
  proto::LogServerOptions options;
  options.seal_every = k;
  return options;
}

ReplicaEvidence EvidenceOf(const std::string& name,
                           const proto::LogServer& server) {
  ReplicaEvidence evidence;
  evidence.name = name;
  evidence.records = server.SerializedRecords();
  evidence.roots = server.EpochRoots();
  return evidence;
}

ReplicaCheckOptions FleetKey() {
  ReplicaCheckOptions options;
  options.seal_key = proto::EpochSealKeys(proto::LogServerOptions{}.seal_key_seed).pub;
  return options;
}

TEST(ReplicaCheckTest, HonestFleetIsClean) {
  std::deque<proto::LogServer> fleet;
  for (int i = 0; i < 3; ++i) fleet.emplace_back(SealEvery(4));
  for (std::uint64_t seq = 0; seq < 13; ++seq) {
    for (auto& server : fleet) {
      server.Append(MakeEntry(seq, "payload-" + std::to_string(seq)));
    }
  }
  std::vector<ReplicaEvidence> evidence;
  for (int i = 0; i < 3; ++i) {
    evidence.push_back(EvidenceOf("replica-" + std::to_string(i), fleet[i]));
  }
  const ReplicaCheckResult result = CheckReplicas(evidence, FleetKey());
  EXPECT_TRUE(result.Clean());
  EXPECT_TRUE(result.equivocating.empty());
  EXPECT_TRUE(result.behind.empty());
  EXPECT_GT(result.proofs_checked, 0u);

  // Folding a clean result changes nothing — the byte-identity guarantee
  // the replication chaos test depends on.
  AuditReport report;
  const std::string before = report.Render();
  ApplyReplicaFindings(report, result);
  EXPECT_EQ(report.Render(), before);
  EXPECT_TRUE(report.replica_verdicts.empty());
}

TEST(ReplicaCheckTest, LaggingReplicaIsInformationalNotAFinding) {
  std::deque<proto::LogServer> fleet;
  for (int i = 0; i < 3; ++i) fleet.emplace_back(SealEvery(4));
  for (std::uint64_t seq = 0; seq < 12; ++seq) {
    for (int i = 0; i < 3; ++i) {
      // Replica 2 "crashed" after 5 entries (one sealed epoch).
      if (i == 2 && seq >= 5) continue;
      fleet[i].Append(MakeEntry(seq, "payload-" + std::to_string(seq)));
    }
  }
  std::vector<ReplicaEvidence> evidence;
  for (int i = 0; i < 3; ++i) {
    evidence.push_back(EvidenceOf("replica-" + std::to_string(i), fleet[i]));
  }
  const ReplicaCheckResult result = CheckReplicas(evidence, FleetKey());
  EXPECT_TRUE(result.Clean()) << "a prefix history is honest";
  ASSERT_TRUE(result.behind.contains("replica-2"));
  EXPECT_EQ(result.behind.at("replica-2"), 2u);  // 3 fleet epochs, has 1
}

TEST(ReplicaCheckTest, DivergentRootsAreEquivocationAndBlameTheLogger) {
  std::deque<proto::LogServer> fleet;
  for (int i = 0; i < 3; ++i) fleet.emplace_back(SealEvery(4));
  for (std::uint64_t seq = 0; seq < 8; ++seq) {
    for (int i = 0; i < 3; ++i) {
      // Replica 2 is shown a different entry 6: two correctly signed yet
      // divergent histories — equivocation, not store tampering.
      const bool forked = i == 2 && seq == 6;
      fleet[i].Append(
          MakeEntry(seq, forked ? "forged" : "payload-" + std::to_string(seq)));
    }
  }
  std::vector<ReplicaEvidence> evidence;
  for (int i = 0; i < 3; ++i) {
    evidence.push_back(EvidenceOf("replica-" + std::to_string(i), fleet[i]));
  }
  const ReplicaCheckResult result = CheckReplicas(evidence, FleetKey());
  ASSERT_FALSE(result.Clean());
  // Epoch 0 (records 0..3) agrees; epoch 1 (records 0..7) diverges.
  ASSERT_EQ(result.verdicts.size(), 1u);
  const ReplicaVerdict& v = result.verdicts[0];
  EXPECT_EQ(v.finding, ReplicaFinding::kEquivocation);
  EXPECT_EQ(v.epoch, 1u);
  EXPECT_EQ(v.implicated,
            (std::vector<std::string>{"replica-0", "replica-1", "replica-2"}));
  EXPECT_TRUE(result.equivocating.contains("logger"));

  AuditReport report;
  ApplyReplicaFindings(report, result);
  EXPECT_TRUE(report.Blames("logger"));
  EXPECT_NE(report.Render().find("logger-equivocation"), std::string::npos);
}

TEST(ReplicaCheckTest, RewrittenStoreIsRootMismatch) {
  proto::LogServer server(SealEvery(4));
  for (std::uint64_t seq = 0; seq < 8; ++seq) {
    server.Append(MakeEntry(seq, "payload-" + std::to_string(seq)));
  }
  ReplicaEvidence evidence = EvidenceOf("replica-0", server);
  evidence.records[1][0] ^= 0x01;  // rewrite one stored record post-seal
  const ReplicaCheckResult result =
      CheckReplicas({std::move(evidence)}, FleetKey());
  ASSERT_FALSE(result.Clean());
  for (const ReplicaVerdict& v : result.verdicts) {
    EXPECT_EQ(v.finding, ReplicaFinding::kRootMismatch);
  }
  EXPECT_TRUE(result.equivocating.empty())
      << "store tampering is not equivocation";
}

TEST(ReplicaCheckTest, StoreShorterThanSealIsRootMismatch) {
  proto::LogServer server(SealEvery(4));
  for (std::uint64_t seq = 0; seq < 8; ++seq) {
    server.Append(MakeEntry(seq, "payload-" + std::to_string(seq)));
  }
  ReplicaEvidence evidence = EvidenceOf("replica-0", server);
  evidence.records.resize(6);  // drop records the second seal covers
  const ReplicaCheckResult result =
      CheckReplicas({std::move(evidence)}, FleetKey());
  ASSERT_EQ(result.verdicts.size(), 1u);
  EXPECT_EQ(result.verdicts[0].finding, ReplicaFinding::kRootMismatch);
  EXPECT_EQ(result.verdicts[0].epoch, 1u);
}

TEST(ReplicaCheckTest, ForgedSealIsSealInvalid) {
  proto::LogServer server(SealEvery(4));
  for (std::uint64_t seq = 0; seq < 8; ++seq) {
    server.Append(MakeEntry(seq, "payload-" + std::to_string(seq)));
  }
  ReplicaEvidence evidence = EvidenceOf("replica-0", server);
  evidence.roots[1].signature[0] ^= 0x01;
  const ReplicaCheckResult result =
      CheckReplicas({std::move(evidence)}, FleetKey());
  ASSERT_FALSE(result.Clean());
  EXPECT_EQ(result.verdicts[0].finding, ReplicaFinding::kSealInvalid);
  EXPECT_EQ(result.verdicts[0].epoch, 1u);
}

TEST(ReplicaCheckTest, DroppedSealIsChainBroken) {
  proto::LogServer server(SealEvery(4));
  for (std::uint64_t seq = 0; seq < 12; ++seq) {
    server.Append(MakeEntry(seq, "payload-" + std::to_string(seq)));
  }
  ReplicaEvidence evidence = EvidenceOf("replica-0", server);
  evidence.roots.erase(evidence.roots.begin() + 1);  // suppress epoch 1
  const ReplicaCheckResult result =
      CheckReplicas({std::move(evidence)}, FleetKey());
  ASSERT_FALSE(result.Clean());
  EXPECT_EQ(result.verdicts[0].finding, ReplicaFinding::kRootChainBroken);
}

TEST(ReplicaCheckTest, StreamingAuditorCrossChecksFedRoots) {
  // Two correctly signed but divergent histories, fed as roots only.
  proto::LogServer a(SealEvery(4));
  proto::LogServer b(SealEvery(4));
  for (std::uint64_t seq = 0; seq < 4; ++seq) {
    a.Append(MakeEntry(seq, "payload"));
    b.Append(MakeEntry(seq, seq == 2 ? "forged" : "payload"));
  }

  crypto::KeyStore keys;
  StreamingOptions options;
  options.seal_key = FleetKey().seal_key;
  {
    // Honest case first: identical roots add nothing to the report.
    StreamingAuditor online(keys, Topology{}, options);
    for (const auto& root : a.EpochRoots()) {
      online.OnEpochRoot("replica-a", root);
      online.OnEpochRoot("replica-b", root);
    }
    const AuditReport report = online.Finalize();
    EXPECT_TRUE(report.replica_verdicts.empty());
    EXPECT_TRUE(report.unfaithful.empty());
  }
  {
    StreamingAuditor online(keys, Topology{}, options);
    for (const auto& root : a.EpochRoots()) online.OnEpochRoot("replica-a", root);
    for (const auto& root : b.EpochRoots()) online.OnEpochRoot("replica-b", root);
    const AuditReport report = online.Finalize();
    ASSERT_EQ(report.replica_verdicts.size(), 1u);
    EXPECT_EQ(report.replica_verdicts[0].finding,
              ReplicaFinding::kEquivocation);
    EXPECT_TRUE(report.Blames("logger"));
  }
}

}  // namespace
}  // namespace adlp::audit
