// The streaming auditor's load-bearing invariant, exercised across the full
// misbehavior matrix: for every fault class and every seed, the streaming
// auditor's finalized report is BYTE-identical (rendered JSON, verdict list
// included) to the batch auditor's report over the same entries and
// topology — under serial delivery, multi-threaded delivery, perturbed
// (reordered + duplicated) upload streams, and random epoch schedules.
//
// On top of identity, each misbehaving cell asserts online detection: the
// offending pair is flagged at an intermediate epoch seal — i.e. while the
// fleet would still be running — not only at end-of-run finalization.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "audit/auditor.h"
#include "audit/report_json.h"
#include "audit/streaming_auditor.h"
#include "fleet_gen.h"

namespace adlp {
namespace {

using test::ChainFleet;
using test::kAllMisbehaviorClasses;
using test::MakeMisbehavedFleet;
using test::MisbehavedFleet;
using test::MisbehaviorClass;
using test::MisbehaviorClassName;

std::string Render(const audit::AuditReport& report) {
  audit::JsonOptions json;
  json.pretty = false;
  json.include_verdicts = true;
  return audit::RenderReportJson(report, json);
}

std::string BatchJson(const ChainFleet& fleet,
                      const std::vector<proto::LogEntry>& entries,
                      std::size_t threads) {
  const audit::LogDatabase db(entries, fleet.topology);
  const audit::Auditor auditor(fleet.keys);
  audit::AuditOptions exec;
  exec.threads = threads;
  return Render(auditor.Audit(db, exec));
}

struct StreamRun {
  std::string json;
  audit::StreamingStats stats;
  /// on_finding firings observed before Finalize() — online detections.
  std::size_t flags_before_final = 0;
};

/// Serial delivery in arrival order with a seed-randomized epoch schedule;
/// one final explicit epoch before Finalize so every flag that can fire
/// online has fired online.
StreamRun RunStreamingSerial(const ChainFleet& fleet,
                             const std::vector<proto::LogEntry>& entries,
                             std::uint64_t seed) {
  Rng rng(seed);
  audit::StreamingOptions options;
  std::atomic<std::size_t> flags{0};
  options.on_finding = [&](const audit::PairVerdict&, Timestamp) { ++flags; };
  audit::StreamingAuditor streaming(fleet.keys, fleet.topology, options);
  // Epochs aligned to transmission boundaries (entries arrive in
  // publisher/subscriber-adjacent pairs): a clean fleet then never seals a
  // half-arrived pair, so any online flag is a real detection. Mutated
  // fleets may mis-align (hiding removes entries) — a provisionally flagged
  // pair re-opens on its late counterpart and converges, which the byte
  // identity below certifies.
  const std::size_t epoch_every = 2 * (1 + rng.UniformBelow(3));
  for (std::size_t i = 0; i < entries.size(); ++i) {
    streaming.OnEntry(entries[i]);
    if ((i + 1) % epoch_every == 0) streaming.SealEpoch();
  }
  streaming.SealEpoch();
  StreamRun run;
  run.flags_before_final = flags.load();
  run.json = Render(streaming.Finalize());
  run.stats = streaming.Stats();
  return run;
}

/// Multi-threaded delivery: entries are partitioned by (topic, seq) so each
/// transmission instance keeps its relative arrival order while different
/// instances race freely — the strongest concurrency the per-pair fact
/// model admits while staying comparable to a fixed batch order.
std::string RunStreamingParallel(const ChainFleet& fleet,
                                 const std::vector<proto::LogEntry>& entries,
                                 std::size_t threads) {
  audit::StreamingAuditor streaming(fleet.keys, fleet.topology);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (const auto& entry : entries) {
        std::size_t h = entry.seq;
        for (char c : entry.topic) {
          h = h * 131 + static_cast<unsigned char>(c);
        }
        if (h % threads == t) streaming.OnEntry(entry);
      }
    });
  }
  for (auto& w : workers) w.join();
  return Render(streaming.Finalize());
}

/// Seed-deterministic upload-stream perturbation: bounded-window reorder
/// plus duplicated frames. The perturbed sequence is what BOTH auditors
/// consume, modelling a log server that stored exactly this arrival order.
std::vector<proto::LogEntry> PerturbStream(std::vector<proto::LogEntry> v,
                                           std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t i = 0; i + 1 < v.size(); ++i) {
    const std::size_t j = i + rng.UniformBelow(4);
    if (j < v.size() && j != i) std::swap(v[i], v[j]);
  }
  const std::size_t dups = 1 + rng.UniformBelow(3);
  for (std::size_t d = 0; d < dups && !v.empty(); ++d) {
    v.push_back(v[rng.UniformBelow(v.size())]);
  }
  return v;
}

class StreamingEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamingEquivalenceTest, MatchesBatchAcrossMisbehaviorMatrix) {
  const std::uint64_t seed = GetParam();
  for (const MisbehaviorClass cls : kAllMisbehaviorClasses) {
    SCOPED_TRACE(MisbehaviorClassName(cls));
    const MisbehavedFleet mf = MakeMisbehavedFleet(cls, seed);
    const ChainFleet& fleet = mf.fleet;

    // Batch serial is the reference; batch parallel must already match it.
    const std::string reference = BatchJson(fleet, fleet.entries, 1);
    EXPECT_EQ(BatchJson(fleet, fleet.entries, 4), reference);

    // Streaming, serial delivery, random epochs: byte-identical, and every
    // misbehaving cell was flagged online (before Finalize).
    const StreamRun serial = RunStreamingSerial(fleet, fleet.entries, seed);
    EXPECT_EQ(serial.json, reference);
    EXPECT_EQ(serial.stats.entries, fleet.entries.size());
    if (mf.expects_pairwise_finding) {
      EXPECT_GE(serial.flags_before_final, 1u)
          << "misbehavior not detected until finalization";
      EXPECT_GE(serial.stats.flagged, 1u);
    } else {
      EXPECT_EQ(serial.flags_before_final, 0u)
          << "clean/timing fleet flagged online";
    }

    // Streaming, concurrent delivery: byte-identical.
    EXPECT_EQ(RunStreamingParallel(fleet, fleet.entries, 4), reference);

    // Perturbed upload stream (reorder + duplicates): streaming matches the
    // batch audit of the SAME perturbed order, byte for byte.
    const std::vector<proto::LogEntry> perturbed =
        PerturbStream(fleet.entries, seed * 977 + static_cast<int>(cls));
    EXPECT_EQ(RunStreamingSerial(fleet, perturbed, seed ^ 0xabc).json,
              BatchJson(fleet, perturbed, 1));
  }
}

/// Memory pressure must not change a single byte either: the same matrix
/// under a tiny open-pair bound, forcing evictions mid-stream.
TEST_P(StreamingEquivalenceTest, EvictionPressurePreservesIdentity) {
  const std::uint64_t seed = GetParam();
  for (const MisbehaviorClass cls : kAllMisbehaviorClasses) {
    SCOPED_TRACE(MisbehaviorClassName(cls));
    const MisbehavedFleet mf = MakeMisbehavedFleet(cls, seed, "ev");
    const ChainFleet& fleet = mf.fleet;

    audit::StreamingOptions options;
    options.max_open_pairs = 3;
    audit::StreamingAuditor streaming(fleet.keys, fleet.topology, options);
    for (const auto& entry : fleet.entries) {
      streaming.OnEntry(entry);
      EXPECT_LE(streaming.Stats().open_pairs, options.max_open_pairs);
    }
    const audit::StreamingStats mid = streaming.Stats();
    EXPECT_GT(mid.evicted_pairs, 0u) << "bound never exercised";
    EXPECT_EQ(Render(streaming.Finalize()),
              BatchJson(fleet, fleet.entries, 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingEquivalenceTest,
                         ::testing::Range<std::uint64_t>(0, 24));

}  // namespace
}  // namespace adlp
