// Randomized misbehavior matrix (the property behind Theorems 1-2): for
// every fault class and every seed, a fleet with ONE unfaithful
// non-colluding component audits to exactly that component — never a
// faithful one. Each seed randomizes the chain shape, the attacker's
// position, the fault parameters, AND the audit execution (thread count,
// memo cache), so the matrix simultaneously exercises the parallel sharded
// pipeline against the serial semantics it must preserve.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "audit/auditor.h"
#include "audit/causality.h"
#include "fleet_gen.h"

namespace adlp {
namespace {

using test::ApplyBehavior;
using test::ChainFleet;
using test::MakeChainFleet;
using test::TestIdentity;

class MisbehaviorMatrixTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  /// Per-class stream constants keep the six tests' random choices
  /// independent even though they share the seed parameter.
  Rng MakeRng(std::uint64_t stream) const {
    return Rng(GetParam() * 0x9e37'79b9'7f4a'7c15ull + stream);
  }

  ChainFleet MakeFleet(Rng& rng) const {
    const std::size_t links = 2 + rng.UniformBelow(3);  // 2..4 hops
    const std::size_t seqs = 3 + rng.UniformBelow(4);   // 3..6 per hop
    return MakeChainFleet(links, seqs);
  }

  /// Audits under a seed-randomized execution configuration: every matrix
  /// cell doubles as a serial/parallel interchangeability check.
  audit::AuditReport AuditFleet(const ChainFleet& fleet, Rng& rng) const {
    const audit::LogDatabase db(fleet.entries, fleet.topology);
    const audit::Auditor auditor(fleet.keys);
    audit::AuditOptions exec;
    exec.threads = 1 + rng.UniformBelow(8);
    exec.cache = rng.Chance(0.5);
    return auditor.Audit(db, exec);
  }

  static std::set<crypto::ComponentId> Blamed(const audit::AuditReport& r) {
    return r.unfaithful;
  }
};

TEST_P(MisbehaviorMatrixTest, CleanFleetAuditsClean) {
  Rng rng = MakeRng(0);
  const ChainFleet fleet = MakeFleet(rng);
  const audit::AuditReport report = AuditFleet(fleet, rng);
  EXPECT_TRUE(report.unfaithful.empty())
      << "clean fleet blamed " << report.unfaithful.size() << " components";
  for (const auto& v : report.verdicts) {
    EXPECT_EQ(v.finding, audit::Finding::kOk) << v.detail;
  }
  const audit::LogDatabase db(fleet.entries, fleet.topology);
  EXPECT_TRUE(audit::CausalityChecker(db).Check(fleet.dependencies).empty());
}

TEST_P(MisbehaviorMatrixTest, HidingBlamedExactly) {
  Rng rng = MakeRng(1);
  ChainFleet fleet = MakeFleet(rng);
  const std::size_t a = rng.UniformBelow(fleet.links + 1);
  const crypto::ComponentId attacker = fleet.Node(a).id;

  // A hop the attacker actually participates in, and its role there.
  const bool hide_in =
      a == fleet.links || (a > 0 && rng.Chance(0.5));
  faults::FaultFilter filter;
  filter.topic = hide_in ? fleet.Topic(a - 1) : fleet.Topic(a);
  filter.direction =
      hide_in ? proto::Direction::kIn : proto::Direction::kOut;
  faults::HidingBehavior hide(filter, GetParam() + 11);
  ApplyBehavior(fleet.entries, attacker, hide);
  ASSERT_EQ(hide.HiddenCount(), fleet.seqs);

  const audit::AuditReport report = AuditFleet(fleet, rng);
  EXPECT_EQ(Blamed(report), std::set<crypto::ComponentId>{attacker});
  std::size_t hidden_findings = 0;
  for (const auto& v : report.verdicts) {
    if (v.finding == audit::Finding::kPublisherHidEntry ||
        v.finding == audit::Finding::kSubscriberHidEntry) {
      ++hidden_findings;
      EXPECT_EQ(v.blamed, std::vector<crypto::ComponentId>{attacker});
    }
  }
  EXPECT_EQ(hidden_findings, fleet.seqs);
}

TEST_P(MisbehaviorMatrixTest, FalsificationBlamedExactly) {
  Rng rng = MakeRng(2);
  ChainFleet fleet = MakeFleet(rng);
  const std::size_t a = rng.UniformBelow(fleet.links + 1);
  const crypto::ComponentId attacker = fleet.Node(a).id;

  const bool falsify_in =
      a == fleet.links || (a > 0 && rng.Chance(0.5));
  faults::FaultFilter filter;
  filter.topic = falsify_in ? fleet.Topic(a - 1) : fleet.Topic(a);
  filter.direction =
      falsify_in ? proto::Direction::kIn : proto::Direction::kOut;
  faults::FalsificationBehavior falsify(
      filter, std::make_shared<proto::NodeIdentity>(fleet.Node(a)),
      /*mutate=*/nullptr, GetParam() + 22);
  ApplyBehavior(fleet.entries, attacker, falsify);
  ASSERT_EQ(falsify.FalsifiedCount(), fleet.seqs);

  const audit::AuditReport report = AuditFleet(fleet, rng);
  EXPECT_EQ(Blamed(report), std::set<crypto::ComponentId>{attacker});
  const audit::Finding expected = falsify_in
                                      ? audit::Finding::kSubscriberFalsified
                                      : audit::Finding::kPublisherFalsified;
  std::size_t falsified_findings = 0;
  for (const auto& v : report.verdicts) {
    if (v.finding == expected) ++falsified_findings;
  }
  EXPECT_EQ(falsified_findings, fleet.seqs);
}

TEST_P(MisbehaviorMatrixTest, FabricationBlamedExactly) {
  Rng rng = MakeRng(3);
  ChainFleet fleet = MakeFleet(rng);
  const std::size_t a = rng.UniformBelow(fleet.links + 1);
  const crypto::ComponentId attacker = fleet.Node(a).id;

  // Fabricate a transmission at a sequence number that never happened, on a
  // hop where the attacker holds the chosen role.
  const bool sub_side =
      a == fleet.links || (a > 0 && rng.Chance(0.5));
  faults::FabricationSpec spec;
  spec.seq = fleet.seqs + 1 + rng.UniformBelow(4);
  spec.timestamp = static_cast<Timestamp>(spec.seq * 1000);
  spec.message_stamp = spec.timestamp - 1;
  spec.data = rng.RandomBytes(24);
  Rng forge_rng = MakeRng(33);
  if (sub_side) {
    spec.topic = fleet.Topic(a - 1);
    spec.peer = fleet.Node(a - 1).id;
    fleet.entries.push_back(
        faults::FabricateSubscriberEntry(fleet.Node(a), spec, forge_rng));
  } else {
    spec.topic = fleet.Topic(a);
    spec.peer = fleet.Node(a + 1).id;
    fleet.entries.push_back(
        faults::FabricatePublisherEntry(fleet.Node(a), spec, forge_rng));
  }

  const audit::AuditReport report = AuditFleet(fleet, rng);
  EXPECT_EQ(Blamed(report), std::set<crypto::ComponentId>{attacker});
  const audit::Finding expected = sub_side
                                      ? audit::Finding::kSubscriberFabricated
                                      : audit::Finding::kPublisherFabricated;
  std::size_t fabricated_findings = 0;
  for (const auto& v : report.verdicts) {
    if (v.finding == expected) ++fabricated_findings;
  }
  EXPECT_EQ(fabricated_findings, 1u);
}

TEST_P(MisbehaviorMatrixTest, ForgeByReplayBlamedExactly) {
  Rng rng = MakeRng(4);
  ChainFleet fleet = MakeFleet(rng);
  const std::size_t a = rng.UniformBelow(fleet.links + 1);
  const crypto::ComponentId attacker = fleet.Node(a).id;

  // Replay one of the attacker's own genuine entries under a fresh sequence
  // number: the reused counterpart signature covers the old h(seq || D).
  const bool replay_in =
      a == fleet.links || (a > 0 && rng.Chance(0.5));
  const std::string topic = replay_in ? fleet.Topic(a - 1) : fleet.Topic(a);
  const proto::Direction dir =
      replay_in ? proto::Direction::kIn : proto::Direction::kOut;
  const std::uint64_t old_seq = 1 + rng.UniformBelow(fleet.seqs);
  const proto::LogEntry* genuine = nullptr;
  for (const auto& entry : fleet.entries) {
    if (entry.component == attacker && entry.topic == topic &&
        entry.direction == dir && entry.seq == old_seq) {
      genuine = &entry;
      break;
    }
  }
  ASSERT_NE(genuine, nullptr);
  const std::uint64_t new_seq = fleet.seqs + 1 + rng.UniformBelow(4);
  fleet.entries.push_back(faults::FabricateByReplay(
      fleet.Node(a), *genuine, new_seq,
      static_cast<Timestamp>(new_seq * 1000)));

  const audit::AuditReport report = AuditFleet(fleet, rng);
  EXPECT_EQ(Blamed(report), std::set<crypto::ComponentId>{attacker});
}

TEST_P(MisbehaviorMatrixTest, ImpersonationBlamesAttackerNotFaithful) {
  Rng rng = MakeRng(5);
  ChainFleet fleet = MakeFleet(rng);
  const std::size_t a = 1 + rng.UniformBelow(fleet.links);  // a subscriber
  const crypto::ComponentId attacker = fleet.Node(a).id;

  // The claimed author is a registered but non-participating component: the
  // auditor cannot distinguish the victim from a hider (the self-signature
  // simply fails under the victim's key), so the victim lands in the blamed
  // set too — the paper's "obvious detection" with blame at the claimed
  // author. What accountability REQUIRES is that the attacker is caught
  // (its own receipt entry is now missing) and no faithful chain member is
  // implicated.
  const proto::NodeIdentity& shadow = TestIdentity("mx-shadow");
  fleet.keys.Register(shadow.id, shadow.keys.pub);

  faults::FaultFilter filter;
  filter.topic = fleet.Topic(a - 1);
  filter.direction = proto::Direction::kIn;
  faults::ImpersonationBehavior impersonate(filter, shadow.id,
                                            GetParam() + 55);
  ApplyBehavior(fleet.entries, attacker, impersonate);

  const audit::AuditReport report = AuditFleet(fleet, rng);
  EXPECT_TRUE(report.Blames(attacker));
  for (const auto& id : report.unfaithful) {
    EXPECT_TRUE(id == attacker || id == shadow.id)
        << "faithful component blamed: " << id;
  }
}

TEST_P(MisbehaviorMatrixTest, TimingDisruptionCaughtByCausality) {
  Rng rng = MakeRng(6);
  ChainFleet fleet = MakeFleet(rng);
  const std::size_t a = rng.UniformBelow(fleet.links + 1);
  const crypto::ComponentId attacker = fleet.Node(a).id;

  // Shift every local timestamp of the attacker far enough to break a
  // precedence constraint: forward anywhere except at the chain's end,
  // where only "received before the upstream send" (a backward shift) is
  // checkable.
  const Timestamp delta =
      a == fleet.links ? static_cast<Timestamp>(-500'000'000)
                       : static_cast<Timestamp>(500'000'000);
  faults::FaultFilter filter;
  faults::TimingDisruptionBehavior skew(filter, delta, GetParam() + 66);
  ApplyBehavior(fleet.entries, attacker, skew);

  // Timestamps are outside the signed digest, so the pairwise auditor must
  // NOT implicate anyone (Lemma 4: timestamps alone prove nothing)...
  const audit::AuditReport report = AuditFleet(fleet, rng);
  EXPECT_TRUE(report.unfaithful.empty());

  // ...but the causality checker localizes the liar to a suspect set that
  // always contains the attacker.
  const audit::LogDatabase db(fleet.entries, fleet.topology);
  const std::vector<audit::CausalityViolation> violations =
      audit::CausalityChecker(db).Check(fleet.dependencies);
  ASSERT_FALSE(violations.empty());
  for (const auto& violation : violations) {
    EXPECT_TRUE(std::find(violation.suspects.begin(),
                          violation.suspects.end(),
                          attacker) != violation.suspects.end())
        << violation.constraint << " blames a set without the attacker";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MisbehaviorMatrixTest,
                         ::testing::Range<std::uint64_t>(0, 24));

}  // namespace
}  // namespace adlp
