#include "audit/replay.h"

#include <gtest/gtest.h>

#include <atomic>

#include "test_util.h"

namespace adlp::audit {
namespace {

proto::LogEntry OutEntry(const std::string& topic,
                         const crypto::ComponentId& publisher,
                         std::uint64_t seq, Bytes data, Timestamp stamp) {
  proto::LogEntry e;
  e.scheme = proto::LogScheme::kAdlp;
  e.component = publisher;
  e.topic = topic;
  e.direction = proto::Direction::kOut;
  e.seq = seq;
  e.timestamp = stamp;
  e.message_stamp = stamp;
  e.data = std::move(data);
  return e;
}

TEST(ReplayTest, RepublishesRecordedDataInOrder) {
  std::vector<proto::LogEntry> entries;
  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    entries.push_back(OutEntry("image", "camera", seq,
                               Bytes{static_cast<std::uint8_t>(seq)},
                               1000 * static_cast<Timestamp>(seq)));
  }

  pubsub::Master master;
  proto::LogServer scratch;
  Rng rng(1);
  proto::Component listener("listener", master, scratch, rng,
                            test::FastOptions(proto::LoggingScheme::kNone));
  std::vector<std::uint8_t> received;
  std::mutex mu;
  std::atomic<int> got{0};
  listener.Subscribe("image", [&](const pubsub::Message& m) {
    std::lock_guard lock(mu);
    received.push_back(m.payload.at(0));
    got++;
  });

  const ReplayStats stats = ReplayLog(entries, master, {});
  EXPECT_EQ(stats.replayed, 5u);
  EXPECT_EQ(stats.per_topic.at("image"), 5u);
  ASSERT_TRUE(test::WaitFor([&] { return got.load() == 5; }));
  listener.Shutdown();

  std::lock_guard lock(mu);
  EXPECT_EQ(received, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
}

TEST(ReplayTest, DuplicatePerSubscriberEntriesDeduped) {
  // ADLP publishers log one entry per subscriber; replay must publish each
  // (topic, seq) once.
  std::vector<proto::LogEntry> entries;
  for (int copy = 0; copy < 3; ++copy) {
    entries.push_back(OutEntry("t", "pub", 1, Bytes{9}, 100));
  }
  pubsub::Master master;
  ReplayOptions options;
  options.expected_subscribers = 0;  // no listener in this test
  const ReplayStats stats = ReplayLog(entries, master, options);
  EXPECT_EQ(stats.replayed, 1u);
}

TEST(ReplayTest, HashOnlyEntriesSkippedAndCounted) {
  std::vector<proto::LogEntry> entries;
  proto::LogEntry hash_only = OutEntry("t", "pub", 1, {}, 100);
  hash_only.data_hash = Bytes(32, 1);
  entries.push_back(hash_only);
  entries.push_back(OutEntry("t", "pub", 2, Bytes{1}, 200));

  pubsub::Master master;
  ReplayOptions options;
  options.expected_subscribers = 0;
  const ReplayStats stats = ReplayLog(entries, master, options);
  EXPECT_EQ(stats.replayed, 1u);
  EXPECT_EQ(stats.skipped_no_data, 1u);
}

TEST(ReplayTest, TopicFilterSelectsSubset) {
  std::vector<proto::LogEntry> entries;
  entries.push_back(OutEntry("a", "pa", 1, Bytes{1}, 100));
  entries.push_back(OutEntry("b", "pb", 1, Bytes{2}, 200));

  pubsub::Master master;
  ReplayOptions options;
  options.topics = {"b"};
  options.expected_subscribers = 0;
  const ReplayStats stats = ReplayLog(entries, master, options);
  EXPECT_EQ(stats.replayed, 1u);
  EXPECT_FALSE(stats.per_topic.contains("a"));
  EXPECT_TRUE(stats.per_topic.contains("b"));
}

TEST(ReplayTest, InEntriesIgnored) {
  std::vector<proto::LogEntry> entries;
  proto::LogEntry in_entry = OutEntry("t", "sub", 1, Bytes{1}, 100);
  in_entry.direction = proto::Direction::kIn;
  entries.push_back(in_entry);

  pubsub::Master master;
  EXPECT_EQ(ReplayLog(entries, master, {}).replayed, 0u);
}

TEST(ReplayTest, MultipleTopicsInterleavedByStamp) {
  std::vector<proto::LogEntry> entries;
  entries.push_back(OutEntry("a", "pa", 1, Bytes{10}, 300));
  entries.push_back(OutEntry("b", "pb", 1, Bytes{20}, 100));
  entries.push_back(OutEntry("a", "pa", 2, Bytes{11}, 200));

  pubsub::Master master;
  proto::LogServer scratch;
  Rng rng(2);
  proto::Component listener("listener", master, scratch, rng,
                            test::FastOptions(proto::LoggingScheme::kNone));
  std::vector<std::uint8_t> order;
  std::mutex mu;
  std::atomic<int> got{0};
  auto record = [&](const pubsub::Message& m) {
    std::lock_guard lock(mu);
    order.push_back(m.payload.at(0));
    got++;
  };
  listener.Subscribe("a", record);
  listener.Subscribe("b", record);

  const ReplayStats stats = ReplayLog(entries, master, {});
  EXPECT_EQ(stats.replayed, 3u);
  ASSERT_TRUE(test::WaitFor([&] { return got.load() == 3; }));
  listener.Shutdown();

  // Recorded-time order: b#1 (100), a#2 (200), a#1 (300). Cross-topic
  // interleaving is only guaranteed by publish order per topic; with one
  // listener thread per topic the first delivery is b's.
  std::lock_guard lock(mu);
  EXPECT_EQ(order.size(), 3u);
}

TEST(ReplayTest, EmptyLogIsANoOp) {
  pubsub::Master master;
  const ReplayStats stats = ReplayLog({}, master, {});
  EXPECT_EQ(stats.replayed, 0u);
  EXPECT_EQ(stats.skipped_no_data, 0u);
}

}  // namespace
}  // namespace adlp::audit
