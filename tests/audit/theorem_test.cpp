// Theorems 1 and 2, exercised as randomized properties over systems with
// mixed faithful/unfaithful components.
#include <gtest/gtest.h>

#include <set>

#include "audit/auditor.h"
#include "crypto/pkcs1.h"
#include "faults/fabricate.h"
#include "pubsub/message.h"
#include "test_util.h"

namespace adlp::audit {
namespace {

using test::MakeFaithfulPair;
using test::TestIdentity;

enum class Adversary {
  kFaithful,
  kHidesEntries,
  kFalsifiesData,
  kFabricatesExtra,
};

/// One synthetic pub/sub pair under a given adversary assignment. Produces
/// the entries each side actually enters into the log.
struct ScenarioPair {
  std::string topic;
  crypto::ComponentId publisher;
  crypto::ComponentId subscriber;
  Adversary pub_behavior;
  Adversary sub_behavior;
};

proto::LogEntry ReSign(proto::LogEntry entry,
                       const proto::NodeIdentity& owner,
                       const crypto::ComponentId& topic_publisher,
                       Bytes fake_data) {
  pubsub::MessageHeader header;
  header.topic = entry.topic;
  header.publisher = topic_publisher;
  header.seq = entry.seq;
  header.stamp = entry.message_stamp;
  const auto payload_hash = pubsub::PayloadHash(fake_data);
  const auto digest =
      pubsub::MessageDigestFromPayloadHash(header, payload_hash);
  if (!entry.data.empty() || entry.data_hash.empty()) {
    entry.data = std::move(fake_data);
  } else {
    entry.data_hash = crypto::DigestBytes(payload_hash);
  }
  entry.self_signature = crypto::SignDigest(owner.keys.priv, digest);
  return entry;
}

struct GeneratedSystem {
  std::vector<proto::LogEntry> entries;
  Topology topology;
  crypto::KeyStore keys;
  std::set<crypto::ComponentId> faithful;
  std::set<crypto::ComponentId> unfaithful;
  // Entries entered by faithful components (must all classify valid).
  std::vector<std::pair<crypto::ComponentId, std::uint64_t>> faithful_claims;
};

GeneratedSystem Generate(const std::vector<ScenarioPair>& pairs,
                         std::uint64_t seed, int seqs_per_pair = 3) {
  GeneratedSystem sys;
  Rng rng(seed);

  auto note = [&](const crypto::ComponentId& id, Adversary a) {
    if (a == Adversary::kFaithful) {
      sys.faithful.insert(id);
    } else {
      sys.unfaithful.insert(id);
    }
  };

  for (const auto& p : pairs) {
    sys.topology[p.topic].publisher = p.publisher;
    sys.topology[p.topic].subscribers.push_back(p.subscriber);
    const auto& pub_id = TestIdentity(p.publisher);
    const auto& sub_id = TestIdentity(p.subscriber);
    sys.keys.Register(p.publisher, pub_id.keys.pub);
    sys.keys.Register(p.subscriber, sub_id.keys.pub);
    note(p.publisher, p.pub_behavior);
    note(p.subscriber, p.sub_behavior);

    for (int s = 1; s <= seqs_per_pair; ++s) {
      const auto pair = MakeFaithfulPair(pub_id, sub_id, p.topic, s,
                                         rng.RandomBytes(24), 1000 * s);
      // Publisher side.
      switch (p.pub_behavior) {
        case Adversary::kHidesEntries:
          break;  // enters nothing
        case Adversary::kFalsifiesData:
          sys.entries.push_back(
              ReSign(pair.publisher_entry, pub_id, p.publisher,
                     rng.RandomBytes(24)));
          break;
        case Adversary::kFabricatesExtra:
        case Adversary::kFaithful:
          sys.entries.push_back(pair.publisher_entry);
          break;
      }
      // Subscriber side.
      switch (p.sub_behavior) {
        case Adversary::kHidesEntries:
          break;
        case Adversary::kFalsifiesData:
          sys.entries.push_back(ReSign(pair.subscriber_entry, sub_id,
                                       p.publisher, rng.RandomBytes(24)));
          break;
        case Adversary::kFabricatesExtra:
        case Adversary::kFaithful:
          sys.entries.push_back(pair.subscriber_entry);
          break;
      }
    }

    // Fabricators additionally invent a transmission that never happened.
    faults::FabricationSpec spec;
    spec.topic = p.topic;
    spec.seq = 1000;  // a seq that never existed
    spec.timestamp = 99999;
    spec.message_stamp = 99998;
    spec.data = rng.RandomBytes(24);
    if (p.pub_behavior == Adversary::kFabricatesExtra) {
      spec.peer = p.subscriber;
      sys.entries.push_back(faults::FabricatePublisherEntry(pub_id, spec, rng));
    }
    if (p.sub_behavior == Adversary::kFabricatesExtra) {
      spec.peer = p.publisher;
      sys.entries.push_back(
          faults::FabricateSubscriberEntry(sub_id, spec, rng));
    }
  }
  return sys;
}

/// Theorem 1: every entry from a faithful component classifies valid, no
/// faithful component is ever blamed — regardless of what others do.
void CheckTheorem1(const GeneratedSystem& sys, const AuditReport& report) {
  for (const auto& id : sys.faithful) {
    // A component can be faithful on one link and unfaithful on another;
    // Theorem 1 speaks only about fully faithful components.
    if (sys.unfaithful.contains(id)) continue;
    EXPECT_FALSE(report.Blames(id)) << id << " is faithful but was blamed";
    const auto it = report.stats.find(id);
    if (it != report.stats.end()) {
      EXPECT_EQ(it->second.invalid, 0u)
          << id << " has invalid entries despite being faithful";
      EXPECT_EQ(it->second.hidden, 0u)
          << id << " has hidden entries despite being faithful";
    }
  }
}

TEST(TheoremTest, T1_FaithfulAgainstHidingPublisher) {
  const auto sys = Generate(
      {{"t1", "bad_pub", "good_sub", Adversary::kHidesEntries,
        Adversary::kFaithful}},
      1);
  const auto report = Auditor(sys.keys).Audit(sys.entries, sys.topology);
  CheckTheorem1(sys, report);
  EXPECT_TRUE(report.Blames("bad_pub"));
}

TEST(TheoremTest, T1_FaithfulAgainstFalsifyingSubscriber) {
  const auto sys = Generate(
      {{"t1", "good_pub", "bad_sub", Adversary::kFaithful,
        Adversary::kFalsifiesData}},
      2);
  const auto report = Auditor(sys.keys).Audit(sys.entries, sys.topology);
  CheckTheorem1(sys, report);
  EXPECT_TRUE(report.Blames("bad_sub"));
}

TEST(TheoremTest, T1_MixedChainEveryAdversaryType) {
  // A three-hop chain with a different adversary at each position.
  const auto sys = Generate(
      {
          {"a", "n1", "n2", Adversary::kFalsifiesData, Adversary::kFaithful},
          {"b", "n2", "n3", Adversary::kFaithful, Adversary::kHidesEntries},
          {"c", "n3", "n4", Adversary::kFabricatesExtra, Adversary::kFaithful},
      },
      3);
  const auto report = Auditor(sys.keys).Audit(sys.entries, sys.topology);
  // n2 is a faithful subscriber on 'a' but... n2 publishes 'b' faithfully.
  // The faithful set per Generate: n2 appears as faithful (sub on a, pub on
  // b); n1, n3 are unfaithful.
  CheckTheorem1(sys, report);
  EXPECT_TRUE(report.Blames("n1"));
  EXPECT_TRUE(report.Blames("n3"));
}

TEST(TheoremTest, T1_RandomizedAdversarySweep) {
  // Many random assignments; Theorem 1 must hold in every one.
  Rng meta_rng(77);
  const std::vector<Adversary> kinds = {
      Adversary::kFaithful, Adversary::kHidesEntries,
      Adversary::kFalsifiesData, Adversary::kFabricatesExtra};
  for (int round = 0; round < 10; ++round) {
    std::vector<ScenarioPair> pairs;
    for (int t = 0; t < 4; ++t) {
      ScenarioPair p;
      p.topic = "topic" + std::to_string(t);
      p.publisher = "pub" + std::to_string(t);
      p.subscriber = "sub" + std::to_string(t);
      p.pub_behavior = kinds[meta_rng.UniformBelow(kinds.size())];
      p.sub_behavior = kinds[meta_rng.UniformBelow(kinds.size())];
      pairs.push_back(p);
    }
    const auto sys = Generate(pairs, 100 + round);
    const auto report = Auditor(sys.keys).Audit(sys.entries, sys.topology);
    CheckTheorem1(sys, report);
  }
}

TEST(TheoremTest, T2_CollusionFreeAllUnfaithfulDetected) {
  // Theorem 2: in a collusion-free system (all groups singletons — here no
  // coordinated lying at all), every unfaithful component is identified.
  // Hiding-only adversaries whose counterpart also misbehaves can evade on
  // that link, so restrict to scenarios where each pair has at most one
  // unfaithful member, which is what collusion-freedom gives Theorem 2.
  Rng meta_rng(88);
  const std::vector<Adversary> kinds = {Adversary::kHidesEntries,
                                        Adversary::kFalsifiesData,
                                        Adversary::kFabricatesExtra};
  for (int round = 0; round < 10; ++round) {
    std::vector<ScenarioPair> pairs;
    std::set<crypto::ComponentId> expected_unfaithful;
    for (int t = 0; t < 4; ++t) {
      ScenarioPair p;
      p.topic = "topic" + std::to_string(t);
      p.publisher = "pub" + std::to_string(t);
      p.subscriber = "sub" + std::to_string(t);
      p.pub_behavior = Adversary::kFaithful;
      p.sub_behavior = Adversary::kFaithful;
      const Adversary bad = kinds[meta_rng.UniformBelow(kinds.size())];
      if (meta_rng.Chance(0.5)) {
        p.pub_behavior = bad;
        expected_unfaithful.insert(p.publisher);
      } else {
        p.sub_behavior = bad;
        expected_unfaithful.insert(p.subscriber);
      }
      pairs.push_back(p);
    }
    const auto sys = Generate(pairs, 200 + round);
    const auto report = Auditor(sys.keys).Audit(sys.entries, sys.topology);
    CheckTheorem1(sys, report);
    EXPECT_EQ(report.unfaithful, expected_unfaithful) << "round " << round;
  }
}

TEST(TheoremTest, ColludingPairForgeryIsUndetectableButHarmless) {
  // A colluding pair forges a consistent transmission that never happened:
  // the audit classifies it valid (L_{V,c} in Fig. 5) — the accepted
  // limitation — but no faithful component is implicated.
  const auto& pub = TestIdentity("cpub");
  const auto& sub = TestIdentity("csub");
  faults::FabricationSpec spec;
  spec.topic = "t";
  spec.seq = 1;
  spec.timestamp = 10;
  spec.message_stamp = 9;
  spec.data = {1, 2, 3};
  spec.peer = sub.id;
  const auto forged = faults::ForgeColludingPair(pub, sub, spec);

  crypto::KeyStore keys;
  keys.Register("cpub", pub.keys.pub);
  keys.Register("csub", sub.keys.pub);
  const auto report = Auditor(keys).Audit(
      {forged.publisher_entry, forged.subscriber_entry},
      test::OneTopicTopology("t", "cpub", {"csub"}));
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].finding, Finding::kOk);
  EXPECT_TRUE(report.unfaithful.empty());
}

TEST(TheoremTest, EdgeOfCollusionGroupStillAccountable) {
  // Fig. 2: B colludes with C, but B's transmissions to outside component A
  // remain fully accountable (Theorem 1 applies to the B-A pair).
  const auto& a = TestIdentity("A");
  const auto& b = TestIdentity("B");
  // B publishes to faithful A and falsifies its own entry.
  const auto pair = MakeFaithfulPair(b, a, "d_ba", 1, {4, 5});
  const auto falsified =
      ReSign(pair.publisher_entry, b, "B", {6, 6});

  crypto::KeyStore keys;
  keys.Register("A", a.keys.pub);
  keys.Register("B", b.keys.pub);
  const auto report =
      Auditor(keys).Audit({falsified, pair.subscriber_entry},
                          test::OneTopicTopology("d_ba", "B", {"A"}));
  EXPECT_EQ(report.verdicts[0].finding, Finding::kPublisherFalsified);
  EXPECT_TRUE(report.Blames("B"));
  EXPECT_FALSE(report.Blames("A"));
}

}  // namespace
}  // namespace adlp::audit
