// Lemma 2 (Completeness): a component cannot hide its publication/receipt
// when the counterpart is faithful.
#include <gtest/gtest.h>

#include "adlp/component.h"
#include "audit/auditor.h"
#include "faults/behavior.h"
#include "test_util.h"

namespace adlp::audit {
namespace {

using test::MakeFaithfulPair;
using test::OneTopicTopology;
using test::TestIdentity;

crypto::KeyStore Keys() {
  crypto::KeyStore keys;
  for (const char* name : {"pub", "sub"}) {
    keys.Register(name, TestIdentity(name).keys.pub);
  }
  return keys;
}

TEST(Lemma2Test, PublisherHidingDetected) {
  // Only the subscriber's entry exists; its embedded s_x proves the
  // publisher published and then hid.
  const auto pair = MakeFaithfulPair(TestIdentity("pub"), TestIdentity("sub"),
                                     "image", 1, {1, 2});
  const auto keys = Keys();
  const AuditReport report = Auditor(keys).Audit(
      {pair.subscriber_entry}, OneTopicTopology("image", "pub", {"sub"}));

  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].finding, Finding::kPublisherHidEntry);
  EXPECT_TRUE(report.Blames("pub"));
  EXPECT_FALSE(report.Blames("sub"));
  EXPECT_EQ(report.TotalHidden(), 1u);  // the missing L_x
  EXPECT_EQ(report.TotalValid(), 1u);   // the subscriber's L_y
}

TEST(Lemma2Test, SubscriberHidingDetected) {
  // Only the publisher's entry exists, but it holds the subscriber's valid
  // ACK — receipt proven, entry hidden.
  const auto pair = MakeFaithfulPair(TestIdentity("pub"), TestIdentity("sub"),
                                     "image", 1, {1, 2});
  const auto keys = Keys();
  const AuditReport report = Auditor(keys).Audit(
      {pair.publisher_entry}, OneTopicTopology("image", "pub", {"sub"}));

  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].finding, Finding::kSubscriberHidEntry);
  EXPECT_TRUE(report.Blames("sub"));
  EXPECT_FALSE(report.Blames("pub"));
}

TEST(Lemma2Test, BothHidingIsUndetectable) {
  // When both sides hide (a colluding pair), no evidence exists — exactly
  // the limitation the paper concedes. The audit simply sees nothing.
  const auto keys = Keys();
  const AuditReport report = Auditor(keys).Audit(
      {}, OneTopicTopology("image", "pub", {"sub"}));
  EXPECT_TRUE(report.verdicts.empty());
  EXPECT_TRUE(report.unfaithful.empty());
}

TEST(Lemma2Test, PartialHidingOnlyHiddenSeqsFlagged) {
  const auto& pub = TestIdentity("pub");
  const auto& sub = TestIdentity("sub");
  std::vector<proto::LogEntry> entries;
  for (std::uint64_t seq = 1; seq <= 4; ++seq) {
    const auto pair = MakeFaithfulPair(pub, sub, "image", seq, {9});
    entries.push_back(pair.subscriber_entry);
    if (seq % 2 == 0) entries.push_back(pair.publisher_entry);  // hide odd
  }
  const auto keys = Keys();
  const AuditReport report = Auditor(keys).Audit(
      std::move(entries), OneTopicTopology("image", "pub", {"sub"}));
  int hidden = 0, ok = 0;
  for (const auto& v : report.verdicts) {
    if (v.finding == Finding::kPublisherHidEntry) ++hidden;
    if (v.finding == Finding::kOk) ++ok;
  }
  EXPECT_EQ(hidden, 2);
  EXPECT_EQ(ok, 2);
  EXPECT_TRUE(report.Blames("pub"));
}

TEST(Lemma2Test, EndToEndHidingThroughRealPipeline) {
  // The publisher runs a HidingBehavior that drops all its out-entries; the
  // real subscriber logs faithfully; the audit pins the publisher.
  test::MiniSystem sys;

  auto hide_all = std::make_shared<faults::HidingBehavior>(
      faults::FaultFilter{.direction = proto::Direction::kOut});
  proto::ComponentOptions pub_opts = test::FastOptions();
  pub_opts.pipe_wrapper = faults::MakePipeWrapper(hide_all);

  auto& pub = sys.Add("camera", pub_opts);
  auto& sub = sys.Add("detector");
  std::atomic<int> got{0};
  sub.Subscribe("image", [&](const pubsub::Message&) { got++; });
  auto& p = pub.Advertise("image");
  for (int i = 0; i < 3; ++i) p.Publish(Bytes{1});
  ASSERT_TRUE(test::WaitFor([&] { return got.load() == 3; }));
  // got == 3 proves the ACKs were *sent*; the publisher link thread logs
  // (and the behaviour drops) each entry only after processing the ACK, so
  // wait for the last drop rather than asserting a racy instantaneous count.
  ASSERT_TRUE(test::WaitFor([&] { return hide_all->HiddenCount() == 3; }));
  pub.FlushLogs();
  sub.FlushLogs();
  EXPECT_EQ(sys.server.EntriesFor("camera").size(), 0u);

  const AuditReport report = Auditor(sys.server.Keys())
                                 .Audit(sys.server.Entries(),
                                        sys.master.Topology());
  EXPECT_EQ(report.verdicts.size(), 3u);
  for (const auto& v : report.verdicts) {
    EXPECT_EQ(v.finding, Finding::kPublisherHidEntry);
  }
  EXPECT_TRUE(report.Blames("camera"));
  EXPECT_FALSE(report.Blames("detector"));
}

TEST(Lemma2Test, EndToEndSubscriberHiding) {
  test::MiniSystem sys;

  auto hide_in = std::make_shared<faults::HidingBehavior>(
      faults::FaultFilter{.direction = proto::Direction::kIn});
  proto::ComponentOptions sub_opts = test::FastOptions();
  sub_opts.pipe_wrapper = faults::MakePipeWrapper(hide_in);

  auto& pub = sys.Add("camera");
  auto& sub = sys.Add("detector", sub_opts);
  std::atomic<int> got{0};
  sub.Subscribe("image", [&](const pubsub::Message&) { got++; });
  auto& p = pub.Advertise("image");
  for (int i = 0; i < 3; ++i) p.Publish(Bytes{1});
  ASSERT_TRUE(test::WaitFor([&] { return got.load() == 3; }));
  ASSERT_TRUE(test::WaitFor(
      [&] { return sys.server.EntriesFor("camera").size() == 3; }));

  // The subscriber still had to ACK to keep receiving (the protocol's
  // penalty), so the publisher's entries expose it.
  const AuditReport report = Auditor(sys.server.Keys())
                                 .Audit(sys.server.Entries(),
                                        sys.master.Topology());
  EXPECT_EQ(report.verdicts.size(), 3u);
  for (const auto& v : report.verdicts) {
    EXPECT_EQ(v.finding, Finding::kSubscriberHidEntry);
  }
  EXPECT_TRUE(report.Blames("detector"));
  EXPECT_FALSE(report.Blames("camera"));
}

}  // namespace
}  // namespace adlp::audit
