// Auditor robustness: incomplete registries, missing manifests, hostile
// field contents — the auditor must degrade to conservative verdicts, never
// crash, and never exonerate on missing information.
#include <gtest/gtest.h>

#include "audit/auditor.h"
#include "test_util.h"

namespace adlp::audit {
namespace {

using test::MakeFaithfulPair;
using test::OneTopicTopology;
using test::TestIdentity;

TEST(AuditorHardeningTest, UnregisteredKeysMakeEntriesUnverifiable) {
  // A component whose key was never registered cannot have its entries
  // classified valid — authenticity is unprovable.
  const auto pair = MakeFaithfulPair(TestIdentity("pub"), TestIdentity("sub"),
                                     "t", 1, {1});
  crypto::KeyStore keys;  // empty: nobody registered
  const AuditReport report =
      Auditor(keys).Audit({pair.publisher_entry, pair.subscriber_entry},
                          OneTopicTopology("t", "pub", {"sub"}));
  EXPECT_EQ(report.TotalValid(), 0u);
  EXPECT_GT(report.TotalInvalid(), 0u);
}

TEST(AuditorHardeningTest, MissingTopologyStillAuditsFromEntries) {
  // No manifest at all: publisher identity is recovered from the entries
  // themselves and the pair still audits clean.
  const auto pair = MakeFaithfulPair(TestIdentity("pub"), TestIdentity("sub"),
                                     "t", 1, {1});
  crypto::KeyStore keys;
  keys.Register("pub", TestIdentity("pub").keys.pub);
  keys.Register("sub", TestIdentity("sub").keys.pub);
  const AuditReport report = Auditor(keys).Audit(
      {pair.publisher_entry, pair.subscriber_entry}, /*topology=*/{});
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].finding, Finding::kOk);
}

TEST(AuditorHardeningTest, WrongSizedHashFieldsAreInvalidNotFatal) {
  auto pair = MakeFaithfulPair(TestIdentity("pub"), TestIdentity("sub"), "t",
                               1, {1});
  pair.subscriber_entry.data_hash = Bytes(7, 0xab);  // not a digest
  crypto::KeyStore keys;
  keys.Register("pub", TestIdentity("pub").keys.pub);
  keys.Register("sub", TestIdentity("sub").keys.pub);
  const AuditReport report =
      Auditor(keys).Audit({pair.publisher_entry, pair.subscriber_entry},
                          OneTopicTopology("t", "pub", {"sub"}));
  EXPECT_EQ(report.stats.at("sub").invalid, 1u);
  EXPECT_TRUE(report.Blames("sub"));
  EXPECT_FALSE(report.Blames("pub"));
}

TEST(AuditorHardeningTest, GarbageSignatureBytesAreInvalidNotFatal) {
  Rng rng(1);
  auto pair = MakeFaithfulPair(TestIdentity("pub"), TestIdentity("sub"), "t",
                               1, {1});
  pair.publisher_entry.self_signature = rng.RandomBytes(3);
  crypto::KeyStore keys;
  keys.Register("pub", TestIdentity("pub").keys.pub);
  keys.Register("sub", TestIdentity("sub").keys.pub);
  const AuditReport report =
      Auditor(keys).Audit({pair.publisher_entry, pair.subscriber_entry},
                          OneTopicTopology("t", "pub", {"sub"}));
  EXPECT_EQ(report.verdicts[0].finding, Finding::kPublisherSelfAuthFailed);
}

TEST(AuditorHardeningTest, MixedSchemePairUsesAdlpEvidence) {
  // Publisher logged under ADLP, subscriber under the naive scheme (e.g. a
  // legacy component): the ADLP side's evidence still works.
  const auto pair = MakeFaithfulPair(TestIdentity("pub"), TestIdentity("sub"),
                                     "t", 1, {1, 2});
  proto::LogEntry base_sub;
  base_sub.scheme = proto::LogScheme::kBase;
  base_sub.component = "sub";
  base_sub.topic = "t";
  base_sub.direction = proto::Direction::kIn;
  base_sub.seq = 1;
  base_sub.data = {1, 2};
  base_sub.peer = "pub";

  crypto::KeyStore keys;
  keys.Register("pub", TestIdentity("pub").keys.pub);
  keys.Register("sub", TestIdentity("sub").keys.pub);
  const AuditReport report =
      Auditor(keys).Audit({pair.publisher_entry, base_sub},
                          OneTopicTopology("t", "pub", {"sub"}));
  // The mixed pair routes through the ADLP logic: the publisher's valid ACK
  // evidence stands on its own; the naive subscriber entry carries no
  // signatures, so it cannot be validated.
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.stats.at("pub").valid, 1u);
}

TEST(AuditorHardeningTest, EmptyComponentIdsDoNotCrash) {
  proto::LogEntry weird;
  weird.scheme = proto::LogScheme::kAdlp;
  weird.topic = "t";
  weird.direction = proto::Direction::kOut;
  weird.seq = 1;
  crypto::KeyStore keys;
  const AuditReport report = Auditor(keys).Audit({weird}, {});
  EXPECT_FALSE(report.verdicts.empty());
  EXPECT_EQ(report.TotalValid(), 0u);
}

TEST(AuditorHardeningTest, HugeSequenceNumbersHandled) {
  const auto pair =
      MakeFaithfulPair(TestIdentity("pub"), TestIdentity("sub"), "t",
                       ~std::uint64_t{0}, {1});
  crypto::KeyStore keys;
  keys.Register("pub", TestIdentity("pub").keys.pub);
  keys.Register("sub", TestIdentity("sub").keys.pub);
  const AuditReport report =
      Auditor(keys).Audit({pair.publisher_entry, pair.subscriber_entry},
                          OneTopicTopology("t", "pub", {"sub"}));
  EXPECT_EQ(report.verdicts[0].finding, Finding::kOk);
}

TEST(AuditorHardeningTest, ReportRenderHandlesEveryFinding) {
  // FindingName is total over the enum (a new finding without a name would
  // render "unknown").
  for (int f = 0; f <= static_cast<int>(Finding::kUnprovableMissing); ++f) {
    EXPECT_NE(FindingName(static_cast<Finding>(f)), "unknown") << f;
  }
}

}  // namespace
}  // namespace adlp::audit
