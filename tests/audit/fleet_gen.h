// Synthetic fleet generator for audit tests: a relay chain of components
// whose faithful log is built directly (no live pipeline), plus helpers to
// inject unfaithful behaviours into the entries a chosen component authored.
//
// The chain c0 -> c1 -> ... -> cL carries one topic per link (t1..tL); every
// transmission is logged on both sides with timestamps that satisfy all of
// Lemma 4's precedence constraints, so a clean fleet audits clean and every
// causality violation a test observes was injected by the test itself.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "audit/causality.h"
#include "audit/log_database.h"
#include "crypto/keystore.h"
#include "faults/behavior.h"
#include "faults/fabricate.h"
#include "test_util.h"

namespace adlp::test {

struct ChainFleet {
  std::size_t links = 0;
  std::size_t seqs = 0;
  std::vector<std::string> node_names;  // c0 .. cL
  std::vector<proto::LogEntry> entries;
  audit::Topology topology;
  crypto::KeyStore keys;
  /// Every relay dependency: c_y consumed (t_i, s) before publishing
  /// (t_{i+1}, s).
  std::vector<audit::FlowDependency> dependencies;

  const proto::NodeIdentity& Node(std::size_t i) const {
    return TestIdentity(node_names.at(i));
  }

  /// Topic carried by link `i` (publisher = node i, subscriber = node i+1).
  std::string Topic(std::size_t link) const {
    return "t" + std::to_string(link + 1);
  }

  /// Publisher-side log timestamp of (link, seq). The subscriber side is
  /// PubStamp + 1 (see MakeFaithfulPair): relaying node i+1 republishes at
  /// PubStamp(link+1, s) = PubStamp(link, s) + 10 > its receive time, so the
  /// whole chain satisfies t_out(x) < t_in(y) <= t_out(y) < t_in(z).
  static Timestamp PubStamp(std::size_t link, std::uint64_t seq) {
    return static_cast<Timestamp>(seq * 1000 + link * 10);
  }
};

/// Builds a faithful chain fleet: `links` hops, `seqs` transmissions per
/// hop, two log entries per transmission. Identities come from
/// TestIdentity() and are cached across calls, so repeated fleets (one per
/// matrix seed) cost no key generation.
inline ChainFleet MakeChainFleet(std::size_t links, std::size_t seqs,
                                 const std::string& label = "mx") {
  ChainFleet fleet;
  fleet.links = links;
  fleet.seqs = seqs;
  for (std::size_t i = 0; i <= links; ++i) {
    fleet.node_names.push_back(label + "-c" + std::to_string(i));
    const proto::NodeIdentity& id = TestIdentity(fleet.node_names.back());
    fleet.keys.Register(id.id, id.keys.pub);
  }
  Rng rng(0xf1ee7 + links * 131 + seqs);
  for (std::size_t link = 0; link < links; ++link) {
    const proto::NodeIdentity& pub = fleet.Node(link);
    const proto::NodeIdentity& sub = fleet.Node(link + 1);
    fleet.topology[fleet.Topic(link)] =
        pubsub::Master::TopicInfo{pub.id, {sub.id}};
    for (std::uint64_t s = 1; s <= seqs; ++s) {
      const faults::ForgedPair pair =
          MakeFaithfulPair(pub, sub, fleet.Topic(link), s, rng.RandomBytes(24),
                           ChainFleet::PubStamp(link, s));
      fleet.entries.push_back(pair.publisher_entry);
      fleet.entries.push_back(pair.subscriber_entry);
    }
  }
  for (std::size_t link = 1; link < links; ++link) {
    for (std::uint64_t s = 1; s <= seqs; ++s) {
      audit::FlowDependency dep;
      dep.first = {fleet.Topic(link - 1), s, fleet.Node(link).id};
      dep.second = {fleet.Topic(link), s, fleet.Node(link + 1).id};
      fleet.dependencies.push_back(dep);
    }
  }
  return fleet;
}

/// Routes the entries authored by `component` through `behavior`, exactly as
/// an UnfaithfulLogPipe between that component and its logger would: the
/// behaviour may rewrite an entry or drop it (hiding). Other components'
/// entries are untouched.
inline void ApplyBehavior(std::vector<proto::LogEntry>& entries,
                          const crypto::ComponentId& component,
                          faults::UnfaithfulBehavior& behavior) {
  std::vector<proto::LogEntry> out;
  out.reserve(entries.size());
  for (auto& entry : entries) {
    if (entry.component != component) {
      out.push_back(std::move(entry));
      continue;
    }
    if (auto kept = behavior.OnEntry(std::move(entry))) {
      out.push_back(std::move(*kept));
    }
  }
  entries = std::move(out);
}

}  // namespace adlp::test
