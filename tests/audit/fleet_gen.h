// Synthetic fleet generator for audit tests: a relay chain of components
// whose faithful log is built directly (no live pipeline), plus helpers to
// inject unfaithful behaviours into the entries a chosen component authored.
//
// The chain c0 -> c1 -> ... -> cL carries one topic per link (t1..tL); every
// transmission is logged on both sides with timestamps that satisfy all of
// Lemma 4's precedence constraints, so a clean fleet audits clean and every
// causality violation a test observes was injected by the test itself.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "audit/causality.h"
#include "audit/log_database.h"
#include "crypto/keystore.h"
#include "faults/behavior.h"
#include "faults/fabricate.h"
#include "test_util.h"

namespace adlp::test {

struct ChainFleet {
  std::size_t links = 0;
  std::size_t seqs = 0;
  std::vector<std::string> node_names;  // c0 .. cL
  std::vector<proto::LogEntry> entries;
  audit::Topology topology;
  crypto::KeyStore keys;
  /// Every relay dependency: c_y consumed (t_i, s) before publishing
  /// (t_{i+1}, s).
  std::vector<audit::FlowDependency> dependencies;

  const proto::NodeIdentity& Node(std::size_t i) const {
    return TestIdentity(node_names.at(i));
  }

  /// Topic carried by link `i` (publisher = node i, subscriber = node i+1).
  std::string Topic(std::size_t link) const {
    return "t" + std::to_string(link + 1);
  }

  /// Publisher-side log timestamp of (link, seq). The subscriber side is
  /// PubStamp + 1 (see MakeFaithfulPair): relaying node i+1 republishes at
  /// PubStamp(link+1, s) = PubStamp(link, s) + 10 > its receive time, so the
  /// whole chain satisfies t_out(x) < t_in(y) <= t_out(y) < t_in(z).
  static Timestamp PubStamp(std::size_t link, std::uint64_t seq) {
    return static_cast<Timestamp>(seq * 1000 + link * 10);
  }
};

/// Builds a faithful chain fleet: `links` hops, `seqs` transmissions per
/// hop, two log entries per transmission. Identities come from
/// TestIdentity() and are cached across calls, so repeated fleets (one per
/// matrix seed) cost no key generation.
inline ChainFleet MakeChainFleet(std::size_t links, std::size_t seqs,
                                 const std::string& label = "mx") {
  ChainFleet fleet;
  fleet.links = links;
  fleet.seqs = seqs;
  for (std::size_t i = 0; i <= links; ++i) {
    fleet.node_names.push_back(label + "-c" + std::to_string(i));
    const proto::NodeIdentity& id = TestIdentity(fleet.node_names.back());
    fleet.keys.Register(id.id, id.keys.pub);
  }
  Rng rng(0xf1ee7 + links * 131 + seqs);
  for (std::size_t link = 0; link < links; ++link) {
    const proto::NodeIdentity& pub = fleet.Node(link);
    const proto::NodeIdentity& sub = fleet.Node(link + 1);
    fleet.topology[fleet.Topic(link)] =
        pubsub::Master::TopicInfo{pub.id, {sub.id}};
    for (std::uint64_t s = 1; s <= seqs; ++s) {
      const faults::ForgedPair pair =
          MakeFaithfulPair(pub, sub, fleet.Topic(link), s, rng.RandomBytes(24),
                           ChainFleet::PubStamp(link, s));
      fleet.entries.push_back(pair.publisher_entry);
      fleet.entries.push_back(pair.subscriber_entry);
    }
  }
  for (std::size_t link = 1; link < links; ++link) {
    for (std::uint64_t s = 1; s <= seqs; ++s) {
      audit::FlowDependency dep;
      dep.first = {fleet.Topic(link - 1), s, fleet.Node(link).id};
      dep.second = {fleet.Topic(link), s, fleet.Node(link + 1).id};
      fleet.dependencies.push_back(dep);
    }
  }
  return fleet;
}

/// Routes the entries authored by `component` through `behavior`, exactly as
/// an UnfaithfulLogPipe between that component and its logger would: the
/// behaviour may rewrite an entry or drop it (hiding). Other components'
/// entries are untouched.
inline void ApplyBehavior(std::vector<proto::LogEntry>& entries,
                          const crypto::ComponentId& component,
                          faults::UnfaithfulBehavior& behavior) {
  std::vector<proto::LogEntry> out;
  out.reserve(entries.size());
  for (auto& entry : entries) {
    if (entry.component != component) {
      out.push_back(std::move(entry));
      continue;
    }
    if (auto kept = behavior.OnEntry(std::move(entry))) {
      out.push_back(std::move(*kept));
    }
  }
  entries = std::move(out);
}

// --- Shared misbehaved-fleet builder ----------------------------------------
//
// The full misbehavior matrix (the fault classes of misbehavior_matrix_test)
// packaged as a reusable generator, so every auditor implementation — batch,
// parallel, streaming — can be driven through the identical fleets and
// compared cell by cell.

enum class MisbehaviorClass : int {
  kClean = 0,
  kHiding,
  kFalsification,
  kFabrication,
  kReplay,
  kImpersonation,
  kTiming,
};

inline constexpr MisbehaviorClass kAllMisbehaviorClasses[] = {
    MisbehaviorClass::kClean,         MisbehaviorClass::kHiding,
    MisbehaviorClass::kFalsification, MisbehaviorClass::kFabrication,
    MisbehaviorClass::kReplay,        MisbehaviorClass::kImpersonation,
    MisbehaviorClass::kTiming,
};

inline const char* MisbehaviorClassName(MisbehaviorClass cls) {
  switch (cls) {
    case MisbehaviorClass::kClean: return "clean";
    case MisbehaviorClass::kHiding: return "hiding";
    case MisbehaviorClass::kFalsification: return "falsification";
    case MisbehaviorClass::kFabrication: return "fabrication";
    case MisbehaviorClass::kReplay: return "replay";
    case MisbehaviorClass::kImpersonation: return "impersonation";
    case MisbehaviorClass::kTiming: return "timing";
  }
  return "?";
}

struct MisbehavedFleet {
  ChainFleet fleet;
  MisbehaviorClass cls = MisbehaviorClass::kClean;
  /// The mutated component (empty for kClean).
  crypto::ComponentId attacker;
  /// Whether the pairwise auditor is expected to produce a non-kOk verdict.
  /// False for kClean (nothing wrong) and kTiming (timestamps are outside
  /// the signed digest; only the causality checker sees those).
  bool expects_pairwise_finding = false;
};

/// Builds a seed-randomized chain fleet with exactly one unfaithful
/// component misbehaving per `cls` — the same mutations the misbehavior
/// matrix applies, factored out so equivalence tests can replay them.
inline MisbehavedFleet MakeMisbehavedFleet(MisbehaviorClass cls,
                                           std::uint64_t seed,
                                           const std::string& label = "eq") {
  Rng rng(seed * 0x9e37'79b9'7f4a'7c15ull + static_cast<std::uint64_t>(cls));
  MisbehavedFleet out;
  out.cls = cls;
  const std::size_t links = 2 + rng.UniformBelow(3);  // 2..4 hops
  const std::size_t seqs = 3 + rng.UniformBelow(4);   // 3..6 per hop
  out.fleet = MakeChainFleet(links, seqs, label);
  ChainFleet& fleet = out.fleet;
  if (cls == MisbehaviorClass::kClean) return out;

  const std::size_t a = cls == MisbehaviorClass::kImpersonation
                            ? 1 + rng.UniformBelow(fleet.links)  // a subscriber
                            : rng.UniformBelow(fleet.links + 1);
  out.attacker = fleet.Node(a).id;
  // A hop the attacker actually participates in, and its role there.
  const bool in_side = a == fleet.links || (a > 0 && rng.Chance(0.5));
  faults::FaultFilter filter;
  filter.topic = in_side ? fleet.Topic(a - 1) : fleet.Topic(a);
  filter.direction = in_side ? proto::Direction::kIn : proto::Direction::kOut;

  switch (cls) {
    case MisbehaviorClass::kClean:
      break;
    case MisbehaviorClass::kHiding: {
      faults::HidingBehavior hide(filter, seed + 11);
      ApplyBehavior(fleet.entries, out.attacker, hide);
      out.expects_pairwise_finding = true;
      break;
    }
    case MisbehaviorClass::kFalsification: {
      faults::FalsificationBehavior falsify(
          filter, std::make_shared<proto::NodeIdentity>(fleet.Node(a)),
          /*mutate=*/nullptr, seed + 22);
      ApplyBehavior(fleet.entries, out.attacker, falsify);
      out.expects_pairwise_finding = true;
      break;
    }
    case MisbehaviorClass::kFabrication: {
      faults::FabricationSpec spec;
      spec.seq = fleet.seqs + 1 + rng.UniformBelow(4);
      spec.timestamp = static_cast<Timestamp>(spec.seq * 1000);
      spec.message_stamp = spec.timestamp - 1;
      spec.data = rng.RandomBytes(24);
      Rng forge_rng(seed + 33);
      if (in_side) {
        spec.topic = fleet.Topic(a - 1);
        spec.peer = fleet.Node(a - 1).id;
        fleet.entries.push_back(
            faults::FabricateSubscriberEntry(fleet.Node(a), spec, forge_rng));
      } else {
        spec.topic = fleet.Topic(a);
        spec.peer = fleet.Node(a + 1).id;
        fleet.entries.push_back(
            faults::FabricatePublisherEntry(fleet.Node(a), spec, forge_rng));
      }
      out.expects_pairwise_finding = true;
      break;
    }
    case MisbehaviorClass::kReplay: {
      const std::uint64_t old_seq = 1 + rng.UniformBelow(fleet.seqs);
      const proto::LogEntry* genuine = nullptr;
      for (const auto& entry : fleet.entries) {
        if (entry.component == out.attacker && entry.topic == filter.topic &&
            entry.direction == filter.direction && entry.seq == old_seq) {
          genuine = &entry;
          break;
        }
      }
      const std::uint64_t new_seq = fleet.seqs + 1 + rng.UniformBelow(4);
      fleet.entries.push_back(faults::FabricateByReplay(
          fleet.Node(a), *genuine, new_seq,
          static_cast<Timestamp>(new_seq * 1000)));
      out.expects_pairwise_finding = true;
      break;
    }
    case MisbehaviorClass::kImpersonation: {
      const proto::NodeIdentity& shadow = TestIdentity(label + "-shadow");
      fleet.keys.Register(shadow.id, shadow.keys.pub);
      faults::FaultFilter in_filter;
      in_filter.topic = fleet.Topic(a - 1);
      in_filter.direction = proto::Direction::kIn;
      faults::ImpersonationBehavior impersonate(in_filter, shadow.id,
                                                seed + 55);
      ApplyBehavior(fleet.entries, out.attacker, impersonate);
      out.expects_pairwise_finding = true;
      break;
    }
    case MisbehaviorClass::kTiming: {
      const Timestamp delta =
          a == fleet.links ? static_cast<Timestamp>(-500'000'000)
                           : static_cast<Timestamp>(500'000'000);
      faults::FaultFilter any;
      faults::TimingDisruptionBehavior skew(any, delta, seed + 66);
      ApplyBehavior(fleet.entries, out.attacker, skew);
      break;
    }
  }
  return out;
}

}  // namespace adlp::test
