// The naive logging protocol's fundamental limitation (Section III-B): the
// auditor can detect inconsistencies but can never assign blame.
#include <gtest/gtest.h>

#include "audit/auditor.h"
#include "test_util.h"

namespace adlp::audit {
namespace {

using test::OneTopicTopology;

proto::LogEntry BaseEntry(const std::string& component, proto::Direction dir,
                          std::uint64_t seq, Bytes data,
                          const std::string& peer = "") {
  proto::LogEntry e;
  e.scheme = proto::LogScheme::kBase;
  e.component = component;
  e.topic = "image";
  e.direction = dir;
  e.seq = seq;
  e.timestamp = 100;
  e.message_stamp = 99;
  e.data = std::move(data);
  e.peer = peer;
  return e;
}

crypto::KeyStore NoKeys() { return {}; }

TEST(BaseSchemeTest, ConsistentEntriesAreUnprovable) {
  const auto keys = NoKeys();
  const AuditReport report = Auditor(keys).Audit(
      {BaseEntry("pub", proto::Direction::kOut, 1, {1, 2}, "sub"),
       BaseEntry("sub", proto::Direction::kIn, 1, {1, 2}, "pub")},
      OneTopicTopology("image", "pub", {"sub"}));
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].finding, Finding::kUnprovableConsistent);
  EXPECT_TRUE(report.unfaithful.empty());
}

TEST(BaseSchemeTest, ConflictingEntriesNoBlameAssignable) {
  // The Fig. 3 scenario: the subscriber logs D' != D. Under the naive
  // scheme the auditor sees the conflict but cannot say who lied.
  const auto keys = NoKeys();
  const AuditReport report = Auditor(keys).Audit(
      {BaseEntry("pub", proto::Direction::kOut, 1, {1, 2}, "sub"),
       BaseEntry("sub", proto::Direction::kIn, 1, {9, 9}, "pub")},
      OneTopicTopology("image", "pub", {"sub"}));
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].finding, Finding::kUnprovableConflict);
  EXPECT_TRUE(report.verdicts[0].blamed.empty());
  EXPECT_TRUE(report.unfaithful.empty());
}

TEST(BaseSchemeTest, MissingCounterpartIndistinguishable) {
  // Publisher-only entry: fabrication by the publisher and hiding by the
  // subscriber are indistinguishable — nobody can be blamed.
  const auto keys = NoKeys();
  const AuditReport report = Auditor(keys).Audit(
      {BaseEntry("pub", proto::Direction::kOut, 1, {1}, "sub")},
      OneTopicTopology("image", "pub", {"sub"}));
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].finding, Finding::kUnprovableMissing);
  EXPECT_TRUE(report.unfaithful.empty());
}

TEST(BaseSchemeTest, SubscriberOnlyAlsoUnprovable) {
  const auto keys = NoKeys();
  const AuditReport report = Auditor(keys).Audit(
      {BaseEntry("sub", proto::Direction::kIn, 1, {1}, "pub")},
      OneTopicTopology("image", "pub", {"sub"}));
  EXPECT_EQ(report.verdicts[0].finding, Finding::kUnprovableMissing);
  EXPECT_TRUE(report.unfaithful.empty());
}

TEST(BaseSchemeTest, CanBeExcludedFromAudit) {
  AuditorOptions options;
  options.include_base_scheme = false;
  const auto keys = NoKeys();
  const AuditReport report =
      Auditor(keys, options)
          .Audit({BaseEntry("pub", proto::Direction::kOut, 1, {1}, "sub")},
                 OneTopicTopology("image", "pub", {"sub"}));
  EXPECT_TRUE(report.verdicts.empty());
}

TEST(BaseSchemeTest, SideBySideWithAdlpShowsTheContrast) {
  // Same misbehaviour, two schemes: base yields "cannot determine"; ADLP
  // yields a blamed component. This is the paper's core motivation.
  const auto& pub = test::TestIdentity("pub");
  const auto& sub = test::TestIdentity("sub");
  crypto::KeyStore keys;
  keys.Register("pub", pub.keys.pub);
  keys.Register("sub", sub.keys.pub);

  // Base: conflict, no blame.
  const AuditReport base_report = Auditor(keys).Audit(
      {BaseEntry("pub", proto::Direction::kOut, 1, {1, 2}, "sub"),
       BaseEntry("sub", proto::Direction::kIn, 1, {9, 9}, "pub")},
      OneTopicTopology("image", "pub", {"sub"}));
  EXPECT_TRUE(base_report.unfaithful.empty());

  // ADLP: the falsifying subscriber is pinned (Lemma 3 (ii) machinery
  // covered in lemma3_test; here we just contrast the outcome).
  auto pair = test::MakeFaithfulPair(pub, sub, "image", 1, {1, 2});
  proto::LogEntry falsified = pair.subscriber_entry;
  falsified.data_hash = Bytes(32, 0x77);  // arbitrary wrong claim
  const AuditReport adlp_report = Auditor(keys).Audit(
      {pair.publisher_entry, falsified},
      OneTopicTopology("image", "pub", {"sub"}));
  EXPECT_FALSE(adlp_report.unfaithful.empty());
  EXPECT_TRUE(adlp_report.Blames("sub"));
}

}  // namespace
}  // namespace adlp::audit
