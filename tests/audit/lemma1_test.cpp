// Lemma 1 (Unforgeability): neither side can fabricate a log entry for a
// transmission that did not happen.
#include <gtest/gtest.h>

#include "audit/auditor.h"
#include "faults/fabricate.h"
#include "test_util.h"

namespace adlp::audit {
namespace {

using test::MakeFaithfulPair;
using test::OneTopicTopology;
using test::TestIdentity;

crypto::KeyStore Keys() {
  crypto::KeyStore keys;
  for (const char* name : {"pub", "sub"}) {
    keys.Register(name, TestIdentity(name).keys.pub);
  }
  return keys;
}

faults::FabricationSpec Spec(const std::string& peer, std::uint64_t seq = 1) {
  faults::FabricationSpec spec;
  spec.topic = "image";
  spec.seq = seq;
  spec.timestamp = 500;
  spec.message_stamp = 499;
  spec.data = {0xde, 0xad};
  spec.peer = peer;
  return spec;
}

TEST(Lemma1Test, FabricatedPublisherEntryInvalid) {
  // c_x claims it published data; no subscriber entry, forged random ACK.
  Rng rng(1);
  const proto::LogEntry fake =
      faults::FabricatePublisherEntry(TestIdentity("pub"), Spec("sub"), rng);

  const auto keys = Keys();
  const AuditReport report = Auditor(keys).Audit(
      {fake}, OneTopicTopology("image", "pub", {"sub"}));
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].finding, Finding::kPublisherFabricated);
  EXPECT_TRUE(report.Blames("pub"));
  EXPECT_FALSE(report.Blames("sub"));
  EXPECT_EQ(report.TotalInvalid(), 1u);
}

TEST(Lemma1Test, FabricatedSubscriberEntryInvalid) {
  Rng rng(2);
  const proto::LogEntry fake =
      faults::FabricateSubscriberEntry(TestIdentity("sub"), Spec("pub"), rng);

  const auto keys = Keys();
  const AuditReport report = Auditor(keys).Audit(
      {fake}, OneTopicTopology("image", "pub", {"sub"}));
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].finding, Finding::kSubscriberFabricated);
  EXPECT_TRUE(report.Blames("sub"));
  EXPECT_FALSE(report.Blames("pub"));
}

TEST(Lemma1Test, ReplayedPublisherEntryInvalid) {
  // c_x reuses the subscriber's genuine seq=1 ACK for a fabricated seq=2
  // entry; the sequence number inside the signed digest defeats it.
  const auto& pub = TestIdentity("pub");
  const auto& sub = TestIdentity("sub");
  const auto genuine = MakeFaithfulPair(pub, sub, "image", 1, {1, 2, 3});
  const proto::LogEntry replay =
      faults::FabricateByReplay(pub, genuine.publisher_entry, 2, 2000);

  const auto keys = Keys();
  const AuditReport report = Auditor(keys).Audit(
      {genuine.publisher_entry, genuine.subscriber_entry, replay},
      OneTopicTopology("image", "pub", {"sub"}));

  // seq=1 instance is clean; seq=2 is a fabrication.
  ASSERT_EQ(report.verdicts.size(), 2u);
  for (const auto& v : report.verdicts) {
    if (v.seq == 1) {
      EXPECT_EQ(v.finding, Finding::kOk);
    } else {
      EXPECT_EQ(v.finding, Finding::kPublisherFabricated);
    }
  }
  EXPECT_TRUE(report.Blames("pub"));
  EXPECT_FALSE(report.Blames("sub"));
}

TEST(Lemma1Test, ReplayedSubscriberEntryInvalid) {
  const auto& pub = TestIdentity("pub");
  const auto& sub = TestIdentity("sub");
  const auto genuine = MakeFaithfulPair(pub, sub, "image", 1, {1, 2, 3});
  const proto::LogEntry replay =
      faults::FabricateByReplay(sub, genuine.subscriber_entry, 2, 2000);

  const auto keys = Keys();
  const AuditReport report = Auditor(keys).Audit(
      {genuine.publisher_entry, genuine.subscriber_entry, replay},
      OneTopicTopology("image", "pub", {"sub"}));
  for (const auto& v : report.verdicts) {
    if (v.seq == 2) {
      EXPECT_EQ(v.finding, Finding::kSubscriberFabricated);
    }
  }
  EXPECT_TRUE(report.Blames("sub"));
  EXPECT_FALSE(report.Blames("pub"));
}

TEST(Lemma1Test, Figure8RandomSignatureCannotFrameThePublisher) {
  // Fig. 8(b): the subscriber fabricates (I_y, s_r) with random s_r to
  // accuse the publisher of sending an invalid pair. Under ADLP the
  // transport guarantees Eq. (4), so the auditor pins the fabrication on
  // the subscriber, not the publisher.
  Rng rng(3);
  proto::LogEntry fake =
      faults::FabricateSubscriberEntry(TestIdentity("sub"), Spec("pub"), rng);

  const auto keys = Keys();
  const AuditReport report = Auditor(keys).Audit(
      {fake}, OneTopicTopology("image", "pub", {"sub"}));
  EXPECT_EQ(report.verdicts[0].finding, Finding::kSubscriberFabricated);
  EXPECT_FALSE(report.Blames("pub"));
  EXPECT_TRUE(report.Blames("sub"));
}

TEST(Lemma1Test, DuplicateSeqEntriesFlagged) {
  const auto& pub = TestIdentity("pub");
  const auto& sub = TestIdentity("sub");
  const auto pair = MakeFaithfulPair(pub, sub, "image", 1, {1});
  // The publisher enters its (self-consistent) entry twice.
  const auto keys = Keys();
  const AuditReport report = Auditor(keys).Audit(
      {pair.publisher_entry, pair.publisher_entry, pair.subscriber_entry},
      OneTopicTopology("image", "pub", {"sub"}));
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].finding, Finding::kDuplicateEntry);
  EXPECT_TRUE(report.Blames("pub"));
}

}  // namespace
}  // namespace adlp::audit
