#include "audit/provenance.h"

#include <gtest/gtest.h>

#include "audit/causality.h"
#include "test_util.h"

namespace adlp::audit {
namespace {

using test::MakeFaithfulPair;
using test::TestIdentity;

/// Builds a three-stage pipeline log: sensor -> proc -> sink.
///   sensor publishes "raw" seq 1..n at t = 100*seq
///   proc receives at t+10, publishes "cooked" seq at t+20
///   sink receives at t+30
struct Pipeline {
  std::vector<proto::LogEntry> entries;
  Topology topology;

  explicit Pipeline(int n) {
    const auto& sensor = TestIdentity("sensor");
    const auto& proc = TestIdentity("proc");
    const auto& sink = TestIdentity("sink");
    topology["raw"] = {"sensor", {"proc"}};
    topology["cooked"] = {"proc", {"sink"}};
    for (int s = 1; s <= n; ++s) {
      const Timestamp t = 100 * s;
      auto hop1 = MakeFaithfulPair(sensor, proc, "raw",
                                   static_cast<std::uint64_t>(s), {1}, t);
      hop1.publisher_entry.timestamp = t;
      hop1.subscriber_entry.timestamp = t + 10;
      auto hop2 = MakeFaithfulPair(proc, sink, "cooked",
                                   static_cast<std::uint64_t>(s), {2}, t + 20);
      hop2.publisher_entry.timestamp = t + 20;
      hop2.subscriber_entry.timestamp = t + 30;
      entries.push_back(hop1.publisher_entry);
      entries.push_back(hop1.subscriber_entry);
      entries.push_back(hop2.publisher_entry);
      entries.push_back(hop2.subscriber_entry);
    }
  }
};

TEST(ProvenanceTest, DirectInputsFindLatestPrecedingReceipt) {
  Pipeline pipe(3);
  LogDatabase db(pipe.entries, pipe.topology);
  ProvenanceGraph graph(db);

  const auto inputs = graph.DirectInputs(PairKey{"cooked", 2, "sink"});
  ASSERT_EQ(inputs.size(), 1u);
  EXPECT_EQ(inputs[0], (PairKey{"raw", 2, "proc"}));
}

TEST(ProvenanceTest, SensorHasNoInputs) {
  Pipeline pipe(2);
  LogDatabase db(pipe.entries, pipe.topology);
  ProvenanceGraph graph(db);
  EXPECT_TRUE(graph.DirectInputs(PairKey{"raw", 1, "proc"}).empty());
}

TEST(ProvenanceTest, AncestryWalksToTheSensor) {
  Pipeline pipe(3);
  LogDatabase db(pipe.entries, pipe.topology);
  ProvenanceGraph graph(db);
  const auto ancestry = graph.Ancestry(PairKey{"cooked", 3, "sink"});
  ASSERT_EQ(ancestry.size(), 1u);
  EXPECT_EQ(ancestry[0], (PairKey{"raw", 3, "proc"}));
}

TEST(ProvenanceTest, StaleInputNotAttributed) {
  // proc emits cooked#2 before raw#3 arrives; raw#3 must not appear in
  // cooked#2's provenance.
  Pipeline pipe(3);
  LogDatabase db(pipe.entries, pipe.topology);
  ProvenanceGraph graph(db);
  const auto inputs = graph.DirectInputs(PairKey{"cooked", 2, "sink"});
  ASSERT_EQ(inputs.size(), 1u);
  EXPECT_NE(inputs[0], (PairKey{"raw", 3, "proc"}));
}

TEST(ProvenanceTest, AllEdgesCountMatchesPipeline) {
  Pipeline pipe(4);
  LogDatabase db(pipe.entries, pipe.topology);
  ProvenanceGraph graph(db);
  // Each cooked#s has exactly one input edge.
  EXPECT_EQ(graph.AllEdges().size(), 4u);
}

TEST(ProvenanceTest, CausalDependenciesPassCausalityCheck) {
  Pipeline pipe(3);
  LogDatabase db(pipe.entries, pipe.topology);
  ProvenanceGraph graph(db);
  const auto deps = graph.CausalDependencies();
  ASSERT_FALSE(deps.empty());
  EXPECT_TRUE(CausalityChecker(db).Check(deps).empty());
}

TEST(ProvenanceTest, RenderAncestryMentionsTheChain) {
  Pipeline pipe(2);
  LogDatabase db(pipe.entries, pipe.topology);
  ProvenanceGraph graph(db);
  const std::string trace =
      graph.RenderAncestry(PairKey{"cooked", 2, "sink"});
  EXPECT_NE(trace.find("cooked#2"), std::string::npos);
  EXPECT_NE(trace.find("raw#2"), std::string::npos);
}

TEST(ProvenanceTest, FanInComponentPullsAllInputTopics) {
  // A component with two input topics: both latest receipts attributed.
  const auto& a = TestIdentity("srcA");
  const auto& b = TestIdentity("srcB");
  const auto& fuse = TestIdentity("fuser");
  const auto& out = TestIdentity("consumer");

  Topology topo;
  topo["ta"] = {"srcA", {"fuser"}};
  topo["tb"] = {"srcB", {"fuser"}};
  topo["fused"] = {"fuser", {"consumer"}};

  std::vector<proto::LogEntry> entries;
  auto ha = MakeFaithfulPair(a, fuse, "ta", 1, {1}, 100);
  ha.subscriber_entry.timestamp = 110;
  auto hb = MakeFaithfulPair(b, fuse, "tb", 1, {2}, 120);
  hb.subscriber_entry.timestamp = 130;
  auto hf = MakeFaithfulPair(fuse, out, "fused", 1, {3}, 150);
  hf.publisher_entry.timestamp = 150;
  hf.subscriber_entry.timestamp = 160;
  for (const auto& pair : {ha, hb, hf}) {
    entries.push_back(pair.publisher_entry);
    entries.push_back(pair.subscriber_entry);
  }

  LogDatabase db(entries, topo);
  ProvenanceGraph graph(db);
  const auto inputs = graph.DirectInputs(PairKey{"fused", 1, "consumer"});
  EXPECT_EQ(inputs.size(), 2u);
}

}  // namespace
}  // namespace adlp::audit
