#include "pubsub/message.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace adlp::pubsub {
namespace {

Message SampleMessage() {
  Message msg;
  msg.header.topic = "image";
  msg.header.publisher = "image_feeder";
  msg.header.seq = 42;
  msg.header.stamp = 1234567890;
  msg.payload = {1, 2, 3, 4, 5};
  return msg;
}

TEST(MessageTest, SerializeRoundTrip) {
  const Message msg = SampleMessage();
  EXPECT_EQ(DeserializeMessage(SerializeMessage(msg)), msg);
}

TEST(MessageTest, EmptyPayloadRoundTrip) {
  Message msg = SampleMessage();
  msg.payload.clear();
  EXPECT_EQ(DeserializeMessage(SerializeMessage(msg)), msg);
}

TEST(MessageTest, LargePayloadRoundTrip) {
  Rng rng(1);
  Message msg = SampleMessage();
  msg.payload = rng.RandomBytes(921'641);  // paper Image size
  EXPECT_EQ(DeserializeMessage(SerializeMessage(msg)), msg);
}

TEST(MessageTest, NegativeStampRoundTrip) {
  Message msg = SampleMessage();
  msg.header.stamp = -5;
  EXPECT_EQ(DeserializeMessage(SerializeMessage(msg)).header.stamp, -5);
}

TEST(MessageDigestTest, DeterministicAndStable) {
  const Message msg = SampleMessage();
  EXPECT_EQ(MessageDigest(msg.header, msg.payload),
            MessageDigest(msg.header, msg.payload));
}

TEST(MessageDigestTest, SequenceNumberChangesDigest) {
  // The freshness property: h(seq || D) differs per seq, defeating replay.
  Message msg = SampleMessage();
  const auto d1 = MessageDigest(msg.header, msg.payload);
  msg.header.seq += 1;
  EXPECT_NE(MessageDigest(msg.header, msg.payload), d1);
}

TEST(MessageDigestTest, PayloadChangesDigest) {
  Message msg = SampleMessage();
  const auto d1 = MessageDigest(msg.header, msg.payload);
  msg.payload[0] ^= 1;
  EXPECT_NE(MessageDigest(msg.header, msg.payload), d1);
}

TEST(MessageDigestTest, TopicAndPublisherBound) {
  Message msg = SampleMessage();
  const auto d1 = MessageDigest(msg.header, msg.payload);
  msg.header.topic = "image2";
  EXPECT_NE(MessageDigest(msg.header, msg.payload), d1);
  msg = SampleMessage();
  msg.header.publisher = "impostor";
  EXPECT_NE(MessageDigest(msg.header, msg.payload), d1);
}

TEST(MessageDigestTest, StampBound) {
  // Timestamps are "embedded in message digest" per the paper.
  Message msg = SampleMessage();
  const auto d1 = MessageDigest(msg.header, msg.payload);
  msg.header.stamp += 1;
  EXPECT_NE(MessageDigest(msg.header, msg.payload), d1);
}

TEST(MessageDigestTest, TwoLevelStructure) {
  // digest == h(header || h(payload)): a verifier holding only h(payload)
  // can rebind the digest to this header (the anti-replay property).
  const Message msg = SampleMessage();
  const crypto::Digest inner = PayloadHash(msg.payload);
  EXPECT_EQ(MessageDigest(msg.header, msg.payload),
            MessageDigestFromPayloadHash(msg.header, inner));
}

TEST(MessageDigestTest, StalePayloadHashUnderNewSeqChangesDigest) {
  // Replaying h(D) from seq=42 under seq=43 yields a different signed
  // digest, so old signatures cannot be reused (Lemma 1 freshness).
  const Message msg = SampleMessage();
  const crypto::Digest inner = PayloadHash(msg.payload);
  MessageHeader newer = msg.header;
  newer.seq += 1;
  EXPECT_NE(MessageDigestFromPayloadHash(msg.header, inner),
            MessageDigestFromPayloadHash(newer, inner));
}

}  // namespace
}  // namespace adlp::pubsub
