#include "pubsub/remote_master.h"

#include <gtest/gtest.h>

#include "audit/auditor.h"
#include "test_util.h"

namespace adlp::pubsub {
namespace {

using test::FastOptions;
using test::WaitFor;

proto::ComponentOptions TcpOptions(
    proto::LoggingScheme scheme = proto::LoggingScheme::kAdlp) {
  proto::ComponentOptions opts = FastOptions(scheme);
  opts.transport = TransportKind::kTcp;  // required across processes
  return opts;
}

TEST(RemoteMasterTest, AdvertiseThenSubscribeDelivers) {
  MasterService service(0);
  RemoteMaster pub_master(service.Port());
  RemoteMaster sub_master(service.Port());

  proto::LogServer server;
  Rng rng(1);
  proto::Component pub("camera", pub_master, server, rng, TcpOptions());
  proto::Component sub("viewer", sub_master, server, rng, TcpOptions());

  auto& publisher = pub.Advertise("image");
  std::atomic<int> got{0};
  sub.Subscribe("image", [&](const Message&) { got++; });
  ASSERT_TRUE(publisher.WaitForSubscribers(1));
  for (int i = 0; i < 5; ++i) publisher.Publish(Bytes{1});
  EXPECT_TRUE(WaitFor([&] { return got.load() == 5; }));

  pub.Shutdown();
  sub.Shutdown();
  pub_master.Close();
  sub_master.Close();
  service.Shutdown();
}

TEST(RemoteMasterTest, SubscribeBeforeAdvertiseIsParked) {
  MasterService service(0);
  RemoteMaster pub_master(service.Port());
  RemoteMaster sub_master(service.Port());

  proto::LogServer server;
  Rng rng(2);
  proto::Component sub("viewer", sub_master, server, rng, TcpOptions());
  std::atomic<int> got{0};
  sub.Subscribe("image", [&](const Message&) { got++; });

  proto::Component pub("camera", pub_master, server, rng, TcpOptions());
  auto& publisher = pub.Advertise("image");
  ASSERT_TRUE(publisher.WaitForSubscribers(1));
  publisher.Publish(Bytes{7});
  EXPECT_TRUE(WaitFor([&] { return got.load() == 1; }));

  pub.Shutdown();
  sub.Shutdown();
}

TEST(RemoteMasterTest, DuplicatePublisherRejectedAcrossClients) {
  MasterService service(0);
  RemoteMaster a(service.Port());
  RemoteMaster b(service.Port());
  a.Advertise("t", "first", AdvertiseInfo{nullptr, 1234});
  EXPECT_THROW(b.Advertise("t", "second", AdvertiseInfo{nullptr, 5678}),
               std::logic_error);
}

TEST(RemoteMasterTest, AdvertiseRequiresTcpPort) {
  MasterService service(0);
  RemoteMaster m(service.Port());
  EXPECT_THROW(m.Advertise("t", "pub", AdvertiseInfo{nullptr, 0}),
               std::invalid_argument);
}

TEST(RemoteMasterTest, TopologyVisibleToEveryClient) {
  MasterService service(0);
  RemoteMaster a(service.Port());
  RemoteMaster b(service.Port());
  a.Advertise("image", "camera", AdvertiseInfo{nullptr, 40000});
  b.Subscribe("image", "viewer",
              [](const crypto::ComponentId&, transport::ChannelPtr channel) {
                if (channel) channel->Close();
              });

  EXPECT_TRUE(WaitFor([&] {
    const auto topo = b.Topology();
    const auto it = topo.find("image");
    return it != topo.end() && it->second.publisher == "camera" &&
           it->second.subscribers.size() == 1;
  }));
  EXPECT_EQ(a.PublisherOf("image"), "camera");
  EXPECT_FALSE(a.PublisherOf("ghost").has_value());
  // The service's own view matches.
  EXPECT_EQ(service.Topology().at("image").publisher, "camera");
}

TEST(RemoteMasterTest, ConnectToDeadServiceThrows) {
  std::uint16_t port;
  {
    MasterService service(0);
    port = service.Port();
  }
  EXPECT_THROW(RemoteMaster m(port), std::system_error);
}

TEST(RemoteMasterTest, RpcAfterServiceShutdownThrows) {
  auto service = std::make_unique<MasterService>(0);
  RemoteMaster m(service->Port());
  service.reset();
  EXPECT_THROW(m.Topology(), std::runtime_error);
}

TEST(RemoteMasterTest, FullAdlpFleetAuditsClean) {
  // Three "processes" (three RemoteMaster clients in one test process —
  // the true multi-process variant lives in integration/multiprocess_test):
  // one publisher, two subscribers, shared remote master; logs audit clean.
  MasterService service(0);
  proto::LogServer server;
  Rng rng(3);

  RemoteMaster m1(service.Port()), m2(service.Port()), m3(service.Port());
  proto::Component pub("camera", m1, server, rng, TcpOptions());
  proto::Component s1("lane", m2, server, rng, TcpOptions());
  proto::Component s2("sign", m3, server, rng, TcpOptions());

  std::atomic<int> got{0};
  s1.Subscribe("image", [&](const Message&) { got++; });
  s2.Subscribe("image", [&](const Message&) { got++; });
  auto& publisher = pub.Advertise("image");
  ASSERT_TRUE(publisher.WaitForSubscribers(2));
  for (int i = 0; i < 4; ++i) publisher.Publish(Bytes{1, 2});
  ASSERT_TRUE(WaitFor([&] { return got.load() == 8; }));
  pub.Shutdown();
  s1.Shutdown();
  s2.Shutdown();

  const audit::AuditReport report =
      audit::Auditor(server.Keys()).Audit(server.Entries(),
                                          service.Topology());
  EXPECT_EQ(report.verdicts.size(), 8u);
  EXPECT_TRUE(report.unfaithful.empty()) << report.Render();
}

}  // namespace
}  // namespace adlp::pubsub
