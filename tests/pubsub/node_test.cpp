#include "pubsub/node.h"

#include <gtest/gtest.h>

#include <atomic>

#include "adlp/protocols.h"
#include "test_util.h"

namespace adlp::pubsub {
namespace {

using test::WaitFor;

NodeOptions PlainOptions() {
  NodeOptions opts;
  opts.protocol = std::make_shared<proto::NoLoggingFactory>();
  return opts;
}

TEST(NodeTest, RequiresProtocolFactory) {
  Master master;
  EXPECT_THROW(Node("n", master, NodeOptions{}), std::invalid_argument);
}

TEST(NodeTest, RejectsZeroAckWindow) {
  Master master;
  NodeOptions opts = PlainOptions();
  opts.ack_window = 0;
  EXPECT_THROW(Node("n", master, opts), std::invalid_argument);
}

TEST(NodeTest, BasicDelivery) {
  Master master;
  Node pub("pub", master, PlainOptions());
  Node sub("sub", master, PlainOptions());

  std::atomic<int> got{0};
  Message last;
  std::mutex mu;
  sub.Subscribe("t", [&](const Message& m) {
    std::lock_guard lock(mu);
    last = m;
    got++;
  });
  auto& p = pub.Advertise("t");
  p.Publish(Bytes{1, 2, 3});
  ASSERT_TRUE(WaitFor([&] { return got.load() == 1; }));

  std::lock_guard lock(mu);
  EXPECT_EQ(last.payload, (Bytes{1, 2, 3}));
  EXPECT_EQ(last.header.topic, "t");
  EXPECT_EQ(last.header.publisher, "pub");
  EXPECT_EQ(last.header.seq, 1u);
}

TEST(NodeTest, SequenceNumbersMonotonicFromOne) {
  Master master;
  Node pub("pub", master, PlainOptions());
  Node sub("sub", master, PlainOptions());

  std::vector<std::uint64_t> seqs;
  std::mutex mu;
  std::atomic<int> got{0};
  sub.Subscribe("t", [&](const Message& m) {
    std::lock_guard lock(mu);
    seqs.push_back(m.header.seq);
    got++;
  });
  auto& p = pub.Advertise("t");
  for (int i = 0; i < 10; ++i) p.Publish(Bytes{static_cast<std::uint8_t>(i)});
  ASSERT_TRUE(WaitFor([&] { return got.load() == 10; }));

  std::lock_guard lock(mu);
  for (std::size_t i = 0; i < seqs.size(); ++i) EXPECT_EQ(seqs[i], i + 1);
}

TEST(NodeTest, MultipleSubscribersEachReceive) {
  Master master;
  Node pub("pub", master, PlainOptions());
  std::vector<std::unique_ptr<Node>> subs;
  std::atomic<int> got{0};
  for (int i = 0; i < 4; ++i) {
    subs.push_back(std::make_unique<Node>("sub" + std::to_string(i), master,
                                          PlainOptions()));
    subs.back()->Subscribe("t", [&](const Message&) { got++; });
  }
  auto& p = pub.Advertise("t");
  EXPECT_EQ(p.SubscriberCount(), 4u);
  for (int i = 0; i < 5; ++i) p.Publish(Bytes{7});
  EXPECT_TRUE(WaitFor([&] { return got.load() == 20; }));
}

TEST(NodeTest, SubscribeBeforeAdvertise) {
  Master master;
  Node sub("sub", master, PlainOptions());
  std::atomic<int> got{0};
  sub.Subscribe("t", [&](const Message&) { got++; });

  Node pub("pub", master, PlainOptions());
  auto& p = pub.Advertise("t");
  p.Publish(Bytes{1});
  EXPECT_TRUE(WaitFor([&] { return got.load() == 1; }));
}

TEST(NodeTest, TwoTopicsIndependent) {
  Master master;
  Node pub("pub", master, PlainOptions());
  Node sub("sub", master, PlainOptions());
  std::atomic<int> got_a{0}, got_b{0};
  sub.Subscribe("a", [&](const Message&) { got_a++; });
  sub.Subscribe("b", [&](const Message&) { got_b++; });
  auto& pa = pub.Advertise("a");
  auto& pb = pub.Advertise("b");
  pa.Publish(Bytes{1});
  pa.Publish(Bytes{2});
  pb.Publish(Bytes{3});
  EXPECT_TRUE(WaitFor([&] { return got_a.load() == 2 && got_b.load() == 1; }));
}

TEST(NodeTest, SelfSubscriptionWorks) {
  Master master;
  Node node("loop", master, PlainOptions());
  std::atomic<int> got{0};
  node.Subscribe("t", [&](const Message&) { got++; });
  auto& p = node.Advertise("t");
  p.Publish(Bytes{1});
  EXPECT_TRUE(WaitFor([&] { return got.load() == 1; }));
}

TEST(NodeTest, ShutdownStopsDelivery) {
  Master master;
  Node pub("pub", master, PlainOptions());
  Node sub("sub", master, PlainOptions());
  std::atomic<int> got{0};
  sub.Subscribe("t", [&](const Message&) { got++; });
  auto& p = pub.Advertise("t");
  p.Publish(Bytes{1});
  ASSERT_TRUE(WaitFor([&] { return got.load() == 1; }));
  sub.Shutdown();
  p.Publish(Bytes{2});
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(got.load(), 1);
}

TEST(NodeTest, OperationsAfterShutdownThrow) {
  Master master;
  Node node("n", master, PlainOptions());
  node.Shutdown();
  EXPECT_THROW(node.Advertise("t"), std::logic_error);
  EXPECT_THROW(node.Subscribe("t", [](const Message&) {}), std::logic_error);
}

TEST(NodeTest, TcpTransportDelivery) {
  Master master;
  NodeOptions opts = PlainOptions();
  opts.transport = TransportKind::kTcp;
  Node pub("pub", master, opts);
  Node sub("sub", master, opts);
  std::atomic<int> got{0};
  sub.Subscribe("t", [&](const Message&) { got++; });
  auto& p = pub.Advertise("t");
  ASSERT_TRUE(p.WaitForSubscribers(1));
  for (int i = 0; i < 10; ++i) p.Publish(Bytes{1});
  EXPECT_TRUE(WaitFor([&] { return got.load() == 10; }));
}

TEST(NodeTest, WaitForSubscribersTimesOutWhenNoneArrive) {
  Master master;
  Node pub("pub", master, PlainOptions());
  auto& p = pub.Advertise("lonely");
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(p.WaitForSubscribers(1, std::chrono::milliseconds(50)));
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(45));
}

TEST(NodeTest, LinkModelBandwidthDelaysLargeMessages) {
  Master master;
  NodeOptions opts = PlainOptions();
  opts.link_model.bandwidth_bytes_per_sec = 1'000'000;  // 1 MB/s
  Node pub("pub", master, opts);
  Node sub("sub", master, opts);
  std::atomic<int> got{0};
  sub.Subscribe("t", [&](const Message&) { got++; });
  auto& p = pub.Advertise("t");

  const auto start = std::chrono::steady_clock::now();
  p.Publish(Bytes(100'000, 7));  // 100 KB -> >= 100 ms serialization delay
  ASSERT_TRUE(WaitFor([&] { return got.load() == 1; }));
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(90));
}

TEST(NodeTest, AdvertiseWithTcpPortOnlyStillServesLocalSubscribers) {
  // A master entry carrying only a TCP port (what a cross-process publisher
  // announces) must still connect subscribers in this process: the master
  // synthesizes the TCP connector.
  Master master;
  NodeOptions opts = PlainOptions();
  opts.transport = TransportKind::kTcp;
  Node pub("pub", master, opts);
  Node sub("sub", master, PlainOptions());  // subscriber itself is in-proc
  std::atomic<int> got{0};
  sub.Subscribe("t", [&](const Message&) { got++; });
  auto& p = pub.Advertise("t");
  ASSERT_TRUE(p.WaitForSubscribers(1));
  p.Publish(Bytes{1});
  EXPECT_TRUE(WaitFor([&] { return got.load() == 1; }));
}

TEST(NodeTest, DriveByDisconnectDoesNotDisturbOtherSubscribers) {
  // A subscriber whose connection dies immediately (crash, network drop)
  // must not disturb the publisher's other links.
  Master master;
  NodeOptions opts = PlainOptions();
  opts.transport = TransportKind::kTcp;
  Node pub("pub", master, opts);
  auto& p = pub.Advertise("t");

  Node sub("sub", master, PlainOptions());
  std::atomic<int> got{0};
  sub.Subscribe("t", [&](const Message&) { got++; });
  ASSERT_TRUE(p.WaitForSubscribers(1));

  // The drive-by: attaches a link, then its channel closes at once.
  master.Subscribe("t", "driveby",
                   [](const crypto::ComponentId&, transport::ChannelPtr ch) {
                     ch->Close();
                   });

  p.Publish(Bytes{1});
  EXPECT_TRUE(WaitFor([&] { return got.load() == 1; }));
  p.Publish(Bytes{2});
  EXPECT_TRUE(WaitFor([&] { return got.load() == 2; }));
}

// --- ACK gating ------------------------------------------------------------

/// Test protocol: publisher expects ACKs; subscriber replies only while
/// `replying` is true. Lets tests observe the gating/penalty mechanism
/// without crypto.
class MockAckFactory final : public ProtocolFactory {
 public:
  std::atomic<bool> replying{true};
  std::atomic<int> acks_seen{0};
  std::atomic<int> delivered{0};

  EncodedPublicationPtr Encode(Message message) override {
    auto enc = std::make_shared<EncodedPublication>();
    enc->wire = SerializeMessage(message);
    enc->message = std::move(message);
    return enc;
  }

  std::unique_ptr<PublisherLinkProtocol> MakePublisherLink(
      const std::string&, const crypto::ComponentId&) override {
    class Link final : public PublisherLinkProtocol {
     public:
      explicit Link(MockAckFactory* f) : f_(f) {}
      bool ExpectsAck() const override { return true; }
      void OnSent(const EncodedPublication&) override {}
      void OnAck(const EncodedPublication&, BytesView) override {
        f_->acks_seen++;
      }

     private:
      MockAckFactory* f_;
    };
    return std::make_unique<Link>(this);
  }

  std::unique_ptr<SubscriberLinkProtocol> MakeSubscriberLink(
      const std::string&, const crypto::ComponentId&) override {
    class Link final : public SubscriberLinkProtocol {
     public:
      explicit Link(MockAckFactory* f) : f_(f) {}
      DecodeResult OnMessage(BytesView wire_bytes) override {
        DecodeResult r;
        r.deliver = DeserializeMessage(wire_bytes);
        f_->delivered++;
        if (f_->replying.load()) r.reply = Bytes{0xac};
        return r;
      }

     private:
      MockAckFactory* f_;
    };
    return std::make_unique<Link>(this);
  }
};

TEST(AckGatingTest, AcksFlowWhenSubscriberCooperates) {
  Master master;
  auto factory = std::make_shared<MockAckFactory>();
  NodeOptions opts;
  opts.protocol = factory;
  Node pub("pub", master, opts);
  Node sub("sub", master, opts);
  sub.Subscribe("t", [](const Message&) {});
  auto& p = pub.Advertise("t");
  for (int i = 0; i < 10; ++i) p.Publish(Bytes{1});
  EXPECT_TRUE(WaitFor([&] { return factory->acks_seen.load() == 10; }));
}

TEST(AckGatingTest, NonCooperativeSubscriberStallsTheLink) {
  // The paper's penalty: without the ACK for seq, seq+1 is not sent.
  Master master;
  auto factory = std::make_shared<MockAckFactory>();
  factory->replying = false;
  NodeOptions opts;
  opts.protocol = factory;
  Node pub("pub", master, opts);
  Node sub("sub", master, opts);
  sub.Subscribe("t", [](const Message&) {});
  auto& p = pub.Advertise("t");
  for (int i = 0; i < 5; ++i) p.Publish(Bytes{1});
  // Exactly one message crosses the wire; the rest wait for the missing ACK.
  EXPECT_TRUE(WaitFor([&] { return factory->delivered.load() == 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(factory->delivered.load(), 1);
  EXPECT_EQ(factory->acks_seen.load(), 0);
}

TEST(AckGatingTest, WiderWindowAllowsMoreInFlight) {
  Master master;
  auto factory = std::make_shared<MockAckFactory>();
  factory->replying = false;
  NodeOptions opts;
  opts.protocol = factory;
  opts.ack_window = 3;
  Node pub("pub", master, opts);
  Node sub("sub", master, opts);
  sub.Subscribe("t", [](const Message&) {});
  auto& p = pub.Advertise("t");
  for (int i = 0; i < 10; ++i) p.Publish(Bytes{1});
  EXPECT_TRUE(WaitFor([&] { return factory->delivered.load() == 3; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(factory->delivered.load(), 3);
}

TEST(AckGatingTest, BoundedQueueDropsWhenStalled) {
  Master master;
  auto factory = std::make_shared<MockAckFactory>();
  factory->replying = false;
  NodeOptions opts;
  opts.protocol = factory;
  opts.max_queue = 2;
  Node pub("pub", master, opts);
  Node sub("sub", master, opts);
  sub.Subscribe("t", [](const Message&) {});
  auto& p = pub.Advertise("t");
  ASSERT_TRUE(WaitFor([&] { return p.SubscriberCount() == 1; }));
  for (int i = 0; i < 20; ++i) p.Publish(Bytes{1});
  // One in flight + at most 2 queued; the rest must have been dropped.
  EXPECT_TRUE(WaitFor([&] { return p.DroppedCount() >= 17; }));
}

}  // namespace
}  // namespace adlp::pubsub
