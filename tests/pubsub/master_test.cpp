#include "pubsub/master.h"

#include <gtest/gtest.h>

#include "transport/inproc.h"

namespace adlp::pubsub {
namespace {

ConnectFn DummyConnect() {
  return [](const crypto::ComponentId&) {
    return transport::MakeInProcChannelPair().b;
  };
}

TEST(MasterTest, PublisherOfUnknownTopicIsNull) {
  Master master;
  EXPECT_FALSE(master.PublisherOf("nope").has_value());
}

TEST(MasterTest, AdvertiseThenLookup) {
  Master master;
  master.Advertise("image", "camera", DummyConnect());
  EXPECT_EQ(master.PublisherOf("image"), "camera");
}

TEST(MasterTest, DuplicatePublisherThrows) {
  // The system model forbids two publishers of the same data type.
  Master master;
  master.Advertise("image", "camera", DummyConnect());
  EXPECT_THROW(master.Advertise("image", "camera2", DummyConnect()),
               std::logic_error);
}

TEST(MasterTest, SubscribeAfterAdvertiseConnectsImmediately) {
  Master master;
  bool connected = false;
  master.Advertise("image", "camera", DummyConnect());
  master.Subscribe("image", "viewer",
                   [&](const crypto::ComponentId& publisher,
                       transport::ChannelPtr channel) {
                     EXPECT_EQ(publisher, "camera");
                     EXPECT_TRUE(channel != nullptr);
                     connected = true;
                   });
  EXPECT_TRUE(connected);
}

TEST(MasterTest, SubscribeBeforeAdvertiseIsParked) {
  Master master;
  bool connected = false;
  master.Subscribe("image", "viewer",
                   [&](const crypto::ComponentId&, transport::ChannelPtr) {
                     connected = true;
                   });
  EXPECT_FALSE(connected);
  master.Advertise("image", "camera", DummyConnect());
  EXPECT_TRUE(connected);
}

TEST(MasterTest, MultiplePendingSubscribersAllConnected) {
  Master master;
  int connected = 0;
  for (int i = 0; i < 3; ++i) {
    master.Subscribe("scan", "sub" + std::to_string(i),
                     [&](const crypto::ComponentId&, transport::ChannelPtr) {
                       ++connected;
                     });
  }
  master.Advertise("scan", "lidar", DummyConnect());
  EXPECT_EQ(connected, 3);
}

TEST(MasterTest, TopologyReflectsGraph) {
  Master master;
  master.Advertise("image", "camera", DummyConnect());
  master.Subscribe("image", "lane",
                   [](const crypto::ComponentId&, transport::ChannelPtr) {});
  master.Subscribe("image", "sign",
                   [](const crypto::ComponentId&, transport::ChannelPtr) {});
  master.Advertise("quiet", "nobody_listens", DummyConnect());

  const auto topo = master.Topology();
  ASSERT_TRUE(topo.contains("image"));
  EXPECT_EQ(topo.at("image").publisher, "camera");
  EXPECT_EQ(topo.at("image").subscribers,
            (std::vector<crypto::ComponentId>{"lane", "sign"}));
  ASSERT_TRUE(topo.contains("quiet"));
  EXPECT_TRUE(topo.at("quiet").subscribers.empty());
}

TEST(MasterTest, TopologyOmitsUnadvertisedTopics) {
  Master master;
  master.Subscribe("pending", "sub",
                   [](const crypto::ComponentId&, transport::ChannelPtr) {});
  EXPECT_TRUE(master.Topology().empty());
}

TEST(MasterTest, ConnectFnReceivesSubscriberId) {
  Master master;
  crypto::ComponentId seen;
  master.Advertise("t", "pub", [&](const crypto::ComponentId& subscriber) {
    seen = subscriber;
    return transport::MakeInProcChannelPair().b;
  });
  master.Subscribe("t", "the-subscriber",
                   [](const crypto::ComponentId&, transport::ChannelPtr) {});
  EXPECT_EQ(seen, "the-subscriber");
}

}  // namespace
}  // namespace adlp::pubsub
