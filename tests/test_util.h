// Shared test utilities: cheap deterministic identities, a two-component
// harness, and helpers for constructing honest log-entry pairs without
// spinning up the full pipeline.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "adlp/component.h"
#include "adlp/log_server.h"
#include "common/rng.h"
#include "faults/fabricate.h"
#include "pubsub/master.h"

namespace adlp::test {

/// Tests use 512-bit RSA for speed; the protocol logic is key-size agnostic
/// (benches use 1024 to match the paper's signature sizes).
inline constexpr std::size_t kTestRsaBits = 512;

/// Deterministic identity, cached per (name): repeated calls are free.
inline const proto::NodeIdentity& TestIdentity(const std::string& name) {
  static std::map<std::string, proto::NodeIdentity> cache;
  static std::mutex mu;
  std::lock_guard lock(mu);
  auto it = cache.find(name);
  if (it == cache.end()) {
    // Seed from the name so identities differ but are reproducible.
    std::uint64_t seed = 0xadf0;
    for (char c : name) seed = seed * 131 + static_cast<unsigned char>(c);
    Rng rng(seed);
    it = cache.emplace(name, proto::MakeNodeIdentity(name, rng, kTestRsaBits))
             .first;
  }
  return it->second;
}

/// Spins until `predicate` holds or `timeout` elapses. Returns the final
/// predicate value.
inline bool WaitFor(const std::function<bool()>& predicate,
                    std::chrono::milliseconds timeout =
                        std::chrono::milliseconds(5000)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!predicate()) {
    if (std::chrono::steady_clock::now() > deadline) return predicate();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

/// Component options preset for tests: small keys, wall clock.
inline proto::ComponentOptions FastOptions(
    proto::LoggingScheme scheme = proto::LoggingScheme::kAdlp) {
  proto::ComponentOptions opts;
  opts.scheme = scheme;
  opts.rsa_bits = kTestRsaBits;
  return opts;
}

/// A master + log server + components, torn down in order.
struct MiniSystem {
  pubsub::Master master;
  proto::LogServer server;
  Rng rng{424242};
  std::map<std::string, std::unique_ptr<proto::Component>> components;

  proto::Component& Add(const std::string& name,
                        proto::ComponentOptions opts = FastOptions()) {
    auto [it, inserted] = components.emplace(
        name,
        std::make_unique<proto::Component>(name, master, server, rng, opts));
    return *it->second;
  }

  proto::Component& operator[](const std::string& name) {
    return *components.at(name);
  }

  void ShutdownAll() {
    for (auto& [name, c] : components) c->Shutdown();
  }

  ~MiniSystem() { ShutdownAll(); }
};

/// Honest publisher/subscriber entry pair for a transmission of `data` —
/// exactly what a faithful exchange produces (the ForgeColludingPair helper
/// with both real identities *is* the honest pair; collusion and honesty
/// are indistinguishable by construction, which is the paper's point).
inline faults::ForgedPair MakeFaithfulPair(
    const proto::NodeIdentity& publisher, const proto::NodeIdentity& subscriber,
    const std::string& topic, std::uint64_t seq, Bytes data,
    Timestamp t_pub = 1000, bool subscriber_stores_hash = true) {
  faults::FabricationSpec spec;
  spec.topic = topic;
  spec.seq = seq;
  spec.timestamp = t_pub;
  spec.message_stamp = t_pub - 1;
  spec.data = std::move(data);
  spec.peer = subscriber.id;
  return faults::ForgeColludingPair(publisher, subscriber, spec,
                                    subscriber_stores_hash);
}

/// Topology for a single topic with one subscriber.
inline std::map<std::string, pubsub::Master::TopicInfo> OneTopicTopology(
    const std::string& topic, const crypto::ComponentId& publisher,
    const std::vector<crypto::ComponentId>& subscribers) {
  std::map<std::string, pubsub::Master::TopicInfo> topo;
  topo[topic] = pubsub::Master::TopicInfo{publisher, subscribers};
  return topo;
}

}  // namespace adlp::test
