// Catalog of the process-wide metric handles the runtime records into.
//
// Each accessor resolves its handle in the global registry exactly once
// (function-local static reference) and returns it by reference, so an
// instrument site pays the registry lookup on first use and a bare atomic
// op afterwards. Keeping every name, label set, and help string here makes
// the full metric surface greppable in one file.
#pragma once

#include "obs/metrics.h"
#include "obs/trace.h"

namespace adlp::obs::metric {

// --- pubsub -----------------------------------------------------------------

inline Counter& PublishTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_publish_total", {}, "Publications encoded and fanned out");
  return c;
}

inline Histogram& PublishEncodeNs() {
  static Histogram& h = MetricsRegistry::Global().GetHistogram(
      "adlp_publish_encode_ns", {}, {},
      "Per-publication encode wall time (hash + sign + serialize)");
  return h;
}

inline Counter& DeliverTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_deliver_total", {}, "Messages delivered to application callbacks");
  return c;
}

inline Histogram& DeliverNs() {
  static Histogram& h = MetricsRegistry::Global().GetHistogram(
      "adlp_deliver_ns", {}, {},
      "Subscriber-side handling wall time (decode + verify + sign + ack)");
  return h;
}

inline Counter& PublishQueueDropTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_publish_queue_drop_total", {},
      "Publications dropped by full per-link send queues");
  return c;
}

// --- protocol crypto + acknowledgements -------------------------------------

inline Histogram& SignNs() {
  static Histogram& h = MetricsRegistry::Global().GetHistogram(
      "adlp_sign_ns", {}, {}, "Signature computation wall time");
  return h;
}

inline Histogram& VerifyNs() {
  static Histogram& h = MetricsRegistry::Global().GetHistogram(
      "adlp_verify_ns", {}, {},
      "Inline (strict-mode) signature verification wall time");
  return h;
}

inline Histogram& HashNs() {
  static Histogram& h = MetricsRegistry::Global().GetHistogram(
      "adlp_hash_ns", {}, {}, "Payload/message digest wall time");
  return h;
}

inline Counter& AckSentTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_ack_sent_total", {}, "Acknowledgements signed and returned");
  return c;
}

inline Counter& AckReceivedTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_ack_received_total", {},
      "Acknowledgements matched to in-flight publications");
  return c;
}

inline Histogram& AckRttNs() {
  static Histogram& h = MetricsRegistry::Global().GetHistogram(
      "adlp_ack_rtt_ns", {}, {},
      "Publication send to acknowledgement receipt round trip");
  return h;
}

inline Gauge& PendingAcks() {
  static Gauge& g = MetricsRegistry::Global().GetGauge(
      "adlp_pending_acks", {},
      "Publications sent and awaiting acknowledgement, all links");
  return g;
}

inline Counter& ProtocolRejectedTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_protocol_rejected_total", {},
      "Inbound frames dropped by strict-mode verification or parse failure");
  return c;
}

// --- logging pipeline -------------------------------------------------------

inline Counter& LogEnteredTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_log_entered_total", {}, "Log entries entered into node queues");
  return c;
}

inline Gauge& LogQueueDepth() {
  static Gauge& g = MetricsRegistry::Global().GetGauge(
      "adlp_log_queue_depth", {},
      "Entries waiting in per-node logging queues");
  return g;
}

inline Counter& SinkSpooledTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_sink_spooled_total", {},
      "Frames admitted to resilient-sink spools");
  return c;
}

inline Gauge& SinkSpoolDepth() {
  static Gauge& g = MetricsRegistry::Global().GetGauge(
      "adlp_sink_spool_depth", {},
      "Frames currently spooled across all resilient sinks");
  return g;
}

inline Gauge& SinkSpoolHighWater() {
  static Gauge& g = MetricsRegistry::Global().GetGauge(
      "adlp_sink_spool_high_water", {},
      "Maximum spool depth observed by any resilient sink");
  return g;
}

inline Counter& SinkSentTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_sink_sent_total", {},
      "Frames successfully handed to the logger transport");
  return c;
}

inline Counter& SinkDroppedTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_sink_dropped_total", {},
      "Frames evicted by the oldest-drop spool overflow policy");
  return c;
}

inline Counter& SinkReconnectTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_sink_reconnect_total", {},
      "Logger connections re-established after a failure");
  return c;
}

inline Counter& SinkConnectFailTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_sink_connect_fail_total", {}, "Failed logger connection attempts");
  return c;
}

// --- replicated logger ------------------------------------------------------

inline Counter& EpochSealedTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_epoch_sealed_total", {},
      "Merkle epochs sealed and signed by log servers");
  return c;
}

inline Counter& SinkAckedTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_sink_acked_total", {},
      "Spooled frames released by cumulative logger acks");
  return c;
}

inline Counter& ReplCommittedTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_repl_committed_total", {},
      "Upload frames acknowledged by a write quorum of replicas");
  return c;
}

inline Histogram& ReplCommitNs() {
  static Histogram& h = MetricsRegistry::Global().GetHistogram(
      "adlp_repl_commit_ns", {}, {},
      "Append to quorum acknowledgement latency");
  return h;
}

inline Counter& ReplicaFindingsTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_replica_findings_total", {},
      "Replica-level audit findings (divergence, bad seals, equivocation)");
  return c;
}

inline Counter& SinkEvictedUnackedTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_sink_evicted_unacked_total", {},
      "Acked-mode spool evictions of frames the logger never acknowledged "
      "(past the spool horizon; only anti-entropy repair can recover them)");
  return c;
}

// --- anti-entropy repair ----------------------------------------------------

inline Counter& RepairRoundsTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_repair_rounds_total", {},
      "Anti-entropy gossip rounds run by repair agents");
  return c;
}

inline Counter& RepairEpochsTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_repair_epochs_total", {},
      "Epochs repaired or adopted from peers after Merkle verification");
  return c;
}

inline Counter& RepairRecordsTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_repair_records_total", {},
      "Records appended by verified peer repair");
  return c;
}

inline Counter& RepairRejectsTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_repair_rejects_total", {},
      "Peer-served repair material rejected by verification");
  return c;
}

inline Counter& RepairGapHeldTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_repair_gap_held_total", {},
      "Tagged upload frames refused because their seq skips the per-sink "
      "watermark (post-eviction replay held until repair fills the gap)");
  return c;
}

// --- transport --------------------------------------------------------------

inline Counter& TransportBytes(const char* kind, const char* dir) {
  return MetricsRegistry::Global().GetCounter(
      "adlp_transport_bytes_total", {{"kind", kind}, {"dir", dir}},
      "Payload bytes moved through transport channels");
}

inline Counter& TransportFrames(const char* kind, const char* dir) {
  return MetricsRegistry::Global().GetCounter(
      "adlp_transport_frames_total", {{"kind", kind}, {"dir", dir}},
      "Frames moved through transport channels");
}

inline Counter& FaultInjectedTotal(const char* fault) {
  return MetricsRegistry::Global().GetCounter(
      "adlp_fault_injected_total", {{"fault", fault}},
      "Faults injected by FaultInjectingChannel decorators");
}

// --- reactor ----------------------------------------------------------------

inline Counter& ReactorLoopIterations() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_reactor_loop_iterations_total", {},
      "Epoll event-loop wakeups across all reactor threads");
  return c;
}

inline Histogram& ReactorReadyEvents() {
  static Histogram& h = MetricsRegistry::Global().GetHistogram(
      "adlp_reactor_ready_events", {},
      {0, 1, 2, 4, 8, 16, 32, 64, 128, 256},
      "Ready fds returned per epoll_wait call");
  return h;
}

inline Gauge& ReactorFdsWatched() {
  static Gauge& g = MetricsRegistry::Global().GetGauge(
      "adlp_reactor_fds_watched", {},
      "File descriptors currently registered with reactor loops");
  return g;
}

inline Histogram& ReactorWakeupNs() {
  static Histogram& h = MetricsRegistry::Global().GetHistogram(
      "adlp_reactor_wakeup_ns", {}, {},
      "Cross-thread wakeup latency: eventfd signal to loop dispatch");
  return h;
}

inline Counter& ReactorTimersFired() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_reactor_timers_fired_total", {},
      "Timer-wheel callbacks dispatched by reactor loops");
  return c;
}

inline Counter& ReactorAcceptDeferredTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_reactor_accept_deferred_total", {},
      "Accept rounds deferred because the process hit its fd limit");
  return c;
}

// --- audit ------------------------------------------------------------------

inline Counter& AuditRunsTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_audit_runs_total", {}, "Audit pipeline invocations");
  return c;
}

inline Counter& AuditPairsTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_audit_pairs_total", {},
      "Transmission pairs evaluated by the auditor");
  return c;
}

inline Histogram& AuditShardNs() {
  static Histogram& h = MetricsRegistry::Global().GetHistogram(
      "adlp_audit_shard_ns", {}, {},
      "Per-shard wall time in the parallel audit path");
  return h;
}

inline Histogram& AuditWallNs() {
  static Histogram& h = MetricsRegistry::Global().GetHistogram(
      "adlp_audit_wall_ns", {}, {}, "End-to-end audit wall time");
  return h;
}

inline Counter& VerifyCacheLookupsTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_verify_cache_lookups_total", {},
      "Signature verifications answered via the memo cache (lookups)");
  return c;
}

inline Counter& VerifyCacheHitsTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_verify_cache_hits_total", {},
      "Signature verifications answered via the memo cache (hits)");
  return c;
}

// --- streaming audit --------------------------------------------------------

inline Counter& StreamingEntriesTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_streaming_entries_total", {},
      "Log entries consumed by streaming auditors");
  return c;
}

inline Counter& StreamingEpochsTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_streaming_epochs_total", {},
      "Epochs sealed by streaming auditors");
  return c;
}

inline Counter& StreamingFlaggedTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_streaming_flagged_total", {},
      "Pairs flagged online with a non-ok verdict at seal time");
  return c;
}

inline Counter& StreamingLateEntriesTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_streaming_late_entries_total", {},
      "Entries that re-opened an already-sealed pair");
  return c;
}

inline Counter& StreamingEvictedPairsTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_streaming_evicted_pairs_total", {},
      "Open pairs force-sealed at the streaming memory bound");
  return c;
}

inline Histogram& StreamingDetectNs() {
  static Histogram& h = MetricsRegistry::Global().GetHistogram(
      "adlp_streaming_detect_ns", {}, {},
      "Online detection latency: first entry arrival to flagged seal");
  return h;
}

inline Gauge& StreamingOpenPairs() {
  static Gauge& g = MetricsRegistry::Global().GetGauge(
      "adlp_streaming_open_pairs", {},
      "Pairs currently open (unsealed) across streaming auditors");
  return g;
}

inline Gauge& StreamingOpenShards() {
  static Gauge& g = MetricsRegistry::Global().GetGauge(
      "adlp_streaming_open_shards", {},
      "Shards with at least one open pair across streaming auditors");
  return g;
}

// --- log server upload tap --------------------------------------------------

inline Counter& TapPushedTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_log_tap_pushed_total", {},
      "Upload events admitted to log-server tap queues");
  return c;
}

inline Counter& TapDroppedTotal() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "adlp_log_tap_dropped_total", {},
      "Upload events dropped by full tap queues (drop-newest policy)");
  return c;
}

inline Gauge& TapDepth() {
  static Gauge& g = MetricsRegistry::Global().GetGauge(
      "adlp_log_tap_depth", {},
      "Events waiting in log-server tap queues");
  return g;
}

inline Gauge& TapHighWater() {
  static Gauge& g = MetricsRegistry::Global().GetGauge(
      "adlp_log_tap_high_water", {},
      "Maximum tap-queue depth observed");
  return g;
}

}  // namespace adlp::obs::metric
