// Snapshot exporters: JSON (for BENCH-style tooling and the --metrics-out
// flags) and Prometheus text exposition format (for scraping).
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace adlp::obs {

/// Pretty-printed JSON document: {"counters": [...], "gauges": [...],
/// "histograms": [...]} plus, when `trace` is non-null, a "trace" array of
/// the buffered events.
std::string ToJson(const MetricsSnapshot& snapshot,
                   const TraceLog* trace = nullptr);

/// Prometheus text exposition format (version 0.0.4): one `# HELP`/`# TYPE`
/// pair per metric family, histograms as cumulative `_bucket{le=...}`
/// series plus `_sum` and `_count`.
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline become \\, \", and \n. Exposed for tests.
std::string EscapeLabelValue(std::string_view value);

/// Renders the global registry (and trace) to `path`. A path ending in
/// ".prom" gets Prometheus text, anything else JSON. Returns false if the
/// file cannot be written.
bool WriteMetricsFile(const std::string& path);

}  // namespace adlp::obs
