// Process-wide runtime metrics: counters, gauges, and fixed-bucket latency
// histograms behind a MetricsRegistry.
//
// The paper's evaluation (Tables I-IV, Figs. 13-15) is measurement-driven,
// but those numbers come from offline benches. This layer gives the live
// system the same observability: every hot path records into pre-resolved
// metric handles, and a snapshot (JSON or Prometheus text, see export.h)
// can be pulled at any time without disturbing the writers.
//
// Design constraints, in order:
//
//   * The record path is lock-free and allocation-free: Counter::Add is one
//     relaxed fetch_add on a cache-line-private shard, Histogram::Record is
//     a branchless bucket lookup plus two relaxed fetch_adds. Target is
//     < 100 ns per record (bench/obs_bench measures it and writes
//     BENCH_obs.json).
//   * Registration is rare and may take a mutex; instrument sites resolve
//     their handles once (static local or member) and never touch the
//     registry map again.
//   * Handles are stable for the life of the process: the registry never
//     deletes a metric, and Reset() (tests only) zeroes values in place so
//     cached references stay valid.
//   * No dependencies outside the C++ standard library.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace adlp::obs {

/// Sorted (key, value) pairs identifying one time series of a metric name,
/// Prometheus-style: adlp_transport_bytes_total{dir="tx",kind="tcp"}.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace internal {

/// One cache line per shard so concurrent writers never false-share.
struct alignas(64) PaddedAtomic {
  std::atomic<std::uint64_t> value{0};
};

/// Stable small shard index for the calling thread. Threads hash onto
/// kShards slots; collisions only cost contention, never correctness.
inline std::size_t ThreadShard(std::size_t shards) {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id % shards;
}

}  // namespace internal

/// Monotonically increasing event count. Sharded across cache lines: the
/// record path touches only the calling thread's shard, the read path sums
/// all shards (reads may observe a value mid-update sequence; each shard's
/// count itself is always exact).
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void Add(std::uint64_t n = 1) noexcept {
    shards_[internal::ThreadShard(kShards)].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  std::uint64_t Value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Zeroes all shards (test isolation; racy against concurrent Add).
  void Reset() noexcept {
    for (auto& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  std::array<internal::PaddedAtomic, kShards> shards_;
};

/// A value that can go up and down (queue depth, spool depth, pending ACKs).
class Gauge {
 public:
  void Set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(std::int64_t d = 1) noexcept {
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  void Sub(std::int64_t d = 1) noexcept {
    value_.fetch_sub(d, std::memory_order_relaxed);
  }

  /// Monotonic raise-to-at-least update (high-water marks).
  void SetMax(std::int64_t v) noexcept {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

  std::int64_t Value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void Reset() noexcept { Set(0); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram. Bucket i counts samples <= bounds[i]; one
/// implicit overflow bucket counts everything above the last bound.
/// Record is lock-free: a linear scan over the (small, immutable) bounds
/// array, then relaxed fetch_adds on the bucket and the sum.
class Histogram {
 public:
  struct Snapshot {
    std::vector<std::uint64_t> bounds;  // upper bounds, ascending
    std::vector<std::uint64_t> counts;  // bounds.size() + 1 (last = overflow)
    std::uint64_t count = 0;            // total samples
    std::uint64_t sum = 0;              // sum of recorded values
  };

  /// `bounds` must be ascending and non-empty.
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void Record(std::uint64_t value) noexcept {
    std::size_t i = 0;
    while (i < bounds_.size() && value > bounds_[i]) ++i;
    counts_[i].value.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  Snapshot Snap() const;

  const std::vector<std::uint64_t>& Bounds() const { return bounds_; }

  void Reset() noexcept;

 private:
  const std::vector<std::uint64_t> bounds_;
  // One atomic per bucket. Buckets of one histogram may share cache lines —
  // unlike a counter, a histogram's buckets are written by the same sites,
  // so padding every bucket would cost memory for little contention win.
  std::vector<internal::PaddedAtomic> counts_;
  std::atomic<std::uint64_t> sum_{0};
};

/// 1-2-5 series of nanosecond bounds from 100 ns to 10 s: one size fits the
/// crypto (µs..ms) and network (ms) latencies this system measures.
const std::vector<std::uint64_t>& DefaultLatencyBucketsNs();

// ---------------------------------------------------------------------------

/// Everything needed to render a registry without touching live metrics.
struct MetricsSnapshot {
  struct CounterSample {
    std::string name;
    Labels labels;
    std::string help;
    std::uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    Labels labels;
    std::string help;
    std::int64_t value = 0;
  };
  struct HistogramSample {
    std::string name;
    Labels labels;
    std::string help;
    Histogram::Snapshot data;
  };

  // Each vector is sorted by (name, labels): deterministic output for a
  // given set of values regardless of registration order.
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// Owner of all metrics. `Global()` is the process-wide instance every
/// instrument site uses; tests may build private registries.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  /// Finds or creates. The returned reference is valid for the registry's
  /// lifetime. `help` is recorded on first registration only.
  Counter& GetCounter(const std::string& name, Labels labels = {},
                      const std::string& help = "") EXCLUDES(mu_);
  Gauge& GetGauge(const std::string& name, Labels labels = {},
                  const std::string& help = "") EXCLUDES(mu_);
  /// `bounds` applies on first registration only; later calls with the same
  /// (name, labels) return the existing histogram unchanged.
  Histogram& GetHistogram(const std::string& name, Labels labels = {},
                          std::vector<std::uint64_t> bounds = {},
                          const std::string& help = "") EXCLUDES(mu_);

  MetricsSnapshot Snapshot() const EXCLUDES(mu_);

  /// Zeroes every metric in place (handles stay valid). Test isolation only.
  void Reset() EXCLUDES(mu_);

 private:
  struct Key {
    std::string name;
    Labels labels;
    bool operator<(const Key& o) const {
      if (name != o.name) return name < o.name;
      return labels < o.labels;
    }
  };
  template <typename T>
  struct Entry {
    std::unique_ptr<T> metric;
    std::string help;
  };

  // mu_ guards the registration maps only; the metric objects the maps own
  // are internally atomic and are updated by instrument sites without it.
  mutable Mutex mu_;
  std::map<Key, Entry<Counter>> counters_ GUARDED_BY(mu_);
  std::map<Key, Entry<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<Key, Entry<Histogram>> histograms_ GUARDED_BY(mu_);
};

/// Scoped wall-time measurement into a histogram of nanoseconds.
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(Histogram& hist);
  ~ScopedTimerNs();

  ScopedTimerNs(const ScopedTimerNs&) = delete;
  ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;

 private:
  Histogram& hist_;
  std::int64_t start_ns_;
};

}  // namespace adlp::obs
