// Bounded ring-buffer trace of protocol events.
//
// Metrics (metrics.h) answer "how many / how fast"; the trace answers "what
// happened, in what order" — the last N protocol events (publish, sign,
// ack-sent/ack-received, spool/flush, reconnect, audit-shard start/finish)
// with timestamps, cheap enough to leave on in production. The ring
// overwrites oldest-first, so after any incident the buffer holds the most
// recent history, which is what a post-mortem wants.
//
// Recording takes one short mutex-protected critical section (copy a small
// POD into a preallocated slot — no allocation, no I/O). Protocol events are
// orders of magnitude rarer than counter records, so the simple lock is
// well under the observability budget and keeps the structure exact under
// TSan, unlike a seqlock.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace adlp::obs {

enum class TraceKind : std::uint8_t {
  kPublish = 0,       // publisher encoded + fanned out a publication
  kDeliver,           // subscriber delivered a message to the application
  kAckSent,           // subscriber signed and returned an ACK
  kAckReceived,       // publisher matched an ACK to an in-flight publication
  kLogEnter,          // a log entry entered the per-node logging queue
  kSpool,             // resilient sink queued a frame for delivery
  kSpoolDrop,         // spool overflow evicted the oldest frame
  kFlush,             // resilient sink wrote a frame to a live connection
  kReconnect,         // resilient sink re-established its connection
  kConnectFail,       // a connection attempt failed
  kFaultInjected,     // FaultInjectingChannel perturbed a frame
  kAuditShardStart,   // a parallel audit worker picked up a shard
  kAuditShardFinish,  // ... and finished it
};

std::string_view TraceKindName(TraceKind kind);

/// One recorded event. POD with inline storage only: recording never
/// allocates. `detail` is a short free-form tag (topic, component id);
/// longer strings are truncated.
struct TraceEvent {
  static constexpr std::size_t kDetailCapacity = 30;

  TraceKind kind = TraceKind::kPublish;
  std::int64_t t_ns = 0;  // steady-clock timestamp
  std::uint64_t value = 0;  // event-specific (seq, spool depth, shard size…)
  std::array<char, kDetailCapacity + 1> detail{};  // NUL-terminated

  std::string_view Detail() const { return detail.data(); }
};

class TraceLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit TraceLog(std::size_t capacity = kDefaultCapacity);

  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  /// Process-wide instance shared by all instrument sites.
  static TraceLog& Global();

  void Record(TraceKind kind, std::string_view detail = {},
              std::uint64_t value = 0) EXCLUDES(mu_);

  /// Events currently held, oldest first.
  std::vector<TraceEvent> Snapshot() const EXCLUDES(mu_);

  /// Total events ever recorded (dropped ones included).
  std::uint64_t RecordedCount() const EXCLUDES(mu_);

  std::size_t Capacity() const EXCLUDES(mu_) {
    // The ring never resizes after construction, but taking the lock keeps
    // the field uniformly guarded; Capacity() is not on any hot path.
    MutexLock lock(mu_);
    return ring_.size();
  }

  void Reset() EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::vector<TraceEvent> ring_ GUARDED_BY(mu_);
  // Total recorded; next slot is next_ % capacity.
  std::uint64_t next_ GUARDED_BY(mu_) = 0;
};

}  // namespace adlp::obs
