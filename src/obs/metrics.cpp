#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace adlp::obs {

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: bounds must be non-empty");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("Histogram: bounds must be strictly ascending");
  }
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.reserve(counts_.size());
  for (const auto& c : counts_) {
    snap.counts.push_back(c.value.load(std::memory_order_relaxed));
    snap.count += snap.counts.back();
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() noexcept {
  for (auto& c : counts_) c.value.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

const std::vector<std::uint64_t>& DefaultLatencyBucketsNs() {
  static const std::vector<std::uint64_t> buckets = [] {
    std::vector<std::uint64_t> b;
    // 100 ns, 200, 500, 1 µs, ... 10 s: a 1-2-5 decade ladder.
    for (std::uint64_t decade = 100; decade <= 10'000'000'000ull;
         decade *= 10) {
      b.push_back(decade);
      b.push_back(decade * 2);
      b.push_back(decade * 5);
    }
    return b;
  }();
  return buckets;
}

// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* instance = new MetricsRegistry();  // never destroyed
  return *instance;
}

Counter& MetricsRegistry::GetCounter(const std::string& name, Labels labels,
                                     const std::string& help) {
  MutexLock lock(mu_);
  auto& entry = counters_[Key{name, std::move(labels)}];
  if (!entry.metric) {
    entry.metric = std::make_unique<Counter>();
    entry.help = help;
  }
  return *entry.metric;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name, Labels labels,
                                 const std::string& help) {
  MutexLock lock(mu_);
  auto& entry = gauges_[Key{name, std::move(labels)}];
  if (!entry.metric) {
    entry.metric = std::make_unique<Gauge>();
    entry.help = help;
  }
  return *entry.metric;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         Labels labels,
                                         std::vector<std::uint64_t> bounds,
                                         const std::string& help) {
  MutexLock lock(mu_);
  auto& entry = histograms_[Key{name, std::move(labels)}];
  if (!entry.metric) {
    entry.metric = std::make_unique<Histogram>(
        bounds.empty() ? DefaultLatencyBucketsNs() : std::move(bounds));
    entry.help = help;
  }
  return *entry.metric;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [key, entry] : counters_) {
    snap.counters.push_back(
        {key.name, key.labels, entry.help, entry.metric->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [key, entry] : gauges_) {
    snap.gauges.push_back(
        {key.name, key.labels, entry.help, entry.metric->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [key, entry] : histograms_) {
    snap.histograms.push_back(
        {key.name, key.labels, entry.help, entry.metric->Snap()});
  }
  // The maps are keyed by (name, labels), so iteration order is already the
  // deterministic sorted order the snapshot promises.
  return snap;
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  for (auto& [key, entry] : counters_) entry.metric->Reset();
  for (auto& [key, entry] : gauges_) entry.metric->Reset();
  for (auto& [key, entry] : histograms_) entry.metric->Reset();
}

ScopedTimerNs::ScopedTimerNs(Histogram& hist)
    : hist_(hist),
      start_ns_(std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count()) {}

ScopedTimerNs::~ScopedTimerNs() {
  const std::int64_t now =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  hist_.Record(static_cast<std::uint64_t>(now - start_ns_));
}

}  // namespace adlp::obs
