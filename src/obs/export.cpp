#include "obs/export.h"

#include <cstdio>
#include <fstream>

namespace adlp::obs {

namespace {

/// JSON string escaping (control characters, quote, backslash).
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendJsonLabels(std::string& out, const Labels& labels) {
  // Sequential appends (not operator+ chains): GCC 12's -Wrestrict misfires
  // on `const char* + std::string&&`, and CI builds with -Werror.
  out += "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ", ";
    first = false;
    out += "\"";
    out += JsonEscape(key);
    out += "\": \"";
    out += JsonEscape(value);
    out += "\"";
  }
  out += "}";
}

/// `name{k="v",...}` — the label part is empty when there are no labels.
std::string PromSeries(const std::string& name, const Labels& labels,
                       const std::string& extra_label = {}) {
  std::string out = name;
  if (labels.empty() && extra_label.empty()) return out;
  out += "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"" + EscapeLabelValue(value) + "\"";
  }
  if (!extra_label.empty()) {
    if (!first) out += ",";
    out += extra_label;
  }
  out += "}";
  return out;
}

/// Emits `# HELP` / `# TYPE` the first time a family name is seen.
void PromHeader(std::string& out, std::string& last_name,
                const std::string& name, const std::string& help,
                const char* type) {
  if (name == last_name) return;
  last_name = name;
  if (!help.empty()) {
    out += "# HELP ";
    out += name;
    out += " ";
    out += help;
    out += "\n";
  }
  out += "# TYPE ";
  out += name;
  out += " ";
  out += type;
  out += "\n";
}

}  // namespace

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string ToJson(const MetricsSnapshot& snapshot, const TraceLog* trace) {
  std::string out = "{\n  \"counters\": [\n";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& c = snapshot.counters[i];
    out += "    {\"name\": \"";
    out += JsonEscape(c.name);
    out += "\", \"labels\": ";
    AppendJsonLabels(out, c.labels);
    out += ", \"value\": ";
    out += std::to_string(c.value);
    out += "}";
    out += i + 1 < snapshot.counters.size() ? ",\n" : "\n";
  }
  out += "  ],\n  \"gauges\": [\n";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& g = snapshot.gauges[i];
    out += "    {\"name\": \"";
    out += JsonEscape(g.name);
    out += "\", \"labels\": ";
    AppendJsonLabels(out, g.labels);
    out += ", \"value\": ";
    out += std::to_string(g.value);
    out += "}";
    out += i + 1 < snapshot.gauges.size() ? ",\n" : "\n";
  }
  out += "  ],\n  \"histograms\": [\n";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    out += "    {\"name\": \"";
    out += JsonEscape(h.name);
    out += "\", \"labels\": ";
    AppendJsonLabels(out, h.labels);
    out += ", \"count\": ";
    out += std::to_string(h.data.count);
    out += ", \"sum\": ";
    out += std::to_string(h.data.sum);
    out += ", \"bounds\": [";
    for (std::size_t b = 0; b < h.data.bounds.size(); ++b) {
      if (b > 0) out += ", ";
      out += std::to_string(h.data.bounds[b]);
    }
    out += "], \"counts\": [";
    for (std::size_t b = 0; b < h.data.counts.size(); ++b) {
      if (b > 0) out += ", ";
      out += std::to_string(h.data.counts[b]);
    }
    out += "]}";
    out += i + 1 < snapshot.histograms.size() ? ",\n" : "\n";
  }
  out += "  ]";
  if (trace != nullptr) {
    const std::vector<TraceEvent> events = trace->Snapshot();
    out += ",\n  \"trace\": [\n";
    for (std::size_t i = 0; i < events.size(); ++i) {
      const TraceEvent& e = events[i];
      out += "    {\"kind\": \"";
      out += TraceKindName(e.kind);
      out += "\", \"t_ns\": ";
      out += std::to_string(e.t_ns);
      out += ", \"value\": ";
      out += std::to_string(e.value);
      out += ", \"detail\": \"";
      out += JsonEscape(e.Detail());
      out += "\"}";
      out += i + 1 < events.size() ? ",\n" : "\n";
    }
    out += "  ]";
  }
  out += "\n}\n";
  return out;
}

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_name;
  auto sample = [&out](std::string series, std::string value) {
    out += series;
    out += " ";
    out += value;
    out += "\n";
  };
  for (const auto& c : snapshot.counters) {
    PromHeader(out, last_name, c.name, c.help, "counter");
    sample(PromSeries(c.name, c.labels), std::to_string(c.value));
  }
  last_name.clear();
  for (const auto& g : snapshot.gauges) {
    PromHeader(out, last_name, g.name, g.help, "gauge");
    sample(PromSeries(g.name, g.labels), std::to_string(g.value));
  }
  last_name.clear();
  for (const auto& h : snapshot.histograms) {
    PromHeader(out, last_name, h.name, h.help, "histogram");
    // Exposition buckets are cumulative; ours are per-bucket. Fold forward.
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.data.bounds.size(); ++b) {
      cumulative += h.data.counts[b];
      std::string le = "le=\"";
      le += std::to_string(h.data.bounds[b]);
      le += "\"";
      sample(PromSeries(h.name + "_bucket", h.labels, le),
             std::to_string(cumulative));
    }
    sample(PromSeries(h.name + "_bucket", h.labels, "le=\"+Inf\""),
           std::to_string(h.data.count));
    sample(PromSeries(h.name + "_sum", h.labels), std::to_string(h.data.sum));
    sample(PromSeries(h.name + "_count", h.labels),
           std::to_string(h.data.count));
  }
  return out;
}

bool WriteMetricsFile(const std::string& path) {
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  std::ofstream out(path);
  if (!out) return false;
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0) {
    out << ToPrometheusText(snapshot);
  } else {
    out << ToJson(snapshot, &TraceLog::Global());
  }
  return static_cast<bool>(out);
}

}  // namespace adlp::obs
