#include "obs/trace.h"

#include <algorithm>
#include <chrono>

namespace adlp::obs {

std::string_view TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kPublish: return "publish";
    case TraceKind::kDeliver: return "deliver";
    case TraceKind::kAckSent: return "ack-sent";
    case TraceKind::kAckReceived: return "ack-received";
    case TraceKind::kLogEnter: return "log-enter";
    case TraceKind::kSpool: return "spool";
    case TraceKind::kSpoolDrop: return "spool-drop";
    case TraceKind::kFlush: return "flush";
    case TraceKind::kReconnect: return "reconnect";
    case TraceKind::kConnectFail: return "connect-fail";
    case TraceKind::kFaultInjected: return "fault-injected";
    case TraceKind::kAuditShardStart: return "audit-shard-start";
    case TraceKind::kAuditShardFinish: return "audit-shard-finish";
  }
  return "unknown";
}

TraceLog::TraceLog(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

TraceLog& TraceLog::Global() {
  static TraceLog* instance = new TraceLog();  // never destroyed
  return *instance;
}

void TraceLog::Record(TraceKind kind, std::string_view detail,
                      std::uint64_t value) {
  TraceEvent event;
  event.kind = kind;
  event.t_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
                   .count();
  event.value = value;
  const std::size_t n =
      std::min(detail.size(), TraceEvent::kDetailCapacity);
  std::copy_n(detail.begin(), n, event.detail.begin());
  event.detail[n] = '\0';

  MutexLock lock(mu_);
  ring_[next_ % ring_.size()] = event;
  ++next_;
}

std::vector<TraceEvent> TraceLog::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<TraceEvent> events;
  const std::size_t held = std::min<std::uint64_t>(next_, ring_.size());
  events.reserve(held);
  const std::uint64_t first = next_ - held;
  for (std::uint64_t i = first; i < next_; ++i) {
    events.push_back(ring_[i % ring_.size()]);
  }
  return events;
}

std::uint64_t TraceLog::RecordedCount() const {
  MutexLock lock(mu_);
  return next_;
}

void TraceLog::Reset() {
  MutexLock lock(mu_);
  next_ = 0;
}

}  // namespace adlp::obs
