// Clang thread-safety-analysis attribute macros (ABSL style).
//
// These annotate which mutex guards which field and which capabilities a
// function acquires, releases, or requires, letting Clang's -Wthread-safety
// pass prove lock discipline at compile time. Under any compiler without the
// attributes (GCC, MSVC) every macro expands to nothing, so annotated code
// stays portable. The analysis leg runs in CI with -DADLP_THREAD_SAFETY=ON.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define ADLP_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ADLP_THREAD_ANNOTATION
#define ADLP_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

// Marks a type as a lockable capability ("mutex" names it in diagnostics).
#define CAPABILITY(x) ADLP_THREAD_ANNOTATION(capability(x))

// Marks an RAII type whose constructor acquires and destructor releases.
#define SCOPED_CAPABILITY ADLP_THREAD_ANNOTATION(scoped_lockable)

// Field may only be read or written while holding `x`.
#define GUARDED_BY(x) ADLP_THREAD_ANNOTATION(guarded_by(x))

// Pointer field: the *pointee* may only be accessed while holding `x`.
#define PT_GUARDED_BY(x) ADLP_THREAD_ANNOTATION(pt_guarded_by(x))

// Caller must hold the given capabilities (exclusively) before calling.
#define REQUIRES(...) ADLP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

// Caller must hold the given capabilities at least shared before calling.
#define REQUIRES_SHARED(...) \
  ADLP_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// Function acquires the capabilities and holds them on return.
#define ACQUIRE(...) ADLP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

// Function releases the capabilities; caller must hold them on entry.
#define RELEASE(...) ADLP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

// Function acquires the capabilities iff it returns `b`.
#define TRY_ACQUIRE(b, ...) \
  ADLP_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

// Caller must NOT hold the given capabilities (deadlock / re-entrancy guard).
#define EXCLUDES(...) ADLP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) ADLP_THREAD_ANNOTATION(lock_returned(x))

// Runtime assertion that the capability is held (analysis trusts it).
#define ASSERT_CAPABILITY(x) ADLP_THREAD_ANNOTATION(assert_capability(x))

// Escape hatch: disables analysis for one function. Every use must carry a
// comment stating the invariant that replaces the lock (enforced by review;
// grep for NO_THREAD_SAFETY_ANALYSIS to audit the escapes).
#define NO_THREAD_SAFETY_ANALYSIS \
  ADLP_THREAD_ANNOTATION(no_thread_safety_analysis)
