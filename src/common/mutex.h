// Annotated mutex / scoped-lock / condition-variable wrappers.
//
// Thin layers over std::mutex and std::condition_variable that carry the
// Clang thread-safety capability attributes from thread_annotations.h, so
// code written against them is checkable with -Wthread-safety. They add no
// state and no behaviour beyond std:: — a Mutex is exactly a std::mutex the
// analysis can name.
//
// Design notes for the analysis:
//  - MutexLock operates on the underlying std::mutex (via friendship), so
//    its *bodies* are invisible to the analysis and cannot self-warn; the
//    interface attributes are what callers are checked against.
//  - CondVar takes the MutexLock explicitly and requires the associated
//    Mutex, mirroring std::condition_variable's unique_lock contract.
//  - Predicate waits are deliberately not offered: Clang analyses lambda
//    bodies with no held capabilities, so `cv.wait(lock, pred)` on guarded
//    state cannot be annotated. Write explicit `while (!pred) cv.Wait(lock);`
//    loops instead — the analysis then sees the guarded reads under the lock.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace adlp {

class CondVar;
class MutexLock;

/// std::mutex with a capability attribute. Prefer MutexLock over manual
/// Lock()/Unlock() pairs.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII lock over Mutex, relockable: Unlock() releases early (e.g. around a
/// blocking call that must not hold the lock), Lock() reacquires, and the
/// destructor releases only if currently held. The analysis tracks all three
/// through the SCOPED_CAPABILITY attributes.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu.mu_) { mu_.lock(); }
  ~MutexLock() RELEASE() {
    if (held_) mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() RELEASE() {
    held_ = false;
    mu_.unlock();
  }
  void Lock() ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  friend class CondVar;
  std::mutex& mu_;
  bool held_ = true;
};

/// Condition variable bound to a MutexLock at each wait. All waits require
/// the lock's Mutex to be held; they release it while blocked and reacquire
/// before returning, exactly like std::condition_variable.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) {
    std::unique_lock<std::mutex> ul(lock.mu_, std::adopt_lock);
    cv_.wait(ul);
    ul.release();  // ownership stays with `lock`
  }

  std::cv_status WaitUntil(MutexLock& lock,
                           std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> ul(lock.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(ul, deadline);
    ul.release();
    return status;
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(MutexLock& lock,
                         std::chrono::duration<Rep, Period> timeout) {
    return WaitUntil(lock, std::chrono::steady_clock::now() + timeout);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace adlp
