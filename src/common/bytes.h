// Byte-buffer helpers shared across the ADLP codebase.
//
// `Bytes` is the canonical owning byte buffer; read-only interfaces take
// `std::span<const std::uint8_t>` (aliased as `BytesView`) so callers can pass
// any contiguous storage without copies.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace adlp {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Lowercase hex encoding of `data` (two chars per byte).
std::string ToHex(BytesView data);

/// Parses a hex string (case-insensitive, even length). Throws
/// `std::invalid_argument` on malformed input.
Bytes FromHex(std::string_view hex);

/// Copies a UTF-8/ASCII string into a byte buffer.
Bytes BytesOf(std::string_view text);

/// Interprets a byte buffer as a string (bytes copied verbatim).
std::string StringOf(BytesView data);

/// Returns `a || b` (concatenation).
Bytes Concat(BytesView a, BytesView b);

/// Appends `src` to `dst`.
void Append(Bytes& dst, BytesView src);

/// Constant-time equality: compares full length regardless of where the first
/// mismatch occurs. Buffers of different sizes compare unequal (size is not
/// secret). Use for signature/digest comparisons.
bool ConstantTimeEqual(BytesView a, BytesView b);

}  // namespace adlp
