// Deterministic pseudo-random number generation.
//
// All randomness in the library (key generation, synthetic workloads, fault
// injection schedules) flows through `Rng` so experiments are reproducible
// from a single seed. The generator is xoshiro256** seeded via SplitMix64 —
// fast, high quality, and not cryptographically secure; RSA key generation
// documents this trade-off (the reproduction's goal is accountability-protocol
// behaviour, not protection of real secrets).
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace adlp {

/// SplitMix64: used to expand a 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next();

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed'ad1f'0000'0001ull);

  /// Uniform 64-bit value.
  std::uint64_t NextU64();

  /// Uniform value in [0, bound). `bound` must be nonzero (debiased via
  /// rejection sampling).
  std::uint64_t UniformBelow(std::uint64_t bound);

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t UniformInRange(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with probability `p` of returning true.
  bool Chance(double p);

  /// Fills `out` with random bytes.
  void Fill(Bytes& out);

  /// Returns `n` random bytes.
  Bytes RandomBytes(std::size_t n);

  /// Forks an independent stream (e.g. one per component) deterministically.
  Rng Fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace adlp
