#include "common/rng.h"

#include <bit>

namespace adlp {

std::uint64_t SplitMix64::Next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::UniformBelow(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::UniformInRange(std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t width = hi - lo + 1;
  if (width == 0) return NextU64();  // full range
  return lo + UniformBelow(width);
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::Chance(double p) { return NextDouble() < p; }

void Rng::Fill(Bytes& out) {
  std::size_t i = 0;
  while (i + 8 <= out.size()) {
    std::uint64_t v = NextU64();
    for (int k = 0; k < 8; ++k) out[i++] = static_cast<std::uint8_t>(v >> (8 * k));
  }
  if (i < out.size()) {
    std::uint64_t v = NextU64();
    while (i < out.size()) {
      out[i++] = static_cast<std::uint8_t>(v);
      v >>= 8;
    }
  }
}

Bytes Rng::RandomBytes(std::size_t n) {
  Bytes out(n);
  Fill(out);
  return out;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace adlp
