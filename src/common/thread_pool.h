// Reusable fixed-size worker pool for embarrassingly parallel audit and
// crypto work.
//
// Design goals, in order: (1) deterministic shutdown — the destructor joins
// every worker, so a pool can live on the stack of a bench or test; (2) a
// cheap Wait() barrier so one pool outlives many fan-out rounds (the audit
// pipeline reuses a single pool across shard batches instead of paying
// thread spawn/join per audit); (3) no task-level futures — submitters that
// need results write into caller-owned slots, which keeps the hot path free
// of per-task allocation beyond the std::function itself.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace adlp {

class ThreadPool {
 public:
  /// Spawns `threads` workers (minimum 1).
  explicit ThreadPool(std::size_t threads) {
    if (threads == 0) threads = 1;
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  /// Joins all workers. Pending tasks are still executed first — a
  /// destructor that dropped queued work would turn every early return in a
  /// caller into a lost-result bug.
  ~ThreadPool() {
    {
      MutexLock lock(mu_);
      stopping_ = true;
    }
    work_cv_.NotifyAll();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t ThreadCount() const { return workers_.size(); }

  /// Enqueues a task. Tasks must not themselves call Submit/Wait on the
  /// same pool (no nested parallelism — a worker blocked in Wait() would
  /// deadlock the pool).
  void Submit(std::function<void()> task) EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      ++outstanding_;
      tasks_.push_back(std::move(task));
    }
    work_cv_.NotifyOne();
  }

  /// Blocks until every task submitted so far has finished. Exceptions
  /// escaping a task terminate (tasks are expected to be noexcept in
  /// spirit); audit tasks communicate failure through their result slots.
  void Wait() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (outstanding_ != 0) idle_cv_.Wait(lock);
  }

  /// Runs `fn(begin, end)` over [0, n) split into contiguous blocks, one
  /// task per worker, and waits for completion. Block boundaries depend
  /// only on (n, ThreadCount()), never on scheduling, so any
  /// order-sensitive caller can reproduce the partition.
  template <typename Fn>
  void ParallelFor(std::size_t n, Fn&& fn) {
    if (n == 0) return;
    const std::size_t blocks = std::min(n, ThreadCount());
    const std::size_t chunk = (n + blocks - 1) / blocks;
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::size_t begin = b * chunk;
      const std::size_t end = std::min(n, begin + chunk);
      if (begin >= end) break;
      Submit([&fn, begin, end] { fn(begin, end); });
    }
    Wait();
  }

 private:
  void WorkerLoop() EXCLUDES(mu_) {
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(mu_);
        while (!stopping_ && tasks_.empty()) work_cv_.Wait(lock);
        if (tasks_.empty()) return;  // stopping and drained
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      task();
      {
        MutexLock lock(mu_);
        --outstanding_;
      }
      idle_cv_.NotifyAll();
    }
  }

  Mutex mu_;
  CondVar work_cv_;
  CondVar idle_cv_;
  std::deque<std::function<void()>> tasks_ GUARDED_BY(mu_);
  std::size_t outstanding_ GUARDED_BY(mu_) = 0;
  bool stopping_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace adlp
