#include "common/bytes.h"

#include <stdexcept>

namespace adlp {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("FromHex: invalid hex digit");
}

}  // namespace

std::string ToHex(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes FromHex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("FromHex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>((HexValue(hex[i]) << 4) |
                                            HexValue(hex[i + 1])));
  }
  return out;
}

Bytes BytesOf(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

std::string StringOf(BytesView data) {
  return std::string(data.begin(), data.end());
}

Bytes Concat(BytesView a, BytesView b) {
  Bytes out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

void Append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

bool ConstantTimeEqual(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = static_cast<std::uint8_t>(acc | (a[i] ^ b[i]));
  }
  return acc == 0;
}

}  // namespace adlp
