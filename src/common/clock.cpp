#include "common/clock.h"

#include <ctime>
#include <chrono>

namespace adlp {

Timestamp WallClock::Now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

WallClock& WallClock::Instance() {
  static WallClock clock;
  return clock;
}

Timestamp MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Timestamp ProcessCpuNowNs() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<Timestamp>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

Timestamp ThreadCpuNowNs() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<Timestamp>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

}  // namespace adlp
