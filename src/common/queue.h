// Thread-safe FIFO queue with close semantics, used between transport
// threads, node executors, and logging threads.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace adlp {

/// Unbounded MPMC queue. `Close()` wakes all waiters; `Pop()` returns
/// std::nullopt once the queue is closed and drained.
template <typename T>
class ConcurrentQueue {
 public:
  ConcurrentQueue() = default;
  ConcurrentQueue(const ConcurrentQueue&) = delete;
  ConcurrentQueue& operator=(const ConcurrentQueue&) = delete;

  /// Enqueues an item. Returns false (dropping the item) if the queue has
  /// been closed.
  bool Push(T item) {
    {
      std::lock_guard lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and empty.
  std::optional<T> Pop() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Closes the queue: further pushes are rejected, waiters drain and exit.
  void Close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool Closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  std::size_t Size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace adlp
