// Thread-safe FIFO queue with close semantics, used between transport
// threads, node executors, and logging threads.
#pragma once

#include <deque>
#include <optional>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace adlp {

/// Unbounded MPMC queue. `Close()` wakes all waiters; `Pop()` returns
/// std::nullopt once the queue is closed and drained.
template <typename T>
class ConcurrentQueue {
 public:
  ConcurrentQueue() = default;
  ConcurrentQueue(const ConcurrentQueue&) = delete;
  ConcurrentQueue& operator=(const ConcurrentQueue&) = delete;

  /// Enqueues an item. Returns false (dropping the item) if the queue has
  /// been closed.
  bool Push(T item) EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.NotifyOne();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and empty.
  std::optional<T> Pop() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (!closed_ && items_.empty()) cv_.Wait(lock);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Closes the queue: further pushes are rejected, waiters drain and exit.
  void Close() EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.NotifyAll();
  }

  bool Closed() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }

  std::size_t Size() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }

 private:
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<T> items_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace adlp
