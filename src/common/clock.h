// Time sources.
//
// ADLP log entries carry timestamps used only to establish precedence
// relations (Lemma 4); the paper assumes a proper time-synchronization
// mechanism. We model that with a `Clock` interface: `WallClock` reads the
// system clock, `SimClock` is a manually-advanced, perfectly-synchronized
// clock for deterministic tests and causality experiments.
#pragma once

#include <atomic>
#include <cstdint>

namespace adlp {

/// Nanoseconds since an arbitrary epoch.
using Timestamp = std::int64_t;

class Clock {
 public:
  virtual ~Clock() = default;
  virtual Timestamp Now() const = 0;
};

/// Reads std::chrono::system_clock.
class WallClock final : public Clock {
 public:
  Timestamp Now() const override;

  /// Process-wide instance (the clock is stateless).
  static WallClock& Instance();
};

/// Deterministic clock: every read advances time by `tick_ns` so that two
/// successive events never share a timestamp (strict monotonicity, which the
/// causality analysis relies on). Thread-safe.
class SimClock final : public Clock {
 public:
  explicit SimClock(Timestamp start = 0, Timestamp tick_ns = 1)
      : now_(start), tick_ns_(tick_ns) {}

  Timestamp Now() const override {
    return now_.fetch_add(tick_ns_, std::memory_order_relaxed);
  }

  /// Jumps the clock forward by `delta_ns`.
  void Advance(Timestamp delta_ns) {
    now_.fetch_add(delta_ns, std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<Timestamp> now_;
  Timestamp tick_ns_;
};

/// Monotonic wall time for measurements (steady_clock), not for log entries.
Timestamp MonotonicNowNs();

/// Process CPU time consumed so far, for utilization benchmarks.
Timestamp ProcessCpuNowNs();

/// Calling thread's CPU time. Used to attribute middleware work to the
/// owning component (the publisher-CPU measurements of Fig. 14).
Timestamp ThreadCpuNowNs();

/// Accumulates the owning thread's CPU time into a shared counter. Call
/// Tick() at convenient points (e.g. once per message); the destructor
/// flushes the remainder.
class ThreadCpuTracker {
 public:
  explicit ThreadCpuTracker(std::atomic<Timestamp>* acc)
      : acc_(acc), last_(ThreadCpuNowNs()) {}

  ~ThreadCpuTracker() { Tick(); }

  void Tick() {
    if (acc_ == nullptr) return;
    const Timestamp now = ThreadCpuNowNs();
    acc_->fetch_add(now - last_, std::memory_order_relaxed);
    last_ = now;
  }

  /// Drops the CPU time since the last Tick() instead of accumulating it
  /// (for work done on this thread on behalf of another party).
  void Discard() { last_ = ThreadCpuNowNs(); }

 private:
  std::atomic<Timestamp>* acc_;
  Timestamp last_;
};

}  // namespace adlp
