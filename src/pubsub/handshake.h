// Subscription handshake exchanged on a fresh publisher connection (the
// TCPROS-style header): identifies the topic and the subscriber. Shared by
// the in-node TCP endpoint and the cross-process master client.
#pragma once

#include <string>

#include "common/bytes.h"
#include "crypto/keystore.h"

namespace adlp::pubsub {

Bytes SerializeHandshake(const std::string& topic,
                         const crypto::ComponentId& subscriber);

/// Throws wire::WireError on malformed input.
void ParseHandshake(BytesView data, std::string& topic,
                    crypto::ComponentId& subscriber);

}  // namespace adlp::pubsub
