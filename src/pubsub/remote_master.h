// Cross-process name service: a TCP master (the roscore analogue) plus a
// client-side MasterApi implementation, so components can run as separate
// OS processes — the deployment model of the paper's prototype, where every
// ROS node is its own Linux process.
//
// Wire protocol (framed records on one TCP connection per node):
//   requests:  advertise(topic, publisher, tcp_port)
//              subscribe(topic, subscriber)
//              topology()
//   responses: ack / error(text)            — one per request, in order
//              connect_info(topic, publisher, port)
//                                           — pushed whenever a pending or
//                                             new subscription can connect
//              topology_reply(entries)
//
// The master never touches message data: it hands the subscriber the
// publisher's (id, port); the subscriber dials the publisher directly and
// the point-to-point, unobservable data plane of the paper is preserved.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "pubsub/master.h"
#include "transport/epoll_channel.h"
#include "transport/tcp.h"

namespace adlp::pubsub {

/// The service side: owns the topic registry for a fleet of node processes.
/// Under kThreadPerConn: one serve thread per node connection. Under
/// kReactor: requests are parsed and answered on the shared epoll reactor,
/// so a master serving a large fleet costs loop wakeups instead of threads.
/// The wire protocol and registry semantics are identical in both modes.
class MasterService {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral).
  explicit MasterService(
      std::uint16_t port = 0,
      transport::TransportMode mode = transport::TransportMode::kThreadPerConn);
  ~MasterService();

  MasterService(const MasterService&) = delete;
  MasterService& operator=(const MasterService&) = delete;

  std::uint16_t Port() const { return listener_.Port(); }

  /// The registry as seen so far (the audit manifest for the fleet).
  std::map<std::string, TopicInfo> Topology() const;

  void Shutdown();

 private:
  struct TopicState {
    crypto::ComponentId publisher;
    std::uint16_t port = 0;
    bool advertised = false;
    std::vector<crypto::ComponentId> subscribers;
    // Connections waiting for this topic's publisher, with the subscriber id
    // that asked.
    std::vector<std::pair<transport::ChannelPtr, crypto::ComponentId>> waiting;
  };

  void AcceptLoop();
  void Serve(transport::ChannelPtr channel);
  /// Registers one reactor-accepted channel and starts async serving.
  void AdoptReactorChannel(std::shared_ptr<transport::EpollChannel> channel);
  /// Applies one request frame to `channel` and sends the response (shared
  /// by both threading modes).
  void ServeFrame(BytesView frame, const transport::ChannelPtr& channel);
  Bytes HandleRequest(BytesView frame, const transport::ChannelPtr& channel);

  transport::TcpListener listener_;
  const transport::TransportMode mode_;
  std::atomic<bool> shutting_down_{false};
  std::thread accept_thread_;                           // kThreadPerConn
  std::unique_ptr<transport::ReactorAcceptor> acceptor_;  // kReactor

  mutable Mutex mu_;
  std::map<std::string, TopicState> topics_ GUARDED_BY(mu_);
  std::vector<std::thread> serve_threads_ GUARDED_BY(mu_);
  std::vector<transport::ChannelPtr> connections_ GUARDED_BY(mu_);
  std::vector<std::shared_ptr<transport::EpollChannel>> async_connections_
      GUARDED_BY(mu_);
};

/// The client side: a MasterApi backed by a MasterService in (possibly)
/// another process. One instance per node process.
class RemoteMaster final : public MasterApi {
 public:
  /// Connects to the service at 127.0.0.1:`port`. Throws std::system_error
  /// once `options.attempts` connection attempts are exhausted. Passing
  /// retrying options lets node processes start before the master service
  /// (the usual race when a fleet of processes boots concurrently).
  explicit RemoteMaster(std::uint16_t port,
                        transport::TcpConnectOptions options = {});
  ~RemoteMaster() override;

  /// Cross-process publishers must be reachable over TCP: `info.tcp_port`
  /// is required (i.e. the node must use TransportKind::kTcp). Throws
  /// std::logic_error on duplicate advertisement (the paper's unique-
  /// publisher rule, enforced by the service).
  void Advertise(const std::string& topic, const crypto::ComponentId& publisher,
                 AdvertiseInfo info) override;

  void Subscribe(const std::string& topic,
                 const crypto::ComponentId& subscriber,
                 SubscriberConnectCb on_connect) override;

  std::optional<crypto::ComponentId> PublisherOf(
      const std::string& topic) const override;

  std::map<std::string, TopicInfo> Topology() const override;

  void Close();

 private:
  struct PendingRpc;

  /// Sends a request and blocks for its ack/error/topology response.
  Bytes Rpc(BytesView request) const EXCLUDES(mu_);
  void ReaderLoop() EXCLUDES(mu_);

  transport::ChannelPtr channel_;
  std::thread reader_;

  mutable Mutex mu_;
  mutable CondVar rpc_cv_;
  mutable bool rpc_outstanding_ GUARDED_BY(mu_) = false;
  mutable bool rpc_done_ GUARDED_BY(mu_) = false;
  mutable Bytes rpc_response_ GUARDED_BY(mu_);
  /// Set by ReaderLoop on exit: no further RPC response can ever arrive.
  mutable bool reader_dead_ GUARDED_BY(mu_) = false;
  bool closed_ GUARDED_BY(mu_) = false;

  // Subscriptions waiting for (or already matched to) connect_info pushes,
  // keyed by topic.
  std::multimap<std::string,
                std::pair<crypto::ComponentId, SubscriberConnectCb>>
      pending_subs_ GUARDED_BY(mu_);
};

}  // namespace adlp::pubsub
