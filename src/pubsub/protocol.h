// Link-protocol hook points.
//
// The middleware is protocol-agnostic: a `ProtocolFactory` (supplied per
// node) decides what actually goes on the wire, whether subscribers return
// acknowledgement messages, and what gets logged. Three implementations
// exist in src/adlp: NoLogging, BaseLogging (Definition 2 of the paper), and
// Adlp (the paper's contribution). This mirrors the prototype, where ADLP is
// spliced into the ROS transport layer transparently to the application.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "crypto/keystore.h"
#include "pubsub/message.h"

namespace adlp::pubsub {

/// One publication, encoded once and shared by every subscriber link — the
/// hash and signature are computed once per publication regardless of the
/// number of subscribers (step 2 of the prototype; the reason ADLP's CPU
/// overhead stays roughly flat in Fig. 14).
struct EncodedPublication {
  Message message;
  Bytes wire;       // bytes the link sends (M_x)
  Bytes signature;  // s_x (empty for non-ADLP protocols)
};

using EncodedPublicationPtr = std::shared_ptr<const EncodedPublication>;

/// Publisher-side, one instance per (topic, subscriber) connection.
class PublisherLinkProtocol {
 public:
  virtual ~PublisherLinkProtocol() = default;

  /// Whether the subscriber must return an acknowledgement after every
  /// message. When true the link gates publication `seq+1` on the ACK for
  /// `seq` (the paper's penalty against non-cooperative subscribers).
  virtual bool ExpectsAck() const = 0;

  /// Called after `pub` was written to this link's channel.
  virtual void OnSent(const EncodedPublication& pub) = 0;

  /// Called with the subscriber's return message M_y for `pub`.
  virtual void OnAck(const EncodedPublication& pub, BytesView ack_payload) = 0;
};

/// Subscriber-side, one instance per (topic, publisher) connection.
class SubscriberLinkProtocol {
 public:
  virtual ~SubscriberLinkProtocol() = default;

  struct DecodeResult {
    /// Message to deliver to the application callback (nullopt to drop).
    std::optional<Message> deliver;
    /// ACK payload to send back on the channel before delivery (M_y).
    std::optional<Bytes> reply;
  };

  /// Processes one inbound wire message.
  virtual DecodeResult OnMessage(BytesView wire_bytes) = 0;
};

/// Per-node protocol factory: the node calls `Encode` once per publication
/// and `Make*Link` once per connection.
class ProtocolFactory {
 public:
  virtual ~ProtocolFactory() = default;

  virtual EncodedPublicationPtr Encode(Message message) = 0;

  virtual std::unique_ptr<PublisherLinkProtocol> MakePublisherLink(
      const std::string& topic, const crypto::ComponentId& subscriber) = 0;

  virtual std::unique_ptr<SubscriberLinkProtocol> MakeSubscriberLink(
      const std::string& topic, const crypto::ComponentId& publisher) = 0;
};

}  // namespace adlp::pubsub
