#include "pubsub/message.h"

#include "wire/wire.h"

namespace adlp::pubsub {

namespace {
// Field numbers for the message wire record.
enum : std::uint32_t {
  kFieldTopic = 1,
  kFieldPublisher = 2,
  kFieldSeq = 3,
  kFieldStamp = 4,
  kFieldPayload = 5,
};
}  // namespace

crypto::Digest PayloadHash(BytesView payload) {
  return crypto::Sha256Digest(payload);
}

crypto::Digest MessageDigestFromPayloadHash(
    const MessageHeader& header, const crypto::Digest& payload_hash) {
  wire::Writer w;
  w.PutString(kFieldTopic, header.topic);
  w.PutString(kFieldPublisher, header.publisher);
  w.PutU64(kFieldSeq, header.seq);
  w.PutI64(kFieldStamp, header.stamp);
  return crypto::Sha256Digest2(
      w.Data(), BytesView(payload_hash.data(), payload_hash.size()));
}

crypto::Digest MessageDigest(const MessageHeader& header, BytesView payload) {
  return MessageDigestFromPayloadHash(header, PayloadHash(payload));
}

Bytes SerializeMessage(const Message& msg) {
  wire::Writer w;
  w.PutString(kFieldTopic, msg.header.topic);
  w.PutString(kFieldPublisher, msg.header.publisher);
  w.PutU64(kFieldSeq, msg.header.seq);
  w.PutI64(kFieldStamp, msg.header.stamp);
  w.PutBytes(kFieldPayload, msg.payload);
  return std::move(w).Take();
}

Message DeserializeMessage(BytesView data) {
  Message msg;
  wire::Reader r(data);
  std::uint32_t field;
  wire::WireType type;
  while (r.NextField(field, type)) {
    switch (field) {
      case kFieldTopic:
        msg.header.topic = r.GetStringValue();
        break;
      case kFieldPublisher:
        msg.header.publisher = r.GetStringValue();
        break;
      case kFieldSeq:
        msg.header.seq = r.GetU64Value();
        break;
      case kFieldStamp:
        msg.header.stamp = r.GetI64Value();
        break;
      case kFieldPayload:
        msg.payload = r.GetBytesValue();
        break;
      default:
        r.SkipValue(type);
        break;
    }
  }
  return msg;
}

}  // namespace adlp::pubsub
