#include "pubsub/master.h"

#include <stdexcept>
#include <utility>

#include "pubsub/handshake.h"
#include "transport/tcp.h"

namespace adlp::pubsub {

namespace {

/// A connector for a publisher reachable only through its TCP listener.
ConnectFn TcpConnectorFor(const std::string& topic, std::uint16_t port) {
  return [topic, port](const crypto::ComponentId& subscriber) {
    auto channel = transport::TcpConnect(port);
    channel->Send(SerializeHandshake(topic, subscriber));
    return channel;
  };
}

}  // namespace

void Master::Advertise(const std::string& topic,
                       const crypto::ComponentId& publisher,
                       AdvertiseInfo info) {
  if (!info.connect && info.tcp_port == 0) {
    throw std::invalid_argument(
        "Master::Advertise: neither a connector nor a TCP port given");
  }
  if (!info.connect) {
    info.connect = TcpConnectorFor(topic, info.tcp_port);
  }

  std::vector<PendingSubscription> to_connect;
  ConnectFn connect_copy;
  {
    MutexLock lock(mu_);
    TopicState& state = topics_[topic];
    if (state.advertised) {
      throw std::logic_error("Master: topic '" + topic +
                             "' already has a publisher (" + state.publisher +
                             ")");
    }
    state.advertised = true;
    state.publisher = publisher;
    state.info = std::move(info);
    to_connect = std::move(state.pending);
    state.pending.clear();
    for (const auto& p : to_connect) state.subscribers.push_back(p.subscriber);
    connect_copy = state.info.connect;
  }
  // Connect parked subscribers outside the lock: ConnectFn re-enters nodes.
  for (auto& pending : to_connect) {
    transport::ChannelPtr channel = connect_copy(pending.subscriber);
    pending.on_connect(publisher, std::move(channel));
  }
}

void Master::Subscribe(const std::string& topic,
                       const crypto::ComponentId& subscriber,
                       SubscriberConnectCb on_connect) {
  ConnectFn connect_copy;
  crypto::ComponentId publisher;
  {
    MutexLock lock(mu_);
    TopicState& state = topics_[topic];
    if (!state.advertised) {
      state.pending.push_back({subscriber, std::move(on_connect)});
      return;
    }
    state.subscribers.push_back(subscriber);
    connect_copy = state.info.connect;
    publisher = state.publisher;
  }
  transport::ChannelPtr channel = connect_copy(subscriber);
  on_connect(publisher, std::move(channel));
}

std::optional<crypto::ComponentId> Master::PublisherOf(
    const std::string& topic) const {
  MutexLock lock(mu_);
  const auto it = topics_.find(topic);
  if (it == topics_.end() || !it->second.advertised) return std::nullopt;
  return it->second.publisher;
}

std::map<std::string, pubsub::TopicInfo> Master::Topology() const {
  MutexLock lock(mu_);
  std::map<std::string, pubsub::TopicInfo> out;
  for (const auto& [topic, state] : topics_) {
    if (!state.advertised) continue;
    out[topic] = pubsub::TopicInfo{state.publisher, state.subscribers};
  }
  return out;
}

}  // namespace adlp::pubsub
