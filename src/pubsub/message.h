// Message model of the publish-subscribe middleware.
//
// Every publication carries a header with the topic (the paper's unique data
// type label `type(D)`), the publisher id, a per-topic sequence number
// starting at 1, and a publication timestamp. Sequence number and timestamp
// are part of the signed digest, exactly as in the paper ("the sequence
// number is a part of the ROS message digest which is hashed and signed").
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/clock.h"
#include "crypto/keystore.h"
#include "crypto/sha256.h"

namespace adlp::pubsub {

struct MessageHeader {
  std::string topic;                 // unique data type label
  crypto::ComponentId publisher;     // id of the (unique) publisher
  std::uint64_t seq = 0;             // per-topic sequence number, from 1
  Timestamp stamp = 0;               // publication time

  bool operator==(const MessageHeader&) const = default;
};

struct Message {
  MessageHeader header;
  Bytes payload;

  bool operator==(const Message&) const = default;
};

/// h(D): hash of the payload alone. This is what a subscriber stores in its
/// log entry (and returns in the ACK) when it opts not to keep the data.
crypto::Digest PayloadHash(BytesView payload);

/// The signed digest — the paper's h(seq || D) — is computed in two levels:
///
///   digest = h( encode(topic, publisher, seq, stamp) || h(D) )
///
/// The two-level structure matters for auditability: a verifier that holds
/// only h(D) (a hash-storing subscriber entry, or the ACK's h(I_y)) can
/// still rebind the digest to THIS topic/seq/stamp and check signatures —
/// which is what defeats replaying an old (h(D), signature) pair under a
/// fresh sequence number (Lemma 1's freshness argument).
crypto::Digest MessageDigestFromPayloadHash(const MessageHeader& header,
                                            const crypto::Digest& payload_hash);

/// Convenience: MessageDigestFromPayloadHash(header, PayloadHash(payload)).
crypto::Digest MessageDigest(const MessageHeader& header, BytesView payload);

/// Full wire encoding/decoding of a message (header + payload).
Bytes SerializeMessage(const Message& msg);
Message DeserializeMessage(BytesView data);  // throws wire::WireError

}  // namespace adlp::pubsub
