// Node: a software component `c_i`. Owns its publishers, subscriptions, and
// the per-connection link threads (one connection thread per subscriber, as
// in ROS: "ROS runs a connection thread per subscriber, not per topic").
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "crypto/keystore.h"
#include "pubsub/master.h"
#include "pubsub/message.h"
#include "pubsub/protocol.h"
#include "transport/channel.h"
#include "transport/inproc.h"
#include "transport/tcp.h"

namespace adlp::pubsub {

enum class TransportKind {
  kInProc,  // deterministic in-process channels (default for experiments)
  kTcp,     // real loopback TCP sockets
};

struct NodeOptions {
  /// Logging/transport protocol (NoLogging / BaseLogging / Adlp factories
  /// from src/adlp). Required.
  std::shared_ptr<ProtocolFactory> protocol;

  /// Time source for message stamps.
  const Clock* clock = &WallClock::Instance();

  TransportKind transport = TransportKind::kInProc;
  transport::LinkModel link_model;  // in-proc only

  /// Threading model for TCP connection endpoints. kReactor multiplexes
  /// publisher links (and the accept path) on the shared epoll reactor, so
  /// fan-out costs loop wakeups instead of threads. In-proc channels have
  /// no fd and always use link threads. Protocol behaviour and audit
  /// verdicts are identical in both modes; per-node CpuTimeNs() covers only
  /// encode work under kReactor (link work runs on shared loop threads).
  transport::TransportMode mode = transport::TransportMode::kThreadPerConn;

  /// Max unacknowledged messages per link before the sender blocks
  /// (protocols with ACKs only). 1 = the paper's scheme: a new message is
  /// not sent to a subscriber whose previous ACK is outstanding.
  std::size_t ack_window = 1;

  /// Per-link send-queue capacity. Publications beyond it are dropped for
  /// that link (models a sensor outpacing a slow subscriber without
  /// unbounded backlog). Default: unbounded.
  std::size_t max_queue = std::numeric_limits<std::size_t>::max();
};

class Node;

/// Handle for publishing on one topic. Obtained from Node::Advertise;
/// thread-safe (components may publish from several callback threads).
class Publisher {
 public:
  /// Publishes `payload`: stamps a header, encodes once via the protocol
  /// factory, then hands the encoded publication to every subscriber link.
  /// Returns the assigned sequence number.
  std::uint64_t Publish(Bytes payload) EXCLUDES(publish_mu_, links_mu_);

  const std::string& Topic() const { return topic_; }
  std::uint64_t LastSeq() const {
    return seq_.load(std::memory_order_relaxed);
  }
  std::size_t SubscriberCount() const EXCLUDES(links_mu_);

  /// Blocks until at least `count` subscriber links are attached (TCP
  /// connections attach asynchronously) or `timeout` elapses. Returns true
  /// when the count was reached.
  bool WaitForSubscribers(std::size_t count,
                          std::chrono::milliseconds timeout =
                              std::chrono::milliseconds(5000)) const
      EXCLUDES(links_mu_);

  /// Total messages dropped due to full per-link queues.
  std::uint64_t DroppedCount() const EXCLUDES(links_mu_);

 private:
  friend class Node;
  struct Link;

  Publisher(Node* node, std::string topic);

  void AddLink(const crypto::ComponentId& subscriber,
               transport::ChannelPtr channel) EXCLUDES(links_mu_);
  void Shutdown() EXCLUDES(links_mu_);

  Node* node_;
  std::string topic_;
  // Lock order: publish_mu_ before links_mu_ (Publish encodes under
  // publish_mu_, then fans out under links_mu_). Never the reverse.
  Mutex publish_mu_;
  std::atomic<std::uint64_t> seq_{0};

  mutable Mutex links_mu_;
  mutable CondVar links_cv_;
  std::vector<std::unique_ptr<Link>> links_ GUARDED_BY(links_mu_);
  // Set by Shutdown(); a late AddLink (TCP handshakes land asynchronously)
  // must tear its link down instead of inserting it into a list nobody
  // will ever drain again.
  bool links_closed_ GUARDED_BY(links_mu_) = false;
};

class Node {
 public:
  /// Creates the node and (in TCP mode) its listener. The node registers
  /// nothing with the master until Advertise/Subscribe are called.
  Node(crypto::ComponentId name, MasterApi& master, NodeOptions options);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Advertises `topic`; throws std::logic_error if another publisher holds
  /// it. The returned handle stays valid until Shutdown.
  Publisher& Advertise(const std::string& topic) EXCLUDES(mu_);

  using Callback = std::function<void(const Message&)>;

  /// Subscribes to `topic`; `callback` runs on the connection's receive
  /// thread once a publisher is available.
  void Subscribe(const std::string& topic, Callback callback) EXCLUDES(mu_);

  /// Closes all links and joins all threads. Idempotent.
  void Shutdown() EXCLUDES(mu_);

  const crypto::ComponentId& Name() const { return name_; }
  const NodeOptions& Options() const { return options_; }
  const Clock& clock() const { return *options_.clock; }
  ProtocolFactory& protocol() const { return *options_.protocol; }

  /// CPU time consumed by this node's middleware work: per-publication
  /// encoding (hash/sign), connection threads, and message handling. Used
  /// by the publisher-CPU-utilization experiments (Fig. 14).
  std::int64_t CpuTimeNs() const {
    return cpu_ns_.load(std::memory_order_relaxed);
  }

 private:
  friend class Publisher;
  struct Subscription;
  struct TcpEndpoint;

  /// Publisher-side connection setup shared by both transports.
  void AttachSubscriberLink(const std::string& topic,
                            const crypto::ComponentId& subscriber,
                            transport::ChannelPtr channel) EXCLUDES(mu_);

  crypto::ComponentId name_;
  MasterApi& master_;
  NodeOptions options_;

  Mutex mu_;
  bool shut_down_ GUARDED_BY(mu_) = false;
  std::vector<std::unique_ptr<Publisher>> publishers_ GUARDED_BY(mu_);
  std::vector<std::unique_ptr<Subscription>> subscriptions_ GUARDED_BY(mu_);
  std::unique_ptr<TcpEndpoint> tcp_ GUARDED_BY(mu_);  // lazy, TCP mode only
  mutable std::atomic<Timestamp> cpu_ns_{0};
};

}  // namespace adlp::pubsub
