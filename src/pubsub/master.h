// Name service (the analogue of roscore): tracks which component publishes
// each topic, brokers subscriber connections, and records the topology that
// the auditor later uses as the system manifest.
//
// The master only brokers connection *setup*; data flows point-to-point
// between publisher and subscriber and is never observable here — the very
// property that makes naive logging refutable (Section III-B).
//
// `MasterApi` is the interface nodes program against; `Master` is the
// in-process implementation, and remote_master.h provides a TCP service and
// client so nodes can run as separate OS processes (like ROS nodes talking
// to a roscore).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "crypto/keystore.h"
#include "transport/channel.h"

namespace adlp::pubsub {

/// Produces the subscriber-side channel endpoint for a new subscription and
/// installs the publisher-side link (how depends on the transport).
using ConnectFn =
    std::function<transport::ChannelPtr(const crypto::ComponentId& subscriber)>;

/// Invoked on the subscriber when a publisher for the topic is available.
using SubscriberConnectCb = std::function<void(
    const crypto::ComponentId& publisher, transport::ChannelPtr channel)>;

struct TopicInfo {
  crypto::ComponentId publisher;
  std::vector<crypto::ComponentId> subscribers;

  bool operator==(const TopicInfo&) const = default;
};

/// What a publisher announces: an in-process connector (same-process
/// subscribers), and/or the node's TCP listener port (cross-process
/// subscribers; 0 when the node is in-proc only).
struct AdvertiseInfo {
  ConnectFn connect;
  std::uint16_t tcp_port = 0;
};

class MasterApi {
 public:
  virtual ~MasterApi() = default;

  /// Registers the unique publisher of `topic`. Throws std::logic_error if
  /// the topic already has a publisher (the paper's model: no two components
  /// publish the same data type; redundant types must be uniquely labeled).
  virtual void Advertise(const std::string& topic,
                         const crypto::ComponentId& publisher,
                         AdvertiseInfo info) = 0;

  /// Subscribes `subscriber` to `topic`. Connects immediately when the
  /// publisher is known, otherwise parks the request until Advertise.
  virtual void Subscribe(const std::string& topic,
                         const crypto::ComponentId& subscriber,
                         SubscriberConnectCb on_connect) = 0;

  virtual std::optional<crypto::ComponentId> PublisherOf(
      const std::string& topic) const = 0;

  /// Snapshot of the full pub/sub graph (the auditor's system manifest).
  virtual std::map<std::string, TopicInfo> Topology() const = 0;
};

class Master : public MasterApi {
 public:
  // Keeps the historical alias used across the audit layer.
  using TopicInfo = pubsub::TopicInfo;

  void Advertise(const std::string& topic, const crypto::ComponentId& publisher,
                 AdvertiseInfo info) override;

  /// Convenience overload for in-process callers.
  void Advertise(const std::string& topic, const crypto::ComponentId& publisher,
                 ConnectFn connect) {
    Advertise(topic, publisher, AdvertiseInfo{std::move(connect), 0});
  }

  void Subscribe(const std::string& topic,
                 const crypto::ComponentId& subscriber,
                 SubscriberConnectCb on_connect) override;

  std::optional<crypto::ComponentId> PublisherOf(
      const std::string& topic) const override;

  std::map<std::string, pubsub::TopicInfo> Topology() const override;

 private:
  struct PendingSubscription {
    crypto::ComponentId subscriber;
    SubscriberConnectCb on_connect;
  };

  struct TopicState {
    crypto::ComponentId publisher;
    AdvertiseInfo info;
    std::vector<crypto::ComponentId> subscribers;
    std::vector<PendingSubscription> pending;
    bool advertised = false;
  };

  mutable Mutex mu_;
  std::map<std::string, TopicState> topics_ GUARDED_BY(mu_);
};

}  // namespace adlp::pubsub
