#include "pubsub/remote_master.h"

#include <stdexcept>

#include "pubsub/handshake.h"
#include "transport/reactor.h"
#include "wire/wire.h"

namespace adlp::pubsub {

namespace {

enum : std::uint64_t {
  kReqAdvertise = 1,
  kReqSubscribe = 2,
  kReqTopology = 3,
  kRspAck = 10,
  kRspError = 11,
  kRspConnectInfo = 12,
  kRspTopology = 13,
};

enum : std::uint32_t {
  kFieldType = 1,
  kFieldTopic = 2,
  kFieldComponent = 3,
  kFieldPort = 4,
  kFieldText = 5,
  kFieldTopicRecord = 6,  // repeated nested, topology replies
};

enum : std::uint32_t {
  kTopicName = 1,
  kTopicPublisher = 2,
  kTopicSubscriber = 3,
};

struct Frame {
  std::uint64_t type = 0;
  std::string topic;
  crypto::ComponentId component;
  std::uint16_t port = 0;
  std::string text;
  std::map<std::string, TopicInfo> topology;
};

Bytes EncodeFrame(const Frame& f) {
  wire::Writer w;
  w.PutU64(kFieldType, f.type);
  if (!f.topic.empty()) w.PutString(kFieldTopic, f.topic);
  if (!f.component.empty()) w.PutString(kFieldComponent, f.component);
  if (f.port != 0) w.PutU64(kFieldPort, f.port);
  if (!f.text.empty()) w.PutString(kFieldText, f.text);
  for (const auto& [name, info] : f.topology) {
    wire::Writer t;
    t.PutString(kTopicName, name);
    t.PutString(kTopicPublisher, info.publisher);
    for (const auto& sub : info.subscribers) t.PutString(kTopicSubscriber, sub);
    w.PutMessage(kFieldTopicRecord, t);
  }
  return std::move(w).Take();
}

Frame DecodeFrame(BytesView data) {
  Frame f;
  wire::Reader r(data);
  std::uint32_t field;
  wire::WireType type;
  while (r.NextField(field, type)) {
    switch (field) {
      case kFieldType:
        f.type = r.GetU64Value();
        break;
      case kFieldTopic:
        f.topic = r.GetStringValue();
        break;
      case kFieldComponent:
        f.component = r.GetStringValue();
        break;
      case kFieldPort:
        f.port = static_cast<std::uint16_t>(r.GetU64Value());
        break;
      case kFieldText:
        f.text = r.GetStringValue();
        break;
      case kFieldTopicRecord: {
        wire::Reader t = r.GetMessageValue();
        std::string name;
        TopicInfo info;
        std::uint32_t tf;
        wire::WireType tt;
        while (t.NextField(tf, tt)) {
          switch (tf) {
            case kTopicName:
              name = t.GetStringValue();
              break;
            case kTopicPublisher:
              info.publisher = t.GetStringValue();
              break;
            case kTopicSubscriber:
              info.subscribers.push_back(t.GetStringValue());
              break;
            default:
              t.SkipValue(tt);
              break;
          }
        }
        f.topology[name] = std::move(info);
        break;
      }
      default:
        r.SkipValue(type);
        break;
    }
  }
  return f;
}

}  // namespace

// ---------------------------------------------------------------------------
// MasterService

MasterService::MasterService(std::uint16_t port, transport::TransportMode mode)
    : listener_(port), mode_(mode) {
  if (mode_ == transport::TransportMode::kReactor) {
    acceptor_ = std::make_unique<transport::ReactorAcceptor>(
        transport::Reactor::Global(), listener_,
        [this](std::shared_ptr<transport::EpollChannel> channel) {
          AdoptReactorChannel(std::move(channel));
        });
  } else {
    accept_thread_ = std::thread([this] { AcceptLoop(); });
  }
}

MasterService::~MasterService() { Shutdown(); }

void MasterService::AcceptLoop() {
  while (auto channel = listener_.Accept()) {
    MutexLock lock(mu_);
    if (shutting_down_.load()) {
      channel->Close();
      return;
    }
    connections_.push_back(channel);
    serve_threads_.emplace_back(
        [this, channel] { Serve(channel); });
  }
}

void MasterService::Serve(transport::ChannelPtr channel) {
  while (auto frame = channel->Receive()) {
    ServeFrame(*frame, channel);
  }
}

void MasterService::AdoptReactorChannel(
    std::shared_ptr<transport::EpollChannel> channel) {
  // Runs on a reactor loop thread. Safe to touch `this`: Shutdown() closes
  // the acceptor with its loop barrier before tearing the service down.
  MutexLock lock(mu_);
  if (shutting_down_.load()) {
    channel->Close();
    return;
  }
  connections_.push_back(channel);
  async_connections_.push_back(channel);
  transport::ChannelPtr as_channel = channel;
  channel->StartAsync(
      [this, as_channel](BytesView frame) { ServeFrame(frame, as_channel); },
      /*on_closed=*/nullptr);
}

void MasterService::ServeFrame(BytesView frame,
                               const transport::ChannelPtr& channel) {
  Bytes response;
  try {
    response = HandleRequest(frame, channel);
  } catch (const wire::WireError&) {
    Frame err;
    err.type = kRspError;
    err.text = "malformed request";
    response = EncodeFrame(err);
  }
  if (!response.empty()) (void)channel->Send(response);
}

Bytes MasterService::HandleRequest(BytesView frame_bytes,
                                   const transport::ChannelPtr& channel) {
  const Frame request = DecodeFrame(frame_bytes);

  switch (request.type) {
    case kReqAdvertise: {
      std::vector<std::pair<transport::ChannelPtr, crypto::ComponentId>>
          waiting;
      Frame response;
      {
        MutexLock lock(mu_);
        TopicState& state = topics_[request.topic];
        if (state.advertised) {
          response.type = kRspError;
          response.text = "topic '" + request.topic +
                          "' already has a publisher (" + state.publisher +
                          ")";
          return EncodeFrame(response);
        }
        state.advertised = true;
        state.publisher = request.component;
        state.port = request.port;
        waiting = std::move(state.waiting);
        state.waiting.clear();
        for (const auto& [conn, sub] : waiting) {
          state.subscribers.push_back(sub);
        }
      }
      // Release the parked subscribers (on their own connections).
      Frame info;
      info.type = kRspConnectInfo;
      info.topic = request.topic;
      info.component = request.component;
      info.port = request.port;
      const Bytes info_bytes = EncodeFrame(info);
      for (const auto& [conn, sub] : waiting) {
        (void)conn->Send(info_bytes);
      }
      response.type = kRspAck;
      return EncodeFrame(response);
    }

    case kReqSubscribe: {
      Frame response;
      bool ready = false;
      Frame info;
      {
        MutexLock lock(mu_);
        TopicState& state = topics_[request.topic];
        if (state.advertised) {
          state.subscribers.push_back(request.component);
          info.type = kRspConnectInfo;
          info.topic = request.topic;
          info.component = state.publisher;
          info.port = state.port;
          ready = true;
        } else {
          state.waiting.push_back({channel, request.component});
        }
      }
      if (ready) (void)channel->Send(EncodeFrame(info));
      response.type = kRspAck;
      return EncodeFrame(response);
    }

    case kReqTopology: {
      Frame response;
      response.type = kRspTopology;
      response.topology = Topology();
      return EncodeFrame(response);
    }

    default: {
      Frame response;
      response.type = kRspError;
      response.text = "unknown request type";
      return EncodeFrame(response);
    }
  }
}

std::map<std::string, TopicInfo> MasterService::Topology() const {
  MutexLock lock(mu_);
  std::map<std::string, TopicInfo> out;
  for (const auto& [topic, state] : topics_) {
    if (!state.advertised) continue;
    out[topic] = TopicInfo{state.publisher, state.subscribers};
  }
  return out;
}

void MasterService::Shutdown() {
  if (shutting_down_.exchange(true)) return;
  // Reactor: close the acceptor first — its Close() barrier guarantees no
  // accept callback (which touches `this`) is still running afterwards.
  if (acceptor_) acceptor_->Close();
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<transport::ChannelPtr> connections;
  std::vector<std::shared_ptr<transport::EpollChannel>> async_connections;
  std::vector<std::thread> threads;
  {
    MutexLock lock(mu_);
    connections.swap(connections_);
    async_connections.swap(async_connections_);
    threads.swap(serve_threads_);
  }
  for (auto& c : connections) c->Close();
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  // Frame handlers capture `this`; wait for each channel's loop-side
  // teardown so none can run once Shutdown returns.
  for (auto& c : async_connections) c->WaitClosed(2000);
}

// ---------------------------------------------------------------------------
// RemoteMaster

RemoteMaster::RemoteMaster(std::uint16_t port,
                           transport::TcpConnectOptions options)
    : channel_(transport::TcpConnect(port, options)) {
  reader_ = std::thread([this] { ReaderLoop(); });
}

RemoteMaster::~RemoteMaster() { Close(); }

void RemoteMaster::Close() {
  {
    MutexLock lock(mu_);
    if (closed_) return;
    closed_ = true;
  }
  channel_->Close();
  rpc_cv_.NotifyAll();
  if (reader_.joinable()) reader_.join();
}

void RemoteMaster::ReaderLoop() {
  while (auto frame_bytes = channel_->Receive()) {
    Frame frame;
    try {
      frame = DecodeFrame(*frame_bytes);
    } catch (const wire::WireError&) {
      continue;
    }

    if (frame.type == kRspConnectInfo) {
      // Resolve every pending subscription for this topic.
      std::vector<std::pair<crypto::ComponentId, SubscriberConnectCb>>
          matched;
      {
        MutexLock lock(mu_);
        auto [begin, end] = pending_subs_.equal_range(frame.topic);
        for (auto it = begin; it != end; ++it) matched.push_back(it->second);
        pending_subs_.erase(begin, end);
      }
      for (auto& [subscriber, cb] : matched) {
        // The publisher may still be bringing its data listener up, or may
        // have vanished between advertise and dial: retry briefly, then drop
        // quietly — the data plane treats it like a lost connection.
        transport::TcpConnectOptions dial;
        dial.attempts = 3;
        dial.connect_timeout_ms = 500;
        dial.retry_delay_ms = 20;
        auto data_channel = transport::TryTcpConnect(frame.port, dial);
        if (data_channel == nullptr) continue;
        data_channel->Send(SerializeHandshake(frame.topic, subscriber));
        cb(frame.component, std::move(data_channel));
      }
      continue;
    }

    // RPC response (ack / error / topology).
    {
      MutexLock lock(mu_);
      rpc_response_ = *frame_bytes;
      rpc_done_ = true;
    }
    rpc_cv_.NotifyAll();
  }
  // Connection gone: unblock any waiting RPC — including one issued after
  // this thread exits (its send can still land in the kernel buffer before
  // the peer's RST, so it would otherwise wait forever).
  {
    MutexLock lock(mu_);
    reader_dead_ = true;
    rpc_done_ = true;
    rpc_response_.clear();
  }
  rpc_cv_.NotifyAll();
}

Bytes RemoteMaster::Rpc(BytesView request) const {
  MutexLock lock(mu_);
  while (rpc_outstanding_ && !closed_) rpc_cv_.Wait(lock);
  if (closed_ || reader_dead_) {
    throw std::runtime_error("RemoteMaster: connection closed");
  }
  rpc_outstanding_ = true;
  rpc_done_ = false;
  rpc_response_.clear();
  // Send without the lock: a blocking send while holding mu_ would stall
  // ReaderLoop's response handoff and deadlock the RPC.
  lock.Unlock();

  if (!channel_->Send(request)) {
    lock.Lock();
    rpc_outstanding_ = false;
    // Wake queued callers waiting on rpc_outstanding_; without this a send
    // failure would strand them until the next completed RPC.
    rpc_cv_.NotifyAll();
    throw std::runtime_error("RemoteMaster: send failed");
  }

  lock.Lock();
  while (!rpc_done_ && !reader_dead_) rpc_cv_.Wait(lock);
  Bytes response = std::move(rpc_response_);
  rpc_outstanding_ = false;
  rpc_done_ = false;
  rpc_cv_.NotifyAll();
  if (response.empty()) {
    throw std::runtime_error("RemoteMaster: connection closed mid-RPC");
  }
  return response;
}

void RemoteMaster::Advertise(const std::string& topic,
                             const crypto::ComponentId& publisher,
                             AdvertiseInfo info) {
  if (info.tcp_port == 0) {
    throw std::invalid_argument(
        "RemoteMaster::Advertise: cross-process publishers need a TCP "
        "listener (use TransportKind::kTcp)");
  }
  Frame request;
  request.type = kReqAdvertise;
  request.topic = topic;
  request.component = publisher;
  request.port = info.tcp_port;
  const Frame response = DecodeFrame(Rpc(EncodeFrame(request)));
  if (response.type == kRspError) throw std::logic_error(response.text);
}

void RemoteMaster::Subscribe(const std::string& topic,
                             const crypto::ComponentId& subscriber,
                             SubscriberConnectCb on_connect) {
  {
    MutexLock lock(mu_);
    pending_subs_.emplace(topic, std::make_pair(subscriber, on_connect));
  }
  Frame request;
  request.type = kReqSubscribe;
  request.topic = topic;
  request.component = subscriber;
  const Frame response = DecodeFrame(Rpc(EncodeFrame(request)));
  if (response.type == kRspError) throw std::logic_error(response.text);
}

std::optional<crypto::ComponentId> RemoteMaster::PublisherOf(
    const std::string& topic) const {
  const auto topo = Topology();
  const auto it = topo.find(topic);
  if (it == topo.end()) return std::nullopt;
  return it->second.publisher;
}

std::map<std::string, TopicInfo> RemoteMaster::Topology() const {
  Frame request;
  request.type = kReqTopology;
  const Frame response = DecodeFrame(Rpc(EncodeFrame(request)));
  return response.topology;
}

}  // namespace adlp::pubsub
