#include "pubsub/node.h"

#include <deque>
#include <stdexcept>
#include <utility>

#include "obs/instrument.h"
#include "pubsub/handshake.h"
#include "transport/epoll_channel.h"
#include "transport/reactor.h"
#include "wire/wire.h"

namespace adlp::pubsub {

namespace {

/// In-flight publications with pending-ACK accounting that survives early
/// exits: the destructor releases whatever is still outstanding so the
/// process-wide gauge never drifts when a link dies mid-conversation.
struct InFlightQueue {
  struct Item {
    EncodedPublicationPtr pub;
    Timestamp sent_ns;
  };
  std::deque<Item> items;

  ~InFlightQueue() {
    if (!items.empty()) {
      obs::metric::PendingAcks().Sub(static_cast<std::int64_t>(items.size()));
    }
  }

  void PushSent(EncodedPublicationPtr pub) {
    items.push_back({std::move(pub), MonotonicNowNs()});
    obs::metric::PendingAcks().Add(1);
  }

  void PopAcked() {
    obs::metric::AckReceivedTotal().Add(1);
    obs::metric::AckRttNs().Record(
        static_cast<std::uint64_t>(MonotonicNowNs() - items.front().sent_ns));
    obs::TraceLog::Global().Record(obs::TraceKind::kAckReceived,
                                   items.front().pub->message.header.topic,
                                   items.front().pub->message.header.seq);
    items.pop_front();
    obs::metric::PendingAcks().Sub(1);
  }
};

/// Reactor-mode publisher link: the same conversation the thread-mode
/// RunLoop holds (send up to ack_window, gate on ACKs, drain on close), as
/// an event-driven state machine on the channel's loop thread. Shared-owned
/// so a pump task that fires after Link teardown finds live state.
struct ReactorLinkState
    : public std::enable_shared_from_this<ReactorLinkState> {
  std::shared_ptr<transport::EpollChannel> channel;
  std::unique_ptr<PublisherLinkProtocol> proto;
  ConcurrentQueue<EncodedPublicationPtr> queue;
  std::size_t ack_window = 1;
  std::size_t max_queue = std::numeric_limits<std::size_t>::max();
  transport::Reactor* reactor = nullptr;
  std::size_t loop = 0;

  InFlightQueue in_flight;  // loop thread only
  std::atomic<bool> pump_armed{false};
  std::atomic<bool> done{false};

  /// Any-thread: enqueue a publication (false = per-link queue full).
  bool Offer(EncodedPublicationPtr pub) {
    if (queue.Size() >= max_queue) return false;
    queue.Push(std::move(pub));
    KickPump();
    return true;
  }

  /// Any-thread: schedule a pump pass, coalescing bursts into one task.
  void KickPump() {
    if (pump_armed.exchange(true, std::memory_order_acq_rel)) return;
    auto self = shared_from_this();
    reactor->Post(loop, [self] {
      self->pump_armed.store(false, std::memory_order_release);
      self->Pump();
    });
  }

  /// Loop thread: send while the ACK window has room; detect completion.
  void Pump() {
    if (done.load(std::memory_order_acquire)) return;
    while (true) {
      // ACK gating, as in the thread-mode loop: with window W, at most W
      // outstanding messages (the paper's scheme is W = 1).
      if (proto->ExpectsAck() && in_flight.items.size() >= ack_window) break;
      auto pub = queue.TryPop();
      if (!pub) break;
      if (!channel->Send((*pub)->wire)) {
        Finish();
        return;
      }
      proto->OnSent(**pub);
      if (proto->ExpectsAck()) in_flight.PushSent(std::move(*pub));
    }
    if (queue.Closed() && queue.Size() == 0 && in_flight.items.empty()) {
      Finish();
    }
  }

  /// Loop thread: ACKs arrive in order on the FIFO channel, so the front
  /// of the in-flight queue is always the one being acked.
  void HandleFrame(BytesView frame) {
    if (done.load(std::memory_order_acquire)) return;
    if (in_flight.items.empty()) return;  // unexpected: drop
    proto->OnAck(*in_flight.items.front().pub, frame);
    in_flight.PopAcked();
    Pump();
  }

  void Finish() { done.store(true, std::memory_order_release); }
};

}  // namespace

// ---------------------------------------------------------------------------
// Publisher link: one connection per subscriber — a dedicated thread in
// kThreadPerConn mode, a reactor state machine in kReactor mode.

struct Publisher::Link {
  crypto::ComponentId subscriber;
  transport::ChannelPtr channel;
  std::unique_ptr<PublisherLinkProtocol> proto;
  ConcurrentQueue<EncodedPublicationPtr> queue;
  std::size_t ack_window = 1;
  std::size_t max_queue = std::numeric_limits<std::size_t>::max();
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<bool> done{false};
  std::atomic<Timestamp>* cpu_acc = nullptr;
  std::thread thread;
  std::shared_ptr<ReactorLinkState> reactor_state;  // kReactor only

  /// Enqueues one publication; false when the per-link queue is full.
  bool Offer(const EncodedPublicationPtr& pub) {
    if (reactor_state) return reactor_state->Offer(pub);
    if (queue.Size() >= max_queue) return false;
    queue.Push(pub);
    return true;
  }

  void Run() {
    ThreadCpuTracker cpu(cpu_acc);
    RunLoop(cpu);
    done.store(true, std::memory_order_release);
  }

  void RunLoop(ThreadCpuTracker& cpu) {
    // Messages sent but not yet acknowledged, oldest first. ACKs arrive in
    // order on the FIFO channel, so the front is always the one being acked.
    InFlightQueue in_flight;
    while (auto pub = queue.Pop()) {
      if (!channel->Send((*pub)->wire)) return;
      proto->OnSent(**pub);
      if (!proto->ExpectsAck()) {
        cpu.Tick();
        continue;
      }
      in_flight.PushSent(std::move(*pub));
      // ACK gating: with window W, block after W outstanding messages. The
      // paper's scheme is W = 1 — publication seq+1 waits for the ACK of seq.
      while (in_flight.items.size() >= ack_window) {
        cpu.Tick();  // don't bill the blocking wait below
        auto ack = channel->Receive();
        if (!ack) return;
        proto->OnAck(*in_flight.items.front().pub, *ack);
        in_flight.PopAcked();
      }
      cpu.Tick();
    }
    // Queue closed: drain ACKs still owed for in-flight messages.
    while (!in_flight.items.empty()) {
      auto ack = channel->Receive();
      if (!ack) return;
      proto->OnAck(*in_flight.items.front().pub, *ack);
      in_flight.PopAcked();
    }
  }

  void Shutdown() {
    if (reactor_state) {
      ShutdownReactor();
      return;
    }
    queue.Close();
    WaitDrained(done);
    channel->Close();
    if (thread.joinable()) thread.join();
  }

  void ShutdownReactor() {
    reactor_state->queue.Close();
    reactor_state->KickPump();  // let the pump observe the closed queue
    WaitDrained(reactor_state->done);
    reactor_state->channel->Close();
    // Rendezvous with the loop's teardown so no handler still runs when
    // the caller proceeds to destroy node state.
    reactor_state->channel->WaitClosed(2000);
  }

  /// Grace period: let the link drain queued publications and collect the
  /// ACKs still owed, so cleanly-shutdown systems log complete pairs. A
  /// non-cooperative subscriber that withholds ACKs only costs us this
  /// bounded wait.
  static void WaitDrained(const std::atomic<bool>& flag) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    while (!flag.load(std::memory_order_acquire) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
};

Publisher::Publisher(Node* node, std::string topic)
    : node_(node), topic_(std::move(topic)) {}

std::uint64_t Publisher::Publish(Bytes payload) {
  // Serialize publications so sequence numbers and link-queue order agree.
  MutexLock publish_lock(publish_mu_);

  Message msg;
  msg.header.topic = topic_;
  msg.header.publisher = node_->Name();
  msg.header.seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  msg.header.stamp = node_->clock().Now();
  msg.payload = std::move(payload);
  const std::uint64_t seq = msg.header.seq;

  // Hash/signature computed once per publication, shared by all links. The
  // encode cost runs on the caller's thread; attribute it to this node.
  const Timestamp encode_start = ThreadCpuNowNs();
  const Timestamp encode_wall_start = MonotonicNowNs();
  EncodedPublicationPtr encoded = node_->protocol().Encode(std::move(msg));
  obs::metric::PublishEncodeNs().Record(
      static_cast<std::uint64_t>(MonotonicNowNs() - encode_wall_start));
  node_->cpu_ns_.fetch_add(ThreadCpuNowNs() - encode_start,
                           std::memory_order_relaxed);
  obs::metric::PublishTotal().Add(1);
  obs::TraceLog::Global().Record(obs::TraceKind::kPublish, topic_, seq);

  MutexLock lock(links_mu_);
  for (auto& link : links_) {
    if (!link->Offer(encoded)) {
      link->dropped.fetch_add(1, std::memory_order_relaxed);
      obs::metric::PublishQueueDropTotal().Add(1);
    }
  }
  return seq;
}

std::size_t Publisher::SubscriberCount() const {
  MutexLock lock(links_mu_);
  return links_.size();
}

bool Publisher::WaitForSubscribers(std::size_t count,
                                   std::chrono::milliseconds timeout) const {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  MutexLock lock(links_mu_);
  while (links_.size() < count) {
    if (links_cv_.WaitUntil(lock, deadline) == std::cv_status::timeout) {
      return links_.size() >= count;
    }
  }
  return true;
}

std::uint64_t Publisher::DroppedCount() const {
  MutexLock lock(links_mu_);
  std::uint64_t total = 0;
  for (const auto& link : links_) {
    total += link->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

void Publisher::AddLink(const crypto::ComponentId& subscriber,
                        transport::ChannelPtr channel) {
  auto link = std::make_unique<Link>();
  link->subscriber = subscriber;

  auto epoll_channel =
      std::dynamic_pointer_cast<transport::EpollChannel>(channel);
  if (node_->Options().mode == transport::TransportMode::kReactor &&
      epoll_channel) {
    auto state = std::make_shared<ReactorLinkState>();
    state->channel = epoll_channel;
    state->proto = node_->protocol().MakePublisherLink(topic_, subscriber);
    state->ack_window = node_->Options().ack_window;
    state->max_queue = node_->Options().max_queue;
    state->reactor = &transport::Reactor::Global();
    state->loop = epoll_channel->LoopIndex();
    link->channel = std::move(channel);
    link->reactor_state = state;
    // Often called from inside the handshake frame handler, so this swap
    // executes synchronously on the loop thread and later frames (early
    // ACKs included) flow straight to the link.
    epoll_channel->StartAsync(
        [state](BytesView frame) { state->HandleFrame(frame); },
        [state] { state->Finish(); });
  } else {
    link->channel = std::move(channel);
    link->proto = node_->protocol().MakePublisherLink(topic_, subscriber);
    link->ack_window = node_->Options().ack_window;
    link->max_queue = node_->Options().max_queue;
    link->cpu_acc = &node_->cpu_ns_;
    Link* raw = link.get();
    link->thread = std::thread([raw] { raw->Run(); });
  }
  bool closed;
  {
    MutexLock lock(links_mu_);
    closed = links_closed_;
    if (!closed) links_.push_back(std::move(link));
  }
  if (closed) {
    // Lost the race with Shutdown(): nobody will ever drain this link, so
    // tear it down here (joins the just-spawned thread / detaches the
    // reactor handlers) instead of leaking it.
    link->Shutdown();
    return;
  }
  links_cv_.NotifyAll();
}

void Publisher::Shutdown() {
  std::vector<std::unique_ptr<Link>> links;
  {
    MutexLock lock(links_mu_);
    links_closed_ = true;
    links.swap(links_);
  }
  for (auto& link : links) link->Shutdown();
}

// ---------------------------------------------------------------------------
// Subscription: one connection per publisher link — a receive thread, or an
// async frame handler when the channel is reactor-driven.

struct Node::Subscription {
  std::string topic;
  Node::Callback callback;
  std::unique_ptr<SubscriberLinkProtocol> proto;
  transport::ChannelPtr channel;
  std::shared_ptr<transport::EpollChannel> async_channel;  // kReactor only
  std::atomic<Timestamp>* cpu_acc = nullptr;
  std::thread thread;

  /// One inbound publication: verify/ack via the protocol, then deliver.
  /// Returns false when the link should stop (ACK send failed).
  bool HandleBytes(BytesView bytes) {
    const Timestamp handle_start = MonotonicNowNs();
    auto result = proto->OnMessage(bytes);
    // The ACK is returned before delivery to the application layer
    // (step 4 of the prototype: signing happens mid-deserialization).
    if (result.reply && !channel->Send(*result.reply)) return false;
    obs::metric::DeliverNs().Record(
        static_cast<std::uint64_t>(MonotonicNowNs() - handle_start));
    if (result.deliver) {
      obs::metric::DeliverTotal().Add(1);
      obs::TraceLog::Global().Record(obs::TraceKind::kDeliver, topic,
                                     result.deliver->header.seq);
      callback(*result.deliver);
    }
    return true;
  }

  void Run() {
    ThreadCpuTracker cpu(cpu_acc);
    while (auto bytes = channel->Receive()) {
      if (!HandleBytes(*bytes)) return;
      cpu.Tick();
    }
  }

  void StartAsync() {
    async_channel->StartAsync(
        [this](BytesView frame) {
          if (!HandleBytes(frame)) channel->Close();
        },
        [] {});
  }

  void Shutdown() {
    channel->Close();
    if (thread.joinable()) thread.join();
    // Async mode: rendezvous with the loop's teardown, after which the
    // frame handler (which captures `this`) can never run again.
    if (async_channel) async_channel->WaitClosed(2000);
  }
};

// ---------------------------------------------------------------------------
// TCP endpoint: the node's listener. kThreadPerConn accepts on a dedicated
// thread and reads the handshake blockingly; kReactor accepts on the loop
// and parses the handshake from the connection's first frame.

struct Node::TcpEndpoint {
  transport::TcpListener listener;
  Node* node;
  std::thread accept_thread;                              // kThreadPerConn
  std::unique_ptr<transport::ReactorAcceptor> acceptor;   // kReactor
  std::atomic<bool> shutting_down{false};
  // Connections accepted but not yet handshaken; owned here so Shutdown
  // can close them (and so the handshake handler can capture weakly).
  Mutex pending_mu;
  std::vector<std::shared_ptr<transport::EpollChannel>> pending
      GUARDED_BY(pending_mu);

  explicit TcpEndpoint(Node* owner) : listener(0), node(owner) {
    if (owner->Options().mode == transport::TransportMode::kReactor) {
      acceptor = std::make_unique<transport::ReactorAcceptor>(
          transport::Reactor::Global(), listener,
          [this](std::shared_ptr<transport::EpollChannel> channel) {
            OnAccept(std::move(channel));
          });
    } else {
      accept_thread = std::thread([this] { Run(); });
    }
  }

  void Run() {
    while (auto channel = listener.Accept()) {
      auto handshake = channel->Receive();
      if (!handshake) continue;
      std::string topic;
      crypto::ComponentId subscriber;
      try {
        ParseHandshake(*handshake, topic, subscriber);
      } catch (const wire::WireError&) {
        channel->Close();
        continue;
      }
      node->AttachSubscriberLink(topic, subscriber, std::move(channel));
    }
  }

  // Loop thread. The first frame is the handshake; AttachSubscriberLink
  // replaces the handlers (synchronously, same loop) so every later frame
  // goes to the link's state machine.
  void OnAccept(std::shared_ptr<transport::EpollChannel> channel) {
    if (shutting_down.load(std::memory_order_acquire)) {
      channel->Close();
      return;
    }
    {
      MutexLock lock(pending_mu);
      pending.push_back(channel);
    }
    std::weak_ptr<transport::EpollChannel> weak = channel;
    channel->StartAsync(
        [this, weak](BytesView frame) {
          auto ch = weak.lock();
          if (!ch) return;
          ErasePending(ch);
          std::string topic;
          crypto::ComponentId subscriber;
          try {
            ParseHandshake(frame, topic, subscriber);
          } catch (const wire::WireError&) {
            ch->Close();
            return;
          }
          node->AttachSubscriberLink(topic, subscriber, ch);
        },
        [this, weak] {
          if (auto ch = weak.lock()) ErasePending(ch);
        });
  }

  void ErasePending(const std::shared_ptr<transport::EpollChannel>& channel)
      EXCLUDES(pending_mu) {
    MutexLock lock(pending_mu);
    for (auto it = pending.begin(); it != pending.end(); ++it) {
      if (*it == channel) {
        pending.erase(it);
        return;
      }
    }
  }

  void Shutdown() {
    shutting_down.store(true, std::memory_order_release);
    // Acceptor first: after its Close() returns no accept callback runs,
    // so `this` stays valid for the whole teardown.
    if (acceptor) acceptor->Close();
    listener.Close();
    std::vector<std::shared_ptr<transport::EpollChannel>> orphans;
    {
      MutexLock lock(pending_mu);
      orphans.swap(pending);
    }
    for (auto& channel : orphans) {
      channel->Close();
      channel->WaitClosed(2000);
    }
    if (accept_thread.joinable()) accept_thread.join();
  }
};

// ---------------------------------------------------------------------------
// Node.

Node::Node(crypto::ComponentId name, MasterApi& master, NodeOptions options)
    : name_(std::move(name)), master_(master), options_(std::move(options)) {
  if (!options_.protocol) {
    throw std::invalid_argument("Node: a ProtocolFactory is required");
  }
  if (options_.ack_window == 0) {
    throw std::invalid_argument("Node: ack_window must be >= 1");
  }
}

Node::~Node() { Shutdown(); }

Publisher& Node::Advertise(const std::string& topic) {
  Publisher* pub;
  std::uint16_t tcp_port = 0;
  {
    MutexLock lock(mu_);
    if (shut_down_) throw std::logic_error("Node: already shut down");
    publishers_.push_back(
        std::unique_ptr<Publisher>(new Publisher(this, topic)));
    pub = publishers_.back().get();
    if (options_.transport == TransportKind::kTcp) {
      if (!tcp_) tcp_ = std::make_unique<TcpEndpoint>(this);
      // Read the port while still holding mu_: a concurrent Shutdown()
      // swaps tcp_ out under the same lock, so an unlocked read here could
      // dereference a null endpoint.
      tcp_port = tcp_->listener.Port();
    }
  }

  AdvertiseInfo info;
  if (options_.transport == TransportKind::kInProc) {
    info.connect = [this, topic](const crypto::ComponentId& subscriber) {
      auto pair = transport::MakeInProcChannelPair(options_.link_model);
      AttachSubscriberLink(topic, subscriber, pair.a);
      return pair.b;
    };
  } else {
    // TCP mode: announce the listener port so even a master in another
    // process (remote_master.h) can route subscribers here. The local
    // master synthesizes the connector from the port.
    info.tcp_port = tcp_port;
  }
  master_.Advertise(topic, name_, std::move(info));
  return *pub;
}

void Node::AttachSubscriberLink(const std::string& topic,
                                const crypto::ComponentId& subscriber,
                                transport::ChannelPtr channel) {
  Publisher* pub = nullptr;
  {
    MutexLock lock(mu_);
    if (shut_down_) return;
    for (auto& p : publishers_) {
      if (p->Topic() == topic) {
        pub = p.get();
        break;
      }
    }
  }
  if (pub == nullptr) {
    channel->Close();
    return;
  }
  pub->AddLink(subscriber, std::move(channel));
}

void Node::Subscribe(const std::string& topic, Callback callback) {
  {
    MutexLock lock(mu_);
    if (shut_down_) throw std::logic_error("Node: already shut down");
  }
  master_.Subscribe(
      topic, name_,
      [this, topic, callback = std::move(callback)](
          const crypto::ComponentId& publisher,
          transport::ChannelPtr channel) {
        auto sub = std::make_unique<Subscription>();
        sub->topic = topic;
        sub->callback = callback;
        sub->proto = options_.protocol->MakeSubscriberLink(topic, publisher);
        sub->channel = std::move(channel);
        sub->cpu_acc = &cpu_ns_;
        if (options_.mode == transport::TransportMode::kReactor) {
          // Reactor-driven channels need no receive thread; connectors that
          // hand us a blocking channel fall back to one below.
          sub->async_channel =
              std::dynamic_pointer_cast<transport::EpollChannel>(sub->channel);
        }
        Subscription* raw = sub.get();
        {
          MutexLock lock(mu_);
          if (shut_down_) {
            sub->channel->Close();
            return;
          }
          if (raw->async_channel) {
            raw->StartAsync();
          } else {
            // The thread member must be assigned before the subscription is
            // visible in subscriptions_: Shutdown() swaps the list under mu_
            // and then joins, so publishing first would let it race with (or
            // miss) this assignment.
            raw->thread = std::thread([raw] { raw->Run(); });
          }
          subscriptions_.push_back(std::move(sub));
        }
      });
}

void Node::Shutdown() {
  std::vector<std::unique_ptr<Publisher>> pubs;
  std::vector<std::unique_ptr<Subscription>> subs;
  std::unique_ptr<TcpEndpoint> tcp;
  {
    MutexLock lock(mu_);
    if (shut_down_) return;
    shut_down_ = true;
    pubs.swap(publishers_);
    subs.swap(subscriptions_);
    tcp.swap(tcp_);
  }
  if (tcp) tcp->Shutdown();
  for (auto& p : pubs) p->Shutdown();
  for (auto& s : subs) s->Shutdown();
}

}  // namespace adlp::pubsub
