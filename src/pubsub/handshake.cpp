#include "pubsub/handshake.h"

#include "wire/wire.h"

namespace adlp::pubsub {

namespace {
enum : std::uint32_t {
  kHandshakeTopic = 1,
  kHandshakeSubscriber = 2,
};
}  // namespace

Bytes SerializeHandshake(const std::string& topic,
                         const crypto::ComponentId& subscriber) {
  wire::Writer w;
  w.PutString(kHandshakeTopic, topic);
  w.PutString(kHandshakeSubscriber, subscriber);
  return std::move(w).Take();
}

void ParseHandshake(BytesView data, std::string& topic,
                    crypto::ComponentId& subscriber) {
  wire::Reader r(data);
  std::uint32_t field;
  wire::WireType type;
  while (r.NextField(field, type)) {
    switch (field) {
      case kHandshakeTopic:
        topic = r.GetStringValue();
        break;
      case kHandshakeSubscriber:
        subscriber = r.GetStringValue();
        break;
      default:
        r.SkipValue(type);
        break;
    }
  }
}

}  // namespace adlp::pubsub
