// Pluggable signature algorithms.
//
// The paper's prototype is fixed to RSA-1024 + PKCS#1 v1.5; its future-work
// section proposes "lightweight crypto functions" to improve scalability.
// This layer abstracts sign_i(.) / verify_i(.) over the algorithm so the
// whole protocol stack (components, log entries, auditor, manifests) runs
// unchanged on either:
//
//   * kRsaPkcs1Sha256 — the paper's scheme (default, 128-byte signatures
//     at 1024 bits);
//   * kEd25519        — the lightweight alternative (64-byte signatures,
//     faster signing).
//
// All signatures are over the protocol's 32-byte message digest
// h(header || h(D)).
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/rng.h"
#include "crypto/ed25519.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"

namespace adlp::crypto {

enum class SigAlgorithm : std::uint8_t {
  kRsaPkcs1Sha256 = 0,
  kEd25519 = 1,
};

std::string_view SigAlgorithmName(SigAlgorithm alg);

struct PublicKey {
  SigAlgorithm alg = SigAlgorithm::kRsaPkcs1Sha256;
  RsaPublicKey rsa;            // valid when alg == kRsaPkcs1Sha256
  Ed25519PublicKey ed25519;    // valid when alg == kEd25519

  bool operator==(const PublicKey&) const = default;

  /// Signature size in bytes (128 for RSA-1024, 64 for Ed25519).
  std::size_t SignatureSize() const;
};

struct PrivateKey {
  SigAlgorithm alg = SigAlgorithm::kRsaPkcs1Sha256;
  RsaPrivateKey rsa;
  Ed25519PrivateKey ed25519;
};

struct SigKeyPair {
  PublicKey pub;
  PrivateKey priv;
};

/// Generates a key pair of the requested algorithm. `rsa_bits` applies only
/// to RSA (the paper's 1024 by default).
SigKeyPair GenerateSigKeyPair(Rng& rng,
                              SigAlgorithm alg = SigAlgorithm::kRsaPkcs1Sha256,
                              std::size_t rsa_bits = 1024);

/// sign_i(digest). Throws for RSA moduli too small for the encoding.
Bytes SignDigest(const PrivateKey& key, const Digest& digest);

/// verify_i(digest, sig): malformed signatures return false.
bool VerifyDigest(const PublicKey& key, const Digest& digest,
                  BytesView signature);

/// Wire encoding of a public key (manifest / remote key registration).
Bytes SerializePublicKey(const PublicKey& key);
PublicKey ParsePublicKey(BytesView data);  // throws wire::WireError

}  // namespace adlp::crypto
